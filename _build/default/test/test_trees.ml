(* Tests for the maintained-height trees (Algorithm 1) and the
   self-balancing AVL trees (Algorithm 11 / §7.3), including differential
   tests against the hand-coded baseline of §9. *)

module Engine = Alphonse.Engine
module Var = Alphonse.Var
module Itree = Trees.Itree
module Avl = Trees.Avl
module B = Trees.Avl_baseline

let checki = Alcotest.(check int)
let checkb = Alcotest.(check bool)
let executions eng = (Engine.stats eng).Engine.executions

(* ------------------------------------------------------------------ *)
(* Maintained height (Algorithm 1)                                     *)
(* ------------------------------------------------------------------ *)

let test_height_basic () =
  let eng = Engine.create () in
  let t = Itree.create eng in
  let tree = Itree.perfect t 0 62 in
  (* 63 keys: perfect tree of height 6 *)
  checki "height" 6 (Itree.height t tree);
  checki "matches exhaustive" (Itree.height_exhaustive tree)
    (Itree.height t tree);
  (* first call pays O(n): one execution per subtree incl. Nil *)
  checkb "first call O(n)" true (executions eng >= 63);
  let before = executions eng in
  checki "repeat" 6 (Itree.height t tree);
  checki "repeat is O(1)" before (executions eng)

let test_height_single_change_costs_path () =
  let eng = Engine.create () in
  let t = Itree.create eng in
  let tree = Itree.perfect t 0 1022 in
  (* height 9, 1023 nodes *)
  checki "initial height" 10 (Itree.height t tree);
  let before = executions eng in
  (* graft a spine under a deep leaf: only the root path must re-run *)
  let deep =
    let rec leftmost = function
      | Itree.Nil -> assert false
      | Itree.Node n -> (
        match Var.get n.left with Itree.Nil -> n | sub -> leftmost sub)
    in
    leftmost tree
  in
  Var.set deep.Itree.left (Itree.spine t 4);
  checki "height grew" 14 (Itree.height t tree);
  let cost = executions eng - before in
  (* re-executions: new spine subtrees (≈ 2*4+1 nodes incl Nils) plus the
     root path (≈ 10) — far less than the 1023-node tree *)
  checkb "cost bounded by path + new nodes" true (cost <= 40)

let test_height_batched_changes () =
  let eng = Engine.create () in
  let t = Itree.create eng in
  let tree = Itree.perfect t 0 254 in
  checki "initial" 8 (Itree.height t tree);
  let before = executions eng in
  (* batch several changes before asking again: updates are shared *)
  let interior = Itree.nodes tree in
  let pick i = List.nth interior (i * 37 mod List.length interior) in
  for i = 0 to 4 do
    let n = pick i in
    Var.set n.Itree.left (Var.get n.Itree.left)
    (* equal write: no-op *);
    Var.set n.Itree.right (Var.get n.Itree.right)
  done;
  ignore (Itree.height t tree);
  checki "no-op batch costs nothing" before (executions eng)

let test_height_spine_vs_random () =
  let eng = Engine.create () in
  let t = Itree.create eng in
  let s = Itree.spine t 50 in
  checki "spine height" 50 (Itree.height t s);
  let rand = Random.State.make [| 7 |] in
  let r = Itree.random t ~rand 200 in
  let h = Itree.height t r in
  checkb "random tree reasonably shallow" true (h < 50);
  checki "exhaustive agrees" (Itree.height_exhaustive r) h

(* Random pointer mutations: incremental height must always equal the
   exhaustive recomputation (Theorem 5.1 instance). *)
let prop_height_equals_exhaustive =
  QCheck.Test.make ~name:"maintained height = exhaustive height"
    QCheck.(list (pair (int_bound 30) bool))
    (fun moves ->
      let eng = Engine.create () in
      let t = Itree.create eng in
      let rand = Random.State.make [| 99 |] in
      let tree = Itree.random t ~rand 32 in
      List.for_all
        (fun (i, to_left) ->
          (* move: detach some subtree and graft it elsewhere *)
          let interior = Itree.nodes tree in
          let n = List.nth interior (i mod List.length interior) in
          let donor = List.nth interior (i * 13 mod List.length interior) in
          if n.Itree.id <> donor.Itree.id then begin
            (* detach donor's right subtree, graft under n — this can
               create shared/odd shapes; height is still well-defined as
               long as no cycle forms, so only graft leaves *)
            let sub = Var.get donor.Itree.right in
            match sub with
            | Itree.Nil ->
              if to_left then Var.set n.Itree.left Itree.Nil
              else Var.set n.Itree.right Itree.Nil
            | Itree.Node _ -> ()
          end;
          Itree.height t tree = Itree.height_exhaustive tree)
        moves)

(* ------------------------------------------------------------------ *)
(* AVL (Algorithm 11)                                                  *)
(* ------------------------------------------------------------------ *)

let test_avl_sorted_inserts () =
  let eng = Engine.create () in
  let t = Avl.create eng in
  for k = 1 to 100 do
    Avl.insert t k
  done;
  Avl.rebalance t;
  checkb "balanced" true (Avl.is_balanced (Avl.root t));
  checkb "ordered" true (Avl.is_ordered (Avl.root t));
  checki "all present" 100 (Avl.size t);
  checkb "logarithmic height" true (Avl.check_height (Avl.root t) <= 8);
  Alcotest.(check (list int))
    "sorted contents"
    (List.init 100 (fun i -> i + 1))
    (Avl.to_list t)

let test_avl_interleaved_ops () =
  let eng = Engine.create () in
  let t = Avl.create eng in
  for k = 1 to 60 do
    Avl.insert t k
  done;
  Avl.rebalance t;
  for k = 1 to 30 do
    Avl.delete t (2 * k)
  done;
  Avl.rebalance t;
  checkb "balanced after deletes" true (Avl.is_balanced (Avl.root t));
  checkb "ordered after deletes" true (Avl.is_ordered (Avl.root t));
  Alcotest.(check (list int))
    "odd keys remain"
    (List.init 30 (fun i -> (2 * i) + 1))
    (Avl.to_list t);
  checkb "mem finds odd" true (Avl.mem t 31);
  checkb "mem misses even" false (Avl.mem t 30)

let test_avl_batch_then_balance () =
  (* the off-line mode: arbitrary batched mutations, then one balance *)
  let eng = Engine.create () in
  let t = Avl.create eng in
  for k = 100 downto 1 do
    Avl.insert t k
  done;
  (* no intermediate rebalances at all: tree is currently a left spine *)
  checki "spine height before" 100 (Avl.check_height (Avl.root t));
  Avl.rebalance t;
  checkb "balanced in one pass" true (Avl.is_balanced (Avl.root t));
  checkb "still ordered" true (Avl.is_ordered (Avl.root t))

let test_avl_incremental_cheapness () =
  let eng = Engine.create () in
  let t = Avl.create eng in
  for k = 1 to 512 do
    Avl.insert t k;
    Avl.rebalance t
  done;
  let before = executions eng in
  Avl.insert t 1000;
  Avl.rebalance t;
  let cost = executions eng - before in
  (* one insertion re-runs only the root path's balance/height instances *)
  checkb
    (Fmt.str "single insert is O(log n) work (cost=%d)" cost)
    true (cost < 150)

let test_avl_eager_strategy () =
  let eng = Engine.create ~default_strategy:Engine.Eager () in
  let t = Avl.create eng in
  for k = 1 to 50 do
    Avl.insert t k;
    Avl.rebalance t
  done;
  checkb "balanced (eager)" true (Avl.is_balanced (Avl.root t));
  checkb "ordered (eager)" true (Avl.is_ordered (Avl.root t))

let test_avl_with_partitioning () =
  let eng = Engine.create ~partitioning:true () in
  let t = Avl.create eng in
  for k = 1 to 50 do
    Avl.insert t (k * 7 mod 53);
    Avl.rebalance t
  done;
  checkb "balanced (partitioned)" true (Avl.is_balanced (Avl.root t));
  checkb "ordered (partitioned)" true (Avl.is_ordered (Avl.root t))

(* Differential: Alphonse AVL vs hand-coded baseline vs sorted list. *)
let prop_avl_differential =
  QCheck.Test.make ~name:"alphonse AVL = baseline AVL = model"
    QCheck.(list (pair bool (int_bound 40)))
    (fun ops ->
      let eng = Engine.create () in
      let t = Avl.create eng in
      let b = ref B.Nil in
      let model = ref [] in
      List.for_all
        (fun (is_insert, k) ->
          if is_insert then begin
            Avl.insert t k;
            b := B.insert !b k;
            if not (List.mem k !model) then model := k :: !model
          end
          else begin
            Avl.delete t k;
            b := B.delete !b k;
            model := List.filter (fun x -> x <> k) !model
          end;
          Avl.rebalance t;
          let expected = List.sort compare !model in
          Avl.to_list t = expected
          && B.to_list !b = expected
          && Avl.is_balanced (Avl.root t)
          && Avl.is_ordered (Avl.root t)
          && B.is_balanced !b)
        ops)

(* ------------------------------------------------------------------ *)
(* Order statistics (maintained size)                                  *)
(* ------------------------------------------------------------------ *)

module Ostat = Trees.Ostat

let test_ostat_basic () =
  let eng = Engine.create () in
  let t = Ostat.create eng in
  List.iter (Ostat.insert t) [ 50; 20; 80; 10; 30; 70; 90 ];
  checki "size" 7 (Ostat.size t);
  checki "select 0" 10 (Ostat.select t 0);
  checki "select 3" 50 (Ostat.select t 3);
  checki "select 6" 90 (Ostat.select t 6);
  checki "rank of absent key" 2 (Ostat.rank t 25);
  checki "rank of present key" 4 (Ostat.rank t 70);
  checki "median" 50 (Ostat.median t);
  checkb "select out of range" true
    (match Ostat.select t 7 with _ -> false | exception Not_found -> true)

let test_ostat_incremental_updates () =
  let eng = Engine.create () in
  let t = Ostat.create eng in
  for k = 1 to 256 do
    Ostat.insert t k
  done;
  checki "initial size" 256 (Ostat.size t);
  (* warm up: the first query after the bulk rebalance pays a one-time
     O(n) because the rotations created new subtree-root positions *)
  ignore (Ostat.size t);
  let before = executions eng in
  Ostat.insert t 1000;
  checki "size tracks insert" 257 (Ostat.size t);
  let cost = executions eng - before in
  checkb (Fmt.str "one insert updates O(log n) sizes (cost=%d)" cost) true
    (cost < 120);
  Ostat.delete t 128;
  checki "size tracks delete" 256 (Ostat.size t);
  checki "select skips deleted" 129 (Ostat.select t 127)

let prop_ostat_matches_sorted_list =
  QCheck.Test.make ~name:"rank/select = sorted-list oracle"
    QCheck.(list (pair bool (int_bound 60)))
    (fun ops ->
      let eng = Engine.create () in
      let t = Ostat.create eng in
      let model = ref [] in
      List.for_all
        (fun (is_insert, k) ->
          if is_insert then begin
            Ostat.insert t k;
            if not (List.mem k !model) then model := k :: !model
          end
          else begin
            Ostat.delete t k;
            model := List.filter (fun x -> x <> k) !model
          end;
          let sorted = List.sort compare !model in
          let n = List.length sorted in
          Ostat.size t = n
          && List.for_all2
               (fun i want -> Ostat.select t i = want)
               (List.init n (fun i -> i))
               sorted
          && List.for_all
               (fun k ->
                 Ostat.rank t k
                 = List.length (List.filter (fun x -> x < k) sorted))
               [ 0; 15; 30; 45; 61 ])
        ops)

(* ------------------------------------------------------------------ *)
(* Baseline self-checks                                                *)
(* ------------------------------------------------------------------ *)

let test_baseline_avl () =
  let t = ref B.Nil in
  for k = 1 to 1000 do
    t := B.insert !t k
  done;
  checkb "balanced" true (B.is_balanced !t);
  checki "size" 1000 (B.size !t);
  checkb "height logarithmic" true (B.check_height !t <= 12);
  for k = 1 to 500 do
    t := B.delete !t (k * 2)
  done;
  checkb "balanced after deletes" true (B.is_balanced !t);
  checki "size after deletes" 500 (B.size !t);
  checkb "mem" true (B.mem !t 499);
  checkb "not mem" false (B.mem !t 500)

let qsuite tests = List.map (QCheck_alcotest.to_alcotest ~long:false) tests

let () =
  Alcotest.run "trees"
    [
      ( "height",
        Alcotest.test_case "basic" `Quick test_height_basic
        :: Alcotest.test_case "single change costs path" `Quick
             test_height_single_change_costs_path
        :: Alcotest.test_case "batched no-op changes" `Quick
             test_height_batched_changes
        :: Alcotest.test_case "spine vs random" `Quick
             test_height_spine_vs_random
        :: qsuite [ prop_height_equals_exhaustive ] );
      ( "avl",
        Alcotest.test_case "sorted inserts" `Quick test_avl_sorted_inserts
        :: Alcotest.test_case "interleaved ops" `Quick test_avl_interleaved_ops
        :: Alcotest.test_case "batch then balance" `Quick
             test_avl_batch_then_balance
        :: Alcotest.test_case "incremental cheapness" `Quick
             test_avl_incremental_cheapness
        :: Alcotest.test_case "eager strategy" `Quick test_avl_eager_strategy
        :: Alcotest.test_case "with partitioning" `Quick
             test_avl_with_partitioning
        :: qsuite [ prop_avl_differential ] );
      ( "ostat",
        Alcotest.test_case "basics" `Quick test_ostat_basic
        :: Alcotest.test_case "incremental updates" `Quick
             test_ostat_incremental_updates
        :: qsuite [ prop_ostat_matches_sorted_list ] );
      ("baseline", [ Alcotest.test_case "hand-coded AVL" `Quick test_baseline_avl ]);
    ]
