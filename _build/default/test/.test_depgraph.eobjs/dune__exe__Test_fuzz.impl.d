test/test_fuzz.ml: Alcotest Alphonse Array Depgraph Fmt Hashtbl Int Lang List QCheck QCheck_alcotest String Transform
