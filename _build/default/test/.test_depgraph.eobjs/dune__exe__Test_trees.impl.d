test/test_trees.ml: Alcotest Alphonse Fmt List QCheck QCheck_alcotest Random Trees
