test/test_transform.ml: Alcotest Alphonse Depgraph Fmt Hashtbl Lang List String Transform
