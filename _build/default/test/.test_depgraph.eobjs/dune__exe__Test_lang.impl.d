test/test_lang.ml: Alcotest Ast Fmt Interp Lang Lexer List Parser Pretty Samples String Typecheck
