test/test_spreadsheet.mli:
