test/test_depgraph.ml: Alcotest Array Depgraph List QCheck QCheck_alcotest Random Stdlib
