test/test_attrgram.ml: Alcotest Alphonse Array Attrgram Float Fmt List Option QCheck QCheck_alcotest String
