test/test_alphonse.ml: Alcotest Alphonse Array Depgraph Float Fmt List Option QCheck QCheck_alcotest Random String
