test/test_spreadsheet.ml: Alcotest Alphonse Float Fmt Gen List Printf QCheck QCheck_alcotest Random Spreadsheet String
