test/test_attrgram.mli:
