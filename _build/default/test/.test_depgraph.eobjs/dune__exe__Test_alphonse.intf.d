test/test_alphonse.mli:
