  $ alphonsec() { ../bin/alphonsec.exe "$@"; }
  $ alphonsec samples
  $ alphonsec check height_tree
  $ alphonsec run sums_maintained 2>/dev/null
  $ alphonsec run sums_maintained --conventional 2>/dev/null
  $ alphonsec compare fib_cached | head -3
  $ alphonsec transform sums_maintained | grep -E 'access|modify|call' | head -6
  $ alphonsec analyze sums_maintained | grep -A3 'instrumentation'
  $ echo 'MODULE M; BEGIN x := 1 END M.' | alphonsec check -
  $ echo 'MODULE M; BEGIN 1 + END M.' | alphonsec check -
  $ alphonsec graph sums_maintained | head -4
