(* Tests for the attribute-grammar framework (§7.1): the let-expression
   grammar of Algorithms 6–9 and Knuth's binary numeral grammar, with
   incremental-vs-exhaustive differential checks and re-evaluation-count
   assertions. *)

module Engine = Alphonse.Engine
module Ag = Attrgram.Ag
module L = Attrgram.Let_lang
module B = Attrgram.Binary

let checki = Alcotest.(check int)
let checkb = Alcotest.(check bool)
let checkf = Alcotest.(check (float 1e-9))
let executions eng = (Engine.stats eng).Engine.executions

(* let x = 3 in (x + (let y = x + 4 in y)) : expect 3 + (3+4) = 10 *)
let sample l =
  let inner = L.let_ l "y" (L.plus l (L.id l "x") (L.int l 4)) (L.id l "y") in
  let body = L.plus l (L.id l "x") inner in
  let x_binding = L.int l 3 in
  L.root l (L.let_ l "x" x_binding body)

let test_let_basic () =
  let eng = Engine.create () in
  let l = L.create eng in
  let root = sample l in
  checki "value" 10 (L.value_of l root);
  checki "agrees with exhaustive" (L.exhaustive_value root) (L.value_of l root);
  let before = executions eng in
  checki "cached" 10 (L.value_of l root);
  checki "second eval free" before (executions eng)

let test_let_edit_terminal () =
  let eng = Engine.create () in
  let l = L.create eng in
  let root = sample l in
  checki "initial" 10 (L.value_of l root);
  (* find the int 3 leaf (the x binding) and change it *)
  let three = ref None in
  Ag.iter
    (fun n ->
      if Ag.prod n = "int" && Ag.terminal n "n" = L.VInt 3 then three := Some n)
    root;
  let three = Option.get !three in
  L.set_int three 7;
  checki "after edit" (7 + 7 + 4) (L.value_of l root);
  checki "agrees with exhaustive" (L.exhaustive_value root)
    (L.value_of l root)

let test_let_edit_locality () =
  (* a + b + … chain: editing one leaf re-evaluates only its path *)
  let eng = Engine.create () in
  let l = L.create eng in
  let leaves = Array.init 64 (fun i -> L.int l i) in
  let expr = Array.fold_left (fun acc leaf -> L.plus l acc leaf) leaves.(0)
      (Array.sub leaves 1 63)
  in
  let root = L.root l expr in
  checki "sum" (63 * 64 / 2) (L.value_of l root);
  let before = executions eng in
  L.set_int leaves.(0) 100;
  checki "updated" ((63 * 64 / 2) + 100) (L.value_of l root);
  let cost = executions eng - before in
  (* leaf 0 is deepest: path length ~63 plus the root; must not approach
     the full 128-attribute re-evaluation *)
  checkb (Fmt.str "cost %d bounded by path" cost) true (cost <= 70)

let test_let_rename () =
  let eng = Engine.create () in
  let l = L.create eng in
  (* let x = 1 in let y = 2 in x *)
  let body = L.id l "x" in
  let inner = L.let_ l "y" (L.int l 2) body in
  let outer = L.let_ l "x" (L.int l 1) inner in
  let root = L.root l outer in
  checki "x resolves to outer" 1 (L.value_of l root);
  (* rename the inner binder to x: body now sees the inner binding *)
  L.rename_let inner "x";
  checki "shadowed" 2 (L.value_of l root);
  checki "agrees" (L.exhaustive_value root) (L.value_of l root)

let test_let_unbound () =
  let eng = Engine.create () in
  let l = L.create eng in
  let root = L.root l (L.id l "ghost") in
  checkb "raises unbound" true
    (match L.value_of l root with
    | _ -> false
    | exception L.Unbound_identifier "ghost" -> true);
  (* error recovery: fix the tree and re-evaluate *)
  Ag.set_child root 0 (L.int l 5);
  checki "recovered" 5 (L.value_of l root)

let test_let_subtree_replace () =
  let eng = Engine.create () in
  let l = L.create eng in
  let lhs = L.int l 10 in
  let rhs = L.int l 20 in
  let expr = L.plus l lhs rhs in
  let root = L.root l expr in
  checki "initial" 30 (L.value_of l root);
  (* replace the rhs with a let expression *)
  let fresh = L.let_ l "z" (L.int l 100) (L.plus l (L.id l "z") (L.id l "z")) in
  Ag.set_child expr 1 fresh;
  checki "after splice" 210 (L.value_of l root);
  checki "agrees" (L.exhaustive_value root) (L.value_of l root)

(* Random let-trees with random edits must always agree with the
   exhaustive interpreter. *)
let prop_let_equiv =
  let gen =
    QCheck.Gen.(list_size (int_bound 20) (pair (int_bound 1000) (int_bound 50)))
  in
  QCheck.Test.make ~name:"let-lang incremental = exhaustive"
    (QCheck.make gen) (fun edits ->
      let eng = Engine.create () in
      let l = L.create eng in
      (* a fixed shape with several binders and reuse *)
      let leaf1 = L.int l 1 and leaf2 = L.int l 2 and leaf3 = L.int l 3 in
      let t =
        L.root l
          (L.let_ l "a"
             (L.plus l leaf1 leaf2)
             (L.plus l
                (L.let_ l "b" (L.plus l (L.id l "a") leaf3) (L.id l "b"))
                (L.id l "a")))
      in
      let leaves = [| leaf1; leaf2; leaf3 |] in
      List.for_all
        (fun (which, v) ->
          L.set_int leaves.(which mod 3) v;
          L.value_of l t = L.exhaustive_value t)
        edits)

(* ------------------------------------------------------------------ *)
(* Binary numerals                                                     *)
(* ------------------------------------------------------------------ *)

let test_binary_basic () =
  let eng = Engine.create () in
  let b = B.create eng in
  let n = B.of_string b "1101.01" in
  checkf "13.25" 13.25 (B.value_of b n);
  checkf "agrees" (B.exhaustive_value n) (B.value_of b n);
  let m = B.of_string b "0" in
  checkf "zero" 0. (B.value_of b m);
  let k = B.of_string b "101" in
  checkf "five" 5. (B.value_of b k)

let test_binary_flip () =
  let eng = Engine.create () in
  let b = B.create eng in
  let n = B.of_string b "1000" in
  checkf "eight" 8. (B.value_of b n);
  let leaves = B.bit_leaves n in
  B.flip (List.hd leaves);
  checkf "msb off" 0. (B.value_of b n);
  B.flip (List.nth leaves 3);
  checkf "lsb on" 1. (B.value_of b n);
  checkf "agrees" (B.exhaustive_value n) (B.value_of b n)

let test_binary_flip_locality () =
  let eng = Engine.create () in
  let b = B.create eng in
  let n = B.of_string b (String.make 64 '1') in
  ignore (B.value_of b n);
  let before = executions eng in
  (* flip the least significant bit: its value attr changes, and the
     value attrs on the spine above it; scales are untouched *)
  let leaves = B.bit_leaves n in
  B.flip (List.nth leaves 63);
  ignore (B.value_of b n);
  let cost = executions eng - before in
  checkb (Fmt.str "lsb flip cost %d bounded" cost) true (cost <= 8);
  checkf "agrees" (B.exhaustive_value n) (B.value_of b n)

let prop_binary_equiv =
  let gen =
    QCheck.Gen.(
      pair
        (pair (string_size ~gen:(oneofl [ '0'; '1' ]) (int_range 1 12))
           (string_size ~gen:(oneofl [ '0'; '1' ]) (int_bound 8)))
        (list_size (int_bound 10) (int_bound 30)))
  in
  QCheck.Test.make ~name:"binary incremental = exhaustive" (QCheck.make gen)
    (fun ((ip, fp), flips) ->
      let eng = Engine.create () in
      let b = B.create eng in
      let s = if fp = "" then ip else ip ^ "." ^ fp in
      let n = B.of_string b s in
      let leaves = Array.of_list (B.bit_leaves n) in
      List.for_all
        (fun i ->
          B.flip leaves.(i mod Array.length leaves);
          Float.abs (B.value_of b n -. B.exhaustive_value n) < 1e-9)
        flips)

(* ------------------------------------------------------------------ *)
(* The static-AG baseline (§10 comparator)                             *)
(* ------------------------------------------------------------------ *)

module LS = Attrgram.Let_lang_static
module SA = Attrgram.Static_ag

(* let x = 3 in (x + (let y = x + 4 in y)) = 10, same shape as [sample] *)
let static_sample ls =
  let inner = LS.let_ ls "y" (LS.plus ls (LS.id ls "x") (LS.int ls 4)) (LS.id ls "y") in
  let body = LS.plus ls (LS.id ls "x") inner in
  let x_binding = LS.int ls 3 in
  (LS.root ls (LS.let_ ls "x" x_binding body), x_binding, inner)

let test_static_ag_basic () =
  let ls = LS.create () in
  let tree, x_binding, _inner = static_sample ls in
  checki "value" 10 (LS.value_of ls tree);
  LS.reset_evals ls;
  checki "cached" 10 (LS.value_of ls tree);
  checki "second eval free" 0 (LS.evals ls);
  LS.set_int ls x_binding 7;
  checki "after edit" 18 (LS.value_of ls tree)

let test_static_ag_matches_alphonse () =
  (* the two engines evaluate the same grammar; drive both through the
     same edit schedule and compare *)
  let eng = Engine.create () in
  let l = L.create eng in
  let ls = LS.create () in
  let a_tree = sample l in
  let s_tree, s_x, _ = static_sample ls in
  let a_x = ref None in
  Ag.iter
    (fun n ->
      if Ag.prod n = "int" && Ag.terminal n "n" = L.VInt 3 then a_x := Some n)
    a_tree;
  let a_x = Option.get !a_x in
  List.iter
    (fun v ->
      L.set_int a_x v;
      LS.set_int ls s_x v;
      checki (Fmt.str "engines agree after x <- %d" v) (L.value_of l a_tree)
        (LS.value_of ls s_tree))
    [ 10; 0; -5; 10; 42 ]

let test_static_ag_propagation_bounded () =
  let ls = LS.create () in
  let leaves = Array.init 64 (fun i -> LS.int ls i) in
  let expr =
    Array.fold_left (fun acc leaf -> LS.plus ls acc leaf) leaves.(0)
      (Array.sub leaves 1 63)
  in
  let tree = LS.root ls expr in
  checki "sum" (63 * 64 / 2) (LS.value_of ls tree);
  LS.reset_evals ls;
  LS.set_int ls leaves.(0) 100;
  checki "updated" ((63 * 64 / 2) + 100) (LS.value_of ls tree);
  checkb (Fmt.str "evals %d bounded by path" (LS.evals ls)) true
    (LS.evals ls <= 70)

let test_static_ag_subtree_replace () =
  let ls = LS.create () in
  let lhs = LS.int ls 10 in
  let rhs = LS.int ls 20 in
  let expr = LS.plus ls lhs rhs in
  let tree = LS.root ls expr in
  checki "initial" 30 (LS.value_of ls tree);
  let fresh =
    LS.let_ ls "z" (LS.int ls 100) (LS.plus ls (LS.id ls "z") (LS.id ls "z"))
  in
  LS.set_child ls expr 1 fresh;
  checki "after splice" 210 (LS.value_of ls tree)

let test_static_ag_undeclared_dep_checked () =
  (* an equation that reads more than it declares is caught at run time *)
  let g =
    SA.grammar
      [
        {
          SA.pname = "leaf";
          arity = 0;
          syn =
            [
              {
                SA.target = "v";
                deps = [];
                eval = (fun ctx -> ctx.SA.get (SA.Term "n"));
              };
            ];
          inh = [];
        };
      ]
  in
  let n = SA.node g ~prod:"leaf" ~terminals:[ ("n", L.VInt 1) ] [] in
  checkb "undeclared dependency raises" true
    (match SA.get g n "v" with
    | _ -> false
    | exception SA.Undeclared_dependency _ -> true)

let prop_static_vs_alphonse_vs_exhaustive =
  let gen =
    QCheck.Gen.(list_size (int_bound 20) (pair (int_bound 1000) (int_bound 50)))
  in
  QCheck.Test.make ~name:"static AG = alphonse AG = exhaustive"
    (QCheck.make gen) (fun edits ->
      let eng = Engine.create () in
      let l = L.create eng in
      let ls = LS.create () in
      let a1 = L.int l 1 and a2 = L.int l 2 and a3 = L.int l 3 in
      let a_tree =
        L.root l
          (L.let_ l "a" (L.plus l a1 a2)
             (L.plus l
                (L.let_ l "b" (L.plus l (L.id l "a") a3) (L.id l "b"))
                (L.id l "a")))
      in
      let s1 = LS.int ls 1 and s2 = LS.int ls 2 and s3 = LS.int ls 3 in
      let s_tree =
        LS.root ls
          (LS.let_ ls "a" (LS.plus ls s1 s2)
             (LS.plus ls
                (LS.let_ ls "b" (LS.plus ls (LS.id ls "a") s3) (LS.id ls "b"))
                (LS.id ls "a")))
      in
      let a_leaves = [| a1; a2; a3 |] and s_leaves = [| s1; s2; s3 |] in
      List.for_all
        (fun (which, v) ->
          let i = which mod 3 in
          L.set_int a_leaves.(i) v;
          LS.set_int ls s_leaves.(i) v;
          let a = L.value_of l a_tree in
          let s = LS.value_of ls s_tree in
          let e = L.exhaustive_value a_tree in
          a = e && s = e)
        edits)

let qsuite tests = List.map (QCheck_alcotest.to_alcotest ~long:false) tests

let () =
  Alcotest.run "attrgram"
    [
      ( "let_lang",
        Alcotest.test_case "basic" `Quick test_let_basic
        :: Alcotest.test_case "edit terminal" `Quick test_let_edit_terminal
        :: Alcotest.test_case "edit locality" `Quick test_let_edit_locality
        :: Alcotest.test_case "rename binder" `Quick test_let_rename
        :: Alcotest.test_case "unbound identifier" `Quick test_let_unbound
        :: Alcotest.test_case "subtree replace" `Quick test_let_subtree_replace
        :: qsuite [ prop_let_equiv ] );
      ( "static_ag",
        Alcotest.test_case "basic" `Quick test_static_ag_basic
        :: Alcotest.test_case "matches alphonse" `Quick
             test_static_ag_matches_alphonse
        :: Alcotest.test_case "propagation bounded" `Quick
             test_static_ag_propagation_bounded
        :: Alcotest.test_case "subtree replace" `Quick
             test_static_ag_subtree_replace
        :: Alcotest.test_case "undeclared dependency" `Quick
             test_static_ag_undeclared_dep_checked
        :: qsuite [ prop_static_vs_alphonse_vs_exhaustive ] );
      ( "binary",
        Alcotest.test_case "basic" `Quick test_binary_basic
        :: Alcotest.test_case "flip bits" `Quick test_binary_flip
        :: Alcotest.test_case "flip locality" `Quick test_binary_flip_locality
        :: qsuite [ prop_binary_equiv ] );
    ]
