The alphonsec driver, end to end. The binary is materialized by the cram
dependency declaration.

  $ alphonsec() { ../bin/alphonsec.exe "$@"; }

Built-in samples are listed and accepted in place of file paths:

  $ alphonsec samples
  height_tree
  avl
  fib_cached
  sums_maintained
  unchecked_lookup
  pragma_zoo
  spreadsheet
  sieve
  shortest_path

  $ alphonsec check height_tree
  module HeightTree: 2 type(s), 4 procedure(s), 2 global(s) — OK

Conventional and Alphonse executions agree (Theorem 5.1), with the
speedup reported:

  $ alphonsec run sums_maintained 2>/dev/null
  6
  14
  14

  $ alphonsec run sums_maintained --conventional 2>/dev/null
  6
  14
  14

  $ alphonsec compare fib_cached | head -3
  Theorem 5.1 (same output): HOLDS
  conventional steps: 573120
  alphonse steps:     300 (1910.40x)

The Algorithm 2 display form inserts access/modify/call at exactly the
sites the static analysis marks:

  $ alphonsec transform sums_maintained | grep -E 'access|modify|call' | head -6
    RETURN access(a) + access(b) + access(c)
    modify(a, 1);
    modify(b, 2);
    modify(c, 3);
    Print(call(calc.total),
    modify(b, 10);

  $ alphonsec analyze sums_maintained | grep -A3 'instrumentation'
  == instrumentation sites (6.1) ==
  reads:  7 tracked / 5 untracked
  writes: 4 tracked / 2 untracked
  calls:  3 tracked / 3 untracked

Parse and type errors are positioned:

  $ echo 'MODULE M; BEGIN x := 1 END M.' | alphonsec check -
  1:17: unknown variable x
  [1]

  $ echo 'MODULE M; BEGIN 1 + END M.' | alphonsec check -
  1:21: syntax error: expected an expression, found END
  [1]

The dependency graph of a run, as DOT:

  $ alphonsec graph sums_maintained | head -4
  digraph alphonse {
    rankdir=BT;
    n3 [label="global:c#3", shape=box];
    n2 [label="global:b#2", shape=box];
