(* The full transformation pipeline (§5, §8) on an Alphonse-L program:
   parse -> type check -> static analysis (§6.1/§6.3) -> show the
   transformed source (Algorithm 2) -> run conventionally and under
   Alphonse execution -> verify Theorem 5.1 and report the speedup.

     dune exec examples/lang_demo.exe *)

module P = Lang.Parser
module Tc = Lang.Typecheck
module Interp = Lang.Interp
module Analysis = Transform.Analysis
module Incr = Transform.Incr_interp

let pipeline name src =
  Fmt.pr "==== %s ====@." name;
  let m =
    match P.parse src with Ok m -> m | Error e -> failwith e
  in
  let env =
    match Tc.check m with
    | Ok env -> env
    | Error es ->
      failwith (Fmt.str "%a" Fmt.(list ~sep:semi Tc.pp_error) es)
  in
  let r = Analysis.analyze env in
  Fmt.pr "@.-- static analysis (6.1) --@.%a@." Analysis.pp_stats
    r.Analysis.stats;
  let conv = Interp.run ~fuel:200_000_000 env in
  let inc = Incr.run ~fuel:200_000_000 env in
  Fmt.pr "@.-- output --@.%s" inc.Incr.output;
  Fmt.pr "@.-- Theorem 5.1 --@.same output as conventional execution: %b@."
    (conv.Interp.output = inc.Incr.output);
  Fmt.pr "conventional interpreter steps: %d@." conv.Interp.steps;
  Fmt.pr "alphonse     interpreter steps: %d  (%.1fx)@." inc.Incr.steps
    (float_of_int conv.Interp.steps /. float_of_int (max 1 inc.Incr.steps));
  Fmt.pr "%a@.@." Alphonse.Inspect.pp_stats inc.Incr.engine_stats

let () =
  (* show the Algorithm 2 transformation on the smallest sample *)
  let m =
    match P.parse Lang.Samples.sums_maintained with
    | Ok m -> m
    | Error e -> failwith e
  in
  (match Tc.check m with
  | Ok env ->
    let _ = Analysis.analyze env in
    Fmt.pr "==== the transformation, displayed (Algorithm 2) ====@.";
    Fmt.pr "Reads of tracked storage become access(...), writes become@.";
    Fmt.pr "modify(...), incremental calls become call(...):@.@.";
    Fmt.pr "%a@.@." (Lang.Pretty.pp_module ~marks:true) env.Tc.m
  | Error _ -> assert false);
  pipeline "cached Fibonacci" Lang.Samples.fib_cached;
  pipeline "maintained height tree (Algorithm 1)" Lang.Samples.height_tree;
  pipeline "self-balancing AVL tree (Algorithm 11)" Lang.Samples.avl
