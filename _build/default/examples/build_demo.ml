(* A minimal incremental build system on the Alphonse abstraction — the
   modern descendant of the paper's idea (self-adjusting computation,
   Adapton, build systems). Source files are tracked cells; compilation
   of a unit is a cached procedure whose dependencies (the unit's
   imports, read during compilation!) are discovered dynamically, exactly
   the paper's non-combinator function caching (§4.2). Touching a file
   rebuilds only what transitively imported it.

     dune exec examples/build_demo.exe *)

module Engine = Alphonse.Engine
module Var = Alphonse.Var
module Func = Alphonse.Func

(* eager evaluation gives the quiescence cutoff build systems call "early
   cutoff": a rebuilt object that is byte-identical stops the rebuild *)
let eng = Engine.create ~default_strategy:Engine.Eager ()

(* ---- the "file system": name -> tracked contents ---- *)

let files : (string, string Var.t) Hashtbl.t = Hashtbl.create 16

let write name contents =
  match Hashtbl.find_opt files name with
  | Some v -> Var.set v contents
  | None -> Hashtbl.add files name (Var.create eng ~name contents)

let read name =
  match Hashtbl.find_opt files name with
  | Some v -> Var.get v
  | None -> failwith ("no such file: " ^ name)

(* ---- the "compiler": parse `import x` lines, concatenate ---- *)

let lines_of source =
  String.split_on_char '\n' source
  |> List.map String.trim
  |> List.filter (fun l -> l <> "" && not (String.length l > 0 && l.[0] = '#'))

let imports_of source =
  List.filter_map
    (fun line ->
      match String.split_on_char ' ' line with
      | [ "import"; m ] -> Some m
      | _ -> None)
    (lines_of source)

let compilations = ref 0

(* compile is CACHED: keyed by unit name; everything else it touches —
   the unit's source and the compiled form of each import — is reached
   through tracked reads and nested calls, so the build graph is
   discovered, not declared. *)
let compile =
  Func.create eng ~name:"compile" (fun compile unit_name ->
      incr compilations;
      let source = read (unit_name ^ ".src") in
      let objs =
        List.map (fun m -> Func.call compile m) (imports_of source)
      in
      (* the "object code": a digest of the comment-stripped source and
         the imported objects *)
      Fmt.str "[%s:%08x]" unit_name
        (Hashtbl.hash (lines_of source, objs) land 0xffffffff))

let build target =
  compilations := 0;
  let out = Func.call compile target in
  Fmt.pr "  build %-6s -> %-16s (%d compilations)@." target out !compilations

let () =
  Fmt.pr "A five-unit project: main -> {ui, core}, ui -> core, core -> \
          util, log.@.@.";
  write "util.src" "let helpers = 42\n";
  write "log.src" "let log x = x\n";
  write "core.src" "import util\nlet core = helpers\n";
  write "ui.src" "import core\nlet ui = core + 1\n";
  write "main.src" "import ui\nimport core\nimport log\nlet main = ()\n";

  Fmt.pr "Cold build:@.";
  build "main";

  Fmt.pr "@.Nothing changed:@.";
  build "main";

  Fmt.pr "@.Touch a leaf (util.src): only its importers recompile:@.";
  write "util.src" "let helpers = 43 (* tweaked *)\n";
  build "main";

  Fmt.pr "@.Comment-only change: util recompiles, its object is@.";
  Fmt.pr "byte-identical, and quiescence stops the rebuild there@.";
  Fmt.pr "(build systems call this the early cutoff):@.";
  write "util.src" "# a comment the compiler strips\nlet helpers = 43 (* tweaked *)\n";
  build "main";

  Fmt.pr "@.Change the import structure itself (ui drops core):@.";
  write "ui.src" "import log\nlet ui = 1\n";
  build "main";

  Fmt.pr "@.Now util only matters through core; touch log instead:@.";
  write "log.src" "let log x = (x, x)\n";
  build "main";

  let g = Engine.graph_stats eng in
  Fmt.pr "@.The discovered build graph: %d nodes, %d edges — no build@."
    g.Depgraph.Graph.live_nodes g.Depgraph.Graph.live_edges;
  Fmt.pr "description was ever written down.@."
