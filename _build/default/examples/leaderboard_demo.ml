(* A live leaderboard: the order-statistic tree (maintained size, §7.3
   applied twice) serving rank / percentile queries while scores stream
   in, with eager evaluation spending idle cycles in preemptable slices
   (§4.5) and the dependency graph's parallelism profile (§10).

     dune exec examples/leaderboard_demo.exe *)

module Engine = Alphonse.Engine
module Ostat = Trees.Ostat

let () =
  let eng = Engine.create ~default_strategy:Engine.Eager () in
  let board = Ostat.create eng in

  (* 1000 players with deterministic pseudo-random scores *)
  let rand = Random.State.make [| 7; 11 |] in
  let scores = Array.init 1000 (fun _ -> Random.State.int rand 100_000) in
  Array.iter (Ostat.insert board) scores;

  Fmt.pr "Leaderboard with %d distinct scores.@." (Ostat.size board);
  Fmt.pr "  median score:      %d@." (Ostat.median board);
  Fmt.pr "  90th percentile:   %d@."
    (Ostat.select board (Ostat.size board * 9 / 10));
  Fmt.pr "  rank of 50000:     %d (players below)@." (Ostat.rank board 50_000);

  (* scores stream in; each query is O(log n) thanks to the maintained
     size attribute over the self-balancing tree *)
  Engine.reset_stats eng;
  for i = 1 to 50 do
    Ostat.insert board (50_000 + (i * 31))
  done;
  Fmt.pr "@.After 50 new scores near the median:@.";
  Fmt.pr "  median moved to:   %d@." (Ostat.median board);
  let s = Engine.stats eng in
  Fmt.pr "  engine work:       %d re-executions for 50 inserts + queries@."
    s.Engine.executions;

  (* idle-cycle maintenance: dirty a batch, then settle in small slices,
     as an interactive system would between input events *)
  Engine.reset_stats eng;
  for _ = 1 to 200 do
    Ostat.insert board (Random.State.int rand 100_000)
  done;
  let slices = ref 0 in
  while not (Engine.settle_bounded eng ~max_steps:64) do
    incr slices
  done;
  Fmt.pr "@.200 inserts settled eagerly in %d preemptable slices of 64 \
          steps@."
    !slices;
  (* the eager slices maintained size and height; the balance method is
     demand-evaluated (it must be — see Trees.Avl), so its work happens
     at the next query… *)
  Engine.reset_stats eng;
  let n = Ostat.size board in
  Fmt.pr "  deferred demand rebalancing at the next query: %d re-executions@."
    (Engine.stats eng).Engine.executions;
  (* …after which queries are pure tree walks over cached attributes *)
  Engine.reset_stats eng;
  let top_score = Ostat.select board (n - 1) in
  let query_work = (Engine.stats eng).Engine.executions in
  Fmt.pr "  top score now:     %d (%d re-executions: rotation echoes)@."
    top_score query_work;
  Engine.reset_stats eng;
  let below = Ostat.rank board 50_000 in
  Fmt.pr "  rank of 50000:     %d (%d re-executions: quiescent)@." below
    (Engine.stats eng).Engine.executions;

  (* the §10 parallelism view of the final dependency graph *)
  let p = Alphonse.Inspect.parallel_profile eng in
  Fmt.pr "@.Dependency graph parallelism (paper §10):@.";
  Fmt.pr "  %d instances, critical path %d, max level width %d@."
    p.Alphonse.Inspect.total_instances p.Alphonse.Inspect.critical_path
    p.Alphonse.Inspect.max_width;
  Fmt.pr "  re-establishment could use up to %.0f-way parallelism.@."
    p.Alphonse.Inspect.speedup_bound
