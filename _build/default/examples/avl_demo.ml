(* Dynamic data structures (§7.3): AVL trees whose balancing is a
   maintained method. Insertion and deletion are the plain unbalanced BST
   algorithms; calling [rebalance] re-establishes the AVL property
   incrementally. Compares against the hand-coded "ambitious programmer"
   AVL of §9 on correctness and on work performed.

     dune exec examples/avl_demo.exe *)

module Engine = Alphonse.Engine
module Avl = Trees.Avl
module B = Trees.Avl_baseline

let () =
  let eng = Engine.create () in
  let t = Avl.create eng in

  Fmt.pr "Insert 1..1000 in sorted order (worst case), rebalancing as we \
          go:@.";
  for k = 1 to 1000 do
    Avl.insert t k;
    Avl.rebalance t
  done;
  Fmt.pr "  height = %d (minimum possible is 10)@."
    (Avl.check_height (Avl.root t));
  Fmt.pr "  AVL invariant: %b, ordered: %b, size = %d@."
    (Avl.is_balanced (Avl.root t))
    (Avl.is_ordered (Avl.root t))
    (Avl.size t);

  (* one more insertion: the incremental cost *)
  Engine.reset_stats eng;
  Avl.insert t 5000;
  Avl.rebalance t;
  let s = Engine.stats eng in
  Fmt.pr "@.One more insertion re-executed only %d balance/height \
          instances@."
    s.Engine.executions;

  (* the off-line mode: batch wild mutations, then balance once *)
  Fmt.pr "@.Off-line mode: delete all multiples of 3 with NO intermediate@.";
  Fmt.pr "rebalancing, then balance once:@.";
  for k = 1 to 1000 do
    if k mod 3 = 0 then Avl.delete t k
  done;
  Engine.reset_stats eng;
  Avl.rebalance t;
  Fmt.pr "  rebalanced in one pass: balanced=%b ordered=%b size=%d@."
    (Avl.is_balanced (Avl.root t))
    (Avl.is_ordered (Avl.root t))
    (Avl.size t);

  (* searches *)
  Fmt.pr "@.Searches (each rebalances first, as §7.3 prescribes):@.";
  Fmt.pr "  mem 998 = %b, mem 999 = %b, mem 5000 = %b@." (Avl.mem t 998)
    (Avl.mem t 999) (Avl.mem t 5000);

  (* differential against the hand-coded baseline *)
  let baseline = ref B.Nil in
  for k = 1 to 1000 do
    baseline := B.insert !baseline k
  done;
  baseline := B.insert !baseline 5000;
  for k = 1 to 1000 do
    if k mod 3 = 0 then baseline := B.delete !baseline k
  done;
  Fmt.pr "@.Hand-coded AVL baseline (the §9 'ambitious programmer'):@.";
  Fmt.pr "  same contents: %b, baseline height = %d, alphonse height = %d@."
    (B.to_list !baseline = Avl.to_list t)
    (B.check_height !baseline)
    (Avl.check_height (Avl.root t));
  Fmt.pr
    "@.The baseline interleaves rotation and height bookkeeping into every@.";
  Fmt.pr
    "insert/delete; the Alphonse version wrote only the exhaustive spec.@."
