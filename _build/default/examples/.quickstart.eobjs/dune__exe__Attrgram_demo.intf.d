examples/attrgram_demo.mli:
