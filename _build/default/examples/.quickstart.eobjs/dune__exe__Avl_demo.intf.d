examples/avl_demo.mli:
