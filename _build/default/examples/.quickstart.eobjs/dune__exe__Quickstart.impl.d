examples/quickstart.ml: Alphonse Depgraph Fmt Trees
