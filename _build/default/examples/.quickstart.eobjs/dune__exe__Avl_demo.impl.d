examples/avl_demo.ml: Alphonse Fmt Trees
