examples/spreadsheet_demo.mli:
