examples/lang_demo.ml: Alphonse Fmt Lang Transform
