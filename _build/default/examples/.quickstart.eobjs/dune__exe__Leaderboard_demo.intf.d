examples/leaderboard_demo.mli:
