examples/attrgram_demo.ml: Alphonse Array Attrgram Float Fmt
