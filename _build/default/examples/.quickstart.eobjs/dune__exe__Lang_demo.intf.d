examples/lang_demo.mli:
