examples/quickstart.mli:
