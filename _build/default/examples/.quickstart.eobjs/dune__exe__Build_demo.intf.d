examples/build_demo.mli:
