examples/spreadsheet_demo.ml: Alphonse Float Fmt List Spreadsheet String
