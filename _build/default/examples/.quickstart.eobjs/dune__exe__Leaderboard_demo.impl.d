examples/leaderboard_demo.ml: Alphonse Array Fmt Random Trees
