examples/build_demo.ml: Alphonse Depgraph Fmt Hashtbl List String
