(* Quickstart: the paper's opening example (Algorithm 1).

   A binary tree maintains the height at every node. The exhaustive
   specification is the obvious recursive pass; declaring it as an
   Alphonse Func makes the runtime maintain it incrementally across
   pointer surgery by the mutator.

     dune exec examples/quickstart.exe *)

module Engine = Alphonse.Engine
module Var = Alphonse.Var
module Func = Alphonse.Func
module Itree = Trees.Itree

let show eng label =
  let s = Engine.stats eng in
  Fmt.pr "  %-34s executions=%-5d cache hits=%d@." label
    s.Engine.executions s.Engine.cache_hits

let () =
  let eng = Engine.create () in
  let forest = Itree.create eng in

  (* a perfectly balanced tree with 1023 nodes *)
  let tree = Itree.perfect forest 0 1022 in
  Fmt.pr "Built a perfect tree with %d nodes.@." (Itree.size tree);

  Fmt.pr "@.First height query (pays the exhaustive O(n) pass):@.";
  Fmt.pr "  height = %d@." (Itree.height forest tree);
  show eng "after first query";

  Engine.reset_stats eng;
  Fmt.pr "@.Second query (answered from the argument table, O(1)):@.";
  Fmt.pr "  height = %d@." (Itree.height forest tree);
  show eng "after repeat query";

  (* mutate: graft a 12-deep spine under the leftmost leaf *)
  Engine.reset_stats eng;
  let rec leftmost = function
    | Itree.Nil -> assert false
    | Itree.Node n -> (
      match Var.get n.Itree.left with
      | Itree.Nil -> n
      | sub -> leftmost sub)
  in
  let leaf = leftmost tree in
  Var.set leaf.Itree.left (Itree.spine forest 12);
  Fmt.pr "@.Grafted a 12-node spine under a deep leaf; querying again@.";
  Fmt.pr "(only the new nodes and the root path re-execute):@.";
  Fmt.pr "  height = %d@." (Itree.height forest tree);
  show eng "after graft + query";

  (* show a slice of the dependency graph *)
  let g = Engine.graph_stats eng in
  Fmt.pr "@.Dependency graph: %d nodes, %d edges (O(M) space, paper 9.1).@."
    g.Depgraph.Graph.live_nodes g.Depgraph.Graph.live_edges;

  (* the §10 bonus: the same dependency information exposes the
     parallelism available in re-establishing the property *)
  let prof = Alphonse.Inspect.parallel_profile eng in
  Fmt.pr
    "@.Parallelism profile (paper §10): %d instances, critical path %d,@."
    prof.Alphonse.Inspect.total_instances prof.Alphonse.Inspect.critical_path;
  Fmt.pr "speedup bound %.0fx if levels re-executed concurrently.@."
    prof.Alphonse.Inspect.speedup_bound;

  Fmt.pr "@.The same property under the exhaustive baseline would walk all@.";
  Fmt.pr "%d nodes on every query — that difference is the entire paper.@."
    (Itree.size tree)
