(* Attribute grammars as Alphonse data types (§7.1): the paper's
   let-expression grammar under interactive-style editing, plus Knuth's
   binary numeral grammar. Each edit re-attributes only affected paths.

     dune exec examples/attrgram_demo.exe *)

module Engine = Alphonse.Engine
module Ag = Attrgram.Ag
module L = Attrgram.Let_lang
module B = Attrgram.Binary

let () =
  let eng = Engine.create () in
  let l = L.create eng in

  (* let x = 3 in x + (let y = x + 4 in y + x)  —  3 + (7 + 3) = 13 *)
  let x_binding = L.int l 3 in
  let inner_x = L.id l "x" in
  let inner =
    L.let_ l "y"
      (L.plus l (L.id l "x") (L.int l 4))
      (L.plus l (L.id l "y") inner_x)
  in
  let tree = L.root l (L.let_ l "x" x_binding (L.plus l (L.id l "x") inner)) in

  Fmt.pr "Program: let x = 3 in x + (let y = x + 4 in y + x)@.";
  Fmt.pr "  value = %d@." (L.value_of l tree);

  let count label thunk =
    let before = (Engine.stats eng).Engine.executions in
    thunk ();
    let v = L.value_of l tree in
    let cost = (Engine.stats eng).Engine.executions - before in
    Fmt.pr "  %-42s value = %-4d (%d attribute re-evaluations)@." label v cost
  in
  count "x <- 10 (flows into every use of x):" (fun () ->
      L.set_int x_binding 10);
  count "x <- 10 again (no change at all):" (fun () ->
      L.set_int x_binding 10);
  count "rename the inner x occurrence to y (capture!):" (fun () ->
      L.rename_id inner_x "y");
  count "splice: replace the let body with 100:" (fun () ->
      Ag.set_child inner 1 (L.int l 100));
  Fmt.pr "  exhaustive interpreter agrees: %b@.@."
    (L.exhaustive_value tree = L.value_of l tree);

  (* ---- Knuth's binary numerals ---- *)
  let eng2 = Engine.create () in
  let b = B.create eng2 in
  let n = B.of_string b "1101.01" in
  Fmt.pr "Binary numeral 1101.01:@.";
  Fmt.pr "  value = %g@." (B.value_of b n);
  let leaves = Array.of_list (B.bit_leaves n) in
  let flip i =
    let before = (Engine.stats eng2).Engine.executions in
    B.flip leaves.(i);
    let v = B.value_of b n in
    let cost = (Engine.stats eng2).Engine.executions - before in
    Fmt.pr "  flip bit %d -> value = %-6g (%d re-evaluations)@." i v cost
  in
  flip 0;
  (* most significant: big value change, small re-evaluation *)
  flip 5;
  (* fractional bit *)
  flip 0;
  Fmt.pr "  exhaustive agrees: %b@."
    (Float.abs (B.exhaustive_value n -. B.value_of b n) < 1e-9);

  Fmt.pr
    "@.No static attribute-dependency analysis anywhere: Alphonse's dynamic@.";
  Fmt.pr
    "dependency graph discovered the synthesized/inherited flows at run \
     time.@."
