(* The §7.2 spreadsheet: a small budgeting sheet edited interactively
   (scripted), demonstrating that each edit recomputes only the affected
   cells, that errors and circular references are values, and that the
   incremental results always match a from-scratch evaluation.

     dune exec examples/spreadsheet_demo.exe *)

module Engine = Alphonse.Engine
module S = Spreadsheet.Sheet
module F = Spreadsheet.Formula

let sheet = S.create ()

let edit name input =
  Fmt.pr "  %-4s <- %-22s" name (if input = "" then "(clear)" else input);
  let before = (Engine.stats (S.engine sheet)).Engine.executions in
  S.set sheet name input;
  (* show the visible summary cells after the edit *)
  let show name = Fmt.str "%s=%a" name S.pp_value (S.value_at sheet name) in
  let work =
    (Engine.stats (S.engine sheet)).Engine.executions - before
    (* edits are lazy; force the summaries first *)
  in
  ignore work;
  let summary = String.concat "  " (List.map show [ "B6"; "B7"; "B8" ]) in
  let after = (Engine.stats (S.engine sheet)).Engine.executions in
  Fmt.pr "| %s   (%d cell re-executions)@." summary (after - before)

let () =
  Fmt.pr "A budget sheet: A=item costs, B6=SUM, B7=average, B8=verdict.@.@.";
  (* quantities and unit prices *)
  List.iter
    (fun (name, v) -> S.set sheet name v)
    [
      ("A1", "120"); (* rent *)
      ("A2", "45"); (* utilities *)
      ("A3", "63"); (* groceries *)
      ("A4", "30"); (* transit *)
      ("A5", "19"); (* fun *)
      ("B6", "=SUM(A1:A5)");
      ("B7", "=AVG(A1:A5)");
      ("B8", "=IF(B6>250, 1, 0)"); (* over budget? *)
    ];
  Fmt.pr "Initial evaluation:@.";
  Fmt.pr "  total   B6 = %a@." S.pp_value (S.value_at sheet "B6");
  Fmt.pr "  average B7 = %a@." S.pp_value (S.value_at sheet "B7");
  Fmt.pr "  over?   B8 = %a@.@." S.pp_value (S.value_at sheet "B8");

  Fmt.pr "Edits (each shows how many cell instances re-executed):@.";
  edit "A3" "80";
  edit "A5" "0";
  edit "A5" "";
  edit "B7" "=B6/COUNT(A1:A5)";
  edit "A2" "45" (* same value: nothing recomputes *);

  Fmt.pr "@.Errors are values:@.";
  S.set sheet "C1" "=1/0";
  S.set sheet "C2" "=C1+5";
  Fmt.pr "  C1 = %a, C2 = %a@." S.pp_value (S.value_at sheet "C1") S.pp_value
    (S.value_at sheet "C2");

  Fmt.pr "@.Circular references are caught, and recover when broken:@.";
  S.set sheet "D1" "=D2";
  S.set sheet "D2" "=D1";
  Fmt.pr "  D1 = %a, D2 = %a@." S.pp_value (S.value_at sheet "D1") S.pp_value
    (S.value_at sheet "D2");
  S.set sheet "D2" "21";
  Fmt.pr "  after D2 <- 21:  D1 = %a, D2 = %a@." S.pp_value
    (S.value_at sheet "D1") S.pp_value (S.value_at sheet "D2");

  (* cross-check every cell against the exhaustive oracle *)
  let all_ok =
    List.for_all
      (fun coord ->
        let a = S.value sheet coord and b = S.exhaustive_value sheet coord in
        match (a, b) with
        | S.Num x, S.Num y -> Float.abs (x -. y) < 1e-9
        | a, b -> a = b)
      (S.coords sheet)
  in
  Fmt.pr "@.The sheet, rendered:@.%s" (S.render sheet);
  Fmt.pr "@.Every cell agrees with from-scratch evaluation: %b@." all_ok;
  let s = Engine.stats (S.engine sheet) in
  Fmt.pr "Session totals: %d executions, %d cache hits.@." s.Engine.executions
    s.Engine.cache_hits
