(** Spreadsheet formula language: AST, hand-written lexer and
    recursive-descent parser, and pretty-printer.

    The paper's §7.2 spreadsheet builds cell functions as expression trees
    (its [CellExp] production selects another cell); this module is the
    front end that produces those trees from the familiar ["=A1+2*B3"]
    notation, extended with ranges, aggregates, comparisons, and IF —
    enough surface to express realistic sheets in the E3 benches.

    Grammar (precedence climbing):
    {v
    expr   := add (CMP add)?          CMP ∈ { < <= > >= = <> }
    add    := mul ((+|-) mul)*
    mul    := unary (( * | / ) unary)*
    unary  := - unary | pow
    pow    := atom (^ unary)?         right associative
    atom   := NUMBER | CELL | FUNC '(' args ')' | '(' expr ')'
    args   := range | expr (',' expr)*
    range  := CELL ':' CELL
    v} *)

type range = { c0 : int; r0 : int; c1 : int; r1 : int }

type aggregate = Sum | Avg | Min | Max | Count

type binop = Add | Sub | Mul | Div | Pow | Lt | Le | Gt | Ge | Eq | Ne

type fn1 = Abs | Sqrt | Round

type expr =
  | Num of float
  | Cell of int * int  (** column, row — both 0-based *)
  | Agg of aggregate * range
  | Binop of binop * expr * expr
  | Neg of expr
  | Fn1 of fn1 * expr
  | If of expr * expr * expr

(* ------------------------------------------------------------------ *)
(* Cell-name notation                                                  *)
(* ------------------------------------------------------------------ *)

(** ["A1"] is column 0, row 0; ["AB12"] is column 27, row 11. *)
let name_of_cell (c, r) =
  let rec letters c acc =
    let acc = String.make 1 (Char.chr (Char.code 'A' + (c mod 26))) ^ acc in
    if c < 26 then acc else letters ((c / 26) - 1) acc
  in
  letters c "" ^ string_of_int (r + 1)

let pp_range ppf { c0; r0; c1; r1 } =
  Fmt.pf ppf "%s:%s" (name_of_cell (c0, r0)) (name_of_cell (c1, r1))

let agg_name = function
  | Sum -> "SUM"
  | Avg -> "AVG"
  | Min -> "MIN"
  | Max -> "MAX"
  | Count -> "COUNT"

let fn1_name = function Abs -> "ABS" | Sqrt -> "SQRT" | Round -> "ROUND"

let binop_name = function
  | Add -> "+"
  | Sub -> "-"
  | Mul -> "*"
  | Div -> "/"
  | Pow -> "^"
  | Lt -> "<"
  | Le -> "<="
  | Gt -> ">"
  | Ge -> ">="
  | Eq -> "="
  | Ne -> "<>"

let rec pp ppf = function
  | Num x ->
    if Float.is_integer x && Float.abs x < 1e15 then
      Fmt.pf ppf "%d" (int_of_float x)
    else Fmt.pf ppf "%g" x
  | Cell (c, r) -> Fmt.string ppf (name_of_cell (c, r))
  | Agg (a, rg) -> Fmt.pf ppf "%s(%a)" (agg_name a) pp_range rg
  | Binop (op, a, b) -> Fmt.pf ppf "(%a%s%a)" pp a (binop_name op) pp b
  | Neg e -> Fmt.pf ppf "(-%a)" pp e
  | Fn1 (f, e) -> Fmt.pf ppf "%s(%a)" (fn1_name f) pp e
  | If (c, t, e) -> Fmt.pf ppf "IF(%a,%a,%a)" pp c pp t pp e

let to_string e = Fmt.str "%a" pp e

(** All cell coordinates an expression mentions (ranges expanded) — the
    static dependency read-set, used by tests to cross-check the dynamic
    analysis. *)
let references expr =
  let rec go acc = function
    | Num _ -> acc
    | Cell (c, r) -> (c, r) :: acc
    | Agg (_, { c0; r0; c1; r1 }) ->
      let acc = ref acc in
      for c = c0 to c1 do
        for r = r0 to r1 do
          acc := (c, r) :: !acc
        done
      done;
      !acc
    | Binop (_, a, b) -> go (go acc a) b
    | Neg e | Fn1 (_, e) -> go acc e
    | If (a, b, c) -> go (go (go acc a) b) c
  in
  List.sort_uniq compare (go [] expr)

(* ------------------------------------------------------------------ *)
(* Lexer                                                               *)
(* ------------------------------------------------------------------ *)

type token =
  | TNum of float
  | TCell of int * int
  | TIdent of string
  | TLparen
  | TRparen
  | TComma
  | TColon
  | TOp of binop
  | TMinus
  | TPlus
  | TEnd

exception Parse_error of string

let fail fmt = Fmt.kstr (fun s -> raise (Parse_error s)) fmt

let tokenize src =
  let n = String.length src in
  let toks = ref [] in
  let emit t = toks := t :: !toks in
  let i = ref 0 in
  let peek () = if !i < n then Some src.[!i] else None in
  let is_digit c = c >= '0' && c <= '9' in
  let is_alpha c = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') in
  while !i < n do
    let c = src.[!i] in
    if c = ' ' || c = '\t' then incr i
    else if is_digit c || c = '.' then begin
      let start = !i in
      while
        !i < n
        && (is_digit src.[!i] || src.[!i] = '.' || src.[!i] = 'e'
           || src.[!i] = 'E'
           || ((src.[!i] = '+' || src.[!i] = '-')
              && !i > start
              && (src.[!i - 1] = 'e' || src.[!i - 1] = 'E')))
      do
        incr i
      done;
      let s = String.sub src start (!i - start) in
      match float_of_string_opt s with
      | Some x -> emit (TNum x)
      | None -> fail "bad number %S" s
    end
    else if is_alpha c then begin
      let start = !i in
      while !i < n && (is_alpha src.[!i] || is_digit src.[!i]) do
        incr i
      done;
      let word = String.sub src start (!i - start) in
      (* cell reference: uppercase letters followed by digits *)
      let letters = ref 0 in
      while
        !letters < String.length word
        && word.[!letters] >= 'A'
        && word.[!letters] <= 'Z'
      do
        incr letters
      done;
      let rest = String.sub word !letters (String.length word - !letters) in
      if
        !letters > 0
        && String.length rest > 0
        && String.for_all is_digit rest
      then begin
        let col =
          let v = ref 0 in
          for k = 0 to !letters - 1 do
            v := (!v * 26) + (Char.code word.[k] - Char.code 'A' + 1)
          done;
          !v - 1
        in
        let row = int_of_string rest - 1 in
        if row < 0 then fail "bad row in %S" word;
        emit (TCell (col, row))
      end
      else emit (TIdent (String.uppercase_ascii word))
    end
    else begin
      incr i;
      match c with
      | '(' -> emit TLparen
      | ')' -> emit TRparen
      | ',' -> emit TComma
      | ':' -> emit TColon
      | '+' -> emit TPlus
      | '-' -> emit TMinus
      | '*' -> emit (TOp Mul)
      | '/' -> emit (TOp Div)
      | '^' -> emit (TOp Pow)
      | '=' -> emit (TOp Eq)
      | '<' ->
        if peek () = Some '=' then (incr i; emit (TOp Le))
        else if peek () = Some '>' then (incr i; emit (TOp Ne))
        else emit (TOp Lt)
      | '>' ->
        if peek () = Some '=' then (incr i; emit (TOp Ge)) else emit (TOp Gt)
      | c -> fail "unexpected character %C" c
    end
  done;
  List.rev (TEnd :: !toks)

(* ------------------------------------------------------------------ *)
(* Parser                                                              *)
(* ------------------------------------------------------------------ *)

type stream = { mutable toks : token list }

let peek_tok s = match s.toks with [] -> TEnd | t :: _ -> t

let advance s = match s.toks with [] -> () | _ :: rest -> s.toks <- rest

let expect s t what =
  if peek_tok s = t then advance s else fail "expected %s" what

let rec parse_expr s =
  let lhs = parse_add s in
  match peek_tok s with
  | TOp ((Lt | Le | Gt | Ge | Eq | Ne) as op) ->
    advance s;
    Binop (op, lhs, parse_add s)
  | _ -> lhs

and parse_add s =
  let rec go lhs =
    match peek_tok s with
    | TPlus ->
      advance s;
      go (Binop (Add, lhs, parse_mul s))
    | TMinus ->
      advance s;
      go (Binop (Sub, lhs, parse_mul s))
    | _ -> lhs
  in
  go (parse_mul s)

and parse_mul s =
  let rec go lhs =
    match peek_tok s with
    | TOp ((Mul | Div) as op) ->
      advance s;
      go (Binop (op, lhs, parse_unary s))
    | _ -> lhs
  in
  go (parse_unary s)

and parse_unary s =
  match peek_tok s with
  | TMinus ->
    advance s;
    Neg (parse_unary s)
  | TPlus ->
    advance s;
    parse_unary s
  | _ -> parse_pow s

and parse_pow s =
  let base = parse_atom s in
  match peek_tok s with
  | TOp Pow ->
    advance s;
    Binop (Pow, base, parse_unary s)
  | _ -> base

and parse_atom s =
  match peek_tok s with
  | TNum x ->
    advance s;
    Num x
  | TCell (c, r) ->
    advance s;
    Cell (c, r)
  | TLparen ->
    advance s;
    let e = parse_expr s in
    expect s TRparen ")";
    e
  | TIdent name ->
    advance s;
    expect s TLparen (Fmt.str "( after %s" name);
    let result =
      match name with
      | "SUM" | "AVG" | "MIN" | "MAX" | "COUNT" ->
        let agg =
          match name with
          | "SUM" -> Sum
          | "AVG" -> Avg
          | "MIN" -> Min
          | "MAX" -> Max
          | _ -> Count
        in
        Agg (agg, parse_range s)
      | "ABS" | "SQRT" | "ROUND" ->
        let f =
          match name with "ABS" -> Abs | "SQRT" -> Sqrt | _ -> Round
        in
        Fn1 (f, parse_expr s)
      | "IF" ->
        let c = parse_expr s in
        expect s TComma ", in IF";
        let t = parse_expr s in
        expect s TComma ", in IF";
        let e = parse_expr s in
        If (c, t, e)
      | _ -> fail "unknown function %s" name
    in
    expect s TRparen ")";
    result
  | TEnd -> fail "unexpected end of formula"
  | _ -> fail "unexpected token"

and parse_range s =
  match peek_tok s with
  | TCell (c0, r0) -> (
    advance s;
    match peek_tok s with
    | TColon -> (
      advance s;
      match peek_tok s with
      | TCell (c1, r1) ->
        advance s;
        { c0 = min c0 c1; r0 = min r0 r1; c1 = max c0 c1; r1 = max r0 r1 }
      | _ -> fail "expected cell after :")
    | _ -> { c0; r0; c1 = c0; r1 = r0 })
  | _ -> fail "expected range"

(** Parse a formula body (the text after [=]). *)
let parse src =
  match tokenize src with
  | exception Parse_error e -> Error e
  | toks -> (
    let s = { toks } in
    match parse_expr s with
    | exception Parse_error e -> Error e
    | e -> if peek_tok s = TEnd then Ok e else Error "trailing input")
