lib/spreadsheet/formula.ml: Char Float Fmt List String
