lib/spreadsheet/formula.mli: Format
