lib/spreadsheet/sheet.mli: Alphonse Format Formula
