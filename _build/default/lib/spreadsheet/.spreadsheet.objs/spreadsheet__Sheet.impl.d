lib/spreadsheet/sheet.ml: Alphonse Array Buffer Float Fmt Formula Hashtbl List String
