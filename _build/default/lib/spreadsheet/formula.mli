(** Spreadsheet formula language: AST, hand-written lexer and
    recursive-descent parser, and a pretty-printer that is a fixpoint of
    print∘parse.

    The paper's §7.2 spreadsheet builds cell functions as expression trees
    (its [CellExp] production selects another cell); this module is the
    front end producing those trees from ["=A1+2*B3"] notation, extended
    with ranges, aggregates, comparisons and IF. *)

type range = { c0 : int; r0 : int; c1 : int; r1 : int }
(** Inclusive rectangle, 0-based, normalized so [c0 <= c1] and
    [r0 <= r1]. *)

type aggregate = Sum | Avg | Min | Max | Count

type binop = Add | Sub | Mul | Div | Pow | Lt | Le | Gt | Ge | Eq | Ne

type fn1 = Abs | Sqrt | Round

type expr =
  | Num of float
  | Cell of int * int  (** column, row — both 0-based *)
  | Agg of aggregate * range
  | Binop of binop * expr * expr
  | Neg of expr
  | Fn1 of fn1 * expr
  | If of expr * expr * expr

(** {1 Cell-name notation} *)

val name_of_cell : int * int -> string
(** [(0,0)] is ["A1"]; [(27,11)] is ["AB12"]. *)

(** {1 Printing} *)

val pp : Format.formatter -> expr -> unit
val pp_range : Format.formatter -> range -> unit
val to_string : expr -> string

(** {1 Analysis} *)

val references : expr -> (int * int) list
(** All cell coordinates the expression mentions, ranges expanded and
    deduplicated — the static read-set, used by tests to cross-check the
    dynamic dependency analysis. *)

(** {1 Parsing} *)

exception Parse_error of string
(** Raised internally; {!parse} converts it to a [result]. *)

val parse : string -> (expr, string) result
(** Parse a formula body (the text after [=]). Case-insensitive function
    names; ranges are normalized; row numbers are 1-based in the
    notation. *)
