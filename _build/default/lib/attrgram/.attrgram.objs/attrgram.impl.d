lib/attrgram/attrgram.ml: Ag Binary Let_lang Let_lang_static Static_ag
