lib/attrgram/let_lang.ml: Ag Fmt List Option
