lib/attrgram/let_lang.mli: Ag Alphonse Format
