lib/attrgram/binary.ml: Ag Fmt List Option String
