lib/attrgram/ag.ml: Alphonse Fmt List String
