lib/attrgram/let_lang_static.ml: Let_lang List Static_ag
