lib/attrgram/static_ag.ml: Array Fmt Hashtbl List Option Queue
