lib/attrgram/ag.mli: Alphonse Format
