lib/attrgram/binary.mli: Ag Alphonse
