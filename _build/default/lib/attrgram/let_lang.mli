(** The paper's attribute-grammar example (§7.1, Algorithms 6–9): a
    let-expression language with a synthesized [value] attribute and an
    inherited [env] attribute.

    {v
    ROOT ::= EXP              ROOT.value = EXP.value
                              EXP.env    = EmptyEnv()
    EXP0 ::= EXP1 + EXP2      EXP0.value = EXP1.value + EXP2.value
                              EXPi.env   = EXP0.env
    EXP0 ::= let ID = EXP1 in EXP2 ni
                              EXP0.value = EXP2.value
                              EXP1.env   = EXP0.env
                              EXP2.env   = UpdateEnv(EXP0.env, ID, EXP1.value)
    EXP  ::= ID               EXP.value  = LookupEnv(EXP.env, ID)
    EXP  ::= INT              EXP.value  = INT
    v} *)

type value =
  | VInt of int
  | VStr of string  (** identifier terminals *)
  | VEnv of (string * int) list  (** the inherited environment *)

val pp_value : Format.formatter -> value -> unit

exception Unbound_identifier of string

val int_of : value -> int
val env_of : value -> (string * int) list
val str_of : value -> string

type t
(** The instantiated grammar: its [value] and [env] attributes. *)

val create : ?strategy:Alphonse.Engine.strategy -> Alphonse.Engine.t -> t

(** {1 Constructors} *)

val root : t -> value Ag.node -> value Ag.node
val plus : t -> value Ag.node -> value Ag.node -> value Ag.node

val let_ : t -> string -> value Ag.node -> value Ag.node -> value Ag.node
(** [let_ t id bound body] is [let id = bound in body ni]. *)

val id : t -> string -> value Ag.node
val int : t -> int -> value Ag.node

(** {1 Evaluation} *)

val value_of : t -> value Ag.node -> int
(** Incremental evaluation via the maintained attributes.
    @raise Unbound_identifier on a free identifier. *)

val exhaustive_value : value Ag.node -> int
(** From-scratch reference interpreter over the same mutable tree — the
    conventional execution this must always agree with (Theorem 5.1). *)

(** {1 Edits} *)

val set_int : value Ag.node -> int -> unit
(** Change an [int] leaf's terminal. *)

val rename_let : value Ag.node -> string -> unit
(** Rename a [let] binder. *)

val rename_id : value Ag.node -> string -> unit
(** Rename an [id] occurrence. *)
