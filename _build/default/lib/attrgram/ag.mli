(** Attribute grammars as Alphonse data types — paper §7.1.

    Each production instance is a heap object with a tracked parent
    pointer, tracked children, and tracked terminal fields; attributes
    are maintained methods keyed by node. Synthesized attributes look at
    children; inherited attributes dispatch on the parent production and
    child slot (the paper's single-method-with-context encoding). Because
    equation bodies read structure and other attributes through tracked
    operations, Alphonse discovers the attribute dependency graph
    dynamically — no grammar-class restriction and no static circularity
    analysis (the "subsumes grammar based languages" claim of §10). *)

type 'v node
(** A production instance carrying attribute/terminal values of type
    ['v]. *)

type 'v grammar
(** A grammar context: the engine plus a node allocator. *)

val node_equal : 'v node -> 'v node -> bool
val node_hash : 'v node -> int

val create :
  ?value_equal:('v -> 'v -> bool) -> Alphonse.Engine.t -> 'v grammar
(** [create engine] makes a grammar whose attribute quiescence test is
    [value_equal] (default [( = )]). *)

val engine : 'v grammar -> Alphonse.Engine.t

(** {1 Building trees} *)

val node :
  'v grammar ->
  prod:string ->
  ?terminals:(string * 'v) list ->
  'v node list ->
  'v node
(** [node g ~prod children] allocates a production instance and points
    the children's parent pointers at it. *)

val prod : 'v node -> string
val children : 'v node -> 'v node list

val child : 'v node -> int -> 'v node
(** @raise Invalid_argument if the slot does not exist. *)

val parent : 'v node -> 'v node option

val terminal : 'v node -> string -> 'v
(** Tracked read of a terminal field.
    @raise Invalid_argument if the production has no such terminal. *)

val set_terminal : 'v node -> string -> 'v -> unit

val index_in_parent : 'v node -> int option
(** The child slot this node occupies under its parent — the context
    dispatch of inherited attributes (the paper's "IF c = o.expl"). *)

(** {1 Tree edits (mutator operations)} *)

val set_child : 'v node -> int -> 'v node -> unit
(** Replace child [i], detaching the old child and re-pointing parents. *)

val insert_child : 'v node -> int -> 'v node -> unit
val remove_child : 'v node -> int -> unit

(** {1 Attributes} *)

type 'v attr
(** A declared attribute: one incremental procedure instance per node. *)

val attribute :
  ?strategy:Alphonse.Engine.strategy ->
  'v grammar ->
  name:string ->
  ('v node -> 'v) ->
  'v attr
(** [attribute g ~name body] declares an attribute whose equation [body]
    may read structure ({!children}, {!parent}, {!terminal}) and other
    attributes ({!eval}); all reads are tracked. *)

val eval : 'v attr -> 'v node -> 'v
(** Incremental evaluation of an attribute occurrence. *)

(** {1 Traversals} *)

val iter : ('v node -> unit) -> 'v node -> unit
(** Preorder traversal of the subtree. *)

val size : 'v node -> int
val pp : Format.formatter -> 'v node -> unit
