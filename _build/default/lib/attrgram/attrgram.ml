(** Attribute grammars as Alphonse data types (paper §7.1).

    {!Ag} is the framework (production-instance trees, tracked structure,
    attributes as maintained methods); {!Let_lang} is the paper's
    let-expression grammar (Algorithms 6–9); {!Binary} is Knuth's binary
    numeral grammar, the classic inherited-attribute example. *)

module Ag = Ag
module Let_lang = Let_lang
module Binary = Binary
module Static_ag = Static_ag
module Let_lang_static = Let_lang_static
