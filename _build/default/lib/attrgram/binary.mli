(** Knuth's binary-numeral grammar ([Knu68] in the paper's references) as
    a second framework instance: synthesized [value] and [length],
    inherited [scale]. The classic demonstration that inherited
    attributes flow context {e down} while synthesized attributes flow
    results {e up} — both discovered dynamically here. *)

type value =
  | F of float  (** the value and scale attributes *)
  | I of int  (** bit terminals and the length attribute *)

val f_of : value -> float
val i_of : value -> int

type t
(** The instantiated grammar and its three attributes. *)

val create : ?strategy:Alphonse.Engine.strategy -> Alphonse.Engine.t -> t

(** {1 Constructors} *)

val bit : t -> int -> value Ag.node
(** A bit leaf; the argument must be 0 or 1. *)

val one_bit : t -> value Ag.node -> value Ag.node
(** The list production [L ::= B]. *)

val cons : t -> value Ag.node -> value Ag.node -> value Ag.node
(** The list production [L ::= L1 B]. *)

val num : t -> ?frac:value Ag.node -> value Ag.node -> value Ag.node
(** [num t int_part] or [num t ~frac int_part] — the numeral root. *)

val of_string : t -> string -> value Ag.node
(** Build a numeral from text like ["1101.01"]. *)

(** {1 Evaluation and edits} *)

val value_of : t -> value Ag.node -> float
(** Incremental value of a numeral. *)

val exhaustive_value : value Ag.node -> float
(** From-scratch reference over the same mutable tree. *)

val flip : value Ag.node -> unit
(** Flip one bit leaf. *)

val bit_leaves : value Ag.node -> value Ag.node list
(** All bit leaves, left to right. *)
