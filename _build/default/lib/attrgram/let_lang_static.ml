(** The let-expression grammar of §7.1 on the {!Static_ag} baseline
    evaluator, with every dependency declared statically — the way a
    production-based system (§10) would encode it. Reuses
    {!Let_lang.value} so the two engines can be differentially tested
    against each other and against the exhaustive interpreter.

    Note what {e cannot} be written here: a [CellExp]-style production
    whose value reads an arbitrary other node — the dependency forms are
    [Self]/[Child]/[Parent]/[Term] only. That expressiveness gap is the
    §10 comparison: Alphonse procedures "are allowed to look at global
    information and navigate arbitrary data structures". *)

module S = Static_ag
open Let_lang

type t = { g : value S.grammar }

let create () =
  let eval_int ctx dep = int_of (ctx.S.get dep) in
  let eval_env ctx dep = env_of (ctx.S.get dep) in
  let prods =
    [
      {
        S.pname = "root";
        arity = 1;
        syn =
          [
            {
              S.target = "value";
              deps = [ S.Child (0, "value") ];
              eval = (fun ctx -> ctx.S.get (S.Child (0, "value")));
            };
          ];
        inh =
          [
            ( 0,
              { S.target = "env"; deps = []; eval = (fun _ -> VEnv []) } );
          ];
      };
      {
        S.pname = "plus";
        arity = 2;
        syn =
          [
            {
              S.target = "value";
              deps = [ S.Child (0, "value"); S.Child (1, "value") ];
              eval =
                (fun ctx ->
                  VInt
                    (eval_int ctx (S.Child (0, "value"))
                    + eval_int ctx (S.Child (1, "value"))));
            };
          ];
        inh =
          [
            ( 0,
              {
                S.target = "env";
                deps = [ S.Self "env" ];
                eval = (fun ctx -> ctx.S.get (S.Self "env"));
              } );
            ( 1,
              {
                S.target = "env";
                deps = [ S.Self "env" ];
                eval = (fun ctx -> ctx.S.get (S.Self "env"));
              } );
          ];
      };
      {
        S.pname = "let";
        arity = 2;
        syn =
          [
            {
              S.target = "value";
              deps = [ S.Child (1, "value") ];
              eval = (fun ctx -> ctx.S.get (S.Child (1, "value")));
            };
          ];
        inh =
          [
            ( 0,
              {
                S.target = "env";
                deps = [ S.Self "env" ];
                eval = (fun ctx -> ctx.S.get (S.Self "env"));
              } );
            ( 1,
              {
                S.target = "env";
                deps = [ S.Self "env"; S.Child (0, "value"); S.Term "id" ];
                eval =
                  (fun ctx ->
                    let id = str_of (ctx.S.get (S.Term "id")) in
                    let bound = eval_int ctx (S.Child (0, "value")) in
                    VEnv ((id, bound) :: eval_env ctx (S.Self "env")));
              } );
          ];
      };
      {
        S.pname = "id";
        arity = 0;
        syn =
          [
            {
              S.target = "value";
              deps = [ S.Self "env"; S.Term "id" ];
              eval =
                (fun ctx ->
                  let id = str_of (ctx.S.get (S.Term "id")) in
                  match List.assoc_opt id (eval_env ctx (S.Self "env")) with
                  | Some v -> VInt v
                  | None -> raise (Unbound_identifier id));
            };
          ];
        inh = [];
      };
      {
        S.pname = "int";
        arity = 0;
        syn =
          [
            {
              S.target = "value";
              deps = [ S.Term "n" ];
              eval = (fun ctx -> ctx.S.get (S.Term "n"));
            };
          ];
        inh = [];
      };
    ]
  in
  { g = S.grammar prods }

let grammar t = t.g

(* constructors mirroring Let_lang *)
let root t e = S.node t.g ~prod:"root" [ e ]
let plus t a b = S.node t.g ~prod:"plus" [ a; b ]

let let_ t id bound body =
  S.node t.g ~prod:"let" ~terminals:[ ("id", VStr id) ] [ bound; body ]

let id t name = S.node t.g ~prod:"id" ~terminals:[ ("id", VStr name) ] []
let int t n = S.node t.g ~prod:"int" ~terminals:[ ("n", VInt n) ] []

let value_of t n = int_of (S.get t.g n "value")

let set_int t n v = S.set_terminal t.g n "n" (VInt v)
let rename_let t n id = S.set_terminal t.g n "id" (VStr id)
let set_child t n slot fresh = S.set_child t.g n slot fresh
let evals t = S.evals t.g
let reset_evals t = S.reset_evals t.g
