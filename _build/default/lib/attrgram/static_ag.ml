(** A grammar-based incremental attribute evaluator in the style of the
    systems the paper compares against in §10 (the Synthesizer Generator
    and other production-based systems): every equation {e statically
    declares} its dependencies, which must be {e local} — a node's
    attribute may depend only on attributes of the node itself, its
    children, its parent, and its own terminals.

    Static declarations buy cheap bookkeeping: no call stack, no
    dependency discovery, no per-execution edge churn — change
    propagation walks the statically known dependents of each changed
    attribute occurrence. The price is exactly what §10 says: "grammar
    based systems suffer from the local communication and aggregation
    problems" — an equation cannot follow a pointer across the tree (the
    spreadsheet's [CellExp] is inexpressible), and the declared
    dependency set must cover every read (checked at evaluation time
    here: reading an undeclared dependency raises).

    Used as the E2 baseline and as a §10 comparison point for the
    Alphonse encoding in {!Ag}. *)

type dep =
  | Self of string  (** another attribute of this node *)
  | Child of int * string  (** attribute of child [i] *)
  | Parent of string  (** attribute of the parent node *)
  | Term of string  (** a terminal of this node *)

(** Access to declared dependencies during evaluation. Reading anything
    not declared raises [Undeclared_dependency]. *)
type 'v ctx = {
  get : dep -> 'v;
      (** value of a declared dependency.
          @raise Undeclared_dependency if not declared
          @raise Missing_value if the dependency is not available (e.g.
          [Parent _] at the root) *)
  has : dep -> bool;  (** is the dependency available here? *)
}

exception Undeclared_dependency of string

exception Missing_value of string

type 'v equation = {
  target : string;  (** the attribute being defined *)
  deps : dep list;
  eval : 'v ctx -> 'v;
}

type 'v production = {
  pname : string;
  arity : int;
  syn : 'v equation list;  (** equations for this node's own attributes *)
  inh : (int * 'v equation) list;
      (** [(slot, eq)]: equation defining attribute [eq.target] of the
          child in [slot]; its [deps] are relative to {e this} node *)
}

type 'v grammar = {
  prods : (string, 'v production) Hashtbl.t;
  value_equal : 'v -> 'v -> bool;
  mutable next_id : int;
  (* instrumentation, comparable to Engine.stats *)
  mutable evals : int;
}

let grammar ?(value_equal = ( = )) prods =
  let table = Hashtbl.create 16 in
  List.iter
    (fun p ->
      if Hashtbl.mem table p.pname then
        invalid_arg ("Static_ag: duplicate production " ^ p.pname);
      Hashtbl.replace table p.pname p)
    prods;
  { prods = table; value_equal; next_id = 0; evals = 0 }

let evals g = g.evals
let reset_evals g = g.evals <- 0

(* ------------------------------------------------------------------ *)
(* Trees                                                               *)
(* ------------------------------------------------------------------ *)

type 'v node = {
  id : int;
  prod : string;
  mutable children : 'v node array;
  mutable parent : ('v node * int) option;  (** parent and our slot *)
  terminals : (string, 'v) Hashtbl.t;
  attrs : (string, 'v) Hashtbl.t;  (** current attribute values *)
}

let production g n =
  match Hashtbl.find_opt g.prods n.prod with
  | Some p -> p
  | None -> invalid_arg ("Static_ag: unknown production " ^ n.prod)

let node g ~prod ?(terminals = []) children =
  let p =
    match Hashtbl.find_opt g.prods prod with
    | Some p -> p
    | None -> invalid_arg ("Static_ag: unknown production " ^ prod)
  in
  if List.length children <> p.arity then
    invalid_arg
      (Fmt.str "Static_ag: %s expects %d children, got %d" prod p.arity
         (List.length children));
  let id = g.next_id in
  g.next_id <- id + 1;
  let n =
    {
      id;
      prod;
      children = Array.of_list children;
      parent = None;
      terminals = Hashtbl.create 4;
      attrs = Hashtbl.create 4;
    }
  in
  List.iter (fun (k, v) -> Hashtbl.replace n.terminals k v) terminals;
  Array.iteri (fun i c -> c.parent <- Some (n, i)) n.children;
  n

let prod n = n.prod
let children n = Array.to_list n.children
let parent n = Option.map fst n.parent

let terminal n k =
  match Hashtbl.find_opt n.terminals k with
  | Some v -> v
  | None -> raise (Missing_value ("terminal " ^ k))

(* ------------------------------------------------------------------ *)
(* Where is an attribute of a node defined?                            *)
(* ------------------------------------------------------------------ *)

(* A synthesized attribute is defined by the node's own production; an
   inherited one by the parent's. Returns the defining node, the
   equation, and the node the equation's deps are relative to. *)
let defining g n attr =
  let own = production g n in
  match List.find_opt (fun e -> e.target = attr) own.syn with
  | Some eq -> Some (n, eq)
  | None -> (
    match n.parent with
    | None -> None
    | Some (p, slot) ->
      let pp = production g p in
      List.find_map
        (fun (s, eq) ->
          if s = slot && eq.target = attr then Some (p, eq) else None)
        pp.inh)

(* ------------------------------------------------------------------ *)
(* Evaluation                                                          *)
(* ------------------------------------------------------------------ *)

exception Cyclic of string

(* Resolve a dep of an equation whose deps are relative to [home]. *)
let resolve home dep =
  match dep with
  | Self _ | Term _ -> Some home
  | Child (i, _) ->
    if i < Array.length home.children then Some home.children.(i) else None
  | Parent _ -> Option.map fst home.parent

let dep_attr = function
  | Self a | Child (_, a) | Parent a -> Some a
  | Term _ -> None

(* Demand-compute an attribute occurrence, memoized in n.attrs, with an
   on-stack set for static-circularity detection. *)
let rec ensure g stack n attr =
  match Hashtbl.find_opt n.attrs attr with
  | Some v -> v
  | None ->
    if List.exists (fun (m, a) -> m == n && a = attr) stack then
      raise (Cyclic attr);
    let v = compute g ((n, attr) :: stack) n attr in
    Hashtbl.replace n.attrs attr v;
    v

and compute g stack n attr =
  match defining g n attr with
  | None -> raise (Missing_value (Fmt.str "%s of %s#%d" attr n.prod n.id))
  | Some (home, eq) ->
    g.evals <- g.evals + 1;
    let ctx =
      {
        get =
          (fun dep ->
            if not (List.mem dep eq.deps) then
              raise
                (Undeclared_dependency
                   (Fmt.str "%s reads an undeclared dependency" eq.target));
            match (resolve home dep, dep) with
            | None, _ -> raise (Missing_value eq.target)
            | Some m, Term t -> terminal m t
            | Some m, dep -> (
              match dep_attr dep with
              | Some a -> ensure g stack m a
              | None -> assert false));
        has =
          (fun dep ->
            match resolve home dep with
            | None -> false
            | Some m -> (
              match dep with
              | Term t -> Hashtbl.mem m.terminals t
              | _ -> true));
      }
    in
    eq.eval ctx

let get g n attr = ensure g [] n attr

(* ------------------------------------------------------------------ *)
(* Change propagation                                                  *)
(* ------------------------------------------------------------------ *)

(* The statically known dependents of the attribute occurrence (n, a):
   occurrences whose defining equation mentions (n, a). *)
let dependents g n a =
  let acc = ref [] in
  let own = production g n in
  (* this node's synthesized equations reading Self a *)
  List.iter
    (fun eq -> if List.mem (Self a) eq.deps then acc := (n, eq.target) :: !acc)
    own.syn;
  (* inherited equations this node defines for its children, reading
     Self a *)
  List.iter
    (fun (slot, eq) ->
      if List.mem (Self a) eq.deps && slot < Array.length n.children then
        acc := (n.children.(slot), eq.target) :: !acc)
    own.inh;
  (* children's equations reading Parent a *)
  Array.iter
    (fun c ->
      let cp = production g c in
      List.iter
        (fun eq ->
          if List.mem (Parent a) eq.deps then acc := (c, eq.target) :: !acc)
        cp.syn;
      List.iter
        (fun (slot, eq) ->
          if List.mem (Parent a) eq.deps && slot < Array.length c.children
          then acc := (c.children.(slot), eq.target) :: !acc)
        cp.inh)
    n.children;
  (* the parent's equations reading Child (our slot, a) *)
  (match n.parent with
  | None -> ()
  | Some (p, slot) ->
    let pp = production g p in
    List.iter
      (fun eq ->
        if List.mem (Child (slot, a)) eq.deps then
          acc := (p, eq.target) :: !acc)
      pp.syn;
    List.iter
      (fun (s, eq) ->
        if List.mem (Child (slot, a)) eq.deps && s < Array.length p.children
        then acc := (p.children.(s), eq.target) :: !acc)
      pp.inh);
  !acc

(* dependents of a terminal of n *)
let term_dependents g n t =
  let acc = ref [] in
  let own = production g n in
  List.iter
    (fun eq -> if List.mem (Term t) eq.deps then acc := (n, eq.target) :: !acc)
    own.syn;
  List.iter
    (fun (slot, eq) ->
      if List.mem (Term t) eq.deps && slot < Array.length n.children then
        acc := (n.children.(slot), eq.target) :: !acc)
    own.inh;
  !acc

(* FIFO change propagation over attribute occurrences: recompute, compare,
   push dependents on change. Occurrences never evaluated (absent from
   the memo tables) are skipped — they will be computed on demand. *)
let propagate g work =
  let q = Queue.create () in
  List.iter (fun occ -> Queue.add occ q) work;
  while not (Queue.is_empty q) do
    let n, attr = Queue.pop q in
    match Hashtbl.find_opt n.attrs attr with
    | None -> () (* never demanded: nothing cached to maintain *)
    | Some old ->
      Hashtbl.remove n.attrs attr;
      let fresh = ensure g [] n attr in
      if not (g.value_equal old fresh) then
        List.iter (fun occ -> Queue.add occ q) (dependents g n attr)
  done

(* ------------------------------------------------------------------ *)
(* Edits                                                               *)
(* ------------------------------------------------------------------ *)

let set_terminal g n t v =
  let old = Hashtbl.find_opt n.terminals t in
  Hashtbl.replace n.terminals t v;
  match old with
  | Some o when g.value_equal o v -> ()
  | _ -> propagate g (term_dependents g n t)

(* All (node, attr) occurrences cached inside a subtree. *)
let cached_occurrences sub =
  let acc = ref [] in
  let rec go n =
    Hashtbl.iter (fun a _ -> acc := (n, a) :: !acc) n.attrs;
    Array.iter go n.children
  in
  go sub;
  !acc

let set_child g n slot fresh =
  if slot >= Array.length n.children then
    invalid_arg "Static_ag.set_child: bad slot";
  let old = n.children.(slot) in
  if old != fresh then begin
    old.parent <- None;
    fresh.parent <- Some (n, slot);
    n.children.(slot) <- fresh;
    (* the old subtree's inherited context is gone: drop its cache; the
       new subtree's cached attributes were computed in another context
       (or none), so drop and let demand recompute them *)
    List.iter (fun (m, a) -> Hashtbl.remove m.attrs a) (cached_occurrences old);
    List.iter
      (fun (m, a) -> Hashtbl.remove m.attrs a)
      (cached_occurrences fresh);
    (* every attribute of n that reads this child slot must re-propagate;
       conservatively, re-propagate all of n's cached attributes plus the
       inherited attributes n defines for the new child *)
    let work = Hashtbl.fold (fun a _ acc -> (n, a) :: acc) n.attrs [] in
    propagate g work
  end
