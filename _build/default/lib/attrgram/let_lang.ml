(** The paper's attribute-grammar example (§7.1, Algorithms 6–9): a
    let-expression language with a synthesized [value] attribute and an
    inherited [env] attribute.

    {v
    ROOT ::= EXP              ROOT.value = EXP.value
                              EXP.env    = EmptyEnv()
    EXP0 ::= EXP1 + EXP2      EXP0.value = EXP1.value + EXP2.value
                              EXPi.env   = EXP0.env
    EXP0 ::= let ID = EXP1 in EXP2 ni
                              EXP0.value = EXP2.value
                              EXP1.env   = EXP0.env
                              EXP2.env   = UpdateEnv(EXP0.env, ID, EXP1.value)
    EXP  ::= ID               EXP.value  = LookupEnv(EXP.env, ID)
    EXP  ::= INT              EXP.value  = INT
    v}

    The [env] equation set is one attribute whose body dispatches on the
    parent production and child slot, exactly the paper's [LetEnv] "IF c =
    o.expl THEN … ELSE …" encoding of inherited attributes. *)

module A = Ag

type value =
  | VInt of int
  | VStr of string
  | VEnv of (string * int) list

let pp_value ppf = function
  | VInt n -> Fmt.int ppf n
  | VStr s -> Fmt.string ppf s
  | VEnv e ->
    Fmt.pf ppf "[%a]"
      Fmt.(list ~sep:semi (pair ~sep:(any "=") string int))
      e

exception Unbound_identifier of string

let int_of = function
  | VInt n -> n
  | v -> Fmt.invalid_arg "Let_lang: expected int, got %a" pp_value v

let env_of = function
  | VEnv e -> e
  | v -> Fmt.invalid_arg "Let_lang: expected env, got %a" pp_value v

let str_of = function
  | VStr s -> s
  | v -> Fmt.invalid_arg "Let_lang: expected string, got %a" pp_value v

type t = {
  grammar : value A.grammar;
  value : value A.attr;
  env : value A.attr;
}

let create ?strategy eng =
  let grammar = A.create eng in
  (* value and env are mutually recursive (the paper's mutually recursive
     method implementations); tie the knot with forward references *)
  let value_ref = ref None and env_ref = ref None in
  let eval_value n = A.eval (Option.get !value_ref) n in
  let eval_env n = A.eval (Option.get !env_ref) n in
  let env =
    A.attribute ?strategy grammar ~name:"env" (fun n ->
        match A.parent n with
        | None -> VEnv [] (* detached subtree or root context *)
        | Some p -> (
          match (A.prod p, A.index_in_parent n) with
          | "root", _ -> VEnv []
          | "plus", _ -> eval_env p
          | "let", Some 0 -> eval_env p
          | "let", Some 1 ->
            let id = str_of (A.terminal p "id") in
            let bound = int_of (eval_value (A.child p 0)) in
            VEnv ((id, bound) :: env_of (eval_env p))
          | prod, _ ->
            Fmt.invalid_arg "Let_lang.env: unexpected parent production %s" prod))
  in
  let value =
    A.attribute ?strategy grammar ~name:"value" (fun n ->
        match A.prod n with
        | "root" -> eval_value (A.child n 0)
        | "plus" ->
          VInt
            (int_of (eval_value (A.child n 0))
            + int_of (eval_value (A.child n 1)))
        | "let" -> eval_value (A.child n 1)
        | "id" -> (
          let id = str_of (A.terminal n "id") in
          match List.assoc_opt id (env_of (eval_env n)) with
          | Some v -> VInt v
          | None -> raise (Unbound_identifier id))
        | "int" -> A.terminal n "n"
        | prod ->
          Fmt.invalid_arg "Let_lang.value: unexpected production %s" prod)
  in
  value_ref := Some value;
  env_ref := Some env;
  { grammar; value; env }

(* ------------------------------------------------------------------ *)
(* Constructors                                                        *)
(* ------------------------------------------------------------------ *)

let root t e = A.node t.grammar ~prod:"root" [ e ]
let plus t a b = A.node t.grammar ~prod:"plus" [ a; b ]

let let_ t id bound body =
  A.node t.grammar ~prod:"let" ~terminals:[ ("id", VStr id) ] [ bound; body ]

let id t name = A.node t.grammar ~prod:"id" ~terminals:[ ("id", VStr name) ] []
let int t n = A.node t.grammar ~prod:"int" ~terminals:[ ("n", VInt n) ] []

(* ------------------------------------------------------------------ *)
(* Evaluation                                                          *)
(* ------------------------------------------------------------------ *)

(** Incremental evaluation via the maintained attributes. *)
let value_of t n = int_of (A.eval t.value n)

(** From-scratch reference interpreter over the same mutable tree — the
    conventional execution this must always agree with (Theorem 5.1). *)
let exhaustive_value n =
  let rec go env n =
    match A.prod n with
    | "root" -> go env (A.child n 0)
    | "plus" -> go env (A.child n 0) + go env (A.child n 1)
    | "let" ->
      let id = str_of (A.terminal n "id") in
      let bound = go env (A.child n 0) in
      go ((id, bound) :: env) (A.child n 1)
    | "id" -> (
      let id = str_of (A.terminal n "id") in
      match List.assoc_opt id env with
      | Some v -> v
      | None -> raise (Unbound_identifier id))
    | "int" -> int_of (A.terminal n "n")
    | prod -> Fmt.invalid_arg "Let_lang.exhaustive: %s" prod
  in
  go [] n

(* ------------------------------------------------------------------ *)
(* Tree edits (mutator operations)                                     *)
(* ------------------------------------------------------------------ *)

let set_int n v = A.set_terminal n "n" (VInt v)
let rename_let n id = A.set_terminal n "id" (VStr id)
let rename_id n id = A.set_terminal n "id" (VStr id)
