(** Attribute grammars as Alphonse data types — paper §7.1.

    Each production instance is a heap object carrying a parent pointer,
    tracked child pointers, and terminal fields; attributes are maintained
    methods on these objects. Synthesized attributes are methods of no
    argument; inherited attributes follow the paper's encoding — a single
    method whose body dispatches on the {e context} (which production the
    parent is, and which child slot this node occupies).

    The framework is untyped in the attribute domain: a grammar fixes one
    OCaml type ['v] of attribute/terminal values and the instance modules
    ({!Let_lang}, {!Binary}) define their own variants. Equations are
    ordinary OCaml functions that read children, terminals, and other
    attributes through tracked operations, so Alphonse discovers the
    attribute dependency graph dynamically — no static circularity
    analysis, no grammar-class restriction (this is the "subsumes grammar
    based languages" claim of §10).

    Tree edits ({!set_child}, {!set_terminal}, {!splice}) are plain
    mutator writes; re-attribution after an edit touches only the
    attribute instances on affected paths. *)

module Engine = Alphonse.Engine
module Var = Alphonse.Var
module Func = Alphonse.Func

type 'v node = {
  id : int;
  prod : string;  (** production name, the dispatch tag for equations *)
  parent : 'v parent Var.t;
  children : 'v node list Var.t;
  terminals : (string * 'v Var.t) list;
}

and 'v parent =
  | P_none
  | P of 'v node

let node_equal a b = a.id = b.id
let node_hash n = n.id

let parent_equal a b =
  match (a, b) with
  | P_none, P_none -> true
  | P a, P b -> node_equal a b
  | P_none, P _ | P _, P_none -> false

let children_equal a b =
  List.length a = List.length b && List.for_all2 node_equal a b

type 'v grammar = {
  eng : Engine.t;
  value_equal : 'v -> 'v -> bool;
  mutable next_id : int;
}

let create ?(value_equal = ( = )) eng = { eng; value_equal; next_id = 0 }

let engine g = g.eng

let node g ~prod ?(terminals = []) children =
  let id = g.next_id in
  g.next_id <- id + 1;
  let n =
    {
      id;
      prod;
      parent =
        Var.create g.eng ~name:(Fmt.str "%s%d.parent" prod id)
          ~equal:parent_equal P_none;
      children =
        Var.create g.eng
          ~name:(Fmt.str "%s%d.children" prod id)
          ~equal:children_equal children;
      terminals =
        List.map
          (fun (k, v) ->
            ( k,
              Var.create g.eng
                ~name:(Fmt.str "%s%d.%s" prod id k)
                ~equal:g.value_equal v ))
          terminals;
    }
  in
  List.iter (fun c -> Var.set c.parent (P n)) children;
  n

let prod n = n.prod
let children n = Var.get n.children

let child n i =
  match List.nth_opt (Var.get n.children) i with
  | Some c -> c
  | None -> invalid_arg (Fmt.str "Attrgram.child: %s#%d has no child %d" n.prod n.id i)

let parent n =
  match Var.get n.parent with P_none -> None | P p -> Some p

let terminal n k =
  match List.assoc_opt k n.terminals with
  | Some v -> Var.get v
  | None ->
    invalid_arg (Fmt.str "Attrgram.terminal: %s#%d has no terminal %s" n.prod n.id k)

let set_terminal n k v =
  match List.assoc_opt k n.terminals with
  | Some cell -> Var.set cell v
  | None ->
    invalid_arg
      (Fmt.str "Attrgram.set_terminal: %s#%d has no terminal %s" n.prod n.id k)

(** The child slot this node occupies under its parent, if attached. The
    inherited-attribute dispatch of the paper's [LetEnv] ("IF c = o.expl
    THEN …") is [index_in_parent] here. *)
let index_in_parent n =
  match parent n with
  | None -> None
  | Some p ->
    let rec find i = function
      | [] -> None
      | c :: rest -> if node_equal c n then Some i else find (i + 1) rest
    in
    find 0 (Var.get p.children)

(** Replace child [i] of [n] with [fresh], detaching the old child and
    re-pointing parents. *)
let set_child n i fresh =
  let cs = Var.get n.children in
  if i < 0 || i >= List.length cs then
    invalid_arg (Fmt.str "Attrgram.set_child: %s#%d has no child %d" n.prod n.id i);
  let old = List.nth cs i in
  if not (node_equal old fresh) then begin
    Var.set old.parent P_none;
    Var.set fresh.parent (P n);
    Var.set n.children (List.mapi (fun j c -> if j = i then fresh else c) cs)
  end

(** Insert [fresh] as a new child of [n] at position [i]. *)
let insert_child n i fresh =
  let cs = Var.get n.children in
  if i < 0 || i > List.length cs then
    invalid_arg (Fmt.str "Attrgram.insert_child: bad position %d" i);
  Var.set fresh.parent (P n);
  let rec ins k = function
    | rest when k = i -> fresh :: rest
    | [] -> invalid_arg "Attrgram.insert_child"
    | c :: rest -> c :: ins (k + 1) rest
  in
  Var.set n.children (ins 0 cs)

(** Remove child [i] of [n], detaching it. *)
let remove_child n i =
  let cs = Var.get n.children in
  if i < 0 || i >= List.length cs then
    invalid_arg (Fmt.str "Attrgram.remove_child: bad position %d" i);
  let old = List.nth cs i in
  Var.set old.parent P_none;
  Var.set n.children (List.filteri (fun j _ -> j <> i) cs)

(* ------------------------------------------------------------------ *)
(* Attributes                                                          *)
(* ------------------------------------------------------------------ *)

type 'v attr = ('v node, 'v) Func.t

(** Declare an attribute. The equation body receives the node; it reads
    structure through {!children}/{!parent}/{!terminal} and other
    attributes through {!eval}, so every dependency is tracked. Whether
    the attribute is synthesized or inherited is purely a matter of which
    direction the body looks. *)
let attribute ?strategy g ~name body : 'v attr =
  Func.create g.eng ~name ?strategy ~hash_arg:node_hash ~equal_arg:node_equal
    ~equal_result:g.value_equal (fun _self n -> body n)

let eval (a : 'v attr) n = Func.call a n

(* ------------------------------------------------------------------ *)
(* Traversals (for tests and demos)                                    *)
(* ------------------------------------------------------------------ *)

let rec iter f n =
  f n;
  List.iter (iter f) (Var.get n.children)

let size n =
  let k = ref 0 in
  iter (fun _ -> incr k) n;
  !k

let pp ppf n =
  let rec go ppf n =
    let terms =
      List.map (fun (k, _) -> k) n.terminals |> String.concat ","
    in
    Fmt.pf ppf "@[<hv 2>(%s#%d%s%a)@]" n.prod n.id
      (if terms = "" then "" else "{" ^ terms ^ "}")
      (fun ppf cs -> List.iter (fun c -> Fmt.pf ppf "@ %a" go c) cs)
      (Var.get n.children)
  in
  go ppf n
