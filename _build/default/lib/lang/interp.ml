(** Conventional (non-incremental) interpreter for Alphonse-L — the
    execution model the paper calls "a traditional compiler" run of the
    program (§3.6, §9.2). Pragmas are ignored: maintained and cached
    procedures execute exhaustively on every call. Output and final state
    are the observables that Theorem 5.1 requires the Alphonse execution
    to reproduce. *)

open Ast
open Value

exception Runtime_error of string * pos

exception Return_value of value option

let error pos fmt = Fmt.kstr (fun s -> raise (Runtime_error (s, pos))) fmt

type state = {
  env : Typecheck.env;
  globals : (string, value ref) Hashtbl.t;
  out : Buffer.t;
  mutable next_oid : int;
  mutable steps : int;  (** statements + expressions evaluated *)
  fuel : int option;  (** abort runaway programs (tests, fuzzing) *)
}

let tick st pos =
  st.steps <- st.steps + 1;
  match st.fuel with
  | Some fuel when st.steps > fuel -> error pos "out of fuel (%d steps)" fuel
  | _ -> ()

(* Allocate the default contents of a declared type. Arrays materialize
   here: a declaration of array type implicitly allocates a fixed table
   (the paper's §7.2 cell array), recursively for nested dimensions. *)
let rec init_value st = function
  | Ast.Tarray (lo, hi, elem) ->
    let elems = Array.init (hi - lo + 1) (fun _ -> ref (init_value st elem)) in
    let a = { aid = st.next_oid; lo; hi; elems } in
    st.next_oid <- st.next_oid + 1;
    VArr a
  | (Ast.Tint | Ast.Tbool | Ast.Ttext | Ast.Tobj _) as t -> default_of t

let alloc st cls =
  let ci =
    match Typecheck.class_info st.env cls with
    | Some ci -> ci
    | None -> assert false (* checked *)
  in
  let fields = Hashtbl.create (List.length ci.ci_fields) in
  List.iter
    (fun (fname, fty) -> Hashtbl.replace fields fname (ref (init_value st fty)))
    ci.ci_fields;
  let o = { oid = st.next_oid; cls; fields } in
  st.next_oid <- st.next_oid + 1;
  o

let obj_of pos = function
  | VObj o -> o
  | VNil -> error pos "NIL dereference"
  | v -> error pos "not an object: %s" (to_string v)

let int_of pos = function
  | VInt n -> n
  | v -> error pos "not an integer: %s" (to_string v)

let bool_of pos = function
  | VBool b -> b
  | v -> error pos "not a boolean: %s" (to_string v)

let text_of pos = function
  | VText s -> s
  | v -> error pos "not a text: %s" (to_string v)

let arr_of pos = function
  | VArr a -> a
  | v -> error pos "not an array: %s" (to_string v)

let elem_slot pos a idx =
  if idx < a.lo || idx > a.hi then
    error pos "index %d outside [%d..%d]" idx a.lo a.hi;
  a.elems.(idx - a.lo)

(* ------------------------------------------------------------------ *)
(* Evaluation                                                          *)
(* ------------------------------------------------------------------ *)

type frame = (string, value ref) Hashtbl.t

let rec eval st (fr : frame) e : value =
  tick st e.pos;
  match e.desc with
  | Int n -> VInt n
  | Bool b -> VBool b
  | Text s -> VText s
  | Nil -> VNil
  | Var x -> (
    match Hashtbl.find_opt fr x with
    | Some r -> !r
    | None -> (
      match Hashtbl.find_opt st.globals x with
      | Some r -> !r
      | None -> error e.pos "unbound variable %s" x))
  | Field (b, f) -> (
    let o = obj_of b.pos (eval st fr b) in
    match Hashtbl.find_opt o.fields f with
    | Some r -> !r
    | None -> error e.pos "object %s#%d has no field %s" o.cls o.oid f)
  | Index (b, i) ->
    let a = arr_of b.pos (eval st fr b) in
    let idx = int_of i.pos (eval st fr i) in
    !(elem_slot e.pos a idx)
  | New cls -> VObj (alloc st cls)
  | Unchecked inner -> eval st fr inner
  | Unop (Neg, a) -> VInt (-int_of a.pos (eval st fr a))
  | Unop (Not, a) -> VBool (not (bool_of a.pos (eval st fr a)))
  | Binop (And, a, b) ->
    if bool_of a.pos (eval st fr a) then eval st fr b else VBool false
  | Binop (Or, a, b) ->
    if bool_of a.pos (eval st fr a) then VBool true else eval st fr b
  | Binop (op, a, b) -> (
    let va = eval st fr a in
    let vb = eval st fr b in
    match op with
    | Add -> VInt (int_of a.pos va + int_of b.pos vb)
    | Sub -> VInt (int_of a.pos va - int_of b.pos vb)
    | Mul -> VInt (int_of a.pos va * int_of b.pos vb)
    | Div ->
      let d = int_of b.pos vb in
      if d = 0 then error e.pos "division by zero";
      VInt (int_of a.pos va / d)
    | Mod ->
      let d = int_of b.pos vb in
      if d = 0 then error e.pos "modulo by zero";
      VInt (int_of a.pos va mod d)
    | Cat -> VText (text_of a.pos va ^ text_of b.pos vb)
    | Eq -> VBool (equal va vb)
    | Ne -> VBool (not (equal va vb))
    | Lt -> VBool (int_of a.pos va < int_of b.pos vb)
    | Le -> VBool (int_of a.pos va <= int_of b.pos vb)
    | Gt -> VBool (int_of a.pos va > int_of b.pos vb)
    | Ge -> VBool (int_of a.pos va >= int_of b.pos vb)
    | And | Or -> assert false)
  | Call (callee, args) -> (
    match eval_call st fr e.pos callee args with
    | Some v -> v
    | None -> error e.pos "proper procedure call in expression position")

and eval_call st fr pos callee args : value option =
  match callee with
  | Cproc "Print" ->
    List.iter
      (fun a -> Buffer.add_string st.out (to_string (eval st fr a)))
      args;
    None
  | Cproc p -> (
    match Hashtbl.find_opt st.env.procs p with
    | None -> error pos "unknown procedure %s" p
    | Some pd ->
      let argv = List.map (eval st fr) args in
      call_proc st pd argv)
  | Cmethod (oe, mname) -> (
    let recv = eval st fr oe in
    let o = obj_of oe.pos recv in
    match Typecheck.lookup_method st.env o.cls mname with
    | None -> error pos "object %s has no method %s" o.cls mname
    | Some mi -> (
      match Hashtbl.find_opt st.env.procs mi.mi_impl with
      | None -> error pos "method %s bound to unknown procedure" mname
      | Some pd ->
        let argv = List.map (eval st fr) args in
        call_proc st pd (recv :: argv)))

and call_proc st (pd : proc_decl) argv : value option =
  let fr : frame = Hashtbl.create 8 in
  (try List.iter2 (fun (n, _) v -> Hashtbl.replace fr n (ref v)) pd.params argv
   with Invalid_argument _ ->
     error pd.ppos "arity mismatch calling %s" pd.pname);
  List.iter
    (fun l ->
      let v =
        match l.linit with
        | Some e -> eval st fr e
        | None -> init_value st l.lty
      in
      Hashtbl.replace fr l.lname (ref v))
    pd.locals;
  try
    exec_stmts st fr pd.body;
    if pd.ret <> None then
      error pd.ppos "procedure %s fell off the end without RETURN" pd.pname;
    None
  with Return_value v -> v

and exec_stmts st fr stmts = List.iter (exec st fr) stmts

and exec st fr s =
  tick st s.spos;
  match s.sdesc with
  | Assign (d, e) -> (
    let v = eval st fr e in
    match d.desc with
    | Var x -> (
      match Hashtbl.find_opt fr x with
      | Some r -> r := v
      | None -> (
        match Hashtbl.find_opt st.globals x with
        | Some r -> r := v
        | None -> error d.pos "unbound variable %s" x))
    | Field (b, f) -> (
      let o = obj_of b.pos (eval st fr b) in
      match Hashtbl.find_opt o.fields f with
      | Some r -> r := v
      | None -> error d.pos "object %s#%d has no field %s" o.cls o.oid f)
    | Index (b, i) ->
      let a = arr_of b.pos (eval st fr b) in
      let idx = int_of i.pos (eval st fr i) in
      elem_slot d.pos a idx := v
    | _ -> error d.pos "bad assignment target")
  | Call_stmt e -> (
    match e.desc with
    | Call (callee, args) -> ignore (eval_call st fr e.pos callee args)
    | _ -> error e.pos "expression is not a statement")
  | If (branches, els) ->
    let rec go = function
      | [] -> exec_stmts st fr els
      | (c, body) :: rest ->
        if bool_of c.pos (eval st fr c) then exec_stmts st fr body else go rest
    in
    go branches
  | While (c, body) ->
    while bool_of c.pos (eval st fr c) do
      exec_stmts st fr body
    done
  | Repeat (body, c) ->
    let continue_ = ref true in
    while !continue_ do
      exec_stmts st fr body;
      if bool_of c.pos (eval st fr c) then continue_ := false
    done
  | For (v, lo, hi, body) ->
    let lo = int_of lo.pos (eval st fr lo) in
    let hi = int_of hi.pos (eval st fr hi) in
    let r = ref (VInt lo) in
    let shadowed = Hashtbl.find_opt fr v in
    Hashtbl.replace fr v r;
    for i = lo to hi do
      r := VInt i;
      exec_stmts st fr body
    done;
    (match shadowed with
    | Some old -> Hashtbl.replace fr v old
    | None -> Hashtbl.remove fr v)
  | Return e -> raise (Return_value (Option.map (eval st fr) e))

(* ------------------------------------------------------------------ *)
(* Whole-module execution                                              *)
(* ------------------------------------------------------------------ *)

let init_state ?fuel (env : Typecheck.env) =
  let st =
    { env; globals = Hashtbl.create 16; out = Buffer.create 256;
      next_oid = 0; steps = 0; fuel }
  in
  let fr : frame = Hashtbl.create 1 in
  List.iter
    (fun (g : global_decl) ->
      Hashtbl.replace st.globals g.gname (ref (init_value st g.gty)))
    env.m.globals;
  (* initializers run left to right with earlier globals visible *)
  List.iter
    (fun (g : global_decl) ->
      match g.ginit with
      | Some e -> Hashtbl.replace st.globals g.gname (ref (eval st fr e))
      | None -> ())
    env.m.globals;
  st

type outcome = {
  output : string;
  error : string option;
  steps : int;
}

(** Run the module body under conventional execution. *)
let run ?fuel (env : Typecheck.env) : outcome =
  match init_state ?fuel env with
  | exception Runtime_error (msg, p) ->
    { output = ""; error = Some (Fmt.str "%a: %s" pp_pos p msg); steps = 0 }
  | st -> (
    let fr : frame = Hashtbl.create 8 in
    match exec_stmts st fr env.m.main with
    | () -> { output = Buffer.contents st.out; error = None; steps = st.steps }
    | exception Runtime_error (msg, p) ->
      {
        output = Buffer.contents st.out;
        error = Some (Fmt.str "%a: %s" pp_pos p msg);
        steps = st.steps;
      }
    | exception Return_value _ ->
      {
        output = Buffer.contents st.out;
        error = Some "RETURN outside a procedure";
        steps = st.steps;
      })
