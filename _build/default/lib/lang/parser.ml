(** Recursive-descent parser for Alphonse-L. See {!Ast} for the shape of
    the language; the concrete syntax follows the paper's Modula-3
    notation (§3.2):

    {v
    MODULE M;
    TYPE Tree = OBJECT
      left, right : Tree;
    METHODS
      (*MAINTAINED*) height() : INTEGER := Height;
    END;
    VAR root : Tree;
    PROCEDURE Height(t : Tree) : INTEGER =
    BEGIN RETURN … END Height;
    BEGIN …mutator… END M.
    v} *)

open Ast
open Lexer

exception Parse_error of string * pos

type stream = { mutable toks : spanned list }

let err p fmt = Fmt.kstr (fun s -> raise (Parse_error (s, p))) fmt

let peek s = match s.toks with [] -> { tok = EOF; tpos = no_pos } | t :: _ -> t

let pos s = (peek s).tpos

let advance s = match s.toks with [] -> () | _ :: rest -> s.toks <- rest

let next s =
  let t = peek s in
  advance s;
  t

let describe = function
  | INT n -> string_of_int n
  | TEXT _ -> "text literal"
  | IDENT i -> i
  | KW k -> k
  | PRAGMA _ -> "pragma"
  | UNCHECKED_PRAGMA -> "(*UNCHECKED*)"
  | LPAREN -> "(" | RPAREN -> ")"
  | LBRACK -> "[" | RBRACK -> "]"
  | SEMI -> ";" | COLON -> ":" | COMMA -> "," | DOT -> "." | DOTDOT -> ".."
  | ASSIGN -> ":="
  | EQ -> "=" | NE -> "#" | LT -> "<" | LE -> "<=" | GT -> ">" | GE -> ">="
  | PLUS -> "+" | MINUS -> "-" | STAR -> "*" | AMP -> "&"
  | EOF -> "end of input"

let expect s tok what =
  let t = next s in
  if t.tok <> tok then err t.tpos "expected %s, found %s" what (describe t.tok)

let kw s k = expect s (KW k) k

let ident s =
  let t = next s in
  match t.tok with
  | IDENT i -> i
  | tok -> err t.tpos "expected identifier, found %s" (describe tok)

(* ------------------------------------------------------------------ *)
(* Types                                                               *)
(* ------------------------------------------------------------------ *)

let rec parse_ty s =
  let t = next s in
  match t.tok with
  | KW "INTEGER" -> Tint
  | KW "BOOLEAN" -> Tbool
  | KW "TEXT" -> Ttext
  | IDENT i -> Tobj i
  | KW "ARRAY" ->
    expect s LBRACK "[";
    let lo =
      match (next s).tok with
      | INT n -> n
      | tok -> err (pos s) "expected lower bound, found %s" (describe tok)
    in
    expect s DOTDOT "..";
    let hi =
      match (next s).tok with
      | INT n -> n
      | tok -> err (pos s) "expected upper bound, found %s" (describe tok)
    in
    expect s RBRACK "]";
    kw s "OF";
    if lo > hi then err t.tpos "empty array range [%d..%d]" lo hi;
    Tarray (lo, hi, parse_ty s)
  | tok -> err t.tpos "expected a type, found %s" (describe tok)

(* ------------------------------------------------------------------ *)
(* Expressions                                                         *)
(* ------------------------------------------------------------------ *)

let rec parse_expr s = parse_or s

and parse_or s =
  let rec go lhs =
    match (peek s).tok with
    | KW "OR" ->
      let p = pos s in
      advance s;
      go (mk_expr ~pos:p (Binop (Or, lhs, parse_and s)))
    | _ -> lhs
  in
  go (parse_and s)

and parse_and s =
  let rec go lhs =
    match (peek s).tok with
    | KW "AND" ->
      let p = pos s in
      advance s;
      go (mk_expr ~pos:p (Binop (And, lhs, parse_rel s)))
    | _ -> lhs
  in
  go (parse_rel s)

and parse_rel s =
  let lhs = parse_add s in
  let binop op =
    let p = pos s in
    advance s;
    mk_expr ~pos:p (Binop (op, lhs, parse_add s))
  in
  match (peek s).tok with
  | EQ -> binop Eq
  | NE -> binop Ne
  | LT -> binop Lt
  | LE -> binop Le
  | GT -> binop Gt
  | GE -> binop Ge
  | _ -> lhs

and parse_add s =
  let rec go lhs =
    let binop op =
      let p = pos s in
      advance s;
      go (mk_expr ~pos:p (Binop (op, lhs, parse_mul s)))
    in
    match (peek s).tok with
    | PLUS -> binop Add
    | MINUS -> binop Sub
    | AMP -> binop Cat
    | _ -> lhs
  in
  go (parse_mul s)

and parse_mul s =
  let rec go lhs =
    let binop op =
      let p = pos s in
      advance s;
      go (mk_expr ~pos:p (Binop (op, lhs, parse_unary s)))
    in
    match (peek s).tok with
    | STAR -> binop Mul
    | KW "DIV" -> binop Div
    | KW "MOD" -> binop Mod
    | _ -> lhs
  in
  go (parse_unary s)

and parse_unary s =
  let p = pos s in
  match (peek s).tok with
  | MINUS ->
    advance s;
    mk_expr ~pos:p (Unop (Neg, parse_unary s))
  | KW "NOT" ->
    advance s;
    mk_expr ~pos:p (Unop (Not, parse_unary s))
  | UNCHECKED_PRAGMA ->
    advance s;
    mk_expr ~pos:p (Unchecked (parse_unary s))
  | _ -> parse_postfix s

and parse_postfix s =
  let rec go e =
    match (peek s).tok with
    | DOT -> (
      let p = pos s in
      advance s;
      let field = ident s in
      match (peek s).tok with
      | LPAREN ->
        advance s;
        let args = parse_args s in
        go (mk_expr ~pos:p (Call (Cmethod (e, field), args)))
      | _ -> go (mk_expr ~pos:p (Field (e, field))))
    | LBRACK ->
      let p = pos s in
      advance s;
      let i = parse_expr s in
      expect s RBRACK "]";
      go (mk_expr ~pos:p (Index (e, i)))
    | _ -> e
  in
  go (parse_atom s)

and parse_args s =
  (* opening paren consumed; consumes the closing paren *)
  if (peek s).tok = RPAREN then begin
    advance s;
    []
  end
  else begin
    let rec go acc =
      let e = parse_expr s in
      match (next s).tok with
      | COMMA -> go (e :: acc)
      | RPAREN -> List.rev (e :: acc)
      | tok -> err (pos s) "expected , or ) in arguments, found %s" (describe tok)
    in
    go []
  end

and parse_atom s =
  let t = next s in
  let p = t.tpos in
  match t.tok with
  | INT n -> mk_expr ~pos:p (Int n)
  | TEXT x -> mk_expr ~pos:p (Text x)
  | KW "TRUE" -> mk_expr ~pos:p (Bool true)
  | KW "FALSE" -> mk_expr ~pos:p (Bool false)
  | KW "NIL" -> mk_expr ~pos:p Nil
  | KW "NEW" ->
    expect s LPAREN "(";
    let tyname = ident s in
    expect s RPAREN ")";
    mk_expr ~pos:p (New tyname)
  | IDENT name -> (
    match (peek s).tok with
    | LPAREN ->
      advance s;
      let args = parse_args s in
      mk_expr ~pos:p (Call (Cproc name, args))
    | _ -> mk_expr ~pos:p (Var name))
  | LPAREN ->
    let e = parse_expr s in
    expect s RPAREN ")";
    e
  | tok -> err p "expected an expression, found %s" (describe tok)

(* ------------------------------------------------------------------ *)
(* Statements                                                          *)
(* ------------------------------------------------------------------ *)

let block_terminators = [ KW "END"; KW "ELSE"; KW "ELSIF"; KW "UNTIL"; EOF ]

let rec parse_stmts s =
  let rec go acc =
    if List.mem (peek s).tok block_terminators then List.rev acc
    else begin
      let st = parse_stmt s in
      (* statements are ';'-separated; the separator before a block
         terminator is optional, as in Modula-3 *)
      (if (peek s).tok = SEMI then advance s
       else if not (List.mem (peek s).tok block_terminators) then
         err (pos s) "expected ; between statements, found %s"
           (describe (peek s).tok));
      go (st :: acc)
    end
  in
  go []

and parse_stmt s =
  let p = pos s in
  match (peek s).tok with
  | KW "IF" ->
    advance s;
    let rec branches acc =
      let cond = parse_expr s in
      kw s "THEN";
      let body = parse_stmts s in
      match (next s).tok with
      | KW "ELSIF" -> branches ((cond, body) :: acc)
      | KW "ELSE" ->
        let els = parse_stmts s in
        kw s "END";
        (List.rev ((cond, body) :: acc), els)
      | KW "END" -> (List.rev ((cond, body) :: acc), [])
      | tok -> err (pos s) "expected ELSIF, ELSE or END, found %s" (describe tok)
    in
    let bs, els = branches [] in
    mk_stmt ~pos:p (If (bs, els))
  | KW "WHILE" ->
    advance s;
    let cond = parse_expr s in
    kw s "DO";
    let body = parse_stmts s in
    kw s "END";
    mk_stmt ~pos:p (While (cond, body))
  | KW "REPEAT" ->
    advance s;
    let body = parse_stmts s in
    kw s "UNTIL";
    let cond = parse_expr s in
    mk_stmt ~pos:p (Repeat (body, cond))
  | KW "FOR" ->
    advance s;
    let v = ident s in
    expect s ASSIGN ":=";
    let lo = parse_expr s in
    kw s "TO";
    let hi = parse_expr s in
    kw s "DO";
    let body = parse_stmts s in
    kw s "END";
    mk_stmt ~pos:p (For (v, lo, hi, body))
  | KW "RETURN" ->
    advance s;
    if List.mem (peek s).tok (SEMI :: block_terminators) then
      mk_stmt ~pos:p (Return None)
    else mk_stmt ~pos:p (Return (Some (parse_expr s)))
  | _ -> (
    (* designator := expr, or a call statement *)
    let e = parse_expr s in
    match (peek s).tok with
    | ASSIGN -> (
      advance s;
      let rhs = parse_expr s in
      match e.desc with
      | Var _ | Field _ | Index _ -> mk_stmt ~pos:p (Assign (e, rhs))
      | _ -> err p "left side of := must be a variable, field or element")
    | _ -> (
      match e.desc with
      | Call _ -> mk_stmt ~pos:p (Call_stmt e)
      | _ -> err p "expression is not a statement"))

(* ------------------------------------------------------------------ *)
(* Declarations                                                        *)
(* ------------------------------------------------------------------ *)

let parse_params s =
  expect s LPAREN "(";
  if (peek s).tok = RPAREN then begin
    advance s;
    []
  end
  else begin
    let rec go acc =
      (* name {, name} : type *)
      let names =
        let rec names acc =
          let n = ident s in
          match (peek s).tok with
          | COMMA ->
            advance s;
            names (n :: acc)
          | _ -> List.rev (n :: acc)
        in
        names []
      in
      expect s COLON ":";
      let ty = parse_ty s in
      let acc = List.fold_left (fun acc n -> (n, ty) :: acc) acc names in
      match (next s).tok with
      | SEMI -> go acc
      | RPAREN -> List.rev acc
      | tok -> err (pos s) "expected ; or ) in parameters, found %s" (describe tok)
    in
    go []
  end

let parse_ret s =
  if (peek s).tok = COLON then begin
    advance s;
    Some (parse_ty s)
  end
  else None

let parse_pragma_opt s =
  match (peek s).tok with
  | PRAGMA p ->
    advance s;
    Some p
  | _ -> None

let parse_object_body s tname super tpos =
  (* fields until METHODS/OVERRIDES/END *)
  let fields = ref [] and methods = ref [] and overrides = ref [] in
  let rec parse_fields () =
    match (peek s).tok with
    | KW "METHODS" | KW "OVERRIDES" | KW "END" -> ()
    | IDENT _ ->
      let fpos = pos s in
      let names =
        let rec names acc =
          let n = ident s in
          match (peek s).tok with
          | COMMA ->
            advance s;
            names (n :: acc)
          | _ -> List.rev (n :: acc)
        in
        names []
      in
      expect s COLON ":";
      let fty = parse_ty s in
      expect s SEMI ";";
      List.iter (fun fname -> fields := { fname; fty; fpos } :: !fields) names;
      parse_fields ()
    | tok -> err (pos s) "expected a field declaration, found %s" (describe tok)
  in
  parse_fields ();
  if (peek s).tok = KW "METHODS" then begin
    advance s;
    let rec go () =
      match (peek s).tok with
      | KW "OVERRIDES" | KW "END" -> ()
      | _ ->
        let mpos = pos s in
        let mpragma = parse_pragma_opt s in
        let mname = ident s in
        let mparams = parse_params s in
        let mret = parse_ret s in
        expect s ASSIGN ":=";
        let mimpl = ident s in
        expect s SEMI ";";
        methods := { mname; mparams; mret; mimpl; mpragma; mpos } :: !methods;
        go ()
    in
    go ()
  end;
  if (peek s).tok = KW "OVERRIDES" then begin
    advance s;
    let rec go () =
      match (peek s).tok with
      | KW "END" -> ()
      | _ ->
        let opos = pos s in
        let opragma = parse_pragma_opt s in
        let oname = ident s in
        expect s ASSIGN ":=";
        let oimpl = ident s in
        expect s SEMI ";";
        overrides := { oname; oimpl; opragma; opos } :: !overrides;
        go ()
    in
    go ()
  end;
  kw s "END";
  {
    tname;
    super;
    fields = List.rev !fields;
    methods = List.rev !methods;
    overrides = List.rev !overrides;
    tpos;
  }

let parse_type_decl s =
  let tpos = pos s in
  let tname = ident s in
  expect s EQ "=";
  let super =
    match (peek s).tok with
    | IDENT i ->
      advance s;
      Some i
    | _ -> None
  in
  kw s "OBJECT";
  let td = parse_object_body s tname super tpos in
  expect s SEMI ";";
  td

let parse_var_decl s =
  (* VAR consumed; name {, name} : type [:= expr] ; — used for globals *)
  let gpos = pos s in
  let names =
    let rec names acc =
      let n = ident s in
      match (peek s).tok with
      | COMMA ->
        advance s;
        names (n :: acc)
      | _ -> List.rev (n :: acc)
    in
    names []
  in
  expect s COLON ":";
  let gty = parse_ty s in
  let ginit =
    if (peek s).tok = ASSIGN then begin
      advance s;
      Some (parse_expr s)
    end
    else None
  in
  expect s SEMI ";";
  List.map (fun gname -> { gname; gty; ginit; gpos }) names

let parse_proc_decl s ppragma =
  let ppos = pos s in
  let pname = ident s in
  let params = parse_params s in
  let ret = parse_ret s in
  expect s EQ "=";
  (* optional local VAR sections *)
  let locals = ref [] in
  while (peek s).tok = KW "VAR" do
    advance s;
    let rec go () =
      match (peek s).tok with
      | IDENT _ ->
        let lpos = pos s in
        let names =
          let rec names acc =
            let n = ident s in
            match (peek s).tok with
            | COMMA ->
              advance s;
              names (n :: acc)
            | _ -> List.rev (n :: acc)
          in
          names []
        in
        expect s COLON ":";
        let lty = parse_ty s in
        let linit =
          if (peek s).tok = ASSIGN then begin
            advance s;
            Some (parse_expr s)
          end
          else None
        in
        expect s SEMI ";";
        List.iter
          (fun lname -> locals := { lname; lty; linit; lpos } :: !locals)
          names;
        go ()
      | _ -> ()
    in
    go ()
  done;
  kw s "BEGIN";
  let body = parse_stmts s in
  kw s "END";
  let closing = ident s in
  if closing <> pname then
    err ppos "procedure %s closed by END %s" pname closing;
  expect s SEMI ";";
  { pname; params; ret; locals = List.rev !locals; body; ppragma; ppos }

let parse_module s =
  kw s "MODULE";
  let modname = ident s in
  expect s SEMI ";";
  let types = ref [] and globals = ref [] and procs = ref [] in
  let rec decls () =
    match (peek s).tok with
    | KW "TYPE" ->
      advance s;
      (* several type declarations may follow one TYPE keyword *)
      let rec go () =
        match (peek s).tok with
        | IDENT _ ->
          types := parse_type_decl s :: !types;
          go ()
        | _ -> ()
      in
      go ();
      decls ()
    | KW "VAR" ->
      advance s;
      let rec go () =
        match (peek s).tok with
        | IDENT _ ->
          globals := !globals @ parse_var_decl s;
          go ()
        | _ -> ()
      in
      go ();
      decls ()
    | PRAGMA p ->
      advance s;
      kw s "PROCEDURE";
      procs := parse_proc_decl s (Some p) :: !procs;
      decls ()
    | KW "PROCEDURE" ->
      advance s;
      procs := parse_proc_decl s None :: !procs;
      decls ()
    | KW "BEGIN" -> ()
    | tok -> err (pos s) "expected a declaration or BEGIN, found %s" (describe tok)
  in
  decls ();
  kw s "BEGIN";
  let main = parse_stmts s in
  kw s "END";
  let closing = ident s in
  if closing <> modname then
    err (pos s) "module %s closed by END %s" modname closing;
  expect s DOT ".";
  {
    modname;
    types = List.rev !types;
    globals = !globals;
    procs = List.rev !procs;
    main;
  }

(** Parse a complete Alphonse-L module. *)
let parse src =
  match Lexer.tokenize src with
  | exception Lexer.Lex_error (msg, p) ->
    Error (Fmt.str "%a: lexical error: %s" Ast.pp_pos p msg)
  | toks -> (
    let s = { toks } in
    match parse_module s with
    | m ->
      if (peek s).tok = EOF then Ok m
      else Error (Fmt.str "%a: trailing input after module" Ast.pp_pos (pos s))
    | exception Parse_error (msg, p) ->
      Error (Fmt.str "%a: syntax error: %s" Ast.pp_pos p msg))
