(** Sample Alphonse-L programs, shared by the tests, the E12 benches, the
    examples, and [alphonsec] (which accepts their names in place of file
    paths). Three are transcriptions of the paper's own algorithms. *)

val height_tree : string
(** Algorithm 1: the maintained-height tree. *)

val avl : string
(** Algorithm 11: self-balancing AVL trees ([balance] pinned to DEMAND —
    see DESIGN.md deviation 2). *)

val spreadsheet : string
(** Algorithm 10: cells holding expression trees with cell-reference
    nodes, over an [ARRAY [1..9] OF Cell]. *)

val fib_cached : string
(** Function caching on naive Fibonacci. *)

val sums_maintained : string
(** The smallest interesting mutator / Maintained-portion split. *)

val unchecked_lookup : string
(** The §6.4 [(*UNCHECKED*)] pragma. *)

val pragma_zoo : string
(** Exercises the full pragma grammar: DEMAND/EAGER arguments and an LRU
    cache bound. *)

val sieve : string
(** A conventional (pragma-free) arrays program — the sieve of
    Eratosthenes; the §6.1 analysis proves every site untracked. *)

val shortest_path : string
(** Incremental shortest-path maintenance over a mutable DAG — diamond
    dependencies in L. *)

val all : (string * string) list
(** Every sample with its name. *)
