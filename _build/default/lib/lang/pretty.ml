(** Unparser for Alphonse-L.

    [pp_module] renders a module in concrete syntax that {!Parser.parse}
    accepts again (the round-trip property is tested). With
    [~marks:true] it instead renders the {e transformed} program of
    Algorithm 2: reads of tracked storage appear as [access(…)], tracked
    assignments as [modify(…, …)], and calls that may reach an
    incremental procedure as [call(…, …)] — the display-form of the
    paper's source-to-source translation (the executable form is the
    instrumented interpreter in [Transform.Incr_interp]). *)

open Ast

let pp_strategy ppf = function
  | S_default -> ()
  | S_demand -> Fmt.string ppf " DEMAND"
  | S_eager -> Fmt.string ppf " EAGER"

let pp_policy ppf = function
  | P_unbounded -> ()
  | P_lru n -> Fmt.pf ppf " LRU %d" n
  | P_fifo n -> Fmt.pf ppf " FIFO %d" n

let pp_pragma ppf = function
  | Maintained s -> Fmt.pf ppf "(*MAINTAINED%a*)" pp_strategy s
  | Cached (s, p) -> Fmt.pf ppf "(*CACHED%a%a*)" pp_strategy s pp_policy p

let binop_token = function
  | Add -> "+" | Sub -> "-" | Mul -> "*" | Div -> "DIV" | Mod -> "MOD"
  | Cat -> "&"
  | Eq -> "=" | Ne -> "#" | Lt -> "<" | Le -> "<=" | Gt -> ">" | Ge -> ">="
  | And -> "AND" | Or -> "OR"

(* precedence levels for minimal parenthesization *)
let binop_prec = function
  | Or -> 1
  | And -> 2
  | Eq | Ne | Lt | Le | Gt | Ge -> 3
  | Add | Sub | Cat -> 4
  | Mul | Div | Mod -> 5

let escape_text s =
  let buf = Buffer.create (String.length s + 2) in
  String.iter
    (fun c ->
      match c with
      | '\n' -> Buffer.add_string buf "\\n"
      | '\t' -> Buffer.add_string buf "\\t"
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let rec pp_expr ~marks prec ppf e =
  let atomic fmt = Fmt.pf ppf fmt in
  match e.desc with
  | Int n ->
    (* negative literals print exactly like a unary negation would, so the
       printer is a fixpoint of print∘parse (the parser reads -7 as
       Neg(7)) *)
    if n < 0 && prec > 6 then atomic "(%d)" n else atomic "%d" n
  | Bool true -> atomic "TRUE"
  | Bool false -> atomic "FALSE"
  | Text s -> atomic "\"%s\"" (escape_text s)
  | Nil -> atomic "NIL"
  | Var x ->
    if marks && e.note.tracked && e.note.is_global then atomic "access(%s)" x
    else atomic "%s" x
  | Field (b, f) ->
    if marks && e.note.tracked then
      Fmt.pf ppf "access(%a.%s)" (pp_expr ~marks 7) b f
    else Fmt.pf ppf "%a.%s" (pp_expr ~marks 7) b f
  | Index (b, i) ->
    if marks && e.note.tracked then
      Fmt.pf ppf "access(%a[%a])" (pp_expr ~marks 7) b (pp_expr ~marks 0) i
    else Fmt.pf ppf "%a[%a]" (pp_expr ~marks 7) b (pp_expr ~marks 0) i
  | New t -> atomic "NEW(%s)" t
  | Call (callee, args) ->
    let pp_args ppf args =
      Fmt.list ~sep:Fmt.comma (pp_expr ~marks 0) ppf args
    in
    let pp_callee ppf = function
      | Cproc p -> Fmt.string ppf p
      | Cmethod (o, m) -> Fmt.pf ppf "%a.%s" (pp_expr ~marks 7) o m
    in
    if marks && e.note.tracked then
      if args = [] then Fmt.pf ppf "call(%a)" pp_callee callee
      else Fmt.pf ppf "call(%a, %a)" pp_callee callee pp_args args
    else Fmt.pf ppf "%a(%a)" pp_callee callee pp_args args
  | Binop (op, a, b) ->
    let p = binop_prec op in
    let body ppf () =
      Fmt.pf ppf "%a %s %a" (pp_expr ~marks p) a (binop_token op)
        (pp_expr ~marks (p + 1)) b
    in
    if p < prec then Fmt.pf ppf "(%a)" body () else body ppf ()
  | Unop (op, a) ->
    let tok = match op with Neg -> "-" | Not -> "NOT " in
    (* operand printed at atom precedence so nested unaries parenthesize:
       -(-x), never the ambiguous --x *)
    let body ppf () = Fmt.pf ppf "%s%a" tok (pp_expr ~marks 7) a in
    if prec > 6 then Fmt.pf ppf "(%a)" body () else body ppf ()
  | Unchecked a ->
    let body ppf () = Fmt.pf ppf "(*UNCHECKED*) %a" (pp_expr ~marks 6) a in
    if prec > 6 then Fmt.pf ppf "(%a)" body () else body ppf ()

let rec pp_stmt ~marks ppf s =
  match s.sdesc with
  | Assign (d, e) ->
    if marks && d.note.tracked then
      (* modify(l, v): print the designator unmarked (it is the modified
         location, not a read) *)
      Fmt.pf ppf "@[<hv 2>modify(%a,@ %a)@]"
        (pp_expr ~marks:false 0) d (pp_expr ~marks 0) e
    else
      Fmt.pf ppf "@[<hv 2>%a :=@ %a@]" (pp_expr ~marks:false 0) d
        (pp_expr ~marks 0) e
  | Call_stmt e -> pp_expr ~marks 0 ppf e
  | If (branches, els) ->
    let first = ref true in
    List.iter
      (fun (c, body) ->
        Fmt.pf ppf "@[<v 2>%s %a THEN@,%a@]@,"
          (if !first then "IF" else "ELSIF")
          (pp_expr ~marks 0) c (pp_stmts ~marks) body;
        first := false)
      branches;
    if els <> [] then Fmt.pf ppf "@[<v 2>ELSE@,%a@]@," (pp_stmts ~marks) els;
    Fmt.pf ppf "END"
  | While (c, body) ->
    Fmt.pf ppf "@[<v 2>WHILE %a DO@,%a@]@,END" (pp_expr ~marks 0) c
      (pp_stmts ~marks) body
  | Repeat (body, c) ->
    Fmt.pf ppf "@[<v 2>REPEAT@,%a@]@,UNTIL %a" (pp_stmts ~marks) body
      (pp_expr ~marks 0) c
  | For (v, lo, hi, body) ->
    Fmt.pf ppf "@[<v 2>FOR %s := %a TO %a DO@,%a@]@,END" v (pp_expr ~marks 0)
      lo (pp_expr ~marks 0) hi (pp_stmts ~marks) body
  | Return None -> Fmt.string ppf "RETURN"
  | Return (Some e) -> Fmt.pf ppf "RETURN %a" (pp_expr ~marks 0) e

and pp_stmts ~marks ppf stmts =
  Fmt.pf ppf "%a"
    (Fmt.list ~sep:(Fmt.any ";@,") (pp_stmt ~marks))
    stmts

let pp_param_list ppf params =
  let pp_param ppf (n, t) = Fmt.pf ppf "%s : %a" n pp_ty t in
  Fmt.pf ppf "(%a)" (Fmt.list ~sep:(Fmt.any "; ") pp_param) params

let pp_ret ppf = function
  | None -> ()
  | Some t -> Fmt.pf ppf " : %a" pp_ty t

let pp_pragma_prefix ppf = function
  | None -> ()
  | Some p -> Fmt.pf ppf "%a " pp_pragma p

let pp_type_decl ~marks ppf td =
  ignore marks;
  Fmt.pf ppf "@[<v 2>TYPE %s = %sOBJECT@," td.tname
    (match td.super with None -> "" | Some s -> s ^ " ");
  List.iter (fun f -> Fmt.pf ppf "%s : %a;@," f.fname pp_ty f.fty) td.fields;
  if td.methods <> [] then begin
    Fmt.pf ppf "METHODS@,";
    List.iter
      (fun m ->
        Fmt.pf ppf "  %a%s%a%a := %s;@," pp_pragma_prefix m.mpragma m.mname
          pp_param_list m.mparams pp_ret m.mret m.mimpl)
      td.methods
  end;
  if td.overrides <> [] then begin
    Fmt.pf ppf "OVERRIDES@,";
    List.iter
      (fun o ->
        Fmt.pf ppf "  %a%s := %s;@," pp_pragma_prefix o.opragma o.oname o.oimpl)
      td.overrides
  end;
  Fmt.pf ppf "@]@,END;@,"

let pp_proc_decl ~marks ppf p =
  Fmt.pf ppf "@[<v 0>%aPROCEDURE %s%a%a =@," pp_pragma_prefix p.ppragma
    p.pname pp_param_list p.params pp_ret p.ret;
  if p.locals <> [] then begin
    Fmt.pf ppf "VAR@,";
    List.iter
      (fun l ->
        match l.linit with
        | None -> Fmt.pf ppf "  %s : %a;@," l.lname pp_ty l.lty
        | Some e ->
          Fmt.pf ppf "  %s : %a := %a;@," l.lname pp_ty l.lty
            (pp_expr ~marks 0) e)
      p.locals
  end;
  Fmt.pf ppf "@[<v 2>BEGIN@,%a@]@,END %s;@]@,@," (pp_stmts ~marks) p.body
    p.pname

let pp_module ?(marks = false) ppf m =
  Fmt.pf ppf "@[<v 0>MODULE %s;@,@," m.modname;
  List.iter (fun td -> pp_type_decl ~marks ppf td) m.types;
  if m.types <> [] then Fmt.pf ppf "@,";
  List.iter
    (fun g ->
      match g.ginit with
      | None -> Fmt.pf ppf "VAR %s : %a;@," g.gname pp_ty g.gty
      | Some e ->
        Fmt.pf ppf "VAR %s : %a := %a;@," g.gname pp_ty g.gty
          (pp_expr ~marks 0) e)
    m.globals;
  if m.globals <> [] then Fmt.pf ppf "@,";
  List.iter (fun p -> pp_proc_decl ~marks ppf p) m.procs;
  Fmt.pf ppf "@[<v 2>BEGIN@,%a@]@,END %s.@]" (pp_stmts ~marks) m.main
    m.modname

let to_string ?marks m = Fmt.str "%a" (pp_module ?marks) m
