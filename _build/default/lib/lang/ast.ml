(** Abstract syntax of Alphonse-L, the Modula-3-flavored imperative object
    language of paper §3 (its "base language L" plus the three pragmas).

    The language has record/object types with single inheritance, data and
    pointer fields, procedure-valued methods with overrides, dynamic
    allocation ([NEW]), and well-behaved pointers (no pointer arithmetic,
    §3.1). The pragmas [(*MAINTAINED*)] and [(*CACHED*)] mark the Alphonse
    procedures; [(*UNCHECKED*)] marks expressions whose dependencies the
    programmer vouches for (§6.4).

    Mutable [note] fields carry the results of type checking and of the
    static instrumentation analysis (§6.1) — the "transformed program" is
    this same tree with its notes filled in, which {!Pretty} can render
    with explicit [access]/[modify]/[call] operations (Algorithm 2). *)

type pos = { line : int; col : int }

let no_pos = { line = 0; col = 0 }

let pp_pos ppf { line; col } = Fmt.pf ppf "%d:%d" line col

(* ------------------------------------------------------------------ *)
(* Pragmas (§3.3)                                                      *)
(* ------------------------------------------------------------------ *)

type strategy = S_default | S_demand | S_eager

type cache_policy = P_unbounded | P_lru of int | P_fifo of int

type pragma =
  | Maintained of strategy
  | Cached of strategy * cache_policy

(* ------------------------------------------------------------------ *)
(* Types                                                               *)
(* ------------------------------------------------------------------ *)

type ty =
  | Tint
  | Tbool
  | Ttext
  | Tobj of string  (** nominal object type *)
  | Tarray of int * int * ty
      (** [ARRAY [lo..hi] OF t] — a fixed table, implicitly allocated
          where declared (the paper's §7.2 spreadsheet uses
          [ARRAY [1..100],[1..100] OF Cell]; nest for two dimensions) *)

let rec pp_ty ppf = function
  | Tint -> Fmt.string ppf "INTEGER"
  | Tbool -> Fmt.string ppf "BOOLEAN"
  | Ttext -> Fmt.string ppf "TEXT"
  | Tobj n -> Fmt.string ppf n
  | Tarray (lo, hi, t) -> Fmt.pf ppf "ARRAY [%d..%d] OF %a" lo hi pp_ty t

and ty_name t = Fmt.str "%a" pp_ty t

(* ------------------------------------------------------------------ *)
(* Expressions                                                         *)
(* ------------------------------------------------------------------ *)

type binop =
  | Add | Sub | Mul | Div | Mod  (* integers *)
  | Cat  (* text concatenation, & *)
  | Eq | Ne | Lt | Le | Gt | Ge  (* comparisons *)
  | And | Or  (* booleans, short-circuit *)

type unop = Neg | Not

(** Filled by the type checker and the §6.1 analysis. [tracked] means the
    operation must go through the Alphonse runtime (access/modify/call);
    the analysis clears it when the target is statically known to be
    untracked (e.g. a scalar local, or a call that can never reach an
    incremental procedure). *)
type note = {
  mutable ty : ty option;  (** result type; [None] for proper calls *)
  mutable is_global : bool;  (** for [Var]: global, not local/param *)
  mutable tracked : bool;
}

let fresh_note () = { ty = None; is_global = false; tracked = true }

type expr = { desc : expr_desc; pos : pos; note : note }

and expr_desc =
  | Int of int
  | Bool of bool
  | Text of string
  | Nil
  | Var of string
  | Field of expr * string  (** pointer dereference + field access *)
  | Index of expr * expr  (** array subscript, bounds-checked *)
  | Call of callee * expr list
  | New of string
  | Binop of binop * expr * expr
  | Unop of unop * expr
  | Unchecked of expr  (** (*UNCHECKED*) e — §6.4 *)

and callee =
  | Cproc of string
  | Cmethod of expr * string  (** o.m(...) — dynamic dispatch *)

let mk_expr ?(pos = no_pos) desc = { desc; pos; note = fresh_note () }

(* ------------------------------------------------------------------ *)
(* Statements                                                          *)
(* ------------------------------------------------------------------ *)

type stmt = { sdesc : stmt_desc; spos : pos }

and stmt_desc =
  | Assign of expr * expr  (** designator := expr *)
  | Call_stmt of expr  (** a Call expression in statement position *)
  | If of (expr * stmt list) list * stmt list
      (** IF/ELSIF branches and the ELSE block (possibly empty) *)
  | While of expr * stmt list
  | Repeat of stmt list * expr  (** REPEAT body UNTIL cond *)
  | For of string * expr * expr * stmt list  (** FOR i := e1 TO e2 DO *)
  | Return of expr option

let mk_stmt ?(pos = no_pos) sdesc = { sdesc; spos = pos }

(* ------------------------------------------------------------------ *)
(* Declarations                                                        *)
(* ------------------------------------------------------------------ *)

type field_decl = { fname : string; fty : ty; fpos : pos }

type method_decl = {
  mname : string;
  mparams : (string * ty) list;  (** excluding the receiver *)
  mret : ty option;
  mimpl : string;  (** implementing procedure *)
  mpragma : pragma option;
  mpos : pos;
}

type override_decl = {
  oname : string;
  oimpl : string;
  opragma : pragma option;
  opos : pos;
}

type type_decl = {
  tname : string;
  super : string option;
  fields : field_decl list;
  methods : method_decl list;
  overrides : override_decl list;
  tpos : pos;
}

type local_decl = { lname : string; lty : ty; linit : expr option; lpos : pos }

type proc_decl = {
  pname : string;
  params : (string * ty) list;
  ret : ty option;
  locals : local_decl list;
  body : stmt list;
  ppragma : pragma option;  (** [(*CACHED …*)] *)
  ppos : pos;
}

type global_decl = { gname : string; gty : ty; ginit : expr option; gpos : pos }

type module_ = {
  modname : string;
  types : type_decl list;
  globals : global_decl list;
  procs : proc_decl list;
  main : stmt list;  (** the module body — the mutator *)
}

(* ------------------------------------------------------------------ *)
(* Helpers                                                             *)
(* ------------------------------------------------------------------ *)

let find_type m name = List.find_opt (fun t -> t.tname = name) m.types
let find_proc m name = List.find_opt (fun p -> p.pname = name) m.procs

(** Walk every expression of the module (declarations' initializers,
    procedure bodies, and the main body). *)
let iter_exprs f m =
  let rec expr e =
    f e;
    match e.desc with
    | Int _ | Bool _ | Text _ | Nil | Var _ | New _ -> ()
    | Field (b, _) -> expr b
    | Index (b, i) ->
      expr b;
      expr i
    | Call (callee, args) ->
      (match callee with Cproc _ -> () | Cmethod (o, _) -> expr o);
      List.iter expr args
    | Binop (_, a, b) ->
      expr a;
      expr b
    | Unop (_, a) | Unchecked a -> expr a
  and stmt s =
    match s.sdesc with
    | Assign (d, e) ->
      expr d;
      expr e
    | Call_stmt e -> expr e
    | If (branches, els) ->
      List.iter
        (fun (c, body) ->
          expr c;
          List.iter stmt body)
        branches;
      List.iter stmt els
    | While (c, body) ->
      expr c;
      List.iter stmt body
    | Repeat (body, c) ->
      List.iter stmt body;
      expr c
    | For (_, a, b, body) ->
      expr a;
      expr b;
      List.iter stmt body
    | Return (Some e) -> expr e
    | Return None -> ()
  in
  List.iter (fun g -> Option.iter expr g.ginit) m.globals;
  List.iter
    (fun p ->
      List.iter (fun l -> Option.iter expr l.linit) p.locals;
      List.iter stmt p.body)
    m.procs;
  List.iter stmt m.main
