(** Unparser for Alphonse-L.

    Without marks the output re-parses to the same tree (a fixpoint of
    print∘parse, property-tested). With [~marks:true] and after
    [Transform.Analysis.analyze] has filled the site notes, it renders
    the {e transformed} program of the paper's Algorithm 2: reads of
    tracked storage as [access(…)], tracked assignments as
    [modify(…, …)], and potentially-incremental calls as [call(…, …)]. *)

val pp_pragma : Format.formatter -> Ast.pragma -> unit

val pp_expr : marks:bool -> int -> Format.formatter -> Ast.expr -> unit
(** [pp_expr ~marks prec ppf e] prints [e] in a context of precedence
    [prec] (0 = top level), parenthesizing as needed. *)

val pp_stmt : marks:bool -> Format.formatter -> Ast.stmt -> unit
val pp_stmts : marks:bool -> Format.formatter -> Ast.stmt list -> unit

val pp_module : ?marks:bool -> Format.formatter -> Ast.module_ -> unit
(** Print a whole module ([marks] defaults to [false]). *)

val to_string : ?marks:bool -> Ast.module_ -> string
