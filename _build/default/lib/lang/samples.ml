(** Sample Alphonse-L programs, used by the tests, the E12 benches, the
    examples, and [alphonsec]. The first two are transcriptions of the
    paper's Algorithm 1 (maintained height trees) and Algorithm 11 (AVL
    trees as a maintained balance method). *)

(** Algorithm 1: the maintained-height tree. Builds a left spine, queries
    the height, grafts a deeper spine, queries again. *)
let height_tree =
  {|
MODULE HeightTree;

TYPE Tree = OBJECT
  left, right : Tree;
METHODS
  (*MAINTAINED*) height() : INTEGER := Height;
END;

TYPE TreeNil = Tree OBJECT
OVERRIDES
  (*MAINTAINED*) height := HeightNil;
END;

VAR nil : Tree;
VAR root : Tree;

PROCEDURE Height(t : Tree) : INTEGER =
VAR hl, hr : INTEGER;
BEGIN
  hl := t.left.height();
  hr := t.right.height();
  IF hl > hr THEN RETURN hl + 1 ELSE RETURN hr + 1 END
END Height;

PROCEDURE HeightNil(t : Tree) : INTEGER =
BEGIN
  RETURN 0
END HeightNil;

PROCEDURE Spine(n : INTEGER) : Tree =
VAR t : Tree;
BEGIN
  t := nil;
  FOR i := 1 TO n DO
    t := Node(t, nil)
  END;
  RETURN t
END Spine;

PROCEDURE Node(l, r : Tree) : Tree =
VAR t : Tree;
BEGIN
  t := NEW(Tree);
  t.left := l;
  t.right := r;
  RETURN t
END Node;

BEGIN
  nil := NEW(TreeNil);
  root := Node(Spine(10), Spine(4));
  Print("height=", root.height(), "\n");
  root.right := Spine(20);
  Print("height=", root.height(), "\n");
  root.right := nil;
  Print("height=", root.height(), "\n")
END HeightTree.
|}

(** Algorithm 11: self-balancing AVL trees. Balancing is the maintained
    [balance] method; insertion is the plain unbalanced BST algorithm.
    The rotation cascade is a conventional helper procedure [Fix] called
    from the maintained body (see the library's [Trees.Avl] for why the
    paper's re-entrant [RotateRight(t).balance()] formulation is
    expressed this way). [balance] is pinned to DEMAND evaluation with
    the pragma argument: a side-effecting method that restructures the
    data it navigates is not OBS-safe under eager evaluation (§3.5). *)
let avl =
  {|
MODULE AvlTree;

TYPE Avl = OBJECT
  key : INTEGER;
  left, right : Avl;
METHODS
  (*MAINTAINED*) height() : INTEGER := Height;
  (*MAINTAINED DEMAND*) balance() : Avl := Balance;
END;

TYPE AvlNil = Avl OBJECT
OVERRIDES
  (*MAINTAINED*) height := HeightNil;
  (*MAINTAINED DEMAND*) balance := BalanceNil;
END;

VAR nil : Avl;
VAR root : Avl;

PROCEDURE Height(t : Avl) : INTEGER =
VAR hl, hr : INTEGER;
BEGIN
  hl := t.left.height();
  hr := t.right.height();
  IF hl > hr THEN RETURN hl + 1 ELSE RETURN hr + 1 END
END Height;

PROCEDURE HeightNil(t : Avl) : INTEGER =
BEGIN
  RETURN 0
END HeightNil;

PROCEDURE Diff(t : Avl) : INTEGER =
BEGIN
  RETURN t.left.height() - t.right.height()
END Diff;

PROCEDURE RotateRight(t : Avl) : Avl =
VAR s, b : Avl;
BEGIN
  s := t.left;
  b := s.right;
  s.right := t;
  t.left := b;
  RETURN s
END RotateRight;

PROCEDURE RotateLeft(t : Avl) : Avl =
VAR s, b : Avl;
BEGIN
  s := t.right;
  b := s.left;
  s.left := t;
  t.right := b;
  RETURN s
END RotateLeft;

PROCEDURE Fix(t : Avl) : Avl =
VAR s : Avl;
BEGIN
  IF t = nil THEN RETURN t END;
  IF Diff(t) > 1 THEN
    IF Diff(t.left) < 0 THEN t.left := RotateLeft(t.left) END;
    s := RotateRight(t);
    s.right := Fix(s.right);
    RETURN Fix(s)
  ELSIF Diff(t) < 0 - 1 THEN
    IF Diff(t.right) > 0 THEN t.right := RotateRight(t.right) END;
    s := RotateLeft(t);
    s.left := Fix(s.left);
    RETURN Fix(s)
  ELSE
    RETURN t
  END
END Fix;

PROCEDURE Balance(t : Avl) : Avl =
BEGIN
  t.left := t.left.balance();
  t.right := t.right.balance();
  RETURN Fix(t)
END Balance;

PROCEDURE BalanceNil(t : Avl) : Avl =
BEGIN
  RETURN t
END BalanceNil;

PROCEDURE Insert(t : Avl; k : INTEGER) : Avl =
VAR n : Avl;
BEGIN
  IF t = nil THEN
    n := NEW(Avl);
    n.key := k;
    n.left := nil;
    n.right := nil;
    RETURN n
  END;
  IF k < t.key THEN
    t.left := Insert(t.left, k)
  ELSIF k > t.key THEN
    t.right := Insert(t.right, k)
  END;
  RETURN t
END Insert;

PROCEDURE InOrder(t : Avl) =
BEGIN
  IF t # nil THEN
    InOrder(t.left);
    Print(t.key, " ");
    InOrder(t.right)
  END
END InOrder;

BEGIN
  nil := NEW(AvlNil);
  root := nil;
  FOR k := 1 TO 30 DO
    root := Insert(root, k);
    root := root.balance()
  END;
  Print("height=", root.height(), "\n");
  InOrder(root);
  Print("\n");
  FOR k := 31 TO 60 DO
    root := Insert(root, k)
  END;
  root := root.balance();
  Print("height=", root.height(), "\n")
END AvlTree.
|}

(** Function caching on a classic: naive Fibonacci becomes linear. *)
let fib_cached =
  {|
MODULE Fib;

(*CACHED*) PROCEDURE Fib(n : INTEGER) : INTEGER =
BEGIN
  IF n < 2 THEN RETURN n END;
  RETURN Fib(n - 1) + Fib(n - 2)
END Fib;

BEGIN
  Print(Fib(20), "\n");
  Print(Fib(21), "\n")
END Fib.
|}

(** A maintained method over global scalars — the smallest interesting
    mutator/Maintained-portion split. *)
let sums_maintained =
  {|
MODULE Sums;

TYPE Calc = OBJECT
METHODS
  (*MAINTAINED*) total() : INTEGER := Total;
END;

VAR a, b, c : INTEGER;
VAR calc : Calc;
VAR scratch : INTEGER;

PROCEDURE Total(s : Calc) : INTEGER =
BEGIN
  RETURN a + b + c
END Total;

BEGIN
  calc := NEW(Calc);
  a := 1;
  b := 2;
  c := 3;
  Print(calc.total(), "\n");
  b := 10;
  Print(calc.total(), "\n");
  scratch := 999;
  Print(calc.total(), "\n")
END Sums.
|}

(** The §6.4 UNCHECKED pragma: the search path of a lookup does not
    affect its result, so path changes must not invalidate it. *)
let unchecked_lookup =
  {|
MODULE Unchecked;

VAR p1, p2, p3, target : INTEGER;
VAR probe : Probe;

TYPE Probe = OBJECT
METHODS
  (*MAINTAINED*) lookup() : INTEGER := Lookup;
END;

PROCEDURE Walk() : INTEGER =
BEGIN
  RETURN p1 + p2 + p3
END Walk;

PROCEDURE Lookup(s : Probe) : INTEGER =
VAR w : INTEGER;
BEGIN
  w := (*UNCHECKED*) Walk();
  RETURN target
END Lookup;

BEGIN
  probe := NEW(Probe);
  target := 100;
  Print(probe.lookup(), "\n");
  p2 := 42;
  Print(probe.lookup(), "\n");
  target := 7;
  Print(probe.lookup(), "\n")
END Unchecked.
|}

(** Demand vs eager pragma arguments and a cached procedure with an LRU
    table, exercising the full pragma grammar. *)
let pragma_zoo =
  {|
MODULE Zoo;

TYPE Pair = OBJECT
  x, y : INTEGER;
METHODS
  (*MAINTAINED DEMAND*) sum() : INTEGER := Sum;
  (*MAINTAINED EAGER*) prod() : INTEGER := Prod;
END;

VAR p : Pair;

PROCEDURE Sum(s : Pair) : INTEGER =
BEGIN
  RETURN s.x + s.y
END Sum;

PROCEDURE Prod(s : Pair) : INTEGER =
BEGIN
  RETURN s.x * s.y
END Prod;

(*CACHED LRU 4*) PROCEDURE Square(n : INTEGER) : INTEGER =
BEGIN
  RETURN n * n
END Square;

BEGIN
  p := NEW(Pair);
  p.x := 3;
  p.y := 4;
  Print(p.sum(), " ", p.prod(), "\n");
  p.x := 10;
  Print(p.sum(), " ", p.prod(), "\n");
  FOR i := 1 TO 8 DO
    Print(Square(i), " ")
  END;
  Print("\n");
  Print(Square(2), "\n")
END Zoo.
|}

(** Algorithm 10 (§7.2): the spreadsheet. Cells hold expression trees; a
    [CellExp] node references another cell by index and returns its
    maintained value — "the use of top-level data references", and "how
    one Alphonse program can be used to construct another". *)
let spreadsheet =
  {|
MODULE Spread;

TYPE Exp = OBJECT
METHODS
  (*MAINTAINED*) value() : INTEGER := ZeroVal;
END;

TYPE NumExp = Exp OBJECT
  n : INTEGER;
OVERRIDES
  (*MAINTAINED*) value := NumVal;
END;

TYPE PlusExp = Exp OBJECT
  e1, e2 : Exp;
OVERRIDES
  (*MAINTAINED*) value := PlusVal;
END;

TYPE TimesExp = Exp OBJECT
  e1, e2 : Exp;
OVERRIDES
  (*MAINTAINED*) value := TimesVal;
END;

TYPE CellExp = Exp OBJECT
  ix : INTEGER;
OVERRIDES
  (*MAINTAINED*) value := CellRefVal;
END;

TYPE Cell = OBJECT
  func : Exp;
METHODS
  (*MAINTAINED*) value() : INTEGER := CellVal;
END;

VAR cells : ARRAY [1..9] OF Cell;

PROCEDURE ZeroVal(e : Exp) : INTEGER =
BEGIN
  RETURN 0
END ZeroVal;

PROCEDURE NumVal(e : NumExp) : INTEGER =
BEGIN
  RETURN e.n
END NumVal;

PROCEDURE PlusVal(e : PlusExp) : INTEGER =
BEGIN
  RETURN e.e1.value() + e.e2.value()
END PlusVal;

PROCEDURE TimesVal(e : TimesExp) : INTEGER =
BEGIN
  RETURN e.e1.value() * e.e2.value()
END TimesVal;

PROCEDURE CellRefVal(e : CellExp) : INTEGER =
BEGIN
  RETURN cells[e.ix].value()
END CellRefVal;

PROCEDURE CellVal(c : Cell) : INTEGER =
BEGIN
  RETURN c.func.value()
END CellVal;

PROCEDURE Num(n : INTEGER) : Exp =
VAR e : NumExp;
BEGIN
  e := NEW(NumExp);
  e.n := n;
  RETURN e
END Num;

PROCEDURE Plus(a, b : Exp) : Exp =
VAR e : PlusExp;
BEGIN
  e := NEW(PlusExp);
  e.e1 := a;
  e.e2 := b;
  RETURN e
END Plus;

PROCEDURE Times(a, b : Exp) : Exp =
VAR e : TimesExp;
BEGIN
  e := NEW(TimesExp);
  e.e1 := a;
  e.e2 := b;
  RETURN e
END Times;

PROCEDURE Ref(ix : INTEGER) : Exp =
VAR e : CellExp;
BEGIN
  e := NEW(CellExp);
  e.ix := ix;
  RETURN e
END Ref;

PROCEDURE ShowAll() =
BEGIN
  FOR i := 1 TO 9 DO
    Print(cells[i].value(), " ")
  END;
  Print("
")
END ShowAll;

BEGIN
  FOR i := 1 TO 9 DO
    cells[i] := NEW(Cell);
    cells[i].func := Num(0)
  END;
  cells[1].func := Num(5);
  cells[2].func := Num(7);
  cells[3].func := Plus(Ref(1), Ref(2));
  cells[4].func := Times(Ref(3), Num(10));
  cells[5].func := Plus(Ref(4), Ref(1));
  cells[6].func := Plus(Ref(5), Ref(5));
  ShowAll();
  cells[1].func := Num(100);
  ShowAll();
  cells[3].func := Times(Ref(1), Ref(2));
  ShowAll();
  cells[9].func := Plus(Ref(6), Ref(4));
  ShowAll()
END Spread.
|}

(** A conventional arrays program (no pragmas): the sieve of
    Eratosthenes. Exercises nested loops, arrays and booleans in both
    interpreters; under Alphonse execution the §6.1 analysis proves every
    site untracked, so it runs at conventional speed (E6). *)
let sieve =
  {|
MODULE Sieve;

VAR composite : ARRAY [2..120] OF BOOLEAN;
VAR count : INTEGER;

BEGIN
  FOR i := 2 TO 120 DO
    IF NOT composite[i] THEN
      count := count + 1;
      Print(i, " ");
      FOR k := 2 TO 120 DIV i DO
        composite[i * k] := TRUE
      END
    END
  END;
  Print("\ncount=", count, "\n")
END Sieve.
|}

(** Incremental graph maintenance: nodes with up to two outgoing edges
    carry a maintained [dist] method — the length of the shortest path to
    the sink. The mutator rewires edges; distances update incrementally
    (diamond-shaped dependencies, the E14 shape, expressed in L). *)
let shortest_path =
  {|
MODULE Dist;

TYPE Node = OBJECT
  e1, e2 : Node;
METHODS
  (*MAINTAINED*) dist() : INTEGER := Dist;
END;

TYPE Sink = Node OBJECT
OVERRIDES
  (*MAINTAINED*) dist := DistSink;
END;

VAR sink : Node;
VAR a, b, c, d, e : Node;

PROCEDURE Dist(n : Node) : INTEGER =
VAR d1, d2 : INTEGER;
BEGIN
  d1 := 1000000;
  d2 := 1000000;
  IF n.e1 # NIL THEN d1 := n.e1.dist() + 1 END;
  IF n.e2 # NIL THEN d2 := n.e2.dist() + 1 END;
  IF d1 < d2 THEN RETURN d1 ELSE RETURN d2 END
END Dist;

PROCEDURE DistSink(n : Node) : INTEGER =
BEGIN
  RETURN 0
END DistSink;

PROCEDURE Mk(x, y : Node) : Node =
VAR n : Node;
BEGIN
  n := NEW(Node);
  n.e1 := x;
  n.e2 := y;
  RETURN n
END Mk;

BEGIN
  sink := NEW(Sink);
  a := Mk(sink, NIL);
  b := Mk(a, NIL);
  c := Mk(b, a);
  d := Mk(c, b);
  e := Mk(d, c);
  Print(e.dist(), " ", d.dist(), " ", c.dist(), "
");
  (* shortcut: e gains a direct edge to a *)
  e.e2 := a;
  Print(e.dist(), "
");
  (* sever the shortcut and also the c -> a edge *)
  e.e2 := NIL;
  c.e2 := NIL;
  Print(e.dist(), "
")
END Dist.
|}

let all =
  [
    ("height_tree", height_tree);
    ("avl", avl);
    ("fib_cached", fib_cached);
    ("sums_maintained", sums_maintained);
    ("unchecked_lookup", unchecked_lookup);
    ("pragma_zoo", pragma_zoo);
    ("spreadsheet", spreadsheet);
    ("sieve", sieve);
    ("shortest_path", shortest_path);
  ]
