(** Conventional (non-incremental) interpreter for Alphonse-L — the
    execution the paper attributes to "a traditional compiler" (§3.6,
    §9.2). Pragmas are ignored: maintained and cached procedures execute
    exhaustively on every call. Output and termination behavior are the
    observables Theorem 5.1 requires the Alphonse execution to
    reproduce. *)

exception Runtime_error of string * Ast.pos

exception Return_value of Value.value option
(** Internal control flow for [RETURN]; escapes only on a malformed
    top-level [RETURN]. *)

type state
(** Mutable execution state: globals, heap allocator, output buffer,
    step counter, optional fuel. *)

type frame = (string, Value.value ref) Hashtbl.t
(** Procedure-local bindings (parameters, locals, FOR variables). *)

type outcome = {
  output : string;  (** everything [Print]ed *)
  error : string option;  (** a runtime error, if execution aborted *)
  steps : int;  (** statements + expressions evaluated *)
}

val run : ?fuel:int -> Typecheck.env -> outcome
(** Execute the module body. [fuel] bounds interpreter steps (runaway
    programs abort with an error outcome instead of hanging). *)

(** {1 Internal entry points (tests, benches)} *)

val init_state : ?fuel:int -> Typecheck.env -> state
(** Allocate globals (including implicit array storage) and run their
    initializers. *)

val eval : state -> frame -> Ast.expr -> Value.value
val exec_stmts : state -> frame -> Ast.stmt list -> unit
val call_proc : state -> Ast.proc_decl -> Value.value list -> Value.value option
