(** Abstract syntax of Alphonse-L, the Modula-3-flavored imperative object
    language of paper §3 (its "base language L" plus the three pragmas).

    The mutable [note] fields carry the results of type checking and of
    the §6.1 instrumentation analysis; the "transformed program" of §5 is
    this same tree with its notes filled in, renderable by {!Pretty} with
    explicit [access]/[modify]/[call] operations (Algorithm 2). *)

type pos = { line : int; col : int }

val no_pos : pos
val pp_pos : Format.formatter -> pos -> unit

(** {1 Pragmas (§3.3)} *)

type strategy = S_default | S_demand | S_eager

type cache_policy = P_unbounded | P_lru of int | P_fifo of int

type pragma =
  | Maintained of strategy
  | Cached of strategy * cache_policy

(** {1 Types} *)

type ty =
  | Tint
  | Tbool
  | Ttext
  | Tobj of string  (** nominal object type *)
  | Tarray of int * int * ty
      (** [ARRAY [lo..hi] OF t] — a fixed table, implicitly allocated
          where declared; nest for two dimensions (§7.2's cell array) *)

val pp_ty : Format.formatter -> ty -> unit
val ty_name : ty -> string

(** {1 Expressions} *)

type binop =
  | Add | Sub | Mul | Div | Mod
  | Cat  (** text concatenation, [&] *)
  | Eq | Ne | Lt | Le | Gt | Ge
  | And | Or  (** short-circuit *)

type unop = Neg | Not

(** Filled by the type checker and the §6.1 analysis. [tracked] means the
    operation must go through the Alphonse runtime; the analysis clears
    it when the target is statically known untracked. *)
type note = {
  mutable ty : ty option;  (** result type; [None] for proper calls *)
  mutable is_global : bool;  (** for [Var]: global, not local/param *)
  mutable tracked : bool;
}

val fresh_note : unit -> note

type expr = { desc : expr_desc; pos : pos; note : note }

and expr_desc =
  | Int of int
  | Bool of bool
  | Text of string
  | Nil
  | Var of string
  | Field of expr * string  (** pointer dereference + field access *)
  | Index of expr * expr  (** array subscript, bounds-checked *)
  | Call of callee * expr list
  | New of string
  | Binop of binop * expr * expr
  | Unop of unop * expr
  | Unchecked of expr  (** [(*UNCHECKED*) e] — §6.4 *)

and callee =
  | Cproc of string
  | Cmethod of expr * string  (** [o.m(...)] — dynamic dispatch *)

val mk_expr : ?pos:pos -> expr_desc -> expr

(** {1 Statements} *)

type stmt = { sdesc : stmt_desc; spos : pos }

and stmt_desc =
  | Assign of expr * expr  (** designator [:=] expression *)
  | Call_stmt of expr  (** a [Call] expression in statement position *)
  | If of (expr * stmt list) list * stmt list
      (** IF/ELSIF branches and the (possibly empty) ELSE block *)
  | While of expr * stmt list
  | Repeat of stmt list * expr  (** [REPEAT body UNTIL cond] *)
  | For of string * expr * expr * stmt list
      (** [FOR i := e1 TO e2 DO body END] *)
  | Return of expr option

val mk_stmt : ?pos:pos -> stmt_desc -> stmt

(** {1 Declarations} *)

type field_decl = { fname : string; fty : ty; fpos : pos }

type method_decl = {
  mname : string;
  mparams : (string * ty) list;  (** excluding the receiver *)
  mret : ty option;
  mimpl : string;  (** implementing procedure *)
  mpragma : pragma option;
  mpos : pos;
}

type override_decl = {
  oname : string;
  oimpl : string;
  opragma : pragma option;
  opos : pos;
}

type type_decl = {
  tname : string;
  super : string option;
  fields : field_decl list;
  methods : method_decl list;
  overrides : override_decl list;
  tpos : pos;
}

type local_decl = { lname : string; lty : ty; linit : expr option; lpos : pos }

type proc_decl = {
  pname : string;
  params : (string * ty) list;
  ret : ty option;  (** [None] for proper procedures *)
  locals : local_decl list;
  body : stmt list;
  ppragma : pragma option;  (** [(*CACHED …*)] *)
  ppos : pos;
}

type global_decl = { gname : string; gty : ty; ginit : expr option; gpos : pos }

type module_ = {
  modname : string;
  types : type_decl list;
  globals : global_decl list;
  procs : proc_decl list;
  main : stmt list;  (** the module body — the mutator *)
}

(** {1 Helpers} *)

val find_type : module_ -> string -> type_decl option
val find_proc : module_ -> string -> proc_decl option

val iter_exprs : (expr -> unit) -> module_ -> unit
(** Applies a function to every expression of the module (initializers,
    procedure bodies, the main body), parents before subexpressions. *)
