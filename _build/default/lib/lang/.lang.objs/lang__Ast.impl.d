lib/lang/ast.ml: Fmt List Option
