lib/lang/typecheck.mli: Ast Format Hashtbl
