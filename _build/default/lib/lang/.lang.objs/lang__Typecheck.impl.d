lib/lang/typecheck.ml: Ast Fmt Hashtbl List
