lib/lang/samples.ml:
