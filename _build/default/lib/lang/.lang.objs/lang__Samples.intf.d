lib/lang/samples.mli:
