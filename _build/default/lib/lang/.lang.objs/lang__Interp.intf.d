lib/lang/interp.mli: Ast Hashtbl Typecheck Value
