lib/lang/lexer.ml: Ast Buffer Fmt List String
