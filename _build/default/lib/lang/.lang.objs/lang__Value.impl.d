lib/lang/value.ml: Ast Fmt Hashtbl List
