lib/lang/interp.ml: Array Ast Buffer Fmt Hashtbl List Option Typecheck Value
