(** Hand-written lexer for Alphonse-L.

    Comments [(* … *)] nest and are skipped — except the three Alphonse
    pragma forms, which lex to tokens: [(*MAINTAINED [DEMAND|EAGER]*)],
    [(*CACHED [DEMAND|EAGER] [LRU n | FIFO n]*)], and [(*UNCHECKED*)].
    Keywords are upper-case, as in Modula-3. *)

open Ast

type token =
  | INT of int
  | TEXT of string
  | IDENT of string  (** identifiers, including type names *)
  | KW of string  (** reserved words, uppercased *)
  | PRAGMA of pragma
  | UNCHECKED_PRAGMA
  | LPAREN | RPAREN
  | LBRACK | RBRACK
  | SEMI | COLON | COMMA | DOT | DOTDOT
  | ASSIGN  (** := *)
  | EQ | NE | LT | LE | GT | GE
  | PLUS | MINUS | STAR | AMP
  | EOF

type spanned = { tok : token; tpos : pos }

exception Lex_error of string * pos

let keywords =
  [ "MODULE"; "BEGIN"; "END"; "TYPE"; "VAR"; "PROCEDURE"; "OBJECT";
    "METHODS"; "OVERRIDES"; "IF"; "THEN"; "ELSIF"; "ELSE"; "WHILE"; "DO";
    "FOR"; "TO"; "RETURN"; "NEW"; "NIL"; "TRUE"; "FALSE"; "AND"; "OR";
    "NOT"; "DIV"; "MOD"; "INTEGER"; "BOOLEAN"; "TEXT"; "ARRAY"; "OF";
    "REPEAT"; "UNTIL" ]

type state = {
  src : string;
  mutable i : int;
  mutable line : int;
  mutable bol : int;  (** offset of beginning of current line *)
}

let pos_of st = { line = st.line; col = st.i - st.bol + 1 }

let error st fmt =
  Fmt.kstr (fun s -> raise (Lex_error (s, pos_of st))) fmt

let peek st = if st.i < String.length st.src then Some st.src.[st.i] else None

let peek2 st =
  if st.i + 1 < String.length st.src then Some st.src.[st.i + 1] else None

let advance st =
  (match peek st with
  | Some '\n' ->
    st.line <- st.line + 1;
    st.bol <- st.i + 1
  | _ -> ());
  st.i <- st.i + 1

let is_digit c = c >= '0' && c <= '9'
let is_alpha c = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_'
let is_alnum c = is_alpha c || is_digit c

(* The contents of a pragma comment: words between "(*" and "*)". *)
let parse_pragma st words p =
  let strategy = function
    | "DEMAND" -> S_demand
    | "EAGER" -> S_eager
    | w -> error st "unknown evaluation strategy %s in pragma" w
  in
  match words with
  | "UNCHECKED" :: [] -> (UNCHECKED_PRAGMA, p)
  | "MAINTAINED" :: rest ->
    let s = match rest with [] -> S_default | [ w ] -> strategy w
      | _ -> error st "too many arguments in MAINTAINED pragma"
    in
    (PRAGMA (Maintained s), p)
  | "CACHED" :: rest ->
    let s = ref S_default and pol = ref P_unbounded in
    let rec go = function
      | [] -> ()
      | ("DEMAND" | "EAGER") as w :: rest ->
        s := strategy w;
        go rest
      | "LRU" :: n :: rest ->
        (match int_of_string_opt n with
        | Some k when k > 0 -> pol := P_lru k
        | _ -> error st "bad LRU size %s" n);
        go rest
      | "FIFO" :: n :: rest ->
        (match int_of_string_opt n with
        | Some k when k > 0 -> pol := P_fifo k
        | _ -> error st "bad FIFO size %s" n);
        go rest
      | w :: _ -> error st "unknown CACHED pragma argument %s" w
    in
    go rest;
    (PRAGMA (Cached (!s, !pol)), p)
  | w :: _ -> error st "unknown pragma %s" w
  | [] -> error st "empty pragma"

(* Skip a (possibly nested) comment whose opening "(*" was consumed; if it
   is a pragma, return its token. *)
let comment_or_pragma st p =
  let buf = Buffer.create 16 in
  let depth = ref 1 in
  let rec go () =
    match peek st with
    | None -> error st "unterminated comment"
    | Some '*' when peek2 st = Some ')' ->
      advance st;
      advance st;
      decr depth;
      if !depth > 0 then begin
        Buffer.add_string buf "*)";
        go ()
      end
    | Some '(' when peek2 st = Some '*' ->
      advance st;
      advance st;
      incr depth;
      Buffer.add_string buf "(*";
      go ()
    | Some c ->
      advance st;
      Buffer.add_char buf c;
      go ()
  in
  go ();
  let text = Buffer.contents buf in
  let words =
    String.split_on_char ' ' (String.trim text)
    |> List.filter (fun w -> w <> "")
  in
  match words with
  | ("MAINTAINED" | "CACHED" | "UNCHECKED") :: _ -> Some (parse_pragma st words p)
  | _ -> None (* ordinary comment *)

let text_literal st =
  let buf = Buffer.create 16 in
  let rec go () =
    match peek st with
    | None -> error st "unterminated text literal"
    | Some '"' -> advance st
    | Some '\\' -> (
      advance st;
      match peek st with
      | Some 'n' -> advance st; Buffer.add_char buf '\n'; go ()
      | Some 't' -> advance st; Buffer.add_char buf '\t'; go ()
      | Some '"' -> advance st; Buffer.add_char buf '"'; go ()
      | Some '\\' -> advance st; Buffer.add_char buf '\\'; go ()
      | Some c -> error st "bad escape \\%c" c
      | None -> error st "unterminated text literal")
    | Some c ->
      advance st;
      Buffer.add_char buf c;
      go ()
  in
  go ();
  Buffer.contents buf

let tokenize src =
  let st = { src; i = 0; line = 1; bol = 0 } in
  let toks = ref [] in
  let emit tok p = toks := { tok; tpos = p } :: !toks in
  let rec go () =
    let p = pos_of st in
    match peek st with
    | None -> emit EOF p
    | Some (' ' | '\t' | '\r' | '\n') ->
      advance st;
      go ()
    | Some '(' when peek2 st = Some '*' ->
      advance st;
      advance st;
      (match comment_or_pragma st p with
      | Some (tok, p) -> emit tok p
      | None -> ());
      go ()
    | Some c when is_digit c ->
      let start = st.i in
      while (match peek st with Some c -> is_digit c | None -> false) do
        advance st
      done;
      let s = String.sub src start (st.i - start) in
      (match int_of_string_opt s with
      | Some n -> emit (INT n) p
      | None -> error st "integer literal out of range: %s" s);
      go ()
    | Some c when is_alpha c ->
      let start = st.i in
      while (match peek st with Some c -> is_alnum c | None -> false) do
        advance st
      done;
      let word = String.sub src start (st.i - start) in
      if List.mem word keywords then emit (KW word) p else emit (IDENT word) p;
      go ()
    | Some '"' ->
      advance st;
      emit (TEXT (text_literal st)) p;
      go ()
    | Some c ->
      advance st;
      (match c with
      | '(' -> emit LPAREN p
      | ')' -> emit RPAREN p
      | '[' -> emit LBRACK p
      | ']' -> emit RBRACK p
      | ';' -> emit SEMI p
      | ',' -> emit COMMA p
      | '.' ->
        if peek st = Some '.' then begin
          advance st;
          emit DOTDOT p
        end
        else emit DOT p
      | '+' -> emit PLUS p
      | '-' -> emit MINUS p
      | '*' -> emit STAR p
      | '&' -> emit AMP p
      | '=' -> emit EQ p
      | '#' -> emit NE p
      | ':' ->
        if peek st = Some '=' then begin
          advance st;
          emit ASSIGN p
        end
        else emit COLON p
      | '<' ->
        if peek st = Some '=' then begin
          advance st;
          emit LE p
        end
        else emit LT p
      | '>' ->
        if peek st = Some '=' then begin
          advance st;
          emit GE p
        end
        else emit GT p
      | c -> error st "unexpected character %C" c);
      go ()
  in
  go ();
  List.rev !toks
