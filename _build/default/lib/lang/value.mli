(** Runtime values of Alphonse-L, shared by the conventional interpreter
    ({!Interp}) and the instrumented incremental interpreter
    ([Transform.Incr_interp]). Objects and arrays have identity; scalars
    are immutable. *)

type value =
  | VInt of int
  | VBool of bool
  | VText of string
  | VNil
  | VObj of obj
  | VArr of arr

and obj = {
  oid : int;  (** allocation identity *)
  cls : string;  (** runtime class, for method dispatch *)
  fields : (string, value ref) Hashtbl.t;
}

and arr = {
  aid : int;  (** allocation identity *)
  lo : int;
  hi : int;
  elems : value ref array;  (** index [i] lives at [elems.(i - lo)] *)
}

val equal : value -> value -> bool
(** Structural on scalars, identity on objects and arrays — the change
    test of Algorithm 4 and the argument-table key equality of §4.2. *)

val hash : value -> int
(** Consistent with {!equal}. *)

val equal_list : value list -> value list -> bool
val hash_list : value list -> int

val pp : Format.formatter -> value -> unit
(** How [Print] renders a value. *)

val to_string : value -> string

val default_of : Ast.ty -> value
(** Zero/[NIL]/[""] default for scalar and pointer types.
    @raise Invalid_argument on array types — array storage is allocated
    by the interpreters, which own the identity counter. *)
