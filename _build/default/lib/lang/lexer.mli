(** Hand-written lexer for Alphonse-L.

    Comments [(* … *)] nest and are skipped — except the three Alphonse
    pragma forms, which lex to tokens:
    [(*MAINTAINED [DEMAND|EAGER]*)],
    [(*CACHED [DEMAND|EAGER] [LRU n | FIFO n]*)], and [(*UNCHECKED*)].
    Keywords are upper-case, as in Modula-3. Text literals support the
    escapes backslash-n, backslash-t, backslash-quote, backslash-backslash. *)

type token =
  | INT of int
  | TEXT of string
  | IDENT of string
  | KW of string  (** reserved word, uppercased *)
  | PRAGMA of Ast.pragma
  | UNCHECKED_PRAGMA
  | LPAREN | RPAREN
  | LBRACK | RBRACK
  | SEMI | COLON | COMMA | DOT | DOTDOT
  | ASSIGN  (** [:=] *)
  | EQ | NE | LT | LE | GT | GE
  | PLUS | MINUS | STAR | AMP
  | EOF

type spanned = { tok : token; tpos : Ast.pos }

exception Lex_error of string * Ast.pos

val keywords : string list

val tokenize : string -> spanned list
(** The token stream, ending with {!EOF}.
    @raise Lex_error on malformed input. *)
