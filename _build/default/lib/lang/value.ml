(** Runtime values of Alphonse-L, shared by the conventional interpreter
    ({!Interp}) and the instrumented incremental interpreter
    ([Transform.Incr_interp]). Objects have identity ([oid]) and mutable
    field slots; pointers are well-behaved (§3.1): they are only created
    by [NEW], dereferenced, and assigned. *)

type value =
  | VInt of int
  | VBool of bool
  | VText of string
  | VNil
  | VObj of obj
  | VArr of arr

and obj = {
  oid : int;
  cls : string;  (** runtime class, for method dispatch *)
  fields : (string, value ref) Hashtbl.t;
}

and arr = {
  aid : int;
  lo : int;
  hi : int;
  elems : value ref array;
}

(** Structural equality with object identity — the change test of
    Algorithm 4 and the function-caching key equality of §4.2. *)
let equal a b =
  match (a, b) with
  | VInt x, VInt y -> x = y
  | VBool x, VBool y -> x = y
  | VText x, VText y -> x = y
  | VNil, VNil -> true
  | VObj x, VObj y -> x.oid = y.oid
  | VArr x, VArr y -> x.aid = y.aid
  | (VInt _ | VBool _ | VText _ | VNil | VObj _ | VArr _), _ -> false

let hash = function
  | VInt x -> Hashtbl.hash (0, x)
  | VBool x -> Hashtbl.hash (1, x)
  | VText x -> Hashtbl.hash (2, x)
  | VNil -> 3
  | VObj o -> Hashtbl.hash (4, o.oid)
  | VArr a -> Hashtbl.hash (5, a.aid)

let equal_list xs ys =
  List.length xs = List.length ys && List.for_all2 equal xs ys

let hash_list xs = Hashtbl.hash (List.map hash xs)

(** How [Print] renders a value. *)
let rec pp ppf = function
  | VInt n -> Fmt.int ppf n
  | VBool b -> Fmt.string ppf (if b then "TRUE" else "FALSE")
  | VText s -> Fmt.string ppf s
  | VNil -> Fmt.string ppf "NIL"
  | VObj o -> Fmt.pf ppf "%s#%d" o.cls o.oid
  | VArr a -> Fmt.pf ppf "ARRAY[%d..%d]#%d" a.lo a.hi a.aid

and to_string v = Fmt.str "%a" pp v

(** Default value for a declared scalar or pointer type (paper-style zero
    initialization). Array storage is allocated by the interpreters, which
    own the identity counter. *)
let default_of = function
  | Ast.Tint -> VInt 0
  | Ast.Tbool -> VBool false
  | Ast.Ttext -> VText ""
  | Ast.Tobj _ -> VNil
  | Ast.Tarray _ -> invalid_arg "Value.default_of: arrays are allocated" 
