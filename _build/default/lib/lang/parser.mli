(** Recursive-descent parser for Alphonse-L (concrete syntax per the
    paper's Modula-3 notation, §3.2).

    {v
    MODULE M;
    TYPE Tree = OBJECT
      left, right : Tree;
    METHODS
      (*MAINTAINED*) height() : INTEGER := Height;
    END;
    VAR root : Tree;
    VAR cells : ARRAY [1..9] OF Tree;
    PROCEDURE Height(t : Tree) : INTEGER =
    BEGIN RETURN ... END Height;
    BEGIN (* the mutator *) END M.
    v} *)

exception Parse_error of string * Ast.pos
(** Raised by the internal entry points; {!parse} converts it into a
    [result]. *)

val parse : string -> (Ast.module_, string) result
(** Parse a complete module. The error string includes a line:column
    position. *)

(**/**)

(* Internal entry points, exposed for white-box tests. *)

type stream = { mutable toks : Lexer.spanned list }

val parse_expr : stream -> Ast.expr
val parse_ty : stream -> Ast.ty
val parse_stmts : stream -> Ast.stmt list
val parse_module : stream -> Ast.module_
