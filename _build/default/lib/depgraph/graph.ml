type 'a node = {
  id : int;
  payload : 'a;
  owner : 'a t;
  mutable order : Order_list.item;
  mutable alive : bool;
  (* adjacency: heads of the intrusive doubly-linked edge lists *)
  mutable succ_head : 'a edge option;
  mutable pred_head : 'a edge option;
  mutable succ_count : int;
  mutable pred_count : int;
  (* execution stamp of the consumer that most recently recorded an edge
     from this node; suppresses duplicate edges within one execution *)
  mutable last_stamp : int;
}

and 'a edge = {
  src : 'a node;
  dst : 'a node;
  (* position in src's successor list *)
  mutable s_prev : 'a edge option;
  mutable s_next : 'a edge option;
  (* position in dst's predecessor list *)
  mutable p_prev : 'a edge option;
  mutable p_next : 'a edge option;
}

and 'a t = {
  order_list : Order_list.t;
  mutable next_id : int;
  mutable live_nodes : int;
  mutable live_edges : int;
  mutable total_nodes : int;
  mutable total_edges : int;
  mutable removed_edges : int;
}

let create () =
  {
    order_list = Order_list.create ();
    next_id = 0;
    live_nodes = 0;
    live_edges = 0;
    total_nodes = 0;
    total_edges = 0;
    removed_edges = 0;
  }

let check_alive who n =
  if not n.alive then invalid_arg (who ^ ": removed dependency graph node")

let mk_node t order =
  let id = t.next_id in
  t.next_id <- id + 1;
  t.live_nodes <- t.live_nodes + 1;
  t.total_nodes <- t.total_nodes + 1;
  fun payload ->
    {
      id;
      payload;
      owner = t;
      order;
      alive = true;
      succ_head = None;
      pred_head = None;
      succ_count = 0;
      pred_count = 0;
      last_stamp = -1;
    }

let add_node t ~order_after payload =
  let anchor =
    match order_after with
    | Some n ->
      check_alive "Graph.add_node" n;
      n.order
    | None -> Order_list.last t.order_list
  in
  mk_node t (Order_list.insert_after anchor) payload

let add_node_before t ~order_before payload =
  check_alive "Graph.add_node_before" order_before;
  mk_node t (Order_list.insert_before order_before.order) payload

let payload n = n.payload
let id n = n.id

let order_lt u v = Order_list.lt u.order v.order

let reorder_before u v =
  check_alive "Graph.reorder_before" u;
  check_alive "Graph.reorder_before" v;
  let fresh = Order_list.insert_before v.order in
  Order_list.delete u.order;
  u.order <- fresh

(* Unlink an edge from both adjacency lists. O(1). *)
let unlink_edge t e =
  (match e.s_prev with
  | Some p -> p.s_next <- e.s_next
  | None -> e.src.succ_head <- e.s_next);
  (match e.s_next with Some nx -> nx.s_prev <- e.s_prev | None -> ());
  (match e.p_prev with
  | Some p -> p.p_next <- e.p_next
  | None -> e.dst.pred_head <- e.p_next);
  (match e.p_next with Some nx -> nx.p_prev <- e.p_prev | None -> ());
  e.src.succ_count <- e.src.succ_count - 1;
  e.dst.pred_count <- e.dst.pred_count - 1;
  t.live_edges <- t.live_edges - 1;
  t.removed_edges <- t.removed_edges + 1

let add_edge ~stamp ~src ~dst =
  check_alive "Graph.add_edge" src;
  check_alive "Graph.add_edge" dst;
  if src.last_stamp <> stamp then begin
    src.last_stamp <- stamp;
    let t = src.owner in
    let e =
      { src; dst; s_prev = None; s_next = src.succ_head; p_prev = None;
        p_next = dst.pred_head }
    in
    (match src.succ_head with Some h -> h.s_prev <- Some e | None -> ());
    src.succ_head <- Some e;
    (match dst.pred_head with Some h -> h.p_prev <- Some e | None -> ());
    dst.pred_head <- Some e;
    src.succ_count <- src.succ_count + 1;
    dst.pred_count <- dst.pred_count + 1;
    t.live_edges <- t.live_edges + 1;
    t.total_edges <- t.total_edges + 1
  end

let clear_preds t n =
  check_alive "Graph.clear_preds" n;
  let rec go = function
    | None -> ()
    | Some e ->
      let next = e.p_next in
      unlink_edge t e;
      go next
  in
  go n.pred_head;
  n.pred_head <- None;
  assert (n.pred_count = 0)

let clear_succs t n =
  let rec go = function
    | None -> ()
    | Some e ->
      let next = e.s_next in
      unlink_edge t e;
      go next
  in
  go n.succ_head;
  n.succ_head <- None

let remove_node t n =
  check_alive "Graph.remove_node" n;
  clear_preds t n;
  clear_succs t n;
  Order_list.delete n.order;
  n.alive <- false;
  t.live_nodes <- t.live_nodes - 1

let iter_succ f n =
  check_alive "Graph.iter_succ" n;
  let rec go = function
    | None -> ()
    | Some e ->
      let next = e.s_next in
      f e.dst;
      go next
  in
  go n.succ_head

let iter_pred f n =
  check_alive "Graph.iter_pred" n;
  let rec go = function
    | None -> ()
    | Some e ->
      let next = e.p_next in
      f e.src;
      go next
  in
  go n.pred_head

let succ_count n = n.succ_count
let pred_count n = n.pred_count

(* Restore topological order after discovering the edge src → dst with
   order(dst) < order(src) — the Pearce–Kelly algorithm ("A dynamic
   topological sort algorithm for directed acyclic graphs", JEA 2006),
   the kind of machinery the paper's §2 cites for maintaining evaluation
   order "in the presence of graph changes". Provided every prior edge
   respected the order (the engine calls this on each violation, so the
   invariant is maintained from an empty graph), the affected region is
   the forward cone of [dst] below [src]'s priority plus the backward
   cone of [src] above [dst]'s priority; permuting the region's existing
   priority slots — backward cone first — restores the invariant. A
   cycle through the new edge is detected when the forward walk reaches
   [src]; the order is then left untouched (the evaluator is correct
   under any order; order only reduces redundant re-execution). *)
let restore_topological_order t ~src ~dst =
  ignore t;
  if not (order_lt dst src) then `Already_ordered
  else begin
    let exception Cycle_found in
    let fwd_tbl : (int, unit) Hashtbl.t = Hashtbl.create 16 in
    let fwd = ref [] in
    let rec walk_f n =
      if n.id = src.id then raise Cycle_found;
      if not (Hashtbl.mem fwd_tbl n.id) then begin
        Hashtbl.replace fwd_tbl n.id ();
        fwd := n :: !fwd;
        iter_succ
          (fun m -> if m.id = src.id || order_lt m src then walk_f m)
          n
      end
    in
    match walk_f dst with
    | exception Cycle_found -> `Cycle
    | () ->
      let bwd_tbl : (int, unit) Hashtbl.t = Hashtbl.create 16 in
      let bwd = ref [] in
      let rec walk_b n =
        if
          (not (Hashtbl.mem bwd_tbl n.id)) && not (Hashtbl.mem fwd_tbl n.id)
        then begin
          Hashtbl.replace bwd_tbl n.id ();
          bwd := n :: !bwd;
          iter_pred (fun m -> if order_lt dst m then walk_b m) n
        end
      in
      walk_b src;
      let by_order a b = Order_list.compare a.order b.order in
      let region = List.sort by_order (!fwd @ !bwd) in
      let desired = List.sort by_order !bwd @ List.sort by_order !fwd in
      let slots = List.map (fun n -> n.order) region in
      List.iter2 (fun slot n -> n.order <- slot) slots desired;
      `Reordered (List.length region)
  end


type stats = {
  live_nodes : int;
  live_edges : int;
  total_nodes : int;
  total_edges : int;
  removed_edges : int;
  order_relabels : int;
}

let stats (t : _ t) =
  {
    live_nodes = t.live_nodes;
    live_edges = t.live_edges;
    total_nodes = t.total_nodes;
    total_edges = t.total_edges;
    removed_edges = t.removed_edges;
    order_relabels = Order_list.relabel_count t.order_list;
  }

let validate t =
  Order_list.validate t.order_list;
  if t.live_nodes < 0 || t.live_edges < 0 then
    failwith "Graph.validate: negative live counts"
