(** The dynamic dependency graph of paper §4.1.

    Nodes represent incremental procedure instances and the abstract storage
    locations they touch; an edge [u → v] records that the most recent
    execution of the instance at [v] read or wrote the value at [u]. Each
    node carries a client payload (the engine's bookkeeping record) and an
    {!Order_list} item giving its approximate topological priority.

    Edges are intrusive, doubly linked in both the source's successor list
    and the destination's predecessor list, so that [clear_preds] — the
    paper's [RemovePredEdges], run before every re-execution — costs O(1)
    per edge (§9.2: "a doubly linked list of bidirectional edges … the O(1)
    cost of removing each edge can be charged to the edge creation").

    Duplicate suppression: within a single execution of a consumer, repeated
    accesses to the same source create only one edge, deduplicated by an
    execution stamp on the source node. *)

type 'a t
(** A dependency graph with payloads of type ['a]. *)

type 'a node

val create : unit -> 'a t

(** {1 Nodes} *)

val add_node : 'a t -> order_after:'a node option -> 'a -> 'a node
(** [add_node t ~order_after:anchor payload] creates a node. Its priority is
    inserted immediately after [anchor]'s, or at the very end of the order
    when [anchor] is [None]. *)

val add_node_before : 'a t -> order_before:'a node -> 'a -> 'a node
(** Like {!add_node} but the new node's priority precedes [order_before]'s —
    used for dependencies discovered during the consumer's execution, which
    must drain before the consumer under quiescence propagation. *)

val remove_node : 'a t -> 'a node -> unit
(** Detaches every incident edge and retires the node's order item. The node
    must not be used afterwards (checked: raises [Invalid_argument]). *)

val payload : 'a node -> 'a
val id : 'a node -> int

val order_lt : 'a node -> 'a node -> bool
(** Priority comparison: [order_lt u v] iff [u] drains before [v]. *)

val restore_topological_order :
  'a t ->
  src:'a node ->
  dst:'a node ->
  [ `Already_ordered | `Reordered of int | `Cycle ]
(** Pearce–Kelly dynamic topological-order restoration for a just-added
    edge [src → dst]: when [dst] currently drains before [src], permute
    the priorities of the affected region so every dependency again
    precedes its dependents. Returns how many nodes were moved, or
    [`Cycle] (order untouched) when the edge closes a cycle. This is the
    "compute this order in the presence of graph changes" machinery the
    paper's §2 cites; the evaluator is correct under any order, so this
    only reduces redundant re-execution. *)

val reorder_before : 'a node -> 'a node -> unit
(** [reorder_before u v] moves [u]'s priority to just before [v]'s. Used
    when a new edge [u → v] is discovered with [u] currently after [v]
    (out-of-order edge), restoring approximate topological order. *)

(** {1 Edges} *)

val add_edge : stamp:int -> src:'a node -> dst:'a node -> unit
(** Records dependency [src → dst]. [stamp] identifies the current
    execution of [dst]; a second call with the same [(src, stamp)] is a
    no-op (duplicate access within one execution). *)

val clear_preds : 'a t -> 'a node -> unit
(** Removes every incoming edge of the node ([RemovePredEdges]). *)

val iter_succ : ('a node -> unit) -> 'a node -> unit
(** Applies a function to every successor (dependent) of the node. The
    callback must not add or remove edges of this node. *)

val iter_pred : ('a node -> unit) -> 'a node -> unit

val succ_count : 'a node -> int
val pred_count : 'a node -> int

(** {1 Statistics (benches E5/E6)} *)

type stats = {
  live_nodes : int;
  live_edges : int;
  total_nodes : int;  (** nodes ever created *)
  total_edges : int;  (** edges ever created, after deduplication *)
  removed_edges : int;
  order_relabels : int;  (** items moved by order-maintenance relabeling *)
}

val stats : 'a t -> stats

val validate : 'a t -> unit
(** Internal invariant check for tests: link symmetry, counts, order. *)
