lib/depgraph/pairing_heap.ml: List
