lib/depgraph/union_find.mli:
