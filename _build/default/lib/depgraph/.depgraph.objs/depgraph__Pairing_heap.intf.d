lib/depgraph/pairing_heap.mli:
