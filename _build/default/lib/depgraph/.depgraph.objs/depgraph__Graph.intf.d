lib/depgraph/graph.mli:
