lib/depgraph/order_list.mli:
