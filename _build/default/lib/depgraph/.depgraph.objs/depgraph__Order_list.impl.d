lib/depgraph/order_list.ml: Int List
