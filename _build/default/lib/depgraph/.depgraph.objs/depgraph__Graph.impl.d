lib/depgraph/graph.ml: Hashtbl List Order_list
