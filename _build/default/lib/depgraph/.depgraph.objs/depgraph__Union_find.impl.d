lib/depgraph/union_find.ml:
