(** Disjoint-set forest with union by rank and path compression.

    This is the dynamic refinement of the dependency-graph partitioning of
    paper §6.3: every dependency graph node starts in its own singleton
    partition; adding an edge unions the two endpoints' partitions. Each
    root carries a client payload (the engine stores the partition's
    inconsistent set there), merged by the [merge] callback on union.

    All operations are amortized O(α(n)) — the inverse-Ackermann factor the
    paper cites in §9.2 for the partitioned time bound O(T·G(M)). *)

type 'a elt

val make : 'a -> 'a elt
(** [make payload] creates a fresh singleton set carrying [payload]. *)

val find : 'a elt -> 'a elt
(** Representative (root) of the element's set. *)

val payload : 'a elt -> 'a
(** Payload stored at the set's root. *)

val set_payload : 'a elt -> 'a -> unit
(** Replaces the payload at the element's root. *)

val same : 'a elt -> 'a elt -> bool
(** Whether two elements are in the same set. *)

val union : merge:('a -> 'a -> 'a) -> 'a elt -> 'a elt -> 'a elt
(** [union ~merge a b] merges the two sets and returns the new root. The
    surviving root's payload becomes [merge kept absorbed] where [kept] is
    the payload of the root chosen by rank. No-op (returning the root) if
    already in the same set. *)
