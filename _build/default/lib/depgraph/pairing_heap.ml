(* Classic pairing heap (Fredman et al. 1986) with an imperative wrapper so
   that melding mutates the destination in place, which is what the
   union-find-driven partition merging of §6.3 needs. *)

type 'a tree = Node of 'a * 'a tree list

type 'a t = {
  leq : 'a -> 'a -> bool;
  mutable root : 'a tree option;
  mutable size : int;
}

let create ~leq = { leq; root = None; size = 0 }

let is_empty t = t.size = 0

let length t = t.size

let merge_trees leq a b =
  match (a, b) with
  | Node (xa, ca), Node (xb, cb) ->
    if leq xa xb then Node (xa, b :: ca) else Node (xb, a :: cb)

let insert t x =
  let n = Node (x, []) in
  (match t.root with
  | None -> t.root <- Some n
  | Some r -> t.root <- Some (merge_trees t.leq r n));
  t.size <- t.size + 1

let peek_min t =
  match t.root with None -> None | Some (Node (x, _)) -> Some x

(* Two-pass pairing: merge children left to right in pairs, then fold the
   results right to left. *)
let rec merge_pairs leq = function
  | [] -> None
  | [ a ] -> Some a
  | a :: b :: rest -> (
    let ab = merge_trees leq a b in
    match merge_pairs leq rest with
    | None -> Some ab
    | Some r -> Some (merge_trees leq ab r))

let pop_min t =
  match t.root with
  | None -> None
  | Some (Node (x, children)) ->
    t.root <- merge_pairs t.leq children;
    t.size <- t.size - 1;
    Some x

let meld dst src =
  (match (dst.root, src.root) with
  | _, None -> ()
  | None, r -> dst.root <- r
  | Some a, Some b -> dst.root <- Some (merge_trees dst.leq a b));
  dst.size <- dst.size + src.size;
  src.root <- None;
  src.size <- 0

let clear t =
  t.root <- None;
  t.size <- 0

let to_list t =
  let rec go acc = function
    | [] -> acc
    | Node (x, c) :: rest -> go (x :: acc) (List.rev_append c rest)
  in
  match t.root with None -> [] | Some r -> go [] [ r ]
