(** Meldable priority queue (pairing heap).

    Used for the per-partition {e inconsistent sets} of the quiescence
    propagation evaluator (paper §4.5): nodes are drained in approximately
    topological order, and when the dynamic partitioning of §6.3 unions two
    dependency-graph partitions their inconsistent sets are melded in O(1).

    Elements are compared with the [leq] function supplied at creation.
    [insert] is O(1), [meld] is O(1), [pop_min] is amortized O(log n). The
    heap does not deduplicate; callers that need set semantics (the engine
    does) keep an [in_set] flag on elements and skip stale pops. *)

type 'a t

val create : leq:('a -> 'a -> bool) -> 'a t
(** [create ~leq] is an empty heap ordered by [leq] (non-strict). *)

val is_empty : 'a t -> bool

val length : 'a t -> int
(** Number of elements currently in the heap (counting duplicates). O(1). *)

val insert : 'a t -> 'a -> unit

val pop_min : 'a t -> 'a option
(** Removes and returns a minimal element, or [None] if empty. *)

val peek_min : 'a t -> 'a option

val meld : 'a t -> 'a t -> unit
(** [meld dst src] moves all elements of [src] into [dst], leaving [src]
    empty. Both heaps must have been created with the same [leq] (checked
    only by physical equality of the closures; violating this is a
    programming error). O(1). *)

val clear : 'a t -> unit

val to_list : 'a t -> 'a list
(** Elements in unspecified order; for tests. *)
