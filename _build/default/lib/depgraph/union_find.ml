type 'a elt = {
  mutable parent : 'a elt option; (* None iff root *)
  mutable rank : int;
  mutable data : 'a option; (* Some at roots; None once absorbed *)
}

let make payload = { parent = None; rank = 0; data = Some payload }

let rec find_root e =
  match e.parent with
  | None -> e
  | Some p ->
    let r = find_root p in
    e.parent <- Some r;
    r

let find = find_root

let payload e =
  match (find_root e).data with
  | Some d -> d
  | None -> assert false

let set_payload e d = (find_root e).data <- Some d

let same a b = find_root a == find_root b

let union ~merge a b =
  let ra = find_root a and rb = find_root b in
  if ra == rb then ra
  else begin
    let keep, absorb =
      if ra.rank > rb.rank then (ra, rb)
      else if rb.rank > ra.rank then (rb, ra)
      else begin
        ra.rank <- ra.rank + 1;
        (ra, rb)
      end
    in
    absorb.parent <- Some keep;
    (match (keep.data, absorb.data) with
    | Some k, Some ab -> keep.data <- Some (merge k ab)
    | _ -> assert false);
    absorb.data <- None;
    keep
  end
