(** Cache replacement policies for argument tables.

    §3.3: "Additional pragma arguments allow the specification of the
    caching technique, cache size, and the replacement algorithm." The
    capacity is a soft bound: only nodes with no live dependents may be
    evicted (see {!Engine.removable}), so a table whose entries are all
    depended upon is allowed to exceed its capacity rather than become
    unsound. *)

type t =
  | Unbounded  (** never evict (the default) *)
  | Lru of int  (** keep at most [n] entries, evicting least recently used *)
  | Fifo of int  (** keep at most [n] entries, evicting oldest first *)

let pp ppf = function
  | Unbounded -> Fmt.string ppf "unbounded"
  | Lru n -> Fmt.pf ppf "lru(%d)" n
  | Fifo n -> Fmt.pf ppf "fifo(%d)" n

let capacity = function
  | Unbounded -> None
  | Lru n | Fifo n -> Some n
