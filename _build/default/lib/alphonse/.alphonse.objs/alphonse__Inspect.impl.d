lib/alphonse/inspect.ml: Buffer Depgraph Engine Fmt Hashtbl List Option String
