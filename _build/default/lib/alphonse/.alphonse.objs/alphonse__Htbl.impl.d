lib/alphonse/htbl.ml: Array List
