lib/alphonse/func.ml: Engine Fmt Hashtbl Htbl Policy
