lib/alphonse/engine.mli: Depgraph Logs
