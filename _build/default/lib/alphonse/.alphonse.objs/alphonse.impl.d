lib/alphonse/alphonse.ml: Engine Func Htbl Inspect Policy Var
