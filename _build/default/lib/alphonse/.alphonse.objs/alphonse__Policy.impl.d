lib/alphonse/policy.ml: Fmt
