lib/alphonse/var.mli: Engine
