lib/alphonse/htbl.mli:
