lib/alphonse/var.ml: Engine Fmt
