lib/alphonse/engine.ml: Depgraph Fun List Logs
