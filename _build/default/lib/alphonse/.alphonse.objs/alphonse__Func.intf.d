lib/alphonse/func.mli: Engine Policy
