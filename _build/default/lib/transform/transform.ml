(** The Alphonse program transformation (paper §5, §6, §8).

    {!Analysis} performs the static work: identifying incremental
    procedures, limiting runtime checks (§6.1), and the static
    connectivity partitioning report (§6.3). {!Incr_interp} is the
    executable form of the transformed program — the instrumented
    interpreter realizing the access/modify/call templates against the
    incremental engine. The display form of the transformation
    (Algorithm 2) is [Lang.Pretty.pp_module ~marks:true] after
    {!Analysis.analyze} has filled the site notes. *)

module Analysis = Analysis
module Incr_interp = Incr_interp
