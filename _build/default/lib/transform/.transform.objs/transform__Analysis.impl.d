lib/transform/analysis.ml: Depgraph Fmt Hashtbl Lang List Option Queue
