lib/transform/transform.ml: Analysis Incr_interp
