lib/transform/analysis.mli: Format Hashtbl Lang
