lib/transform/incr_interp.ml: Alphonse Analysis Array Buffer Depgraph Fmt Hashtbl Lang List Option
