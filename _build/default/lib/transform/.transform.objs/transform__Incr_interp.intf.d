lib/transform/incr_interp.mli: Alphonse Analysis Depgraph Hashtbl Lang
