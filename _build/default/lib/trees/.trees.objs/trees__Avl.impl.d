lib/trees/avl.ml: Alphonse Itree
