lib/trees/itree.ml: Alphonse Array Fmt List Random
