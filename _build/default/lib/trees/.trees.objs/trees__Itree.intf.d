lib/trees/itree.mli: Alphonse Random
