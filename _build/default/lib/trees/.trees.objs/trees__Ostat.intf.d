lib/trees/ostat.mli: Alphonse Avl
