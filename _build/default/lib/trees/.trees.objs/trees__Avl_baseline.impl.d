lib/trees/avl_baseline.ml:
