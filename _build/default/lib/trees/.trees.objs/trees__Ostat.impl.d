lib/trees/ostat.ml: Alphonse Avl Itree
