lib/trees/avl_baseline.mli:
