lib/trees/avl.mli: Alphonse Itree
