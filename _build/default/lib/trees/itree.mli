(** Binary trees with tracked child pointers and a maintained [height]
    method — the paper's Algorithm 1.

    Nodes are heap objects with identity; child pointers are tracked
    {!Alphonse.Var}s, so pointer surgery by the mutator invalidates
    exactly the incremental [height] instances on affected paths. A
    shared [Nil] value plays the role of the paper's [TreeNil] object. *)

type tree =
  | Nil
  | Node of node

and node = {
  id : int;  (** identity, used for hashing and equality *)
  key : int;  (** payload; doubles as the search key for {!Avl} *)
  left : tree Alphonse.Var.t;
  right : tree Alphonse.Var.t;
}

val tree_equal : tree -> tree -> bool
(** Identity equality ([Nil] equals only [Nil]; nodes by [id]). *)

val tree_hash : tree -> int

type t
(** A forest context: an engine, a node allocator, and the maintained
    [height] method shared by every tree built in it. *)

val create : ?strategy:Alphonse.Engine.strategy -> Alphonse.Engine.t -> t
(** [create engine] makes a forest whose [height] instances use
    [strategy] (default: the engine's default). *)

val engine : t -> Alphonse.Engine.t

val node : t -> ?left:tree -> ?right:tree -> int -> tree
(** Allocate a fresh node with the given key and children. *)

val height : t -> tree -> int
(** The maintained height: 0 for [Nil], 1 + max of children otherwise.
    First call on a subtree is O(n); subsequent calls are cache hits and
    mutations re-execute only affected instances (§3.4). *)

val height_func : t -> (tree, int) Alphonse.Func.t
(** The underlying incremental procedure, for tests and benches. *)

val height_exhaustive : tree -> int
(** The exhaustive specification (a full recursive pass, no caching) —
    the conventional-execution baseline of §9.2. *)

val size : tree -> int
(** Number of nodes, computed exhaustively. *)

val keys : tree -> int list
(** In-order key list, computed exhaustively. *)

(** {1 Builders} *)

val perfect : t -> int -> int -> tree
(** [perfect t lo hi] is a perfectly balanced tree over keys [lo..hi]. *)

val spine : t -> int -> tree
(** [spine t n] is a degenerate right spine of [n] nodes — worst-case
    height. *)

val random : t -> rand:Random.State.t -> int -> tree
(** [random t ~rand n] builds a random binary search tree over keys
    [0..n-1] by shuffled insertion (expected O(log n) height). *)

val nodes : tree -> node list
(** All interior nodes in preorder — handy for picking mutation points. *)
