(** The "ambitious programmer" baseline of §9: a hand-coded AVL tree with
    a height field per node, updated along the insert/delete path with
    eager rotations — the change-aware program the paper argues Alphonse
    saves you from writing. Used as the E4 comparison and as a
    differential-testing oracle for {!Avl}. *)

type t =
  | Nil
  | Node of node

and node = {
  key : int;
  mutable left : t;
  mutable right : t;
  mutable height : int;
}

val height : t -> int
(** The stored height (0 for [Nil]). *)

val insert : t -> int -> t
(** Functional-style insertion returning the new root; rebalances along
    the path. Duplicates are ignored. *)

val delete : t -> int -> t
(** Deletion returning the new root; rebalances along the path. *)

val mem : t -> int -> bool
val to_list : t -> int list
val size : t -> int

val check_height : t -> int
(** Structural recomputation, ignoring the stored heights. *)

val is_balanced : t -> bool
