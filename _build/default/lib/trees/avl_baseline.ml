(** The "ambitious programmer" baseline of §9: a hand-coded AVL tree with
    a height field in each node, updated along the insert/delete path with
    eager rotations. This is the program Alphonse competes against in the
    E4 benches — intricate, change-aware by construction, and the shape of
    code the paper argues Alphonse lets you avoid writing. *)

type t =
  | Nil
  | Node of node

and node = {
  key : int;
  mutable left : t;
  mutable right : t;
  mutable height : int;
}

let height = function Nil -> 0 | Node n -> n.height

let update n = n.height <- 1 + max (height n.left) (height n.right)

let diff = function Nil -> 0 | Node n -> height n.left - height n.right

let rotate_right = function
  | Node ({ left = Node s; _ } as t) ->
    t.left <- s.right;
    s.right <- Node t;
    update t;
    update s;
    Node s
  | _ -> invalid_arg "Avl_baseline.rotate_right"

let rotate_left = function
  | Node ({ right = Node s; _ } as t) ->
    t.right <- s.left;
    s.left <- Node t;
    update t;
    update s;
    Node s
  | _ -> invalid_arg "Avl_baseline.rotate_left"

(* Restore the AVL invariant at the root of a subtree whose children are
   AVL and whose heights are current except possibly at the root. *)
let rebalance tree =
  match tree with
  | Nil -> Nil
  | Node n ->
    update n;
    let d = diff tree in
    if d > 1 then begin
      (if diff n.left < 0 then n.left <- rotate_left n.left);
      rotate_right tree
    end
    else if d < -1 then begin
      (if diff n.right > 0 then n.right <- rotate_right n.right);
      rotate_left tree
    end
    else tree

let rec insert tree k =
  match tree with
  | Nil -> Node { key = k; left = Nil; right = Nil; height = 1 }
  | Node n ->
    if k < n.key then n.left <- insert n.left k
    else if k > n.key then n.right <- insert n.right k;
    rebalance tree

let rec extract_min = function
  | Nil -> invalid_arg "Avl_baseline.extract_min"
  | Node n -> (
    match n.left with
    | Nil -> (n.key, n.right)
    | Node _ ->
      let m, l' = extract_min n.left in
      n.left <- l';
      (m, rebalance (Node n)))

let rec delete tree k =
  match tree with
  | Nil -> Nil
  | Node n ->
    if k < n.key then begin
      n.left <- delete n.left k;
      rebalance tree
    end
    else if k > n.key then begin
      n.right <- delete n.right k;
      rebalance tree
    end
    else begin
      match (n.left, n.right) with
      | Nil, r -> r
      | l, Nil -> l
      | _, r ->
        let m, r' = extract_min r in
        let fresh = Node { key = m; left = n.left; right = r'; height = 0 } in
        rebalance fresh
    end

let rec mem tree k =
  match tree with
  | Nil -> false
  | Node n -> if k < n.key then mem n.left k
              else if k > n.key then mem n.right k
              else true

let to_list tree =
  let rec go acc = function
    | Nil -> acc
    | Node n -> go (n.key :: go acc n.right) n.left
  in
  go [] tree

let rec size = function Nil -> 0 | Node n -> 1 + size n.left + size n.right

(* invariant checks, for differential tests against the Alphonse AVL *)
let rec check_height = function
  | Nil -> 0
  | Node n -> 1 + max (check_height n.left) (check_height n.right)

let rec is_balanced = function
  | Nil -> true
  | Node n ->
    abs (check_height n.left - check_height n.right) <= 1
    && is_balanced n.left && is_balanced n.right
