(** Order-statistic queries over the self-balancing tree: a maintained
    [size] attribute supporting O(log n) {!rank} and {!select} — the
    §7.3 dynamic-data-structure recipe applied a second time. The
    exhaustive specification is the obvious recursive count; maintenance
    keeps path-local sizes current across {!insert}/{!delete}. *)

type t

val create : ?strategy:Alphonse.Engine.strategy -> Alphonse.Engine.t -> t
val engine : t -> Alphonse.Engine.t

val avl : t -> Avl.avl
(** The underlying AVL tree (shared: mutations through either view are
    seen by both). *)

val insert : t -> int -> unit
val delete : t -> int -> unit
val mem : t -> int -> bool

val size : t -> int
(** Number of keys, via the maintained size attribute. *)

val rank : t -> int -> int
(** [rank t k] is the number of keys strictly smaller than [k]; [k] need
    not be present. O(log n). *)

val select : t -> int -> int
(** [select t i] is the [i]-th smallest key, 0-based. O(log n).
    @raise Not_found if [i] is out of range. *)

val median : t -> int
(** The upper median. @raise Not_found on an empty tree. *)

val to_list : t -> int list
