(** Order-statistic queries over the self-balancing tree: a maintained
    [size] attribute supporting O(log n) [rank] and [select].

    This is the paper's dynamic-data-structure recipe (§7.3) applied a
    second time: the exhaustive specification of [size] is the obvious
    recursive count; declaring it maintained makes insertions and
    deletions update only the sizes on the affected path, and the
    rank/select walks read the maintained values. Combined with
    {!Avl.rebalance}, every query is O(log n). *)

module Engine = Alphonse.Engine
module Var = Alphonse.Var
module Func = Alphonse.Func
open Itree

type t = {
  avl : Avl.avl;
  size_fn : (tree, int) Func.t;
}

let create ?strategy eng =
  let avl = Avl.create ?strategy eng in
  let size_fn =
    Func.create eng ~name:"size" ?strategy ~hash_arg:tree_hash
      ~equal_arg:tree_equal (fun size t ->
        match t with
        | Nil -> 0
        | Node n ->
          1
          + Func.call size (Var.get n.left)
          + Func.call size (Var.get n.right))
  in
  { avl; size_fn }

let engine t = Avl.engine t.avl
let avl t = t.avl

let insert t k = Avl.insert t.avl k
let delete t k = Avl.delete t.avl k
let mem t k = Avl.mem t.avl k

let size t =
  Avl.rebalance t.avl;
  Func.call t.size_fn (Avl.root t.avl)

(** [rank t k] is the number of keys strictly smaller than [k]. O(log n)
    after rebalancing: the walk reads one maintained size per level. *)
let rank t k =
  Avl.rebalance t.avl;
  let rec go acc = function
    | Nil -> acc
    | Node n ->
      if k <= n.key then go acc (Var.get n.left)
      else
        go
          (acc + 1 + Func.call t.size_fn (Var.get n.left))
          (Var.get n.right)
  in
  go 0 (Avl.root t.avl)

(** [select t i] is the [i]-th smallest key (0-based).
    @raise Not_found if [i] is out of range. *)
let select t i =
  Avl.rebalance t.avl;
  let rec go i = function
    | Nil -> raise Not_found
    | Node n ->
      let ls = Func.call t.size_fn (Var.get n.left) in
      if i < ls then go i (Var.get n.left)
      else if i = ls then n.key
      else go (i - ls - 1) (Var.get n.right)
  in
  if i < 0 then raise Not_found;
  go i (Avl.root t.avl)

(** [median t] is [select t (size/2)], the upper median.
    @raise Not_found on an empty tree. *)
let median t = select t (size t / 2)

let to_list t = Avl.to_list t.avl
