(* Benchmark harness reproducing the paper's evaluation claims (E1–E16 in
   DESIGN.md). The paper has no numeric tables; its evaluation is the
   asymptotic analysis of §9, the per-example claims of §3.4/§7, and the
   optimizations of §6. Each experiment below prints a table of
   paper-claim vs measured rows; the Bechamel suite at the end provides
   wall-clock microbenchmarks for the timing-sensitive comparisons.

     dune exec bench/main.exe                 # all experiments + micro
     dune exec bench/main.exe -- report       # count/shape tables only
     dune exec bench/main.exe -- micro        # Bechamel suite only
     dune exec bench/main.exe -- E4 E7        # a subset of experiments *)

module Engine = Alphonse.Engine
module Var = Alphonse.Var
module Func = Alphonse.Func
module Policy = Alphonse.Policy
module Json = Alphonse.Json
module Itree = Trees.Itree
module Avl = Trees.Avl
module Base = Trees.Avl_baseline
module Sheet = Spreadsheet.Sheet
module L = Attrgram.Let_lang

let executions eng = (Engine.stats eng).Engine.executions
let settle_steps eng = (Engine.stats eng).Engine.settle_steps

let now () = Unix.gettimeofday ()

let time_of f =
  let t0 = now () in
  let r = f () in
  (r, now () -. t0)

(* ------------------------------------------------------------------ *)
(* Table printing                                                      *)
(* ------------------------------------------------------------------ *)

(* Machine-readable results: every table printed below is also recorded
   here, and the driver dumps them (with per-experiment wall clock) to
   BENCH_results.json, so the perf trajectory is tracked across PRs
   instead of living in scrollback. *)
type recorded_table = {
  rt_title : string;
  rt_claim : string;
  rt_headers : string list;
  rt_rows : string list list;
}

let recorded_tables : recorded_table list ref = ref []

let print_table ~title ~claim headers rows =
  recorded_tables :=
    { rt_title = title; rt_claim = claim; rt_headers = headers;
      rt_rows = rows }
    :: !recorded_tables;
  Fmt.pr "@.== %s ==@." title;
  Fmt.pr "   claim: %s@." claim;
  let cols = List.length headers in
  let width c =
    List.fold_left
      (fun w row -> max w (String.length (List.nth row c)))
      (String.length (List.nth headers c))
      rows
  in
  let widths = List.init cols width in
  let line row =
    Fmt.pr "   %s@."
      (String.concat "  "
         (List.mapi
            (fun i cell ->
              let w = List.nth widths i in
              cell ^ String.make (w - String.length cell) ' ')
            row))
  in
  line headers;
  line (List.map (fun w -> String.make w '-') widths);
  List.iter line rows

let fi = string_of_int
let ff f = Fmt.str "%.2f" f
let fms t = Fmt.str "%.2fms" (t *. 1000.)

(* ------------------------------------------------------------------ *)
(* E1 — §3.4: maintained height cost profile                           *)
(* ------------------------------------------------------------------ *)

let e1 () =
  let rows =
    List.map
      (fun n ->
        let eng = Engine.create () in
        let forest = Itree.create eng in
        let tree = Itree.perfect forest 0 (n - 1) in
        ignore (Itree.height forest tree);
        let first = executions eng in
        Engine.reset_stats eng;
        ignore (Itree.height forest tree);
        let repeat = executions eng in
        (* one pointer change at a deepest leaf *)
        let rec leftmost = function
          | Itree.Nil -> assert false
          | Itree.Node nd -> (
            match Var.get nd.Itree.left with
            | Itree.Nil -> nd
            | sub -> leftmost sub)
        in
        Engine.reset_stats eng;
        let leaf = leftmost tree in
        Var.set leaf.Itree.left (Itree.node forest (-1));
        ignore (Itree.height forest tree);
        let single = executions eng in
        (* a batch of 8 pointer changes before one query *)
        Engine.reset_stats eng;
        let interior = Array.of_list (Itree.nodes tree) in
        for i = 1 to 8 do
          let nd = interior.(i * 997 mod Array.length interior) in
          Var.set nd.Itree.right (Var.get nd.Itree.right)
          (* no-op write *);
          Var.set nd.Itree.left (Var.get nd.Itree.left)
        done;
        let nd = interior.(Array.length interior / 3) in
        Var.set nd.Itree.left (Itree.node forest (-2));
        ignore (Itree.height forest tree);
        let batched = executions eng in
        [ fi n; fi first; fi repeat; fi single; fi batched ])
      [ 1023; 4095; 16383; 65535 ]
  in
  print_table ~title:"E1  maintained height (§3.4)"
    ~claim:
      "first call O(n); repeats O(1); a pointer change O(height); batched \
       no-op changes propagate nothing"
    [ "n"; "first-call"; "re-query"; "1-change"; "batch(8 noop + 1)" ]
    rows

(* ------------------------------------------------------------------ *)
(* E2 — §7.1: attribute grammars                                       *)
(* ------------------------------------------------------------------ *)

let e2 () =
  let module LS = Attrgram.Let_lang_static in
  let rows =
    List.map
      (fun leaves ->
        let eng = Engine.create () in
        let l = L.create eng in
        let leaf_nodes = Array.init leaves (fun i -> L.int l i) in
        (* balanced plus-tree over the leaves *)
        let rec build lo hi =
          if lo = hi then leaf_nodes.(lo)
          else
            let mid = (lo + hi) / 2 in
            L.plus l (build lo mid) (build (mid + 1) hi)
        in
        let root = L.root l (build 0 (leaves - 1)) in
        ignore (L.value_of l root);
        let first = executions eng in
        Engine.reset_stats eng;
        L.set_int leaf_nodes.(0) 10_000;
        ignore (L.value_of l root);
        let edit = executions eng in
        let _, exh_t = time_of (fun () -> L.exhaustive_value root) in
        Engine.reset_stats eng;
        let _, inc_t =
          time_of (fun () ->
              L.set_int leaf_nodes.(1) 20_000;
              L.value_of l root)
        in
        (* the paper's section-10 comparator: same grammar, static deps *)
        let ls = LS.create () in
        let s_leaves = Array.init leaves (fun i -> LS.int ls i) in
        let rec sbuild lo hi =
          if lo = hi then s_leaves.(lo)
          else
            let mid = (lo + hi) / 2 in
            LS.plus ls (sbuild lo mid) (sbuild (mid + 1) hi)
        in
        let s_root = LS.root ls (sbuild 0 (leaves - 1)) in
        ignore (LS.value_of ls s_root);
        LS.set_int ls s_leaves.(0) 10_000;
        ignore (LS.value_of ls s_root);
        let _, static_t =
          time_of (fun () ->
              LS.set_int ls s_leaves.(1) 20_000;
              LS.value_of ls s_root)
        in
        [ fi leaves; fi first; fi edit; fms inc_t; fms static_t; fms exh_t ])
      [ 64; 256; 1024; 4096 ]
  in
  print_table ~title:"E2  attribute grammar re-attribution (§7.1, §10)"
    ~claim:
      "a leaf edit re-evaluates O(depth) attribute instances, not the whole \
       tree; the static-dependency AG baseline (the paper's §10 \
       comparators) is faster in constants but cannot express non-local \
       references"
    [
      "leaves"; "initial-attrs"; "edit-cost"; "alphonse"; "static-AG";
      "exhaustive";
    ]
    rows

(* ------------------------------------------------------------------ *)
(* E3 — §7.2: spreadsheet                                              *)
(* ------------------------------------------------------------------ *)

let e3 () =
  let rows =
    List.concat_map
      (fun n ->
        (* chain: A(r) = A(r-1) + 1 *)
        let s = Sheet.create () in
        let eng = Sheet.engine s in
        Sheet.set_raw s (0, 0) "1";
        for r = 1 to n - 1 do
          Sheet.set_raw s (0, r) (Printf.sprintf "=A%d+1" r)
        done;
        ignore (Sheet.value s (0, n - 1));
        Engine.reset_stats eng;
        Sheet.set_raw s (0, n / 2) "1000";
        ignore (Sheet.value s (0, n - 1));
        let mid_edit = executions eng in
        let _, oracle_t =
          time_of (fun () -> Sheet.exhaustive_value s (0, n - 1))
        in
        Engine.reset_stats eng;
        let _, inc_t =
          time_of (fun () ->
              Sheet.set_raw s (0, n / 2) "2000";
              Sheet.value s (0, n - 1))
        in
        (* fan: B1 = SUM(A1:An) *)
        let s2 = Sheet.create () in
        let eng2 = Sheet.engine s2 in
        for r = 0 to n - 1 do
          Sheet.set_raw s2 (0, r) (string_of_int r)
        done;
        Sheet.set_raw s2 (1, 0) (Printf.sprintf "=SUM(A1:A%d)" n);
        ignore (Sheet.value s2 (1, 0));
        Engine.reset_stats eng2;
        Sheet.set_raw s2 (0, n / 2) "424242";
        ignore (Sheet.value s2 (1, 0));
        let fan_edit = executions eng2 in
        [
          [
            Printf.sprintf "chain-%d" n; fi mid_edit; fms inc_t; fms oracle_t;
          ];
          [ Printf.sprintf "fan-%d" n; fi fan_edit; "-"; "-" ];
        ])
      [ 128; 512; 2048 ]
  in
  print_table ~title:"E3  spreadsheet recalculation (§7.2)"
    ~claim:
      "a middle edit in an n-cell chain re-executes ~n/2 cells (only the \
       downstream); an edit under an n-ary SUM re-executes 2 instances"
    [ "workload"; "edit-cost"; "inc-time"; "exhaustive-time" ]
    rows

(* ------------------------------------------------------------------ *)
(* E4 — §7.3/§9: AVL vs the hand-coded baseline                        *)
(* ------------------------------------------------------------------ *)

let e4 () =
  let n = 1024 in
  (* Alphonse AVL: plain BST insert + maintained balance *)
  let eng = Engine.create () in
  let t = Avl.create eng in
  let (), alphonse_t =
    time_of (fun () ->
        for k = 1 to n do
          Avl.insert t k;
          Avl.rebalance t
        done)
  in
  let total_execs = executions eng in
  Engine.reset_stats eng;
  Avl.insert t (n + 100);
  Avl.rebalance t;
  let one_more = executions eng in
  (* hand-coded baseline *)
  let (), base_t =
    time_of (fun () ->
        let b = ref Base.Nil in
        for k = 1 to n do
          b := Base.insert !b k
        done)
  in
  (* exhaustive: conventional execution re-balances from scratch each time;
     approximate with the baseline rebuilt from all keys on every insert *)
  let (), exhaustive_t =
    time_of (fun () ->
        for m = 1 to n / 8 do
          (* sampled 1/8 to keep the quadratic baseline tolerable *)
          let b = ref Base.Nil in
          for k = 1 to m * 8 do
            b := Base.insert !b k
          done
        done)
  in
  let exhaustive_t = exhaustive_t *. 8. in
  (* lookups on the final balanced tree *)
  let (), lookup_t =
    time_of (fun () ->
        for k = 1 to n do
          ignore (Avl.mem t k)
        done)
  in
  print_table ~title:"E4  self-balancing AVL (§7.3, §9)"
    ~claim:
      "Alphonse AVL keeps the tree balanced with O(log n) re-executions per \
       insert; asymptotics match the hand-coded AVL, with a constant-factor \
       bookkeeping cost; both beat exhaustive re-balancing"
    [ "metric"; "value" ]
    [
      [ "inserts"; fi n ];
      [ "alphonse total re-executions"; fi total_execs ];
      [ "alphonse re-executions for 1 more insert"; fi one_more ];
      [ "alphonse time (insert+rebalance each)"; fms alphonse_t ];
      [ "hand-coded baseline time"; fms base_t ];
      [ "exhaustive rebuild-per-insert time (est)"; fms exhaustive_t ];
      [ "alphonse n lookups (mem, rebalancing)"; fms lookup_t ];
      [ "final height"; fi (Avl.check_height (Avl.root t)) ];
      [ "balanced"; string_of_bool (Avl.is_balanced (Avl.root t)) ];
    ]

(* ------------------------------------------------------------------ *)
(* E5 — §9.1: space                                                    *)
(* ------------------------------------------------------------------ *)

let e5 () =
  let rows =
    List.map
      (fun n ->
        let eng = Engine.create () in
        let forest = Itree.create eng in
        let tree = Itree.perfect forest 0 (n - 1) in
        ignore (Itree.height forest tree);
        let g = Engine.graph_stats eng in
        let nodes = g.Depgraph.Graph.live_nodes in
        let edges = g.Depgraph.Graph.live_edges in
        [
          fi n; fi nodes; fi edges;
          ff (float_of_int edges /. float_of_int nodes);
          ff (float_of_int nodes /. float_of_int n);
        ])
      [ 1023; 4095; 16383; 65535 ]
  in
  print_table ~title:"E5  dependency graph space (§9.1)"
    ~claim:
      "O(M) nodes and — with constant-size referenced-argument sets — O(M) \
       edges: the edges/node and nodes/M ratios stay constant as M grows"
    [ "M (tree nodes)"; "graph nodes"; "graph edges"; "edges/node"; "nodes/M" ]
    rows

(* ------------------------------------------------------------------ *)
(* E6 — §9.2: instrumentation overhead is O(T)                         *)
(* ------------------------------------------------------------------ *)

let overhead_program =
  {|MODULE Loops;
    VAR acc : INTEGER;
    PROCEDURE Work(n : INTEGER) : INTEGER =
    VAR s : INTEGER;
    BEGIN
      s := 0;
      FOR i := 1 TO n DO
        FOR j := 1 TO n DO
          s := s + i * j MOD 97
        END
      END;
      RETURN s
    END Work;
    BEGIN
      acc := Work(150);
      Print(acc, "\n")
    END Loops.|}

let e6 () =
  (* (a) the embedded DSL: reads and writes of tracked vs untracked cells
     vs plain references, outside incremental execution *)
  let iters = 1_000_000 in
  let eng = Engine.create () in
  let plain = ref 0 in
  let untracked = Var.create eng 0 in
  let tracked = Var.create eng 0 in
  let probe = Func.create eng (fun _ () -> Var.get tracked) in
  ignore (Func.call probe ()) (* materialize the node *);
  let (), t_plain =
    time_of (fun ()
      -> for i = 1 to iters do plain := !plain + i mod 7 done)
  in
  let (), t_untracked =
    time_of (fun () ->
        for i = 1 to iters do
          Var.set untracked (Var.get untracked + (i mod 7))
        done)
  in
  let (), t_tracked =
    time_of (fun () ->
        for i = 1 to iters do
          Var.set tracked (Var.get tracked + (i mod 7))
        done)
  in
  ignore (Func.call probe ());
  (* (b) the language: a pragma-free program under both interpreters *)
  let env =
    match Lang.Parser.parse overhead_program with
    | Ok m -> (
      match Lang.Typecheck.check m with
      | Ok env -> env
      | Error _ -> assert false)
    | Error e -> failwith e
  in
  (* warm up both paths, then take the best of three to dodge GC noise *)
  let best_of_3 f =
    ignore (f ());
    let r = ref infinity and v = ref None in
    for _ = 1 to 3 do
      let x, t = time_of f in
      if t < !r then begin
        r := t;
        v := Some x
      end
    done;
    (Option.get !v, !r)
  in
  let conv, t_conv = best_of_3 (fun () -> Lang.Interp.run env) in
  let inc, t_inc = best_of_3 (fun () -> Transform.Incr_interp.run env) in
  assert (conv.Lang.Interp.output = inc.Transform.Incr_interp.output);
  print_table ~title:"E6  dynamic dependence analysis overhead (§9.2)"
    ~claim:
      "instrumentation is O(T): a constant factor over conventional \
       execution, and ~1x when the analysis proves sites untracked (§6.1)"
    [ "workload"; "time"; "vs plain" ]
    [
      [ "plain ref loop (1M ops)"; fms t_plain; "1.00x" ];
      [ "untracked Var loop"; fms t_untracked; ff (t_untracked /. t_plain) ^ "x" ];
      [ "tracked Var loop (mutator)"; fms t_tracked; ff (t_tracked /. t_plain) ^ "x" ];
      [ "Alphonse-L conventional run"; fms t_conv; "1.00x" ];
      [ "Alphonse-L instrumented run"; fms t_inc; ff (t_inc /. t_conv) ^ "x" ];
    ]

(* ------------------------------------------------------------------ *)
(* E7 — §6.3: graph partitioning                                       *)
(* ------------------------------------------------------------------ *)

let e7 () =
  let k = 64 and size = 255 in
  let run ~partitioning =
    let eng = Engine.create ~partitioning () in
    let forests = Array.init k (fun _ -> Itree.create eng) in
    (* NOTE: one forest shares one height Func; for separate partitions
       each tree gets its own forest context *)
    let trees =
      Array.map (fun forest -> Itree.perfect forest 0 (size - 1)) forests
    in
    Array.iteri (fun i tree -> ignore (Itree.height forests.(i) tree)) trees;
    Engine.reset_stats eng;
    (* dirty every tree except #0 *)
    for i = 1 to k - 1 do
      let interior = Itree.nodes trees.(i) in
      let nd = List.nth interior (List.length interior / 2) in
      Var.set nd.Itree.left (Itree.node forests.(i) (-1))
    done;
    (* ask only tree #0 *)
    let (), t = time_of (fun () -> ignore (Itree.height forests.(0) trees.(0))) in
    (settle_steps eng, executions eng, t)
  in
  let s_on, e_on, t_on = run ~partitioning:true in
  let s_off, e_off, t_off = run ~partitioning:false in
  print_table ~title:"E7  dependency graph partitioning (§6.3)"
    ~claim:
      "with partitioning, a query touches only its own partition's \
       inconsistent set; unrelated changes stay batched (zero settle work); \
       union-find adds only ~alpha(M)"
    [ "config"; "settle-steps"; "re-executions"; "query-time" ]
    [
      [ "partitioned (64 independent trees)"; fi s_on; fi e_on; fms t_on ];
      [ "single global inconsistent set"; fi s_off; fi e_off; fms t_off ];
    ]

(* ------------------------------------------------------------------ *)
(* E8 — §6.4: the UNCHECKED pragma                                     *)
(* ------------------------------------------------------------------ *)

let e8 () =
  let n = 1024 in
  let run ~unchecked =
    let eng = Engine.create () in
    let path = Array.init n (fun i -> Var.create eng i) in
    let target = Var.create eng 0 in
    let lookup =
      Func.create eng ~name:"lookup" (fun _ () ->
          let walk () = Array.iter (fun v -> ignore (Var.get v)) path in
          if unchecked then Engine.unchecked eng walk else walk ();
          Var.get target)
    in
    ignore (Func.call lookup ());
    let deps =
      match Func.node lookup () with
      | Some node -> Engine.pred_count node
      | None -> -1
    in
    Engine.reset_stats eng;
    (* 50 writes along the path, querying after each *)
    for i = 1 to 50 do
      Var.set path.(i * 13 mod n) (i * 1000);
      ignore (Func.call lookup ())
    done;
    let spurious = executions eng in
    (* a real change must still invalidate *)
    Var.set target 7;
    let v = Func.call lookup () in
    assert (v = 7);
    (deps, spurious)
  in
  let d_chk, s_chk = run ~unchecked:false in
  let d_unc, s_unc = run ~unchecked:true in
  print_table ~title:"E8  UNCHECKED dependency pruning (§6.4)"
    ~claim:
      "the pragma cuts a lookup's recorded dependencies from O(path) to \
       O(1) and eliminates the spurious re-executions caused by path \
       perturbations"
    [ "config"; "deps recorded"; "re-execs after 50 path writes" ]
    [
      [ "checked (default)"; fi d_chk; fi s_chk ];
      [ "(*UNCHECKED*) walk"; fi d_unc; fi s_unc ];
    ]

(* ------------------------------------------------------------------ *)
(* E9 — §3.3/§4.5: DEMAND vs EAGER                                     *)
(* ------------------------------------------------------------------ *)

let e9 () =
  let depth = 64 in
  let build strategy =
    let eng = Engine.create ~default_strategy:strategy () in
    let a = Var.create eng 1024 in
    (* a chain of halvers: small changes are absorbed early *)
    let rec chain i prev =
      if i = depth then prev
      else
        let f =
          Func.create eng ~name:(Fmt.str "lvl%d" i) (fun _ () ->
              Func.call prev () / 2)
        in
        chain (i + 1) f
    in
    let base = Func.create eng (fun _ () -> Var.get a) in
    let top = chain 0 base in
    ignore (Func.call top ());
    Engine.reset_stats eng;
    (eng, a, top)
  in
  let scenario name f =
    let eng_d, a_d, top_d = build Engine.Demand in
    let eng_e, a_e, top_e = build Engine.Eager in
    f a_d top_d;
    f a_e top_e;
    [ name; fi (executions eng_d); fi (executions eng_e) ]
  in
  let absorbed_change a top =
    Var.set a 1025 (* 1025/2 = 1024/2: absorbed at level 1 *);
    ignore (Func.call top ())
  in
  let batch_then_query a top =
    for i = 1 to 100 do
      Var.set a (2048 + i)
    done;
    ignore (Func.call top ())
  in
  let interleaved a top =
    for i = 1 to 100 do
      Var.set a (4096 + (i * 2));
      ignore (Func.call top ())
    done
  in
  print_table ~title:"E9  DEMAND vs EAGER evaluation (§3.3, §4.5)"
    ~claim:
      "eager propagation cuts off at unchanged values (quiescence); demand \
       dirties transitively but defers and batches work until a call"
    [ "scenario (64-deep chain)"; "demand execs"; "eager execs" ]
    [
      scenario "one absorbed change + query" absorbed_change;
      scenario "100 changes, then 1 query" batch_then_query;
      scenario "100 x (change; query)" interleaved;
    ]

(* ------------------------------------------------------------------ *)
(* E10 — §6.1: the cost of runtime checks                              *)
(* ------------------------------------------------------------------ *)

let e10 () =
  (* measured precisely by the Bechamel suite; here, the count view *)
  let eng = Engine.create () in
  let v = Var.create eng 0 in
  let probe = Func.create eng (fun _ () -> Var.get v) in
  ignore (Func.call probe ());
  Engine.reset_stats eng;
  let edges_before = (Engine.graph_stats eng).Depgraph.Graph.total_edges in
  for _ = 1 to 1000 do
    ignore (Var.get v)
  done;
  let g = Engine.graph_stats eng in
  print_table ~title:"E10  limiting runtime checks (§6.1)"
    ~claim:
      "mutator reads of tracked storage do no graph work at all (no edges, \
       no queue traffic); see the micro suite for ns/op"
    [ "metric"; "value" ]
    [
      [ "mutator reads performed"; "1000" ];
      [ "edges created by them";
        fi (g.Depgraph.Graph.total_edges - edges_before) ];
      [ "queue pushes"; fi (Engine.stats eng).Engine.queue_pushes ];
    ]

(* ------------------------------------------------------------------ *)
(* E11 — §3.3: cache size and replacement pragma arguments             *)
(* ------------------------------------------------------------------ *)

let e11 () =
  let calls = 50_000 in
  let universe = 1000 in
  let rand = Random.State.make [| 2024 |] in
  let keys =
    Array.init calls (fun _ ->
        (* quadratic skew: low keys dominate *)
        let r = Random.State.float rand 1.0 in
        int_of_float (r *. r *. float_of_int universe))
  in
  let rows =
    List.map
      (fun (name, policy) ->
        let eng = Engine.create () in
        let f = Func.create eng ~policy (fun _ k -> k * k) in
        Array.iter (fun k -> ignore (Func.call f k)) keys;
        let s = Engine.stats eng in
        [
          name;
          fi s.Engine.executions;
          fi s.Engine.cache_hits;
          ff
            (100.
            *. float_of_int s.Engine.cache_hits
            /. float_of_int calls)
          ^ "%";
          fi (Func.size f);
          fi s.Engine.evictions;
        ])
      [
        ("unbounded", Policy.Unbounded);
        ("lru 64", Policy.Lru 64);
        ("lru 256", Policy.Lru 256);
        ("fifo 64", Policy.Fifo 64);
        ("fifo 256", Policy.Fifo 256);
      ]
  in
  print_table ~title:"E11  cache replacement pragma arguments (§3.3)"
    ~claim:
      "bounded tables trade recomputation for space; LRU dominates FIFO \
       under skewed access; hit rates rise with capacity"
    [ "policy"; "executions"; "hits"; "hit rate"; "table size"; "evictions" ]
    rows

(* ------------------------------------------------------------------ *)
(* E12 — Theorem 5.1 + §8: the transformation end to end               *)
(* ------------------------------------------------------------------ *)

let e12 () =
  let rows =
    List.map
      (fun (name, src) ->
        let env =
          match Lang.Parser.parse src with
          | Ok m -> (
            match Lang.Typecheck.check m with
            | Ok env -> env
            | Error _ -> assert false)
          | Error e -> failwith e
        in
        let conv = Lang.Interp.run ~fuel:200_000_000 env in
        let inc = Transform.Incr_interp.run ~fuel:200_000_000 env in
        let same = conv.Lang.Interp.output = inc.Transform.Incr_interp.output in
        [
          name;
          fi conv.Lang.Interp.steps;
          fi inc.Transform.Incr_interp.steps;
          ff
            (float_of_int conv.Lang.Interp.steps
            /. float_of_int (max 1 inc.Transform.Incr_interp.steps))
          ^ "x";
          fi inc.Transform.Incr_interp.engine_stats.Engine.executions;
          (if same then "HOLDS" else "VIOLATED");
        ])
      Lang.Samples.all
  in
  print_table ~title:"E12  the transformation end to end (Theorem 5.1, §8)"
    ~claim:
      "Alphonse execution produces the same output as conventional \
       execution while doing asymptotically less work"
    [ "program"; "conv steps"; "alphonse steps"; "speedup"; "execs"; "thm 5.1" ]
    rows

(* ------------------------------------------------------------------ *)
(* E13 — §6.2: static subgraph construction                            *)
(* ------------------------------------------------------------------ *)

let e13 () =
  let funcs = 500 and rounds = 40 in
  let run ~static_deps =
    let eng = Engine.create ~default_strategy:Engine.Eager () in
    let a = Var.create eng 0 in
    let fs =
      Array.init funcs (fun i ->
          Func.create eng ~static_deps (fun _ () -> Var.get a + i))
    in
    Array.iter (fun f -> ignore (Func.call f ())) fs;
    Engine.reset_stats eng;
    let (), t =
      time_of (fun () ->
          for r = 1 to rounds do
            Var.set a (r * 1000);
            Engine.stabilize eng
          done)
    in
    let g = Engine.graph_stats eng in
    (executions eng, g.Depgraph.Graph.removed_edges,
     g.Depgraph.Graph.total_edges, t)
  in
  let e_dyn, rm_dyn, tot_dyn, t_dyn = run ~static_deps:false in
  let e_st, rm_st, tot_st, t_st = run ~static_deps:true in
  print_table ~title:"E13  static subgraph construction (§6.2)"
    ~claim:
      "instances with static referenced-argument sets keep their first        execution's edges: re-executions do no RemovePredEdges / re-record        work, cutting the graph-manipulation overhead the paper attributes        to production-based systems"
    [ "config"; "re-executions"; "edges removed"; "edges ever"; "time" ]
    [
      [ "dynamic R(p) (default)"; fi e_dyn; fi rm_dyn; fi tot_dyn; fms t_dyn ];
      [ "static R(p) (§6.2)"; fi e_st; fi rm_st; fi tot_st; fms t_st ];
    ]

(* ------------------------------------------------------------------ *)
(* E14 — §4.5/§2: evaluation order scheduling                          *)
(* ------------------------------------------------------------------ *)

(* Stacked diamonds with inverted creation order: layer consumers are
   created (and prioritized) before the chains they later depend on.
   Eager propagation under creation-order priorities processes each
   consumer before its chain and re-executes it; Pearce–Kelly fixups
   restore topological order so every instance runs once per change. *)
let e14 () =
  let layers = 128 and rounds = 40 in
  let run scheduling =
    let eng =
      Engine.create ~default_strategy:Engine.Eager ~scheduling ()
    in
    let base = Var.create eng 1 in
    let modes = Array.init layers (fun _ -> Var.create eng false) in
    let sides = Array.make layers None in
    (* a cascade of consumers, created first (earliest priorities); each
       reads its predecessor plus a side input that does not exist yet *)
    let consumers = Array.make layers None in
    for i = 0 to layers - 1 do
      let f =
        Func.create eng ~name:(Fmt.str "f%d" i) (fun _ () ->
            let prev =
              if i = 0 then Var.get base
              else Func.call (Option.get consumers.(i - 1)) ()
            in
            let side =
              if Var.get modes.(i) then
                match sides.(i) with Some c -> Func.call c () | None -> 0
              else 0
            in
            prev + side)
      in
      consumers.(i) <- Some f
    done;
    Array.iter (fun f -> ignore (Func.call (Option.get f) ())) consumers;
    (* side inputs second: later priorities than every consumer. Two
       levels, so that when a change marks the bottom, the top a consumer
       reads is not yet queued — a stale read under non-topological
       drain order. *)
    for i = 0 to layers - 1 do
      let bottom = Func.create eng (fun _ () -> Var.get base * 10) in
      let top = Func.create eng (fun _ () -> Func.call bottom () + 1) in
      sides.(i) <- Some top;
      ignore (Func.call top ())
    done;
    Array.iter (fun m -> Var.set m true) modes;
    let top = Option.get consumers.(layers - 1) in
    ignore (Func.call top ());
    let fixups_setup = (Engine.stats eng).Engine.order_fixups in
    Engine.reset_stats eng;
    let (), t =
      time_of (fun () ->
          for r = 1 to rounds do
            Var.set base r;
            Engine.stabilize eng
          done)
    in
    ( executions eng,
      fixups_setup + (Engine.stats eng).Engine.order_fixups,
      t )
  in
  let e_c, _, t_c = run Engine.Creation_order in
  let e_t, fx, t_t = run Engine.Topological in
  let e_f, _, t_f = run Engine.Fifo in
  print_table ~title:"E14  inconsistent-set scheduling (§2, §4.5)"
    ~claim:
      "\"the amount of computation is minimized when done in a topological        order\"; Pearce-Kelly order maintenance eliminates the duplicate        re-executions that creation-order and FIFO scheduling incur on        diamonds"
    [ "scheduling"; "re-executions"; "order fixups"; "time" ]
    [
      [ "creation order (default)"; fi e_c; "-"; fms t_c ];
      [ "topological (Pearce-Kelly)"; fi e_t; fi fx; fms t_t ];
      [ "fifo"; fi e_f; "-"; fms t_f ];
    ]

(* ------------------------------------------------------------------ *)
(* E15 — §10: parallel-execution potential                             *)
(* ------------------------------------------------------------------ *)

(* "the dynamic dependence information gathered by Alphonse can also be
   used for additional advantage, such as … scheduling parallel
   execution": measure the level structure of real dependency graphs —
   total instances / critical path = the re-establishment speedup an
   ideal parallel evaluator could reach. *)
let e15 () =
  let profile_of build =
    let eng = Engine.create () in
    build eng;
    Alphonse.Inspect.parallel_profile eng
  in
  let height_tree eng =
    let forest = Itree.create eng in
    ignore (Itree.height forest (Itree.perfect forest 0 1022))
  in
  let avl_tree eng =
    let t = Avl.create eng in
    for k = 1 to 512 do
      Avl.insert t k;
      Avl.rebalance t
    done
  in
  let sheet _eng =
    () (* the sheet owns its engine; profiled separately below *)
  in
  ignore sheet;
  let sheet_profile =
    let s = Sheet.create () in
    for r = 0 to 255 do
      Sheet.set_raw s (0, r) (string_of_int r)
    done;
    for c = 1 to 3 do
      for r = 0 to 255 do
        Sheet.set_raw s (c, r)
          (Printf.sprintf "=%s+1" (Spreadsheet.Formula.name_of_cell (c - 1, r)))
      done
    done;
    Sheet.set_raw s (4, 0) "=SUM(D1:D256)";
    ignore (Sheet.recalc_all s);
    Alphonse.Inspect.parallel_profile (Sheet.engine s)
  in
  let row name (p : Alphonse.Inspect.parallel_profile) =
    [
      name;
      fi p.Alphonse.Inspect.total_instances;
      fi p.Alphonse.Inspect.critical_path;
      fi p.Alphonse.Inspect.max_width;
      ff p.Alphonse.Inspect.speedup_bound ^ "x";
    ]
  in
  print_table ~title:"E15  parallel-execution potential (§10)"
    ~claim:
      "the dependency graph's level structure bounds the speedup of a        parallel evaluator: wide shallow graphs (trees, sheets)        parallelize well; deep chains do not"
    [ "workload"; "instances"; "critical path"; "max width"; "bound" ]
    [
      row "height over a 1023-node perfect tree" (profile_of height_tree);
      row "AVL after 512 insert+rebalance" (profile_of avl_tree);
      row "256x4 spreadsheet + SUM" sheet_profile;
    ]

(* ------------------------------------------------------------------ *)
(* E16 — failure model: recovery overhead                              *)
(* ------------------------------------------------------------------ *)

(* The fault-tolerance machinery must be pay-as-you-go: poking an inert
   hook on the normal path should cost next to nothing, and a run that
   absorbs injected crashes (quarantine, retry, re-settle) should still
   converge to the fault-free answer at a bounded cost multiple. *)
let e16 () =
  let funcs = 200 and rounds = 50 in
  let build () =
    (* max_retries high enough that the seeded injector never poisons:
       poisoning would need a manual clear_poison per node, which is the
       UI's job (see Sheet.clear_fault), not the benchmark's *)
    let eng =
      Engine.create ~default_strategy:Engine.Eager ~max_retries:1_000 ()
    in
    let a = Var.create eng 0 in
    let prev = ref (Func.create eng (fun _ () -> Var.get a)) in
    for i = 1 to funcs - 1 do
      let p = !prev in
      prev := Func.create eng (fun _ () -> Func.call p () + i)
    done;
    ignore (Func.call !prev ());
    (eng, a, !prev)
  in
  let drive (eng, a, top) =
    Engine.reset_stats eng;
    let (), t =
      time_of (fun () ->
          for r = 1 to rounds do
            Var.set a r;
            (try Engine.stabilize eng
             with Alphonse.Faults.Injected _ -> ());
            (try ignore (Func.call top ())
             with Alphonse.Faults.Injected _ -> ())
          done)
    in
    (* drain: clear the injector, requeue anything still quarantined,
       and read the final answer *)
    Alphonse.Faults.clear eng;
    Engine.stabilize eng;
    let final = Func.call top () in
    (t, Engine.stats eng, final)
  in
  let clean = build () in
  let t_clean, s_clean, v_clean = drive clean in
  let inert = build () in
  let eng_i, _, _ = inert in
  Engine.set_fault_hook eng_i (Some (fun _ -> ()));
  let t_inert, s_inert, v_inert = drive inert in
  let faulted = build () in
  let eng_f, _, _ = faulted in
  let fired = Alphonse.Faults.install_seeded eng_f ~seed:42 ~rate:0.0005 () in
  let t_fault, s_fault, v_fault = drive faulted in
  let row name (t, (s : Engine.stats), v) faults =
    [
      name;
      fi s.Engine.executions;
      faults;
      fi s.Engine.failures;
      fi s.Engine.retries;
      fms t;
      (if v = v_clean then "HOLDS" else "VIOLATED");
    ]
  in
  print_table ~title:"E16  recovery overhead (failure model)"
    ~claim:
      "fault tolerance is pay-as-you-go: an inert hook adds ~nothing to        the settle path, and runs that absorb injected crashes still        converge to the fault-free answer after quarantine and retry"
    [ "config"; "executions"; "faults"; "failures"; "retries"; "time";
      "converges" ]
    [
      row "no hook (baseline)" (t_clean, s_clean, v_clean) "-";
      row "inert hook installed" (t_inert, s_inert, v_inert) "-";
      row "seeded crashes (rate 0.05%)" (t_fault, s_fault, v_fault)
        (fi !fired);
    ]

(* ------------------------------------------------------------------ *)
(* E17 — §6.1 sharpened: effect analysis vs pure reachability          *)
(* ------------------------------------------------------------------ *)

let e17 () =
  (* analyze mutates the AST site notes, so each variant gets a fresh
     parse of the sample *)
  let fresh src =
    match Lang.Parser.parse src with
    | Ok m -> (
      match Lang.Typecheck.check m with
      | Ok env -> env
      | Error _ -> assert false)
    | Error e -> failwith e
  in
  let sites (s : Transform.Analysis.site_stats) =
    s.Transform.Analysis.tracked_reads + s.Transform.Analysis.tracked_writes
    + s.Transform.Analysis.tracked_calls
  in
  let storage (r : Transform.Analysis.result) =
    Hashtbl.length r.Transform.Analysis.tracked_globals
    + Hashtbl.length r.Transform.Analysis.tracked_fields
    + if r.Transform.Analysis.arrays_tracked then 1 else 0
  in
  let rows =
    List.map
      (fun (name, src) ->
        let base = Transform.Analysis.analyze ~sharpen:false (fresh src) in
        let env = fresh src in
        let sharp = Transform.Analysis.analyze env in
        let conv = Lang.Interp.run ~fuel:200_000_000 (fresh src) in
        let inc = Transform.Incr_interp.run ~fuel:200_000_000 env in
        let same = conv.Lang.Interp.output = inc.Transform.Incr_interp.output in
        [
          name;
          fi (storage base);
          fi (storage sharp);
          fi (sites base.Transform.Analysis.stats);
          fi (sites sharp.Transform.Analysis.stats);
          fi
            (sites base.Transform.Analysis.stats
            - sites sharp.Transform.Analysis.stats);
          (if same then "HOLDS" else "VIOLATED");
        ])
      Lang.Samples.all
  in
  print_table
    ~title:"E17  effect-sharpened instrumentation (§6.1 + lib/analyze)"
    ~claim:
      "the interprocedural effect analysis drops tracked storage no \
       incremental instance can observe (never read by incremental code, \
       or never written at all); instrumented sites shrink on some \
       programs while Theorem 5.1 still holds on all of them"
    [ "program"; "storage"; "sharpened"; "sites"; "sharpened"; "dropped";
      "thm 5.1" ]
    rows

(* ------------------------------------------------------------------ *)
(* E18 — durability: WAL and snapshot overhead                         *)
(* ------------------------------------------------------------------ *)

module Durable = Alphonse.Durable
module Wal = Alphonse.Wal

(* The durable engine must also be pay-as-you-go: journaling every edit
   is a bounded tax on the settle loop whose size is set by the fsync
   policy (flush-only vs fsync-per-commit vs fsync-per-append), a
   snapshot costs one linear serialization, and cold recovery restores
   the exact pre-crash answers. *)
let e18 () =
  let edits = 100 in
  let rec rm_rf path =
    match Sys.is_directory path with
    | true ->
      Array.iter (fun f -> rm_rf (Filename.concat path f)) (Sys.readdir path);
      Sys.rmdir path
    | false -> Sys.remove path
    | exception Sys_error _ -> ()
  in
  let fresh_dir =
    let n = ref 0 in
    fun () ->
      incr n;
      let d =
        Filename.concat
          (Filename.get_temp_dir_name ())
          (Fmt.str "alphonse-e18-%d-%d" (Unix.getpid ()) !n)
      in
      rm_rf d;
      d
  in
  (* a column of chained formulas: each edit of A1 re-settles the chain *)
  let build () =
    let s = Sheet.create () in
    Sheet.set s "A1" "0";
    for r = 2 to 20 do
      Sheet.set s (Fmt.str "A%d" r) (Fmt.str "=A%d+%d" (r - 1) r)
    done;
    ignore (Sheet.value_at s "A20");
    s
  in
  let drive s =
    snd
      (time_of (fun () ->
           for r = 1 to edits do
             Sheet.set s "A1" (string_of_int r);
             ignore (Sheet.value_at s "A20")
           done))
  in
  (* throwaway pass so the first timed config doesn't pay the global
     warm-up (allocator growth, page faults) *)
  ignore (drive (build ()));
  let t_mem = drive (build ()) in
  let durable_run policy =
    let s = build () in
    let dir = fresh_dir () in
    let d = Durable.attach ~policy ~dir (Sheet.engine s) (Sheet.persist s) in
    Sheet.set_journal s (Some (Durable.journal_op d));
    let t = drive s in
    (t, s, d, dir)
  in
  let t_never, _, d_never, dir_never = durable_run Wal.Never in
  Durable.detach d_never;
  let t_always, _, d_always, dir_always = durable_run Wal.Always in
  Durable.detach d_always;
  let t_commit, s_commit, d_commit, dir_commit = durable_run Wal.Commit in
  (* snapshot write + cold recovery on the commit-policy state *)
  let snap, t_snap = time_of (fun () -> Durable.checkpoint d_commit) in
  let snap_bytes = (Unix.stat snap).Unix.st_size in
  Durable.detach d_commit;
  let s2 = Sheet.create () in
  let _o, t_rec =
    time_of (fun () ->
        Durable.recover ~dir:dir_commit (Sheet.engine s2) (Sheet.persist s2))
  in
  let agree = Sheet.render s2 = Sheet.render s_commit in
  List.iter rm_rf [ dir_never; dir_always; dir_commit ];
  let per t = Fmt.str "%.1fus" (t /. float_of_int edits *. 1e6) in
  let ratio t = Fmt.str "%.2fx" (t /. t_mem) in
  print_table ~title:"E18  durability overhead (WAL + snapshots)"
    ~claim:
      "write-ahead journaling is a bounded, policy-priced tax on the edit \
       loop (flush-only < fsync-per-commit < fsync-per-append), a \
       snapshot is one linear serialization, and cold recovery restores \
       the exact pre-crash state"
    [ "config"; "time"; "per-edit"; "vs in-memory"; "state" ]
    [
      [ "in-memory settle"; fms t_mem; per t_mem; "1.00x"; "-" ];
      [ "wal policy=never"; fms t_never; per t_never; ratio t_never; "-" ];
      [ "wal policy=commit"; fms t_commit; per t_commit; ratio t_commit; "-" ];
      [ "wal policy=always"; fms t_always; per t_always; ratio t_always; "-" ];
      [ Fmt.str "snapshot write (%dB)" snap_bytes; fms t_snap; "-"; "-"; "-" ];
      [
        "recover (restore+replay)"; fms t_rec; "-"; "-";
        (if agree then "HOLDS" else "VIOLATED");
      ];
    ]

(* ------------------------------------------------------------------ *)
(* E19 — parallel settle vs serial (level-synchronized domains)        *)
(* ------------------------------------------------------------------ *)

(* E15 measured the speedup *bound* the dependency graph's level
   structure permits; E19 measures what the level-synchronized parallel
   evaluator actually delivers on the same workload shapes. Bodies carry
   ~100us of off-CPU latency (modeling I/O-bound recomputation — fetches,
   file stats, RPCs), the regime where domain-level parallelism pays
   independently of the host's core count: the sleeps overlap, so
   wall-clock speedup tracks min(bound, domains) instead of the core
   budget. CPU-bound bodies additionally need that many cores. The deep
   chain (bound 1.00x) is the contrast row: every level has width 1, so
   the pool can only add overhead. Each cell also replays the serial
   evaluator's observations — "thm" is Theorem 5.1 checked at that
   domain count. *)
(* The three E15/E19 workload shapes, parameterized over the per-body
   [pause] so E19 (latency-bound bodies, 100us sleeps) and E20 (raw
   engine overhead, no-op bodies) measure the same graphs. Each builder
   returns [(edit, read)]: [edit r] rewrites the inputs for round [r],
   [read ()] forces the root and renders the observation. *)
let settle_shapes ~pause =
  (* 511 instances over 9 levels (widths 256..1): the E15 tree shape *)
  let tree eng =
    let leaves = Array.init 256 (fun i -> Var.create eng i) in
    let layer =
      Array.map
        (fun v ->
          Func.create eng (fun _ () ->
              pause ();
              Var.get v))
        leaves
    in
    let rec up arr =
      if Array.length arr = 1 then arr.(0)
      else
        up
          (Array.init
             (Array.length arr / 2)
             (fun i ->
               let l = arr.(2 * i) and r = arr.((2 * i) + 1) in
               Func.create eng (fun _ () ->
                   pause ();
                   Func.call l () + Func.call r ())))
    in
    let root = up layer in
    let edit r = Array.iteri (fun i v -> Var.set v (i + r)) leaves in
    let read () = string_of_int (Func.call root ()) in
    (edit, read)
  in
  (* 128x4 grid of chained columns plus a SUM: the E15 sheet shape *)
  let grid eng =
    let rows = 128 and cols = 4 in
    let inputs = Array.init rows (fun i -> Var.create eng i) in
    let layer =
      ref
        (Array.map
           (fun v ->
             Func.create eng (fun _ () ->
                 pause ();
                 Var.get v))
           inputs)
    in
    for _c = 2 to cols do
      let prev = !layer in
      layer :=
        Array.map
          (fun f ->
            Func.create eng (fun _ () ->
                pause ();
                Func.call f () + 1))
          prev
    done;
    let last = !layer in
    let sum =
      Func.create eng (fun _ () ->
          pause ();
          Array.fold_left (fun acc f -> acc + Func.call f ()) 0 last)
    in
    let edit r = Array.iteri (fun i v -> Var.set v ((i * 7) + r)) inputs in
    let read () = string_of_int (Func.call sum ()) in
    (edit, read)
  in
  (* 64-deep chain: every level has width 1 — the E15 bound is 1.00x *)
  let chain eng =
    let a = Var.create eng 0 in
    let first =
      Func.create eng (fun _ () ->
          pause ();
          Var.get a)
    in
    let last = ref first in
    for _i = 2 to 64 do
      let prev = !last in
      last :=
        Func.create eng (fun _ () ->
            pause ();
            Func.call prev () + 1)
    done;
    let top = !last in
    let edit r = Var.set a r in
    let read () = string_of_int (Func.call top ()) in
    (edit, read)
  in
  [
    ("height-tree shape (511 over 9 levels)", tree);
    ("sheet shape (128x4 + SUM)", grid);
    ("deep chain (64 levels of width 1)", chain);
  ]

let e19 () =
  let shapes = settle_shapes ~pause:(fun () -> Unix.sleepf 1e-4) in
  let tree = List.assoc "height-tree shape (511 over 9 levels)" shapes in
  let grid = List.assoc "sheet shape (128x4 + SUM)" shapes in
  let chain = List.assoc "deep chain (64 levels of width 1)" shapes in
  let rounds = 2 in
  (* builds, warms up (first full settle is construction, not measured),
     then times [rounds] edit+settle rounds; returns the timed rounds'
     observations (the Theorem 5.1 oracle) and the engine *)
  let measure build scheduling =
    let eng = Engine.create ?scheduling ~default_strategy:Engine.Eager () in
    let edit, read = build eng in
    edit 0;
    Engine.stabilize eng;
    ignore (read ());
    let buf = Buffer.create 64 in
    let (), t =
      time_of (fun () ->
          for r = 1 to rounds do
            edit r;
            Engine.stabilize eng;
            Buffer.add_string buf (read ());
            Buffer.add_char buf ';'
          done)
    in
    (Buffer.contents buf, t, eng)
  in
  let workload name build =
    let oracle, t_serial, eng_serial = measure build None in
    let bound =
      (Alphonse.Inspect.parallel_profile eng_serial)
        .Alphonse.Inspect.speedup_bound
    in
    let serial_row =
      [ name; ff bound ^ "x"; "serial"; fms t_serial; "1.00x"; "-" ]
    in
    serial_row
    :: List.map
         (fun d ->
           let out, t, _eng =
             measure build (Some (Engine.Parallel { domains = d }))
           in
           [
             name;
             ff bound ^ "x";
             fi d;
             fms t;
             ff (t_serial /. t) ^ "x";
             (if out = oracle then "HOLDS" else "VIOLATED");
           ])
         [ 1; 2; 4; 8 ]
  in
  print_table ~title:"E19  parallel settle (level-synchronized domains)"
    ~claim:
      "the parallel evaluator delivers the E15 level-structure speedup on        latency-bound bodies: wide fronts (tree, grid) approach        min(bound, domains), the deep chain gains nothing, and the        observations equal the serial evaluator's at every domain count        (Theorem 5.1)"
    [ "workload"; "E15 bound"; "domains"; "time"; "speedup"; "thm" ]
    (workload "height-tree shape (511 over 9 levels)" tree
    @ workload "sheet shape (128x4 + SUM)" grid
    @ workload "deep chain (64 levels of width 1)" chain)

(* ------------------------------------------------------------------ *)
(* E20 — metrics registry overhead (observability PR)                  *)
(* ------------------------------------------------------------------ *)

(* Every engine hot path now carries a metrics branch ([match t.metrics
   with None -> () | Some m -> ...]). E20 measures what that costs on
   the E19 shapes with no-op bodies — the regime where per-event
   instrumentation cost has nowhere to hide. Three configurations per
   shape and mode:

     base      a fresh engine, registry never attached
     disabled  registry attached, then detached ([set_metrics None])
               before the timed rounds — must price like base, or the
               "disabled instrumentation is one dead branch" claim
               (E6/E17 discipline) is broken; check_bench gates these
               rows at <= 1.05x
     enabled   registry attached for the timed rounds: atomic counter
               bumps plus two histogram observations per settle —
               reported, not gated (it is the price of observability)

   Serial settles run all three shapes; domains=4 runs them through the
   parallel evaluator, where the per-round pool cells ride along. *)
let e20 () =
  let module Metrics = Alphonse.Metrics in
  let shapes = settle_shapes ~pause:(fun () -> ()) in
  let measure build scheduling config rounds =
    let eng = Engine.create ?scheduling ~default_strategy:Engine.Eager () in
    (match config with
    | `Base -> ()
    | `Disabled ->
      Engine.set_metrics eng (Some (Metrics.create ()));
      Engine.set_metrics eng None
    | `Enabled -> Engine.set_metrics eng (Some (Metrics.create ())));
    let edit, read = build eng in
    edit 0;
    Engine.stabilize eng;
    ignore (read ());
    let (), t =
      time_of (fun () ->
          for r = 1 to rounds do
            edit r;
            Engine.stabilize eng;
            ignore (read ())
          done)
    in
    t /. float_of_int rounds
  in
  (* The gated base/disabled comparison is between two identical code
     paths, so any measured difference is noise; the statistic must not
     amplify it. Three defenses: each timed block is calibrated to
     ~0.3s (a 40us round would otherwise drown in timer jitter); the
     configurations are interleaved across 7 repetitions so clock drift
     and GC phase hit all three equally; and the overhead column is the
     {e minimum across repetitions of the within-repetition ratio} — a
     real k% overhead is present in every repetition, so it survives
     the minimum, while one-sided scheduler noise does not. *)
  let best3 build scheduling =
    let t0 =
      measure build scheduling `Base
        (match scheduling with None -> 50 | Some _ -> 10)
    in
    let rounds = max 50 (int_of_float (0.3 /. Float.max t0 1e-7)) in
    let t_base = ref infinity
    and t_dis = ref infinity
    and t_en = ref infinity
    and r_dis = ref infinity
    and r_en = ref infinity in
    for _ = 1 to 7 do
      let b = measure build scheduling `Base rounds in
      let d = measure build scheduling `Disabled rounds in
      let e = measure build scheduling `Enabled rounds in
      t_base := Float.min !t_base b;
      t_dis := Float.min !t_dis d;
      t_en := Float.min !t_en e;
      r_dis := Float.min !r_dis (d /. b);
      r_en := Float.min !r_en (e /. b)
    done;
    ((!t_base, 1.0), (!t_dis, !r_dis), (!t_en, !r_en))
  in
  let rows =
    List.concat_map
      (fun (name, build) ->
        List.concat_map
          (fun (mode, scheduling) ->
            let base, dis, en = best3 build scheduling in
            let row config (t, r) =
              [
                name;
                mode;
                config;
                Printf.sprintf "%.0fus" (t *. 1e6);
                ff r ^ "x";
              ]
            in
            [ row "base" base; row "disabled" dis; row "enabled" en ])
          [
            ("serial", None);
            ("domains=4", Some (Engine.Parallel { domains = 4 }));
          ])
      shapes
  in
  print_table ~title:"E20  metrics registry overhead (per settle round)"
    ~claim:
      "detached metrics cost nothing measurable (disabled rows <= 1.05x \
       base, gated by check_bench); attached metrics cost atomic \
       counter bumps plus two histogram observations per settle"
    [ "workload"; "mode"; "config"; "time"; "overhead" ]
    rows


(* E21: the daemon under multi-tenant load. Phase "1x" drives a closed
   loop within the admission capacity: every request is accepted, and
   the edits/sec + batch latency percentiles are the daemon's sustained
   service rate across 1000 independent tenants. Phase "2x" doubles the
   offered concurrency over a deliberately tiny admission window: the
   daemon must degrade by shedding fast 503s (bounded latency for the
   accepted work) rather than by queueing without bound. In-process
   [Daemon.submit] keeps the socket layer out of the measurement — this
   is the admission + budget + settle path itself. *)
let e21 () =
  let module Daemon = Alphonse.Daemon in
  let module Json = Alphonse.Json in
  let tenants = 1000 in
  let mk_cfg ~tenant_queue ~global_queue ~max_settles =
    {
      (Daemon.default_config ~root:"/nonexistent-e21" ()) with
      Daemon.d_durable = false;
      d_max_tenants = tenants + 8;
      d_tenant_queue = tenant_queue;
      d_global_queue = global_queue;
      d_max_settles = max_settles;
      d_default_deadline = Some 10.0;
    }
  in
  let request ~tenant ops =
    Json.Obj [ ("tenant", Json.Str tenant); ("ops", Json.Arr ops) ]
  in
  let set_op cell v =
    Json.Obj
      [ ("op", Json.Str "set"); ("cell", Json.Str cell); ("v", Json.Str v) ]
  in
  let get_op cell =
    Json.Obj [ ("op", Json.Str "get"); ("cell", Json.Str cell) ]
  in
  let tenant_id i = Printf.sprintf "t%04d" i in
  let status resp =
    match Option.bind (Json.member "status" resp) Json.to_float with
    | Some f -> int_of_float f
    | None -> 0
  in
  (* each tenant holds a 64-cell formula chain; editing A1 and reading
     the tail makes every batch a real propagation (64 settle pops), so
     a batch occupies the settle gate for a measurable slice *)
  let depth = 64 in
  let tail = Printf.sprintf "A%d" depth in
  let seed d =
    let ops =
      set_op "A1" "1"
      :: List.init (depth - 1) (fun j ->
             set_op
               (Printf.sprintf "A%d" (j + 2))
               (Printf.sprintf "=A%d+1" (j + 1)))
      @ [ get_op tail ]
    in
    for i = 0 to tenants - 1 do
      let r = Daemon.submit d (request ~tenant:(tenant_id i) ops) in
      assert (status r = 200)
    done
  in
  (* closed loop: [threads] drivers, each issuing [per_thread] one-edit
     batches round-robin over the tenant space; latencies of accepted
     batches only (a shed answers in microseconds by design) *)
  let run_phase d ~threads ~per_thread =
    let oks = Atomic.make 0 and sheds = Atomic.make 0 in
    let lats = Array.init threads (fun _ -> Array.make per_thread 0.0) in
    let body k () =
      let lat = lats.(k) in
      for r = 0 to per_thread - 1 do
        let i = (k + (r * threads)) mod tenants in
        let v = string_of_int (1 + ((k + r) mod 97)) in
        let t0 = Unix.gettimeofday () in
        let resp =
          Daemon.submit d
            (request ~tenant:(tenant_id i) [ set_op "A1" v; get_op tail ])
        in
        let dt = Unix.gettimeofday () -. t0 in
        match status resp with
        | 200 ->
          Atomic.incr oks;
          lat.(r) <- dt
        | 503 ->
          Atomic.incr sheds;
          lat.(r) <- -1.0
        | _ -> lat.(r) <- -1.0
      done
    in
    let (), wall =
      time_of (fun () ->
          let ths = List.init threads (fun k -> Thread.create (body k) ()) in
          List.iter Thread.join ths)
    in
    let accepted =
      Array.to_list lats
      |> List.concat_map Array.to_list
      |> List.filter (fun x -> x >= 0.0)
      |> List.sort compare |> Array.of_list
    in
    let pct p =
      if Array.length accepted = 0 then 0.0
      else
        accepted.(min
                    (Array.length accepted - 1)
                    (int_of_float (p *. float_of_int (Array.length accepted))))
    in
    (Atomic.get oks, Atomic.get sheds, wall, pct 0.50, pct 0.99)
  in
  let phase ~load ~cfg ~threads ~per_thread =
    let d = Daemon.create cfg (Spreadsheet.Sheet.workload ()) in
    seed d;
    let ok, shed, wall, p50, p99 = run_phase d ~threads ~per_thread in
    Daemon.drain d;
    let total = threads * per_thread in
    [
      load;
      string_of_int tenants;
      string_of_int threads;
      string_of_int ok;
      string_of_int shed;
      Printf.sprintf "%.1f%%" (100.0 *. float_of_int shed /. float_of_int total);
      Printf.sprintf "%.0f" (float_of_int ok /. wall);
      Printf.sprintf "%.2fms" (p50 *. 1e3);
      Printf.sprintf "%.2fms" (p99 *. 1e3);
    ]
  in
  let rows =
    [
      (* within capacity: 8 drivers against an 8-settle gate and roomy
         queues — nothing sheds, this is the sustained service rate *)
      phase ~load:"1x"
        ~cfg:(mk_cfg ~tenant_queue:16 ~global_queue:1024 ~max_settles:8)
        ~threads:8 ~per_thread:500;
      (* 2x overload: sixteen drivers against an admission window of
         six and a single-batch settle gate — the surplus must shed *)
      phase ~load:"2x"
        ~cfg:(mk_cfg ~tenant_queue:16 ~global_queue:6 ~max_settles:1)
        ~threads:16 ~per_thread:250;
    ]
  in
  print_table ~title:"E21  daemon: 1000 tenants, sustained load and overload"
    ~claim:
      "the daemon sustains a thousand independent tenants with \
       millisecond batch latency, and under 2x offered load it sheds \
       the surplus with fast 503s (gated by check_bench: the 2x row \
       must shed > 0 and still accept > 0) instead of stalling"
    [
      "load"; "tenants"; "threads"; "ok"; "shed"; "shed%"; "edits/s"; "p50";
      "p99";
    ]
    rows

(* ------------------------------------------------------------------ *)
(* Bechamel micro suite                                                *)
(* ------------------------------------------------------------------ *)

let micro_tests () =
  let open Bechamel in
  (* E1: re-query after a toggled pointer change, vs exhaustive pass *)
  let eng = Engine.create () in
  let forest = Itree.create eng in
  let tree = Itree.perfect forest 0 4094 in
  ignore (Itree.height forest tree);
  let rec leftmost = function
    | Itree.Nil -> assert false
    | Itree.Node nd -> (
      match Var.get nd.Itree.left with
      | Itree.Nil -> nd
      | sub -> leftmost sub)
  in
  let leaf = leftmost tree in
  let graft = Itree.node forest (-1) in
  let flip = ref false in
  let t_height_inc =
    Test.make ~name:"E1 height: change+query (incremental)"
      (Staged.stage (fun () ->
           flip := not !flip;
           Var.set leaf.Itree.left (if !flip then graft else Itree.Nil);
           Itree.height forest tree))
  in
  let t_height_exh =
    Test.make ~name:"E1 height: exhaustive pass"
      (Staged.stage (fun () -> Itree.height_exhaustive tree))
  in
  (* E3: sheet edit+query vs oracle *)
  let s = Sheet.create () in
  Sheet.set_raw s (0, 0) "1";
  for r = 1 to 511 do
    Sheet.set_raw s (0, r) (Printf.sprintf "=A%d+1" r)
  done;
  ignore (Sheet.value s (0, 511));
  let tick = ref 0 in
  let t_sheet_inc =
    Test.make ~name:"E3 sheet: edit mid-chain + query (incremental)"
      (Staged.stage (fun () ->
           incr tick;
           Sheet.set_raw s (0, 256) (string_of_int (!tick mod 2));
           Sheet.value s (0, 511)))
  in
  let t_sheet_exh =
    Test.make ~name:"E3 sheet: exhaustive query"
      (Staged.stage (fun () -> Sheet.exhaustive_value s (0, 511)))
  in
  (* E4: steady-state insert/delete pair *)
  let eng4 = Engine.create () in
  let avl = Avl.create eng4 in
  for k = 1 to 1024 do
    Avl.insert avl (2 * k)
  done;
  Avl.rebalance avl;
  let k4 = ref 0 in
  let t_avl_alphonse =
    Test.make ~name:"E4 avl: insert+delete (alphonse)"
      (Staged.stage (fun () ->
           incr k4;
           let k = (2 * (!k4 mod 1024)) + 1 in
           Avl.insert avl k;
           Avl.rebalance avl;
           Avl.delete avl k;
           Avl.rebalance avl))
  in
  let base = ref Base.Nil in
  for k = 1 to 1024 do
    base := Base.insert !base (2 * k)
  done;
  let k5 = ref 0 in
  let t_avl_base =
    Test.make ~name:"E4 avl: insert+delete (hand-coded)"
      (Staged.stage (fun () ->
           incr k5;
           let k = (2 * (!k5 mod 1024)) + 1 in
           base := Base.insert !base k;
           base := Base.delete !base k))
  in
  (* E10: read/write cost by tracking status *)
  let eng10 = Engine.create () in
  let r_plain = ref 1 in
  let v_untracked = Var.create eng10 1 in
  let v_tracked = Var.create eng10 1 in
  let probe = Func.create eng10 (fun _ () -> Var.get v_tracked) in
  ignore (Func.call probe ());
  let t_ref =
    Test.make ~name:"E10 read: plain ref"
      (Staged.stage (fun () -> !r_plain + 1))
  in
  let t_untracked =
    Test.make ~name:"E10 read: untracked Var"
      (Staged.stage (fun () -> Var.get v_untracked + 1))
  in
  let t_tracked =
    Test.make ~name:"E10 read: tracked Var (mutator)"
      (Staged.stage (fun () -> Var.get v_tracked + 1))
  in
  let t_write_same =
    Test.make ~name:"E10 write: tracked Var, equal value"
      (Staged.stage (fun () -> Var.set v_tracked 1))
  in
  (* E6: interpreters on the pragma-free program *)
  let env6 =
    match Lang.Parser.parse overhead_program with
    | Ok m -> (
      match Lang.Typecheck.check m with Ok e -> e | Error _ -> assert false)
    | Error e -> failwith e
  in
  let t_interp =
    Test.make ~name:"E6 lang: conventional interpreter"
      (Staged.stage (fun () -> Lang.Interp.run env6))
  in
  let t_incr_interp =
    Test.make ~name:"E6 lang: instrumented interpreter"
      (Staged.stage (fun () -> Transform.Incr_interp.run env6))
  in
  [
    t_height_inc; t_height_exh; t_sheet_inc; t_sheet_exh; t_avl_alphonse;
    t_avl_base; t_ref; t_untracked; t_tracked; t_write_same; t_interp;
    t_incr_interp;
  ]

let run_micro () =
  let open Bechamel in
  let open Toolkit in
  Fmt.pr "@.== Bechamel micro-benchmarks (ns/run, OLS on monotonic clock) \
          ==@.";
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |]
  in
  let instances = Instance.[ monotonic_clock ] in
  let cfg =
    Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.5) ~kde:None ()
  in
  let tests = micro_tests () in
  List.iter
    (fun test ->
      List.iter
        (fun elt ->
          let raw = Benchmark.run cfg instances elt in
          let est = Analyze.one ols Instance.monotonic_clock raw in
          let nanos =
            match Analyze.OLS.estimates est with
            | Some [ t ] -> t
            | _ -> nan
          in
          let r2 =
            match Analyze.OLS.r_square est with Some r -> r | None -> nan
          in
          Fmt.pr "   %-46s %12.1f ns/run   (r²=%.3f)@." (Test.Elt.name elt)
            nanos r2)
        (Test.elements test))
    tests

(* ------------------------------------------------------------------ *)
(* Driver                                                              *)
(* ------------------------------------------------------------------ *)

let experiments =
  [
    ("E1", e1); ("E2", e2); ("E3", e3); ("E4", e4); ("E5", e5); ("E6", e6);
    ("E7", e7); ("E8", e8); ("E9", e9); ("E10", e10); ("E11", e11);
    ("E12", e12); ("E13", e13); ("E14", e14); ("E15", e15); ("E16", e16);
    ("E17", e17); ("E18", e18); ("E19", e19); ("E20", e20); ("E21", e21);
  ]

(* ------------------------------------------------------------------ *)
(* Machine-readable output                                             *)
(* ------------------------------------------------------------------ *)

type experiment_result = {
  er_name : string;
  er_wall_clock : float;
  er_tables : recorded_table list;
}

(* Runs one experiment, capturing its wall clock and the tables it
   printed. *)
let run_experiment (name, f) =
  let before = !recorded_tables in
  let (), wall = time_of f in
  let rec fresh acc l =
    if l == before then acc else
      match l with
      | [] -> acc
      | t :: rest -> fresh (t :: acc) rest
  in
  {
    er_name = name;
    er_wall_clock = wall;
    er_tables = fresh [] !recorded_tables;
  }

let results_file = "BENCH_results.json"

let json_of_table t =
  Json.Obj
    [
      ("title", Json.Str t.rt_title);
      ("claim", Json.Str t.rt_claim);
      ("headers", Json.Arr (List.map (fun h -> Json.Str h) t.rt_headers));
      ( "rows",
        Json.Arr
          (List.map
             (fun row -> Json.Arr (List.map (fun c -> Json.Str c) row))
             t.rt_rows) );
    ]

let write_results results =
  let json =
    Json.Obj
      [
        ("schema", Json.Str "alphonse-bench/1");
        ("generator", Json.Str "bench/main.exe");
        ( "experiments",
          Json.Arr
            (List.map
               (fun r ->
                 Json.Obj
                   [
                     ("name", Json.Str r.er_name);
                     ("wall_clock_s", Json.Num r.er_wall_clock);
                     ("tables", Json.Arr (List.map json_of_table r.er_tables));
                   ])
               results) );
      ]
  in
  Out_channel.with_open_text results_file (fun oc ->
      Out_channel.output_string oc (Json.to_string json);
      Out_channel.output_char oc '\n');
  Fmt.epr "[bench: %d experiment(s) -> %s]@." (List.length results)
    results_file

let () =
  let args = Array.to_list Sys.argv |> List.tl in
  Fmt.pr "Alphonse evaluation harness — paper claims vs measured@.";
  Fmt.pr "(see DESIGN.md for the experiment index, EXPERIMENTS.md for \
          analysis)@.";
  match args with
  | [] ->
    write_results (List.map run_experiment experiments);
    run_micro ()
  | [ "report" ] -> write_results (List.map run_experiment experiments)
  | [ "micro" ] -> run_micro ()
  | names ->
    let results =
      List.filter_map
        (fun name ->
          match List.assoc_opt name experiments with
          | Some f -> Some (run_experiment (name, f))
          | None when name = "micro" ->
            run_micro ();
            None
          | None ->
            Fmt.epr "unknown experiment %s@." name;
            None)
        names
    in
    if results <> [] then write_results results
