(** Knuth's binary-numeral grammar (the original attribute-grammar
    example, [Knu68] in the paper's references) as a second instance of
    the framework: a synthesized [value], a synthesized [length], and an
    inherited [scale].

    {v
    N ::= L           N.value = L.value            L.scale = 0
    N ::= L1 . L2     N.value = L1.value + L2.value
                      L1.scale = 0                 L2.scale = -L2.length
    L ::= B           L.value = B.value            B.scale = L.scale
                      L.length = 1
    L ::= L1 B        L.value = L1.value + B.value
                      B.scale = L.scale            L1.scale = L.scale + 1
                      L.length = L1.length + 1
    B ::= 0           B.value = 0
    B ::= 1           B.value = 2^B.scale
    v}

    Productions: ["num"] with one or two list children; ["cons"]
    (L ::= L1 B) with children [[L1; B]]; ["one_bit"] (L ::= B) with one
    ["bit"] child; ["bit"] with integer terminal ["b"] ∈ {0,1}. *)

module A = Ag

type value =
  | F of float  (** the value and scale attributes *)
  | I of int  (** bit terminals and the length attribute *)

let f_of = function F x -> x | I n -> float_of_int n
let i_of = function I n -> n | F _ -> invalid_arg "Binary: expected int"

type t = {
  grammar : value A.grammar;
  value : value A.attr;
  scale : value A.attr;
  length : value A.attr;
}

let create ?strategy eng =
  let grammar = A.create eng in
  let value_ref = ref None and scale_ref = ref None and length_ref = ref None in
  let eval_value n = A.eval (Option.get !value_ref) n in
  let eval_scale n = A.eval (Option.get !scale_ref) n in
  let eval_length n = A.eval (Option.get !length_ref) n in
  (* synthesized: number of bits in an L list *)
  let length =
    A.attribute ?strategy grammar ~name:"length" (fun n ->
        match A.prod n with
        | "one_bit" -> I 1
        | "cons" -> I (i_of (eval_length (A.child n 0)) + 1)
        | p -> Fmt.invalid_arg "Binary.length: unexpected production %s" p)
  in
  (* inherited: the power of two of this node's least significant bit *)
  let scale =
    A.attribute ?strategy grammar ~name:"scale" (fun n ->
        match A.parent n with
        | None -> F 0.
        | Some p -> (
          match (A.prod p, A.index_in_parent n) with
          | "num", Some 0 -> F 0.
          | "num", Some 1 -> F (-.float_of_int (i_of (eval_length n)))
          | "one_bit", _ -> eval_scale p
          | "cons", Some 0 -> F (f_of (eval_scale p) +. 1.)
          | "cons", Some 1 -> eval_scale p
          | p', _ -> Fmt.invalid_arg "Binary.scale: unexpected parent %s" p'))
  in
  let value =
    A.attribute ?strategy grammar ~name:"value" (fun n ->
        match A.prod n with
        | "num" -> (
          match A.children n with
          | [ l ] -> eval_value l
          | [ l1; l2 ] -> F (f_of (eval_value l1) +. f_of (eval_value l2))
          | _ -> invalid_arg "Binary.value: num arity")
        | "one_bit" -> eval_value (A.child n 0)
        | "cons" ->
          F (f_of (eval_value (A.child n 0)) +. f_of (eval_value (A.child n 1)))
        | "bit" ->
          if i_of (A.terminal n "b") = 0 then F 0.
          else F (2. ** f_of (eval_scale n))
        | p -> Fmt.invalid_arg "Binary.value: unexpected production %s" p)
  in
  value_ref := Some value;
  scale_ref := Some scale;
  length_ref := Some length;
  { grammar; value; scale; length }

(* ------------------------------------------------------------------ *)
(* Constructors                                                        *)
(* ------------------------------------------------------------------ *)

let bit t b =
  if b <> 0 && b <> 1 then invalid_arg "Binary.bit: must be 0 or 1";
  A.node t.grammar ~prod:"bit" ~terminals:[ ("b", I b) ] []

let one_bit t b = A.node t.grammar ~prod:"one_bit" [ b ]
let cons t l b = A.node t.grammar ~prod:"cons" [ l; b ]
let num t ?frac int_part =
  match frac with
  | None -> A.node t.grammar ~prod:"num" [ int_part ]
  | Some f -> A.node t.grammar ~prod:"num" [ int_part; f ]

(** Build a numeral tree from a string like ["1101.01"]. *)
let of_string t s =
  let list_of_bits bits =
    match bits with
    | [] -> invalid_arg "Binary.of_string: empty bit list"
    | b0 :: rest ->
      List.fold_left (fun l b -> cons t l (bit t b)) (one_bit t (bit t b0)) rest
  in
  let bits_of_str part =
    List.init (String.length part) (fun i ->
        match part.[i] with
        | '0' -> 0
        | '1' -> 1
        | c -> Fmt.invalid_arg "Binary.of_string: bad bit %c" c)
  in
  match String.split_on_char '.' s with
  | [ ip ] -> num t (list_of_bits (bits_of_str ip))
  | [ ip; fp ] ->
    num t ~frac:(list_of_bits (bits_of_str fp)) (list_of_bits (bits_of_str ip))
  | _ -> invalid_arg "Binary.of_string: too many dots"

(* ------------------------------------------------------------------ *)
(* Evaluation and edits                                                *)
(* ------------------------------------------------------------------ *)

let value_of t n = f_of (A.eval t.value n)

(** From-scratch reference over the same mutable tree. *)
let exhaustive_value n =
  let rec bits acc l =
    match A.prod l with
    | "one_bit" -> bit_val (A.child l 0) :: acc
    | "cons" -> bits (bit_val (A.child l 1) :: acc) (A.child l 0)
    | p -> Fmt.invalid_arg "Binary.exhaustive: %s" p
  and bit_val b = i_of (A.terminal b "b") in
  let eval_list l scale0 =
    (* bits returned least-significant last *)
    let bs = List.rev (bits [] l) in
    (* bs: least significant first *)
    List.fold_left
      (fun (acc, sc) b -> (acc +. (float_of_int b *. (2. ** sc)), sc +. 1.))
      (0., scale0) bs
    |> fst
  in
  match A.children n with
  | [ l ] -> eval_list l 0.
  | [ l1; l2 ] ->
    let frac_len =
      let rec len l =
        match A.prod l with
        | "one_bit" -> 1
        | "cons" -> 1 + len (A.child l 0)
        | p -> Fmt.invalid_arg "Binary.exhaustive: %s" p
      in
      len l2
    in
    eval_list l1 0. +. eval_list l2 (-.float_of_int frac_len)
  | _ -> invalid_arg "Binary.exhaustive: num arity"

(** Flip one bit leaf. *)
let flip b =
  let v = i_of (A.terminal b "b") in
  A.set_terminal b "b" (I (1 - v))

(** All bit leaves of a numeral, left to right. *)
let bit_leaves n =
  let acc = ref [] in
  A.iter (fun m -> if A.prod m = "bit" then acc := m :: !acc) n;
  List.rev !acc

(** Render a numeral back to its [of_string] form (["1101.01"]). *)
let to_string n =
  let rec bits acc l =
    match A.prod l with
    | "one_bit" -> i_of (A.terminal (A.child l 0) "b") :: acc
    | "cons" -> bits (i_of (A.terminal (A.child l 1) "b") :: acc) (A.child l 0)
    | p -> Fmt.invalid_arg "Binary.to_string: %s" p
  in
  let lstr l =
    bits [] l |> List.map string_of_int |> String.concat ""
  in
  match A.children n with
  | [ l ] -> lstr l
  | [ l1; l2 ] -> lstr l1 ^ "." ^ lstr l2
  | _ -> invalid_arg "Binary.to_string: num arity"

(* ------------------------------------------------------------------ *)
(* Durability                                                          *)
(* ------------------------------------------------------------------ *)

module Json = Alphonse.Json

(* A [doc] pins one numeral as "the document": the root holder durable
   snapshots serialize, plus the write-ahead hook its edits go
   through. *)
type doc = {
  bt : t;
  mutable droot : value A.node option;
  mutable djournal : (Json.t -> unit) option;
}

let doc t = { bt = t; droot = None; djournal = None }
let doc_set_journal d j = d.djournal <- j

let doc_root d =
  match d.droot with
  | Some r -> r
  | None -> invalid_arg "Binary.doc_root: empty document"

let doc_jop d op extra =
  match d.djournal with
  | None -> ()
  | Some j -> j (Json.Obj (("op", Json.Str op) :: extra))

(* non-journaling primitives, shared by the live edits and replay.
   Installing also warms the attributes: evaluation materializes the
   numeral's dependency nodes (Algorithm 3), keeping live runs and
   replays symmetric for [Engine.import] and intent verification. *)
let doc_install d s =
  let root = of_string d.bt s in
  d.droot <- Some root;
  ignore (value_of d.bt root)

let doc_put_bit d i v =
  if v <> 0 && v <> 1 then invalid_arg "Binary.doc_set_bit: bit must be 0 or 1";
  match List.nth_opt (bit_leaves (doc_root d)) i with
  | Some leaf -> A.set_terminal leaf "b" (I v)
  | None -> invalid_arg "Binary.doc_set_bit: bit index out of range"

let doc_init d s =
  doc_jop d "init" [ ("s", Json.Str s) ];
  doc_install d s

let doc_set_bit d i v =
  doc_jop d "bit"
    [ ("i", Json.Num (float_of_int i)); ("v", Json.Num (float_of_int v)) ];
  doc_put_bit d i v

let doc_value d = value_of d.bt (doc_root d)
let doc_exhaustive d = exhaustive_value (doc_root d)
let doc_render d = match d.droot with None -> "" | Some n -> to_string n

let persist_doc d =
  let save () =
    Json.Obj
      [
        ("schema", Json.Str "alphonse-binary/1");
        ( "num",
          match d.droot with
          | None -> Json.Null
          | Some n -> Json.Str (to_string n) );
      ]
  in
  let load j =
    match Json.member "num" j with
    | Some (Json.Str s) -> doc_install d s
    | Some Json.Null | None -> ()
    | Some _ -> invalid_arg "Binary.persist_doc: bad numeral"
  in
  let apply j =
    let num key =
      match Option.bind (Json.member key j) Json.to_float with
      | Some f -> int_of_float f
      | None -> Fmt.invalid_arg "Binary.persist_doc: journal op without %s" key
    in
    match Option.bind (Json.member "op" j) Json.to_str with
    | Some "init" -> (
      match Option.bind (Json.member "s" j) Json.to_str with
      | Some s -> doc_install d s
      | None -> invalid_arg "Binary.persist_doc: init without source")
    | Some "bit" -> doc_put_bit d (num "i") (num "v")
    | _ ->
      Fmt.invalid_arg "Binary.persist_doc: unrecognized journal op %s"
        (Json.to_string j)
  in
  { Alphonse.Durable.p_save = save; p_load = load; p_apply = apply }
