(** Knuth's binary-numeral grammar ([Knu68] in the paper's references) as
    a second framework instance: synthesized [value] and [length],
    inherited [scale]. The classic demonstration that inherited
    attributes flow context {e down} while synthesized attributes flow
    results {e up} — both discovered dynamically here. *)

type value =
  | F of float  (** the value and scale attributes *)
  | I of int  (** bit terminals and the length attribute *)

val f_of : value -> float
val i_of : value -> int

type t
(** The instantiated grammar and its three attributes. *)

val create : ?strategy:Alphonse.Engine.strategy -> Alphonse.Engine.t -> t

(** {1 Constructors} *)

val bit : t -> int -> value Ag.node
(** A bit leaf; the argument must be 0 or 1. *)

val one_bit : t -> value Ag.node -> value Ag.node
(** The list production [L ::= B]. *)

val cons : t -> value Ag.node -> value Ag.node -> value Ag.node
(** The list production [L ::= L1 B]. *)

val num : t -> ?frac:value Ag.node -> value Ag.node -> value Ag.node
(** [num t int_part] or [num t ~frac int_part] — the numeral root. *)

val of_string : t -> string -> value Ag.node
(** Build a numeral from text like ["1101.01"]. *)

(** {1 Evaluation and edits} *)

val value_of : t -> value Ag.node -> float
(** Incremental value of a numeral. *)

val exhaustive_value : value Ag.node -> float
(** From-scratch reference over the same mutable tree. *)

val flip : value Ag.node -> unit
(** Flip one bit leaf. *)

val bit_leaves : value Ag.node -> value Ag.node list
(** All bit leaves, left to right. *)

val to_string : value Ag.node -> string
(** Render a numeral back to its {!of_string} form (["1101.01"]). *)

(** {1 Durability}

    A {!doc} pins one numeral as "the document" so the grammar instance
    has serializable state: the snapshot records the rendered numeral,
    and edits route through a journaling hook. *)

type doc

val doc : t -> doc
(** An empty document over the grammar instance. *)

val doc_set_journal : doc -> (Alphonse.Json.t -> unit) option
  -> unit
(** Installs the write-ahead hook; {!doc_init} and {!doc_set_bit}
    announce themselves to it before mutating. Wire it to
    [Durable.journal_op]. *)

val doc_init : doc -> string -> unit
(** (Re)build the document's numeral from text (journaled as
    [{"op":"init","s":text}]). *)

val doc_root : doc -> value Ag.node
(** @raise Invalid_argument on an empty document. *)

val doc_set_bit : doc -> int -> int -> unit
(** [doc_set_bit d i v] sets the [i]-th bit leaf (left to right, 0-based,
    fraction bits included) to [v] ∈ {0,1} — journaled as
    [{"op":"bit","i":i,"v":v}]. *)

val doc_value : doc -> float
(** Incremental value of the document's numeral. *)

val doc_exhaustive : doc -> float
(** From-scratch oracle over the same tree. *)

val doc_render : doc -> string
(** {!to_string} of the root, [""] when empty. *)

val persist_doc : doc -> Alphonse.Durable.persistable
(** Durability hooks: save records the rendered numeral, load rebuilds
    it, apply replays one journaled [init]/[bit] op. Load and apply
    never journal. *)
