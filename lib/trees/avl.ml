(** Self-balancing AVL search trees as an Alphonse program — §7.3,
    Algorithm 11.

    Insertion and deletion are the {e plain unbalanced} BST algorithms;
    balancing is a maintained method: [balance t] returns the AVL-balanced
    subtree equivalent to [t], performing the rotations as tracked writes.
    Because rotations move subtrees whose heights the method itself reads,
    a rotation re-dirties the affected [balance] and [height] instances and
    propagation re-runs them until the structure is quiescent — the paper's
    off-line {e and} on-line fixpoint. The mutator calls {!rebalance}
    before searching to get the O(log n) guarantee; arbitrary batches of
    insertions and deletions may happen between rebalances. *)

module Engine = Alphonse.Engine
module Var = Alphonse.Var
module Func = Alphonse.Func
open Itree

type avl = {
  forest : Itree.t;
  root : tree Var.t;
  balance_fn : (tree, tree) Func.t;
  mutable journal : (Alphonse.Json.t -> unit) option;
      (* durability hook: every mutator entry point ([insert], [delete],
         [rebalance]) is journaled here before it runs — see {!persist} *)
}

(* The two rotations of Algorithm 11, performed as tracked writes. Each
   returns the new subtree root. *)
let rotate_right = function
  | Nil -> invalid_arg "Avl.rotate_right"
  | Node t -> (
    match Var.get t.left with
    | Nil -> invalid_arg "Avl.rotate_right: no left child"
    | Node s ->
      let b = Var.get s.right in
      Var.set s.right (Node t);
      Var.set t.left b;
      Node s)

let rotate_left = function
  | Nil -> invalid_arg "Avl.rotate_left"
  | Node t -> (
    match Var.get t.right with
    | Nil -> invalid_arg "Avl.rotate_left: no right child"
    | Node s ->
      let b = Var.get s.left in
      Var.set s.left (Node t);
      Var.set t.right b;
      Node s)

(* [strategy] applies to the height method only. The balance method is
   pinned to Demand: eagerly re-executing a procedure whose side effects
   restructure the very data it navigates violates the paper's OBS
   restriction (§3.5) — a spurious execution between a rotation and the
   parent's pointer re-establishment observes the orphaned intermediate
   state and can commit it. Under demand evaluation every balance call is
   made by its parent (or the mutator at the root), which stores the
   returned subtree immediately, so no intermediate state escapes. *)
let create ?strategy eng =
  let forest = Itree.create ?strategy eng in
  let height sub = Func.call (Itree.height_func forest) sub in
  let diff = function
    | Nil -> 0
    | Node n -> height (Var.get n.left) - height (Var.get n.right)
  in
  (* Rotation cascade at one node whose children are already AVL. The
     paper's Algorithm 11 writes this as [RotateRight(t).balance()], a
     re-entrant call to the still-executing balance(t) instance that its
     Algorithm 5 answers with the stale cached value; our engine treats
     re-entrance as a cycle error (it is one on first execution, when no
     cached value exists), so the cascade is local recursion instead. The
     dependency tracking is identical: rotations are tracked writes and
     heights are incremental calls. Terminates because the demoted child
     is strictly shorter than the input subtree. *)
  let rec fix sub =
    match sub with
    | Nil -> Nil
    | Node m ->
      let d = diff sub in
      if d > 1 then begin
        (* left-heavy; in the LR case rotate the left child first *)
        (if diff (Var.get m.left) < 0 then
           Var.set m.left (rotate_left (Var.get m.left)));
        match rotate_right sub with
        | Node s ->
          Var.set s.right (fix (Var.get s.right));
          fix (Node s)
        | Nil -> assert false
      end
      else if d < -1 then begin
        (if diff (Var.get m.right) > 0 then
           Var.set m.right (rotate_right (Var.get m.right)));
        match rotate_left sub with
        | Node s ->
          Var.set s.left (fix (Var.get s.left));
          fix (Node s)
        | Nil -> assert false
      end
      else sub
  in
  let balance_fn =
    Func.create eng ~name:"balance" ~strategy:Engine.Demand ~hash_arg:tree_hash
      ~equal_arg:tree_equal ~equal_result:tree_equal (fun balance t ->
        match t with
        | Nil -> Nil
        | Node n ->
          Var.set n.left (Func.call balance (Var.get n.left));
          Var.set n.right (Func.call balance (Var.get n.right));
          fix t)
  in
  {
    forest;
    root = Var.create eng ~equal:tree_equal ~name:"avl.root" Nil;
    balance_fn;
    journal = None;
  }

let engine t = Itree.engine t.forest

let set_journal t j = t.journal <- j

module Json = Alphonse.Json

let jop t op extra =
  match t.journal with
  | None -> ()
  | Some j -> j (Json.Obj (("op", Json.Str op) :: extra))

(* ------------------------------------------------------------------ *)
(* Plain BST mutators (exactly the unbalanced algorithms, §7.3)        *)
(* ------------------------------------------------------------------ *)

let insert t k =
  jop t "insert" [ ("k", Json.Num (float_of_int k)) ];
  let rec go tree =
    match tree with
    | Nil -> Itree.node t.forest k
    | Node n ->
      if k < n.key then Var.set n.left (go (Var.get n.left))
      else if k > n.key then Var.set n.right (go (Var.get n.right));
      (* k = n.key: already present *)
      tree
  in
  Var.set t.root (go (Var.get t.root))

(* Remove and return the minimum node of a non-empty subtree, along with
   the remaining subtree. *)
let rec extract_min = function
  | Nil -> invalid_arg "Avl.extract_min"
  | Node n -> (
    match Var.get n.left with
    | Nil -> (n, Var.get n.right)
    | Node _ as l ->
      let m, l' = extract_min l in
      Var.set n.left l';
      (m, Node n))

let delete t k =
  jop t "delete" [ ("k", Json.Num (float_of_int k)) ];
  let rec go tree =
    match tree with
    | Nil -> Nil
    | Node n ->
      if k < n.key then begin
        Var.set n.left (go (Var.get n.left));
        tree
      end
      else if k > n.key then begin
        Var.set n.right (go (Var.get n.right));
        tree
      end
      else begin
        match (Var.get n.left, Var.get n.right) with
        | Nil, r -> r
        | l, Nil -> l
        | l, (Node _ as r) ->
          (* splice the in-order successor node into n's place *)
          let m, r' = extract_min r in
          Var.set m.left l;
          Var.set m.right r';
          Node m
      end
  in
  Var.set t.root (go (Var.get t.root))

(* ------------------------------------------------------------------ *)
(* Maintained balancing and queries                                    *)
(* ------------------------------------------------------------------ *)

(** Re-establish the AVL property. Incremental: only the balance/height
    instances on paths disturbed since the last call re-execute. *)
let rebalance t =
  jop t "rebalance" [];
  Var.set t.root (Func.call t.balance_fn (Var.get t.root))

(** Membership after rebalancing: the O(log n) search of §7.3. *)
let mem t k =
  rebalance t;
  let rec go = function
    | Nil -> false
    | Node n ->
      if k < n.key then go (Var.get n.left)
      else if k > n.key then go (Var.get n.right)
      else true
  in
  go (Var.get t.root)

let root t = Var.get t.root
let to_list t = Itree.keys (Var.get t.root)
let size t = Itree.size (Var.get t.root)
let height t = Itree.height t.forest (Var.get t.root)

(* ------------------------------------------------------------------ *)
(* Invariant checks (tests)                                            *)
(* ------------------------------------------------------------------ *)

(** Raw structural height, bypassing the incremental machinery. *)
let rec check_height = function
  | Nil -> 0
  | Node n ->
    1 + max (check_height (Var.get n.left)) (check_height (Var.get n.right))

(** Every node's children differ in height by at most one. *)
let rec is_balanced = function
  | Nil -> true
  | Node n ->
    let l = Var.get n.left and r = Var.get n.right in
    abs (check_height l - check_height r) <= 1
    && is_balanced l && is_balanced r

(** In-order keys are strictly increasing. *)
let is_ordered tree =
  let rec go lo = function
    | Nil -> lo
    | Node n ->
      let lo = go lo (Var.get n.left) in
      (match lo with
      | Some prev when prev >= n.key -> raise Exit
      | _ -> ());
      go (Some n.key) (Var.get n.right)
  in
  match go None tree with _ -> true | exception Exit -> false

(* ------------------------------------------------------------------ *)
(* Durability                                                          *)
(* ------------------------------------------------------------------ *)

(* The snapshot records the exact tree {e shape} (not just the key set):
   replay determinism depends on it — a journaled [rebalance] must find
   the same imbalances the original run saw, so the restored tree must
   be node-for-node identical, unbalanced parts included. Node ids are
   allocation-order artifacts and are not persisted; [p_load] allocates
   fresh nodes. *)
let persist t =
  let rec save_tree = function
    | Nil -> Json.Null
    | Node n ->
      Json.Obj
        [
          ("k", Json.Num (float_of_int n.key));
          ("l", save_tree (Var.get n.left));
          ("r", save_tree (Var.get n.right));
        ]
  in
  let save () =
    Json.Obj
      [
        ("schema", Json.Str "alphonse-avl/1");
        ("root", save_tree (Var.get t.root));
      ]
  in
  let rec load_tree = function
    | Json.Null -> Nil
    | j -> (
      match
        ( Option.bind (Json.member "k" j) Json.to_float,
          Json.member "l" j,
          Json.member "r" j )
      with
      | Some k, Some l, Some r ->
        Itree.node t.forest ~left:(load_tree l) ~right:(load_tree r)
          (int_of_float k)
      | _ -> invalid_arg "Avl.persist: bad tree node")
  in
  let load j =
    match Json.member "root" j with
    | Some root ->
      Var.set t.root (load_tree root);
      (* warm the restored tree: height instances materialize the
         structure's dependency nodes, which [Engine.import] and replay
         verification match by stable name *)
      ignore (height t)
    | None -> invalid_arg "Avl.persist: snapshot has no root"
  in
  let apply j =
    let key () =
      match Option.bind (Json.member "k" j) Json.to_float with
      | Some k -> int_of_float k
      | None -> invalid_arg "Avl.persist: journal op without a key"
    in
    match Option.bind (Json.member "op" j) Json.to_str with
    | Some "insert" -> insert t (key ())
    | Some "delete" -> delete t (key ())
    | Some "rebalance" -> rebalance t
    | _ ->
      Fmt.invalid_arg "Avl.persist: unrecognized journal op %s"
        (Json.to_string j)
  in
  { Alphonse.Durable.p_save = save; p_load = load; p_apply = apply }
