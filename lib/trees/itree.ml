(** Binary trees with tracked child pointers and a maintained [height]
    method — the paper's Algorithm 1.

    Nodes are heap objects with identity; the child pointers are tracked
    {!Alphonse.Var}s so that pointer surgery by the mutator propagates to
    the incremental [height] instances hanging off each subtree. A single
    shared [Nil] plays the role of the paper's [TreeNil] object. *)

module Engine = Alphonse.Engine
module Var = Alphonse.Var
module Func = Alphonse.Func

type tree =
  | Nil
  | Node of node

and node = {
  id : int;  (** identity for hashing and equality *)
  key : int;  (** payload; doubles as the search key for {!Avl} *)
  left : tree Var.t;
  right : tree Var.t;
}

let tree_equal a b =
  match (a, b) with
  | Nil, Nil -> true
  | Node x, Node y -> x.id = y.id
  | Nil, Node _ | Node _, Nil -> false

let tree_hash = function Nil -> 0 | Node n -> n.id + 1

(** A forest context: an engine, a node allocator, and the maintained
    [height] method shared by every tree built in it. *)
type t = {
  eng : Engine.t;
  height_fn : (tree, int) Func.t;
  mutable next_id : int;
}

let create ?strategy eng =
  let height_fn =
    Func.create eng ~name:"height" ?strategy ~hash_arg:tree_hash
      ~equal_arg:tree_equal (fun height t ->
        match t with
        | Nil -> 0
        | Node n ->
          1
          + max
              (Func.call height (Var.get n.left))
              (Func.call height (Var.get n.right)))
  in
  { eng; height_fn; next_id = 0 }

let engine t = t.eng

let node t ?(left = Nil) ?(right = Nil) key =
  let id = t.next_id in
  t.next_id <- id + 1;
  Node
    {
      id;
      key;
      (* plain concatenation: node allocation is on E4's hot loop and a
         format-string parse per child name shows up in profiles *)
      left =
        Var.create t.eng ~equal:tree_equal
          ~name:("n" ^ string_of_int id ^ ".left") left;
      right =
        Var.create t.eng ~equal:tree_equal
          ~name:("n" ^ string_of_int id ^ ".right") right;
    }

let height t tree = Func.call t.height_fn tree

let height_func t = t.height_fn

(** The exhaustive specification the pragma-free program would run: a full
    recursive pass, no caching. The conventional-execution baseline of
    §9.2 and the E1/E6 benches. *)
let rec height_exhaustive = function
  | Nil -> 0
  | Node n ->
    1
    + max
        (height_exhaustive (Var.get n.left))
        (height_exhaustive (Var.get n.right))

let rec size = function
  | Nil -> 0
  | Node n -> 1 + size (Var.get n.left) + size (Var.get n.right)

(** In-order key list. *)
let keys tree =
  let rec go acc = function
    | Nil -> acc
    | Node n -> go (n.key :: go acc (Var.get n.right)) (Var.get n.left)
  in
  go [] tree

(* ------------------------------------------------------------------ *)
(* Builders                                                            *)
(* ------------------------------------------------------------------ *)

(** Perfectly balanced tree over keys [lo..hi]. *)
let rec perfect t lo hi =
  if lo > hi then Nil
  else
    let mid = (lo + hi) / 2 in
    node t ~left:(perfect t lo (mid - 1)) ~right:(perfect t (mid + 1) hi) mid

(** Degenerate right spine with keys [0..n-1] — worst-case height. *)
let spine t n =
  let rec go k = if k >= n then Nil else node t ~right:(go (k + 1)) k in
  go 0

(** Random binary search tree by repeated leaf insertion (no balancing). *)
let random t ~rand n =
  let rec insert tree k =
    match tree with
    | Nil -> node t k
    | Node m ->
      (if k < m.key then Var.set m.left (insert (Var.get m.left) k)
       else Var.set m.right (insert (Var.get m.right) k));
      tree
  in
  let keys = Array.init n (fun i -> i) in
  (* Fisher–Yates shuffle for an expected O(log n) height *)
  for i = n - 1 downto 1 do
    let j = Random.State.int rand (i + 1) in
    let tmp = keys.(i) in
    keys.(i) <- keys.(j);
    keys.(j) <- tmp
  done;
  Array.fold_left insert Nil keys

(** All interior nodes of a tree, in preorder — handy for picking random
    mutation points. *)
let nodes tree =
  let rec go acc = function
    | Nil -> acc
    | Node n -> go (go (n :: acc) (Var.get n.left)) (Var.get n.right)
  in
  List.rev (go [] tree)
