(** Self-balancing AVL search trees as an Alphonse program — §7.3,
    Algorithm 11.

    Insertion and deletion are the {e plain unbalanced} BST algorithms;
    balancing is a maintained method: {!rebalance} re-establishes the AVL
    property incrementally, re-executing only the balance/height
    instances on paths disturbed since the last call. Arbitrary batches
    of mutations may happen between rebalances (the paper's off-line and
    on-line modes).

    The maintained balance method is pinned to [Demand] evaluation: a
    side-effecting procedure that restructures the data it navigates is
    not OBS-safe (§3.5) under eager evaluation — see DESIGN.md. *)

type avl
(** An AVL tree handle (root pointer + the shared maintained methods). *)

val create : ?strategy:Alphonse.Engine.strategy -> Alphonse.Engine.t -> avl
(** [create engine] is an empty tree. [strategy] applies to the height
    method only (balance is always demand-evaluated). *)

val engine : avl -> Alphonse.Engine.t

(** {1 Mutators (plain BST algorithms)} *)

val insert : avl -> int -> unit
(** BST leaf insertion; no balancing. Duplicate keys are ignored. *)

val delete : avl -> int -> unit
(** BST deletion (successor splice); no balancing. Missing keys are
    ignored. *)

(** {1 Maintained balancing and queries} *)

val rebalance : avl -> unit
(** Re-establish the AVL property. Incremental: only instances on
    disturbed paths re-execute; O(log n) work per preceding insertion. *)

val mem : avl -> int -> bool
(** Membership after rebalancing — the O(log n) search of §7.3. *)

val root : avl -> Itree.tree
val to_list : avl -> int list
(** Sorted key list. *)

val size : avl -> int
val height : avl -> int
(** Height via the maintained method (rebalance first for the AVL
    bound). *)

(** {1 Invariant checks (for tests)} *)

val check_height : Itree.tree -> int
(** Structural height, bypassing the incremental machinery. *)

val is_balanced : Itree.tree -> bool
(** AVL invariant: every node's children differ in height by ≤ 1. *)

val is_ordered : Itree.tree -> bool
(** BST invariant: in-order keys strictly increase. *)

(** {1 Durability} *)

val set_journal : avl -> (Alphonse.Json.t -> unit) option -> unit
(** Installs the write-ahead hook: {!insert}, {!delete} and
    {!rebalance} (also the one inside {!mem}) are announced to it as
    [{"op":…}] entries before they run. Wire it to
    [Durable.journal_op]. *)

val persist : avl -> Alphonse.Durable.persistable
(** Durability hooks: save records the exact tree shape (replay
    determinism needs the same imbalances the original run saw, so
    unbalanced parts are preserved node-for-node), load rebuilds it
    with fresh nodes, apply replays one journaled mutation. Load and
    apply never journal. *)
