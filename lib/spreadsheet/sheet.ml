(** The spreadsheet of paper §7.2: an array of cells whose values are
    maintained methods over expression trees, with a [CellExp]-style
    reference operation that reads other cells' maintained values.

    Cells are sparse (a hash table keyed by coordinates); each cell's
    content is a tracked {!Alphonse.Var} and the cell value is an
    incremental procedure instance keyed by the coordinate. Editing a cell
    re-executes exactly the instances that (transitively) referenced it;
    circular references surface as [Error Cycle] values rather than
    divergence.

    Evaluation strategy and cycles: under the default [Demand] strategy a
    dirty cluster re-executes by nested calls, so a circular reference is
    always caught re-entrantly and reported as [Error Cycle], matching
    {!exhaustive_value}. Under [Eager] evaluation the propagator
    re-executes dirty cells one at a time against cached neighbor values;
    on a {e cyclic} sheet this iteration can quiesce at a consistent
    fixpoint of the circular equations instead of reporting an error (the
    paper's model assumes acyclic dependencies — its DET restriction —
    so this is outside its contract). Use [Demand] if your sheets may be
    cyclic. *)

module Engine = Alphonse.Engine
module Var = Alphonse.Var
module Func = Alphonse.Func
module F = Formula

type cell_error =
  | Cycle
  | Parse of string
  | Div_by_zero
  | Bad_arg  (** e.g. SQRT of a negative number, AVG of an empty range *)
  | Fault of string
      (** an engine-level failure (a poisoned cell instance) surfaced as
          a value — the cell shows [#ERR!] instead of corrupting the
          engine or the calling UI *)

type value =
  | Empty
  | Num of float
  | Error of cell_error

let pp_error ppf = function
  | Cycle -> Fmt.string ppf "#CYCLE!"
  | Parse e -> Fmt.pf ppf "#PARSE:%s!" e
  | Div_by_zero -> Fmt.string ppf "#DIV/0!"
  | Bad_arg -> Fmt.string ppf "#ARG!"
  | Fault _ -> Fmt.string ppf "#ERR!"

let pp_value ppf = function
  | Empty -> ()
  | Num x ->
    if Float.is_integer x && Float.abs x < 1e15 then
      Fmt.pf ppf "%d" (int_of_float x)
    else Fmt.pf ppf "%g" x
  | Error e -> pp_error ppf e

type content =
  | Blank
  | Const of float
  | Formula of F.expr * string  (** parsed expression and source text *)
  | Invalid of string * string  (** unparsable input and its error *)

type cell = { content : content Var.t }

type t = {
  eng : Engine.t;
  cells : (int * int, cell) Hashtbl.t;
  mutable value_fn : (int * int, value) Func.t option;
      (** always [Some] after {!create}; option only ties the recursive
          knot between the function and the sheet record *)
  mutable journal : (Alphonse.Json.t -> unit) option;
      (** durability hook: every edit is announced here (write-ahead)
          before the tracked write applies — see {!persist} *)
}

let engine t = t.eng

let the_fn t =
  match t.value_fn with Some f -> f | None -> assert false

(* ------------------------------------------------------------------ *)
(* Expression evaluation, parameterized by the cell reader — shared by
   the incremental path (reader = maintained cell values) and the
   exhaustive oracle (reader = recursive recomputation).               *)
(* ------------------------------------------------------------------ *)

let eval_with read_cell expr =
  let rec eval expr =
    let num v k =
      match v with
      | Empty -> k 0. (* blank cells act as 0 in arithmetic *)
      | Num x -> k x
      | Error _ as e -> e
    in
    match expr with
    | F.Num x -> Num x
    | F.Cell (c, r) -> read_cell (c, r)
    | F.Neg e -> num (eval e) (fun x -> Num (-.x))
    | F.Fn1 (f, e) ->
      num (eval e) (fun x ->
          match f with
          | F.Abs -> Num (Float.abs x)
          | F.Round -> Num (Float.round x)
          | F.Sqrt -> if x < 0. then Error Bad_arg else Num (sqrt x))
    | F.Binop (op, a, b) ->
      num (eval a) (fun x ->
          num (eval b) (fun y ->
              let bool v = Num (if v then 1. else 0.) in
              match op with
              | F.Add -> Num (x +. y)
              | F.Sub -> Num (x -. y)
              | F.Mul -> Num (x *. y)
              | F.Div -> if y = 0. then Error Div_by_zero else Num (x /. y)
              | F.Pow -> Num (x ** y)
              | F.Lt -> bool (x < y)
              | F.Le -> bool (x <= y)
              | F.Gt -> bool (x > y)
              | F.Ge -> bool (x >= y)
              | F.Eq -> bool (x = y)
              | F.Ne -> bool (x <> y)))
    | F.If (c, th, el) -> (
      match eval c with
      | Error _ as e -> e
      | Empty -> eval el
      | Num x -> if x <> 0. then eval th else eval el)
    | F.Agg (agg, { c0; r0; c1; r1 }) -> (
      let err = ref None in
      let acc = ref [] in
      for c = c0 to c1 do
        for r = r0 to r1 do
          match read_cell (c, r) with
          | Empty -> ()
          | Num x -> acc := x :: !acc
          | Error _ as e -> if !err = None then err := Some e
        done
      done;
      match !err with
      | Some e -> e
      | None -> (
        let xs = !acc in
        let n = List.length xs in
        match agg with
        | F.Count -> Num (float_of_int n)
        | F.Sum -> Num (List.fold_left ( +. ) 0. xs)
        | F.Avg ->
          if n = 0 then Error Bad_arg
          else Num (List.fold_left ( +. ) 0. xs /. float_of_int n)
        | F.Min -> (
          match xs with
          | [] -> Error Bad_arg
          | x :: rest -> Num (List.fold_left Float.min x rest))
        | F.Max -> (
          match xs with
          | [] -> Error Bad_arg
          | x :: rest -> Num (List.fold_left Float.max x rest))))
  in
  eval expr

(* A cell springs into existence on first touch — reference or write — so
   that a formula referencing a blank cell is invalidated when that cell
   later gets content. *)
let cell_at t (c, r) =
  match Hashtbl.find_opt t.cells (c, r) with
  | Some cell -> cell
  | None ->
    let cell =
      {
        content =
          Var.create t.eng
            ~name:(Fmt.str "cell:%s" (F.name_of_cell (c, r)))
            Blank;
      }
    in
    Hashtbl.add t.cells (c, r) cell;
    cell

let create ?strategy ?scheduling ?partitioning () =
  let eng =
    Engine.create ?default_strategy:strategy ?scheduling ?partitioning ()
  in
  let t = { eng; cells = Hashtbl.create 64; value_fn = None; journal = None } in
  (* the CellExp operation: read another cell's maintained value,
     converting a detected dependency cycle into an error value *)
  let read_cell coord =
    match Func.call (the_fn t) coord with
    | v -> v
    | exception Engine.Cycle _ -> Error Cycle
    | exception Engine.Poisoned _ -> Error (Fault "poisoned")
  in
  t.value_fn <-
    Some
      (Func.create eng ~name:"cell-value"
         ~pp_key:(fun coord -> F.name_of_cell coord)
         (fun _self coord ->
           match Var.get (cell_at t coord).content with
           | Blank -> Empty
           | Const x -> Num x
           | Formula (e, _) -> eval_with read_cell e
           | Invalid (_, msg) -> Error (Parse msg)));
  t

(* ------------------------------------------------------------------ *)
(* Editing                                                             *)
(* ------------------------------------------------------------------ *)

(* The raw-input form of a content — what a user would have typed to
   produce it. [%.17g] guarantees constants round-trip bit-exactly
   through [parse_input], so journaled/snapshotted cells reload to the
   same floats. *)
let raw_of_content = function
  | Blank -> ""
  | Const x ->
    if Float.is_integer x && Float.abs x < 1e15 then
      Printf.sprintf "%.0f" x
    else Printf.sprintf "%.17g" x
  | Formula (_, src) -> "=" ^ src
  | Invalid (raw, _) -> raw

let parse_input input =
  if input = "" then Blank
  else if String.length input > 0 && input.[0] = '=' then
    let src = String.sub input 1 (String.length input - 1) in
    match F.parse src with
    | Ok e -> Formula (e, src)
    | Error msg -> Invalid (input, msg)
  else
    match float_of_string_opt (String.trim input) with
    | Some x -> Const x
    | None -> Invalid (input, "not a number or formula")

(* Every edit funnels through here: journal the raw input (write-ahead),
   then perform the tracked write. *)
let put t coord ~raw content =
  (match t.journal with
  | None -> ()
  | Some j ->
    j
      (Alphonse.Json.Obj
         [
           ("op", Alphonse.Json.Str "cell");
           ("at", Alphonse.Json.Str (F.name_of_cell coord));
           ("v", Alphonse.Json.Str raw);
         ]));
  Var.set (cell_at t coord).content content

let set_journal t j = t.journal <- j

(** Set a cell from raw user input: [""] clears, ["=…"] is a formula,
    anything numeric is a constant. Non-numeric non-formula input is
    reported as a parse error value (this sheet has no text type). *)
let set_raw t coord input = put t coord ~raw:input (parse_input input)

let set t name input =
  match F.parse name with
  | Ok (F.Cell (c, r)) -> set_raw t (c, r) input
  | _ -> Fmt.invalid_arg "Sheet.set: bad cell name %s" name

let set_const t coord x =
  let content = Const x in
  put t coord ~raw:(raw_of_content content) content

let set_formula t coord expr =
  let content = Formula (expr, F.to_string expr) in
  put t coord ~raw:(raw_of_content content) content

let clear t coord = put t coord ~raw:"" Blank

(* ------------------------------------------------------------------ *)
(* Reading                                                             *)
(* ------------------------------------------------------------------ *)

let value t coord =
  match Func.call (the_fn t) coord with
  | v -> v
  | exception Engine.Cycle _ -> Error Cycle
  | exception Engine.Poisoned _ -> Error (Fault "poisoned")

(* A poisoned cell instance keeps reporting [#ERR!] until the UI asks
   for a fresh attempt; this is that ask (e.g. bound to F9). *)
let clear_fault t coord =
  match Func.node (the_fn t) coord with
  | Some n when Engine.poisoned t.eng n -> Engine.clear_poison t.eng n
  | _ -> ()

let value_at t name =
  match F.parse name with
  | Ok (F.Cell (c, r)) -> value t (c, r)
  | _ -> Fmt.invalid_arg "Sheet.value_at: bad cell name %s" name

let content t coord = Var.get (cell_at t coord).content

(** Evaluate every materialized cell; returns how many were visited. Used
    by demos and the E3 benches to force a full recalculation. *)
let recalc_all t =
  let n = ref 0 in
  Hashtbl.iter
    (fun coord _ ->
      incr n;
      ignore (value t coord))
    t.cells;
  !n

(** Coordinates of all materialized cells. *)
let coords t = Hashtbl.fold (fun k _ acc -> k :: acc) t.cells []

(** Render the bounding box of materialized cells as an aligned text
    grid with spreadsheet-style headers; values are brought current
    first. Cells holding formulas render their values (use {!content}
    for sources). *)
let render t =
  match coords t with
  | [] -> "(empty sheet)\n"
  | cs ->
    let cmax = List.fold_left (fun m (c, _) -> max m c) 0 cs in
    let rmax = List.fold_left (fun m (_, r) -> max m r) 0 cs in
    let cell_text c r =
      match Hashtbl.find_opt t.cells (c, r) with
      | None -> ""
      | Some _ -> Fmt.str "%a" pp_value (value t (c, r))
    in
    let header c = F.name_of_cell (c, 0) |> fun s ->
      String.sub s 0 (String.length s - 1)
    in
    let widths =
      Array.init (cmax + 1) (fun c ->
          let w = ref (String.length (header c)) in
          for r = 0 to rmax do
            w := max !w (String.length (cell_text c r))
          done;
          !w)
    in
    let buf = Buffer.create 256 in
    let pad s w = s ^ String.make (w - String.length s) ' ' in
    let rwidth = String.length (string_of_int (rmax + 1)) in
    Buffer.add_string buf (pad "" rwidth);
    for c = 0 to cmax do
      Buffer.add_string buf (" | " ^ pad (header c) widths.(c))
    done;
    Buffer.add_char buf '\n';
    for r = 0 to rmax do
      Buffer.add_string buf (pad (string_of_int (r + 1)) rwidth);
      for c = 0 to cmax do
        Buffer.add_string buf (" | " ^ pad (cell_text c r) widths.(c))
      done;
      Buffer.add_char buf '\n'
    done;
    Buffer.contents buf

(* ------------------------------------------------------------------ *)
(* Exhaustive oracle                                                   *)
(* ------------------------------------------------------------------ *)

(** From-scratch evaluation with no caching: recomputes the cell's formula
    tree recursively, detecting cycles with a visited set. The
    conventional execution of the sheet program (§9.2's baseline). *)
let exhaustive_value t coord =
  let rec cell_value seen coord =
    if List.mem coord seen then Error Cycle
    else
      match Hashtbl.find_opt t.cells coord with
      | None -> Empty
      | Some cell -> (
        match Var.get cell.content with
        | Blank -> Empty
        | Const x -> Num x
        | Invalid (_, msg) -> Error (Parse msg)
        | Formula (e, _) -> eval_with (cell_value (coord :: seen)) e)
  in
  cell_value [] coord

(* ------------------------------------------------------------------ *)
(* Durability                                                          *)
(* ------------------------------------------------------------------ *)

module Json = Alphonse.Json

let coord_of_name name =
  match F.parse name with
  | Ok (F.Cell (c, r)) -> (c, r)
  | _ -> Fmt.invalid_arg "Sheet.persist: bad cell name %s" name

(* [p_load]/[p_apply] bypass {!put}: loading and replaying must never
   re-journal (the engine-side write intents during replay are captured
   separately by [Durable.recover] for verification). *)
let restore_cell t name raw =
  Var.set (cell_at t (coord_of_name name)).content (parse_input raw)

let persist t =
  let save () =
    let cells =
      Hashtbl.fold
        (fun coord cell acc ->
          match Var.get cell.content with
          | Blank -> acc (* blanks re-materialize on demand *)
          | content -> (coord, raw_of_content content) :: acc)
        t.cells []
      |> List.sort compare
    in
    Json.Obj
      [
        ("schema", Json.Str "alphonse-sheet/1");
        ( "cells",
          Json.Arr
            (List.map
               (fun (coord, raw) ->
                 Json.Arr [ Json.Str (F.name_of_cell coord); Json.Str raw ])
               cells) );
      ]
  in
  let load j =
    match Option.bind (Json.member "cells" j) Json.to_list with
    | None -> invalid_arg "Sheet.persist: snapshot has no cell table"
    | Some cells ->
      List.iter
        (function
          | Json.Arr [ Json.Str name; Json.Str raw ] -> restore_cell t name raw
          | _ -> invalid_arg "Sheet.persist: bad cell entry")
        cells;
      (* warm the restored sheet: dependency nodes materialize on the
         first tracked access (Algorithm 3), and both [Engine.import]
         (matching exported state by stable name) and replay
         verification (capturing write intents) need them live *)
      ignore (recalc_all t)
  in
  let apply j =
    match
      ( Option.bind (Json.member "op" j) Json.to_str,
        Option.bind (Json.member "at" j) Json.to_str,
        Option.bind (Json.member "v" j) Json.to_str )
    with
    | Some "cell", Some name, Some raw -> restore_cell t name raw
    | _ ->
      Fmt.invalid_arg "Sheet.persist: unrecognized journal op %s"
        (Json.to_string j)
  in
  { Alphonse.Durable.p_save = save; p_load = load; p_apply = apply }

(* ------------------------------------------------------------------ *)
(* Daemon workload                                                     *)
(* ------------------------------------------------------------------ *)

let json_of_value = function
  | Empty -> Json.Null
  | Num x -> Json.Num x
  | Error e -> Json.Str (Fmt.str "%a" pp_error e)

(* One request op against a live sheet. Malformed input is the
   client's fault, not a tenant crash: raise [Tenant.Bad_op] so the
   supervisor answers 400 and keeps the session. *)
let apply_op t op =
  let field k = Option.bind (Json.member k op) Json.to_str in
  let bad msg = raise (Alphonse.Tenant.Bad_op msg) in
  match field "op" with
  | Some "set" -> (
    match field "cell" with
    | None -> bad "set: missing cell"
    | Some cell ->
      let v =
        match field "v" with
        | Some v -> v
        | None -> (
          (* numeric payloads are welcome too *)
          match Option.bind (Json.member "v" op) Json.to_float with
          | Some x -> Fmt.str "%.12g" x
          | None -> bad "set: missing v")
      in
      (match F.parse cell with
      | Ok (F.Cell _) -> ()
      | _ -> bad ("set: bad cell name " ^ cell));
      set t cell v;
      Json.Obj [ ("ok", Json.Bool true) ])
  | Some "get" -> (
    match field "cell" with
    | None -> bad "get: missing cell"
    | Some cell ->
      let coord =
        match F.parse cell with
        | Ok (F.Cell (c, r)) -> (c, r)
        | _ -> bad ("get: bad cell name " ^ cell)
      in
      Json.Obj
        [
          ("cell", Json.Str (F.name_of_cell coord));
          ("value", json_of_value (value t coord));
        ])
  | Some "render" -> Json.Obj [ ("render", Json.Str (render t)) ]
  | Some "recalc" ->
    Json.Obj [ ("visited", Json.Num (float_of_int (recalc_all t))) ]
  | Some other -> bad ("unknown op " ^ other)
  | None -> bad "op missing"

let workload ?strategy ?scheduling ?partitioning () : Alphonse.Tenant.workload
    =
  {
    Alphonse.Tenant.w_make =
      (fun () ->
        let t = create ?strategy ?scheduling ?partitioning () in
        {
          Alphonse.Tenant.s_engine = engine t;
          s_apply = (fun op -> apply_op t op);
          s_persist = persist t;
          s_set_journal = set_journal t;
        });
  }
