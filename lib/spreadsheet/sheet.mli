(** The spreadsheet of paper §7.2: sparse cells whose values are
    maintained methods over formula trees, with cell references reading
    other cells' maintained values (the [CellExp] operation).

    Editing a cell re-executes exactly the instances that (transitively)
    referenced it. Circular references are surfaced as [Error Cycle]
    values; under the default [Demand] strategy this matches
    {!exhaustive_value} exactly, while [Eager] evaluation on a cyclic
    sheet may instead quiesce at a consistent fixpoint of the circular
    equations (outside the paper's DET contract — see DESIGN.md). *)

type cell_error =
  | Cycle
  | Parse of string
  | Div_by_zero
  | Bad_arg  (** e.g. SQRT of a negative, AVG over an empty range *)
  | Fault of string
      (** an engine-level failure (e.g. a poisoned cell instance),
          rendered [#ERR!]; like every other error it propagates through
          dependent formulas as a value *)

type value =
  | Empty
  | Num of float
  | Error of cell_error

val pp_value : Format.formatter -> value -> unit
val pp_error : Format.formatter -> cell_error -> unit

type content =
  | Blank
  | Const of float
  | Formula of Formula.expr * string  (** parsed expression, source text *)
  | Invalid of string * string  (** unparsable input and its error *)

type t
(** A sheet (with its own private engine). *)

val create :
  ?strategy:Alphonse.Engine.strategy ->
  ?scheduling:Alphonse.Engine.scheduling ->
  ?partitioning:bool ->
  unit ->
  t
(** [scheduling] selects the inconsistent-set drain order — pass
    [Alphonse.Parallel.scheduling ~domains] to recalculate with
    level-synchronized parallel settling (independent cells of one
    dependency level re-evaluate concurrently). *)

val engine : t -> Alphonse.Engine.t

(** {1 Editing} *)

val set : t -> string -> string -> unit
(** [set t "B2" input] — [""] clears, ["=…"] is a formula, numeric text
    is a constant, anything else becomes a parse-error value. *)

val set_raw : t -> int * int -> string -> unit
(** Like {!set} with a coordinate instead of a name. *)

val set_const : t -> int * int -> float -> unit
val set_formula : t -> int * int -> Formula.expr -> unit
val clear : t -> int * int -> unit

(** {1 Reading} *)

val value : t -> int * int -> value
(** The cell's maintained value; recomputes only what pending edits
    invalidated. *)

val clear_fault : t -> int * int -> unit
(** Forget the cell's poisoned state (if any) so the next read retries
    its formula — the recovery action behind an [#ERR!] cell. No-op on
    healthy cells. *)

val value_at : t -> string -> value
(** {!value} by cell name. *)

val content : t -> int * int -> content

val recalc_all : t -> int
(** Force every materialized cell current; returns how many were
    visited. *)

val coords : t -> (int * int) list
(** Coordinates of all materialized cells (referenced or written). *)

val render : t -> string
(** The bounding box of materialized cells as an aligned text grid with
    A/B/C column headers and 1-based row numbers; values are brought
    current first. *)

(** {1 Oracle} *)

val exhaustive_value : t -> int * int -> value
(** From-scratch evaluation with no caching, cycles detected with a
    visited set — the conventional execution of the sheet program. *)

(** {1 Durability} *)

val set_journal : t -> (Alphonse.Json.t -> unit) option -> unit
(** Installs the write-ahead hook: every edit ({!set}, {!set_raw},
    {!set_const}, {!set_formula}, {!clear}) is announced to it as
    [{"op":"cell","at":name,"v":raw}] {e before} the tracked write
    applies. Wire it to [Durable.journal_op]. *)

val persist : t -> Alphonse.Durable.persistable
(** The sheet's durability hooks: save serializes all non-blank cells
    (sorted, raw-input form — constants round-trip bit-exactly), load
    rebuilds them in a fresh sheet, apply replays one journaled edit.
    Load and apply never journal. *)

(** {1 Daemon workload} *)

val workload :
  ?strategy:Alphonse.Engine.strategy ->
  ?scheduling:Alphonse.Engine.scheduling ->
  ?partitioning:bool ->
  unit ->
  Alphonse.Tenant.workload
(** The spreadsheet as a daemon tenant ([alphonsec daemon] hosts one
    sheet per tenant). Ops: [{"op":"set","cell":"A1","v":"=B1+1"}],
    [{"op":"get","cell":"A1"}] (value is a number, [null] for an empty
    cell, or an error string such as ["#DIV/0!"]),
    [{"op":"render"}], [{"op":"recalc"}]. Malformed ops raise
    {!Alphonse.Tenant.Bad_op}, which the daemon answers with 400 after
    rolling back the batch. *)
