(** The Alphonse execution of a transformed program (§5, §8).

    This interpreter executes the same AST as [Lang.Interp] but with the
    three transformation templates realized against the incremental
    engine:

    - a read of tracked storage is [access] (Algorithm 3): the first read
      made under an executing incremental procedure materializes a
      dependency node for the location, and subsequent reads record
      edges;
    - a write of tracked storage is [modify] (Algorithm 4): a dependency
      is recorded for the writer and, when the value changed, the
      location is marked inconsistent;
    - a call whose resolved target is a maintained or cached procedure is
      [call] (Algorithm 5): it goes through the target's argument table,
      propagating pending inconsistencies and re-executing only when the
      instance is inconsistent.

    Storage↔node correspondence uses side tables keyed by global name and
    by (object id, field name) — the paper's "at the expense of a level
    of indirection" variant of nodeptr fields (§5). Which sites are
    instrumented at all comes from {!Analysis} (§6.1); whether a call is
    incremental is decided from the dynamically dispatched target's
    pragma, exactly like the paper's [tableptr(p) # NIL] test. *)

open Lang.Ast
open Lang.Value
module Tc = Lang.Typecheck
module Engine = Alphonse.Engine
module Func = Alphonse.Func
module Policy = Alphonse.Policy

exception Runtime_error of string * pos

exception Return_value of value option

let error pos fmt = Fmt.kstr (fun s -> raise (Runtime_error (s, pos))) fmt

type state = {
  env : Tc.env;
  analysis : Analysis.result;
  eng : Engine.t;
  globals : (string, value ref) Hashtbl.t;
  global_nodes : (string, Engine.node) Hashtbl.t;
  field_nodes : (int * string, Engine.node) Hashtbl.t;
  elem_nodes : (int * int, Engine.node) Hashtbl.t;
      (** array-element storage nodes, keyed by (array id, index) *)
  funcs : (string, (value list, value option) Func.t) Hashtbl.t;
      (** argument tables, one per incremental implementing procedure *)
  out : Buffer.t;
  mutable next_oid : int;
  mutable steps : int;
  fuel : int option;
}

let tick st pos =
  st.steps <- st.steps + 1;
  match st.fuel with
  | Some fuel when st.steps > fuel -> error pos "out of fuel (%d steps)" fuel
  | _ -> ()

(* ------------------------------------------------------------------ *)
(* Storage nodes (Algorithms 3 and 4)                                  *)
(* ------------------------------------------------------------------ *)

let global_node st x =
  match Hashtbl.find_opt st.global_nodes x with
  | Some n -> n
  | None ->
    let n = Engine.new_storage st.eng ~name:("global:" ^ x) in
    Hashtbl.replace st.global_nodes x n;
    n

let field_node st o f =
  match Hashtbl.find_opt st.field_nodes (o.oid, f) with
  | Some n -> n
  | None ->
    let n =
      Engine.new_storage st.eng ~name:(Fmt.str "%s#%d.%s" o.cls o.oid f)
    in
    Hashtbl.replace st.field_nodes (o.oid, f) n;
    n

let elem_node st a idx =
  match Hashtbl.find_opt st.elem_nodes (a.aid, idx) with
  | Some n -> n
  | None ->
    let n =
      Engine.new_storage st.eng ~name:(Fmt.str "arr#%d[%d]" a.aid idx)
    in
    Hashtbl.replace st.elem_nodes (a.aid, idx) n;
    n

(* access(l): record the dependency if an incremental procedure is
   executing; the node springs into existence on the first such read. *)
let tracked_read st tracked ensure_node v =
  if tracked && Engine.recording st.eng then
    Engine.record_read st.eng (ensure_node ());
  v

(* modify(l, v): the test "nodeptr(l) # NIL" — the location participates
   in the dependency graph only if some incremental execution has touched
   it (or is touching it right now). *)
let tracked_write st tracked find_node ensure_node old_v new_v write =
  (if not tracked then write ()
   else
     let node =
       if Engine.recording st.eng then Some (ensure_node ())
       else find_node ()
     in
     match node with
     | None -> write ()
     | Some n ->
       let changed = not (equal old_v new_v) in
       write ();
       Engine.record_write st.eng n ~changed)

(* ------------------------------------------------------------------ *)
(* Helpers shared with the conventional interpreter                    *)
(* ------------------------------------------------------------------ *)

let rec init_value st = function
  | Tarray (lo, hi, elem) ->
    let elems = Array.init (hi - lo + 1) (fun _ -> ref (init_value st elem)) in
    let a = { aid = st.next_oid; lo; hi; elems } in
    st.next_oid <- st.next_oid + 1;
    VArr a
  | (Tint | Tbool | Ttext | Tobj _) as t -> default_of t

let alloc st cls =
  let ci =
    match Tc.class_info st.env cls with Some ci -> ci | None -> assert false
  in
  let fields = Hashtbl.create (List.length ci.ci_fields) in
  List.iter
    (fun (fname, fty) -> Hashtbl.replace fields fname (ref (init_value st fty)))
    ci.ci_fields;
  let o = { oid = st.next_oid; cls; fields } in
  st.next_oid <- st.next_oid + 1;
  o

let obj_of pos = function
  | VObj o -> o
  | VNil -> error pos "NIL dereference"
  | v -> error pos "not an object: %s" (to_string v)

let int_of pos = function
  | VInt n -> n
  | v -> error pos "not an integer: %s" (to_string v)

let bool_of pos = function
  | VBool b -> b
  | v -> error pos "not a boolean: %s" (to_string v)

let text_of pos = function
  | VText s -> s
  | v -> error pos "not a text: %s" (to_string v)

let arr_of pos = function
  | VArr a -> a
  | v -> error pos "not an array: %s" (to_string v)

let elem_slot pos a idx =
  if idx < a.lo || idx > a.hi then
    error pos "index %d outside [%d..%d]" idx a.lo a.hi;
  a.elems.(idx - a.lo)

type frame = (string, value ref) Hashtbl.t

(* ------------------------------------------------------------------ *)
(* Evaluation                                                          *)
(* ------------------------------------------------------------------ *)

let strategy_of st = function
  | S_default -> Engine.default_strategy st.eng
  | S_demand -> Engine.Demand
  | S_eager -> Engine.Eager

let policy_of = function
  | P_unbounded -> Policy.Unbounded
  | P_lru n -> Policy.Lru n
  | P_fifo n -> Policy.Fifo n

let rec eval st (fr : frame) e : value =
  tick st e.pos;
  match e.desc with
  | Int n -> VInt n
  | Bool b -> VBool b
  | Text s -> VText s
  | Nil -> VNil
  | Var x -> (
    match Hashtbl.find_opt fr x with
    | Some r -> !r
    | None -> (
      match Hashtbl.find_opt st.globals x with
      | Some r ->
        tracked_read st e.note.tracked (fun () -> global_node st x) !r
      | None -> error e.pos "unbound variable %s" x))
  | Field (b, f) -> (
    let o = obj_of b.pos (eval st fr b) in
    match Hashtbl.find_opt o.fields f with
    | Some r -> tracked_read st e.note.tracked (fun () -> field_node st o f) !r
    | None -> error e.pos "object %s#%d has no field %s" o.cls o.oid f)
  | Index (b, i) ->
    let a = arr_of b.pos (eval st fr b) in
    let idx = int_of i.pos (eval st fr i) in
    let r = elem_slot e.pos a idx in
    tracked_read st e.note.tracked (fun () -> elem_node st a idx) !r
  | New cls -> VObj (alloc st cls)
  | Unchecked inner ->
    (* §6.4: dependency recording suppressed for this expression *)
    Engine.unchecked st.eng (fun () -> eval st fr inner)
  | Unop (Neg, a) -> VInt (-int_of a.pos (eval st fr a))
  | Unop (Not, a) -> VBool (not (bool_of a.pos (eval st fr a)))
  | Binop (And, a, b) ->
    if bool_of a.pos (eval st fr a) then eval st fr b else VBool false
  | Binop (Or, a, b) ->
    if bool_of a.pos (eval st fr a) then VBool true else eval st fr b
  | Binop (op, a, b) -> (
    let va = eval st fr a in
    let vb = eval st fr b in
    match op with
    | Add -> VInt (int_of a.pos va + int_of b.pos vb)
    | Sub -> VInt (int_of a.pos va - int_of b.pos vb)
    | Mul -> VInt (int_of a.pos va * int_of b.pos vb)
    | Div ->
      let d = int_of b.pos vb in
      if d = 0 then error e.pos "division by zero";
      VInt (int_of a.pos va / d)
    | Mod ->
      let d = int_of b.pos vb in
      if d = 0 then error e.pos "modulo by zero";
      VInt (int_of a.pos va mod d)
    | Cat -> VText (text_of a.pos va ^ text_of b.pos vb)
    | Eq -> VBool (equal va vb)
    | Ne -> VBool (not (equal va vb))
    | Lt -> VBool (int_of a.pos va < int_of b.pos vb)
    | Le -> VBool (int_of a.pos va <= int_of b.pos vb)
    | Gt -> VBool (int_of a.pos va > int_of b.pos vb)
    | Ge -> VBool (int_of a.pos va >= int_of b.pos vb)
    | And | Or -> assert false)
  | Call (callee, args) -> (
    match eval_call st fr e.pos callee args with
    | Some v -> v
    | None -> error e.pos "proper procedure call in expression position")

and eval_call st fr pos callee args : value option =
  match callee with
  | Cproc "Print" ->
    List.iter
      (fun a -> Buffer.add_string st.out (to_string (eval st fr a)))
      args;
    None
  | Cproc p -> (
    match Hashtbl.find_opt st.env.procs p with
    | None -> error pos "unknown procedure %s" p
    | Some pd ->
      let argv = List.map (eval st fr) args in
      dispatch st pos pd pd.ppragma argv)
  | Cmethod (oe, mname) -> (
    let recv = eval st fr oe in
    let o = obj_of oe.pos recv in
    match Tc.lookup_method st.env o.cls mname with
    | None -> error pos "object %s has no method %s" o.cls mname
    | Some mi -> (
      match Hashtbl.find_opt st.env.procs mi.mi_impl with
      | None -> error pos "method %s bound to unknown procedure" mname
      | Some pd ->
        let argv = List.map (eval st fr) args in
        dispatch st pos pd mi.mi_pragma (recv :: argv)))

(* call(p, a1 … ak): the dynamic test of Algorithm 5 — if the resolved
   target carries no pragma, a conventional call; otherwise go through
   its argument table. *)
and dispatch st pos pd pragma argv : value option =
  match pragma with
  | None -> call_proc st pd argv
  | Some pragma -> (
    let func =
      match Hashtbl.find_opt st.funcs pd.pname with
      | Some f -> f
      | None ->
        let strategy, policy =
          match pragma with
          | Maintained s -> (strategy_of st s, Policy.Unbounded)
          | Cached (s, p) -> (strategy_of st s, policy_of p)
        in
        let f =
          Func.create st.eng ~name:pd.pname ~strategy ~policy
            ~hash_arg:hash_list ~equal_arg:equal_list
            ~equal_result:(fun a b ->
              match (a, b) with
              | None, None -> true
              | Some x, Some y -> equal x y
              | None, Some _ | Some _, None -> false)
            (fun _self argv -> call_proc st pd argv)
        in
        Hashtbl.replace st.funcs pd.pname f;
        f
    in
    match Func.call func argv with
    | v -> v
    | exception Engine.Cycle name ->
      error pos "incremental procedure %s depends on itself" name
    | exception Engine.Poisoned name ->
      error pos "incremental procedure %s is poisoned after repeated failures"
        name
    | exception Alphonse.Faults.Injected _ -> (
      (* the engine unwound and quarantined the faulted instance; one
         retry normally succeeds since injectors are one-shot or rare *)
      match Func.call func argv with
      | v -> v
      | exception Engine.Cycle name ->
        error pos "incremental procedure %s depends on itself" name
      | exception Engine.Poisoned name ->
        error pos "incremental procedure %s is poisoned after repeated failures"
          name
      | exception Alphonse.Faults.Injected site ->
        error pos "injected fault at %s persisted across retry" site))

and call_proc st (pd : proc_decl) argv : value option =
  let fr : frame = Hashtbl.create 8 in
  (try List.iter2 (fun (n, _) v -> Hashtbl.replace fr n (ref v)) pd.params argv
   with Invalid_argument _ ->
     error pd.ppos "arity mismatch calling %s" pd.pname);
  List.iter
    (fun l ->
      let v =
        match l.linit with
        | Some e -> eval st fr e
        | None -> init_value st l.lty
      in
      Hashtbl.replace fr l.lname (ref v))
    pd.locals;
  try
    exec_stmts st fr pd.body;
    if pd.ret <> None then
      error pd.ppos "procedure %s fell off the end without RETURN" pd.pname;
    None
  with Return_value v -> v

and exec_stmts st fr stmts = List.iter (exec st fr) stmts

and exec st fr s =
  tick st s.spos;
  match s.sdesc with
  | Assign (d, e) -> (
    let v = eval st fr e in
    match d.desc with
    | Var x -> (
      match Hashtbl.find_opt fr x with
      | Some r -> r := v
      | None -> (
        match Hashtbl.find_opt st.globals x with
        | Some r ->
          tracked_write st d.note.tracked
            (fun () -> Hashtbl.find_opt st.global_nodes x)
            (fun () -> global_node st x)
            !r v
            (fun () -> r := v)
        | None -> error d.pos "unbound variable %s" x))
    | Field (b, f) -> (
      let o = obj_of b.pos (eval st fr b) in
      match Hashtbl.find_opt o.fields f with
      | Some r ->
        tracked_write st d.note.tracked
          (fun () -> Hashtbl.find_opt st.field_nodes (o.oid, f))
          (fun () -> field_node st o f)
          !r v
          (fun () -> r := v)
      | None -> error d.pos "object %s#%d has no field %s" o.cls o.oid f)
    | Index (b, i) ->
      let a = arr_of b.pos (eval st fr b) in
      let idx = int_of i.pos (eval st fr i) in
      let r = elem_slot d.pos a idx in
      tracked_write st d.note.tracked
        (fun () -> Hashtbl.find_opt st.elem_nodes (a.aid, idx))
        (fun () -> elem_node st a idx)
        !r v
        (fun () -> r := v)
    | _ -> error d.pos "bad assignment target")
  | Call_stmt e -> (
    match e.desc with
    | Call (callee, args) -> ignore (eval_call st fr e.pos callee args)
    | _ -> error e.pos "expression is not a statement")
  | If (branches, els) ->
    let rec go = function
      | [] -> exec_stmts st fr els
      | (c, body) :: rest ->
        if bool_of c.pos (eval st fr c) then exec_stmts st fr body else go rest
    in
    go branches
  | While (c, body) ->
    while bool_of c.pos (eval st fr c) do
      exec_stmts st fr body
    done
  | Repeat (body, c) ->
    let continue_ = ref true in
    while !continue_ do
      exec_stmts st fr body;
      if bool_of c.pos (eval st fr c) then continue_ := false
    done
  | For (v, lo, hi, body) ->
    let lo = int_of lo.pos (eval st fr lo) in
    let hi = int_of hi.pos (eval st fr hi) in
    let r = ref (VInt lo) in
    let shadowed = Hashtbl.find_opt fr v in
    Hashtbl.replace fr v r;
    for i = lo to hi do
      r := VInt i;
      exec_stmts st fr body
    done;
    (match shadowed with
    | Some old -> Hashtbl.replace fr v old
    | None -> Hashtbl.remove fr v)
  | Return e -> raise (Return_value (Option.map (eval st fr) e))

let state_engine st = st.eng

(* ------------------------------------------------------------------ *)
(* Whole-module execution                                              *)
(* ------------------------------------------------------------------ *)

type outcome = {
  output : string;
  error : string option;
  steps : int;
  engine_stats : Engine.stats;
  graph_stats : Depgraph.Graph.stats;
}

let init_state ?fuel ?default_strategy ?partitioning ?telemetry ?metrics
    ?fault_seed ?audit ?domains (env : Tc.env) (analysis : Analysis.result) =
  (* [domains]: settle with the level-synchronized parallel evaluator on
     that many lanes (1 = parallel machinery, caller's lane only) *)
  let scheduling =
    Option.map (fun d -> Engine.Parallel { domains = d }) domains
  in
  let eng =
    Engine.create ?default_strategy ?scheduling ?partitioning
      ?self_audit:audit ()
  in
  Engine.set_telemetry eng telemetry;
  (* metrics before the fault injector: injectors resolve their counter
     from the engine's registry at install time *)
  Engine.set_metrics eng metrics;
  (match (telemetry, metrics) with
  | Some tm, Some _ -> Alphonse.Telemetry.set_metrics tm metrics
  | _ -> ());
  (match fault_seed with
  | Some seed -> ignore (Alphonse.Faults.install_seeded eng ~seed ())
  | None -> ());
  let st =
    {
      env;
      analysis;
      eng;
      globals = Hashtbl.create 16;
      global_nodes = Hashtbl.create 16;
      field_nodes = Hashtbl.create 64;
      elem_nodes = Hashtbl.create 64;
      funcs = Hashtbl.create 8;
      out = Buffer.create 256;
      next_oid = 0;
      steps = 0;
      fuel;
    }
  in
  List.iter
    (fun (g : global_decl) ->
      Hashtbl.replace st.globals g.gname (ref (init_value st g.gty)))
    env.m.globals;
  let fr : frame = Hashtbl.create 1 in
  List.iter
    (fun (g : global_decl) ->
      match g.ginit with
      | Some e -> Hashtbl.replace st.globals g.gname (ref (eval st fr e))
      | None -> ())
    env.m.globals;
  st

(** Run the module body under Alphonse execution. *)
let run ?fuel ?default_strategy ?partitioning ?telemetry ?metrics ?fault_seed
    ?audit ?domains (env : Tc.env) : outcome =
  let analysis = Analysis.analyze env in
  match
    init_state ?fuel ?default_strategy ?partitioning ?telemetry ?metrics
      ?fault_seed ?audit ?domains env analysis
  with
  | exception Runtime_error (msg, p) ->
    {
      output = "";
      error = Some (Fmt.str "%a: %s" pp_pos p msg);
      steps = 0;
      engine_stats = Engine.stats (Engine.create ());
      graph_stats = Depgraph.Graph.stats (Depgraph.Graph.create ());
    }
  | st -> (
    let finish error =
      {
        output = Buffer.contents st.out;
        error;
        steps = st.steps;
        engine_stats = Engine.stats st.eng;
        graph_stats = Engine.graph_stats st.eng;
      }
    in
    let fr : frame = Hashtbl.create 8 in
    match exec_stmts st fr env.m.main with
    | () -> finish None
    | exception Runtime_error (msg, p) ->
      finish (Some (Fmt.str "%a: %s" pp_pos p msg))
    | exception Return_value _ -> finish (Some "RETURN outside a procedure")
    | exception Engine.Audit_failure errs ->
      finish (Some (Fmt.str "audit failure: %s" (String.concat "; " errs)))
    | exception Alphonse.Faults.Injected site ->
      finish (Some (Fmt.str "injected fault at %s escaped recovery" site)))
