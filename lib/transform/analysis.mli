(** Static analysis for the Alphonse transformation.

    {b Limiting runtime checks (§6.1).} {!analyze} computes which program
    sites need the access/modify/call instrumentation at all, by a
    reachability fixed point over the call graph seeded at the
    incremental procedures (method calls resolve to every override in the
    static receiver's subtree). Locals and parameters are never
    instrumented (stack storage, per the TOP restriction); a global or
    field is instrumented only if reachable incremental code may touch
    it; a call site only if its resolved target may carry a pragma. The
    results are written into the AST [note] fields that
    {!Incr_interp} and [Lang.Pretty.pp_module ~marks:true] consult.

    {b Static graph partitioning (§6.3).} {!connectivity} reports the
    connected components of the type connectivity graph — the static
    partition seed the paper describes; the engine's dynamic union–find
    refinement subsumes it for correctness. *)

type site_stats = {
  tracked_reads : int;
  untracked_reads : int;
  tracked_writes : int;
  untracked_writes : int;
  tracked_calls : int;
  untracked_calls : int;
}

type result = {
  incremental_procs : (string, Lang.Ast.pragma) Hashtbl.t;
      (** implementing procedure ↦ its effective pragma *)
  reachable_procs : (string, unit) Hashtbl.t;
      (** procedures reachable from incremental code (including it) *)
  tracked_globals : (string, unit) Hashtbl.t;
  tracked_fields : (string, unit) Hashtbl.t;
  arrays_tracked : bool;
      (** reachable incremental code subscripts some array (coarse:
          elements are not distinguished per array) *)
  stats : site_stats;
}

val analyze : ?sharpen:bool -> Lang.Typecheck.env -> result
(** Run the analysis and mark every site note in the module. With
    [sharpen] (the default), the reachability result is refined by the
    interprocedural effect analysis ([Analyze.Effects]): a global, field
    or the array pool stays tracked only if incremental code may
    (transitively) read it {e and} some code may write it — otherwise no
    instance can ever observe a change there and the instrumentation is
    dropped. [~sharpen:false] reproduces the pure reachability
    analysis. *)

val pp_stats : Format.formatter -> site_stats -> unit

val connectivity : Lang.Typecheck.env -> result -> (string * int) list
(** Static partition components over ["type:T"], ["global:g"] and
    ["proc:p"] members; equal ids mean one component. Sorted by name. *)

val dispatch_targets :
  Lang.Typecheck.env -> string -> string -> Lang.Typecheck.method_info list
(** Every implementation a call with the given static receiver class and
    method name can dispatch to. *)

val method_may_be_incremental : Lang.Typecheck.env -> string -> string -> bool
