(** The Alphonse execution of a transformed program (§5, §8): an
    interpreter over the same AST as [Lang.Interp] with the three
    transformation templates realized against the incremental engine —
    tracked reads are [access] (Algorithm 3), tracked writes are [modify]
    (Algorithm 4), and calls resolving to maintained/cached procedures go
    through argument tables ([call], Algorithm 5).

    Storage↔node correspondence uses side tables keyed by global name,
    (object id, field) and (array id, index) — the paper's "at the
    expense of a level of indirection" variant of nodeptr fields (§5).
    Which sites are instrumented at all comes from {!Analysis} (§6.1);
    whether a call is incremental is decided from the dynamically
    dispatched target's pragma, like the paper's [tableptr(p) # NIL]
    test. *)

exception Runtime_error of string * Lang.Ast.pos

type state
(** Mutable execution state: the engine, globals and their nodes, the
    node side tables, the per-procedure argument tables, output. *)

type frame = (string, Lang.Value.value ref) Hashtbl.t

type outcome = {
  output : string;
  error : string option;
  steps : int;
  engine_stats : Alphonse.Engine.stats;
  graph_stats : Depgraph.Graph.stats;
}

val run :
  ?fuel:int ->
  ?default_strategy:Alphonse.Engine.strategy ->
  ?partitioning:bool ->
  ?telemetry:Alphonse.Telemetry.t ->
  ?metrics:Alphonse.Metrics.t ->
  ?fault_seed:int ->
  ?audit:bool ->
  ?domains:int ->
  Lang.Typecheck.env ->
  outcome
(** Run the module body under Alphonse execution (the analysis is run
    first). Theorem 5.1: [output] equals the conventional
    [Lang.Interp.run] output. [telemetry] attaches a structured recorder
    to the engine for the whole run (Chrome-trace export, profiles,
    provenance — see {!Alphonse.Telemetry}). [metrics] attaches a
    metrics registry ({!Alphonse.Metrics}) to the engine — and, when a
    recorder is also given, to it (ring-overflow counting) — before any
    instrumented work runs.

    [fault_seed] installs a seeded fault injector
    ({!Alphonse.Faults.install_seeded}) for the whole run: engine
    decision points occasionally raise, exercising the recovery paths;
    incremental calls are retried once after an injected fault. [audit]
    enables the per-step invariant auditor ({!Alphonse.Audit}); a
    violation is reported through [error].

    [domains] selects level-synchronized parallel settling
    ([Engine.Parallel]) on that many concurrent lanes — Theorem 5.1
    holds under every domain count; [1] exercises the parallel
    machinery on the caller's lane only. Omitted: serial
    creation-order settling. *)

(** {1 Internal entry points (the CLI's [graph] command, benches)} *)

val init_state :
  ?fuel:int ->
  ?default_strategy:Alphonse.Engine.strategy ->
  ?partitioning:bool ->
  ?telemetry:Alphonse.Telemetry.t ->
  ?metrics:Alphonse.Metrics.t ->
  ?fault_seed:int ->
  ?audit:bool ->
  ?domains:int ->
  Lang.Typecheck.env ->
  Analysis.result ->
  state

val exec_stmts : state -> frame -> Lang.Ast.stmt list -> unit

val state_engine : state -> Alphonse.Engine.t
(** The engine behind a state, for inspection (DOT dumps, stats). *)
