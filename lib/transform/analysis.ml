(** Static analysis for the Alphonse transformation.

    {b Limiting runtime checks (§6.1).} The uniform insertion of
    access/modify/call tests would tax every operation in the program; the
    paper uses dataflow analysis to identify the sites where the test's
    outcome is statically known. Here:

    - Local variables and parameters are stack storage; by the TOP
      restriction no Alphonse procedure can retain dependencies on them,
      so they are never instrumented.
    - A {e global} is instrumented only if some procedure reachable from
      an incremental procedure may access it.
    - A {e field} is instrumented only if reachable incremental code may
      access a field of that name.
    - A {e call site} is instrumented only if its static callee — or, for
      method calls, {e any} override that dynamic dispatch could select —
      is a maintained or cached procedure.

    The analysis is a reachability fixed point over the call graph, with
    method calls resolved to every implementation in the static receiver
    type's subtree (sound for our single-dispatch language), {e sharpened}
    by the interprocedural effect analysis of [Analyze.Effects]: a
    location accessed by reachable incremental code is still untracked
    when no incremental instance can ever observe a change to it — it is
    never written anywhere, or never (transitively) read by an
    incremental procedure. Pass [~sharpen:false] for the pure
    reachability analysis.

    {b Static graph partitioning (§6.3).} [connectivity] builds the type
    connectivity graph (an edge when one object type has a pointer field
    that can reach another) augmented with globals and incremental
    procedures, and returns its connected components — the static
    partition assignment the paper uses to seed the dynamic union–find
    refinement. The runtime engine's union–find subsumes it for
    correctness; the component report is exposed for diagnostics
    ([alphonsec analyze]). *)

open Lang.Ast
module Tc = Lang.Typecheck

type site_stats = {
  tracked_reads : int;
  untracked_reads : int;
  tracked_writes : int;
  untracked_writes : int;
  tracked_calls : int;
  untracked_calls : int;
}

type result = {
  incremental_procs : (string, pragma) Hashtbl.t;
      (** implementing procedure ↦ its effective pragma *)
  reachable_procs : (string, unit) Hashtbl.t;
  tracked_globals : (string, unit) Hashtbl.t;
  tracked_fields : (string, unit) Hashtbl.t;
  arrays_tracked : bool;
      (** some procedure reachable from incremental code subscripts an
          array; element accesses are then instrumented (coarse: elements
          are not distinguished by which array they belong to) *)
  stats : site_stats;
}

(* Call-graph resolution lives in [Analyze.Callgraph]; re-exported here
   as the stable public surface of the transformation's analysis. *)
let dispatch_targets = Analyze.Callgraph.dispatch_targets
let method_may_be_incremental = Analyze.Callgraph.method_may_be_incremental

(* Iterate over the direct callees (procedure names) and accessed
   globals/fields of one procedure body. *)
let iter_proc_accesses env (pd : proc_decl) ~on_call ~on_global ~on_field
    ~on_array =
  let locals = Hashtbl.create 8 in
  List.iter (fun (n, _) -> Hashtbl.replace locals n ()) pd.params;
  List.iter (fun l -> Hashtbl.replace locals l.lname ()) pd.locals;
  let rec expr e =
    (match e.desc with
    | Var x -> if not (Hashtbl.mem locals x) then on_global x
    | Field (_, f) -> on_field f
    | Index _ -> on_array ()
    | Call (Cproc p, _) -> on_call p
    | Call (Cmethod (o, m), _) -> (
      match o.note.ty with
      | Some (Tobj cls) ->
        List.iter
          (fun (mi : Tc.method_info) -> on_call mi.mi_impl)
          (dispatch_targets env cls m)
      | _ -> ())
    | Int _ | Bool _ | Text _ | Nil | New _ | Binop _ | Unop _ | Unchecked _
      ->
      ());
    match e.desc with
    | Field (b, _) -> expr b
    | Index (b, i) ->
      expr b;
      expr i
    | Call (callee, args) ->
      (match callee with Cmethod (o, _) -> expr o | Cproc _ -> ());
      List.iter expr args
    | Binop (_, a, b) ->
      expr a;
      expr b
    | Unop (_, a) | Unchecked a -> expr a
    | Int _ | Bool _ | Text _ | Nil | Var _ | New _ -> ()
  in
  let rec stmt s =
    match s.sdesc with
    | Assign (d, e) ->
      (match d.desc with
      | Var x -> if not (Hashtbl.mem locals x) then on_global x
      | Field (b, f) ->
        on_field f;
        expr b
      | Index (b, i) ->
        on_array ();
        expr b;
        expr i
      | _ -> ());
      expr e
    | Call_stmt e -> expr e
    | If (branches, els) ->
      List.iter
        (fun (c, body) ->
          expr c;
          List.iter stmt body)
        branches;
      List.iter stmt els
    | While (c, body) ->
      expr c;
      List.iter stmt body
    | Repeat (body, c) ->
      List.iter stmt body;
      expr c
    | For (v, a, b, body) ->
      Hashtbl.replace locals v ();
      expr a;
      expr b;
      List.iter stmt body
    | Return (Some e) -> expr e
    | Return None -> ()
  in
  List.iter (fun l -> Option.iter expr l.linit) pd.locals;
  List.iter stmt pd.body

(* ------------------------------------------------------------------ *)
(* The analysis                                                        *)
(* ------------------------------------------------------------------ *)

let analyze ?(sharpen = true) (env : Tc.env) : result =
  let m = env.m in
  (* 1. the incremental procedures: cached procs + maintained impls *)
  let incremental_procs = Analyze.Callgraph.incremental_procs env in
  (* 2. reachability from incremental procedures *)
  let reachable_procs = Hashtbl.create 16 in
  let work = Queue.create () in
  Hashtbl.iter
    (fun p _ ->
      Hashtbl.replace reachable_procs p ();
      Queue.add p work)
    incremental_procs;
  let tracked_globals = Hashtbl.create 8 in
  let tracked_fields = Hashtbl.create 8 in
  let arrays_tracked = ref false in
  while not (Queue.is_empty work) do
    let pname = Queue.pop work in
    match Hashtbl.find_opt env.procs pname with
    | None -> ()
    | Some pd ->
      iter_proc_accesses env pd
        ~on_call:(fun callee ->
          if
            (not (Hashtbl.mem reachable_procs callee))
            && Hashtbl.mem env.procs callee
          then begin
            Hashtbl.replace reachable_procs callee ();
            Queue.add callee work
          end)
        ~on_global:(fun g -> Hashtbl.replace tracked_globals g ())
        ~on_field:(fun f -> Hashtbl.replace tracked_fields f ())
        ~on_array:(fun () -> arrays_tracked := true)
  done;
  (* 2b. sharpen with the interprocedural effect analysis: a location
     needs instrumentation only if some incremental instance can observe
     a change to it — i.e. it is (transitively) READ by an incremental
     procedure AND WRITTEN somewhere in the program. A never-written
     location cannot invalidate (initializers run before any instance
     exists), and a location no incremental execution reads acquires no
     dependency edges for a write to fire. The reachability sets of step
     2 use accesses (reads or writes), so this strictly shrinks them. *)
  if sharpen then begin
    let module E = Analyze.Effects in
    let eff = E.compute env in
    let incr_reads =
      Hashtbl.fold
        (fun p _ acc -> E.Locs.union acc (E.summary eff p).E.reads)
        incremental_procs E.Locs.empty
    in
    let all_writes =
      List.fold_left
        (fun acc p -> E.Locs.union acc (E.direct eff p).E.writes)
        E.Locs.empty (E.procs eff)
    in
    let keep l = E.Locs.mem l incr_reads && E.Locs.mem l all_writes in
    let drop_unless mk tbl =
      let dead =
        Hashtbl.fold (fun k () acc -> if keep (mk k) then acc else k :: acc)
          tbl []
      in
      List.iter (Hashtbl.remove tbl) dead
    in
    drop_unless (fun g -> E.Global g) tracked_globals;
    drop_unless (fun f -> E.Field f) tracked_fields;
    arrays_tracked := !arrays_tracked && keep E.Arrays
  end;
  let arrays_tracked = !arrays_tracked in
  (* 3. mark every site in the module *)
  let tr = ref 0 and ur = ref 0 and tw = ref 0 and uw = ref 0 in
  let tc = ref 0 and uc = ref 0 in
  let mark_read e =
    match e.desc with
    | Var x ->
      e.note.tracked <- e.note.is_global && Hashtbl.mem tracked_globals x;
      if e.note.tracked then incr tr else incr ur
    | Field (_, f) ->
      e.note.tracked <- Hashtbl.mem tracked_fields f;
      if e.note.tracked then incr tr else incr ur
    | Index _ ->
      e.note.tracked <- arrays_tracked;
      if e.note.tracked then incr tr else incr ur
    | _ -> ()
  in
  let mark_call e =
    match e.desc with
    | Call (Cproc "Print", _) ->
      e.note.tracked <- false;
      incr uc
    | Call (Cproc p, _) ->
      e.note.tracked <- Hashtbl.mem incremental_procs p;
      if e.note.tracked then incr tc else incr uc
    | Call (Cmethod (o, mname), _) ->
      (e.note.tracked <-
        (match o.note.ty with
        | Some (Tobj cls) -> method_may_be_incremental env cls mname
        | _ -> true));
      if e.note.tracked then incr tc else incr uc
    | _ -> ()
  in
  iter_exprs
    (fun e ->
      match e.desc with
      | Var _ | Field _ | Index _ -> mark_read e
      | Call _ -> mark_call e
      | _ -> ())
    m;
  (* writes: assignment designators *)
  let mark_write d =
    (match d.desc with
    | Var x ->
      d.note.tracked <- d.note.is_global && Hashtbl.mem tracked_globals x
    | Field (_, f) -> d.note.tracked <- Hashtbl.mem tracked_fields f
    | Index _ -> d.note.tracked <- arrays_tracked
    | _ -> ());
    if d.note.tracked then incr tw else incr uw
  in
  let rec stmt s =
    match s.sdesc with
    | Assign (d, _) -> mark_write d
    | If (branches, els) ->
      List.iter (fun (_, body) -> List.iter stmt body) branches;
      List.iter stmt els
    | While (_, body) | Repeat (body, _) | For (_, _, _, body) ->
      List.iter stmt body
    | Call_stmt _ | Return _ -> ()
  in
  List.iter
    (fun (pd : proc_decl) -> List.iter stmt pd.body)
    m.procs;
  List.iter stmt m.main;
  {
    incremental_procs;
    reachable_procs;
    tracked_globals;
    tracked_fields;
    arrays_tracked;
    stats =
      {
        tracked_reads = !tr;
        untracked_reads = !ur;
        tracked_writes = !tw;
        untracked_writes = !uw;
        tracked_calls = !tc;
        untracked_calls = !uc;
      };
  }

let pp_stats ppf (s : site_stats) =
  Fmt.pf ppf
    "@[<v>reads:  %d tracked / %d untracked@,\
     writes: %d tracked / %d untracked@,\
     calls:  %d tracked / %d untracked@]"
    s.tracked_reads s.untracked_reads s.tracked_writes s.untracked_writes
    s.tracked_calls s.untracked_calls

(* ------------------------------------------------------------------ *)
(* Static connectivity partitioning (§6.3)                             *)
(* ------------------------------------------------------------------ *)

(** Connected components of the type connectivity graph, extended with
    tracked globals (by their types) and incremental procedures (by the
    types they mention). Returns a map from component member name —
    ["type:T"], ["global:g"], ["proc:p"] — to a component id. *)
let connectivity (env : Tc.env) (r : result) : (string * int) list =
  let module Uf = Depgraph.Union_find in
  let elts : (string, int Uf.elt) Hashtbl.t = Hashtbl.create 16 in
  let elt name =
    match Hashtbl.find_opt elts name with
    | Some e -> e
    | None ->
      (* the creation index doubles as the component id: union keeps the
         surviving root's payload *)
      let e = Uf.make (Hashtbl.length elts) in
      Hashtbl.replace elts name e;
      e
  in
  let link a b = ignore (Uf.union ~merge:(fun x _ -> x) (elt a) (elt b)) in
  (* type ↦ type edges through object-typed fields *)
  Hashtbl.iter
    (fun tname (ci : Tc.class_info) ->
      ignore (elt ("type:" ^ tname));
      (match ci.ci_super with
      | Some s -> link ("type:" ^ tname) ("type:" ^ s)
      | None -> ());
      List.iter
        (fun (_, fty) ->
          let rec go = function
            | Tobj t2 -> link ("type:" ^ tname) ("type:" ^ t2)
            | Tarray (_, _, t) -> go t
            | Tint | Tbool | Ttext -> ()
          in
          go fty)
        ci.ci_fields)
    env.classes;
  (* globals attach to their type's component (arrays via their base
     element type) *)
  let rec base_ty = function
    | Tarray (_, _, t) -> base_ty t
    | (Tint | Tbool | Ttext | Tobj _) as t -> t
  in
  Hashtbl.iter
    (fun g _ ->
      match Option.map base_ty (Hashtbl.find_opt env.globals g) with
      | Some (Tobj t) -> link ("global:" ^ g) ("type:" ^ t)
      | Some _ -> ignore (elt ("global:" ^ g))
      | None -> ())
    r.tracked_globals;
  (* incremental procedures attach to every object type they mention *)
  Hashtbl.iter
    (fun pname _ ->
      match Hashtbl.find_opt env.procs pname with
      | None -> ()
      | Some pd ->
        ignore (elt ("proc:" ^ pname));
        List.iter
          (fun (_, t) ->
            match base_ty t with
            | Tobj tn -> link ("proc:" ^ pname) ("type:" ^ tn)
            | Tint | Tbool | Ttext | Tarray _ -> ())
          pd.params;
        iter_proc_accesses env pd
          ~on_call:(fun _ -> ())
          ~on_global:(fun g ->
            if Hashtbl.mem r.tracked_globals g then
              link ("proc:" ^ pname) ("global:" ^ g))
          ~on_field:(fun _ -> ())
          ~on_array:(fun () -> ()))
    r.incremental_procs;
  Hashtbl.fold (fun name e acc -> (name, Uf.payload e) :: acc) elts []
  |> List.sort compare
