(** Type checker for Alphonse-L.

    Builds the class table (fields and methods with inheritance and
    overrides applied), checks every procedure body and the module body,
    and fills in the [note] fields the interpreters and the §6.1 analysis
    rely on ([ty], [is_global]).

    Pragma obligations checked here: [(*CACHED*)] only on value-returning
    procedures, override pragmas consistent with the overridden method,
    and implementing procedures signature-compatible with their method
    declarations (receiver first, paper §3.2). The semantic restrictions
    DET/TOP/OBS of §3.5 are, as in the paper, the programmer's proof
    obligation — "not automatically enforced by the Alphonse compiler". *)

open Ast

type method_info = {
  mi_name : string;
  mi_params : (string * ty) list;
  mi_ret : ty option;
  mi_impl : string;  (** implementing procedure for this class *)
  mi_pragma : pragma option;
  mi_origin : string;  (** class that introduced the method *)
  mi_pos : pos;
      (** declaration that bound [mi_impl]: the METHODS entry, or the
          OVERRIDES entry that replaced it — the anchor for diagnostics
          about this binding *)
}

type class_info = {
  ci_name : string;
  ci_super : string option;
  ci_fields : (string * ty) list;  (** inherited first, in order *)
  ci_methods : (string * method_info) list;  (** overrides applied *)
}

type env = {
  classes : (string, class_info) Hashtbl.t;
  procs : (string, proc_decl) Hashtbl.t;
  globals : (string, ty) Hashtbl.t;
  m : module_;
}

type error = { msg : string; epos : pos }

let pp_error ppf e = Fmt.pf ppf "%a: %s" pp_pos e.epos e.msg

exception Fatal of error

exception Proper_call of pos
(** Raised while checking a call to a proper (non-value-returning)
    procedure; callers in value position turn it into an error, statement
    position accepts it. *)

let fatal epos fmt = Fmt.kstr (fun msg -> raise (Fatal { msg; epos })) fmt

(* ------------------------------------------------------------------ *)
(* Class table                                                         *)
(* ------------------------------------------------------------------ *)

let class_info env name = Hashtbl.find_opt env.classes name

let rec is_subclass env sub super =
  sub = super
  ||
  match class_info env sub with
  | Some { ci_super = Some s; _ } -> is_subclass env s super
  | _ -> false

(* nil-aware expression types *)
type ety = Known of ty | Nil_ty

let subsumes env ~expected actual =
  match (expected, actual) with
  | _, Nil_ty -> (match expected with Tobj _ -> true | _ -> false)
  | Tobj sup, Known (Tobj sub) -> is_subclass env sub sup
  | t, Known t' -> t = t'

let pp_ety ppf = function
  | Known t -> pp_ty ppf t
  | Nil_ty -> Fmt.string ppf "NIL"

let lookup_method env cls name =
  match class_info env cls with
  | None -> None
  | Some ci -> List.assoc_opt name ci.ci_methods

let lookup_field env cls name =
  match class_info env cls with
  | None -> None
  | Some ci -> List.assoc_opt name ci.ci_fields

(* Build class_info for every type declaration, checking inheritance. *)
let build_classes errors m =
  let classes = Hashtbl.create 16 in
  let err epos fmt = Fmt.kstr (fun msg -> errors := { msg; epos } :: !errors) fmt in
  (* existence and duplicate checks first *)
  let seen = Hashtbl.create 16 in
  List.iter
    (fun td ->
      if Hashtbl.mem seen td.tname then
        err td.tpos "duplicate type %s" td.tname
      else Hashtbl.add seen td.tname td)
    m.types;
  (* detect inheritance cycles with a DFS *)
  let rec super_chain acc td =
    match td.super with
    | None -> List.rev (td.tname :: acc)
    | Some s ->
      if List.mem td.tname acc then begin
        err td.tpos "inheritance cycle at %s" td.tname;
        List.rev acc
      end
      else (
        match Hashtbl.find_opt seen s with
        | None ->
          err td.tpos "unknown supertype %s of %s" s td.tname;
          List.rev (td.tname :: acc)
        | Some std -> super_chain (td.tname :: acc) std)
  in
  (* build bottom-up along each chain, memoized in [classes] *)
  let rec build td =
    match Hashtbl.find_opt classes td.tname with
    | Some ci -> ci
    | None ->
      let base =
        match td.super with
        | None -> { ci_name = ""; ci_super = None; ci_fields = []; ci_methods = [] }
        | Some s -> (
          match Hashtbl.find_opt seen s with
          | Some std when not (List.mem td.tname (super_chain [] std)) ->
            build std
          | _ ->
            { ci_name = ""; ci_super = None; ci_fields = []; ci_methods = [] })
      in
      (* fields: no shadowing allowed *)
      let fields =
        List.fold_left
          (fun acc f ->
            if List.mem_assoc f.fname acc then begin
              err f.fpos "field %s shadows an inherited or duplicate field"
                f.fname;
              acc
            end
            else acc @ [ (f.fname, f.fty) ])
          base.ci_fields td.fields
      in
      (* new methods *)
      let methods =
        List.fold_left
          (fun acc (md : method_decl) ->
            if List.mem_assoc md.mname acc then begin
              err md.mpos "method %s already exists (use OVERRIDES)" md.mname;
              acc
            end
            else
              acc
              @ [
                  ( md.mname,
                    {
                      mi_name = md.mname;
                      mi_params = md.mparams;
                      mi_ret = md.mret;
                      mi_impl = md.mimpl;
                      mi_pragma = md.mpragma;
                      mi_origin = td.tname;
                      mi_pos = md.mpos;
                    } );
                ])
          base.ci_methods td.methods
      in
      (* overrides replace implementations *)
      let methods =
        List.fold_left
          (fun acc (od : override_decl) ->
            match List.assoc_opt od.oname acc with
            | None ->
              err od.opos "override of unknown method %s" od.oname;
              acc
            | Some mi ->
              let pragma =
                match od.opragma with Some p -> Some p | None -> mi.mi_pragma
              in
              List.map
                (fun (n, m) ->
                  if n = od.oname then
                    ( n,
                      { mi with mi_impl = od.oimpl; mi_pragma = pragma;
                        mi_pos = od.opos } )
                  else (n, m))
                acc)
          methods td.overrides
      in
      let ci =
        { ci_name = td.tname; ci_super = td.super; ci_fields = fields;
          ci_methods = methods }
      in
      Hashtbl.replace classes td.tname ci;
      ci
  in
  List.iter (fun td -> ignore (build td)) m.types;
  classes

(* ------------------------------------------------------------------ *)
(* Expression and statement checking                                   *)
(* ------------------------------------------------------------------ *)

type scope = {
  env : env;
  locals : (string, ty) Hashtbl.t;  (** params, locals, FOR variables *)
  ret : ty option;  (** enclosing procedure's return type *)
}

let builtin_procs = [ "Print" ]

let rec valid_ty env epos = function
  | Tobj n when not (Hashtbl.mem env.classes n) ->
    fatal epos "unknown type %s" n
  | Tarray (lo, hi, t) ->
    if lo > hi then fatal epos "empty array range [%d..%d]" lo hi;
    valid_ty env epos t
  | Tint | Tbool | Ttext | Tobj _ -> ()

let rec check_expr sc e : ety =
  let env = sc.env in
  let t =
    match e.desc with
    | Int _ -> Known Tint
    | Bool _ -> Known Tbool
    | Text _ -> Known Ttext
    | Nil -> Nil_ty
    | Var x -> (
      match Hashtbl.find_opt sc.locals x with
      | Some t -> Known t
      | None -> (
        match Hashtbl.find_opt env.globals x with
        | Some t ->
          e.note.is_global <- true;
          Known t
        | None -> fatal e.pos "unknown variable %s" x))
    | Field (b, f) -> (
      match check_expr sc b with
      | Known (Tobj cls) -> (
        match lookup_field env cls f with
        | Some t -> Known t
        | None -> fatal e.pos "type %s has no field %s" cls f)
      | t -> fatal e.pos "field access on non-object value of type %a" pp_ety t)
    | Index (b, i) -> (
      match check_expr sc b with
      | Known (Tarray (_, _, elem)) ->
        require sc Tint i;
        Known elem
      | t -> fatal e.pos "subscript on non-array value of type %a" pp_ety t)
    | New cls ->
      if not (Hashtbl.mem env.classes cls) then
        fatal e.pos "NEW of unknown type %s" cls;
      Known (Tobj cls)
    | Call (Cproc "Print", args) ->
      (* builtin: accepts any number of arguments of any type, returns
         nothing, and is never incremental *)
      List.iter (fun a -> ignore (check_value_expr sc a)) args;
      e.note.tracked <- false;
      raise (Proper_call e.pos)
    | Call (Cproc p, args) -> (
      match Hashtbl.find_opt env.procs p with
      | None -> fatal e.pos "unknown procedure %s" p
      | Some pd ->
        check_args sc e.pos p pd.params args;
        (match pd.ret with
        | Some t -> Known t
        | None -> raise (Proper_call e.pos)))
    | Call (Cmethod (o, mname), args) -> (
      match check_expr sc o with
      | Known (Tobj cls) -> (
        match lookup_method env cls mname with
        | None -> fatal e.pos "type %s has no method %s" cls mname
        | Some mi ->
          check_args sc e.pos (cls ^ "." ^ mname) mi.mi_params args;
          (match mi.mi_ret with
          | Some t -> Known t
          | None -> raise (Proper_call e.pos)))
      | t -> fatal e.pos "method call on non-object value of type %a" pp_ety t)
    | Binop (op, a, b) -> check_binop sc e.pos op a b
    | Unop (Neg, a) ->
      require sc Tint a;
      Known Tint
    | Unop (Not, a) ->
      require sc Tbool a;
      Known Tbool
    | Unchecked a -> check_expr sc a
  in
  (match t with Known ty -> e.note.ty <- Some ty | Nil_ty -> ());
  t

and check_args sc epos what params args =
  if List.length params <> List.length args then
    fatal epos "%s expects %d argument(s), got %d" what (List.length params)
      (List.length args);
  List.iter2
    (fun (pname, pty) arg ->
      let at = check_expr sc arg in
      if not (subsumes sc.env ~expected:pty at) then
        fatal arg.pos "argument %s of %s expects %a, got %a" pname what pp_ty
          pty pp_ety at)
    params args

and require sc ty e =
  let t = check_expr sc e in
  if not (subsumes sc.env ~expected:ty t) then
    fatal e.pos "expected %a, got %a" pp_ty ty pp_ety t

and check_binop sc epos op a b =
  match op with
  | Add | Sub | Mul | Div | Mod ->
    require sc Tint a;
    require sc Tint b;
    Known Tint
  | Cat ->
    require sc Ttext a;
    require sc Ttext b;
    Known Ttext
  | And | Or ->
    require sc Tbool a;
    require sc Tbool b;
    Known Tbool
  | Lt | Le | Gt | Ge ->
    require sc Tint a;
    require sc Tint b;
    Known Tbool
  | Eq | Ne -> (
    let ta = check_expr sc a and tb = check_expr sc b in
    match (ta, tb) with
    | Nil_ty, Nil_ty -> Known Tbool
    | Nil_ty, Known (Tobj _) | Known (Tobj _), Nil_ty -> Known Tbool
    | Known (Tobj x), Known (Tobj y)
      when is_subclass sc.env x y || is_subclass sc.env y x ->
      Known Tbool
    | Known x, Known y when x = y -> Known Tbool
    | _ -> fatal epos "incomparable types %a and %a" pp_ety ta pp_ety tb)

(* A call used for its value must return one; a call used as a statement
   may be proper or value-returning (the value is discarded). *)
and check_value_expr sc e =
  match check_expr sc e with
  | t -> t
  | exception Proper_call p ->
    fatal p "proper procedure call used where a value is required"

let rec check_stmt sc s =
  match s.sdesc with
  | Assign (d, e) -> (
    match d.desc with
    | Var x ->
      let dt =
        match Hashtbl.find_opt sc.locals x with
        | Some t -> t
        | None -> (
          match Hashtbl.find_opt sc.env.globals x with
          | Some t ->
            d.note.is_global <- true;
            t
          | None -> fatal d.pos "unknown variable %s" x)
      in
      (match dt with
      | Tarray _ ->
        fatal s.spos "arrays cannot be assigned as a whole; assign elements"
      | Tint | Tbool | Ttext | Tobj _ -> ());
      d.note.ty <- Some dt;
      let et = check_value_expr sc e in
      if not (subsumes sc.env ~expected:dt et) then
        fatal s.spos "cannot assign %a to %s : %a" pp_ety et x pp_ty dt
    | Field (b, f) -> (
      match check_value_expr sc b with
      | Known (Tobj cls) -> (
        match lookup_field sc.env cls f with
        | None -> fatal d.pos "type %s has no field %s" cls f
        | Some ft ->
          (match ft with
          | Tarray _ ->
            fatal s.spos
              "arrays cannot be assigned as a whole; assign elements"
          | Tint | Tbool | Ttext | Tobj _ -> ());
          d.note.ty <- Some ft;
          let et = check_value_expr sc e in
          if not (subsumes sc.env ~expected:ft et) then
            fatal s.spos "cannot assign %a to field %s : %a" pp_ety et f pp_ty
              ft)
      | t -> fatal d.pos "field assignment on non-object of type %a" pp_ety t)
    | Index (b, i) -> (
      match check_value_expr sc b with
      | Known (Tarray (_, _, elem)) ->
        require sc Tint i;
        (match elem with
        | Tarray _ ->
          fatal s.spos
            "arrays cannot be assigned as a whole; assign elements"
        | Tint | Tbool | Ttext | Tobj _ -> ());
        d.note.ty <- Some elem;
        let et = check_value_expr sc e in
        if not (subsumes sc.env ~expected:elem et) then
          fatal s.spos "cannot assign %a to element of %a" pp_ety et pp_ty elem
      | t -> fatal d.pos "subscript assignment on non-array of type %a" pp_ety t)
    | _ -> fatal d.pos "left side of := must be a variable, field or element")
  | Call_stmt e -> (
    match e.desc with
    | Call _ -> ( match check_expr sc e with _ -> () | exception Proper_call _ -> ())
    | _ -> fatal s.spos "expression is not a statement")
  | If (branches, els) ->
    List.iter
      (fun (c, body) ->
        require sc Tbool c;
        List.iter (check_stmt sc) body)
      branches;
    List.iter (check_stmt sc) els
  | While (c, body) ->
    require sc Tbool c;
    List.iter (check_stmt sc) body
  | Repeat (body, c) ->
    List.iter (check_stmt sc) body;
    require sc Tbool c
  | For (v, lo, hi, body) ->
    require sc Tint lo;
    require sc Tint hi;
    let shadowed = Hashtbl.find_opt sc.locals v in
    Hashtbl.replace sc.locals v Tint;
    List.iter (check_stmt sc) body;
    (match shadowed with
    | Some t -> Hashtbl.replace sc.locals v t
    | None -> Hashtbl.remove sc.locals v)
  | Return None ->
    if sc.ret <> None then fatal s.spos "RETURN without a value"
  | Return (Some e) -> (
    match sc.ret with
    | None -> fatal s.spos "RETURN with a value in a proper procedure"
    | Some t ->
      let et = check_value_expr sc e in
      if not (subsumes sc.env ~expected:t et) then
        fatal s.spos "RETURN of %a, expected %a" pp_ety et pp_ty t)

(* ------------------------------------------------------------------ *)
(* Declaration checking                                                *)
(* ------------------------------------------------------------------ *)

let check_proc env (p : proc_decl) =
  let locals = Hashtbl.create 8 in
  List.iter
    (fun (n, t) ->
      valid_ty env p.ppos t;
      if Hashtbl.mem locals n then fatal p.ppos "duplicate parameter %s" n;
      Hashtbl.add locals n t)
    p.params;
  let sc = { env; locals; ret = p.ret } in
  List.iter
    (fun l ->
      valid_ty env l.lpos l.lty;
      if Hashtbl.mem locals l.lname then
        fatal l.lpos "duplicate local %s" l.lname;
      (match l.linit with
      | Some e ->
        let t = check_value_expr sc e in
        if not (subsumes env ~expected:l.lty t) then
          fatal l.lpos "initializer of %s has type %a, expected %a" l.lname
            pp_ety t pp_ty l.lty
      | None -> ());
      Hashtbl.add locals l.lname l.lty)
    p.locals;
  List.iter (check_stmt sc) p.body;
  (* cached procedures must return a value (we cache results, §3.3) *)
  match p.ppragma with
  | Some (Cached _) when p.ret = None ->
    fatal p.ppos "(*CACHED*) procedure %s must return a value" p.pname
  | Some (Maintained _) ->
    fatal p.ppos
      "(*MAINTAINED*) belongs on methods and overrides, not procedures (%s)"
      p.pname
  | _ -> ()

(* The implementing procedure of a method must take the receiver as its
   first parameter — typed as the declaring class or a superclass — then
   the declared parameters, and return the declared type. *)
let check_method_impl env cls (mi : method_info) epos =
  match Hashtbl.find_opt env.procs mi.mi_impl with
  | None -> fatal epos "method %s.%s implemented by unknown procedure %s" cls
              mi.mi_name mi.mi_impl
  | Some pd -> (
    (match pd.params with
    | (_, Tobj recv) :: rest ->
      if not (is_subclass env cls recv) then
        fatal epos
          "receiver of %s has type %s, which is not a superclass of %s"
          mi.mi_impl recv cls;
      if List.map snd rest <> List.map snd mi.mi_params then
        fatal epos "procedure %s does not match the parameters of method %s.%s"
          mi.mi_impl cls mi.mi_name
    | _ ->
      fatal epos "procedure %s must take the receiver as first parameter"
        mi.mi_impl);
    if pd.ret <> mi.mi_ret then
      fatal epos "procedure %s does not match the return type of method %s.%s"
        mi.mi_impl cls mi.mi_name)

let check (m : module_) : (env, error list) result =
  let errors = ref [] in
  let classes = build_classes errors m in
  let procs = Hashtbl.create 16 in
  let globals = Hashtbl.create 16 in
  let env = { classes; procs; globals; m } in
  (try
     List.iter
       (fun (p : proc_decl) ->
         if List.mem p.pname builtin_procs then
           fatal p.ppos "procedure %s shadows a builtin" p.pname;
         if Hashtbl.mem procs p.pname then
           fatal p.ppos "duplicate procedure %s" p.pname;
         Hashtbl.add procs p.pname p)
       m.procs;
     List.iter
       (fun g ->
         valid_ty env g.gpos g.gty;
         if Hashtbl.mem globals g.gname then
           fatal g.gpos "duplicate global %s" g.gname;
         Hashtbl.add globals g.gname g.gty)
       m.globals;
     (* field types valid *)
     Hashtbl.iter
       (fun _ ci ->
         List.iter (fun (_, t) -> valid_ty env no_pos t) ci.ci_fields)
       classes;
     (* method implementations *)
     List.iter
       (fun td ->
         match Hashtbl.find_opt classes td.tname with
         | None -> ()
         | Some ci ->
           List.iter
             (fun (_, mi) -> check_method_impl env td.tname mi td.tpos)
             ci.ci_methods)
       m.types;
     (* global initializers *)
     let gsc = { env; locals = Hashtbl.create 1; ret = None } in
     List.iter
       (fun g ->
         match g.ginit with
         | None -> ()
         | Some e ->
           let t = check_value_expr gsc e in
           if not (subsumes env ~expected:g.gty t) then
             fatal g.gpos "initializer of %s has type %a, expected %a" g.gname
               pp_ety t pp_ty g.gty)
       m.globals;
     (* procedure bodies *)
     List.iter (check_proc env) m.procs;
     (* module body *)
     let sc = { env; locals = Hashtbl.create 8; ret = None } in
     List.iter (check_stmt sc) m.main
   with Fatal e -> errors := e :: !errors);
  match !errors with [] -> Ok env | es -> Error (List.rev es)
