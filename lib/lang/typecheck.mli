(** Type checker for Alphonse-L.

    Builds the class table (fields and methods with inheritance and
    overrides applied), checks every procedure body and the module body,
    and fills the AST [note] fields the interpreters and the §6.1
    analysis rely on ([ty], [is_global]).

    Pragma obligations checked here: [(*CACHED*)] only on value-returning
    procedures, [(*MAINTAINED*)] only on methods/overrides, and
    implementing procedures signature-compatible with their method
    declarations (receiver first). The semantic restrictions DET/TOP/OBS
    of §3.5 remain, as in the paper, the programmer's proof obligation. *)

type method_info = {
  mi_name : string;
  mi_params : (string * Ast.ty) list;  (** excluding the receiver *)
  mi_ret : Ast.ty option;
  mi_impl : string;  (** implementing procedure for this class *)
  mi_pragma : Ast.pragma option;  (** effective pragma, overrides applied *)
  mi_origin : string;  (** class that introduced the method *)
  mi_pos : Ast.pos;
      (** declaration that bound [mi_impl] (METHODS or OVERRIDES entry) *)
}

type class_info = {
  ci_name : string;
  ci_super : string option;
  ci_fields : (string * Ast.ty) list;  (** inherited first, in order *)
  ci_methods : (string * method_info) list;  (** overrides applied *)
}

type env = {
  classes : (string, class_info) Hashtbl.t;
  procs : (string, Ast.proc_decl) Hashtbl.t;
  globals : (string, Ast.ty) Hashtbl.t;
  m : Ast.module_;
}
(** The checked module: the symbol tables plus the (note-annotated)
    tree. *)

type error = { msg : string; epos : Ast.pos }

val pp_error : Format.formatter -> error -> unit

val check : Ast.module_ -> (env, error list) result
(** Check a parsed module. On success the module's [note] fields are
    filled; on failure at least one positioned error is returned. *)

(** {1 Queries over a checked module} *)

val class_info : env -> string -> class_info option
val is_subclass : env -> string -> string -> bool
(** [is_subclass env sub super] — reflexive, transitive. *)

val lookup_method : env -> string -> string -> method_info option
(** Method lookup on a (runtime) class, inheritance applied. *)

val lookup_field : env -> string -> string -> Ast.ty option

val builtin_procs : string list
(** Names reserved for builtins ([Print]). *)
