(* The invariant auditor, as a user-facing module: the checks themselves
   live in Engine (they need the engine's internals); this is the stable
   entry point the tests, the CLI and CI audit jobs use. *)

let check = Engine.audit
let errors = Engine.audit_errors
let ok t = Engine.audit_errors t = []

let enable_per_step t = Engine.set_self_audit t true
let disable_per_step t = Engine.set_self_audit t false

let pp_report ppf t =
  match errors t with
  | [] -> Fmt.string ppf "audit: all invariants hold"
  | errs ->
    Fmt.pf ppf "@[<v>audit: %d invariant violation(s):@,%a@]"
      (List.length errs)
      Fmt.(list ~sep:cut (fun ppf e -> Fmt.pf ppf "  - %s" e))
      errs
