(** A reusable pool of OCaml 5 domains for level-synchronized parallel
    settling.

    A pool with [lanes = n] executes work on [n] concurrent lanes: the
    caller of {!run} participates as lane 0 and [n - 1] spawned domains
    serve the remaining lanes.  Domains are spawned once at {!create}
    and reused across every {!run} round — spawning a domain costs
    ~100µs, far more than one propagation level, so per-level spawning
    would erase the speedup the pool exists to deliver.

    {!run} is a barrier: it returns only when every task of the round
    has completed.  Tasks must not raise — a stray exception is
    swallowed (the engine's task wrappers record failures through their
    own channel).  The pool is not reentrant: do not call {!run} from
    inside a task. *)

type t

val create : lanes:int -> t
(** [create ~lanes] spawns [lanes - 1] worker domains (so [lanes = 1]
    spawns none and {!run} degenerates to a serial loop on the caller).
    [lanes] must be >= 1. *)

val shared : lanes:int -> t
(** [shared ~lanes] is a process-wide pool with [lanes] lanes, created
    on first use and reused forever after.  Prefer this over {!create}
    when pools are made per engine: OCaml caps the number of live
    domains (128 in 5.1) and worker domains stay alive until
    {!shutdown}, so code that builds many engines — fault sweeps spawn
    one per poke site — must share.  Rounds from different owners are
    serialized: a second {!run} blocks until the first completes. *)

val lanes : t -> int
(** Number of concurrent lanes, including the caller's. *)

val worker_ids : t -> int list
(** Domain ids of the spawned workers, in lane order (lane 1 first).
    Length is [lanes t - 1].  Stable for the lifetime of the pool; the
    engine uses these to route each worker domain to its write
    buffer. *)

type cells
(** Metrics cells for one owner's rounds: per-lane task counters
    ([pool_tasks_total{lane=...}]), a steal counter
    ([pool_steals_total] — tasks claimed by a worker lane rather than
    the calling domain) and the caller's barrier-wait histogram
    ([pool_barrier_wait_seconds]). Cells are passed per {!run} round
    rather than attached to the pool, because {!shared} pools serve
    several engines: the round's owner decides where its work is
    counted. *)

val make_cells : Metrics.t -> lanes:int -> cells

val run : ?cells:cells -> t -> (unit -> unit) list -> unit
(** Execute the tasks to completion, work-stealing style: idle lanes
    (including the caller) repeatedly grab the next unstarted task.
    Returns when all tasks have finished.  Exceptions escaping a task
    are discarded.  [cells] counts this round's per-lane work; the wait
    histogram records only rounds where the caller actually blocked at
    the barrier after draining its own lane. *)

val shutdown : t -> unit
(** Stop and join the worker domains.  The pool must not be used
    afterwards.  Idempotent. *)
