(** The engine invariant auditor.

    Checks, on demand, that an engine's metadata is coherent — the
    integrity properties the incremental semantics hinges on (the
    dependency information {e is} the correctness argument, §4):

    - dependency-graph link symmetry and live counts ([Graph.validate]);
    - call stack ↔ [on_stack] flags agree, no discarded node on the
      stack;
    - every queued node is present in its partition's inconsistent set,
      and that partition is flagged dirty and reachable from the dirty
      list (a mark can never be silently lost);
    - discarded nodes are fully detached (not queued, not on stack);
    - poisoned instances are not flagged consistent;
    - the edge-recording mask and settling flag are restored when idle.

    Use {!check} at interesting points, or {!enable_per_step} to audit
    after every settle step (the CI audit job runs the fuzz and
    fault-injection suites this way). *)

val check : Engine.t -> unit
(** @raise Engine.Audit_failure when any invariant does not hold; the
    payload lists every violation. *)

val errors : Engine.t -> string list
(** Non-raising {!check}: the violations, [[]] when coherent. *)

val ok : Engine.t -> bool

val enable_per_step : Engine.t -> unit
(** Audit after every settle step from now on (test/CI mode). *)

val disable_per_step : Engine.t -> unit

val pp_report : Format.formatter -> Engine.t -> unit
(** Runs the audit and formats a human-readable report. *)
