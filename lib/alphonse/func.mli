(** Incremental procedures: the [(*MAINTAINED*)] and [(*CACHED*)] pragmas.

    A [Func.t] is a procedure whose calls are incremental procedure
    instances (§3.3): each distinct argument gets a dependency-graph node
    and an argument-table entry caching its latest result (§4.2, the
    function-caching half of the system). Because every non-argument input
    is reached through {!Var} reads or nested {!call}s — which record
    dependency edges — the procedure need not be a combinator: it may read
    and even write global tracked state, the paper's extension of function
    caching.

    The same type implements both pragmas. A [CACHED] procedure is a pure
    function of its arguments and tracked reads; a [MAINTAINED] method
    additionally performs {!Var.set}s that re-establish its property (the
    writes are recorded as dependencies and re-applied on re-execution, per
    §4.3). The programmer's obligations are the paper's DET/TOP/OBS
    restrictions (§3.5): deterministic given identical formal and
    referenced arguments, no hidden untracked state, and eager-safe side
    effects.

    Recursive definitions receive the procedure itself as first parameter
    ({e open recursion}), so that inner calls are themselves incremental:

    {[
      let height =
        Func.create eng ~name:"height" (fun height t ->
          match t with
          | Leaf -> 0
          | Node n ->
            1 + max (Func.call height (Var.get n.left))
                    (Func.call height (Var.get n.right)))
    ]} *)

type ('a, 'b) t

val create :
  Engine.t ->
  ?name:string ->
  ?strategy:Engine.strategy ->
  ?policy:Policy.t ->
  ?static_deps:bool ->
  ?hash_arg:('a -> int) ->
  ?equal_arg:('a -> 'a -> bool) ->
  ?equal_result:('b -> 'b -> bool) ->
  ?pp_key:('a -> string) ->
  (('a, 'b) t -> 'a -> 'b) ->
  ('a, 'b) t
(** [create engine body] declares an incremental procedure.

    - [strategy] defaults to the engine's default strategy.
    - [policy] is the cache replacement policy (default {!Policy.Unbounded}).
    - [static_deps] asserts that every execution of an instance touches
      exactly the same tracked storage and callees, enabling the §6.2
      static-subgraph representation: dependency edges are recorded once
      and reused across re-executions. {b Unsound} if the assertion is
      false; leave [false] (the default) unless you can prove it.
    - [hash_arg]/[equal_arg] index the argument table (defaults:
      [Hashtbl.hash] and [( = )]; pass identity-based functions for object
      arguments).
    - [equal_result] is the quiescence test on cached results (default
      [( = )]): propagation stops at instances whose recomputed result is
      [equal_result] to the previous one.
    - [pp_key] names each instance ["fname(key)"] instead of ["fname"] in
      telemetry, profiles and DOT dumps, so the instances of one argument
      table are distinguishable. Observability only — never affects
      evaluation. *)

val call : ('a, 'b) t -> 'a -> 'b
(** Calls the procedure (Algorithm 5). Returns the cached result when the
    instance is consistent; otherwise (re)executes it, after propagating
    pending inconsistencies of its partition when called from the mutator.
    @raise Engine.Cycle if the instance (transitively) calls itself with
    the same argument. *)

val size : ('a, 'b) t -> int
(** Number of live argument-table entries. *)

val peek : ('a, 'b) t -> 'a -> 'b option
(** The cached result for an argument, if any — without executing,
    propagating, or recording dependencies. For tests and inspection; the
    value may be stale. *)

val node : ('a, 'b) t -> 'a -> Engine.node option
(** The dependency-graph node of an instance, if it exists. *)

val name : ('a, 'b) t -> string
val engine : ('a, 'b) t -> Engine.t
