(** Durable engine state: checksummed snapshots, a write-ahead mutation
    journal, and crash recovery with verified replay.

    Instance bodies are closures, so cached values cannot persist; what
    survives a crash is (a) the {e domain} state — enough to rebuild the
    structure exhaustively — and (b) the engine's {e logical} state
    ({!Engine.export}): dirty marks, failure/poison bookkeeping,
    counters. A recovered process answers every query correctly by
    recomputation, and the journal guarantees no acknowledged mutation
    is lost.

    Wiring: the domain exposes a {!persistable} (save / load / apply)
    and routes every mutation through a journaling callback (see
    [Sheet.set_journal], [Avl.set_journal], [Binary.doc]); {!attach}
    installs the engine half ({!Engine.set_journal}) so write intents
    and transaction boundaries land in the same journal. Typical life
    cycle:

    {[
      let eng = Engine.create () in
      let sheet = Sheet.create eng in
      let p = Sheet.persist sheet in
      let outcome = Durable.recover ~dir eng p in      (* cold start *)
      let s = Durable.attach ~dir eng p in             (* arm journaling *)
      Sheet.set_journal sheet (Some (Durable.journal_op s));
      …mutate, query…
      ignore (Durable.checkpoint s);                   (* cut + snapshot *)
      Durable.detach s
    ]} *)

type persistable = {
  p_save : unit -> Json.t;
      (** The full domain state, enough for [p_load] to rebuild it in a
          fresh domain. Must be deterministic (sorted) so snapshots of
          equal states are byte-equal. *)
  p_load : Json.t -> unit;
      (** Rebuild the domain structure from a [p_save] image. Called on
          a freshly created domain, before any journal replay; must not
          journal. *)
  p_apply : Json.t -> unit;
      (** Re-apply one journaled mutation (the payload previously passed
          to {!journal_op}). Must be deterministic. *)
}

(** {1 Sessions} *)

type t
(** An attached durability session: an open journal plus the engine
    hooks feeding it. *)

val attach :
  ?policy:Wal.policy ->
  ?segment_limit:int ->
  ?keep_snapshots:int ->
  dir:string ->
  Engine.t ->
  persistable ->
  t
(** Arms journaling: opens a fresh journal segment in [dir] (creating
    it if needed) and installs the engine journal hooks. Run
    {!recover} first when [dir] may hold prior state. [keep_snapshots]
    (default 2) bounds how many snapshot generations {!checkpoint}
    retains. @raise Invalid_argument if the engine already has a
    journal. *)

val journal_op : t -> Json.t -> unit
(** [journal_op s d] appends domain mutation [d] to the journal —
    call it {e before} applying the mutation (write-ahead). Standalone
    ops are their own commit boundary (fsynced under {!Wal.Commit});
    inside {!Engine.transact} the sync belongs to the commit marker. *)

val checkpoint : t -> string
(** Rotates the journal, writes a checksummed snapshot of engine +
    domain state (temp file, fsync, atomic rename), prunes old
    snapshots and the journal segments no kept snapshot needs, and
    returns the snapshot path. *)

val detach : t -> unit
(** Uninstalls the engine hooks and closes the journal (idempotent;
    never writes new bytes, so it is safe after a simulated crash). *)

val wal : t -> Wal.t
val dir : t -> string

(** {1 Recovery} *)

type outcome = {
  o_dir : string;
  o_snapshot : string option;  (** snapshot file restored from *)
  o_rejected : (string * string) list;
      (** snapshots rejected (file, reason: crc mismatch, bad header,
          domain load failure) before one was accepted *)
  o_matched : int;  (** engine nodes restored by {!Engine.import} *)
  o_replayed : int;  (** committed journal ops applied *)
  o_discarded : int;  (** journal entries dropped (uncommitted txns) *)
  o_discarded_txns : int;  (** uncommitted transaction groups dropped *)
  o_verified : bool;
      (** the journaled write intents agree with the intents the replay
          itself provoked: restricted to the names both runs tracked
          (lazy node materialization makes the alphabets differ), the
          journaled sequence is a subsequence of the captured one — a
          divergent replay reorders, a crash only truncates *)
  o_degraded : bool;
      (** recovery called {!Engine.degrade_to_exhaustive}: a snapshot
          failed its checksum, verification missed, the auditor
          complained, or the journal broke mid-stream — incremental
          state is abandoned and answers recompute exhaustively *)
  o_warnings : string list;
}

val recover : ?verify:bool -> dir:string -> Engine.t -> persistable -> outcome
(** [recover ~dir eng p] runs the recovery state machine against a
    fresh engine + domain: pick the newest snapshot that passes its CRC
    and loads ([p_load]), restore engine bookkeeping
    ({!Engine.import}), replay the journal's committed units through
    [p_apply] (settling after each; uncommitted transaction groups and
    any torn tail are dropped), verify the re-captured write intents
    against the journaled ones, then {!Engine.audit_errors}. On any
    integrity failure it degrades to exhaustive recomputation rather
    than serving corrupt state — the recovered answers are then still
    correct, merely cold. An empty or absent [dir] recovers to the
    empty state. [verify] defaults to [true]. *)

val pp_outcome : Format.formatter -> outcome -> unit
(** One deterministic summary line (used by [alphonsec recover]). *)

(** {1 Crash simulation} *)

val kill_sites : string list
(** {!Wal.kill_sites} plus ["snap-begin"; "snap-torn"; "snap-rename";
    "snap-prune"] — every byte-risking point of the checkpoint path.
    "snap-torn" fires with a half-written, flushed temp file on disk. *)

val set_kill_hook : t -> (string -> unit) option -> unit
(** Installs a hook poked at every {!kill_sites} site (shared with the
    session's {!Wal.t}); a hook raising {!Faults.Killed} models the
    process dying there. *)

(** {1 Snapshot files} *)

val snapshots : string -> (int * string) list
(** Existing snapshots of a state directory, sorted by index (the
    journal segment at which post-snapshot replay starts). *)

val snapshot_name : int -> string
