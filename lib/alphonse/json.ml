(* A minimal JSON tree, printer and parser. The toolchain ships no JSON
   library, and the telemetry layer needs only this much: the Chrome
   trace-event exporter and the bench harness emit JSON, the test suite
   parses it back. Printing preserves object-key order (the trace format
   cares about a stable ["traceEvents"] prefix); parsing accepts the full
   JSON grammar except that numbers are read as OCaml [float]s. *)

type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | Arr of t list
  | Obj of (string * t) list

(* ------------------------------------------------------------------ *)
(* Printing                                                            *)
(* ------------------------------------------------------------------ *)

let escape_to buf s =
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
        Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"'

let num_to_string f =
  if Float.is_integer f && Float.abs f < 1e15 then
    Printf.sprintf "%.0f" f
  else if Float.is_finite f then
    (* shortest representation that round-trips *)
    let s = Printf.sprintf "%.17g" f in
    let short = Printf.sprintf "%.12g" f in
    if float_of_string short = f then short else s
  else "null" (* JSON has no inf/nan; emit null rather than garbage *)

let rec print_to buf = function
  | Null -> Buffer.add_string buf "null"
  | Bool b -> Buffer.add_string buf (string_of_bool b)
  | Num f -> Buffer.add_string buf (num_to_string f)
  | Str s -> escape_to buf s
  | Arr xs ->
    Buffer.add_char buf '[';
    List.iteri
      (fun i x ->
        if i > 0 then Buffer.add_char buf ',';
        print_to buf x)
      xs;
    Buffer.add_char buf ']'
  | Obj kvs ->
    Buffer.add_char buf '{';
    List.iteri
      (fun i (k, v) ->
        if i > 0 then Buffer.add_char buf ',';
        escape_to buf k;
        Buffer.add_char buf ':';
        print_to buf v)
      kvs;
    Buffer.add_char buf '}'

let to_string j =
  let buf = Buffer.create 1024 in
  print_to buf j;
  Buffer.contents buf

(* ------------------------------------------------------------------ *)
(* Parsing                                                             *)
(* ------------------------------------------------------------------ *)

exception Parse_error of string

type cursor = { src : string; mutable pos : int }

let peek c = if c.pos < String.length c.src then Some c.src.[c.pos] else None

let fail c msg =
  raise (Parse_error (Printf.sprintf "at offset %d: %s" c.pos msg))

let rec skip_ws c =
  match peek c with
  | Some (' ' | '\t' | '\n' | '\r') ->
    c.pos <- c.pos + 1;
    skip_ws c
  | _ -> ()

let expect c ch =
  match peek c with
  | Some x when x = ch -> c.pos <- c.pos + 1
  | _ -> fail c (Printf.sprintf "expected %C" ch)

let literal c word value =
  let n = String.length word in
  if c.pos + n <= String.length c.src && String.sub c.src c.pos n = word then begin
    c.pos <- c.pos + n;
    value
  end
  else fail c (Printf.sprintf "expected %s" word)

let parse_string c =
  expect c '"';
  let buf = Buffer.create 16 in
  let rec go () =
    match peek c with
    | None -> fail c "unterminated string"
    | Some '"' -> c.pos <- c.pos + 1
    | Some '\\' -> (
      c.pos <- c.pos + 1;
      match peek c with
      | Some '"' -> Buffer.add_char buf '"'; c.pos <- c.pos + 1; go ()
      | Some '\\' -> Buffer.add_char buf '\\'; c.pos <- c.pos + 1; go ()
      | Some '/' -> Buffer.add_char buf '/'; c.pos <- c.pos + 1; go ()
      | Some 'n' -> Buffer.add_char buf '\n'; c.pos <- c.pos + 1; go ()
      | Some 't' -> Buffer.add_char buf '\t'; c.pos <- c.pos + 1; go ()
      | Some 'r' -> Buffer.add_char buf '\r'; c.pos <- c.pos + 1; go ()
      | Some 'b' -> Buffer.add_char buf '\b'; c.pos <- c.pos + 1; go ()
      | Some 'f' -> Buffer.add_char buf '\012'; c.pos <- c.pos + 1; go ()
      | Some 'u' ->
        if c.pos + 5 > String.length c.src then fail c "bad \\u escape";
        let hex = String.sub c.src (c.pos + 1) 4 in
        let code =
          try int_of_string ("0x" ^ hex)
          with _ -> fail c "bad \\u escape"
        in
        (* encode as UTF-8; surrogate pairs are passed through unpaired,
           which is enough for the ASCII-dominated traces we produce *)
        if code < 0x80 then Buffer.add_char buf (Char.chr code)
        else if code < 0x800 then begin
          Buffer.add_char buf (Char.chr (0xC0 lor (code lsr 6)));
          Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
        end
        else begin
          Buffer.add_char buf (Char.chr (0xE0 lor (code lsr 12)));
          Buffer.add_char buf (Char.chr (0x80 lor ((code lsr 6) land 0x3F)));
          Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
        end;
        c.pos <- c.pos + 5;
        go ()
      | _ -> fail c "bad escape")
    | Some ch ->
      Buffer.add_char buf ch;
      c.pos <- c.pos + 1;
      go ()
  in
  go ();
  Buffer.contents buf

let parse_number c =
  let start = c.pos in
  let is_num_char ch =
    match ch with
    | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
    | _ -> false
  in
  while (match peek c with Some ch -> is_num_char ch | None -> false) do
    c.pos <- c.pos + 1
  done;
  let s = String.sub c.src start (c.pos - start) in
  match float_of_string_opt s with
  | Some f -> f
  | None -> fail c (Printf.sprintf "bad number %S" s)

let rec parse_value c =
  skip_ws c;
  match peek c with
  | None -> fail c "unexpected end of input"
  | Some '{' ->
    c.pos <- c.pos + 1;
    skip_ws c;
    if peek c = Some '}' then begin
      c.pos <- c.pos + 1;
      Obj []
    end
    else begin
      let rec members acc =
        skip_ws c;
        let k = parse_string c in
        skip_ws c;
        expect c ':';
        let v = parse_value c in
        skip_ws c;
        match peek c with
        | Some ',' ->
          c.pos <- c.pos + 1;
          members ((k, v) :: acc)
        | Some '}' ->
          c.pos <- c.pos + 1;
          List.rev ((k, v) :: acc)
        | _ -> fail c "expected ',' or '}'"
      in
      Obj (members [])
    end
  | Some '[' ->
    c.pos <- c.pos + 1;
    skip_ws c;
    if peek c = Some ']' then begin
      c.pos <- c.pos + 1;
      Arr []
    end
    else begin
      let rec elements acc =
        let v = parse_value c in
        skip_ws c;
        match peek c with
        | Some ',' ->
          c.pos <- c.pos + 1;
          elements (v :: acc)
        | Some ']' ->
          c.pos <- c.pos + 1;
          List.rev (v :: acc)
        | _ -> fail c "expected ',' or ']'"
      in
      Arr (elements [])
    end
  | Some '"' -> Str (parse_string c)
  | Some 't' -> literal c "true" (Bool true)
  | Some 'f' -> literal c "false" (Bool false)
  | Some 'n' -> literal c "null" Null
  | Some _ -> Num (parse_number c)

let of_string s =
  let c = { src = s; pos = 0 } in
  let v = parse_value c in
  skip_ws c;
  if c.pos <> String.length s then fail c "trailing input";
  v

let of_string_opt s = try Some (of_string s) with Parse_error _ -> None

(* ------------------------------------------------------------------ *)
(* Accessors                                                           *)
(* ------------------------------------------------------------------ *)

let member k = function Obj kvs -> List.assoc_opt k kvs | _ -> None
let to_list = function Arr xs -> Some xs | _ -> None
let to_float = function Num f -> Some f | _ -> None
let to_str = function Str s -> Some s | _ -> None
