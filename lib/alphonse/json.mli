(** A minimal JSON tree, printer and parser — just enough for the
    telemetry layer: the Chrome trace-event exporter and the bench
    harness emit JSON, the test suite parses it back to validate.
    Printing preserves object-key order; numbers are OCaml [float]s. *)

type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | Arr of t list
  | Obj of (string * t) list

val to_string : t -> string
(** Compact (single-line) serialization. Object keys print in list
    order; non-finite numbers print as [null]. *)

exception Parse_error of string

val of_string : string -> t
(** Parses a complete JSON document. @raise Parse_error on malformed
    input or trailing garbage. *)

val of_string_opt : string -> t option

(** {1 Accessors} — each returns [None] on a shape mismatch. *)

val member : string -> t -> t option
val to_list : t -> t list option
val to_float : t -> float option
val to_str : t -> string option
