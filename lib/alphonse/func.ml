type ('a, 'b) t = {
  eng : Engine.t;
  fname : string;
  strategy : Engine.strategy;
  policy : Policy.t;
  static_deps : bool;
  pp_key : ('a -> string) option;
      (* names instances "fname(key)" in telemetry and DOT dumps *)
  value_equal : 'b -> 'b -> bool;
  body : ('a, 'b) t -> 'a -> 'b;
  table : ('a, ('a, 'b) entry) Htbl.t;
  (* recency list: [newest] is the most recently used (LRU) or most
     recently inserted (FIFO); eviction scans from [oldest]. *)
  mutable newest : ('a, 'b) entry option;
  mutable oldest : ('a, 'b) entry option;
}

and ('a, 'b) entry = {
  key : 'a;
  enode : Engine.node;
  cache : 'b option ref;
  mutable younger : ('a, 'b) entry option;
  mutable older : ('a, 'b) entry option;
  mutable live : bool;
}

let fcounter = ref 0

let create eng ?name ?strategy ?(policy = Policy.Unbounded)
    ?(static_deps = false) ?(hash_arg = Hashtbl.hash) ?(equal_arg = ( = ))
    ?(equal_result = ( = )) ?pp_key body =
  incr fcounter;
  let fname =
    match name with Some n -> n | None -> Fmt.str "func#%d" !fcounter
  in
  let strategy =
    match strategy with Some s -> s | None -> Engine.default_strategy eng
  in
  {
    eng;
    fname;
    strategy;
    policy;
    static_deps;
    pp_key;
    value_equal = equal_result;
    body;
    table = Htbl.create ~hash:hash_arg ~equal:equal_arg ();
    newest = None;
    oldest = None;
  }

let unlink t e =
  (match e.younger with
  | Some y -> y.older <- e.older
  | None -> t.newest <- e.older);
  (match e.older with
  | Some o -> o.younger <- e.younger
  | None -> t.oldest <- e.younger);
  e.younger <- None;
  e.older <- None

let push_front t e =
  e.older <- t.newest;
  e.younger <- None;
  (match t.newest with Some n -> n.younger <- Some e | None -> ());
  t.newest <- Some e;
  match t.oldest with None -> t.oldest <- Some e | Some _ -> ()

let evict t e =
  (* discard first: it can raise (an injected fault cancels the
     eviction), and then the table, recency list and node must all still
     agree that the entry is live *)
  Engine.discard t.eng e.enode;
  Htbl.remove t.table e.key;
  unlink t e;
  e.live <- false

(* Enforce the capacity bound, evicting only sound candidates (no live
   dependents, not pending, not executing) and never the entry just
   inserted. Gives up rather than evicting an unsound candidate. *)
let maybe_evict t ~keep =
  match Policy.capacity t.policy with
  | None -> ()
  | Some cap ->
    let excess () = Htbl.length t.table - cap in
    let rec scan e_opt =
      if excess () > 0 then
        match e_opt with
        | None -> ()
        | Some e when e == keep -> scan e.younger
        | Some e ->
          let next = e.younger in
          if Engine.removable t.eng e.enode then evict t e;
          scan next
    in
    scan t.oldest

let find_or_create t a =
  match Htbl.find t.table a with
  | Some e -> e
  | None ->
    (* table/recency mutations are serialized across worker domains by
       the engine's parallel-settle lock (reentrant; free when no
       parallel settle is active) *)
    Engine.critical t.eng @@ fun () ->
    match Htbl.find t.table a with
    | Some e -> e (* created by a sibling while we waited for the lock *)
    | None ->
    let cache = ref None in
    let recompute_ref = ref (fun () -> true) in
    let iname =
      match t.pp_key with
      | Some pp -> Fmt.str "%s(%s)" t.fname (pp a)
      | None -> t.fname
    in
    let enode =
      Engine.new_instance t.eng ~name:iname ~strategy:t.strategy
        ~static_deps:t.static_deps
        ~recompute:(fun () -> !recompute_ref ())
        ()
    in
    let e = { key = a; enode; cache; younger = None; older = None;
              live = true }
    in
    (recompute_ref :=
       fun () ->
         let v = t.body t a in
         let changed =
           match !cache with
           | Some old -> not (t.value_equal old v)
           | None -> true
         in
         cache := Some v;
         changed);
    Htbl.add t.table a e;
    push_front t e;
    maybe_evict t ~keep:e;
    e

let call t a =
  let e = find_or_create t a in
  (match t.policy with
  | Policy.Lru _ when e.live -> (
    match t.newest with
    | Some n when n == e -> ()
    | _ ->
      Engine.critical t.eng (fun () ->
          if e.live then begin
            unlink t e;
            push_front t e
          end))
  | _ -> ());
  Engine.on_call t.eng e.enode;
  match !(e.cache) with
  | Some v -> v
  | None -> assert false (* on_call always fills a fresh cache *)

let size t = Htbl.length t.table

let peek t a =
  match Htbl.find t.table a with Some e -> !(e.cache) | None -> None

let node t a =
  match Htbl.find t.table a with Some e -> Some e.enode | None -> None

let name t = t.fname
let engine t = t.eng
