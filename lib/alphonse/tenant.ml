(* One supervised tenant: an isolated engine + domain instance with its
   own durable state directory, restarted from disk when it crashes,
   backed off exponentially (with jitter) when it keeps crashing, and
   parked behind a circuit breaker when it flaps. The supervisor never
   lets one tenant's failure leak: a crash tears down only this
   tenant's session, and recovery replays only this tenant's WAL. *)

module Log = (val Logs.src_log (Logs.Src.create "alphonse.tenant"))

exception Bad_op of string

type session = {
  s_engine : Engine.t;
  s_apply : Json.t -> Json.t;
  s_persist : Durable.persistable;
  s_set_journal : (Json.t -> unit) option -> unit;
}

type workload = { w_make : unit -> session }

type config = {
  c_root : string;
  c_durable : bool;
  c_wal_policy : Wal.policy;
  c_max_restarts : int;
  c_backoff_base : float;
  c_backoff_cap : float;
  c_cooldown : float;
  c_seed : int;
  c_metrics : Metrics.t option;
}

let default_config ?(durable = true) ~root () =
  {
    c_root = root;
    c_durable = durable;
    c_wal_policy = Wal.Commit;
    c_max_restarts = 5;
    c_backoff_base = 0.05;
    c_backoff_cap = 5.0;
    c_cooldown = 30.0;
    c_seed = 0;
    c_metrics = None;
  }

(* Tenant ids become directory names: refuse anything that could
   escape the state root or collide across encodings. *)
let valid_id id =
  let n = String.length id in
  n > 0 && n <= 64
  && String.for_all
       (function
         | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '-' | '_' | '.' -> true
         | _ -> false)
       id
  && id.[0] <> '.'

type status =
  | Serving
  | Backoff of float  (** restart pending; retry after this many seconds *)
  | Parked of float  (** circuit open; half-opens after this many seconds *)
  | Stopped

type live = { ls : session; ld : Durable.t option }

type state =
  | Up of live
  | Down of { until : float }
  | Tripped of { until : float }
  | Off

type t = {
  id : string;
  cfg : config;
  w : workload;
  tdir : string;
  lock : Mutex.t;
      (* held across a whole batch: per-tenant serialization is the
         isolation unit — one in-flight batch per tenant *)
  mutable state : state;
  mutable crashes : int; (* consecutive; reset by a successful batch *)
  mutable restarts : int; (* lifetime restart attempts *)
  mutable trips : int; (* lifetime circuit-breaker trips *)
  mutable last_error : string option;
  mutable last_recovery : Durable.outcome option;
  mutable kill_hook : (string -> unit) option;
  (* shared metric cells (same names across tenants; label-free) *)
  m_restarts : Metrics.counter option;
  m_crashes : Metrics.counter option;
  m_trips : Metrics.counter option;
}

type error =
  | Cancelled of string
  | Rejected of string
  | Unavailable of { reason : string; retry_after : float }

(* splitmix-style hash → jitter in [0, 1): deterministic per
   (seed, id, attempt), so backoff schedules are reproducible in tests
   while still decorrelating tenants that crash in lockstep. *)
let jitter ~seed ~id ~attempt =
  let h = ref (Int64.of_int (seed lxor (attempt * 0x9e3779b9))) in
  String.iter
    (fun ch ->
      h := Int64.mul (Int64.logxor !h (Int64.of_int (Char.code ch)))
             0x100000001b3L)
    id;
  let z = Int64.add !h 0x9e3779b97f4a7c15L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30))
            0xbf58476d1ce4e5b9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27))
            0x94d049bb133111ebL in
  let z = Int64.logxor z (Int64.shift_right_logical z 31) in
  Int64.to_float (Int64.shift_right_logical z 11) /. 9007199254740992.0

let backoff_delay t =
  let attempt = max 1 t.crashes in
  let exp = t.cfg.c_backoff_base *. (2.0 ** float_of_int (attempt - 1)) in
  let base = Float.min exp t.cfg.c_backoff_cap in
  (* full jitter on the top half: [0.5b, 1.0b] *)
  base *. (0.5 +. (0.5 *. jitter ~seed:t.cfg.c_seed ~id:t.id ~attempt))

let rec mkdirs dir =
  if not (Sys.file_exists dir) then begin
    mkdirs (Filename.dirname dir);
    try Unix.mkdir dir 0o755
    with Unix.Unix_error (Unix.EEXIST, _, _) -> ()
  end

let dir_for cfg id = Filename.concat (Filename.concat cfg.c_root "tenants") id
let dir t = t.tdir
let id t = t.id

let teardown t =
  match t.state with
  | Up { ls; ld } ->
    (try ls.s_set_journal None with _ -> ());
    (match ld with
    | Some d -> ( try Durable.detach d with _ -> ())
    | None -> ());
    t.state <- Off
  | _ -> ()

(* Build a fresh session and recover it from this tenant's directory.
   Raises when the workload constructor or the durability layer does —
   the caller turns that into a crash. *)
let start_session t =
  let s = t.w.w_make () in
  (match t.cfg.c_metrics with
  | Some reg -> Engine.set_metrics s.s_engine (Some reg)
  | None -> ());
  let d =
    if t.cfg.c_durable then begin
      mkdirs t.tdir;
      let o = Durable.recover ~dir:t.tdir s.s_engine s.s_persist in
      t.last_recovery <- Some o;
      let d =
        Durable.attach ~policy:t.cfg.c_wal_policy ~dir:t.tdir s.s_engine
          s.s_persist
      in
      s.s_set_journal (Some (Durable.journal_op d));
      Durable.set_kill_hook d t.kill_hook;
      Some d
    end
    else None
  in
  { ls = s; ld = d }

let crash t ~now e =
  let msg = Printexc.to_string e in
  t.last_error <- Some msg;
  teardown t;
  t.crashes <- t.crashes + 1;
  (match t.m_crashes with Some c -> Metrics.inc c | None -> ());
  if t.crashes > t.cfg.c_max_restarts then begin
    t.trips <- t.trips + 1;
    (match t.m_trips with Some c -> Metrics.inc c | None -> ());
    Log.warn (fun m ->
        m "tenant %s: circuit open after %d consecutive crashes (%s)" t.id
          t.crashes msg);
    t.state <- Tripped { until = now +. t.cfg.c_cooldown };
    Unavailable
      { reason = "circuit open: " ^ msg; retry_after = t.cfg.c_cooldown }
  end
  else begin
    let delay = backoff_delay t in
    Log.info (fun m ->
        m "tenant %s: crashed (%s); restart in %.0f ms" t.id msg
          (delay *. 1000.));
    t.state <- Down { until = now +. delay };
    Unavailable { reason = "crashed: " ^ msg; retry_after = delay }
  end

let try_restart t ~now =
  t.restarts <- t.restarts + 1;
  (match t.m_restarts with Some c -> Metrics.inc c | None -> ());
  match start_session t with
  | live ->
    t.state <- Up live;
    Ok live
  | exception e -> Error (crash t ~now e)

(* Resolve the current session, restarting when a pending backoff or a
   parked circuit's cooldown has elapsed (half-open probe). *)
let ensure t ~now =
  match t.state with
  | Up live -> Ok live
  | Off -> Error (Unavailable { reason = "stopped"; retry_after = 1.0 })
  | Down { until } ->
    if now >= until then try_restart t ~now
    else
      Error (Unavailable { reason = "restarting"; retry_after = until -. now })
  | Tripped { until } ->
    if now >= until then try_restart t ~now
    else
      Error (Unavailable { reason = "circuit open"; retry_after = until -. now })

let create ?kill_hook cfg w ~id =
  if not (valid_id id) then
    invalid_arg ("Tenant.create: invalid tenant id: " ^ String.escaped id);
  let c name help =
    match cfg.c_metrics with
    | None -> None
    | Some reg -> Some (Metrics.counter reg name ~help)
  in
  let t =
    {
      id;
      cfg;
      w;
      tdir = dir_for cfg id;
      lock = Mutex.create ();
      state = Off;
      crashes = 0;
      restarts = 0;
      trips = 0;
      last_error = None;
      last_recovery = None;
      kill_hook;
      m_restarts = c "tenant_restarts_total" "tenant session (re)starts";
      m_crashes = c "tenant_crashes_total" "tenant session crashes";
      m_trips = c "tenant_trips_total" "tenant circuit-breaker trips";
    }
  in
  (match try_restart t ~now:(Unix.gettimeofday ()) with
  | Ok _ -> ()
  | Error _ -> () (* stays Down/Tripped; submits surface the backoff *));
  t

let locked t f =
  Mutex.lock t.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.lock) f

let submit t ?budget ~now ops =
  locked t @@ fun () ->
  match ensure t ~now with
  | Error e -> Error e
  | Ok { ls; _ } -> (
    let batch () =
      Engine.transact ls.s_engine (fun () -> List.map ls.s_apply ops)
    in
    let batch () =
      match budget with
      | None -> batch ()
      | Some b -> Engine.with_budget ls.s_engine b batch
    in
    match batch () with
    | results ->
      t.crashes <- 0;
      Ok results
    | exception Engine.Cancelled msg ->
      (* the transact rolled back; the session is healthy *)
      Error (Cancelled msg)
    | exception Bad_op msg ->
      (* malformed op: the batch rolled back, the client is at fault *)
      Error (Rejected msg)
    | exception e ->
      (* anything else is a tenant crash: discard the session and
         restart from this tenant's own directory *)
      Error (crash t ~now e))

let status t ~now =
  match t.state with
  | Up _ -> Serving
  | Off -> Stopped
  | Down { until } -> Backoff (Float.max 0. (until -. now))
  | Tripped { until } -> Parked (Float.max 0. (until -. now))

let checkpoint t =
  locked t @@ fun () ->
  match t.state with
  | Up { ld = Some d; _ } -> ignore (Durable.checkpoint d : string)
  | _ -> ()

let stop t =
  locked t @@ fun () ->
  (match t.state with
  | Up { ld = Some d; _ } -> ( try ignore (Durable.checkpoint d : string) with _ -> ())
  | _ -> ());
  teardown t

let engine t =
  match t.state with Up { ls; _ } -> Some ls.s_engine | _ -> None

let set_kill_hook t h =
  locked t @@ fun () ->
  t.kill_hook <- h;
  match t.state with
  | Up { ld = Some d; _ } -> Durable.set_kill_hook d h
  | _ -> ()

let crashes t = t.crashes
let restarts t = t.restarts
let trips t = t.trips
let last_error t = t.last_error
let last_recovery t = t.last_recovery
