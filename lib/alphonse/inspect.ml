(** Introspection over a live engine: statistics pretty-printing and
    Graphviz export of the dependency graph. The paper notes (§10) that
    "the dynamic dependence information gathered by Alphonse can also be
    used for additional advantage, such as in debugging"; this module is
    that debugging view. *)

let pp_stats ppf (s : Engine.stats) =
  Fmt.pf ppf
    "@[<v>executions:     %d (first: %d, re: %d)@,\
     cache hits:     %d@,\
     settle steps:   %d@,\
     queue pushes:   %d@,\
     unions:         %d@,\
     out-of-order:   %d (fixups: %d)@,\
     evictions:      %d@]"
    s.executions s.first_executions
    (s.executions - s.first_executions)
    s.cache_hits s.settle_steps s.queue_pushes s.unions s.out_of_order_edges
    s.order_fixups s.evictions;
  (* the recovery counters only appear once something went wrong *)
  if s.failures + s.retries + s.poisonings + s.rollbacks + s.degradations > 0
  then
    Fmt.pf ppf
      "@,@[<v>failures:       %d (retries: %d, poisoned: %d)@,\
       rollbacks:      %d@,\
       degradations:   %d@]"
      s.failures s.retries s.poisonings s.rollbacks s.degradations;
  if s.audits > 0 then Fmt.pf ppf "@,audits:         %d" s.audits;
  if s.par_levels > 0 then
    Fmt.pf ppf "@,parallel:       %d level(s), %d task(s) dispatched"
      s.par_levels s.par_tasks

let pp_graph_stats ppf (g : Depgraph.Graph.stats) =
  Fmt.pf ppf
    "@[<v>nodes:          %d live / %d total@,\
     edges:          %d live / %d total (%d removed)@,\
     order relabels: %d@]"
    g.live_nodes g.total_nodes g.live_edges g.total_edges g.removed_edges
    g.order_relabels

(** Parallel-execution profile (§10: the dependency information "can also
    be used for … scheduling parallel execution"): the topological level
    sets of the current dependency graph. Instances in the same level
    have no dependencies between them and could re-execute concurrently;
    the number of levels is the critical path, and total/critical is the
    available speedup bound. Cycles (possible in user programs, e.g.
    circular spreadsheets) contribute no extra depth. *)
type parallel_profile = {
  level_widths : int list;  (** instances per level, level 0 first *)
  critical_path : int;  (** number of levels *)
  total_instances : int;
  max_width : int;
  speedup_bound : float;  (** total / critical path *)
}

let parallel_profile eng =
  let levels : (int, int) Hashtbl.t = Hashtbl.create 256 in
  let in_progress : (int, unit) Hashtbl.t = Hashtbl.create 16 in
  (* Only instances contribute depth. A storage node itself is free, but
     it is NOT transparent: an instance that reads a cell must level
     below the cell's writers — every dependency edge points from the
     cell to its consumers (readers and writers alike), so the writer
     is invisible to a pred walk and has to be consulted explicitly via
     [Engine.iter_node_writers]. This is the same writers-aware rule
     the parallel evaluator schedules with ([Engine.dirty_levels]); the
     old pred-only rule placed a maintained write-then-read chain's
     writer and reader on one level, overstating the E15 speedup bound
     (the reader cannot start until the writer commits). The reading
     instance excludes itself: a maintained writer that reads back its
     own cell must not self-deepen. *)
  let rec level n =
    let id = Engine.node_id n in
    match Hashtbl.find_opt levels id with
    | Some l -> l
    | None ->
      if Hashtbl.mem in_progress id then 0 (* cycle: cut here *)
      else begin
        Hashtbl.replace in_progress id ();
        let deepest = ref 0 in
        Engine.iter_node_pred
          (fun m ->
            deepest := max !deepest (level m);
            if Engine.node_kind m = `Storage then
              Engine.iter_node_writers
                (fun w ->
                  if Engine.node_id w <> id then
                    deepest := max !deepest (level w))
                m)
          n;
        Hashtbl.remove in_progress id;
        let l =
          !deepest + (match Engine.node_kind n with `Instance -> 1 | `Storage -> 0)
        in
        Hashtbl.replace levels id l;
        l
      end
  in
  let width : (int, int) Hashtbl.t = Hashtbl.create 64 in
  let total = ref 0 in
  Engine.iter_nodes eng (fun n ->
      if Engine.node_kind n = `Instance then begin
        incr total;
        (* [level] returns 0 for an instance on a cycle cut (its own level
           is still being computed when revisited); clamp so the width
           table never sees level -1 *)
        let l = max 0 (level n - 1) in
        Hashtbl.replace width l (1 + Option.value ~default:0 (Hashtbl.find_opt width l))
      end);
  let depth = Hashtbl.fold (fun l _ acc -> max acc (l + 1)) width 0 in
  let level_widths =
    List.init depth (fun l -> Option.value ~default:0 (Hashtbl.find_opt width l))
  in
  let max_width = List.fold_left max 0 level_widths in
  {
    level_widths;
    critical_path = depth;
    total_instances = !total;
    max_width;
    speedup_bound =
      (if depth = 0 then 1.
       else float_of_int !total /. float_of_int depth);
  }

let pp_parallel_profile ppf p =
  Fmt.pf ppf
    "@[<v>instances:     %d@,\
     critical path: %d level(s)@,\
     max width:     %d@,\
     speedup bound: %.1fx@,\
     widths:        %a@]"
    p.total_instances p.critical_path p.max_width p.speedup_bound
    Fmt.(list ~sep:(any " ") int)
    p.level_widths

let dot_escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

(** Render the dependency graph in Graphviz DOT syntax. Storage nodes are
    boxes, instance nodes are ellipses; inconsistent nodes are shaded.

    [heat] is the "hot nodes" profile overlay: a map from node id to a
    0–1 heat value (typically self time relative to the hottest
    instance, see {!heat_of_profile}). Hot nodes are filled on a
    white→red ramp and labeled with their share. *)
let to_dot ?(show_storage = true) ?heat eng =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf "digraph alphonse {\n  rankdir=BT;\n";
  (* Node identities are {!Engine.stable_id}s: on an engine restored by
     [Durable], arena slot indices are assigned in import order and need
     not match the exporting engine's, but the stable id is the snapshot
     id — so a DOT render, a heat overlay keyed by telemetry profiles
     (which record stable ids), and a provenance query all name the same
     node before and after a restore. *)
  Engine.iter_nodes eng (fun n ->
      let keep = show_storage || Engine.node_kind n = `Instance in
      if keep then begin
        let sid = Engine.stable_id eng n in
        let shape =
          match Engine.node_kind n with
          | `Storage -> "box"
          | `Instance -> "ellipse"
        in
        let heat_val =
          match heat with
          | None -> None
          | Some f -> (
            match f sid with
            | Some h -> Some (Float.min 1. (Float.max 0. h))
            | None -> None)
        in
        let fill, heat_label =
          match heat_val with
          | Some h ->
            (* HSV: hue 0 (red), saturation = heat — white when cold *)
            ( Fmt.str ", style=filled, fillcolor=\"0.0 %.3f 1.0\"" h,
              Fmt.str "\\n%.0f%%" (100. *. h) )
          | None ->
            ((if Engine.node_dirty n then ", style=filled" else ""), "")
        in
        Buffer.add_string buf
          (Fmt.str "  n%d [label=\"%s#%d%s\", shape=%s%s];\n" sid
             (dot_escape (Engine.node_name n))
             sid heat_label shape fill)
      end);
  Engine.iter_nodes eng (fun n ->
      let keep = show_storage || Engine.node_kind n = `Instance in
      if keep then
        Engine.iter_node_succ
          (fun m ->
            if show_storage || Engine.node_kind m = `Instance then
              Buffer.add_string buf
                (Fmt.str "  n%d -> n%d;\n"
                   (Engine.stable_id eng n)
                   (Engine.stable_id eng m)))
          n);
  Buffer.add_string buf "}\n";
  Buffer.contents buf

(* ------------------------------------------------------------------ *)
(* Telemetry conveniences (the engine-side halves live in Telemetry)   *)
(* ------------------------------------------------------------------ *)

(** Heat function for {!to_dot}: each profiled instance's self time as a
    fraction of the hottest instance's. *)
let heat_of_profile (profiles : Telemetry.instance_profile list) =
  let hottest =
    List.fold_left
      (fun m (p : Telemetry.instance_profile) -> Float.max m p.self_time)
      0. profiles
  in
  let tbl = Hashtbl.create 64 in
  List.iter
    (fun (p : Telemetry.instance_profile) ->
      (* nodes that never executed (storage cells that were only marked)
         carry no heat at all rather than a 0% label *)
      if hottest > 0. && p.executions > 0 then
        Hashtbl.replace tbl p.id (p.self_time /. hottest))
    profiles;
  fun id -> Hashtbl.find_opt tbl id

(** Settle-latency quantiles of one instance profile: (p50, p90, p99)
    seconds, estimated from the decade-bucket latency histogram by the
    same geometric interpolation {!Metrics} uses for its exposition
    histograms ([Metrics.quantile] against [Telemetry.bucket_bounds]) —
    a scrape of [alphonse_settle_seconds] and [alphonsec profile]
    report the same numbers. [nan]s when the instance never completed a
    mark-to-execution cycle in the recorded window. *)
let latency_quantiles (p : Telemetry.instance_profile) =
  Metrics.quantiles ~counts:p.latency ~bounds:Telemetry.bucket_bounds

let pp_quantile ppf q =
  if Float.is_nan q then Fmt.string ppf "     -"
  else if q < 1e-3 then Fmt.pf ppf "%4.0fus" (q *. 1e6)
  else if q < 1. then Fmt.pf ppf "%4.1fms" (q *. 1e3)
  else Fmt.pf ppf "%5.2fs" q

(** {!Telemetry.pp_profile} extended with estimated p50/p90/p99
    settle-latency columns (what [alphonsec profile --top] prints). *)
let pp_profile_quantiles ?top ppf (profiles : Telemetry.instance_profile list)
    =
  let profiles =
    match top with
    | Some n -> List.filteri (fun i _ -> i < n) profiles
    | None -> profiles
  in
  Fmt.pf ppf "@[<v>%-28s %6s %6s %6s %10s %10s %6s %6s %6s@,"
    "instance" "execs" "re-ex" "marks" "self" "total" "p50" "p90" "p99";
  List.iter
    (fun (p : Telemetry.instance_profile) ->
      let p50, p90, p99 = latency_quantiles p in
      Fmt.pf ppf "%-28s %6d %6d %6d %8.2fms %8.2fms %a %a %a@,"
        (Fmt.str "%s#%d" p.name p.id)
        p.executions p.re_executions p.marks (p.self_time *. 1e3)
        (p.total_time *. 1e3) pp_quantile p50 pp_quantile p90 pp_quantile p99)
    profiles;
  Fmt.pf ppf "@]"

(** [find_instance eng name] resolves an instance node by payload name
    (for provenance queries addressed by name from the CLI); when several
    instances share the name — e.g. every entry of one argument table —
    the most recently created (highest id) wins. *)
let find_instance eng name =
  let best = ref None in
  Engine.iter_nodes eng (fun n ->
      if Engine.node_kind n = `Instance && Engine.node_name n = name then
        match !best with
        | Some b when Engine.node_id b >= Engine.node_id n -> ()
        | _ -> best := Some n);
  !best

(** [why_recomputed eng name] is {!Telemetry.why_recomputed} addressed by
    instance name, against the engine's attached recorder. [None] when no
    recorder is attached, the name resolves to no instance, or the
    instance never executed inside the recorded window. The recorder is
    queried by {!Engine.stable_id}: telemetry events carry stable ids,
    so provenance still resolves on an engine restored by [Durable],
    where the live arena index of the instance differs from the id the
    events were recorded under. *)
let why_recomputed eng name =
  match Engine.telemetry eng with
  | None -> None
  | Some tm -> (
    match find_instance eng name with
    | None -> None
    | Some n -> Telemetry.why_recomputed tm ~id:(Engine.stable_id eng n))
