(* Open-addressing hash table (linear probing), one flat slot array.

   [find] sits on the engine's hottest path — every incremental call
   resolves its instance through it — so the layout is chosen for load
   count: probe = one array read + one key compare, no chain of cons
   cells. Capacities are powers of two (mask, not modulo) and the table
   grows at load factor 1/2.

   Concurrency contract (unchanged from the chained version): writers
   are serialized by Engine.critical; readers may race a writer. A
   binding is published by a single store of an immutable [Bind] block,
   and [grow] fills a fresh array before swapping it in, so a racing
   [find] sees either the old or the new state — at worst it misses a
   binding added after it snapshotted the array, which callers handle
   by re-checking under the lock before creating. [Tomb] stones keep
   probe chains intact across [remove]; they are recycled by the next
   [grow]. *)

type ('k, 'v) slot = Empty | Tomb | Bind of 'k * 'v

type ('k, 'v) t = {
  hash : 'k -> int;
  equal : 'k -> 'k -> bool;
  mutable slots : ('k, 'v) slot array;
  mutable size : int;  (* live bindings *)
  mutable used : int;  (* live bindings + tombstones *)
}

let rec pow2_at_least n k = if k >= n then k else pow2_at_least n (k * 2)

let create ?(initial_capacity = 16) ~hash ~equal () =
  let cap = pow2_at_least (max 2 initial_capacity) 2 in
  { hash; equal; slots = Array.make cap Empty; size = 0; used = 0 }

let length t = t.size

let find t k =
  (* snapshot: a concurrent [grow] swaps [t.slots] wholesale *)
  let slots = t.slots in
  let mask = Array.length slots - 1 in
  let rec probe i =
    match Array.unsafe_get slots i with
    | Empty -> None
    | Tomb -> probe ((i + 1) land mask)
    | Bind (k', v) -> if t.equal k k' then Some v else probe ((i + 1) land mask)
  in
  probe (t.hash k land mask)

(* Insert into [slots] directly; reuses the first tombstone on the probe
   path. Only called under the writer lock. *)
let put slots mask hash equal k v =
  let rec probe i tomb =
    match slots.(i) with
    | Empty ->
      let j = match tomb with Some j -> j | None -> i in
      slots.(j) <- Bind (k, v);
      tomb <> None
    | Tomb ->
      let tomb = match tomb with Some _ -> tomb | None -> Some i in
      probe ((i + 1) land mask) tomb
    | Bind (k', _) ->
      if equal k k' then invalid_arg "Htbl.add: key already bound"
      else probe ((i + 1) land mask) tomb
  in
  probe (hash k land mask) None

let grow t =
  let old = t.slots in
  let cap = Array.length old in
  (* double only when at least half the occupancy is live; otherwise the
     same capacity sheds the tombstones *)
  let cap' = if 2 * t.size >= cap then 2 * cap else cap in
  let slots = Array.make cap' Empty in
  let mask = cap' - 1 in
  Array.iter
    (function
      | Bind (k, v) -> ignore (put slots mask t.hash t.equal k v)
      | Empty | Tomb -> ())
    old;
  t.used <- t.size;
  (* publish last: racing finds probe a fully-formed array *)
  t.slots <- slots

let add t k v =
  if 2 * (t.used + 1) > Array.length t.slots then grow t;
  let slots = t.slots in
  if put slots (Array.length slots - 1) t.hash t.equal k v then ()
  else t.used <- t.used + 1;
  t.size <- t.size + 1

let remove t k =
  let slots = t.slots in
  let mask = Array.length slots - 1 in
  let rec probe i =
    match slots.(i) with
    | Empty -> ()
    | Tomb -> probe ((i + 1) land mask)
    | Bind (k', _) ->
      if t.equal k k' then begin
        slots.(i) <- Tomb;
        t.size <- t.size - 1
      end
      else probe ((i + 1) land mask)
  in
  probe (t.hash k land mask)

let iter f t =
  Array.iter (function Bind (k, v) -> f k v | Empty | Tomb -> ()) t.slots

let fold f t init =
  Array.fold_left
    (fun acc -> function Bind (k, v) -> f k v acc | Empty | Tomb -> acc)
    init t.slots

let clear t =
  Array.fill t.slots 0 (Array.length t.slots) Empty;
  t.size <- 0;
  t.used <- 0
