type ('k, 'v) t = {
  hash : 'k -> int;
  equal : 'k -> 'k -> bool;
  mutable buckets : ('k * 'v) list array;
  mutable size : int;
}

let create ?(initial_capacity = 16) ~hash ~equal () =
  let cap = max 1 initial_capacity in
  { hash; equal; buckets = Array.make cap []; size = 0 }

let length t = t.size

let index t k = t.hash k land max_int mod Array.length t.buckets

let find t k =
  (* Snapshot the bucket array once: a concurrent [grow] (writers are
     serialized by Engine.critical) swaps [t.buckets], and computing the
     index against one array while reading another would alias the
     wrong chain. Chains themselves are immutable lists, so a snapshot
     read is always internally consistent — at worst it misses a
     binding added after the snapshot, which callers handle by
     re-checking under the lock before creating. *)
  let buckets = t.buckets in
  let i = t.hash k land max_int mod Array.length buckets in
  let rec go = function
    | [] -> None
    | (k', v) :: rest -> if t.equal k k' then Some v else go rest
  in
  go buckets.(i)

let grow t =
  let old = t.buckets in
  t.buckets <- Array.make (2 * Array.length old) [];
  Array.iter
    (fun chain ->
      List.iter
        (fun ((k, _) as binding) ->
          let i = index t k in
          t.buckets.(i) <- binding :: t.buckets.(i))
        chain)
    old

let add t k v =
  (match find t k with
  | Some _ -> invalid_arg "Htbl.add: key already bound"
  | None -> ());
  if t.size >= 2 * Array.length t.buckets then grow t;
  let i = index t k in
  t.buckets.(i) <- (k, v) :: t.buckets.(i);
  t.size <- t.size + 1

let remove t k =
  let i = index t k in
  let removed = ref false in
  let rec go = function
    | [] -> []
    | ((k', _) as binding) :: rest ->
      if (not !removed) && t.equal k k' then begin
        removed := true;
        rest
      end
      else binding :: go rest
  in
  t.buckets.(i) <- go t.buckets.(i);
  if !removed then t.size <- t.size - 1

let iter f t =
  Array.iter (fun chain -> List.iter (fun (k, v) -> f k v) chain) t.buckets

let fold f t init =
  Array.fold_left
    (fun acc chain -> List.fold_left (fun acc (k, v) -> f k v acc) acc chain)
    init t.buckets

let clear t =
  Array.fill t.buckets 0 (Array.length t.buckets) [];
  t.size <- 0
