(** Alphonse: incremental computation as a programming abstraction.

    An OCaml reproduction of Hoover's PLDI 1992 system. Programs establish
    properties with plain exhaustive procedures; declaring them as
    {!Func}s — the [(*MAINTAINED*)]/[(*CACHED*)] pragmas — makes the
    runtime maintain them incrementally across mutations of tracked
    {!Var}s, by dynamic dependency analysis plus quiescence propagation
    and (non-combinator) function caching.

    Quickstart — the maintained-height tree of the paper's Algorithm 1:

    {[
      let eng = Alphonse.Engine.create () in
      (* tree with tracked child pointers *)
      let height = Alphonse.Func.create eng ~name:"height"
        (fun height t -> match t with
           | Nil -> 0
           | Node n -> 1 + max (Alphonse.Func.call height (Alphonse.Var.get n.left))
                               (Alphonse.Func.call height (Alphonse.Var.get n.right)))
      in
      ignore (Alphonse.Func.call height root);   (* O(n) first run       *)
      Alphonse.Var.set some_node.left subtree;   (* O(1) mutation        *)
      ignore (Alphonse.Func.call height root)    (* O(path) re-execution *)
    ]} *)

module Engine = Engine
module Var = Var
module Func = Func
module Pool = Pool
module Parallel = Parallel
module Policy = Policy
module Inspect = Inspect
module Telemetry = Telemetry
module Audit = Audit
module Faults = Faults
module Json = Json
module Wal = Wal
module Durable = Durable
module Htbl = Htbl
module Metrics = Metrics
module Flight = Flight
module Serve = Serve
module Tenant = Tenant
module Daemon = Daemon
