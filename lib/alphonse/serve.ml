(* Minimal HTTP/1.0 exposition endpoint over plain [Unix] sockets — no
   web framework in the image, and none needed: a metrics scrape is one
   GET, one response, connection closed. This is deliberately NOT a
   general web server: GET only, no keep-alive, no chunking, request
   line + headers capped at 8 KiB, one connection served at a time
   (scrapes are serial and sub-millisecond; a stuck client can delay
   the next scrape but not wedge the process, thanks to a socket
   timeout). The listener half ([create_raw]/[accept]) is also the
   daemon's connection front end: [Daemon] reuses the resilient accept
   loop and runs its own newline-delimited JSON protocol over the
   accepted descriptors. *)

type response = { status : int; content_type : string; body : string }

let text ?(status = 200) body =
  { status; content_type = "text/plain; version=0.0.4; charset=utf-8"; body }

let json ?(status = 200) body =
  { status; content_type = "application/json"; body }

type t = {
  sock : Unix.file_descr;
  port : int;
  addr : Unix.inet_addr;
  routes : (string * (unit -> response)) list;
  timeout : float;
  mutable closed : bool;
  (* transient-failure accounting: accept errors must not kill the
     loop, but they must not be invisible either *)
  mutable accept_errors : int;
  mutable oversize_requests : int;
  mutable m_accept_errors : Metrics.counter option;
  mutable m_oversize : Metrics.counter option;
}

let reason = function
  | 200 -> "OK"
  | 400 -> "Bad Request"
  | 404 -> "Not Found"
  | 405 -> "Method Not Allowed"
  | 408 -> "Request Timeout"
  | 429 -> "Too Many Requests"
  | 431 -> "Request Header Fields Too Large"
  | 503 -> "Service Unavailable"
  | _ -> "Response"

let create_gen ?(host = "127.0.0.1") ?(timeout = 5.0) ~port routes =
  let addr = Unix.inet_addr_of_string host in
  let sock = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  (try
     Unix.setsockopt sock Unix.SO_REUSEADDR true;
     Unix.bind sock (Unix.ADDR_INET (addr, port));
     Unix.listen sock 64
   with e ->
     (try Unix.close sock with _ -> ());
     raise e);
  let port =
    match Unix.getsockname sock with
    | Unix.ADDR_INET (_, p) -> p
    | _ -> port
  in
  {
    sock;
    port;
    addr;
    routes;
    timeout;
    closed = false;
    accept_errors = 0;
    oversize_requests = 0;
    m_accept_errors = None;
    m_oversize = None;
  }

let create ?host ~port routes = create_gen ?host ~port routes
let create_raw ?host ?timeout ~port () = create_gen ?host ?timeout ~port []
let port s = s.port
let accept_errors s = s.accept_errors
let oversize_requests s = s.oversize_requests

let set_metrics s = function
  | None ->
    s.m_accept_errors <- None;
    s.m_oversize <- None
  | Some reg ->
    s.m_accept_errors <-
      Some
        (Metrics.counter reg "serve_accept_errors_total"
           ~help:"transient accept(2) failures survived by the listener");
    s.m_oversize <-
      Some
        (Metrics.counter reg "serve_oversize_requests_total"
           ~help:"requests rejected with 431 (over the 8 KiB cap)")

let count_accept_error s =
  s.accept_errors <- s.accept_errors + 1;
  match s.m_accept_errors with None -> () | Some c -> Metrics.inc c

(* Accept one connection, surviving the transient failures a hostile
   network hands a long-running listener: EINTR (signals), ECONNABORTED
   (client gave up between SYN and accept), EAGAIN/EWOULDBLOCK (kernel
   race), and descriptor exhaustion (EMFILE/ENFILE — backs off instead
   of spinning). Returns [None] once the listener is closed. A blocked
   accept is woken by [close]'s self-connection, so shutdown does not
   wait for a real client. *)
let rec accept s =
  if s.closed then None
  else
    match Unix.accept s.sock with
    | fd, _ ->
      if s.closed then begin
        (try Unix.close fd with _ -> ());
        None
      end
      else begin
        (* a stalled client must not wedge the serving loop *)
        (try
           Unix.setsockopt_float fd Unix.SO_RCVTIMEO s.timeout;
           Unix.setsockopt_float fd Unix.SO_SNDTIMEO s.timeout
         with _ -> ());
        Some fd
      end
    | exception
        Unix.Unix_error
          ((EINTR | ECONNABORTED | EAGAIN | EWOULDBLOCK), _, _) ->
      count_accept_error s;
      accept s
    | exception Unix.Unix_error ((EMFILE | ENFILE), _, _) ->
      count_accept_error s;
      if not s.closed then (try Unix.sleepf 0.05 with _ -> ());
      accept s
    | exception _ when s.closed -> None
    | exception Unix.Unix_error ((EBADF | EINVAL), _, _) ->
      (* closed under us by another thread *)
      None

(* Read until the end of the header block (we ignore bodies: GET only).
   Bounded: a client streaming garbage past 8 KiB is answered 431 and
   cut off instead of having its prefix parsed as a request. *)
let contains_substring s sub =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  m = 0 || go 0

let read_request fd =
  let buf = Buffer.create 512 in
  let chunk = Bytes.create 512 in
  let rec go () =
    if Buffer.length buf > 8192 then `Oversize
    else
      let n = try Unix.read fd chunk 0 (Bytes.length chunk) with _ -> 0 in
      if n = 0 then `Request (Buffer.contents buf)
      else begin
        Buffer.add_subbytes buf chunk 0 n;
        let s = Buffer.contents buf in
        (* tolerate bare-LF clients *)
        if contains_substring s "\r\n\r\n" || contains_substring s "\n\n"
        then `Request s
        else go ()
      end
  in
  go ()

let write_all fd s =
  let b = Bytes.of_string s in
  let len = Bytes.length b in
  let rec go off =
    if off < len then
      match Unix.write fd b off (len - off) with
      | 0 -> ()
      | n -> go (off + n)
      | exception _ -> ()
  in
  go 0

let respond fd { status; content_type; body } =
  write_all fd
    (Printf.sprintf
       "HTTP/1.0 %d %s\r\nContent-Type: %s\r\nContent-Length: %d\r\n\
        Connection: close\r\n\r\n%s"
       status (reason status) content_type (String.length body) body)

let handle s fd =
  let resp =
    match read_request fd with
    | `Oversize ->
      s.oversize_requests <- s.oversize_requests + 1;
      (match s.m_oversize with None -> () | Some c -> Metrics.inc c);
      text ~status:431 "request header fields too large\n"
    | `Request req -> (
      match String.index_opt req '\n' with
      | None -> text ~status:405 "bad request\n"
      | Some nl -> (
        let line = String.trim (String.sub req 0 nl) in
        match String.split_on_char ' ' line with
        | "GET" :: target :: _ -> (
          (* strip any query string: routes are bare paths *)
          let path =
            match String.index_opt target '?' with
            | None -> target
            | Some q -> String.sub target 0 q
          in
          match List.assoc_opt path s.routes with
          | Some f -> ( try f () with _ -> text ~status:503 "handler failed\n")
          | None -> text ~status:404 "not found\n")
        | _ -> text ~status:405 "method not allowed\n"))
  in
  respond fd resp

let serve_one s =
  match accept s with
  | None -> ()
  | Some fd ->
    Fun.protect
      ~finally:(fun () -> try Unix.close fd with _ -> ())
      (fun () -> try handle s fd with _ -> ())

let serve ~max_requests s =
  for _ = 1 to max_requests do
    if not s.closed then serve_one s
  done

let serve_forever s =
  while not s.closed do
    serve_one s
  done

let close s =
  if not s.closed then begin
    s.closed <- true;
    (* wake any accept blocked in another thread: closing a descriptor
       does not reliably unblock a concurrent accept(2) on Linux, so
       poke the listener with a throwaway connection first *)
    (try
       let w = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
       (try Unix.connect w (Unix.ADDR_INET (s.addr, s.port)) with _ -> ());
       (try Unix.close w with _ -> ())
     with _ -> ());
    try Unix.close s.sock with _ -> ()
  end
