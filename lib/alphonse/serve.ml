(* Minimal HTTP/1.0 exposition endpoint over plain [Unix] sockets — no
   web framework in the image, and none needed: a metrics scrape is one
   GET, one response, connection closed. This is deliberately NOT a
   general web server: GET only, no keep-alive, no chunking, request
   line + headers capped at 8 KiB, one connection served at a time
   (scrapes are serial and sub-millisecond; a stuck client can delay
   the next scrape but not wedge the process, thanks to a socket
   timeout). *)

type response = { status : int; content_type : string; body : string }

let text ?(status = 200) body =
  { status; content_type = "text/plain; version=0.0.4; charset=utf-8"; body }

let json ?(status = 200) body =
  { status; content_type = "application/json"; body }

type t = {
  sock : Unix.file_descr;
  port : int;
  routes : (string * (unit -> response)) list;
  mutable closed : bool;
}

let reason = function
  | 200 -> "OK"
  | 404 -> "Not Found"
  | 405 -> "Method Not Allowed"
  | 503 -> "Service Unavailable"
  | _ -> "Response"

let create ?(host = "127.0.0.1") ~port routes =
  let sock = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  (try
     Unix.setsockopt sock Unix.SO_REUSEADDR true;
     Unix.bind sock (Unix.ADDR_INET (Unix.inet_addr_of_string host, port));
     Unix.listen sock 16
   with e ->
     (try Unix.close sock with _ -> ());
     raise e);
  let port =
    match Unix.getsockname sock with
    | Unix.ADDR_INET (_, p) -> p
    | _ -> port
  in
  { sock; port; routes; closed = false }

let port s = s.port

(* Read until the end of the header block (we ignore bodies: GET only).
   Bounded: a client streaming garbage is cut off at 8 KiB. *)
let contains_substring s sub =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  m = 0 || go 0

let read_request fd =
  let buf = Buffer.create 512 in
  let chunk = Bytes.create 512 in
  let rec go () =
    if Buffer.length buf <= 8192 then
      let n = try Unix.read fd chunk 0 (Bytes.length chunk) with _ -> 0 in
      if n > 0 then begin
        Buffer.add_subbytes buf chunk 0 n;
        let s = Buffer.contents buf in
        (* tolerate bare-LF clients *)
        if not (contains_substring s "\r\n\r\n" || contains_substring s "\n\n")
        then go ()
      end
  in
  go ();
  Buffer.contents buf

let write_all fd s =
  let b = Bytes.of_string s in
  let len = Bytes.length b in
  let rec go off =
    if off < len then
      match Unix.write fd b off (len - off) with
      | 0 -> ()
      | n -> go (off + n)
      | exception _ -> ()
  in
  go 0

let respond fd { status; content_type; body } =
  write_all fd
    (Printf.sprintf
       "HTTP/1.0 %d %s\r\nContent-Type: %s\r\nContent-Length: %d\r\n\
        Connection: close\r\n\r\n%s"
       status (reason status) content_type (String.length body) body)

let handle s fd =
  let req = read_request fd in
  let resp =
    match String.index_opt req '\n' with
    | None -> text ~status:405 "bad request\n"
    | Some nl -> (
      let line = String.trim (String.sub req 0 nl) in
      match String.split_on_char ' ' line with
      | "GET" :: target :: _ -> (
        (* strip any query string: routes are bare paths *)
        let path =
          match String.index_opt target '?' with
          | None -> target
          | Some q -> String.sub target 0 q
        in
        match List.assoc_opt path s.routes with
        | Some f -> ( try f () with _ -> text ~status:503 "handler failed\n")
        | None -> text ~status:404 "not found\n")
      | _ -> text ~status:405 "method not allowed\n")
  in
  respond fd resp

let serve_one s =
  let fd, _ = Unix.accept s.sock in
  (* a stalled client must not wedge the scrape loop *)
  (try
     Unix.setsockopt_float fd Unix.SO_RCVTIMEO 5.0;
     Unix.setsockopt_float fd Unix.SO_SNDTIMEO 5.0
   with _ -> ());
  Fun.protect
    ~finally:(fun () -> try Unix.close fd with _ -> ())
    (fun () -> try handle s fd with _ -> ())

let serve ~max_requests s =
  for _ = 1 to max_requests do
    if not s.closed then serve_one s
  done

let serve_forever s =
  while not s.closed do
    serve_one s
  done

let close s =
  if not s.closed then begin
    s.closed <- true;
    try Unix.close s.sock with _ -> ()
  end
