(** Minimal HTTP/1.0 exposition endpoint over plain [Unix] sockets.

    Serves a fixed route table — typically [/metrics] (Prometheus
    text), [/metrics.json], [/healthz] and [/readyz] — to scrapers and
    probes. Deliberately not a general web server: GET only (405
    otherwise), no keep-alive, one connection at a time, 8 KiB request
    cap, 5 s socket timeouts so a stalled client cannot wedge the
    scrape loop. Handlers run per request, so a [/metrics] handler
    rendering {!Metrics.to_prometheus} always serves current values. *)

type response = { status : int; content_type : string; body : string }

val text : ?status:int -> string -> response
(** Plain-text response (content type
    [text/plain; version=0.0.4; charset=utf-8] — the Prometheus
    exposition type). Default status 200. *)

val json : ?status:int -> string -> response
(** [application/json] response. Default status 200. *)

type t

val create :
  ?host:string -> port:int -> (string * (unit -> response)) list -> t
(** [create ~port routes] binds and listens (default host
    [127.0.0.1]). [port = 0] picks a free port — read it back with
    {!port} (tests do this to avoid collisions). Routes map bare paths
    (query strings are stripped) to handlers; a handler that raises
    answers 503, an unknown path 404. *)

val port : t -> int
(** The bound port (useful with [port:0]). *)

val serve : max_requests:int -> t -> unit
(** Accept and answer exactly [max_requests] connections, then return.
    Used by tests and by [alphonsec serve --max-requests]. *)

val serve_forever : t -> unit
(** Accept loop until {!close} is called from another thread/domain (or
    the process dies). *)

val close : t -> unit
(** Stop accepting and release the socket. Idempotent. *)
