(** Minimal HTTP/1.0 exposition endpoint over plain [Unix] sockets.

    Serves a fixed route table — typically [/metrics] (Prometheus
    text), [/metrics.json], [/healthz] and [/readyz] — to scrapers and
    probes. Deliberately not a general web server: GET only (405
    otherwise), no keep-alive, one connection at a time, 8 KiB request
    cap (431 beyond it), 5 s socket timeouts so a stalled client cannot
    wedge the scrape loop. Handlers run per request, so a [/metrics]
    handler rendering {!Metrics.to_prometheus} always serves current
    values.

    The accept loop survives the transient failures a long-running
    listener meets — [EINTR], [ECONNABORTED], [EAGAIN]/[EWOULDBLOCK],
    descriptor exhaustion — counting them ({!accept_errors}, and
    [serve_accept_errors_total] when metrics are attached) instead of
    dying. The listener half ({!create_raw}/{!accept}) doubles as the
    {!Daemon}'s connection front end. *)

type response = { status : int; content_type : string; body : string }

val text : ?status:int -> string -> response
(** Plain-text response (content type
    [text/plain; version=0.0.4; charset=utf-8] — the Prometheus
    exposition type). Default status 200. *)

val json : ?status:int -> string -> response
(** [application/json] response. Default status 200. *)

type t

val create :
  ?host:string -> port:int -> (string * (unit -> response)) list -> t
(** [create ~port routes] binds and listens (default host
    [127.0.0.1]). [port = 0] picks a free port — read it back with
    {!port} (tests do this to avoid collisions). Routes map bare paths
    (query strings are stripped) to handlers; a handler that raises
    answers 503, an unknown path 404, a request exceeding the 8 KiB
    cap 431. *)

val create_raw : ?host:string -> ?timeout:float -> port:int -> unit -> t
(** A bare listener with no routes, for callers that speak their own
    protocol over {!accept}ed descriptors (the daemon's NDJSON front
    end). [timeout] is the per-connection socket send/receive timeout
    stamped on accepted descriptors (default 5 s; the daemon uses a
    longer one so a think-pause between request lines is not a
    disconnect). *)

val port : t -> int
(** The bound port (useful with [port:0]). *)

val accept : t -> Unix.file_descr option
(** Accept one connection, retrying transient failures (counted in
    {!accept_errors}) and backing off briefly on descriptor
    exhaustion. The descriptor comes with the listener's send/receive
    timeouts already set. [None] once the listener is {!close}d —
    including a close issued from another thread while this call was
    blocked. *)

val accept_errors : t -> int
(** Transient accept failures survived so far. *)

val oversize_requests : t -> int
(** Requests answered 431 so far. *)

val set_metrics : t -> Metrics.t option -> unit
(** Attach a registry: transient accept failures and oversize requests
    are counted as [serve_accept_errors_total] and
    [serve_oversize_requests_total]. *)

val serve : max_requests:int -> t -> unit
(** Accept and answer exactly [max_requests] connections, then return.
    Used by tests and by [alphonsec serve --max-requests]. *)

val serve_forever : t -> unit
(** Accept loop until {!close} is called from another thread/domain (or
    the process dies). *)

val write_all : Unix.file_descr -> string -> unit
(** Best-effort full write (short writes retried, errors swallowed —
    the peer owns its half of the connection). Exposed for protocol
    code layered on {!accept}. *)

val close : t -> unit
(** Stop accepting and release the socket, waking any {!accept} blocked
    in another thread. Idempotent. *)
