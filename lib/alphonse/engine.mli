(** The Alphonse incremental-computation engine (paper §4–§5).

    The engine owns the dynamic dependency graph, the call stack of
    currently-executing incremental procedure instances, and the
    inconsistent sets that drive quiescence propagation. It implements the
    engine half of the three transformation templates:

    - [access] (Algorithm 3) → {!new_storage} + {!record_read}
    - [modify] (Algorithm 4) → {!record_write}
    - [call]   (Algorithm 5) → {!new_instance} + {!on_call}

    The typed halves (value cells, argument tables, result caches) live in
    {!Var} and {!Func}, which hold their state in closures so the engine
    itself is value-agnostic.

    {2 Deviations from the paper, and why}

    - Algorithm 5 runs the evaluator on any call finding a cached node with
      a non-empty inconsistent set. We run it only when no incremental
      procedure is executing; a dirty dependency reached {e during} an
      execution is recomputed on the spot ({!on_call} forces it), which
      computes the same values without re-entering the evaluator.
    - Algorithm 4 compares the written value against the value cached in
      the storage node. We compare against the current contents of the
      typed cell, which is equal to it except in A→B→A write sequences
      between propagations; there we conservatively schedule a propagation
      that quiesces immediately. *)

type t
(** An engine instance. Distinct engines are fully independent. *)

val log_src : Logs.src
(** The engine's tracing source ("alphonse.engine"): set it to [Debug]
    to stream marks, (re-)executions and settle pops — the observability
    counterpart of the paper's §10 debugging remark. For structured
    (machine-readable) telemetry use {!set_telemetry} instead. *)

val set_telemetry : t -> Telemetry.t option -> unit
(** Attaches (or detaches) a structured telemetry recorder: the engine
    then emits a {!Telemetry.event} per decision — creations, marks,
    execution begin/end, cache hits, settle pops, edges, unions,
    evictions. With [None] (the default) every instrumentation site is a
    single predictable branch and allocates nothing. *)

val telemetry : t -> Telemetry.t option
(** The attached recorder, or [None]. *)

val set_metrics : t -> Metrics.t option -> unit
(** Attaches (or detaches) a metrics registry. The engine resolves its
    cells once here — settles, steps, settle-duration histogram,
    first/re executions, cache hits, cutoffs, quarantines, poisonings,
    retries, degradations, rollbacks, parallel levels/tasks and the
    per-lane pool counters — and thereafter updates them lock-free from
    any domain. With [None] (the default) every site is a single
    predictable branch and allocates nothing (bench E20 gates the
    disabled-path overhead at 5%). *)

val metrics : t -> Metrics.t option
(** The attached registry, for layers above the engine ([Durable],
    [Faults], the CLI) to register their own metrics into. *)

type node
(** A dependency-graph node owned by some engine: either an abstract
    storage location or an incremental procedure instance. *)

type strategy =
  | Demand  (** lazily update on calls (the [DEMAND] pragma argument) *)
  | Eager   (** update during propagation (the [EAGER] pragma argument) *)

(** How the evaluator selects the next element of the inconsistent set —
    §4.5's "selection of u from the set is done using an algorithm such
    as [Hud86, Hoo86, Hoo87, AHR+90]". Correctness is order-independent
    (a dirty dependency reached during an execution is recomputed on the
    spot); the order governs how much redundant re-execution eager
    propagation performs on diamond-shaped graphs. *)
type scheduling =
  | Creation_order
      (** priorities fixed at node creation: dependencies discovered
          during an execution drain before their consumer (default) *)
  | Topological
      (** creation priorities plus Pearce–Kelly restoration on every
          order-violating edge, keeping the drain order topological *)
  | Fifo  (** no priorities: first marked, first processed *)
  | Parallel of { domains : int }
      (** level-synchronized parallel settling on [domains] concurrent
          lanes (the caller's domain counts, so [domains = 1] spawns no
          worker and serializes). Each settle round executes one level
          front — the queued nodes at minimal longest-path depth over
          the affected subgraph, which are mutually independent — on a
          reusable OCaml 5 domain pool; workers buffer their engine
          mutations and a per-level merge barrier applies them in lane
          order, keeping propagation deterministic. See
          {!settle_parallel}. *)

exception Cycle of string
(** Raised when an incremental procedure instance (transitively) calls
    itself with identical arguments — e.g. a circular spreadsheet formula.
    The payload names the offending instance. Structural: it never
    consumes an instance's retry budget (see {!create}'s [max_retries]).
    The engine remains fully usable after a [Cycle] escape — the call
    stack is unwound and the failed instance's edges are restored. *)

exception Poisoned of string
(** Raised by calls to an instance whose execution failed [max_retries]
    consecutive times: the typed-error form of a permanently failing
    procedure. Propagates through dependents (their reads re-raise it)
    until {!clear_poison}. Structural, like {!Cycle}: observing a
    poisoned dependency does not consume the observer's retry budget. *)

exception Audit_failure of string list
(** Raised by {!audit} when an engine invariant does not hold; the
    payload lists every violated invariant. *)

exception Watchdog of string
(** Raised when the call-stack depth watchdog trips (see {!create}'s
    [max_stack_depth]) — runaway recursion through incremental calls.
    Structural, like {!Cycle}: a nested frame's depth violation unwinds
    through its callers without consuming their retry budgets (retrying
    cannot shrink the recursion, so charging would eventually poison
    instances for a condition only a graph change can fix). *)

exception Cancelled of string
(** Raised when the armed {!Budget} trips: its wall-clock deadline
    passed, its settle-step cap was reached, or {!Budget.cancel} was
    called from another thread. Checked only at settle-step boundaries
    (cooperative cancellation), before the inconsistent-set pop, so the
    abandoned settle leaves every pending node queued: a later
    stabilize resumes it, and inside {!transact} the whole batch rolls
    back to its pre-batch state. Structural, like {!Watchdog}: a trip
    never consumes any instance's retry budget. *)

val create :
  ?partitioning:bool ->
  ?default_strategy:strategy ->
  ?scheduling:scheduling ->
  ?max_retries:int ->
  ?max_settle_steps:int ->
  ?max_stack_depth:int ->
  ?self_audit:bool ->
  unit ->
  t
(** [create ()] makes a fresh engine. [partitioning] (default [false])
    enables the dynamic union–find partitioning of §6.3: each call then
    propagates only the inconsistencies of the called node's partition.
    [default_strategy] (default [Demand]) applies to instances created
    without an explicit strategy. [scheduling] (default
    [Creation_order]) picks the inconsistent-set drain order.

    Fault tolerance: [max_retries] (default 3, must be ≥ 1) is how many
    consecutive times an instance's execution may fail before it is
    poisoned ({!Poisoned}). [max_settle_steps] (unset by default) is a
    watchdog on a single settle session: propagation exceeding it
    degrades to exhaustive recomputation ({!degrade_to_exhaustive})
    instead of spinning. [max_stack_depth] (unset by default) bounds the
    incremental call stack; exceeding it raises {!Watchdog}.
    [self_audit] (default [false]) runs {!audit} after every settle
    step. *)

val default_strategy : t -> strategy
(** The strategy applied to instances created without an explicit one. *)

val partitioning : t -> bool
(** Whether §6.3 dynamic partitioning is enabled for this engine. *)

val scheduling : t -> scheduling
(** The inconsistent-set drain order this engine was created with. *)

val max_retries : t -> int
(** Consecutive execution failures before an instance is poisoned. *)

(** {1 Storage side (used by [Var])} *)

val new_storage : t -> name:string -> node
(** Creates the dependency-graph node for an abstract storage location; in
    the paper this happens on the first [access] inside an Alphonse
    procedure, and {!Var} follows that discipline. *)

val record_read : t -> node -> unit
(** Registers that the currently-executing incremental instance (if any)
    read this node. No-op outside incremental execution or under
    {!unchecked}. *)

val record_write : t -> node -> changed:bool -> unit
(** Registers a write: a read-style dependency edge for the executing
    instance (a maintained procedure must re-execute if storage it wrote is
    later clobbered, §4.3), plus — when [changed] — marking the node
    inconsistent. *)

(** {1 Instance side (used by [Func])} *)

val new_instance :
  t ->
  name:string ->
  strategy:strategy ->
  ?static_deps:bool ->
  recompute:(unit -> bool) ->
  unit ->
  node
(** Creates an incremental procedure instance node. [recompute] re-executes
    the user procedure under the engine's call-stack discipline (the engine
    clears predecessor edges and pushes the stack around it), stores the
    result in the caller's typed cache, and returns whether the cached
    value changed — the quiescence test. A fresh instance is inconsistent;
    the first {!on_call} executes it.

    [static_deps] (default [false]) enables the static subgraph
    representation of §6.2: the programmer asserts that the instance's
    referenced-argument set R(p) is identical on every execution, so the
    dependency edges recorded by the first run are kept verbatim —
    re-executions skip both [RemovePredEdges] and edge recording. Unsound
    if the assertion is false (a dependency read only on some executions
    would go untracked). *)

val on_call : t -> node -> unit
(** The engine part of a [call] to an incremental instance: settles the
    node's partition when appropriate, forces the node if it is
    inconsistent, and records the dependency of the calling instance (if
    any). On return the typed cache behind [recompute] is current.

    Failure semantics: if the forced execution raises, the engine first
    restores itself (stack unwound, the instance's previous edge set put
    back, the instance re-marked inconsistent, the caller's dependency on
    it recorded) and then re-raises — the caller may turn the exception
    into an error value and keep using the engine; the next call retries
    the instance.
    @raise Cycle on re-entrant calls to an instance already executing.
    @raise Poisoned if the instance exhausted its retry budget. *)

val removable : t -> node -> bool
(** Whether an instance node may be discarded by cache replacement: it has
    no live dependents, is not executing, and is not pending propagation.
    Evicting only such nodes keeps replacement sound (a dependent of an
    evicted node could otherwise miss change notifications). *)

val discard : t -> node -> unit
(** Removes an instance node from the graph (cache eviction). The caller
    must have checked {!removable}. *)

(** {1 Control} *)

val stabilize : t -> unit
(** Runs propagation to quiescence over every partition: processes the
    inconsistent sets as in §4.5. For [Eager] instances this re-executes
    affected procedures now; for [Demand] instances it spreads dirty flags.
    This is the "evaluation routine [to] be called whenever cycles are
    available".

    Settlement is total with respect to instance failures: an execution
    that raises is quarantined (retried by the next stabilize, up to
    [max_retries], then poisoned) and propagation of the remaining work
    continues. Quarantined instances are re-marked at entry. *)

val settle_bounded : t -> max_steps:int -> bool
(** Preemptable evaluation (§4.5): processes at most [max_steps] elements
    of the inconsistent sets, in priority order, and returns whether the
    engine is now quiescent. Intended for spending idle cycles in slices
    ("the evaluation routine should be called whenever cycles are
    available … and can be preempted when necessary"). Always serial,
    regardless of the engine's scheduling. *)

(** {1 Deadlines and cooperative cancellation}

    A budget bounds one or more settle sessions by wall clock, by
    settle-step count, or by an external cancel signal. The daemon arms
    one per request batch so a slow tenant cannot wedge the process:
    the trip raises {!Cancelled} at a settle-step boundary and — when
    the batch runs inside {!transact} — the undo log restores the
    pre-batch state, so a cancelled request never leaves a wrong
    answer, only an unserved one. *)

module Budget : sig
  type t

  val create :
    ?deadline:float -> ?deadline_in:float -> ?max_steps:int -> unit -> t
  (** [deadline] is absolute (the [Unix.gettimeofday] timeline);
      [deadline_in] is relative to now — [deadline] wins when both are
      given. [max_steps] caps the settle steps charged to this budget
      across every settle it is armed for (must be [>= 1]). With no
      arguments the budget only trips via {!cancel}. *)

  val cancel : t -> unit
  (** Request cancellation; thread/domain-safe. The owning engine
      raises {!Cancelled} at its next settle-step boundary. *)

  val cancelled : t -> bool
  val steps_used : t -> int
  (** Settle steps charged so far. *)

  val deadline : t -> float option
end

val set_budget : t -> Budget.t option -> unit
(** Arm (or disarm, with [None]) the engine's budget. Checked at every
    settle-step boundary of every settle flavour (serial, bounded,
    parallel), before the pop — so a trip leaves all pending work
    queued and resumable. *)

val budget : t -> Budget.t option
(** The currently armed budget, or [None]. *)

val with_budget : t -> Budget.t -> (unit -> 'a) -> 'a
(** [with_budget t b f] runs [f] with [b] armed, restoring the previous
    budget on return or raise. The daemon wraps each request batch:
    [with_budget eng b (fun () -> transact eng batch)]. *)

(** {1 Parallel settlement} *)

val settle_parallel : t -> domains:int -> unit
(** Settles to quiescence with level-synchronized parallel propagation:
    each round pops the front of queued nodes at minimal longest-path
    depth (independent by construction — an edge between two queued
    nodes forces distinct depths, and writers of a storage cell level
    strictly below its other readers) and executes the front's eager
    members concurrently on a reusable domain pool of [domains] lanes.
    Storage and demand members are processed by the coordinator.
    Workers buffer every engine mutation (edges, writes, marks,
    telemetry, counters) in a per-lane context; the per-level merge
    barrier journals write intents first and then applies the buffers
    in lane order, so the propagated state is deterministic given the
    workload. A worker that demands a dirty dependency mid-level claims
    it (or waits for the sibling executing it); circular cross-worker
    waits surface as {!Cycle}.

    Failure semantics match the serial evaluator: a task whose body
    raises has its previous edge set restored and its retry budget
    charged at the barrier; fault-hook pokes fire on worker domains
    (serialized); the settle-step watchdog degrades to exhaustive
    recomputation. Equivalent to {!stabilize} when the engine was
    created with [scheduling = Parallel _]. Falls back to the serial
    evaluator when called during an execution. [domains = 1] uses the
    full parallel machinery on the caller's lane only. *)

val dirty_levels : t -> node list list
(** The level fronts the next parallel settle would execute, shallowest
    first; nodes within a front are in heap priority order's input
    order. Introspection for {!Alphonse.Parallel.levels}, tests and
    docs; an empty list means quiescent. *)

val critical : t -> (unit -> 'a) -> 'a
(** [critical t f] runs [f] under the engine's parallel-settle lock when
    a parallel settle is active (and runs it plainly otherwise). Shared
    caches that engine callbacks touch from worker domains — {!Func}
    instance tables, {!Var} cell maps — wrap their mutations with this
    to stay coherent; it is reentrant within one domain. *)

val shutdown_pool : t -> unit
(** Drops the engine's reference to its domain pool. Pools are
    process-wide ({!Pool.shared}, keyed by domain count) and their
    workers stay alive for reuse — this only detaches the engine. Safe
    to call when no pool is attached; a later parallel settle
    re-acquires one. *)

(** {1 Fault tolerance} *)

val transact : t -> (unit -> 'a) -> 'a
(** [transact t f] runs the mutation batch [f] atomically with respect to
    propagation: tracked writes made by [f] are logged, and the closing
    settle runs when [f] returns — the batch then commits. If [f] {e or the batch's settle} raises, the
    batch rolls back: newly-marked nodes are un-marked, the typed cells
    are restored (newest write first), and any instance that executed
    against the batch's intermediate state is re-invalidated together
    with its dependents, so the next settle recomputes from the restored
    inputs. The exception is re-raised after rollback.

    Reads made inside [f] observe the partial batch (demand semantics);
    their cached results are invalidated again on rollback.
    @raise Invalid_argument on nested transactions or when called from
    inside an incremental execution. *)

val in_transaction : t -> bool
(** Whether a {!transact} batch is currently open. *)

val txn_log : t -> (unit -> unit) -> unit
(** Registers an undo action with the open transaction (no-op outside
    one). Typed-cell owners ({!Var}) call this before overwriting their
    contents so {!transact} can roll them back. The engine's own log
    points (settle-pop mark restoration, the demand consistency flip)
    do not pass through here — they are stored as typed node/instance
    indices, not closures, so a settle step inside a transaction stays
    allocation-light. *)

val quarantined : t -> node list
(** Instances whose last execution failed and that await a bounded retry
    at the next {!stabilize}/{!settle_bounded} (demand instances also
    retry on their next call). *)

val poisoned : t -> node -> bool
(** Whether the instance exhausted its retry budget (see {!Poisoned}). *)

val poison_error : t -> node -> exn option
(** The exception that poisoned the instance, or [None]. *)

val failure_count : t -> node -> int
(** Consecutive failed executions of the instance (0 after a success). *)

val clear_poison : t -> node -> unit
(** Resets the instance's failure count {e and} poison and re-marks it
    inconsistent, so the next call or settle retries it. The failure
    count resets to 0 deliberately: clearing poison asserts the
    environment was fixed, so the instance gets a full fresh retry
    budget — it takes [max_retries] {e new} consecutive failures (with
    a quarantine pass through each) to poison it again, not one. *)

val degrade_to_exhaustive : t -> unit
(** Abandons incrementality for the pending work: clears every
    inconsistent set and flags every instance inconsistent, so each next
    demand recomputes from scratch (the exhaustive semantics, guaranteed
    to terminate). Called automatically when the [max_settle_steps]
    watchdog trips. *)

(** {1 Invariant auditor (engine half of {!Alphonse.Audit})} *)

val audit : t -> unit
(** Checks the coherence of the engine's metadata: graph link symmetry,
    call stack ↔ [on_stack] flags, every queued node present in its
    partition's inconsistent set and that partition reachable from the
    dirty list, discarded nodes fully detached, poisoned instances not
    flagged consistent, and the recording/settling flags coherent when
    idle. Cheap enough for per-step use in tests ([self_audit]).
    @raise Audit_failure listing every violated invariant. *)

val audit_errors : t -> string list
(** Non-raising {!audit}: the violated invariants, [[]] when coherent. *)

val set_self_audit : t -> bool -> unit
(** Toggles auditing after every settle step (see [create]'s
    [self_audit]). *)

val self_audit : t -> bool
(** Whether per-settle-step auditing is currently enabled. *)

(** {1 Fault injection (engine half of {!Faults})} *)

val fault_sites : string list
(** The engine decision points at which an installed fault hook is poked:
    ["exec-begin"], ["mark"], ["edge"], ["settle-pop"], ["clear-preds"],
    ["evict"]. Sites sit before their state mutation, so a hook that
    raises models a fault the engine must recover from. *)

val set_fault_hook : t -> (string -> unit) option -> unit
(** Installs (or clears) the fault hook, called with the site label at
    every decision point. A hook that raises injects a fault there; the
    engine's repair paths run with the hook suppressed. Test-only
    machinery — see {!Faults} for deterministic injectors. *)

val fault_hook : t -> (string -> unit) option
(** The installed fault hook, or [None]. *)

(** {1 Durability hooks (engine half of {!Durable})} *)

type journal = {
  on_write : name:string -> id:int -> unit;
      (** Fires for every {e changed} tracked write, {e before} the
          engine mutation (the inconsistency mark) it announces — the
          write-ahead discipline. If it raises, the mark is still
          performed (masked) so in-memory state stays coherent; the
          journal then under-reports, which recovery treats as a safe
          verification miss. *)
  on_txn : [ `Begin | `Commit | `Abort ] -> unit;
      (** Transaction boundaries. [`Commit] fires only after the batch
          and its settle succeeded and before the caller learns the
          batch committed; if appending the commit marker raises, the
          batch rolls back. [`Abort] (after rollback) is advisory —
          replay drops uncommitted groups regardless. *)
}

val set_journal : t -> journal option -> unit
(** Installs (or clears) the durability journal hooks. One journal per
    engine; {!Durable.attach} manages it. *)

val journal : t -> journal option
(** The installed journal hooks, or [None]. *)

val export : t -> Json.t
(** The engine's {e logical} state as JSON: per-node
    name/kind/dirty/consistency/failure bookkeeping, quarantine and
    poison, the discovered edge list, and the {!stats} counters.
    Instance bodies are closures over typed caches, so cached values
    and [recompute] functions are {e not} serializable — a restore is
    structurally a cold rebuild and values recompute on demand (which
    is conservatively correct). Node names are the stable identities
    {!import} matches on; give every {!Func.create} used with
    durability a [pp_key] so its instances get distinct names. *)

val import : t -> Json.t -> int * string list
(** [import t j] restores exported logical state onto a live engine
    whose domain structure has already been rebuilt (by the domain's
    [Persistable] load). Matching is by stable node name, best-effort:
    unmatched or ambiguous names produce warnings, not errors — a node
    not yet re-demanded simply has nothing to restore onto. Restored
    per match: dirty marks (re-queued), failure counts, poison (as
    [Failure] of the recorded message; the instance stays parked until
    {!clear_poison}) and quarantine membership; the counters resume
    from the snapshot. Edges are deliberately NOT installed:
    dependencies are re-discovered by execution, and splicing them in
    without the cached values they justified would fake a consistency
    the caches cannot back. Returns (matched node count, warnings). *)

val unchecked : t -> (unit -> 'a) -> 'a
(** [unchecked t f] runs [f] with dependency recording suppressed for the
    current execution — the [(*UNCHECKED*)] pragma of §6.4. Reads and calls
    made by [f] register no edges for the current consumer; procedures
    called by [f] still track their own dependencies internally. Writes are
    still propagated (suppressing them would be unsound, not merely
    imprecise). *)

val is_executing : t -> bool
(** Whether an incremental procedure instance is currently on the call
    stack. *)

val recording : t -> bool
(** Whether an access made right now would record a dependency edge: an
    incremental instance is executing and recording is not suppressed by
    {!unchecked}. [Var] uses this to follow Algorithm 3's discipline of
    materializing storage nodes only on tracked accesses. *)

(** {1 The quick regime (the §6.1 ~1x fast path)}

    The engine maintains one boolean invariant, [quick], true exactly
    when no parallel settle is active, no transaction is open, no
    journal is attached, and no incremental instance is executing. In
    that regime a tracked read is semantically just the typed cell
    load (nothing to record), and a tracked write to an
    already-queued, live cell is just the store (the journal append,
    undo log and inconsistency mark would all be no-ops). [Var] tests
    these two predicates to bypass the engine call path entirely,
    which is what holds the E6 tracked-loop overhead to a small
    constant over a plain [ref]. See docs/PERFORMANCE.md. *)

val quick : t -> bool
(** Whether the engine is in the quick regime right now. A single
    field load — cheap enough to test on every tracked access. *)

val quick_write_ok : t -> node -> bool
(** [quick_write_ok t n] is true when a changed write to storage node
    [n] may skip the engine entirely: {!quick} holds and [n] is
    already marked inconsistent (and not discarded), so journaling,
    undo logging and marking would each be no-ops. The caller may
    then just store the new contents. *)

val node_name : node -> string
(** The name the node was created with. *)

val node_id : node -> int
(** The node's live engine-lifetime id (see also {!stable_id}). *)

val stable_id : t -> node -> int
(** The node's {e stable} identity for reports: after an {!import},
    matched nodes adopt the snapshot's node ids, so telemetry,
    profiles, DOT dumps and re-exports keep the identities a
    pre-restart trace used. For nodes never restored (or engines never
    imported into) this is just {!node_id}. *)

val succ_count : node -> int
(** Live dependents of a node — exposed for the E8 dependency-count
    benches. *)

val pred_count : node -> int
(** Live dependencies of a node. *)

(** {1 Statistics (benches E1–E11)} *)

type stats = {
  executions : int;  (** procedure (re)executions, including first runs *)
  first_executions : int;
  cache_hits : int;  (** calls answered from a consistent cached value *)
  settle_steps : int;  (** inconsistent-set pops processed *)
  queue_pushes : int;  (** nodes marked inconsistent *)
  unions : int;  (** partition unions performed *)
  out_of_order_edges : int;
      (** edges whose source was ordered after its destination when added —
          how far the priority order strays from topological *)
  order_fixups : int;
      (** Pearce–Kelly reorderings performed (Topological scheduling) *)
  evictions : int;
  failures : int;  (** executions that raised (excluding Cycle/Poisoned) *)
  retries : int;  (** quarantined instances re-marked for retry *)
  poisonings : int;  (** instances that exhausted their retry budget *)
  rollbacks : int;  (** transactions rolled back *)
  degradations : int;  (** watchdog degradations to exhaustive mode *)
  audits : int;  (** auditor runs (on demand or per-step) *)
  par_levels : int;  (** parallel level fronts dispatched *)
  par_tasks : int;  (** eager executions handed to the domain pool *)
}

val stats : t -> stats
(** The engine's lifetime counters (see {!type:stats}). *)

val reset_stats : t -> unit
(** Zeroes the counters of {!stats} (graph totals are unaffected). *)

val graph_stats : t -> Depgraph.Graph.stats
(** Node/edge/order counters of the underlying arena graph. *)

val iter_nodes : t -> (node -> unit) -> unit
(** Iterates over all live nodes, for {!Inspect}. *)

val node_kind : node -> [ `Storage | `Instance ]
(** Whether the node is a storage location or an instance. *)

val node_dirty : node -> bool
(** Whether the node is pending propagation (queued, or an instance
    flagged inconsistent). *)

val iter_node_succ : (node -> unit) -> node -> unit
(** Iterates over a node's dependents, for {!Inspect}. *)

val iter_node_pred : (node -> unit) -> node -> unit
(** Iterates over a node's dependencies, for {!Inspect}. *)

val iter_node_writers : (node -> unit) -> node -> unit
(** Tracked writers of a storage node, oldest-recorded first — the
    implicit write-then-read serializations the parallel level rule
    honours (and {!Inspect.parallel_profile} charges to the critical
    path). Instances have no writers; discarded writers are skipped. *)
