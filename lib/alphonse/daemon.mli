(** alphonsed: a supervised multi-tenant daemon hosting many
    independent Alphonse engines — one per tenant — behind a
    newline-delimited JSON protocol on the {!Serve} socket layer.

    {2 Wire protocol}

    One request per line, one response line per request, in order:

    {v
    → {"id":1,"tenant":"acme","deadline_ms":250,
       "ops":[{"op":"set","cell":"A1","v":"4"},
              {"op":"get","cell":"A1"}]}
    ← {"id":1,"status":200,"results":[{"ok":true},
              {"cell":"A1","value":4}]}
    v}

    The batch runs atomically ({!Engine.transact}) under an
    {!Engine.Budget} derived from [deadline_ms] (defaulting to the
    configured deadline) and optional [max_steps]. Responses reuse HTTP
    status vocabulary: [200] results; [400] malformed request or op
    (batch rolled back); [408] budget tripped — the settle was
    cancelled at a step boundary and the batch {e rolled back}, state
    unchanged; [503] shed, draining, tenant restarting or parked — with
    [retry_after_ms]. [{"op":"ping"}] answers without touching any
    tenant. Ops themselves are interpreted by the hosted
    {!Tenant.workload} ([Sheet.workload] in [alphonsec daemon]).

    {2 Robustness}

    - {e Admission control}: at most [d_global_queue] requests in
      flight and [d_tenant_queue] pending per tenant; beyond either the
      request is shed immediately (503 + [retry_after_ms]) — the daemon
      degrades by answering fast, not by queueing without bound.
    - {e Settle gate}: at most [d_max_settles] batches execute
      concurrently; the rest wait (their deadlines still running).
    - {e Per-tenant supervision}: crash → restart from that tenant's
      own WAL/snapshot directory with exponential backoff + jitter;
      flapping → circuit breaker parks the tenant (503 for it alone).
    - {e Drain}: {!drain} (or SIGTERM via
      {!install_signal_handlers}) stops accepting, finishes in-flight
      requests (bounded by [d_drain_grace]), checkpoints every tenant,
      and {!run} returns.

    The health surface rides the same {!Serve} layer on
    [d_metrics_port]: [/metrics], [/metrics.json], [/healthz],
    [/readyz] (503 until every tenant directory found on disk has been
    recovered, and while draining), [/tenantz] (per-tenant status
    JSON). *)

type config = {
  d_host : string;
  d_port : int;  (** NDJSON protocol port; 0 picks a free one *)
  d_metrics_port : int option;
      (** HTTP health/metrics port; [None] disables the surface *)
  d_root : string;  (** state root; tenants live in [root/tenants/<id>] *)
  d_durable : bool;  (** [false] disables WAL/snapshots (benches) *)
  d_wal_policy : Wal.policy;
  d_max_tenants : int;
  d_tenant_queue : int;  (** pending-per-tenant bound (incl. running) *)
  d_global_queue : int;  (** global in-flight bound *)
  d_max_settles : int;  (** concurrent batch executions *)
  d_default_deadline : float option;
      (** seconds, for requests without [deadline_ms]; [None] = none *)
  d_max_restarts : int;  (** per-tenant circuit-breaker threshold *)
  d_backoff_base : float;
  d_backoff_cap : float;
  d_cooldown : float;
  d_seed : int;
  d_conn_timeout : float;  (** per-connection socket timeout, seconds *)
  d_drain_grace : float;  (** max wait for in-flight work on drain *)
}

val default_config : root:string -> unit -> config
(** Ephemeral port, no HTTP surface, durable, commit-fsync WAL, 4096
    tenants, 16-per-tenant / 1024-global queues, 8 concurrent settles,
    30 s default deadline. Override with record update syntax. *)

type t

val create : ?metrics:Metrics.t -> config -> Tenant.workload -> t
(** Binds the protocol listener (and the HTTP surface when
    [d_metrics_port] is set) and prepares the tenant table. No traffic
    is served until {!run} (or in-process {!submit}). *)

val run : t -> unit
(** Serve until drained: recover every tenant directory under the
    state root (gating [/readyz] meanwhile), then accept connections —
    one thread per connection — until {!drain}. Then finish in-flight
    requests, checkpoint + stop every tenant, close the health
    surface, and return. *)

val start : t -> Thread.t
(** {!run} on a fresh thread (tests; join after {!drain}). *)

val drain : t -> unit
(** Begin graceful shutdown: stop accepting (in-flight requests finish,
    new ones answer 503 "draining"). Safe from a signal handler —
    {!install_signal_handlers} routes SIGTERM/SIGINT here. *)

val install_signal_handlers : t -> unit

val submit : t -> Json.t -> Json.t
(** Process one request through the full admission path (shedding,
    budgets, supervision included) without a socket. The connection
    threads call this; benches and tests drive it directly. *)

val port : t -> int
val metrics_port : t -> int option
val metrics : t -> Metrics.t
val ready : t -> bool
val preload : t -> int
(** Recover every tenant directory now (normally {!run}'s first step);
    returns how many were found. Idempotent. *)

val find_tenant : t -> string -> Tenant.t option
val tenant_ids : t -> string list
val served : t -> int
val inflight : t -> int
val draining : t -> bool
