(* Write-ahead journal: framed, CRC-guarded, segmented.

   A journal is a directory of segment files [wal-%08d.log], each a
   sequence of frames:

     "AW" | length (4 bytes BE) | crc32 (4 bytes BE) | payload | '\n'

   where [payload] is an [Alphonse.Json] value printed with
   [Json.to_string] and [crc32] covers the payload bytes only. The
   trailing '\n' keeps segments greppable; it is not load-bearing.

   Durability contract: a frame is appended (and the channel flushed)
   BEFORE the in-memory mutation it describes is applied, so after a
   crash the journal describes a superset-or-prefix of the applied
   mutations and replay converges. The writer never appends to an
   existing segment — [open_] always starts a fresh one — so a torn
   tail left by a crash is read-only evidence, never overwritten.

   Torn-tail tolerance: [replay] stops at the first frame that is
   short, has a bad magic, or fails its CRC, and reports where. A torn
   final frame is the expected signature of a crash mid-append; a bad
   frame in a non-final segment is genuine corruption. Either way no
   bytes after the break are trusted.

   Crash simulation: every byte-risking step pokes a kill hook
   ([kill_sites]); a hook raising [Faults.Killed] models the process
   dying there. When a hook is installed, [append] deliberately writes
   the frame in two flushed halves around the "wal-torn" poke so a
   kill at that site leaves a genuinely torn frame on disk. *)

type policy = Always | Commit | Never

let policy_to_string = function
  | Always -> "always"
  | Commit -> "commit"
  | Never -> "never"

let policy_of_string = function
  | "always" -> Some Always
  | "commit" -> Some Commit
  | "never" -> Some Never
  | _ -> None

(* ------------------------------------------------------------------ *)
(* CRC-32 (IEEE 802.3, reflected, poly 0xEDB88320) — pure OCaml        *)
(* ------------------------------------------------------------------ *)

let crc_table =
  lazy
    (Array.init 256 (fun n ->
         let c = ref n in
         for _ = 0 to 7 do
           c := if !c land 1 = 1 then 0xEDB88320 lxor (!c lsr 1) else !c lsr 1
         done;
         !c))

let crc32 s =
  let table = Lazy.force crc_table in
  let c = ref 0xFFFFFFFF in
  String.iter
    (fun ch -> c := table.((!c lxor Char.code ch) land 0xff) lxor (!c lsr 8))
    s;
  !c lxor 0xFFFFFFFF

(* ------------------------------------------------------------------ *)
(* Framing                                                             *)
(* ------------------------------------------------------------------ *)

let magic = "AW"
let header_len = 2 + 4 + 4

let be32 n =
  let b = Bytes.create 4 in
  Bytes.set b 0 (Char.chr ((n lsr 24) land 0xff));
  Bytes.set b 1 (Char.chr ((n lsr 16) land 0xff));
  Bytes.set b 2 (Char.chr ((n lsr 8) land 0xff));
  Bytes.set b 3 (Char.chr (n land 0xff));
  Bytes.unsafe_to_string b

let read_be32 s off =
  (Char.code s.[off] lsl 24)
  lor (Char.code s.[off + 1] lsl 16)
  lor (Char.code s.[off + 2] lsl 8)
  lor Char.code s.[off + 3]

let frame payload =
  String.concat ""
    [ magic; be32 (String.length payload); be32 (crc32 payload); payload; "\n" ]

(* ------------------------------------------------------------------ *)
(* Segment naming                                                      *)
(* ------------------------------------------------------------------ *)

let segment_name i = Printf.sprintf "wal-%08d.log" i

let segment_index name =
  match Scanf.sscanf_opt name "wal-%8d.log%!" (fun i -> i) with
  | Some i when segment_name i = name -> Some i
  | _ -> None

let segments dir =
  if not (Sys.file_exists dir) then []
  else
    Sys.readdir dir |> Array.to_list
    |> List.filter_map (fun n ->
           match segment_index n with
           | Some i -> Some (i, Filename.concat dir n)
           | None -> None)
    |> List.sort compare

let rec mkdir_p dir =
  if not (Sys.file_exists dir) then begin
    let parent = Filename.dirname dir in
    if parent <> dir then mkdir_p parent;
    try Unix.mkdir dir 0o755
    with Unix.Unix_error (Unix.EEXIST, _, _) -> ()
  end

(* ------------------------------------------------------------------ *)
(* Writer                                                              *)
(* ------------------------------------------------------------------ *)

let default_segment_limit = 1 lsl 20

(* Metrics cells, resolved once at [set_metrics]: append/rotation
   counters and the fsync-latency histogram. The fsync is timed only
   when a registry is attached — the disabled path stays one branch. *)
type wcells = {
  w_appends : Metrics.counter;
  w_fsyncs : Metrics.histogram;
  w_rotations : Metrics.counter;
}

type t = {
  dir : string;
  policy : policy;
  segment_limit : int;
  mutable seg_index : int;
  mutable oc : out_channel;
  mutable seg_bytes : int;
  mutable appended : int;
  mutable closed : bool;
  mutable kill_hook : (string -> unit) option;
  mutable on_rotate : (int -> unit) option;
  mutable metrics : wcells option;
}

let kill_sites = [ "wal-append"; "wal-torn"; "wal-sync"; "wal-rotate" ]

let poke w site = match w.kill_hook with None -> () | Some h -> h site
let set_kill_hook w h = w.kill_hook <- h
let set_on_rotate w f = w.on_rotate <- f
let policy w = w.policy
let segment w = w.seg_index
let appended w = w.appended

let open_segment dir i =
  open_out_gen [ Open_wronly; Open_creat; Open_trunc ] 0o644
    (Filename.concat dir (segment_name i))

let open_ ?(policy = Commit) ?(segment_limit = default_segment_limit) dir =
  if segment_limit < 1 then invalid_arg "Wal.open_: segment_limit must be > 0";
  mkdir_p dir;
  (* Never append to an existing segment: a crash may have left its tail
     torn, and recovery needs that evidence intact. *)
  let next = match List.rev (segments dir) with [] -> 0 | (i, _) :: _ -> i + 1 in
  {
    dir;
    policy;
    segment_limit;
    seg_index = next;
    oc = open_segment dir next;
    seg_bytes = 0;
    appended = 0;
    closed = false;
    kill_hook = None;
    on_rotate = None;
    metrics = None;
  }

let set_metrics w = function
  | None -> w.metrics <- None
  | Some reg ->
    w.metrics <-
      Some
        {
          w_appends =
            Metrics.counter reg "wal_appends_total"
              ~help:"frames appended to the write-ahead journal";
          w_fsyncs =
            Metrics.histogram reg "wal_fsync_seconds"
              ~help:"latency of journal fsync calls";
          w_rotations =
            Metrics.counter reg "wal_rotations_total"
              ~help:"journal segment rotations";
        }

let fsync_channel oc =
  flush oc;
  Unix.fsync (Unix.descr_of_out_channel oc)

let sync w =
  if w.closed then invalid_arg "Wal.sync: closed";
  poke w "wal-sync";
  match w.metrics with
  | None -> fsync_channel w.oc
  | Some c ->
    let t0 = Metrics.now () in
    fsync_channel w.oc;
    Metrics.observe_since c.w_fsyncs t0

let rotate w =
  if w.closed then invalid_arg "Wal.rotate: closed";
  (match w.metrics with
  | None -> ()
  | Some c -> Metrics.inc c.w_rotations);
  poke w "wal-rotate";
  fsync_channel w.oc;
  close_out w.oc;
  w.seg_index <- w.seg_index + 1;
  w.oc <- open_segment w.dir w.seg_index;
  w.seg_bytes <- 0;
  match w.on_rotate with None -> () | Some f -> f w.seg_index

let append ?sync:(do_sync = false) w json =
  if w.closed then invalid_arg "Wal.append: closed";
  poke w "wal-append";
  let payload = Json.to_string json in
  let fr = frame payload in
  if w.seg_bytes > 0 && w.seg_bytes + String.length fr > w.segment_limit then
    rotate w;
  (match w.kill_hook with
  | None -> output_string w.oc fr
  | Some _ ->
    (* Split the frame around the torn-write poke so a kill there leaves
       a half-written frame on disk, flushed — the real artifact replay
       must tolerate. *)
    let cut = min (String.length fr) (header_len + (String.length payload / 2))
    in
    output_string w.oc (String.sub fr 0 cut);
    flush w.oc;
    poke w "wal-torn";
    output_string w.oc (String.sub fr cut (String.length fr - cut)));
  (* Always flush: readers (and recovery of a later crash) must see every
     completed frame; fsync is governed by the policy. *)
  flush w.oc;
  w.seg_bytes <- w.seg_bytes + String.length fr;
  w.appended <- w.appended + 1;
  (match w.metrics with None -> () | Some c -> Metrics.inc c.w_appends);
  if w.policy = Always || (do_sync && w.policy <> Never) then sync w

let close w =
  if not w.closed then begin
    w.closed <- true;
    (* All frame bytes were flushed at append time, so this close cannot
       retroactively "heal" a simulated crash by flushing more data. *)
    close_out_noerr w.oc
  end

(* ------------------------------------------------------------------ *)
(* Replay                                                              *)
(* ------------------------------------------------------------------ *)

type break = {
  b_segment : int;
  b_offset : int;
  b_reason : string;
  b_final_segment : bool;
}

type status = Complete | Torn of break

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

(* Scan one segment, calling [f] per decoded entry. Returns [Ok n] (n
   entries) or [Error (off, reason, n)] at the first undecodable frame. *)
let scan_segment data f =
  let len = String.length data in
  let rec go off n =
    if off = len then Ok n
    else if len - off < header_len then
      Error (off, Printf.sprintf "short header (%d byte(s))" (len - off), n)
    else if String.sub data off 2 <> magic then Error (off, "bad magic", n)
    else
      let plen = read_be32 data (off + 2) in
      let crc = read_be32 data (off + 6) in
      let body = off + header_len in
      if len - body < plen + 1 then
        Error (off, Printf.sprintf "short frame (payload %d)" plen, n)
      else
        let payload = String.sub data body plen in
        if crc32 payload <> crc then Error (off, "crc mismatch", n)
        else if data.[body + plen] <> '\n' then Error (off, "bad terminator", n)
        else
          match Json.of_string_opt payload with
          | None -> Error (off, "unparsable payload", n)
          | Some j ->
            f j;
            go (body + plen + 1) (n + 1)
  in
  go 0 0

let replay ?(from_segment = 0) dir f =
  let segs =
    List.filter (fun (i, _) -> i >= from_segment) (segments dir)
  in
  let last = match List.rev segs with [] -> -1 | (i, _) :: _ -> i in
  let rec go n = function
    | [] -> (n, Complete)
    | (i, path) :: rest -> (
      match scan_segment (read_file path) f with
      | Ok k -> go (n + k) rest
      | Error (off, reason, k) ->
        ( n + k,
          Torn
            {
              b_segment = i;
              b_offset = off;
              b_reason = reason;
              b_final_segment = i = last;
            } ))
  in
  go 0 segs
