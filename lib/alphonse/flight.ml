(* Flight recorder: always-on incident reports from the telemetry
   stream.

   [arm] chains a sink onto a recorder. On every anomalous event — a
   quarantine, a poisoning, a watchdog degradation, a degraded crash
   recovery — it dumps an incident report: the last window of telemetry
   events, a metrics snapshot (when a registry is armed alongside), and
   the provenance chain ([why_recomputed]) of the node that failed, into
   one timestamped JSON file. The report is written from state already
   in hand (the bounded ring IS the flight buffer), so the steady-state
   cost of being armed is one sink call per event; file I/O happens only
   when something already went wrong.

   Reports are capped ([max_reports], default 16): a crash loop must
   not fill the disk with identical incidents. The cap trips once per
   armed recorder; long-running processes re-arm after acting on the
   incidents. *)

type t = {
  tm : Telemetry.t;
  metrics : Metrics.t option;
  dir : string;
  last : int;
  max_reports : int;
  mutable written : int;
  mutable seq : int; (* per-process filename discriminator *)
  mutable reports : string list; (* newest first *)
  mutable writing : bool; (* re-entrancy guard: reporting emits nothing,
                             but stay safe if that ever changes *)
}

let triggers =
  [ "quarantine"; "poison"; "watchdog-degradation"; "recovery-degradation" ]

let trigger_of_event = function
  | Telemetry.Quarantined _ -> Some "quarantine"
  | Telemetry.Instance_poisoned _ -> Some "poison"
  | Telemetry.Degraded _ -> Some "watchdog-degradation"
  | Telemetry.Recovery_finished { degraded = true; _ } ->
    Some "recovery-degradation"
  | _ -> None

let trigger_node = function
  | Telemetry.Quarantined { id; name; _ }
  | Telemetry.Instance_poisoned { id; name; _ } ->
    Some (id, name)
  | _ -> None

let event_str ev = Fmt.str "%a" Telemetry.pp_event ev

let record_json (r : Telemetry.record) =
  Json.Obj
    [
      ("seq", Json.Num (float_of_int r.Telemetry.seq));
      ("at", Json.Num r.Telemetry.at);
      ("event", Json.Str (event_str r.Telemetry.ev));
    ]

let why_json why =
  Json.Arr
    (List.map
       (fun (s : Telemetry.why_step) ->
         Json.Obj
           [
             ("id", Json.Num (float_of_int s.Telemetry.step_id));
             ("name", Json.Str s.Telemetry.step_name);
             ("at", Json.Num s.Telemetry.step_at);
             ( "role",
               Json.Str
                 (match s.Telemetry.step_role with
                 | `Written -> "written"
                 | `Marked_by c -> Printf.sprintf "marked-by:#%d" c
                 | `Executed -> "executed") );
           ])
       why)

let last_n n l =
  let len = List.length l in
  if len <= n then l else List.filteri (fun i _ -> i >= len - n) l

let report f trigger ev =
  let now = Unix.gettimeofday () in
  let events = last_n f.last (Telemetry.events f.tm) in
  let why =
    match trigger_node ev with
    | None -> Json.Null
    | Some (id, _) -> (
      match Telemetry.why_recomputed f.tm ~id with
      | None -> Json.Null
      | Some w -> why_json w)
  in
  let trigger_obj =
    Json.Obj
      (("kind", Json.Str trigger)
      :: ("event", Json.Str (event_str ev))
      ::
      (match trigger_node ev with
      | None -> []
      | Some (id, name) ->
        [ ("id", Json.Num (float_of_int id)); ("name", Json.Str name) ]))
  in
  let body =
    Json.Obj
      [
        ("schema", Json.Str "alphonse-incident/1");
        ("at", Json.Num now);
        ("trigger", trigger_obj);
        ( "telemetry",
          Json.Obj
            [
              ("dropped", Json.Num (float_of_int (Telemetry.dropped f.tm)));
              ( "total_emitted",
                Json.Num (float_of_int (Telemetry.total_emitted f.tm)) );
            ] );
        ("events", Json.Arr (List.map record_json events));
        ( "metrics",
          match f.metrics with None -> Json.Null | Some reg -> Metrics.to_json reg
        );
        ("why", why);
      ]
  in
  let tm = Unix.gmtime now in
  let name =
    Printf.sprintf "incident-%04d%02d%02dT%02d%02d%02d-%03d.json"
      (tm.Unix.tm_year + 1900) (tm.Unix.tm_mon + 1) tm.Unix.tm_mday
      tm.Unix.tm_hour tm.Unix.tm_min tm.Unix.tm_sec f.seq
  in
  f.seq <- f.seq + 1;
  Wal.mkdir_p f.dir;
  let path = Filename.concat f.dir name in
  let oc = open_out_bin path in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () ->
      output_string oc (Json.to_string body);
      output_char oc '\n');
  f.written <- f.written + 1;
  f.reports <- path :: f.reports;
  path

let arm ?metrics ?(dir = "incidents") ?(last = 256) ?(max_reports = 16)
    ?on_report tm =
  if last < 1 then invalid_arg "Flight.arm: last must be >= 1";
  if max_reports < 1 then invalid_arg "Flight.arm: max_reports must be >= 1";
  let f =
    {
      tm;
      metrics;
      dir;
      last;
      max_reports;
      written = 0;
      seq = 0;
      reports = [];
      writing = false;
    }
  in
  let prev = Telemetry.sink tm in
  let sink (r : Telemetry.record) =
    (match prev with None -> () | Some g -> g r);
    match trigger_of_event r.Telemetry.ev with
    | None -> ()
    | Some trigger ->
      if f.written < f.max_reports && not f.writing then begin
        f.writing <- true;
        Fun.protect
          ~finally:(fun () -> f.writing <- false)
          (fun () ->
            match report f trigger r.Telemetry.ev with
            | path -> (
              match on_report with None -> () | Some g -> g path)
            | exception _ ->
              (* reporting must never take the engine down with it; an
                 unwritable incident dir loses the report, nothing else *)
              ())
      end
  in
  Telemetry.set_sink tm (Some sink);
  f

let reports f = List.rev f.reports
let written f = f.written
let dir f = f.dir
