(** Closure-parameterized hash table.

    The argument tables of §4.2 are keyed by user argument vectors whose
    hashing and equality the programmer supplies per procedure (object
    arguments compare by identity, value arguments structurally). A functor
    would force a module per call site; closures keep {!Func.create} a
    one-liner. Open addressing (linear probing) over one flat slot
    array, power-of-two capacities, growth at load factor 1/2 — [find]
    is on the hot path of every incremental call and pays one array
    read plus one compare per probe. *)

type ('k, 'v) t

val create :
  ?initial_capacity:int ->
  hash:('k -> int) ->
  equal:('k -> 'k -> bool) ->
  unit ->
  ('k, 'v) t

val length : ('k, 'v) t -> int
val find : ('k, 'v) t -> 'k -> 'v option

val add : ('k, 'v) t -> 'k -> 'v -> unit
(** Adds a binding. The key must be absent (argument tables never rebind);
    checked in debug: a duplicate add raises [Invalid_argument]. *)

val remove : ('k, 'v) t -> 'k -> unit
(** Removes the binding if present. *)

val iter : ('k -> 'v -> unit) -> ('k, 'v) t -> unit
val fold : ('k -> 'v -> 'acc -> 'acc) -> ('k, 'v) t -> 'acc -> 'acc
val clear : ('k, 'v) t -> unit
