type 'a t = {
  eng : Engine.t;
  vname : string;
  equal : 'a -> 'a -> bool;
  mutable contents : 'a;
  mutable vnode : Engine.node option;
}

let counter = ref 0

let create eng ?name ?(equal = ( = )) v =
  incr counter;
  let vname =
    match name with Some n -> n | None -> "var#" ^ string_of_int !counter
  in
  { eng; vname; equal; contents = v; vnode = None }

(* Algorithm 3: the dependency node appears on the first access made under
   an executing incremental procedure. Materialization is serialized by
   the engine's parallel-settle lock: two worker domains making the
   cell's first tracked access must agree on one node. *)
let ensure_node t =
  match t.vnode with
  | Some n -> n
  | None ->
    Engine.critical t.eng @@ fun () ->
    (match t.vnode with
    | Some n -> n
    | None ->
      let n = Engine.new_storage t.eng ~name:t.vname in
      t.vnode <- Some n;
      n)

let get t =
  (* Quick regime: no instance executing, so nothing to record — the read
     is just the load (§6.1's ~1x promise for the mutator). *)
  if Engine.quick t.eng then t.contents
  else begin
    if Engine.recording t.eng then Engine.record_read t.eng (ensure_node t);
    t.contents
  end

let slow_set t v =
  (* Algorithm 4 opens with access(l): the write itself is a dependency of
     the executing procedure, which must re-run if the location is later
     clobbered by someone else. *)
  let node =
    if Engine.recording t.eng then Some (ensure_node t) else t.vnode
  in
  (* an open transaction must be able to restore the cell on rollback *)
  (if Engine.in_transaction t.eng then
     let old = t.contents in
     Engine.txn_log t.eng (fun () -> t.contents <- old));
  match node with
  | None -> t.contents <- v (* untracked: no Alphonse overhead, §6.1 *)
  | Some n ->
    let changed = not (t.equal t.contents v) in
    t.contents <- v;
    Engine.record_write t.eng n ~changed

let set t v =
  match t.vnode with
  (* Quick regime + node already marked inconsistent: journaling, undo
     logging, marking and poking would all be no-ops, so the write
     reduces to the store. This is the E6 tracked-mutator fast path. *)
  | Some n when Engine.quick_write_ok t.eng n -> t.contents <- v
  | _ -> slow_set t v

let update t f = set t (f (get t))
let name t = t.vname
let id t = Option.map Engine.node_id t.vnode
let is_tracked t = t.vnode <> None
let node t = t.vnode
let engine t = t.eng
