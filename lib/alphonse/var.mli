(** Tracked mutable storage — the abstract locations of §4.3.

    A [Var.t] is an ordinary mutable cell whose reads and writes follow the
    [access]/[modify] templates (Algorithms 3 and 4): the first read made
    {e during the execution of an incremental procedure} materializes a
    dependency-graph node for the cell; thereafter reads record dependency
    edges and writes mark the node inconsistent when the value changes.

    A cell that is never read by an incremental procedure carries no node
    and costs one branch per operation — the fast path that §6.1 obtains by
    static analysis falls out of the representation here. *)

type 'a t

val create :
  Engine.t -> ?name:string -> ?equal:('a -> 'a -> bool) -> 'a -> 'a t
(** [create engine v] is a tracked cell holding [v]. [equal] (default
    [( = )]) is the change test of Algorithm 4: a write of an [equal] value
    propagates nothing. [name] labels the cell in {!Inspect} output. *)

val get : 'a t -> 'a
(** Current contents; records a dependency for the executing incremental
    procedure, if any ([access]). *)

val set : 'a t -> 'a -> unit
(** Replaces the contents ([modify]); if the cell is tracked and the value
    changed, dependents become inconsistent and are re-established per
    their evaluation strategies. *)

val update : 'a t -> ('a -> 'a) -> unit
(** [update v f] is [set v (f (get v))]. *)

val name : 'a t -> string

val is_tracked : 'a t -> bool
(** Whether any incremental procedure ever read this cell (i.e. a
    dependency node exists). *)

val node : 'a t -> Engine.node option
(** The cell's dependency-graph node, for tests and {!Inspect}. *)

val id : 'a t -> int option
(** The cell's node id, if tracked — the id telemetry events carry, for
    correlating {!Telemetry} streams with cells. *)

val engine : 'a t -> Engine.t
