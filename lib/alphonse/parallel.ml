(* Façade over the engine's level-synchronized parallel evaluator; the
   machinery lives in engine.ml (settle_parallel and friends) because it
   shares the evaluator's private state. *)

let scheduling ~domains =
  if domains < 1 then invalid_arg "Parallel.scheduling: domains must be >= 1";
  Engine.Parallel { domains }

let settle eng ~domains = Engine.settle_parallel eng ~domains
let levels eng = Engine.dirty_levels eng

let max_width eng =
  List.fold_left (fun acc l -> max acc (List.length l)) 0 (levels eng)
