(** Structured engine telemetry (paper §10: the dynamic dependence
    information "can also be used for additional advantage, such as in
    debugging").

    Attach a recorder to an engine with [Engine.set_telemetry]; the
    engine then emits one {!event} per decision — node creation,
    inconsistency marks, execution begin/end, cache hits, settle pops,
    edge additions/removals, partition unions, evictions — into a
    bounded ring buffer and (optionally) a streaming {!sink}. With no
    recorder attached every instrumentation site costs a single
    predictable branch, so disabled telemetry does not perturb the
    E1–E11 bench counters.

    Three consumers are built in: {!to_chrome_trace} (open a session in
    Perfetto / chrome://tracing as a propagation waterfall), {!profile}
    (per-instance re-execution counts, self time, settle-latency
    histograms), and {!why_recomputed} (the causal chain from a mutated
    storage cell to a re-executed instance). *)

(** One engine decision. Node ids are {!Engine.node_id} values. *)
type event =
  | Storage_created of { id : int; name : string }
  | Instance_created of { id : int; name : string }
  | Marked of { id : int; name : string; cause : int option }
      (** the node was inserted into its inconsistent set; [cause] is the
          node whose processing propagated the mark, [None] an external
          write by the mutator *)
  | Exec_begin of { id : int; name : string; first : bool }
  | Exec_end of { id : int; name : string; changed : bool; ok : bool }
      (** [changed] is the quiescence test; [ok = false] means the body
          raised and the instance stays inconsistent *)
  | Cache_hit of { id : int; name : string }
      (** a call answered from a consistent cached value *)
  | Settle_pop of { id : int; name : string }
      (** the evaluator popped the node from an inconsistent set *)
  | Edge_added of { src : int; dst : int }
  | Preds_cleared of { id : int; name : string }
      (** RemovePredEdges before a dynamic-R(p) re-execution *)
  | Union of { a : int; b : int }  (** §6.3 partition union *)
  | Evicted of { id : int; name : string }
  | Quarantined of { id : int; name : string; attempt : int; error : string }
      (** the instance's execution raised ([attempt] consecutive
          failures so far); it awaits a bounded retry *)
  | Instance_poisoned of { id : int; name : string; error : string }
      (** the retry budget is exhausted; reads now raise
          [Engine.Poisoned] *)
  | Retried of { id : int; name : string; attempt : int }
      (** a quarantined instance was re-marked for retry at settle *)
  | Txn_begin
  | Txn_commit of { marks : int }
  | Txn_rollback of { undone : int; remarked : int }
      (** [undone] cell restorations applied, [remarked] mid-batch
          executions re-invalidated *)
  | Degraded of { steps : int }
      (** the settle-step watchdog tripped after [steps] steps:
          propagation degraded to exhaustive recomputation *)
  | Audit_run of { ok : bool; errors : int }
  | Fault_injected of { site : string }
      (** the installed fault hook raised at this engine site *)
  | Wal_rotated of { segment : int }
      (** the write-ahead journal opened a new segment *)
  | Snapshot_written of { file : string; bytes : int; nodes : int }
      (** a {!Durable} checkpoint wrote a snapshot file *)
  | Recovery_started of { dir : string }
  | Recovery_finished of {
      snapshot : bool;  (** a valid snapshot was used (vs full replay) *)
      replayed : int;  (** journal entries applied *)
      dropped : int;  (** entries lost to a torn/corrupt tail *)
      discarded_txns : int;  (** uncommitted transaction groups dropped *)
      verified : bool;  (** replayed write intents matched the journal *)
      degraded : bool;  (** recovery took [degrade_to_exhaustive] *)
    }
  | Par_level_begin of { level : int; width : int; tasks : int; domains : int }
      (** a parallel settle level front starts: [width] members popped,
          [tasks] eager executions dispatched to the domain pool *)
  | Par_level_end of { level : int; executed : int; failed : int }
      (** the level's merge barrier completed *)
  | Par_domain_begin of { domain : int }
      (** bracket opening one lane's replayed event stream — worker
          events are buffered during the level and flushed contiguously
          at the barrier, so each lane's stream stays well nested *)
  | Par_domain_end of { domain : int }

type record = { seq : int; at : float; ev : event }
(** [seq] numbers all events ever emitted; [at] is seconds since the
    recorder was created (wall clock, microsecond resolution). *)

type sink = record -> unit

type t
(** A recorder: bounded ring buffer plus optional streaming sink. *)

val default_capacity : int
(** 65536 events. *)

val create : ?capacity:int -> unit -> t
(** [create ()] makes a recorder whose ring holds the last [capacity]
    events (default {!default_capacity}). Older events are silently
    overwritten — attach a {!sink} to keep a complete stream. *)

val emit : t -> event -> unit
(** Records an event (engine-side entry point). *)

val emit_at : t -> at:float -> event -> unit
(** Records an event with a caller-supplied timestamp — used by the
    parallel merge barrier to replay worker-buffered events with the
    time they actually happened. Sequence numbers still reflect flush
    order. *)

val now : t -> float
(** Seconds since the recorder was created — the clock {!emit} stamps
    records with (and what workers capture for {!emit_at}). *)

val set_sink : t -> sink option -> unit
(** Streams every subsequent event to [sink] in addition to the ring. *)

val sink : t -> sink option
(** The currently installed sink — lets a wrapper ({!Flight.arm})
    chain onto an existing stream instead of replacing it. *)

val set_metrics : t -> Metrics.t option -> unit
(** Counts ring overwrites into the registry's
    [telemetry_dropped_total] counter as they happen, so bounded-buffer
    loss is visible on a metrics scrape and not only post-hoc via
    {!dropped}. *)

val events : t -> record list
(** The ring contents, oldest first. *)

val iter : t -> (record -> unit) -> unit
val clear : t -> unit

val total_emitted : t -> int
(** Events ever emitted, including those overwritten in the ring. *)

val capacity : t -> int

val dropped : t -> int
(** Events lost to ring overwrite: [max 0 (total_emitted - capacity)]. *)

val pp_event : Format.formatter -> event -> unit
val pp_record : Format.formatter -> record -> unit

(** {1 Chrome trace-event export} *)

val to_chrome_trace : t -> string
(** The recorded window in Chrome trace-event JSON ("JSON object
    format"): executions are duration events on one thread (nested
    re-executions render as a flame graph), everything else instant
    events with the structured payload under ["args"]. Open the file in
    Perfetto or chrome://tracing. The ["otherData"] section carries
    [droppedEvents]/[totalEmitted]/[ringCapacity], so a truncated
    window declares its own incompleteness. *)

(** {1 Per-instance profiles} *)

type instance_profile = {
  id : int;
  name : string;
  executions : int;
  re_executions : int;  (** executions after the first *)
  total_time : float;  (** cumulative wall time inside the body, seconds *)
  self_time : float;  (** [total_time] minus nested executions *)
  marks : int;  (** times marked inconsistent *)
  cache_hits : int;
  latency : int array;
      (** settle-latency histogram: delay from mark to next execution,
          decade buckets per {!bucket_labels} *)
}

val latency_buckets : int
val bucket_labels : string array

val bucket_bounds : float array
(** Upper bounds of the settle-latency buckets (seconds, last
    [infinity]), in the convention [Metrics.quantile] expects:
    [latency.(i)] counts the observations below [bucket_bounds.(i)]. *)

val profile : t -> instance_profile list
(** Folds the recorded window into per-instance profiles, hottest
    (largest self time) first. *)

val pp_profile :
  ?top:int -> Format.formatter -> instance_profile list -> unit

(** {1 Parallel-settle occupancy} *)

type par_occupancy = {
  domain : int;
  domain_tasks : int;  (** executions attributed to this domain *)
  busy : float;  (** wall time inside bodies on this domain, seconds *)
}

type par_summary = {
  par_levels : int;  (** level fronts dispatched *)
  par_dispatched : int;  (** eager tasks handed to the pool, total *)
  occupancy : par_occupancy list;  (** by domain index, ascending *)
}

val par_occupancy : t -> par_summary
(** How evenly the level fronts spread across the pool, recovered from
    the per-lane replay brackets. Busy time charges only top-level
    execution spans (a nested forcing's duration is already inside its
    parent's). *)

val pp_par_occupancy : Format.formatter -> par_summary -> unit

(** {1 Provenance} *)

type why_step = {
  step_id : int;
  step_name : string;
  step_at : float;
  step_role : [ `Written | `Marked_by of int | `Executed ];
}

type why = why_step list
(** Oldest first: the external write, the marks it propagated, the
    re-execution it explains. *)

val why_recomputed : t -> id:int -> why option
(** [why_recomputed t ~id] explains the {e last} recorded execution of
    instance [id]: it walks the [cause] fields of the recorded [Marked]
    events backwards to the external write that started the propagation.
    [None] if the instance never executed inside the recorded window;
    the chain is truncated where events have been overwritten. *)

val pp_why : Format.formatter -> why -> unit
