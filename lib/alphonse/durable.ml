(* Durable engine state: checksummed snapshots + write-ahead journal +
   crash recovery with verified replay.

   Layout of a state directory:

     wal-%08d.log     journal segments ([Wal] framing)
     snap-%08d.json   snapshots; the index is the journal segment at
                      which replay after this snapshot starts

   A snapshot file is one header line ["alphonse-snap/1 <crc32-hex>"]
   followed by a JSON body — {schema, wal_from, engine, domain} — whose
   CRC the header guards. Snapshots are written to a temp file, fsynced
   and renamed into place, so a crash mid-snapshot leaves at worst a
   stray [.tmp] that recovery never reads.

   What is journaled (all as [Wal] frames):

     {"k":"op","d":D}   a domain mutation D ([journal_op], appended by
                        the domain layer BEFORE applying the mutation)
     {"k":"w","n":N}    an engine write intent: tracked node N changed
                        (from [Engine.set_journal], appended before the
                        inconsistency mark)
     {"k":"tb"|"tc"|"ta"}  transaction begin / commit / abort

   Replay applies committed units — a standalone op, or the ops of a
   [tb]…[tc] group; groups without a commit marker are discarded — via
   the domain's [p_apply], settling after each unit. The "w" intents
   are not replayed; they are the verification record: recovery
   re-captures the intents its own replay provokes and checks that the
   journaled sequence is a prefix of it (a crash can truncate the
   record, never reorder it). A mismatch means the replay diverged
   from the original run — recovery then degrades to exhaustive
   recomputation rather than trusting any incremental state.

   Recovery state machine (see docs/INTERNALS.md):

     newest snapshot → CRC + parse + domain load ok? ── no ─→ next
         │ yes                                         (none left:
         ├ Engine.import (best effort, by node name)    full replay
         ▼                                              from segment 0)
     replay committed units from snapshot.wal_from, verifying intents
         ▼
     Engine.audit_errors
         ▼
     any snapshot rejected / verification miss / audit error /
     mid-journal corruption  →  Engine.degrade_to_exhaustive
     (correct answers by recomputation — never a wrong value). *)

type persistable = {
  p_save : unit -> Json.t;
      (* the full domain state, enough for [p_load] to rebuild it *)
  p_load : Json.t -> unit;
      (* rebuild domain structure in a fresh domain (no journaling) *)
  p_apply : Json.t -> unit;
      (* re-apply one journaled mutation (the "d" of an "op" entry) *)
}

type outcome = {
  o_dir : string;
  o_snapshot : string option;  (* snapshot file restored from *)
  o_rejected : (string * string) list;  (* snapshot file, rejection reason *)
  o_matched : int;  (* engine nodes restored by import *)
  o_replayed : int;  (* committed ops applied *)
  o_discarded : int;  (* journal entries dropped (uncommitted txns) *)
  o_discarded_txns : int;  (* uncommitted transaction groups dropped *)
  o_verified : bool;
  o_degraded : bool;
  o_warnings : string list;
}

type t = {
  dir : string;
  eng : Engine.t;
  p : persistable;
  wal : Wal.t;
  keep_snapshots : int;
  mutable in_txn : bool;
  mutable detached : bool;
  mutable kill_hook : (string -> unit) option;
}

let kill_sites =
  Wal.kill_sites @ [ "snap-begin"; "snap-torn"; "snap-rename"; "snap-prune" ]

let poke s site = match s.kill_hook with None -> () | Some h -> h site

let emit eng ev =
  match Engine.telemetry eng with
  | None -> ()
  | Some tm -> Telemetry.emit tm ev

(* ------------------------------------------------------------------ *)
(* Journal entries                                                     *)
(* ------------------------------------------------------------------ *)

let e_op d = Json.Obj [ ("k", Json.Str "op"); ("d", d) ]
let e_w name = Json.Obj [ ("k", Json.Str "w"); ("n", Json.Str name) ]
let e_txn = function
  | `Begin -> Json.Obj [ ("k", Json.Str "tb") ]
  | `Commit -> Json.Obj [ ("k", Json.Str "tc") ]
  | `Abort -> Json.Obj [ ("k", Json.Str "ta") ]

let entry_kind j =
  match Option.bind (Json.member "k" j) Json.to_str with
  | Some "op" -> `Op (Option.value (Json.member "d" j) ~default:Json.Null)
  | Some "w" -> (
    match Option.bind (Json.member "n" j) Json.to_str with
    | Some n -> `W n
    | None -> `Unknown)
  | Some "tb" -> `Tb
  | Some "tc" -> `Tc
  | Some "ta" -> `Ta
  | _ -> `Unknown

(* ------------------------------------------------------------------ *)
(* Sessions                                                            *)
(* ------------------------------------------------------------------ *)

let attach ?(policy = Wal.Commit) ?segment_limit ?(keep_snapshots = 2) ~dir
    eng p =
  if Engine.journal eng <> None then
    invalid_arg "Durable.attach: engine already has a journal";
  if keep_snapshots < 1 then
    invalid_arg "Durable.attach: keep_snapshots must be >= 1";
  let wal = Wal.open_ ~policy ?segment_limit dir in
  let s =
    {
      dir;
      eng;
      p;
      wal;
      keep_snapshots;
      in_txn = false;
      detached = false;
      kill_hook = None;
    }
  in
  Wal.set_on_rotate wal
    (Some (fun segment -> emit eng (Telemetry.Wal_rotated { segment })));
  Wal.set_metrics wal (Engine.metrics eng);
  Engine.set_journal eng
    (Some
       {
         Engine.on_write = (fun ~name ~id:_ -> Wal.append wal (e_w name));
         on_txn =
           (fun ev ->
             (match ev with
             | `Begin -> s.in_txn <- true
             | `Commit | `Abort -> s.in_txn <- false);
             (* the commit marker is the durability point of the batch *)
             Wal.append ~sync:(ev = `Commit) wal (e_txn ev));
       });
  s

let journal_op s d =
  if s.detached then invalid_arg "Durable.journal_op: detached";
  (* a standalone op is its own commit boundary; inside a transaction
     the sync belongs to the commit marker *)
  Wal.append ~sync:(not s.in_txn) s.wal (e_op d)

let wal s = s.wal
let dir s = s.dir

let set_kill_hook s h =
  s.kill_hook <- h;
  Wal.set_kill_hook s.wal h

let detach s =
  if not s.detached then begin
    s.detached <- true;
    Engine.set_journal s.eng None;
    (* never writes new bytes: safe even after a simulated crash *)
    Wal.close s.wal
  end

(* ------------------------------------------------------------------ *)
(* Snapshots                                                           *)
(* ------------------------------------------------------------------ *)

let snapshot_magic = "alphonse-snap/1"
let snapshot_name i = Printf.sprintf "snap-%08d.json" i

let snapshot_index name =
  match Scanf.sscanf_opt name "snap-%8d.json%!" (fun i -> i) with
  | Some i when snapshot_name i = name -> Some i
  | _ -> None

let snapshots dir =
  if not (Sys.file_exists dir) then []
  else
    Sys.readdir dir |> Array.to_list
    |> List.filter_map (fun n ->
           match snapshot_index n with
           | Some i -> Some (i, Filename.concat dir n)
           | None -> None)
    |> List.sort compare

let fsync_out oc =
  flush oc;
  Unix.fsync (Unix.descr_of_out_channel oc)

let count_nodes eng =
  let n = ref 0 in
  Engine.iter_nodes eng (fun _ -> incr n);
  !n

(* Snapshot / recovery timings resolve their cells per call: both are
   rare (checkpoint cadence, process start), so the registry lookup cost
   is irrelevant, and recovery may run before any engine work exists. *)
let observe_duration eng name ~help t0 =
  match Engine.metrics eng with
  | None -> ()
  | Some reg -> Metrics.observe_since (Metrics.histogram reg name ~help) t0

let write_snapshot s ~wal_from =
  let t0 =
    match Engine.metrics s.eng with None -> 0. | Some _ -> Metrics.now ()
  in
  poke s "snap-begin";
  let body =
    Json.to_string
      (Json.Obj
         [
           ("schema", Json.Str "alphonse-durable/1");
           ("wal_from", Json.Num (float_of_int wal_from));
           ("engine", Engine.export s.eng);
           ("domain", s.p.p_save ());
         ])
  in
  let content =
    Printf.sprintf "%s %08x\n%s" snapshot_magic (Wal.crc32 body) body
  in
  let final = Filename.concat s.dir (snapshot_name wal_from) in
  let tmp = final ^ ".tmp" in
  let oc = open_out_bin tmp in
  (try
     (match s.kill_hook with
     | None -> output_string oc content
     | Some _ ->
       (* leave a half-written temp file if killed here — recovery must
          ignore [.tmp] strays *)
       let cut = String.length content / 2 in
       output_string oc (String.sub content 0 cut);
       flush oc;
       poke s "snap-torn";
       output_string oc
         (String.sub content cut (String.length content - cut)));
     fsync_out oc;
     close_out oc
   with e ->
     close_out_noerr oc;
     raise e);
  poke s "snap-rename";
  Sys.rename tmp final;
  emit s.eng
    (Telemetry.Snapshot_written
       {
         file = final;
         bytes = String.length content;
         nodes = count_nodes s.eng;
       });
  observe_duration s.eng "snapshot_seconds"
    ~help:"time to write, fsync and publish one snapshot" t0;
  final

(* Keep the newest [keep_snapshots] snapshots, and every journal
   segment from the oldest kept snapshot's cut onward — so recovery can
   always fall back one snapshot generation with full replay coverage. *)
let prune s =
  poke s "snap-prune";
  let snaps = snapshots s.dir in
  let keep =
    let rec last_n n l =
      if List.length l <= n then l else last_n n (List.tl l)
    in
    last_n s.keep_snapshots snaps
  in
  let keep_idx = List.map fst keep in
  List.iter
    (fun (i, path) -> if not (List.mem i keep_idx) then Sys.remove path)
    snaps;
  match keep_idx with
  | [] -> ()
  | oldest :: _ ->
    List.iter
      (fun (i, path) -> if i < oldest then Sys.remove path)
      (Wal.segments s.dir)

let checkpoint s =
  if s.detached then invalid_arg "Durable.checkpoint: detached";
  if s.in_txn then invalid_arg "Durable.checkpoint: inside a transaction";
  (* cut the journal first: everything after the cut replays on top of
     the snapshot written against the pre-cut state *)
  Wal.rotate s.wal;
  let wal_from = Wal.segment s.wal in
  let file = write_snapshot s ~wal_from in
  prune s;
  file

(* ------------------------------------------------------------------ *)
(* Recovery                                                            *)
(* ------------------------------------------------------------------ *)

let read_snapshot path =
  let content =
    let ic = open_in_bin path in
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  in
  match String.index_opt content '\n' with
  | None -> Error "no header line"
  | Some nl -> (
    let header = String.sub content 0 nl in
    let body = String.sub content (nl + 1) (String.length content - nl - 1) in
    match Scanf.sscanf_opt header "alphonse-snap/1 %x%!" (fun c -> c) with
    | None -> Error "bad header"
    | Some crc ->
      if Wal.crc32 body <> crc then Error "crc mismatch"
      else (
        match Json.of_string_opt body with
        | None -> Error "unparsable body"
        | Some j -> (
          let wal_from =
            match Option.bind (Json.member "wal_from" j) Json.to_float with
            | Some f -> int_of_float f
            | None -> 0
          in
          match (Json.member "engine" j, Json.member "domain" j) with
          | Some ej, Some dj -> Ok (wal_from, ej, dj)
          | _ -> Error "missing engine or domain section")))

(* A committed unit: a standalone op or a tb…tc group. Each op carries
   the write intents journaled after it (its verification record). *)
type unit_group = { ops : (Json.t * string list) list }

let group_entries entries =
  let units = ref [] in
  let discarded = ref 0 in
  let discarded_txns = ref 0 in
  let orphans = ref 0 in
  (* currently-open standalone unit or txn buffer, ops newest-first,
     each op's intents newest-first *)
  let txn : (Json.t * string list) list option ref = ref None in
  let standalone : (Json.t * string list) list ref = ref [] in
  let close_standalone () =
    match !standalone with
    | [] -> ()
    | ops ->
      standalone := [];
      units :=
        { ops = List.rev_map (fun (op, ws) -> (op, List.rev ws)) ops }
        :: !units
  in
  let push_op buf op = buf := (op, []) :: !buf in
  let push_w buf n =
    match !buf with
    | (op, ws) :: rest -> buf := (op, n :: ws) :: rest
    | [] -> incr orphans
  in
  let abandon_txn () =
    match !txn with
    | None -> ()
    | Some ops ->
      txn := None;
      incr discarded_txns;
      discarded := !discarded + List.length ops
  in
  List.iter
    (fun j ->
      match entry_kind j with
      | `Op d -> (
        match !txn with
        | Some ops -> txn := Some ((d, []) :: ops)
        | None ->
          close_standalone ();
          push_op standalone d)
      | `W n -> (
        match !txn with
        | Some ((op, ws) :: rest) -> txn := Some ((op, n :: ws) :: rest)
        | Some [] -> incr orphans
        | None -> push_w standalone n)
      | `Tb ->
        close_standalone ();
        abandon_txn () (* nested/unterminated tb: malformed, drop it *);
        txn := Some []
      | `Tc -> (
        match !txn with
        | None -> incr orphans (* stray commit marker *)
        | Some ops ->
          txn := None;
          let ops = List.rev_map (fun (op, ws) -> (op, List.rev ws)) ops in
          units := { ops } :: !units)
      | `Ta -> abandon_txn ()
      | `Unknown -> incr discarded)
    entries;
  close_standalone ();
  abandon_txn ();
  (List.rev !units, !discarded, !discarded_txns, !orphans)

(* Verified replay compares the journaled write-intent names against the
   intents the replay itself provokes. The two runs do NOT track the same
   writes: dependency nodes materialize lazily on the first access made
   under an executing instance (Algorithm 3), so the original session's
   query history decides which writes were tracked — and journaled —
   there, while the replay's own (different) execution schedule decides
   which it captures. A name only one side tracked is unverifiable, not
   wrong. What determinism does guarantee is {e order agreement on the
   names both runs produced}: restricted to the captured alphabet, the
   journaled sequence must be a subsequence of the captured one. A
   divergent replay (different write order or target on a node both runs
   know) breaks that; lazy materialization never does. *)
let intents_agree ~journaled ~captured =
  let seen = Hashtbl.create 16 in
  List.iter (fun n -> Hashtbl.replace seen n ()) captured;
  let journaled = List.filter (Hashtbl.mem seen) journaled in
  let rec subseq = function
    | [], _ -> true
    | _, [] -> false
    | x :: xs, y :: ys ->
      if String.equal x y then subseq (xs, ys) else subseq (x :: xs, ys)
  in
  subseq (journaled, captured)

let recover ?(verify = true) ~dir eng p =
  if Engine.journal eng <> None then
    invalid_arg "Durable.recover: detach the engine's journal first";
  let t0 =
    match Engine.metrics eng with None -> 0. | Some _ -> Metrics.now ()
  in
  emit eng (Telemetry.Recovery_started { dir });
  let warnings = ref [] in
  let warn fmt = Printf.ksprintf (fun m -> warnings := m :: !warnings) fmt in
  let rejected = ref [] in
  (* 1. newest structurally-valid snapshot whose domain state loads *)
  let rec choose = function
    | [] -> None
    | (_, path) :: rest -> (
      match read_snapshot path with
      | Error reason ->
        rejected := (path, reason) :: !rejected;
        choose rest
      | Ok (wal_from, ej, dj) -> (
        match p.p_load dj with
        | () -> Some (path, wal_from, ej)
        | exception e ->
          rejected :=
            (path, "domain load failed: " ^ Printexc.to_string e)
            :: !rejected;
          choose rest))
  in
  let snapshot, wal_from, matched =
    match choose (List.rev (snapshots dir)) with
    | Some (path, wal_from, ej) ->
      let m, ws = Engine.import eng ej in
      List.iter (fun w -> warnings := w :: !warnings) ws;
      (Some path, wal_from, m)
    | None -> (None, 0, 0)
  in
  (* 2. read and group the journal *)
  let entries = ref [] in
  let _read, status =
    Wal.replay ~from_segment:wal_from dir (fun j -> entries := j :: !entries)
  in
  let units, discarded, discarded_txns, orphans =
    group_entries (List.rev !entries)
  in
  let mid_journal_corruption =
    match status with
    | Wal.Complete -> false
    | Wal.Torn b ->
      warn "journal %s at segment %d offset %d: %s"
        (if b.Wal.b_final_segment then "torn tail (crash signature)"
         else "CORRUPT MID-JOURNAL — later segments unread")
        b.Wal.b_segment b.Wal.b_offset b.Wal.b_reason;
      not b.Wal.b_final_segment
  in
  if orphans > 0 then
    warn "%d journal record(s) without a preceding op" orphans;
  (* 3. apply committed units, re-capturing write intents *)
  let captured = ref [] in
  let expected = ref [] in
  if verify then
    Engine.set_journal eng
      (Some
         {
           Engine.on_write = (fun ~name ~id:_ -> captured := name :: !captured);
           on_txn = (fun _ -> ());
         });
  let replayed = ref 0 in
  let apply_failed = ref false in
  Fun.protect
    ~finally:(fun () -> Engine.set_journal eng None)
    (fun () ->
      List.iter
        (fun { ops } ->
          List.iter
            (fun (op, ws) ->
              expected := List.rev_append ws !expected;
              match p.p_apply op with
              | () -> incr replayed
              | exception e ->
                apply_failed := true;
                warn "replay of %s failed: %s" (Json.to_string op)
                  (Printexc.to_string e))
            ops;
          (* settle per committed unit so eager propagation interleaves
             with ops the way the intent record expects *)
          try Engine.stabilize eng
          with e ->
            apply_failed := true;
            warn "settle during replay failed: %s" (Printexc.to_string e))
        units);
  let verified =
    (not !apply_failed)
    && ((not verify)
       || orphans = 0
          && intents_agree ~journaled:(List.rev !expected)
               ~captured:(List.rev !captured))
  in
  (* 4. audit the recovered engine *)
  let audit_errs = Engine.audit_errors eng in
  List.iter (fun e -> warnings := ("audit: " ^ e) :: !warnings) audit_errs;
  (* 5. never serve corrupt state: any checksum rejection, verification
     miss, audit error or mid-journal break abandons incrementality —
     answers then recompute exhaustively from the replayed domain
     state, which is correct by construction *)
  let degraded =
    !rejected <> [] || (not verified) || audit_errs <> []
    || mid_journal_corruption
  in
  if degraded then Engine.degrade_to_exhaustive eng;
  emit eng
    (Telemetry.Recovery_finished
       {
         snapshot = snapshot <> None;
         replayed = !replayed;
         dropped = discarded;
         discarded_txns;
         verified;
         degraded;
       });
  (match Engine.metrics eng with
  | None -> ()
  | Some reg ->
    Metrics.inc
      (Metrics.counter reg "recoveries_total"
         ~labels:[ ("degraded", if degraded then "yes" else "no") ]
         ~help:"crash recoveries, by whether incrementality was abandoned");
    (* gauges describe the LAST recovery, for readiness probes *)
    let gauge n h v =
      Metrics.set (Metrics.gauge reg n ~help:h) (float_of_int v)
    in
    gauge "recovery_last_replayed" "committed ops applied by the last recovery"
      !replayed;
    gauge "recovery_last_discarded"
      "journal entries dropped by the last recovery (uncommitted txns)"
      discarded;
    gauge "recovery_last_degraded"
      "1 if the last recovery degraded to exhaustive recomputation"
      (if degraded then 1 else 0);
    observe_duration eng "recover_seconds"
      ~help:"end-to-end duration of crash recovery" t0);
  {
    o_dir = dir;
    o_snapshot = snapshot;
    o_rejected = List.rev !rejected;
    o_matched = matched;
    o_replayed = !replayed;
    o_discarded = discarded;
    o_discarded_txns = discarded_txns;
    o_verified = verified;
    o_degraded = degraded;
    o_warnings = List.rev !warnings;
  }

let pp_outcome ppf o =
  Fmt.pf ppf "recovery: snapshot=%s replayed=%d discarded=%d txns-discarded=%d verified=%s degraded=%s"
    (match o.o_snapshot with
    | Some f -> Filename.basename f
    | None -> "none")
    o.o_replayed o.o_discarded o.o_discarded_txns
    (if o.o_verified then "yes" else "no")
    (if o.o_degraded then "yes" else "no")
