(** Domain-safe metrics registry: labeled counters, gauges and
    log-bucketed histograms, exposed as Prometheus text or JSON.

    Instrumented code resolves its cells {e once} (under the registry
    mutex) and then updates them lock-free from any domain — a counter
    is an [int Atomic.t], a histogram an array of bucket atomics.
    Disabled instrumentation (no registry attached) costs exactly one
    immediate [option] branch per site and allocates nothing; bench E20
    gates that overhead at 5%. *)

type t
(** A registry: a mutable set of metric families. *)

type counter
type gauge
type histogram

val create : ?namespace:string -> unit -> t
(** [create ()] makes an empty registry. Every metric name is exposed
    as [<namespace>_<name>]; the namespace defaults to ["alphonse"]. *)

(** {1 Registration} — get-or-create, keyed by name + label set.
    Registering an existing (name, labels) pair returns the existing
    cell; reusing a name with a different metric kind raises
    [Invalid_argument]. *)

val counter : t -> ?help:string -> ?labels:(string * string) list -> string -> counter
val gauge : t -> ?help:string -> ?labels:(string * string) list -> string -> gauge

val histogram :
  t ->
  ?help:string ->
  ?labels:(string * string) list ->
  ?bounds:float array ->
  string ->
  histogram
(** [bounds] are upper bucket bounds, ascending; a final [infinity]
    bucket is appended when missing. Defaults to {!default_bounds}. *)

val default_bounds : float array
(** Decade buckets for latencies in seconds: [1e-6 .. 10, +Inf] — the
    same geometry as [Telemetry]'s settle-latency histogram. *)

(** {1 Updates} — lock-free, safe from worker domains. *)

val inc : counter -> unit
val add : counter -> int -> unit
val set : gauge -> float -> unit
val observe : histogram -> float -> unit

val now : unit -> float
(** Wall-clock seconds, for timing instrumented regions. *)

val observe_since : histogram -> float -> unit
(** [observe_since h t0] records [now () -. t0]. *)

(** {1 Reading} *)

val counter_value : counter -> int
val gauge_value : gauge -> float
val histogram_count : histogram -> int
val histogram_sum : histogram -> float

val histogram_counts : histogram -> int array
(** Per-bucket (non-cumulative) counts, index-aligned with the bounds. *)

val quantile : counts:int array -> bounds:float array -> float -> float
(** [quantile ~counts ~bounds q] estimates the [q]-quantile of a
    log-bucketed histogram by geometric interpolation inside the bucket
    containing the rank. [counts.(i)] holds the observations below
    [bounds.(i)]; returns [nan] when the histogram is empty. Shared
    with [Inspect]'s per-instance profile quantiles so both report the
    same p50/p90/p99. *)

val quantiles : counts:int array -> bounds:float array -> float * float * float
(** [(p50, p90, p99)] via {!quantile}. *)

(** {1 Exposition} — deterministic: families sort by name, series by
    label signature. *)

val to_prometheus : t -> string
(** Prometheus text format ([# HELP]/[# TYPE], cumulative [_bucket]
    series with [le] labels, [_sum]/[_count]). *)

val to_json : t -> Json.t
(** Schema ["alphonse-metrics/1"]; histograms carry estimated
    p50/p90/p99 alongside their buckets. *)
