(** Write-ahead journal: framed, CRC-guarded, segmented.

    A journal is a directory of segment files [wal-%08d.log]; each
    frame is ["AW" | length (4B BE) | crc32 (4B BE) | payload | '\n']
    where the payload is an {!Json} value and the CRC-32 (IEEE) covers
    the payload bytes. Frames are appended — and the channel flushed —
    {e before} the mutation they describe is applied, so after a crash
    the journal is a superset-or-prefix of the applied mutations.
    {!replay} tolerates a torn tail: it stops at the first short /
    bad-magic / bad-CRC frame and reports where. {!Durable} builds
    snapshot + recovery on top of this module. *)

type policy =
  | Always  (** fsync after every append. *)
  | Commit  (** fsync only at commit boundaries ([append ~sync:true]). *)
  | Never  (** flush to the OS, never fsync — crash-consistent only
               against process death, not power loss. *)

val policy_to_string : policy -> string
val policy_of_string : string -> policy option

val crc32 : string -> int
(** CRC-32 (IEEE 802.3, reflected) of a string — also used by
    {!Durable} to checksum snapshot files. *)

type t
(** An open journal writer. *)

val default_segment_limit : int
(** 1 MiB. *)

val open_ : ?policy:policy -> ?segment_limit:int -> string -> t
(** [open_ dir] creates [dir] if needed and starts a {e fresh} segment
    after any existing ones (never appends to an old segment — a torn
    tail left by a crash is evidence recovery must still be able to
    read). Default policy {!Commit}, default segment limit
    {!default_segment_limit} bytes (rotation happens when an append
    would overflow it). *)

val append : ?sync:bool -> t -> Json.t -> unit
(** Frame, write and flush one entry; fsyncs according to the policy
    ([~sync:true] marks a commit boundary under {!Commit}). May rotate
    to a new segment first. *)

val sync : t -> unit
(** Explicit flush + fsync of the current segment. *)

val rotate : t -> unit
(** Force a new segment (fsyncs and closes the current one). Used by
    {!Durable.checkpoint} to cut the journal at a snapshot. *)

val close : t -> unit
(** Close the writer (idempotent). Never writes new bytes: every frame
    was already flushed at append time. *)

val policy : t -> policy
val segment : t -> int
(** Index of the segment currently being written. *)

val appended : t -> int
(** Entries appended through this writer. *)

(** {1 Crash simulation} *)

val kill_sites : string list
(** [["wal-append"; "wal-torn"; "wal-sync"; "wal-rotate"]] — poked (in
    byte-risking order) on the append/sync/rotate paths. A hook raising
    {!Faults.Killed} models the process dying there; "wal-torn" fires
    after a half frame has been written {e and flushed}, leaving a
    genuinely torn tail on disk. *)

val set_kill_hook : t -> (string -> unit) option -> unit
val set_on_rotate : t -> (int -> unit) option -> unit
(** Notification when rotation opens a new segment (telemetry). *)

val set_metrics : t -> Metrics.t option -> unit
(** Count appends and rotations, and time fsyncs, into a registry
    ([wal_appends_total], [wal_rotations_total], [wal_fsync_seconds]).
    [None] (the default) detaches; the disabled path costs one branch
    per operation. {!Durable.attach} wires this automatically from the
    engine's registry. *)

(** {1 Replay} *)

type break = {
  b_segment : int;  (** segment index where decoding stopped *)
  b_offset : int;  (** byte offset of the undecodable frame *)
  b_reason : string;  (** "short frame", "crc mismatch", … *)
  b_final_segment : bool;
      (** [true]: a torn tail — the expected crash signature. [false]:
          corruption mid-journal; entries in later segments were NOT
          read. *)
}

type status = Complete | Torn of break

val replay : ?from_segment:int -> string -> (Json.t -> unit) -> int * status
(** [replay dir f] decodes every frame of every segment with index
    [>= from_segment] in order, calling [f] per entry; returns how many
    entries were decoded and whether the journal was read to the end. *)

val segments : string -> (int * string) list
(** Existing segments of a journal directory, sorted by index. *)

val segment_name : int -> string

val mkdir_p : string -> unit
(** Create a directory and its parents ([Durable] shares it). *)
