(* Domain-safe metrics registry: labeled counters, gauges and
   log-bucketed histograms, with Prometheus-text and JSON exposition.

   Design constraints, in order:

   1. The *disabled* path must stay allocation-free. Instrumented code
      holds a [counter]/[histogram] cell inside an [option] it resolved
      once at attach time; when no registry is attached the hot site is
      a single immediate branch on [None] — no closure, no lookup, no
      allocation. That is what keeps the paper's 6.x
      instrumentation-overhead story (bench E20 gates it at <= 5%).

   2. The *enabled* path must be safe to hit from worker domains
      without the engine lock. Cells are lock-free: a counter is an
      [int Atomic.t], a gauge a [float Atomic.t], a histogram an array
      of bucket atomics plus a CAS-updated sum. Registration (the
      get-or-create of a family/series) takes the registry mutex, but
      registration happens once per cell at attach time, never per
      event — exact totals under domains=4 settles are a test
      invariant, not a best effort.

   3. Exposition is deterministic: families sort by name, series by
      label signature, so scrapes and cram goldens are stable.

   Histograms are log-bucketed (decades by default, the same geometry
   as [Telemetry]'s settle-latency buckets) and quantiles are
   *estimated* from the buckets by geometric interpolation —
   [quantile] is shared with [Inspect]'s per-instance profiles so both
   report the same p50/p90/p99 for the same counts. *)

type counter = int Atomic.t
type gauge = float Atomic.t

type histogram = {
  h_bounds : float array; (* upper bounds, last one [infinity] *)
  h_counts : counter array; (* same length as [h_bounds] *)
  h_sum : float Atomic.t;
}

type cell = C of counter | G of gauge | H of histogram

type family = {
  f_name : string; (* full exposition name, namespace included *)
  f_help : string;
  f_kind : [ `Counter | `Gauge | `Histogram ];
  (* label signature -> (labels, cell); the signature is the rendered
     [{k="v",...}] string so it is canonical and render-ready *)
  f_series : (string, (string * string) list * cell) Hashtbl.t;
}

type t = {
  namespace : string;
  m : Mutex.t;
  families : (string, family) Hashtbl.t;
}

let create ?(namespace = "alphonse") () =
  { namespace; m = Mutex.create (); families = Hashtbl.create 32 }

(* seconds, decades: <1us ... >=10s, same shape as telemetry latency *)
let default_bounds =
  [| 1e-6; 1e-5; 1e-4; 1e-3; 1e-2; 1e-1; 1.; 10.; infinity |]

let escape_label v =
  let buf = Buffer.create (String.length v) in
  String.iter
    (fun c ->
      match c with
      | '\\' -> Buffer.add_string buf "\\\\"
      | '"' -> Buffer.add_string buf "\\\""
      | '\n' -> Buffer.add_string buf "\\n"
      | c -> Buffer.add_char buf c)
    v;
  Buffer.contents buf

let signature labels =
  match labels with
  | [] -> ""
  | _ ->
    let labels = List.sort compare labels in
    "{"
    ^ String.concat ","
        (List.map (fun (k, v) -> Printf.sprintf "%s=%S" k (escape_label v)) labels)
    ^ "}"

let kind_name = function
  | `Counter -> "counter"
  | `Gauge -> "gauge"
  | `Histogram -> "histogram"

(* get-or-create, under the registry mutex; called at attach time *)
let series reg ~kind ~help ~labels name mk =
  if name = "" then invalid_arg "Metrics: empty metric name";
  let full = if reg.namespace = "" then name else reg.namespace ^ "_" ^ name in
  Mutex.lock reg.m;
  Fun.protect ~finally:(fun () -> Mutex.unlock reg.m) @@ fun () ->
  let fam =
    match Hashtbl.find_opt reg.families full with
    | Some f ->
      if f.f_kind <> kind then
        invalid_arg
          (Printf.sprintf "Metrics: %s registered as %s, requested as %s" full
             (kind_name f.f_kind) (kind_name kind));
      f
    | None ->
      let f =
        { f_name = full; f_help = help; f_kind = kind;
          f_series = Hashtbl.create 4 }
      in
      Hashtbl.replace reg.families full f;
      f
  in
  let sig_ = signature labels in
  match Hashtbl.find_opt fam.f_series sig_ with
  | Some (_, cell) -> cell
  | None ->
    let cell = mk () in
    Hashtbl.replace fam.f_series sig_ (List.sort compare labels, cell);
    cell

let counter reg ?(help = "") ?(labels = []) name =
  match series reg ~kind:`Counter ~help ~labels name (fun () -> C (Atomic.make 0))
  with
  | C c -> c
  | _ -> assert false

let gauge reg ?(help = "") ?(labels = []) name =
  match series reg ~kind:`Gauge ~help ~labels name (fun () -> G (Atomic.make 0.))
  with
  | G g -> g
  | _ -> assert false

let histogram reg ?(help = "") ?(labels = []) ?(bounds = default_bounds) name =
  let bounds =
    let n = Array.length bounds in
    if n = 0 then invalid_arg "Metrics.histogram: empty bounds";
    if bounds.(n - 1) = infinity then Array.copy bounds
    else Array.append bounds [| infinity |]
  in
  let mk () =
    H
      {
        h_bounds = bounds;
        h_counts = Array.init (Array.length bounds) (fun _ -> Atomic.make 0);
        h_sum = Atomic.make 0.;
      }
  in
  match series reg ~kind:`Histogram ~help ~labels name mk with
  | H h ->
    if Array.length h.h_bounds <> Array.length bounds then
      invalid_arg ("Metrics.histogram: bounds mismatch for " ^ name);
    h
  | _ -> assert false

(* ------------------------------------------------------------------ *)
(* Hot-path operations (lock-free)                                     *)
(* ------------------------------------------------------------------ *)

let inc c = ignore (Atomic.fetch_and_add c 1)
let add c n = ignore (Atomic.fetch_and_add c n)
let counter_value c = Atomic.get c
let set g v = Atomic.set g v
let gauge_value g = Atomic.get g

let rec cas_add a v =
  let old = Atomic.get a in
  if not (Atomic.compare_and_set a old (old +. v)) then cas_add a v

let observe h v =
  let n = Array.length h.h_bounds in
  let rec bucket i = if i >= n - 1 || v < h.h_bounds.(i) then i else bucket (i + 1) in
  inc h.h_counts.(bucket 0);
  cas_add h.h_sum v

let histogram_counts h = Array.map Atomic.get h.h_counts
let histogram_count h = Array.fold_left (fun a c -> a + Atomic.get c) 0 h.h_counts
let histogram_sum h = Atomic.get h.h_sum

(* ------------------------------------------------------------------ *)
(* Quantile estimation (shared with Inspect's profiles)                *)
(* ------------------------------------------------------------------ *)

(* [counts.(i)] holds observations < [bounds.(i)] (and >= the previous
   bound). The estimate geometrically interpolates inside the bucket
   containing the rank — honest for log-spaced buckets, where the
   arithmetic midpoint would skew high. *)
let quantile ~counts ~bounds q =
  let total = Array.fold_left ( + ) 0 counts in
  if total = 0 then nan
  else begin
    let q = Float.max 0. (Float.min 1. q) in
    let rank = q *. float_of_int total in
    let n = Array.length counts in
    let rec go i cum =
      if i >= n then bounds.(Array.length bounds - 1)
      else
        let cum' = cum + counts.(i) in
        if counts.(i) > 0 && float_of_int cum' >= rank then begin
          let hi = bounds.(i) in
          let lo =
            if i = 0 then if Float.is_finite hi then hi /. 10. else 1e-9
            else bounds.(i - 1)
          in
          let lo = if lo <= 0. then 1e-9 else lo in
          let hi = if Float.is_finite hi then hi else lo *. 10. in
          let p = (rank -. float_of_int cum) /. float_of_int counts.(i) in
          lo *. ((hi /. lo) ** p)
        end
        else go (i + 1) cum'
    in
    go 0 0
  end

let quantiles ~counts ~bounds =
  ( quantile ~counts ~bounds 0.50,
    quantile ~counts ~bounds 0.90,
    quantile ~counts ~bounds 0.99 )

(* ------------------------------------------------------------------ *)
(* Exposition                                                          *)
(* ------------------------------------------------------------------ *)

let sorted_families reg =
  Mutex.lock reg.m;
  Fun.protect ~finally:(fun () -> Mutex.unlock reg.m) @@ fun () ->
  Hashtbl.fold (fun _ f acc -> f :: acc) reg.families []
  |> List.sort (fun a b -> compare a.f_name b.f_name)

let sorted_series fam =
  Hashtbl.fold (fun sig_ (labels, cell) acc -> (sig_, labels, cell) :: acc)
    fam.f_series []
  |> List.sort (fun (a, _, _) (b, _, _) -> compare a b)

let float_str v =
  if Float.is_integer v && Float.abs v < 1e15 then
    Printf.sprintf "%.0f" v
  else Printf.sprintf "%g" v

let bound_str b = if b = infinity then "+Inf" else Printf.sprintf "%g" b

(* the label signature already renders as [{k="v",...}]; to splice an
   extra [le] pair in we re-open the brace *)
let with_le sig_ b =
  let le = Printf.sprintf "le=\"%s\"" (bound_str b) in
  if sig_ = "" then "{" ^ le ^ "}"
  else String.sub sig_ 0 (String.length sig_ - 1) ^ "," ^ le ^ "}"

let to_prometheus reg =
  let buf = Buffer.create 4096 in
  List.iter
    (fun fam ->
      if fam.f_help <> "" then
        Buffer.add_string buf
          (Printf.sprintf "# HELP %s %s\n" fam.f_name fam.f_help);
      Buffer.add_string buf
        (Printf.sprintf "# TYPE %s %s\n" fam.f_name (kind_name fam.f_kind));
      List.iter
        (fun (sig_, _, cell) ->
          match cell with
          | C c ->
            Buffer.add_string buf
              (Printf.sprintf "%s%s %d\n" fam.f_name sig_ (Atomic.get c))
          | G g ->
            Buffer.add_string buf
              (Printf.sprintf "%s%s %s\n" fam.f_name sig_
                 (float_str (Atomic.get g)))
          | H h ->
            let cum = ref 0 in
            Array.iteri
              (fun i c ->
                cum := !cum + Atomic.get c;
                Buffer.add_string buf
                  (Printf.sprintf "%s_bucket%s %d\n" fam.f_name
                     (with_le sig_ h.h_bounds.(i))
                     !cum))
              h.h_counts;
            Buffer.add_string buf
              (Printf.sprintf "%s_sum%s %s\n" fam.f_name sig_
                 (float_str (Atomic.get h.h_sum)));
            Buffer.add_string buf
              (Printf.sprintf "%s_count%s %d\n" fam.f_name sig_ !cum))
        (sorted_series fam))
    (sorted_families reg);
  Buffer.contents buf

let to_json reg =
  let series_json (_, labels, cell) =
    let labels_json =
      ("labels", Json.Obj (List.map (fun (k, v) -> (k, Json.Str v)) labels))
    in
    match cell with
    | C c ->
      Json.Obj [ labels_json; ("value", Json.Num (float_of_int (Atomic.get c))) ]
    | G g -> Json.Obj [ labels_json; ("value", Json.Num (Atomic.get g)) ]
    | H h ->
      let counts = histogram_counts h in
      let p50, p90, p99 = quantiles ~counts ~bounds:h.h_bounds in
      Json.Obj
        [
          labels_json;
          ("count", Json.Num (float_of_int (Array.fold_left ( + ) 0 counts)));
          ("sum", Json.Num (Atomic.get h.h_sum));
          ("p50", Json.Num p50);
          ("p90", Json.Num p90);
          ("p99", Json.Num p99);
          ( "buckets",
            Json.Arr
              (Array.to_list
                 (Array.mapi
                    (fun i c ->
                      Json.Obj
                        [
                          ("le", Json.Str (bound_str h.h_bounds.(i)));
                          ("count", Json.Num (float_of_int c));
                        ])
                    counts)) );
        ]
  in
  Json.Obj
    [
      ("schema", Json.Str "alphonse-metrics/1");
      ( "metrics",
        Json.Arr
          (List.map
             (fun fam ->
               Json.Obj
                 [
                   ("name", Json.Str fam.f_name);
                   ("type", Json.Str (kind_name fam.f_kind));
                   ("help", Json.Str fam.f_help);
                   ("series", Json.Arr (List.map series_json (sorted_series fam)));
                 ])
             (sorted_families reg)) );
    ]

(* timing helper for instrumented regions: call sites keep the disabled
   path to one [option] branch by testing their cell before calling *)
let now () = Unix.gettimeofday ()
let observe_since h t0 = observe h (now () -. t0)
