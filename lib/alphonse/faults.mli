(** Deterministic fault injection for the engine.

    The engine pokes its installed fault hook at every decision point
    ({!Engine.fault_sites}); a hook that raises models a crash there. The
    injectors here are deterministic — counted, or seeded with splitmix64
    — so any failing schedule replays from its seed. The test harness
    ([test/test_faults.ml]) sweeps them over every site and asserts that
    the invariant auditor passes after recovery and that a subsequent
    settle converges to the exhaustive-specification values. *)

exception Injected of string
(** The injected fault; the payload is the engine site it fired at. *)

exception Killed of string
(** A simulated process death, raised by hooks built with {!kill_nth}.
    Unlike {!Injected} (an in-process fault the engine recovers from),
    [Killed] means the harness abandons all in-memory state and
    recovers from disk — the payload is the durability site it fired
    at ({!Wal.kill_sites}, {!Durable.kill_sites}). *)

val sites : string list
(** = {!Engine.fault_sites}. *)

val kill_nth : ?only:string -> int -> (string -> unit) * bool ref
(** [kill_nth ?only n] builds a one-shot hook raising {!Killed} at the
    [n]-th poke (1-based; restricted to site [only] when given),
    engine-independent so the durability layer can host it. The
    returned flag reports whether it fired. *)

val counting_hook : unit -> (string -> unit) * (unit -> (string * int) list)
(** [counting_hook ()] builds a never-raising hook that counts pokes
    per site, plus a function reading the counts (sorted by site).
    The engine-independent counterpart of {!count}. *)

val clear : Engine.t -> unit
(** Removes any installed hook. *)

val count : Engine.t -> (unit -> 'a) -> 'a * (string * int) list
(** [count eng f] runs [f] under a counting (never-raising) hook and
    returns its result with the per-site poke counts, sorted by site.
    The previously installed hook is restored afterwards. *)

val total : (string * int) list -> int
(** Sum of the counts. *)

val inject_nth : Engine.t -> ?only:string -> int -> bool ref
(** [inject_nth eng ?only n] installs a one-shot hook raising
    {!Injected} at the [n]-th poke (1-based; restricted to site [only]
    when given). The returned flag reports whether it fired — a sweep
    uses it to detect walking past the end of a run. *)

val install_seeded :
  Engine.t -> seed:int -> ?rate:float -> ?max_faults:int -> unit -> int ref
(** [install_seeded eng ~seed ()] installs a deterministic pseudo-random
    injector: each poke independently raises {!Injected} with
    probability [rate] (default 0.01), drawn from a splitmix64 stream
    seeded with [seed]. [max_faults] bounds the total number of faults
    fired. Returns the count of faults fired so far. *)

val pick : seed:int -> (string * int) list -> int -> (string * int) list
(** [pick ~seed counts n] draws [n] deterministic injection points
    [(site, k)] — "the [k]-th poke of [site]" — from observed per-site
    counts (telemetry-driven site selection), weighted by frequency.
    Replay each with {!inject_nth}. *)
