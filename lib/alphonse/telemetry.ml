(* Structured engine telemetry (paper §10: "the dynamic dependence
   information gathered by Alphonse can also be used for additional
   advantage, such as in debugging").

   The engine emits one {!event} per interesting decision — node creation,
   inconsistency marks, execution begin/end, cache hits, settle pops, edge
   additions/removals, partition unions, evictions — into a recorder
   attached with [Engine.set_telemetry]. Recording is a bounded ring
   buffer (old events are overwritten, never an allocation storm) plus an
   optional streaming sink; with no recorder attached the engine pays a
   single predictable branch per site.

   On top of the raw stream live three consumers:
   - {!to_chrome_trace}: the Chrome trace-event JSON format, so a session
     opens in Perfetto / chrome://tracing as a propagation waterfall;
   - {!profile}: per-instance re-execution counts, cumulative self time
     and settle-latency histograms;
   - {!why_recomputed}: the causal chain from an externally mutated
     storage cell to a re-executed instance. *)

type event =
  | Storage_created of { id : int; name : string }
  | Instance_created of { id : int; name : string }
  | Marked of { id : int; name : string; cause : int option }
      (* [cause] is the node whose processing propagated the mark;
         [None] means an external write by the mutator *)
  | Exec_begin of { id : int; name : string; first : bool }
  | Exec_end of { id : int; name : string; changed : bool; ok : bool }
      (* [ok = false]: the body raised; the instance stays inconsistent *)
  | Cache_hit of { id : int; name : string }
  | Settle_pop of { id : int; name : string }
  | Edge_added of { src : int; dst : int }
  | Preds_cleared of { id : int; name : string }
      (* RemovePredEdges before a (dynamic-R(p)) re-execution *)
  | Union of { a : int; b : int }
  | Evicted of { id : int; name : string }
  (* fault tolerance *)
  | Quarantined of { id : int; name : string; attempt : int; error : string }
      (* the execution raised; the instance awaits a bounded retry *)
  | Instance_poisoned of { id : int; name : string; error : string }
  | Retried of { id : int; name : string; attempt : int }
  | Txn_begin
  | Txn_commit of { marks : int }
  | Txn_rollback of { undone : int; remarked : int }
  | Degraded of { steps : int }
      (* settle-step watchdog tripped: degraded to exhaustive mode *)
  | Audit_run of { ok : bool; errors : int }
  | Fault_injected of { site : string }
  (* durability *)
  | Wal_rotated of { segment : int }
  | Snapshot_written of { file : string; bytes : int; nodes : int }
  | Recovery_started of { dir : string }
  | Recovery_finished of {
      snapshot : bool; (* a valid snapshot was used (vs full replay) *)
      replayed : int; (* journal entries applied *)
      dropped : int; (* entries lost to a torn/corrupt tail *)
      discarded_txns : int; (* uncommitted transaction groups dropped *)
      verified : bool; (* replayed write intents matched the journal *)
      degraded : bool; (* degrade_to_exhaustive was taken *)
    }
  (* parallel settle *)
  | Par_level_begin of { level : int; width : int; tasks : int; domains : int }
      (* a level front starts: [width] members popped, [tasks] eager
         executions dispatched to the pool *)
  | Par_level_end of { level : int; executed : int; failed : int }
      (* the level's merge barrier completed *)
  | Par_domain_begin of { domain : int }
      (* bracket: the following events replay one lane's buffered
         stream, contiguously (worker events are buffered during the
         level and flushed at the barrier, so each lane's stream stays
         well nested) *)
  | Par_domain_end of { domain : int }

type record = { seq : int; at : float; ev : event }
(* [at] is seconds since the recorder was created ([Unix.gettimeofday]
   deltas — wall-clock, microsecond resolution). *)

type sink = record -> unit

type t = {
  ring : record option array;
  capacity : int;
  mutable next_seq : int; (* total events ever emitted *)
  mutable sink : sink option;
  mutable drop_counter : Metrics.counter option;
  t0 : float;
}

let default_capacity = 65_536

let create ?(capacity = default_capacity) () =
  if capacity <= 0 then invalid_arg "Telemetry.create: capacity must be > 0";
  {
    ring = Array.make capacity None;
    capacity;
    next_seq = 0;
    sink = None;
    drop_counter = None;
    t0 = Unix.gettimeofday ();
  }

let now t = Unix.gettimeofday () -. t.t0

let set_metrics t = function
  | None -> t.drop_counter <- None
  | Some reg ->
    t.drop_counter <-
      Some
        (Metrics.counter reg "telemetry_dropped_total"
           ~help:"events overwritten in the bounded telemetry ring")

(* Each emit into a full ring overwrites its oldest record: that is the
   bounded-buffer contract, but the loss must never be silent — it is
   counted (see [dropped]) and, when a registry is attached, surfaced
   as a metric the moment it happens. *)
let count_drop t =
  if t.next_seq >= t.capacity then
    match t.drop_counter with None -> () | Some c -> Metrics.inc c

let emit t ev =
  let r = { seq = t.next_seq; at = now t; ev } in
  count_drop t;
  t.ring.(t.next_seq mod t.capacity) <- Some r;
  t.next_seq <- t.next_seq + 1;
  match t.sink with None -> () | Some f -> f r

(* Emit with a caller-supplied timestamp: the merge barrier replays
   worker-buffered events with the time they actually happened, not the
   flush time. The sequence number still reflects flush order. *)
let emit_at t ~at ev =
  let r = { seq = t.next_seq; at; ev } in
  count_drop t;
  t.ring.(t.next_seq mod t.capacity) <- Some r;
  t.next_seq <- t.next_seq + 1;
  match t.sink with None -> () | Some f -> f r

let set_sink t sink = t.sink <- sink
let sink t = t.sink

let clear t =
  Array.fill t.ring 0 t.capacity None;
  t.next_seq <- 0

let total_emitted t = t.next_seq
let capacity t = t.capacity
let dropped t = max 0 (t.next_seq - t.capacity)

(* Oldest-first contents of the ring. *)
let events t =
  let n = min t.next_seq t.capacity in
  let first = t.next_seq - n in
  List.init n (fun i ->
      match t.ring.((first + i) mod t.capacity) with
      | Some r -> r
      | None -> assert false)

let iter t f = List.iter f (events t)

(* ------------------------------------------------------------------ *)
(* Event pretty-printing (streaming sinks, tests)                      *)
(* ------------------------------------------------------------------ *)

let pp_event ppf = function
  | Storage_created { id; name } -> Fmt.pf ppf "storage-created %s#%d" name id
  | Instance_created { id; name } ->
    Fmt.pf ppf "instance-created %s#%d" name id
  | Marked { id; name; cause } ->
    Fmt.pf ppf "marked %s#%d%a" name id
      Fmt.(option (fmt " (by #%d)"))
      cause
  | Exec_begin { id; name; first } ->
    Fmt.pf ppf "exec-begin %s#%d%s" name id (if first then " (first)" else "")
  | Exec_end { id; name; changed; ok } ->
    Fmt.pf ppf "exec-end %s#%d (%s)" name id
      (if not ok then "raised" else if changed then "changed" else "quiescent")
  | Cache_hit { id; name } -> Fmt.pf ppf "cache-hit %s#%d" name id
  | Settle_pop { id; name } -> Fmt.pf ppf "settle-pop %s#%d" name id
  | Edge_added { src; dst } -> Fmt.pf ppf "edge #%d -> #%d" src dst
  | Preds_cleared { id; name } -> Fmt.pf ppf "preds-cleared %s#%d" name id
  | Union { a; b } -> Fmt.pf ppf "union #%d #%d" a b
  | Evicted { id; name } -> Fmt.pf ppf "evicted %s#%d" name id
  | Quarantined { id; name; attempt; error } ->
    Fmt.pf ppf "quarantined %s#%d (attempt %d: %s)" name id attempt error
  | Instance_poisoned { id; name; error } ->
    Fmt.pf ppf "poisoned %s#%d (%s)" name id error
  | Retried { id; name; attempt } ->
    Fmt.pf ppf "retried %s#%d (after %d failure(s))" name id attempt
  | Txn_begin -> Fmt.string ppf "txn-begin"
  | Txn_commit { marks } -> Fmt.pf ppf "txn-commit (%d marks)" marks
  | Txn_rollback { undone; remarked } ->
    Fmt.pf ppf "txn-rollback (%d undone, %d remarked)" undone remarked
  | Degraded { steps } ->
    Fmt.pf ppf "degraded to exhaustive (watchdog after %d steps)" steps
  | Audit_run { ok; errors } ->
    if ok then Fmt.string ppf "audit ok"
    else Fmt.pf ppf "audit FAILED (%d error(s))" errors
  | Fault_injected { site } -> Fmt.pf ppf "fault injected at %s" site
  | Wal_rotated { segment } -> Fmt.pf ppf "wal rotated to segment %d" segment
  | Snapshot_written { file; bytes; nodes } ->
    Fmt.pf ppf "snapshot written %s (%d bytes, %d nodes)" file bytes nodes
  | Recovery_started { dir } -> Fmt.pf ppf "recovery started (%s)" dir
  | Recovery_finished { snapshot; replayed; dropped; discarded_txns; verified; degraded } ->
    Fmt.pf ppf
      "recovery finished (snapshot=%b replayed=%d dropped=%d \
       discarded-txns=%d verified=%b degraded=%b)"
      snapshot replayed dropped discarded_txns verified degraded
  | Par_level_begin { level; width; tasks; domains } ->
    Fmt.pf ppf "par-level %d begin (width %d, %d tasks, %d domains)" level
      width tasks domains
  | Par_level_end { level; executed; failed } ->
    Fmt.pf ppf "par-level %d end (%d executed, %d failed)" level executed
      failed
  | Par_domain_begin { domain } -> Fmt.pf ppf "par-domain %d {" domain
  | Par_domain_end { domain } -> Fmt.pf ppf "} par-domain %d" domain

let pp_record ppf r = Fmt.pf ppf "[%06d %.6fs] %a" r.seq r.at pp_event r.ev

(* ------------------------------------------------------------------ *)
(* Chrome trace-event export                                           *)
(* ------------------------------------------------------------------ *)

(* The trace-event format:
   https://docs.google.com/document/d/1CvAClvFfyA5R-PhYUmn5OOQtYMH4h6I0nSsKchNAySU
   Executions become duration events (ph B/E) on one thread, so nested
   re-executions render as a flame; everything else becomes instant
   events (ph i) with the structured payload under "args". Timestamps
   are microseconds since recorder creation. *)

let us at = Json.Num (Float.round (at *. 1e6))

let trace_records ?(meta = []) records =
  let ev r =
    let common ph name cat args =
      Json.Obj
        ([
           ("name", Json.Str name);
           ("cat", Json.Str cat);
           ("ph", Json.Str ph);
           ("ts", us r.at);
           ("pid", Json.Num 1.);
           ("tid", Json.Num 1.);
         ]
        @
        match args with
        | [] -> []
        | args -> [ ("args", Json.Obj args) ])
    in
    let instant name cat args =
      (* "s":"t" scopes the instant marker to its thread *)
      match common "i" name cat args with
      | Json.Obj kvs -> Some (Json.Obj (kvs @ [ ("s", Json.Str "t") ]))
      | _ -> None
    in
    let node_args id = [ ("node", Json.Num (float_of_int id)) ] in
    match r.ev with
    | Exec_begin { id; name; first } ->
      Some
        (common "B" name "exec"
           (node_args id @ [ ("first", Json.Bool first) ]))
    | Exec_end { id; name; changed; ok } ->
      Some
        (common "E" name "exec"
           (node_args id
           @ [ ("changed", Json.Bool changed); ("ok", Json.Bool ok) ]))
    | Marked { id; name; cause } ->
      instant ("mark " ^ name) "propagate"
        (node_args id
        @
        match cause with
        | Some c -> [ ("cause", Json.Num (float_of_int c)) ]
        | None -> [ ("cause", Json.Str "external-write") ])
    | Settle_pop { id; name } ->
      instant ("settle " ^ name) "propagate" (node_args id)
    | Cache_hit { id; name } ->
      instant ("hit " ^ name) "cache" (node_args id)
    | Storage_created { id; name } ->
      instant ("new-storage " ^ name) "graph" (node_args id)
    | Instance_created { id; name } ->
      instant ("new-instance " ^ name) "graph" (node_args id)
    | Edge_added { src; dst } ->
      instant "edge" "graph"
        [
          ("src", Json.Num (float_of_int src));
          ("dst", Json.Num (float_of_int dst));
        ]
    | Preds_cleared { id; name } ->
      instant ("clear-preds " ^ name) "graph" (node_args id)
    | Union { a; b } ->
      instant "union" "partition"
        [
          ("a", Json.Num (float_of_int a)); ("b", Json.Num (float_of_int b));
        ]
    | Evicted { id; name } -> instant ("evict " ^ name) "cache" (node_args id)
    | Quarantined { id; name; attempt; error } ->
      instant ("quarantine " ^ name) "fault"
        (node_args id
        @ [
            ("attempt", Json.Num (float_of_int attempt));
            ("error", Json.Str error);
          ])
    | Instance_poisoned { id; name; error } ->
      instant ("poison " ^ name) "fault"
        (node_args id @ [ ("error", Json.Str error) ])
    | Retried { id; name; attempt } ->
      instant ("retry " ^ name) "fault"
        (node_args id @ [ ("attempt", Json.Num (float_of_int attempt)) ])
    | Txn_begin -> instant "txn-begin" "txn" []
    | Txn_commit { marks } ->
      instant "txn-commit" "txn" [ ("marks", Json.Num (float_of_int marks)) ]
    | Txn_rollback { undone; remarked } ->
      instant "txn-rollback" "txn"
        [
          ("undone", Json.Num (float_of_int undone));
          ("remarked", Json.Num (float_of_int remarked));
        ]
    | Degraded { steps } ->
      instant "degraded" "fault" [ ("steps", Json.Num (float_of_int steps)) ]
    | Audit_run { ok; errors } ->
      instant "audit" "audit"
        [ ("ok", Json.Bool ok); ("errors", Json.Num (float_of_int errors)) ]
    | Fault_injected { site } ->
      instant "fault" "fault" [ ("site", Json.Str site) ]
    | Wal_rotated { segment } ->
      instant "wal-rotate" "durable"
        [ ("segment", Json.Num (float_of_int segment)) ]
    | Snapshot_written { file; bytes; nodes } ->
      instant "snapshot" "durable"
        [
          ("file", Json.Str file);
          ("bytes", Json.Num (float_of_int bytes));
          ("nodes", Json.Num (float_of_int nodes));
        ]
    | Recovery_started { dir } ->
      instant "recovery-start" "durable" [ ("dir", Json.Str dir) ]
    | Recovery_finished
        { snapshot; replayed; dropped; discarded_txns; verified; degraded } ->
      instant "recovery-end" "durable"
        [
          ("snapshot", Json.Bool snapshot);
          ("replayed", Json.Num (float_of_int replayed));
          ("dropped", Json.Num (float_of_int dropped));
          ("discarded_txns", Json.Num (float_of_int discarded_txns));
          ("verified", Json.Bool verified);
          ("degraded", Json.Bool degraded);
        ]
    | Par_level_begin { level; width; tasks; domains } ->
      instant "par-level-begin" "parallel"
        [
          ("level", Json.Num (float_of_int level));
          ("width", Json.Num (float_of_int width));
          ("tasks", Json.Num (float_of_int tasks));
          ("domains", Json.Num (float_of_int domains));
        ]
    | Par_level_end { level; executed; failed } ->
      instant "par-level-end" "parallel"
        [
          ("level", Json.Num (float_of_int level));
          ("executed", Json.Num (float_of_int executed));
          ("failed", Json.Num (float_of_int failed));
        ]
    | Par_domain_begin { domain } ->
      instant "par-domain-begin" "parallel"
        [ ("domain", Json.Num (float_of_int domain)) ]
    | Par_domain_end { domain } ->
      instant "par-domain-end" "parallel"
        [ ("domain", Json.Num (float_of_int domain)) ]
  in
  (* A truncated ring can start mid-execution: drop unmatched E events
     (and close unmatched Bs) so the trace stays well nested. *)
  let depth = ref 0 in
  let out = ref [] in
  List.iter
    (fun r ->
      match r.ev with
      | Exec_end _ when !depth = 0 -> ()
      | _ ->
        (match r.ev with
        | Exec_begin _ -> incr depth
        | Exec_end _ -> decr depth
        | _ -> ());
        (match ev r with Some j -> out := j :: !out | None -> ()))
    records;
  let closing =
    (* close any executions still open when the recorder was read *)
    List.init !depth (fun _ ->
        Json.Obj
          [
            ("name", Json.Str "(open)");
            ("cat", Json.Str "exec");
            ("ph", Json.Str "E");
            ( "ts",
              us (match records with [] -> 0. | r -> (List.rev r |> List.hd).at)
            );
            ("pid", Json.Num 1.);
            ("tid", Json.Num 1.);
          ])
  in
  Json.Obj
    [
      ("traceEvents", Json.Arr (List.rev_append !out closing));
      ("displayTimeUnit", Json.Str "ms");
      ( "otherData",
        Json.Obj (("producer", Json.Str "alphonse-telemetry/1") :: meta) );
    ]

(* The export declares its own incompleteness: a ring that overwrote
   events says so in [otherData] rather than presenting the surviving
   window as the whole session. *)
let to_chrome_trace t =
  let meta =
    [
      ("droppedEvents", Json.Num (float_of_int (dropped t)));
      ("totalEmitted", Json.Num (float_of_int (total_emitted t)));
      ("ringCapacity", Json.Num (float_of_int t.capacity));
    ]
  in
  Json.to_string (trace_records ~meta (events t))

(* ------------------------------------------------------------------ *)
(* Per-instance profiles                                               *)
(* ------------------------------------------------------------------ *)

(* Settle latency — the delay between a node being marked inconsistent
   and its next (re-)execution — bucketed by decade. *)
let latency_buckets = 7
let bucket_labels =
  [| "<1us"; "<10us"; "<100us"; "<1ms"; "<10ms"; "<100ms"; ">=100ms" |]

(* upper bounds of the buckets above, [Metrics.quantile] convention:
   counts.(i) holds the latencies below bucket_bounds.(i) *)
let bucket_bounds = [| 1e-6; 1e-5; 1e-4; 1e-3; 1e-2; 1e-1; infinity |]

let bucket_of_latency l =
  let rec go b threshold =
    if b >= latency_buckets - 1 then latency_buckets - 1
    else if l < threshold then b
    else go (b + 1) (threshold *. 10.)
  in
  go 0 1e-6

type instance_profile = {
  id : int;
  name : string;
  executions : int;
  re_executions : int;
  total_time : float;  (** cumulative wall time inside the body *)
  self_time : float;  (** [total_time] minus nested executions *)
  marks : int;
  cache_hits : int;
  latency : int array;  (** settle-latency histogram, [bucket_labels] *)
}

let profile t =
  let tbl : (int, instance_profile ref) Hashtbl.t = Hashtbl.create 64 in
  let get id name =
    match Hashtbl.find_opt tbl id with
    | Some p -> p
    | None ->
      let p =
        ref
          {
            id;
            name;
            executions = 0;
            re_executions = 0;
            total_time = 0.;
            self_time = 0.;
            marks = 0;
            cache_hits = 0;
            latency = Array.make latency_buckets 0;
          }
      in
      Hashtbl.replace tbl id p;
      p
  in
  (* stack of open executions: (id, start, child time accumulated) *)
  let stack = ref [] in
  (* pending marks awaiting their execution, for latency *)
  let marked_at : (int, float) Hashtbl.t = Hashtbl.create 64 in
  iter t (fun r ->
      match r.ev with
      | Marked { id; name; _ } ->
        let p = get id name in
        p := { !p with marks = !p.marks + 1 };
        if not (Hashtbl.mem marked_at id) then
          Hashtbl.replace marked_at id r.at
      | Cache_hit { id; name } ->
        let p = get id name in
        p := { !p with cache_hits = !p.cache_hits + 1 }
      | Exec_begin { id; name; _ } ->
        (match Hashtbl.find_opt marked_at id with
        | Some t_mark ->
          Hashtbl.remove marked_at id;
          let p = get id name in
          !p.latency.(bucket_of_latency (r.at -. t_mark)) <-
            !p.latency.(bucket_of_latency (r.at -. t_mark)) + 1
        | None -> ());
        stack := (id, r.at, ref 0.) :: !stack
      | Exec_end { id; name; _ } -> (
        match !stack with
        | (sid, t_begin, children) :: rest when sid = id ->
          stack := rest;
          let dur = r.at -. t_begin in
          (match rest with
          | (_, _, parent_children) :: _ ->
            parent_children := !parent_children +. dur
          | [] -> ());
          let p = get id name in
          p :=
            {
              !p with
              executions = !p.executions + 1;
              total_time = !p.total_time +. dur;
              self_time = !p.self_time +. Float.max 0. (dur -. !children);
            }
        | _ -> () (* unmatched end: the begin was overwritten in the ring *))
      | _ -> ());
  let first_execs : (int, int) Hashtbl.t = Hashtbl.create 64 in
  iter t (fun r ->
      match r.ev with
      | Exec_begin { id; first = true; _ } ->
        Hashtbl.replace first_execs id 1
      | _ -> ());
  Hashtbl.fold
    (fun id p acc ->
      let firsts = if Hashtbl.mem first_execs id then 1 else 0 in
      { !p with re_executions = max 0 (!p.executions - firsts) } :: acc)
    tbl []
  |> List.sort (fun a b ->
         match compare b.self_time a.self_time with
         | 0 -> compare a.id b.id
         | c -> c)

let pp_latency ppf hist =
  let printed = ref false in
  Array.iteri
    (fun i n ->
      if n > 0 then begin
        if !printed then Fmt.sp ppf ();
        Fmt.pf ppf "%s:%d" bucket_labels.(i) n;
        printed := true
      end)
    hist;
  if not !printed then Fmt.string ppf "-"

let pp_profile ?top ppf profiles =
  let profiles =
    match top with
    | Some n -> List.filteri (fun i _ -> i < n) profiles
    | None -> profiles
  in
  Fmt.pf ppf "@[<v>%-28s %6s %6s %6s %10s %10s  %s@,"
    "instance" "execs" "re-ex" "marks" "self" "total" "settle latency";
  List.iter
    (fun p ->
      Fmt.pf ppf "%-28s %6d %6d %6d %8.2fms %8.2fms  %a@,"
        (Fmt.str "%s#%d" p.name p.id)
        p.executions p.re_executions p.marks (p.self_time *. 1e3)
        (p.total_time *. 1e3) pp_latency p.latency)
    profiles;
  Fmt.pf ppf "@]"

(* ------------------------------------------------------------------ *)
(* Parallel-settle occupancy                                           *)
(* ------------------------------------------------------------------ *)

(* How evenly the level fronts spread across the pool: per-domain
   execution counts and busy time, recovered from the per-lane replay
   brackets ([Par_domain_begin]/[end]). Busy time charges only
   top-level execution spans — a nested forcing's duration is already
   inside its parent's. *)

type par_occupancy = {
  domain : int;
  domain_tasks : int;  (** executions attributed to this domain *)
  busy : float;  (** wall time inside bodies on this domain, seconds *)
}

type par_summary = {
  par_levels : int;  (** level fronts dispatched *)
  par_dispatched : int;  (** eager tasks handed to the pool, total *)
  occupancy : par_occupancy list;  (** by domain index, ascending *)
}

let par_occupancy t =
  let levels = ref 0 and dispatched = ref 0 in
  let tbl : (int, int ref * float ref) Hashtbl.t = Hashtbl.create 8 in
  let get d =
    match Hashtbl.find_opt tbl d with
    | Some p -> p
    | None ->
      let p = (ref 0, ref 0.) in
      Hashtbl.replace tbl d p;
      p
  in
  let cur = ref None in
  let stack = ref [] in
  iter t (fun r ->
      match r.ev with
      | Par_level_begin { tasks; _ } ->
        incr levels;
        dispatched := !dispatched + tasks
      | Par_domain_begin { domain } ->
        cur := Some domain;
        stack := []
      | Par_domain_end _ ->
        cur := None;
        stack := []
      | Exec_begin _ when !cur <> None -> stack := r.at :: !stack
      | Exec_end _ -> (
        match (!cur, !stack) with
        | Some d, t_begin :: rest ->
          stack := rest;
          let cnt, busy = get d in
          incr cnt;
          if rest = [] then busy := !busy +. Float.max 0. (r.at -. t_begin)
        | _ -> ())
      | _ -> ());
  {
    par_levels = !levels;
    par_dispatched = !dispatched;
    occupancy =
      Hashtbl.fold
        (fun d (cnt, busy) acc ->
          { domain = d; domain_tasks = !cnt; busy = !busy } :: acc)
        tbl []
      |> List.sort (fun a b -> compare a.domain b.domain);
  }

let pp_par_occupancy ppf s =
  if s.par_levels = 0 then
    Fmt.string ppf "no parallel settles recorded"
  else begin
    Fmt.pf ppf "@[<v>parallel levels: %d (%d tasks dispatched)@," s.par_levels
      s.par_dispatched;
    List.iter
      (fun o ->
        Fmt.pf ppf "  domain %d: %4d execs, %8.2fms busy@," o.domain
          o.domain_tasks (o.busy *. 1e3))
      s.occupancy;
    Fmt.pf ppf "@]"
  end

(* ------------------------------------------------------------------ *)
(* Provenance: why did this instance re-execute?                       *)
(* ------------------------------------------------------------------ *)

type why_step = {
  step_id : int;
  step_name : string;
  step_at : float;
  step_role : [ `Written | `Marked_by of int | `Executed ];
}

type why = why_step list
(* Oldest-first: the external write, the chain of marks it propagated,
   and finally the re-execution it explains. *)

(* Find the last execution of [id] in the recorded window, then follow
   the [cause] fields of the Marked events backwards to the external
   write that started the propagation. *)
let why_recomputed t ~id =
  let evs = Array.of_list (events t) in
  let n = Array.length evs in
  let rec find_last i pred = if i < 0 then None else if pred evs.(i) then Some i else find_last (i - 1) pred in
  let exec_of r = match r.ev with Exec_begin e when e.id = id -> true | _ -> false in
  match find_last (n - 1) exec_of with
  | None -> None
  | Some exec_idx ->
    let exec_name =
      match evs.(exec_idx).ev with Exec_begin e -> e.name | _ -> assert false
    in
    let exec_step =
      {
        step_id = id;
        step_name = exec_name;
        step_at = evs.(exec_idx).at;
        step_role = `Executed;
      }
    in
    (* walk mark causes backwards; [visited] guards against mark cycles
       in a truncated window *)
    let visited = Hashtbl.create 8 in
    let rec chain acc node idx =
      let mark_of r =
        match r.ev with Marked m when m.id = node -> true | _ -> false
      in
      match find_last idx mark_of with
      | None -> acc (* first execution, or the mark fell out of the ring *)
      | Some mark_idx -> (
        match evs.(mark_idx).ev with
        | Marked { id = mid; name = mname; cause } -> (
          let step cause_role =
            {
              step_id = mid;
              step_name = mname;
              step_at = evs.(mark_idx).at;
              step_role = cause_role;
            }
          in
          match cause with
          | None -> step `Written :: acc
          | Some c ->
            if Hashtbl.mem visited c then step (`Marked_by c) :: acc
            else begin
              Hashtbl.replace visited c ();
              chain (step (`Marked_by c) :: acc) c (mark_idx - 1)
            end)
        | _ -> assert false)
    in
    Some (chain [ exec_step ] id (exec_idx - 1))

let pp_why ppf (steps : why) =
  Fmt.pf ppf "@[<v>";
  List.iteri
    (fun i s ->
      let arrow = if i = 0 then "" else "-> " in
      match s.step_role with
      | `Written ->
        Fmt.pf ppf "%s%s#%d written (t=%.6fs)@," arrow s.step_name s.step_id
          s.step_at
      | `Marked_by c ->
        Fmt.pf ppf "%smarked %s#%d inconsistent (by #%d, t=%.6fs)@," arrow
          s.step_name s.step_id c s.step_at
      | `Executed ->
        Fmt.pf ppf "%sre-executed %s#%d (t=%.6fs)@," arrow s.step_name
          s.step_id s.step_at)
    steps;
  Fmt.pf ppf "@]"
