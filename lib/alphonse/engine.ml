module G = Depgraph.Graph
module Heap = Depgraph.Pairing_heap
module Uf = Depgraph.Union_find

(* Tracing: `Logs.Src.set_level Engine.log_src (Some Debug)` (or the
   alphonsec --trace flag) streams the engine's decisions — marks,
   (re-)executions, settle pops — the observability counterpart of the
   paper's §10 debugging remark. Disabled, the cost is one branch. *)
let log_src = Logs.Src.create "alphonse.engine" ~doc:"Alphonse engine tracing"

module Log = (val Logs.src_log log_src : Logs.LOG)

type strategy = Demand | Eager

(* How the evaluator picks the next inconsistent element (§4.5: "The
   selection of u from the set is done using an algorithm such as
   [Hud86, Hoo86, Hoo87, AHR+90]"). *)
type scheduling =
  | Creation_order
      (* priorities fixed at node creation (dependencies discovered during
         an execution are ordered before their consumer) *)
  | Topological
      (* creation priorities plus Pearce–Kelly restoration on every
         order-violating edge: the drain order stays topological *)
  | Fifo  (* no priorities: first marked, first processed *)

exception Cycle of string

(* Node payload: the engine-side bookkeeping of §4.1. [queued] is
   membership in the inconsistent set; [consistent] is the paper's
   consistent(u) flag used by demand instances. *)
type payload = {
  name : string;
  mutable kind : kind;
  mutable queued : bool;
  mutable on_stack : bool;
  mutable discarded : bool;
  mutable seq : int; (* mark order, for Fifo scheduling *)
  mutable part_elt : partition Uf.elt option; (* Some iff partitioning on *)
}

and kind =
  | Storage
  | Instance of instance

and instance = {
  strategy : strategy;
  recompute : unit -> bool;
  static_deps : bool;
      (* §6.2: the referenced-argument set is the same on every execution,
         so edges recorded by the first run are reused verbatim — no
         RemovePredEdges, no re-recording *)
  mutable consistent : bool;
  mutable ever_ran : bool;
}

and nd = payload G.node

(* A dependency-graph partition (§6.3) and its own inconsistent set. *)
and partition = {
  queue : nd Heap.t;
  mutable on_dirty_list : bool;
}

type node = nd

type frame = { fnode : nd; stamp : int }

type stats = {
  executions : int;
  first_executions : int;
  cache_hits : int;
  settle_steps : int;
  queue_pushes : int;
  unions : int;
  out_of_order_edges : int;
  order_fixups : int;
  evictions : int;
}

type t = {
  graph : payload G.t;
  heap_leq : nd -> nd -> bool;
  global_part : partition; (* used when partitioning is off *)
  use_partitions : bool;
  strategy0 : strategy;
  scheduling : scheduling;
  mutable seq_counter : int;
  mutable stack : frame list;
  mutable exec_serial : int;
  mutable settling : bool;
  mutable mask : bool; (* record dependency edges? false under unchecked *)
  mutable dirty_parts : partition list;
  mutable all_nodes : nd list;
  mutable telemetry : Telemetry.t option;
  (* counters *)
  mutable c_executions : int;
  mutable c_first : int;
  mutable c_hits : int;
  mutable c_steps : int;
  mutable c_pushes : int;
  mutable c_unions : int;
  mutable c_ooo : int;
  mutable c_fixups : int;
  mutable c_evictions : int;
}

let create ?(partitioning = false) ?(default_strategy = Demand)
    ?(scheduling = Creation_order) () =
  let leq =
    match scheduling with
    | Creation_order | Topological -> fun a b -> not (G.order_lt b a)
    | Fifo -> fun a b -> (G.payload a).seq <= (G.payload b).seq
  in
  {
    graph = G.create ();
    heap_leq = leq;
    global_part = { queue = Heap.create ~leq; on_dirty_list = false };
    use_partitions = partitioning;
    strategy0 = default_strategy;
    scheduling;
    seq_counter = 0;
    stack = [];
    exec_serial = 0;
    settling = false;
    mask = true;
    dirty_parts = [];
    all_nodes = [];
    telemetry = None;
    c_executions = 0;
    c_first = 0;
    c_hits = 0;
    c_steps = 0;
    c_pushes = 0;
    c_unions = 0;
    c_ooo = 0;
    c_fixups = 0;
    c_evictions = 0;
  }

(* Telemetry: every instrumentation site is one [match] on this field —
   the branch-predictable no-op path when no recorder is attached. The
   event is built lazily so the disabled path allocates nothing. *)
let[@inline] emit t ev =
  match t.telemetry with None -> () | Some tm -> Telemetry.emit tm (ev ())

let set_telemetry t tm = t.telemetry <- tm
let telemetry t = t.telemetry

let default_strategy t = t.strategy0
let partitioning t = t.use_partitions
let scheduling t = t.scheduling

let partition_of t node =
  if not t.use_partitions then t.global_part
  else
    match (G.payload node).part_elt with
    | Some e -> Uf.payload e
    | None -> assert false

(* [cause] is provenance for telemetry only: the node whose processing
   propagated this mark, [None] for an external mutator write. *)
let mark_inconsistent ?cause t node =
  let p = G.payload node in
  if (not p.queued) && not p.discarded then begin
    Log.debug (fun m -> m "mark inconsistent: %s#%d" p.name (G.id node));
    emit t (fun () ->
        Telemetry.Marked
          {
            id = G.id node;
            name = p.name;
            cause = Option.map G.id cause;
          });
    p.queued <- true;
    t.seq_counter <- t.seq_counter + 1;
    p.seq <- t.seq_counter;
    t.c_pushes <- t.c_pushes + 1;
    let part = partition_of t node in
    Heap.insert part.queue node;
    if not part.on_dirty_list then begin
      part.on_dirty_list <- true;
      t.dirty_parts <- part :: t.dirty_parts
    end
  end

(* Node creation: priorities approximate topological order — a node created
   while a consumer executes is one of its dependencies, so it is ordered
   just before the consumer; top-level creations append at the end. *)
let new_node t payload =
  let node =
    match t.stack with
    | { fnode; _ } :: _ -> G.add_node_before t.graph ~order_before:fnode payload
    | [] -> G.add_node t.graph ~order_after:None payload
  in
  if t.use_partitions then begin
    let part = { queue = Heap.create ~leq:t.heap_leq; on_dirty_list = false } in
    (G.payload node).part_elt <- Some (Uf.make part)
  end;
  t.all_nodes <- node :: t.all_nodes;
  node

let new_storage t ~name =
  let node =
    new_node t
      { name; kind = Storage; queued = false; on_stack = false;
        discarded = false; seq = 0; part_elt = None }
  in
  emit t (fun () -> Telemetry.Storage_created { id = G.id node; name });
  node

let new_instance t ~name ~strategy ?(static_deps = false) ~recompute () =
  let node =
    new_node t
    {
      name;
      kind =
        Instance
          { strategy; recompute; static_deps; consistent = false;
            ever_ran = false };
      queued = false;
      on_stack = false;
      discarded = false;
      seq = 0;
      part_elt = None;
    }
  in
  emit t (fun () -> Telemetry.Instance_created { id = G.id node; name });
  node

(* Merge the partitions of the two endpoints of a new edge (§6.3 dynamic
   refinement). Their inconsistent sets are melded in O(1). *)
let link_partitions t src dst =
  if t.use_partitions then
    match ((G.payload src).part_elt, (G.payload dst).part_elt) with
    | Some a, Some b ->
      if not (Uf.same a b) then begin
        t.c_unions <- t.c_unions + 1;
        emit t (fun () -> Telemetry.Union { a = G.id src; b = G.id dst });
        let merge keep absorbed =
          Heap.meld keep.queue absorbed.queue;
          if absorbed.on_dirty_list && not keep.on_dirty_list then begin
            keep.on_dirty_list <- true;
            t.dirty_parts <- keep :: t.dirty_parts
          end;
          keep
        in
        ignore (Uf.union ~merge a b)
      end
    | _ -> assert false

(* Record a dependency edge src → consumer for the executing instance, if
   any and if recording is not suppressed by [unchecked]. *)
let record_dependency t src =
  match t.stack with
  | [] -> ()
  | { fnode = consumer; stamp } :: _ ->
    if t.mask then begin
      if G.order_lt consumer src then begin
        t.c_ooo <- t.c_ooo + 1;
        (* under Topological scheduling, repair the drain order so this
           dependency is processed before its consumer *)
        if t.scheduling = Topological then
          match
            G.restore_topological_order t.graph ~src ~dst:consumer
          with
          | `Reordered _ -> t.c_fixups <- t.c_fixups + 1
          | `Already_ordered | `Cycle -> ()
      end;
      G.add_edge ~stamp ~src ~dst:consumer;
      emit t (fun () ->
          Telemetry.Edge_added { src = G.id src; dst = G.id consumer });
      link_partitions t src consumer
    end

let record_read t node = record_dependency t node

let record_write t node ~changed =
  record_dependency t node;
  if changed then mark_inconsistent t node

let dirty p =
  match p.kind with
  | Storage -> p.queued
  | Instance inst -> p.queued || not inst.consistent

(* Re-execute an incremental procedure instance under the call-stack
   discipline of Algorithm 5: drop the dependencies recorded by the
   previous execution, push a fresh frame, run, pop. Returns the quiescence
   test: did the cached value change? *)
let run_instance t node p inst =
  if p.on_stack then raise (Cycle p.name);
  (* §6.2 static subgraphs: a re-execution of a static-R(p) instance keeps
     the dependency edges of its first execution and records none — its
     frame runs with edge recording masked (nested frames restore it). *)
  let reuse_static = inst.static_deps && inst.ever_ran in
  if not reuse_static then begin
    if inst.ever_ran then
      emit t (fun () ->
          Telemetry.Preds_cleared { id = G.id node; name = p.name });
    G.clear_preds t.graph node
  end;
  t.exec_serial <- t.exec_serial + 1;
  let stamp = t.exec_serial in
  t.stack <- { fnode = node; stamp } :: t.stack;
  p.on_stack <- true;
  p.queued <- false;
  inst.consistent <- true;
  let saved_mask = t.mask in
  t.mask <- not reuse_static;
  let restore () =
    t.mask <- saved_mask;
    p.on_stack <- false;
    t.stack <- List.tl t.stack
  in
  emit t (fun () ->
      Telemetry.Exec_begin
        { id = G.id node; name = p.name; first = not inst.ever_ran });
  let changed =
    try inst.recompute ()
    with e ->
      restore ();
      (* leave the instance inconsistent so a later call retries *)
      inst.consistent <- false;
      emit t (fun () ->
          Telemetry.Exec_end
            { id = G.id node; name = p.name; changed = false; ok = false });
      raise e
  in
  restore ();
  emit t (fun () ->
      Telemetry.Exec_end { id = G.id node; name = p.name; changed; ok = true });
  t.c_executions <- t.c_executions + 1;
  Log.debug (fun m ->
      m "%s: %s#%d (changed=%b)"
        (if inst.ever_ran then "re-executed" else "first execution")
        p.name (G.id node) changed);
  if not inst.ever_ran then begin
    t.c_first <- t.c_first + 1;
    inst.ever_ran <- true
  end;
  changed

(* Force a dirty instance to currency, notifying dependents on change. *)
let force t node p inst =
  let changed = run_instance t node p inst in
  if changed then G.iter_succ (mark_inconsistent ~cause:node t) node

(* Process one element of the inconsistent set, §4.5. *)
let process_inconsistent t node p =
  match p.kind with
  | Storage -> G.iter_succ (mark_inconsistent ~cause:node t) node
  | Instance inst -> (
    match inst.strategy with
    | Demand ->
      if inst.consistent then begin
        inst.consistent <- false;
        G.iter_succ (mark_inconsistent ~cause:node t) node
      end
    | Eager -> force t node p inst)

let settle_partition t part =
  if not t.settling then begin
    t.settling <- true;
    let finally () = t.settling <- false in
    Fun.protect ~finally @@ fun () ->
      (* Nodes currently on the call stack must not be processed here (an
         eager re-execution would be a false cycle); they stay queued and
         are re-inserted after the drain, so their dirt is handled once
         their own execution completes. *)
      let skipped = ref [] in
      let rec loop () =
        match Heap.pop_min part.queue with
        | None -> ()
        | Some node ->
          let p = G.payload node in
          if p.queued then
            if p.on_stack then skipped := node :: !skipped
            else begin
              Log.debug (fun m -> m "settle: %s#%d" p.name (G.id node));
              emit t (fun () ->
                  Telemetry.Settle_pop { id = G.id node; name = p.name });
              p.queued <- false;
              t.c_steps <- t.c_steps + 1;
              process_inconsistent t node p
            end;
          loop ()
      in
      loop ();
      match !skipped with
      | [] -> part.on_dirty_list <- false
      | l -> List.iter (Heap.insert part.queue) l
  end

let stabilize t =
  let rec drain () =
    match t.dirty_parts with
    | [] -> ()
    | part :: rest ->
      t.dirty_parts <- rest;
      settle_partition t part;
      drain ()
  in
  drain ()

(* Preemptable evaluation (§4.5: "the evaluation routine should be called
   whenever cycles are available … and can be preempted when necessary"):
   process at most [max_steps] inconsistent-set entries and stop. *)
let settle_bounded t ~max_steps =
  if t.settling || max_steps <= 0 then t.dirty_parts = []
  else begin
    t.settling <- true;
    let budget = ref max_steps in
    let finally () = t.settling <- false in
    Fun.protect ~finally (fun () ->
        let rec drain_parts () =
          match t.dirty_parts with
          | [] -> ()
          | part :: rest ->
            let skipped = ref [] in
            let drained = ref false in
            let rec loop () =
              if !budget > 0 then
                match Heap.pop_min part.queue with
                | None -> drained := true
                | Some node ->
                  let p = G.payload node in
                  (if p.queued then
                     if p.on_stack then skipped := node :: !skipped
                     else begin
                       emit t (fun () ->
                           Telemetry.Settle_pop
                             { id = G.id node; name = p.name });
                       p.queued <- false;
                       decr budget;
                       t.c_steps <- t.c_steps + 1;
                       process_inconsistent t node p
                     end);
                  loop ()
            in
            loop ();
            List.iter (Heap.insert part.queue) !skipped;
            if !drained && !skipped = [] then begin
              (* this partition is quiescent; move on *)
              part.on_dirty_list <- false;
              t.dirty_parts <- rest;
              if !budget > 0 then drain_parts ()
            end
        in
        drain_parts ());
    (* quiescent iff no partition still holds queued work *)
    List.for_all
      (fun (part : partition) ->
        let rec clean () =
          match Heap.peek_min part.queue with
          | None -> true
          | Some node ->
            if (G.payload node).queued then false
            else begin
              ignore (Heap.pop_min part.queue);
              clean ()
            end
        in
        clean ())
      t.dirty_parts
  end

let on_call t node =
  let p = G.payload node in
  match p.kind with
  | Storage -> invalid_arg "Engine.on_call: storage node"
  | Instance inst ->
    if p.on_stack then begin
      (* Re-entrant call: a dependency cycle. The caller still observed
         this instance (it will typically turn the exception into an error
         value, as the spreadsheet does), so record the dependency before
         raising — otherwise a cached error value would never be
         invalidated when another cycle participant is edited. *)
      record_dependency t node;
      raise (Cycle p.name)
    end;
    let executed = ref false in
    (* Before trusting the cached value, propagate the pending
       inconsistencies of this node's partition — Algorithm 5's
       "IF SetSize(Inconsistent) > 0 THEN Evaluate". Inside the evaluator
       itself we only force: re-entering settlement is both unnecessary
       (the evaluator is already draining this queue) and guarded.

       The caller receives the value cached by the instance's own (body)
       execution. Writes performed *during* that execution may leave the
       instance re-queued (e.g. the AVL balance rotations); that dirt is
       deliberately left for the next settlement — re-forcing here would
       hand the mutator the value of a *later* re-execution under the
       already-mutated state (for balance: the demoted node's local
       subtree instead of the new root), which is not what the imperative
       program's call returns. *)
    if not t.settling then settle_partition t (partition_of t node);
    if dirty p then begin
      force t node p inst;
      executed := true
    end;
    if (not !executed) && inst.ever_ran then begin
      t.c_hits <- t.c_hits + 1;
      emit t (fun () ->
          Telemetry.Cache_hit { id = G.id node; name = p.name })
    end;
    (* The dependency edge is recorded only now, after any forcing, so the
       consumer is never spuriously invalidated by the fresh value it is
       about to read. *)
    record_dependency t node

let removable _t node =
  let p = G.payload node in
  (match p.kind with Storage -> false | Instance _ -> true)
  && (not p.on_stack) && (not p.queued) && (not p.discarded)
  && G.succ_count node = 0

let discard t node =
  let p = G.payload node in
  if not (removable t node) then invalid_arg "Engine.discard: not removable";
  p.discarded <- true;
  t.c_evictions <- t.c_evictions + 1;
  emit t (fun () -> Telemetry.Evicted { id = G.id node; name = p.name });
  G.remove_node t.graph node

let unchecked t f =
  let saved = t.mask in
  t.mask <- false;
  let finally () = t.mask <- saved in
  Fun.protect ~finally f

let is_executing t = t.stack <> []

let recording t = t.mask && t.stack <> []

let node_name node = (G.payload node).name
let node_id node = G.id node
let succ_count node = G.succ_count node
let pred_count node = G.pred_count node

let stats t =
  {
    executions = t.c_executions;
    first_executions = t.c_first;
    cache_hits = t.c_hits;
    settle_steps = t.c_steps;
    queue_pushes = t.c_pushes;
    unions = t.c_unions;
    out_of_order_edges = t.c_ooo;
    order_fixups = t.c_fixups;
    evictions = t.c_evictions;
  }

let reset_stats t =
  t.c_executions <- 0;
  t.c_first <- 0;
  t.c_hits <- 0;
  t.c_steps <- 0;
  t.c_pushes <- 0;
  t.c_unions <- 0;
  t.c_ooo <- 0;
  t.c_fixups <- 0;
  t.c_evictions <- 0

let graph_stats t = G.stats t.graph

let iter_nodes t f =
  List.iter (fun n -> if not (G.payload n).discarded then f n) t.all_nodes

let node_kind node =
  match (G.payload node).kind with
  | Storage -> `Storage
  | Instance _ -> `Instance

let node_dirty node = dirty (G.payload node)

let iter_node_succ f node = G.iter_succ f node
let iter_node_pred f node = G.iter_pred f node
