module G = Depgraph.Graph
module Heap = Depgraph.Flat_heap
module Uf = Depgraph.Union_find

(* Tracing: `Logs.Src.set_level Engine.log_src (Some Debug)` (or the
   alphonsec --trace flag) streams the engine's decisions — marks,
   (re-)executions, settle pops — the observability counterpart of the
   paper's §10 debugging remark. Disabled, the cost is one branch. *)
let log_src = Logs.Src.create "alphonse.engine" ~doc:"Alphonse engine tracing"

module Log = (val Logs.src_log log_src : Logs.LOG)

(* Without flambda, [Log.debug (fun m -> ...)] allocates its callback
   closure even when tracing is off (the arguments it captures are
   real). Hot sites ask first; one load and branch when disabled. *)
let[@inline] dbg_on () =
  match Logs.Src.level log_src with Some Logs.Debug -> true | _ -> false

type strategy = Demand | Eager

(* How the evaluator picks the next inconsistent element (§4.5: "The
   selection of u from the set is done using an algorithm such as
   [Hud86, Hoo86, Hoo87, AHR+90]"). *)
type scheduling =
  | Creation_order
      (* priorities fixed at node creation (dependencies discovered during
         an execution are ordered before their consumer) *)
  | Topological
      (* creation priorities plus Pearce–Kelly restoration on every
         order-violating edge: the drain order stays topological *)
  | Fifo  (* no priorities: first marked, first processed *)
  | Parallel of { domains : int }
      (* level-synchronized parallel settle on a reusable domain pool:
         the inconsistent set is drained front by front, each front's
         members executing concurrently (§10's "scheduling parallel
         execution"). [domains] counts the caller's lane, so [1] runs
         the same machinery with no spawned domain. *)

exception Cycle of string
exception Poisoned of string
exception Audit_failure of string list
exception Watchdog of string
exception Cancelled of string

(* A cooperative execution budget (the daemon's deadline machinery).
   Checked only at settle-step granularity — right where the fault
   injector's "settle-pop" site sits, before the pop — so tripping it
   leaves the heap intact and every node still queued: the settle is
   abandoned, not corrupted. Inside [transact] the raise rides the undo
   log and the whole batch rolls back. [cancel] is an atomic flag so
   another thread/domain can preempt a running settle. *)
module Budget = struct
  type t = {
    deadline : float option; (* absolute, [Unix.gettimeofday] timeline *)
    step_cap : int option;
    mutable steps : int; (* settle steps consumed while armed *)
    cancel : bool Atomic.t;
  }

  let create ?deadline ?deadline_in ?max_steps () =
    let deadline =
      match (deadline, deadline_in) with
      | Some d, _ -> Some d
      | None, Some dt -> Some (Unix.gettimeofday () +. dt)
      | None, None -> None
    in
    (match max_steps with
    | Some n when n < 1 ->
      invalid_arg "Engine.Budget.create: max_steps must be >= 1"
    | _ -> ());
    { deadline; step_cap = max_steps; steps = 0; cancel = Atomic.make false }

  let cancel b = Atomic.set b.cancel true
  let cancelled b = Atomic.get b.cancel
  let steps_used b = b.steps
  let deadline b = b.deadline
end

(* Node payload: the engine-side bookkeeping of §4.1. [queued] is
   membership in the inconsistent set; [consistent] is the paper's
   consistent(u) flag used by demand instances. *)
type payload = {
  name : string;
  mutable kind : kind;
  mutable queued : bool;
  mutable on_stack : bool;
  mutable discarded : bool;
  mutable seq : int; (* mark order, for Fifo scheduling *)
  mutable part_elt : partition Uf.elt option; (* Some iff partitioning on *)
  mutable writers : nd list;
      (* instances that recorded a tracked *write* to this storage cell
         (§4.2 write dependencies). Level extraction and
         [Inspect.parallel_profile] use this to place a maintained
         cell's readers strictly below its writers, so a
         write-then-read chain through storage counts the writer's
         level — empty for instances. *)
}

and kind =
  | Storage
  | Instance of instance

and instance = {
  strategy : strategy;
  recompute : unit -> bool;
  static_deps : bool;
      (* §6.2: the referenced-argument set is the same on every execution,
         so edges recorded by the first run are reused verbatim — no
         RemovePredEdges, no re-recording *)
  mutable consistent : bool;
  mutable ever_ran : bool;
  (* quarantine bookkeeping: consecutive failed executions, and — once
     the retry budget is exhausted — the poisoning exception *)
  mutable failures : int;
  mutable poison : exn option;
}

and nd = payload G.node

(* A dependency-graph partition (§6.3) and its own inconsistent set. *)
and partition = {
  queue : nd Heap.t;
  mutable on_dirty_list : bool;
}

type node = nd

type frame = { fnode : nd; stamp : int }

(* One undo-log entry of an open transaction. The engine's own log
   points — the settle pop's mark restoration and the demand flip —
   are recorded as typed constructors carrying the node or instance
   index, not closures: a settle step inside a transaction allocates
   two words instead of a closure per pop, and a Budget kill point
   rolls back by dispatching on tags. [U_fun] remains for the typed
   cells of the domain layer ([Var] restores contents it alone can
   type). *)
type undo =
  | U_remark of nd (* rollback: re-mark the node inconsistent *)
  | U_consistent of instance (* rollback: restore consistent = true *)
  | U_fun of (unit -> unit)

(* Undo log of an open transaction: [undos] restore the typed cells
   (newest first), [tmarked] are the nodes newly marked inconsistent
   during the batch, [ran] the instances (re-)executed during it. *)
type txn = {
  mutable undos : undo list;
  mutable tmarked : nd list;
  mutable ran : nd list;
}

type stats = {
  executions : int;
  first_executions : int;
  cache_hits : int;
  settle_steps : int;
  queue_pushes : int;
  unions : int;
  out_of_order_edges : int;
  order_fixups : int;
  evictions : int;
  failures : int;
  retries : int;
  poisonings : int;
  rollbacks : int;
  degradations : int;
  audits : int;
  par_levels : int;
  par_tasks : int;
}

(* Durability journal hooks (the write-ahead layer, [Durable], installs
   one): [on_write] fires for every *changed* tracked write, before the
   engine mutation (the inconsistency mark) it announces; [on_txn]
   fires at transaction boundaries — [`Commit] only after the batch and
   its settle succeeded, [`Abort] after rollback completed. *)
type journal = {
  on_write : name:string -> id:int -> unit;
  on_txn : [ `Begin | `Commit | `Abort ] -> unit;
}

(* Per-domain execution context. Serial engines use exactly one ([ctx0]);
   a parallel settle gives each pool lane its own, holding both the
   call-stack discipline of Algorithm 5 and the write buffers that keep
   every engine structure single-writer between level barriers. *)
type ctx = {
  lane : int; (* 0 = the caller's lane *)
  mutable stack : frame list;
  mutable stack_depth : int;
  mutable mask : bool; (* record dependency edges? false under unchecked *)
  mutable fmask : bool; (* true = fault injection suppressed (repair paths) *)
  (* --- worker write buffers, drained at the level barrier ------------ *)
  mutable t_edges : (nd * nd * int * bool) list;
      (* src, consumer, stamp, is_write — edges recorded by the task in
         flight, newest first; discarded if the task fails (the
         buffered mirror of the serial edge rollback) *)
  mutable b_edges : (nd * nd * int * bool) list list;
      (* completed tasks' edge groups, newest group first, each group
         oldest first *)
  mutable b_writes : nd list; (* changed tracked writes, newest first *)
  mutable b_changed : nd list; (* instances whose value changed *)
  mutable b_failed : (nd * nd list * bool * exn) list;
      (* node, saved preds, reuse_static, error *)
  mutable b_ran : nd list; (* for the open transaction's [ran] list *)
  mutable b_undos : undo list; (* transaction undo entries *)
  mutable b_events : (float * Telemetry.event) list; (* newest first *)
  mutable b_execs : int;
  mutable b_first : int;
  mutable b_hits : int;
}

let fresh_ctx lane =
  {
    lane;
    stack = [];
    stack_depth = 0;
    mask = true;
    fmask = false;
    t_edges = [];
    b_edges = [];
    b_writes = [];
    b_changed = [];
    b_failed = [];
    b_ran = [];
    b_undos = [];
    b_events = [];
    b_execs = 0;
    b_first = 0;
    b_hits = 0;
  }

(* Per-level claim table: who is (re-)executing a node right now. A
   worker that needs a claimed node's value waits on [tcv]; the chain
   walk in [await_claim] turns a circular wait into [Cycle]. *)
type claim = Running of int (* domain id *) | Done

(* State of an active parallel settle. [pm] is the engine lock: workers
   take it (reentrantly) for nested forcing, so all direct structure
   mutation stays single-writer; the coordinator owns every structure
   between levels without locking (no worker is running then). *)
type par = {
  pool : Pool.t;
  lanes : ctx array; (* length = domains; index 0 is the caller's lane *)
  mutable ids : (int * ctx) array; (* domain id -> lane ctx *)
  pm : Mutex.t;
  mutable powner : int; (* domain id holding [pm], -1 if none *)
  mutable pdepth : int;
  tm : Mutex.t; (* claim-table lock; never held while taking [pm] *)
  tcv : Condition.t;
  claims : (int, claim) Hashtbl.t;
  mutable waiting : (int * int) list; (* domain id, awaited node id *)
  pokem : Mutex.t; (* serializes fault-hook calls across domains *)
}

(* Metrics cells, resolved once at [set_metrics] time so the hot sites
   never touch the registry (and its mutex). Each site is one [match]
   on [t.metrics] — the same single-branch disabled-path discipline as
   telemetry — and enabled updates are lock-free atomics, safe from
   pool lanes without the engine lock (which is what makes the counter
   totals exact under a domains=4 settle). *)
type mcells = {
  mreg : Metrics.t;
  m_settles_serial : Metrics.counter;
  m_settles_parallel : Metrics.counter;
  m_settle_steps : Metrics.counter;
  m_settle_seconds : Metrics.histogram;
  m_exec_first : Metrics.counter;
  m_exec_re : Metrics.counter;
  m_hits : Metrics.counter;
  m_cutoffs : Metrics.counter;
  m_quarantines : Metrics.counter;
  m_poisonings : Metrics.counter;
  m_retries : Metrics.counter;
  m_degradations : Metrics.counter;
  m_rollbacks : Metrics.counter;
  m_cancellations : Metrics.counter;
  m_par_levels : Metrics.counter;
  m_par_tasks : Metrics.counter;
  (* per-lane pool cells, resolved at the first parallel settle and
     keyed by lane count (a new domain count re-resolves them) *)
  mutable m_pool : (int * Pool.cells) option;
}

type t = {
  graph : payload G.t;
  heap_leq : nd -> nd -> bool;
  global_part : partition; (* used when partitioning is off *)
  use_partitions : bool;
  strategy0 : strategy;
  scheduling : scheduling;
  max_retries : int;
  max_settle_steps : int option;
  max_stack_depth : int option;
  mutable seq_counter : int;
  ctx0 : ctx; (* the serial / coordinator execution context *)
  exec_serial : int Atomic.t;
      (* atomic: concurrent executions must draw distinct stamps or the
         per-source edge dedup would suppress edges across consumers *)
  mutable settling : bool;
  mutable settle_fuel : int; (* -1 = unlimited; armed per settle session *)
  mutable budget : Budget.t option; (* cooperative deadline/step budget *)
  mutable dirty_parts : partition list;
  mutable all_nodes : nd list;
  mutable telemetry : Telemetry.t option;
  mutable metrics : mcells option;
  (* parallel settle *)
  mutable par : par option; (* Some iff a parallel settle is active *)
  mutable pool : (int * Pool.t) option; (* cached domain pool, by size *)
  (* fault tolerance *)
  mutable quarantined : nd list;
  mutable txn : txn option;
  mutable fault_hook : (string -> unit) option;
  mutable self_audit : bool;
  mutable journal : journal option;
  (* Maintained invariant:
       quick = (par = None) && (txn = None) && (journal = None)
               && (ctx0.stack = [])
     — the regime in which a tracked read is exactly the typed cell
     load and a tracked write to an already-queued cell is exactly the
     store (no recording, no journaling, no undo logging, and a mark
     would be a guarded no-op). [Var] reads this through one accessor
     to skip the whole engine call path; every site that changes one
     of the four inputs refreshes it. *)
  mutable quick : bool;
  (* live node id -> snapshot node id, installed by [import] so
     telemetry, profiles and DOT reports keep the snapshot's stable
     identities across a restore *)
  mutable stable_ids : (int, int) Hashtbl.t option;
  (* counters *)
  mutable c_executions : int;
  mutable c_first : int;
  mutable c_hits : int;
  mutable c_steps : int;
  mutable c_pushes : int;
  mutable c_unions : int;
  mutable c_ooo : int;
  mutable c_fixups : int;
  mutable c_evictions : int;
  mutable c_failures : int;
  mutable c_retries : int;
  mutable c_poisonings : int;
  mutable c_rollbacks : int;
  mutable c_degradations : int;
  mutable c_audits : int;
  mutable c_par_levels : int;
  mutable c_par_tasks : int;
}

let create ?(partitioning = false) ?(default_strategy = Demand)
    ?(scheduling = Creation_order) ?(max_retries = 3) ?max_settle_steps
    ?max_stack_depth ?(self_audit = false) () =
  if max_retries < 1 then invalid_arg "Engine.create: max_retries must be >= 1";
  (match scheduling with
  | Parallel { domains } when domains < 1 ->
    invalid_arg "Engine.create: Parallel domains must be >= 1"
  | _ -> ());
  let leq =
    match scheduling with
    | Creation_order | Topological | Parallel _ -> G.order_leq
    | Fifo -> fun a b -> (G.payload a).seq <= (G.payload b).seq
  in
  {
    graph = G.create ();
    heap_leq = leq;
    global_part = { queue = Heap.create ~leq; on_dirty_list = false };
    use_partitions = partitioning;
    strategy0 = default_strategy;
    scheduling;
    max_retries;
    max_settle_steps;
    max_stack_depth;
    seq_counter = 0;
    ctx0 = fresh_ctx 0;
    exec_serial = Atomic.make 0;
    settling = false;
    settle_fuel = -1;
    budget = None;
    dirty_parts = [];
    all_nodes = [];
    telemetry = None;
    metrics = None;
    par = None;
    pool = None;
    quarantined = [];
    txn = None;
    fault_hook = None;
    journal = None;
    quick = true;
    stable_ids = None;
    self_audit;
    c_executions = 0;
    c_first = 0;
    c_hits = 0;
    c_steps = 0;
    c_pushes = 0;
    c_unions = 0;
    c_ooo = 0;
    c_fixups = 0;
    c_evictions = 0;
    c_failures = 0;
    c_retries = 0;
    c_poisonings = 0;
    c_rollbacks = 0;
    c_degradations = 0;
    c_audits = 0;
    c_par_levels = 0;
    c_par_tasks = 0;
  }

(* Recompute the [quick] invariant from its four inputs; called by
   every site that changes one of them (transaction open/close,
   journal attach, parallel settle begin/end, serial frame push/pop). *)
let refresh_quick t =
  t.quick <-
    (match t.par with
    | Some _ -> false
    | None -> (
      match t.txn with
      | Some _ -> false
      | None -> (
        match t.journal with
        | Some _ -> false
        | None -> ( match t.ctx0.stack with [] -> true | _ :: _ -> false))))

let[@inline] quick t = t.quick

let quick_write_ok t node =
  t.quick
  &&
  let p = G.payload node in
  p.queued && not p.discarded

(* The stable identity of a node for reports: its id in the snapshot
   this engine was restored from, or its live id when it was never
   imported. Telemetry emission, [export] and the DOT/profile readers
   all go through this, so identities agree across a restore. *)
let eid t node =
  match t.stable_ids with
  | None -> G.id node
  | Some tbl -> (
    match Hashtbl.find_opt tbl (G.id node) with
    | Some sid -> sid
    | None -> G.id node)

let stable_id = eid

(* ------------------------------------------------------------------ *)
(* Execution contexts and the engine lock                              *)
(* ------------------------------------------------------------------ *)

let[@inline] self_id () = (Domain.self () :> int)

(* Resolve the calling domain's execution context. Serial engines (and
   any domain the pool does not know) get [ctx0]; during a parallel
   settle each pool lane — including the caller's own domain while it
   drains tasks — resolves to its lane context. *)
let[@inline] ctx t =
  match t.par with
  | None -> t.ctx0
  | Some p ->
    let me = self_id () in
    let ids = p.ids in
    let n = Array.length ids in
    let rec find i =
      if i >= n then t.ctx0
      else
        let did, c = ids.(i) in
        if did = me then c else find (i + 1)
    in
    find 0

(* Reentrant engine lock, held by workers for nested forcing. Reading
   [powner] unlocked is a benign race: only the holder ever stores its
   own id there, so a non-holder can never read its own id. *)
let lock_engine t =
  match t.par with
  | None -> ()
  | Some p ->
    let me = self_id () in
    if p.powner = me then p.pdepth <- p.pdepth + 1
    else begin
      Mutex.lock p.pm;
      p.powner <- me;
      p.pdepth <- 1
    end

let unlock_engine t =
  match t.par with
  | None -> ()
  | Some p ->
    p.pdepth <- p.pdepth - 1;
    if p.pdepth = 0 then begin
      p.powner <- -1;
      Mutex.unlock p.pm
    end

(* Fully release the engine lock (returning the held depth) so the
   caller can block on the claim table without holding up the workers
   that would unblock it; [resume_engine] reacquires at the same
   depth. *)
let suspend_engine t =
  match t.par with
  | Some p when p.powner = self_id () ->
    let d = p.pdepth in
    p.pdepth <- 0;
    p.powner <- -1;
    Mutex.unlock p.pm;
    d
  | _ -> 0

let resume_engine t d =
  if d > 0 then
    match t.par with
    | Some p ->
      Mutex.lock p.pm;
      p.powner <- self_id ();
      p.pdepth <- d
    | None -> ()

(* Is the calling context required to buffer its engine mutations?
   True only for a pool lane running *outside* the engine lock; the
   serial engine, the coordinator between levels, and a worker that
   took the lock for nested forcing all mutate directly. *)
let[@inline] buffered t c =
  c != t.ctx0
  && match t.par with Some p -> p.powner <> self_id () | None -> false

(* Run [f] under the engine lock (a no-op when no parallel settle is
   active). Domain-layer code uses this around its own shared-structure
   updates (memo-table insertions, lazy node creation). *)
let critical t f =
  match t.par with
  | None -> f ()
  | Some _ ->
    lock_engine t;
    Fun.protect ~finally:(fun () -> unlock_engine t) f

(* Telemetry: every instrumentation site is one [match] on this field —
   the branch-predictable no-op path when no recorder is attached. The
   event is built lazily so the disabled path allocates nothing. Pool
   lanes buffer (with their own timestamps) and the barrier replays
   each lane's stream contiguously, so the ring orders by sequence even
   though per-domain timestamps interleave. *)
let[@inline] emit t ev =
  match t.telemetry with
  | None -> ()
  | Some tm ->
    let c = ctx t in
    if c == t.ctx0 then Telemetry.emit tm (ev ())
    else c.b_events <- (Telemetry.now tm, ev ()) :: c.b_events

(* Hot sites ask before building the event callback: without flambda
   the [fun () -> ...] argument to [emit] is a real allocation even on
   the disabled path. *)
let[@inline] tele_on t =
  match t.telemetry with None -> false | Some _ -> true

let set_telemetry t tm = t.telemetry <- tm
let telemetry t = t.telemetry

let set_metrics t = function
  | None -> t.metrics <- None
  | Some reg ->
    let c name help = Metrics.counter reg name ~help in
    t.metrics <-
      Some
        {
          mreg = reg;
          m_settles_serial =
            Metrics.counter reg "settles_total" ~labels:[ ("mode", "serial") ]
              ~help:"settle sessions";
          m_settles_parallel =
            Metrics.counter reg "settles_total"
              ~labels:[ ("mode", "parallel") ] ~help:"settle sessions";
          m_settle_steps = c "settle_steps_total" "inconsistent-set pops";
          m_settle_seconds =
            Metrics.histogram reg "settle_seconds"
              ~help:"settle session duration";
          m_exec_first =
            Metrics.counter reg "executions_total"
              ~labels:[ ("kind", "first") ] ~help:"instance executions";
          m_exec_re =
            Metrics.counter reg "executions_total" ~labels:[ ("kind", "re") ]
              ~help:"instance executions";
          m_hits = c "cache_hits_total" "calls answered from consistent cache";
          m_cutoffs =
            c "cutoffs_total" "re-executions that left the value unchanged";
          m_quarantines = c "quarantines_total" "executions that raised";
          m_poisonings = c "poisonings_total" "retry budgets exhausted";
          m_retries = c "retries_total" "quarantined instances re-marked";
          m_degradations =
            c "degradations_total" "watchdog degradations to exhaustive";
          m_rollbacks = c "rollbacks_total" "transactions rolled back";
          m_cancellations =
            c "cancellations_total"
              "settles aborted by a budget (deadline, step cap or cancel)";
          m_par_levels = c "parallel_levels_total" "parallel level fronts";
          m_par_tasks =
            c "parallel_tasks_total" "eager executions dispatched to the pool";
          m_pool = None;
        }

let metrics t = match t.metrics with None -> None | Some m -> Some m.mreg

(* Budget enforcement. [budget_check] runs at the head of every settle
   step, *before* the inconsistent-set pop: a raise here leaves the
   pending node queued and the heap untouched, so the settle can be
   resumed (next stabilize) or rolled back (enclosing [transact])
   without losing propagation. Cheap when unarmed: one [match]. The
   deadline comparison is last — [Unix.gettimeofday] is the only
   syscall on this path. *)
let[@inline] budget_check t =
  match t.budget with
  | None -> ()
  | Some b ->
    let trip reason =
      (match t.metrics with
      | None -> ()
      | Some m -> Metrics.inc m.m_cancellations);
      Log.debug (fun m -> m "budget tripped: %s" reason);
      raise (Cancelled reason)
    in
    if Atomic.get b.Budget.cancel then trip "cancelled";
    (match b.Budget.step_cap with
    | Some cap when b.Budget.steps >= cap ->
      trip (Printf.sprintf "settle-step budget %d exhausted" cap)
    | _ -> ());
    (match b.Budget.deadline with
    | Some d when Unix.gettimeofday () > d -> trip "deadline exceeded"
    | _ -> ())

let[@inline] budget_step t =
  match t.budget with
  | None -> ()
  | Some b -> b.Budget.steps <- b.Budget.steps + 1

let set_budget t b = t.budget <- b
let budget t = t.budget

let with_budget t b f =
  let saved = t.budget in
  t.budget <- Some b;
  Fun.protect ~finally:(fun () -> t.budget <- saved) f

let default_strategy t = t.strategy0
let partitioning t = t.use_partitions
let scheduling t = t.scheduling
let max_retries t = t.max_retries

(* ------------------------------------------------------------------ *)
(* Fault injection hooks                                               *)
(* ------------------------------------------------------------------ *)

(* Every engine decision point calls [poke] with a site label; an
   installed hook may raise there, which models a fault (allocation
   failure, cancellation, a bug in engine-adjacent code). Sites are
   placed only where an exception leaves the engine coherent — before
   the site's state mutation, never between a committed cache update
   and the completion of its successor marking (a fault there would
   lose invalidations undetectably: the retry would see changed=false). *)
let fault_sites =
  [ "exec-begin"; "mark"; "edge"; "settle-pop"; "clear-preds"; "evict" ]

(* Injector hooks keep private mutable state (counters, one-shot
   flags), so during a parallel settle every call is serialized under
   [pokem] — total poke counts per level stay deterministic even
   though worker interleaving is not. *)
let[@inline] poke t site =
  match t.fault_hook with
  | None -> ()
  | Some f -> (
    if not (ctx t).fmask then
      let call () =
        match t.par with
        | None -> f site
        | Some p ->
          Mutex.lock p.pokem;
          Fun.protect ~finally:(fun () -> Mutex.unlock p.pokem) (fun () ->
              f site)
      in
      try call ()
      with e ->
        emit t (fun () -> Telemetry.Fault_injected { site });
        raise e)

let set_fault_hook t hook = t.fault_hook <- hook
let fault_hook t = t.fault_hook

(* Run [f] with fault injection suppressed — the repair paths use this so
   that redoing an interrupted idempotent step cannot itself be faulted
   into an incoherent state. Per-context: one lane's repair does not
   mask another lane's injection. *)
let masked t f =
  let c = ctx t in
  let saved = c.fmask in
  c.fmask <- true;
  let finally () = c.fmask <- saved in
  Fun.protect ~finally f

let set_self_audit t b = t.self_audit <- b
let self_audit t = t.self_audit

let set_journal t j =
  t.journal <- j;
  refresh_quick t

let journal t = t.journal

let jwrite t node =
  match t.journal with
  | None -> ()
  | Some j -> j.on_write ~name:(G.payload node).name ~id:(G.id node)

let jtxn t ev = match t.journal with None -> () | Some j -> j.on_txn ev

let[@inline] in_transaction t =
  match t.txn with None -> false | Some _ -> true

let push_undo t tx u =
  let c = ctx t in
  if buffered t c then c.b_undos <- u :: c.b_undos
  else tx.undos <- u :: tx.undos

let txn_log t undo =
  match t.txn with None -> () | Some tx -> push_undo t tx (U_fun undo)

(* Typed engine log points: the constructor is only allocated once a
   transaction is known to be open. *)
let[@inline] log_remark t node =
  match t.txn with None -> () | Some tx -> push_undo t tx (U_remark node)

let[@inline] log_consistent t inst =
  match t.txn with None -> () | Some tx -> push_undo t tx (U_consistent inst)

let partition_of t node =
  if not t.use_partitions then t.global_part
  else
    match (G.payload node).part_elt with
    | Some e -> Uf.payload e
    | None -> assert false

(* [cause] is provenance for telemetry only: the node whose processing
   propagated this mark, [None] for an external mutator write. *)
let mark_inconsistent ?cause t node =
  let p = G.payload node in
  if (not p.queued) && not p.discarded then begin
    (* before any mutation: a fault here is a clean no-op, and callers
       that must not lose the mark redo it under [masked] *)
    poke t "mark";
    if dbg_on () then
      Log.debug (fun m -> m "mark inconsistent: %s#%d" p.name (G.id node));
    if tele_on t then
      emit t (fun () ->
          Telemetry.Marked
            {
              id = eid t node;
              name = p.name;
              cause = Option.map (eid t) cause;
            });
    p.queued <- true;
    t.seq_counter <- t.seq_counter + 1;
    p.seq <- t.seq_counter;
    t.c_pushes <- t.c_pushes + 1;
    (match t.txn with Some tx -> tx.tmarked <- node :: tx.tmarked | None -> ());
    let part = partition_of t node in
    Heap.insert part.queue node;
    if not part.on_dirty_list then begin
      part.on_dirty_list <- true;
      t.dirty_parts <- part :: t.dirty_parts
    end
  end

(* Mark every successor of [node]. Marking is idempotent (guarded by
   [queued]), so if a fault interrupts the sweep we redo the whole sweep
   with injection suppressed before re-raising — propagation is never
   left partial. *)
let mark_succs ?cause t node =
  try G.iter_succ (mark_inconsistent ?cause t) node
  with e ->
    masked t (fun () -> G.iter_succ (mark_inconsistent ?cause t) node);
    raise e

(* Node creation: priorities approximate topological order — a node created
   while a consumer executes is one of its dependencies, so it is ordered
   just before the consumer; top-level creations append at the end. *)
let new_node t payload =
  let node =
    match (ctx t).stack with
    | { fnode; _ } :: _ -> G.add_node_before t.graph ~order_before:fnode payload
    | [] -> G.add_node t.graph ~order_after:None payload
  in
  if t.use_partitions then begin
    let part = { queue = Heap.create ~leq:t.heap_leq; on_dirty_list = false } in
    (G.payload node).part_elt <- Some (Uf.make part)
  end;
  t.all_nodes <- node :: t.all_nodes;
  node

let new_storage t ~name =
  let node =
    new_node t
      { name; kind = Storage; queued = false; on_stack = false;
        discarded = false; seq = 0; part_elt = None; writers = [] }
  in
  emit t (fun () -> Telemetry.Storage_created { id = eid t node; name });
  node

let new_instance t ~name ~strategy ?(static_deps = false) ~recompute () =
  let node =
    new_node t
    {
      name;
      kind =
        Instance
          { strategy; recompute; static_deps; consistent = false;
            ever_ran = false; failures = 0; poison = None };
      queued = false;
      on_stack = false;
      discarded = false;
      seq = 0;
      part_elt = None;
      writers = [];
    }
  in
  emit t (fun () -> Telemetry.Instance_created { id = eid t node; name });
  node

(* Merge the partitions of the two endpoints of a new edge (§6.3 dynamic
   refinement). Their inconsistent sets are melded in O(1). *)
let link_partitions t src dst =
  if t.use_partitions then
    match ((G.payload src).part_elt, (G.payload dst).part_elt) with
    | Some a, Some b ->
      if not (Uf.same a b) then begin
        t.c_unions <- t.c_unions + 1;
        emit t (fun () -> Telemetry.Union { a = eid t src; b = eid t dst });
        let merge keep absorbed =
          Heap.meld keep.queue absorbed.queue;
          if absorbed.on_dirty_list && not keep.on_dirty_list then begin
            keep.on_dirty_list <- true;
            t.dirty_parts <- keep :: t.dirty_parts
          end;
          keep
        in
        ignore (Uf.union ~merge a b)
      end
    | _ -> assert false

(* Remember that [consumer] writes storage cell [src] (§4.2): level
   extraction places [src]'s other readers strictly below [consumer]. *)
let note_writer src consumer =
  let p = G.payload src in
  match p.kind with
  | Storage -> (
    (* most writes are the same consumer re-writing the cell it wrote
       last time — catch that with a head probe before the O(n) scan *)
    match p.writers with
    | w :: _ when w == consumer -> ()
    | ws ->
      if not (List.memq consumer ws) then p.writers <- consumer :: ws)
  | Instance _ -> ()

(* Record a dependency edge src → consumer for the executing instance, if
   any and if recording is not suppressed by [unchecked]. A pool lane
   outside the engine lock stages the edge in its task buffer (applied
   at the level barrier, or dropped with the failed task — the buffered
   mirror of the serial edge rollback). *)
let record_dependency ?(is_write = false) t src =
  let c = ctx t in
  match c.stack with
  | [] -> ()
  | { fnode = consumer; stamp } :: _ ->
    if c.mask then
      if buffered t c then begin
        (* the poke and the telemetry event happen at record time (so
           fault counts are schedule-independent); the graph mutation is
           deferred to the barrier *)
        poke t "edge";
        if tele_on t then
          emit t (fun () ->
              Telemetry.Edge_added { src = eid t src; dst = eid t consumer });
        c.t_edges <- (src, consumer, stamp, is_write) :: c.t_edges
      end
      else begin
        (* before any mutation: a fault here aborts the consumer's
           execution, whose failure handler restores its edge set *)
        poke t "edge";
        if G.order_lt consumer src then begin
          t.c_ooo <- t.c_ooo + 1;
          (* under Topological scheduling, repair the drain order so this
             dependency is processed before its consumer *)
          (match t.scheduling with
          | Topological -> (
            match G.restore_topological_order t.graph ~src ~dst:consumer with
            | `Reordered _ -> t.c_fixups <- t.c_fixups + 1
            | `Already_ordered | `Cycle -> ())
          | Creation_order | Fifo | Parallel _ -> ())
        end;
        G.add_edge ~stamp ~src ~dst:consumer;
        if is_write then note_writer src consumer;
        if tele_on t then
          emit t (fun () ->
              Telemetry.Edge_added { src = eid t src; dst = eid t consumer });
        link_partitions t src consumer
      end

let record_read t node = record_dependency t node

let record_write t node ~changed =
  let c = ctx t in
  if buffered t c then begin
    (* Journal append and inconsistency mark are deferred to the level
       barrier (the per-level commit point): the lane only stages the
       intent. The write dependency edge is staged like any other. *)
    match record_dependency ~is_write:true t node with
    | () -> if changed then c.b_writes <- node :: c.b_writes
    | exception e ->
      if changed then c.b_writes <- node :: c.b_writes;
      raise e
  end
  else
    match record_dependency ~is_write:true t node with
    | () -> (
      if changed then begin
        (* Write-ahead: the journal entry for this write is appended
           before the engine mutation (the inconsistency mark). If
           journaling itself raises — a disk fault, a simulated kill —
           the mark is still performed under [masked] so in-memory state
           stays coherent before the failure surfaces; the journal then
           merely under-reports, which recovery's verified replay treats
           as a (safe) verification miss, never a wrong value. *)
        (match jwrite t node with
        | () -> ()
        | exception e ->
          masked t (fun () -> mark_inconsistent t node);
          raise e);
        try mark_inconsistent t node
        with e ->
          (* the typed cell already holds the new value: losing the mark
             would leave dependents permanently stale, so redo it with
             injection suppressed before surfacing the fault *)
          masked t (fun () -> mark_inconsistent t node);
          raise e
      end)
    | exception e ->
      if changed then begin
        (try jwrite t node with _ -> ());
        masked t (fun () -> mark_inconsistent t node)
      end;
      raise e

let dirty p =
  match p.kind with
  | Storage -> p.queued
  | Instance inst -> p.queued || not inst.consistent

(* ------------------------------------------------------------------ *)
(* Quarantine                                                          *)
(* ------------------------------------------------------------------ *)

(* Failure accounting for an instance whose execution raised. Structural
   exceptions — [Cycle], a dependency's [Poisoned], [Audit_failure], a
   [Watchdog] depth violation — are reported to the caller but never
   consume the retry budget: they are deterministic properties of the
   graph (or its configured limits), not transient faults. In particular
   a nested frame's [Watchdog] unwinding through its callers must not
   charge them — retrying can never shrink the recursion. *)
let record_failure t node p (inst : instance) e =
  match e with
  | Cycle _ | Poisoned _ | Audit_failure _ | Watchdog _ | Cancelled _ -> ()
  | _ ->
    t.c_failures <- t.c_failures + 1;
    inst.failures <- inst.failures + 1;
    if inst.failures >= t.max_retries then begin
      inst.poison <- Some e;
      t.c_poisonings <- t.c_poisonings + 1;
      (match t.metrics with
      | None -> ()
      | Some m -> Metrics.inc m.m_poisonings);
      t.quarantined <- List.filter (fun n -> not (n == node)) t.quarantined;
      Log.debug (fun m ->
          m "poisoned after %d failures: %s#%d" inst.failures p.name
            (G.id node));
      emit t (fun () ->
          Telemetry.Instance_poisoned
            { id = eid t node; name = p.name; error = Printexc.to_string e })
    end
    else begin
      if not (List.memq node t.quarantined) then
        t.quarantined <- node :: t.quarantined;
      (match t.metrics with
      | None -> ()
      | Some m -> Metrics.inc m.m_quarantines);
      emit t (fun () ->
          Telemetry.Quarantined
            {
              id = eid t node;
              name = p.name;
              attempt = inst.failures;
              error = Printexc.to_string e;
            })
    end

(* Retry-on-next-settle: re-mark every quarantined (non-poisoned)
   instance so the coming propagation re-executes it. Bounded: each
   failed retry increments [failures] until the instance is poisoned and
   leaves the quarantine list. *)
let requeue_quarantined t =
  match t.quarantined with
  | [] -> ()
  | q ->
    t.quarantined <- [];
    List.iter
      (fun node ->
        let p = G.payload node in
        match p.kind with
        | Instance inst when inst.poison = None && not p.discarded ->
          t.c_retries <- t.c_retries + 1;
          (match t.metrics with
          | None -> ()
          | Some m -> Metrics.inc m.m_retries);
          emit t (fun () ->
              Telemetry.Retried
                { id = eid t node; name = p.name; attempt = inst.failures });
          masked t (fun () -> mark_inconsistent t node)
        | _ -> ())
      q

let quarantined t = List.filter (fun n -> not (G.payload n).discarded) t.quarantined

let poison_error _t node =
  match (G.payload node).kind with
  | Instance inst -> inst.poison
  | Storage -> None

let poisoned t node = poison_error t node <> None

let failure_count _t node =
  match (G.payload node).kind with
  | Instance inst -> inst.failures
  | Storage -> 0

(* ------------------------------------------------------------------ *)
(* Execution                                                           *)
(* ------------------------------------------------------------------ *)

let next_stamp t = Atomic.fetch_and_add t.exec_serial 1 + 1

(* Re-execute an incremental procedure instance under the call-stack
   discipline of Algorithm 5: drop the dependencies recorded by the
   previous execution, push a fresh frame, run, pop. Returns the quiescence
   test: did the cached value change?

   Exception safety: any raise out of the body (user exception, [Cycle],
   an injected fault) pops the frame, discards the partially-recorded
   edges of the failed run, restores the edge set of the last successful
   one, re-marks the instance inconsistent and records the failure —
   the engine stays fully usable and a later call retries.

   Runs on the calling context's own stack: during a parallel settle a
   worker reaches here only under the engine lock (nested forcing), so
   the direct graph mutations below stay single-writer. *)
(* Drop whatever edge set a failed run recorded and reinstate the one of
   the last successful execution (sources evicted meanwhile are skipped),
   under a fresh stamp for dedup. [saved = None] means the pre-execution
   clear never ran — the intact edge set must be left alone. Top-level
   (not a closure inside [run_instance]) so the happy path allocates no
   environment for a handler it never runs. *)
let restore_saved_preds t node saved =
  match saved with
  | None -> ()
  | Some preds ->
    masked t (fun () ->
        G.clear_preds t.graph node;
        let st = next_stamp t in
        List.iter
          (fun src ->
            if not (G.payload src).discarded then
              G.add_edge ~stamp:st ~src ~dst:node)
          preds)

(* Pop the frame pushed by [run_instance] — on success and on unwind. *)
let pop_frame t c p saved_mask =
  c.mask <- saved_mask;
  p.on_stack <- false;
  c.stack_depth <- c.stack_depth - 1;
  c.stack <- List.tl c.stack;
  refresh_quick t

let run_instance t node p inst =
  let c = ctx t in
  if p.on_stack then raise (Cycle p.name);
  (match inst.poison with
  | Some _ -> raise (Poisoned p.name)
  | None -> ());
  (* §6.2 static subgraphs: a re-execution of a static-R(p) instance keeps
     the dependency edges of its first execution and records none — its
     frame runs with edge recording masked (nested frames restore it). *)
  let reuse_static = inst.static_deps && inst.ever_ran in
  (* The predecessor set is snapshotted by the same traversal that
     removes it (the paper's RemovePredEdges is destructive), so a
     failed execution can put it back — see [restore_saved_preds]. *)
  let saved_preds = ref None in
  (* Pre-body faults — the depth watchdog, an injected "clear-preds"
     fault — must take the same failure path as a raise from the body: a
     settle loop has already popped this node and cleared [queued], so a
     raise that bypassed the handler would leave a previously-consistent
     eager instance unqueued with [consistent] still set, silently losing
     its pending invalidation. No [Exec_begin] has been emitted yet, so
     the handler emits no [Exec_end] — traces stay balanced. *)
  (try
     (match t.max_stack_depth with
     | Some lim when c.stack_depth >= lim ->
       raise
         (Watchdog
            (Fmt.str "call-stack depth limit %d reached at %s#%d" lim p.name
               (G.id node)))
     | _ -> ());
     if not reuse_static then begin
       poke t "clear-preds";
       if inst.ever_ran && tele_on t then
         emit t (fun () ->
             Telemetry.Preds_cleared { id = eid t node; name = p.name });
       saved_preds := Some (G.clear_preds_collect t.graph node)
     end
   with e ->
     restore_saved_preds t node !saved_preds;
     inst.consistent <- false;
     record_failure t node p inst e;
     raise e);
  let stamp = next_stamp t in
  c.stack <- { fnode = node; stamp } :: c.stack;
  t.quick <- false;
  c.stack_depth <- c.stack_depth + 1;
  p.on_stack <- true;
  p.queued <- false;
  inst.consistent <- true;
  let saved_mask = c.mask in
  c.mask <- not reuse_static;
  (match t.txn with
  | Some tx -> if buffered t c then c.b_ran <- node :: c.b_ran
    else tx.ran <- node :: tx.ran
  | None -> ());
  if tele_on t then
    emit t (fun () ->
        Telemetry.Exec_begin
          { id = eid t node; name = p.name; first = not inst.ever_ran });
  let changed =
    try
      poke t "exec-begin";
      inst.recompute ()
    with e ->
      pop_frame t c p saved_mask;
      (* unwind: drop the edges recorded by the failed run and restore
         those of the last successful one *)
      restore_saved_preds t node !saved_preds;
      (* leave the instance inconsistent so a later call retries *)
      inst.consistent <- false;
      record_failure t node p inst e;
      emit t (fun () ->
          Telemetry.Exec_end
            { id = eid t node; name = p.name; changed = false; ok = false });
      raise e
  in
  pop_frame t c p saved_mask;
  inst.failures <- 0;
  if tele_on t then
    emit t (fun () ->
        Telemetry.Exec_end
          { id = eid t node; name = p.name; changed; ok = true });
  (match t.metrics with
  | None -> ()
  | Some m ->
    Metrics.inc (if inst.ever_ran then m.m_exec_re else m.m_exec_first);
    (* an early cutoff: the re-execution produced the same value, so
       propagation stops here (quiescence, paper §4.5) *)
    if inst.ever_ran && not changed then Metrics.inc m.m_cutoffs);
  if buffered t c then c.b_execs <- c.b_execs + 1
  else t.c_executions <- t.c_executions + 1;
  if dbg_on () then
    Log.debug (fun m ->
        m "%s: %s#%d (changed=%b)"
          (if inst.ever_ran then "re-executed" else "first execution")
          p.name (G.id node) changed);
  if not inst.ever_ran then begin
    if buffered t c then c.b_first <- c.b_first + 1
    else t.c_first <- t.c_first + 1;
    inst.ever_ran <- true
  end;
  changed

(* Force a dirty instance to currency, notifying dependents on change.
   A [Poisoned] dependency still notifies dependents (their reads must
   surface the typed error) before the exception propagates. *)
let force t node p inst =
  match run_instance t node p inst with
  | changed -> if changed then mark_succs ~cause:node t node
  | exception (Poisoned _ as e) ->
    masked t (fun () -> G.iter_succ (mark_inconsistent ~cause:node t) node);
    raise e

(* Process one element of the inconsistent set, §4.5. *)
let process_inconsistent t node p =
  match p.kind with
  | Storage -> mark_succs ~cause:node t node
  | Instance inst -> (
    match inst.strategy with
    | Demand ->
      if inst.consistent then begin
        (* propagation state is engine state: inside a transaction the
           flip must be undoable, or a rollback after a cancelled settle
           leaves this instance already-inconsistent — a later settle
           would then skip the flip and never notify its dependents *)
        log_consistent t inst;
        inst.consistent <- false;
        mark_succs ~cause:node t node
      end
    | Eager -> force t node p inst)

(* ------------------------------------------------------------------ *)
(* Invariant auditor                                                   *)
(* ------------------------------------------------------------------ *)

(* Checks (on demand, or after every settle step under [self_audit])
   that the engine's metadata is coherent; see the mli for the list.
   Set-membership checks are skipped while a settle is draining (the
   drain temporarily holds popped-but-queued skipped nodes outside the
   heaps by design). [idle] is false for the per-step audits that run
   from inside settlement, where the settling flag is legitimately set;
   every public entry point passes true — a user-initiated audit that
   sees the settling flag with an empty call stack has found a leak.
   Audits always read the serial/coordinator context: the parallel
   settle only audits at level barriers, where every lane stack is
   empty. *)
let audit_errors_run t ~idle =
  t.c_audits <- t.c_audits + 1;
  let errs = ref [] in
  let err fmt = Fmt.kstr (fun s -> errs := s :: !errs) fmt in
  (try G.validate t.graph
   with Failure m | Invalid_argument m -> err "graph: %s" m);
  let stack_ids = List.map (fun f -> G.id f.fnode) t.ctx0.stack in
  if List.length t.ctx0.stack <> t.ctx0.stack_depth then
    err "stack depth counter %d disagrees with %d frames" t.ctx0.stack_depth
      (List.length t.ctx0.stack);
  List.iter
    (fun f ->
      let p = G.payload f.fnode in
      if p.discarded then err "discarded node %s#%d on stack" p.name (G.id f.fnode);
      if not p.on_stack then
        err "stack frame %s#%d not flagged on_stack" p.name (G.id f.fnode))
    t.ctx0.stack;
  (* partition heap membership, computed once per distinct partition *)
  let heap_members : (partition * (int, unit) Hashtbl.t) list ref = ref [] in
  let members part =
    match List.find_opt (fun (pt, _) -> pt == part) !heap_members with
    | Some (_, tbl) -> tbl
    | None ->
      let tbl = Hashtbl.create 16 in
      List.iter (fun n -> Hashtbl.replace tbl (G.id n) ()) (Heap.to_list part.queue);
      heap_members := (part, tbl) :: !heap_members;
      tbl
  in
  List.iter
    (fun node ->
      let p = G.payload node in
      if p.discarded then begin
        if p.queued then err "discarded node %s#%d still queued" p.name (G.id node);
        if p.on_stack then
          err "discarded node %s#%d flagged on_stack" p.name (G.id node)
      end
      else begin
        if p.on_stack && not (List.mem (G.id node) stack_ids) then
          err "%s#%d flagged on_stack without a stack frame" p.name (G.id node);
        (match p.kind with
        | Instance inst ->
          if inst.poison <> None && inst.consistent then
            err "poisoned instance %s#%d flagged consistent" p.name (G.id node)
        | Storage -> ());
        if p.queued && not t.settling then begin
          let part = partition_of t node in
          if not (Hashtbl.mem (members part) (G.id node)) then
            err "queued node %s#%d missing from its inconsistent set" p.name
              (G.id node);
          if not part.on_dirty_list then
            err "queued node %s#%d in a partition not flagged dirty" p.name
              (G.id node);
          if not (List.memq part t.dirty_parts) then
            err "queued node %s#%d in a partition missing from the dirty list"
              p.name (G.id node)
        end
      end)
    t.all_nodes;
  if idle then begin
    if t.ctx0.stack = [] && (not t.settling) && t.txn = None && not t.ctx0.mask
    then err "edge-recording mask left disabled outside any execution";
    if t.ctx0.stack = [] && t.settling then
      err "settling flag left set outside any settle"
  end;
  let errors = List.rev !errs in
  emit t (fun () ->
      Telemetry.Audit_run { ok = errors = []; errors = List.length errors });
  errors

let audit_errors t = audit_errors_run t ~idle:true

let audit t =
  match audit_errors t with [] -> () | errs -> raise (Audit_failure errs)

(* the per-step form used by [self_audit] from inside settlement *)
let audit_step t =
  match audit_errors_run t ~idle:false with
  | [] -> ()
  | errs -> raise (Audit_failure errs)

(* ------------------------------------------------------------------ *)
(* Settlement (serial)                                                 *)
(* ------------------------------------------------------------------ *)

(* Give up incrementality rather than spin: forget all pending marks and
   flag every instance inconsistent, so each next demand recomputes from
   scratch — the exhaustive semantics, guaranteed to terminate. *)
let degrade_to_exhaustive t =
  t.c_degradations <- t.c_degradations + 1;
  (match t.metrics with
  | None -> ()
  | Some m -> Metrics.inc m.m_degradations);
  emit t (fun () ->
      Telemetry.Degraded
        { steps = (match t.max_settle_steps with Some n -> n | None -> 0) });
  Log.debug (fun m -> m "watchdog: degrading to exhaustive recomputation");
  List.iter
    (fun node ->
      let p = G.payload node in
      if not p.discarded then begin
        p.queued <- false;
        match p.kind with
        | Instance inst -> inst.consistent <- false
        | Storage -> ()
      end;
      if t.use_partitions then
        match p.part_elt with
        | Some e ->
          let part = Uf.payload e in
          Heap.clear part.queue;
          part.on_dirty_list <- false
        | None -> ())
    t.all_nodes;
  Heap.clear t.global_part.queue;
  t.global_part.on_dirty_list <- false;
  List.iter (fun part -> part.on_dirty_list <- false) t.dirty_parts;
  t.dirty_parts <- [];
  t.quarantined <- []

(* Process one settle pop, quarantining instance failures: settlement is
   total — an exception from one instance must not abort propagation of
   the others. Audit failures pass through. Structural failures ([Cycle],
   [Poisoned], [Watchdog]) are never quarantined — retrying cannot fix a
   property of the graph — so a structurally-failed eager instance is
   left inconsistent but unqueued: it degrades to demand recomputation
   (the next read re-attempts it) instead of being retried by settles. *)
let process_guarded t node p =
  match process_inconsistent t node p with
  | () -> ()
  | exception (Audit_failure _ as e) -> raise e
  | exception (Cancelled _ as e) ->
    (* a budget trip aborts the whole settle, it is not an instance
       failure to quarantine — the node was re-marked inconsistent by
       the failure path, so nothing is lost *)
    raise e
  | exception e ->
    Log.debug (fun m ->
        m "settle: %s#%d failed (%s); %s" p.name (G.id node)
          (Printexc.to_string e)
          (if List.memq node t.quarantined then
             "quarantined (retried at the next settle)"
           else if poisoned t node then "poisoned"
           else "structural failure: degrades to demand recomputation"))

(* The drain loop, as a top-level recursion so entering a settle builds
   no closures — [settle_partition] runs on every incremental call that
   finds its partition dirty, which the AVL bench (E4) does tens of
   times per insert. [skipped] accumulates nodes currently on the call
   stack, which must not be processed here (an eager re-execution would
   be a false cycle); they stay queued and are re-inserted after the
   drain — also when the drain raises. *)
let rec settle_drain t part skipped =
  (* poked (and budget-checked) before the pop so a fault or a
     cancellation leaves the heap intact *)
  poke t "settle-pop";
  budget_check t;
  if t.settle_fuel = 0 then degrade_to_exhaustive t
  else
    match Heap.pop_min part.queue with
    | None -> ()
    | Some node ->
      let p = G.payload node in
      if p.queued then
        if p.on_stack then skipped := node :: !skipped
        else begin
          if dbg_on () then
            Log.debug (fun m -> m "settle: %s#%d" p.name (G.id node));
          if tele_on t then
            emit t (fun () ->
                Telemetry.Settle_pop { id = eid t node; name = p.name });
          p.queued <- false;
          (* the pop consumes the mark: inside a transaction, log
             its restoration so a rollback cannot strand a node
             that was queued before the batch began *)
          log_remark t node;
          budget_step t;
          t.c_steps <- t.c_steps + 1;
          (match t.metrics with
          | None -> ()
          | Some m -> Metrics.inc m.m_settle_steps);
          if t.settle_fuel > 0 then t.settle_fuel <- t.settle_fuel - 1;
          process_guarded t node p;
          if t.self_audit then audit_step t
        end;
      settle_drain t part skipped

let settle_partition t part =
  if not t.settling then begin
    t.settling <- true;
    t.settle_fuel <- (match t.max_settle_steps with Some n -> n | None -> -1);
    let skipped = ref [] in
    match settle_drain t part skipped with
    | () ->
      (* quiescence is judged before the skipped re-inserts: a partition
         whose on-stack nodes went back into its heap is not quiescent
         and keeps its dirty flag *)
      if !skipped = [] then part.on_dirty_list <- false;
      List.iter (Heap.insert part.queue) !skipped;
      t.settling <- false
    | exception e ->
      let bt = Printexc.get_raw_backtrace () in
      List.iter (Heap.insert part.queue) !skipped;
      t.settling <- false;
      Printexc.raise_with_backtrace e bt
  end

let stabilize_serial_body t =
  requeue_quarantined t;
  (* A partition is popped off the dirty list only after its settle
     completed: if the settle raises, the partition keeps its place and
     the next stabilize resumes it (the seed dropped it, permanently
     losing eager propagation after a fault). Partitions that could not
     fully drain (nodes on the call stack) are deferred, not dropped. *)
  let deferred = ref [] in
  let finally () =
    if !deferred <> [] then t.dirty_parts <- t.dirty_parts @ List.rev !deferred
  in
  Fun.protect ~finally @@ fun () ->
    let rec drain () =
      match t.dirty_parts with
      | [] -> ()
      | part :: rest ->
        t.dirty_parts <- rest;
        (try settle_partition t part
         with e ->
           (* the partition still holds queued work: keep its place so
              the next stabilize resumes it *)
           if part.on_dirty_list then t.dirty_parts <- part :: t.dirty_parts;
           raise e);
        if part.on_dirty_list then deferred := part :: !deferred;
        drain ()
    in
    drain ()

(* Settle sessions with actual work are counted and timed; the common
   already-quiescent stabilize (every [Var.set] triggers one) is not a
   session and stays off the histogram. *)
let[@inline] has_work t =
  match t.dirty_parts with
  | _ :: _ -> true
  | [] -> ( match t.quarantined with _ :: _ -> true | [] -> false)

let stabilize_serial t =
  match t.metrics with
  | Some m when (not t.settling) && has_work t ->
    Metrics.inc m.m_settles_serial;
    let t0 = Metrics.now () in
    Fun.protect
      ~finally:(fun () -> Metrics.observe_since m.m_settle_seconds t0)
      (fun () -> stabilize_serial_body t)
  | _ -> stabilize_serial_body t

(* Preemptable evaluation (§4.5: "the evaluation routine should be called
   whenever cycles are available … and can be preempted when necessary"):
   process at most [max_steps] inconsistent-set entries and stop. *)
let settle_bounded t ~max_steps =
  if t.settling || max_steps <= 0 then t.dirty_parts = []
  else begin
    requeue_quarantined t;
    t.settling <- true;
    t.settle_fuel <- (match t.max_settle_steps with Some n -> n | None -> -1);
    let budget = ref max_steps in
    let finally () = t.settling <- false in
    Fun.protect ~finally (fun () ->
        let rec drain_parts () =
          match t.dirty_parts with
          | [] -> ()
          | part :: _ ->
            let skipped = ref [] in
            let drained = ref false in
            (* [reinsert] (a finalizer, so it runs before the quiescence
               check below) empties [skipped]; latch whether anything was
               skipped first — a drained partition whose on-stack nodes
               went back into its heap is NOT quiescent and must keep its
               dirty flag and its place on the dirty list. *)
            let had_skipped = ref false in
            let reinsert () =
              if !skipped <> [] then had_skipped := true;
              List.iter (Heap.insert part.queue) !skipped;
              skipped := []
            in
            Fun.protect ~finally:reinsert (fun () ->
                let rec loop () =
                  if !budget > 0 then begin
                    poke t "settle-pop";
                    budget_check t;
                    if t.settle_fuel = 0 then degrade_to_exhaustive t
                    else
                      match Heap.pop_min part.queue with
                      | None -> drained := true
                      | Some node ->
                        let p = G.payload node in
                        (if p.queued then
                           if p.on_stack then skipped := node :: !skipped
                           else begin
                             if tele_on t then
                               emit t (fun () ->
                                   Telemetry.Settle_pop
                                     { id = eid t node; name = p.name });
                             p.queued <- false;
                             log_remark t node;
                             decr budget;
                             budget_step t;
                             t.c_steps <- t.c_steps + 1;
                             (match t.metrics with
                             | None -> ()
                             | Some m -> Metrics.inc m.m_settle_steps);
                             if t.settle_fuel > 0 then
                               t.settle_fuel <- t.settle_fuel - 1;
                             process_guarded t node p;
                             if t.self_audit then audit_step t
                           end);
                        loop ()
                  end
                in
                loop ());
            if !drained && not !had_skipped then begin
              (* this partition is quiescent; move on *)
              part.on_dirty_list <- false;
              (* the partition may have been re-dirtied (and re-listed)
                 by the processing above; only drop the head we took *)
              (match t.dirty_parts with
              | hd :: tl when hd == part -> t.dirty_parts <- tl
              | _ -> ());
              if !budget > 0 then drain_parts ()
            end
        in
        drain_parts ());
    (* quiescent iff no partition still holds queued work *)
    List.for_all
      (fun (part : partition) ->
        let rec clean () =
          match Heap.peek_min part.queue with
          | None -> true
          | Some node ->
            if (G.payload node).queued then false
            else begin
              ignore (Heap.pop_min part.queue);
              clean ()
            end
        in
        clean ())
      t.dirty_parts
  end

(* ------------------------------------------------------------------ *)
(* Settlement (parallel, level-synchronized)                           *)
(* ------------------------------------------------------------------ *)

(* The parallel evaluator drains the inconsistent set front by front:
   each round computes the longest-path level of every queued node over
   the affected subgraph, takes the shallowest level as the front —
   whose members are mutually independent by construction (an edge
   between two queued nodes forces distinct levels) — and executes the
   front's eager members concurrently on the domain pool. Storage and
   demand members are coordinator-only flag flips. Workers buffer every
   engine mutation in their lane context; the barrier applies the
   buffers in lane order, which keeps the whole engine single-writer
   and the merge deterministic. *)

exception Par_degrade
(* internal: the settle-fuel watchdog tripped mid-level *)

(* prepared eager execution, produced by the coordinator's pre-pop *)
type ptask = {
  pt_node : nd;
  pt_pay : payload;
  pt_inst : instance;
  pt_saved : nd list; (* pred snapshot for failure restore *)
  pt_reuse : bool; (* static_deps reuse: preds kept, recording masked *)
}

let dirty_nodes t =
  List.filter
    (fun n ->
      let p = G.payload n in
      p.queued && not p.discarded)
    t.all_nodes

(* Longest-path level of each node in the affected region (the forward
   closure of the queued set) — §10's parallel-scheduling reading of
   the dependency graph. Writers of a storage cell sit strictly below
   the cell's other readers ([note_writer]), so a maintained
   write-then-read chain levels like the explicit edge it shortcuts;
   the writer itself is excluded so its own read-back does not
   self-deepen. Cycles are cut at the back edge: their members share a
   front and the claim protocol turns any genuine circular wait into
   [Cycle]. *)
let make_depth _t queued =
  let affected = Hashtbl.create 256 in
  let rec reach n =
    if not (Hashtbl.mem affected (G.id n)) then begin
      Hashtbl.replace affected (G.id n) ();
      G.iter_succ reach n
    end
  in
  List.iter reach queued;
  let depth = Hashtbl.create 256 in
  let in_progress = Hashtbl.create 16 in
  let rec level n =
    let id = G.id n in
    match Hashtbl.find_opt depth id with
    | Some d -> d
    | None ->
      if Hashtbl.mem in_progress id then 0
      else begin
        Hashtbl.replace in_progress id ();
        let d = ref 0 in
        let bump m =
          if Hashtbl.mem affected (G.id m) && not (G.payload m).discarded then
            d := max !d (level m + 1)
        in
        G.iter_pred
          (fun m ->
            bump m;
            match (G.payload m).kind with
            | Storage ->
              List.iter (fun w -> if not (w == n) then bump w)
                (G.payload m).writers
            | Instance _ -> ())
          n;
        Hashtbl.remove in_progress id;
        Hashtbl.replace depth id !d;
        !d
      end
  in
  level

(* The level fronts the next parallel settle would execute, shallowest
   first (introspection: [Alphonse.Parallel.levels], tests, docs). *)
let dirty_levels t =
  match dirty_nodes t with
  | [] -> []
  | queued ->
    let depth = make_depth t queued in
    let tbl = Hashtbl.create 8 in
    List.iter
      (fun n ->
        let d = depth n in
        Hashtbl.replace tbl d
          (n :: (match Hashtbl.find_opt tbl d with Some l -> l | None -> [])))
      queued;
    Hashtbl.fold (fun d ns acc -> (d, ns) :: acc) tbl []
    |> List.sort (fun (a, _) (b, _) -> compare (a : int) b)
    |> List.map (fun (_, ns) -> List.rev ns)

(* Pools are process-wide and shared by lane count (Pool.shared): a
   fault sweep builds one engine per poke site, and per-engine pools
   would leak their worker domains past OCaml's live-domain cap.  The
   engine only caches the shared handle; two engines on one pool
   serialize whole rounds through the pool's run lock. *)
let ensure_pool t ~domains =
  match t.pool with
  | Some (n, pool) when n = domains -> pool
  | _ ->
    let pool = Pool.shared ~lanes:domains in
    t.pool <- Some (domains, pool);
    pool

let shutdown_pool t =
  (* drop the engine's reference only — the pool itself is shared *)
  t.pool <- None

(* ---- per-level claim table --------------------------------------- *)

(* A pool task runs its node only if nobody claimed it first (a worker
   that needed the value mid-level may have forced it already). *)
let task_claim par node =
  Mutex.lock par.tm;
  let id = G.id node in
  let free = not (Hashtbl.mem par.claims id) in
  if free then Hashtbl.replace par.claims id (Running (self_id ()));
  Mutex.unlock par.tm;
  free

let task_done par node =
  Mutex.lock par.tm;
  Hashtbl.replace par.claims (G.id node) Done;
  Condition.broadcast par.tcv;
  Mutex.unlock par.tm

(* Claim [node] for nested forcing, waiting while another worker runs
   it. The wait registers in [par.waiting] so a circular cross-worker
   wait is detected (walk the wait-for chain; if it reaches the caller,
   this is a dependency cycle discovered concurrently) and surfaced as
   [Cycle] instead of deadlocking the barrier. Callers must not hold
   the engine lock ([suspend_engine] first). *)
let claim_for_force par name node =
  let me = self_id () in
  let id = G.id node in
  Mutex.lock par.tm;
  let rec loop () =
    match Hashtbl.find_opt par.claims id with
    | Some (Running d) when d <> me ->
      let rec blocks d' seen =
        if List.memq d' seen then false
        else
          match List.assoc_opt d' par.waiting with
          | None -> false
          | Some nid -> (
            match Hashtbl.find_opt par.claims nid with
            | Some (Running d'') -> d'' = me || blocks d'' (d' :: seen)
            | _ -> false)
      in
      if blocks d [] then begin
        Mutex.unlock par.tm;
        raise (Cycle name)
      end
      else begin
        par.waiting <- (me, id) :: List.remove_assoc me par.waiting;
        Condition.wait par.tcv par.tm;
        par.waiting <- List.remove_assoc me par.waiting;
        loop ()
      end
    | _ ->
      (* free, or Done (a retry after the claimer failed): claim it *)
      Hashtbl.replace par.claims id (Running me);
      Mutex.unlock par.tm
  in
  loop ()

(* ---- worker-side call path --------------------------------------- *)

(* [Engine.on_call] as seen from a pool lane: cycles are checked against
   the lane's own stack, dirty dependencies are claimed (or waited for)
   and then forced under the engine lock, and the dependency edge is
   buffered. A same-front read that races a sibling's write converges:
   the barrier re-marks the written cell's readers, bounding duplicate
   re-executions by the level width. *)
let on_call_parallel t par node p inst =
  let c = ctx t in
  if List.exists (fun f -> f.fnode == node) c.stack then begin
    record_dependency t node;
    raise (Cycle p.name)
  end;
  let hit () =
    c.b_hits <- c.b_hits + 1;
    (match t.metrics with
    | None -> ()
    | Some m -> Metrics.inc m.m_hits);
    if tele_on t then
      emit t (fun () -> Telemetry.Cache_hit { id = eid t node; name = p.name })
  in
  if dirty p then begin
    (* release any held engine lock before blocking on the claim table:
       the claimer we wait for may itself need the lock to finish *)
    let d = suspend_engine t in
    (match claim_for_force par p.name node with
    | () -> resume_engine t d
    | exception e ->
      resume_engine t d;
      raise e);
    lock_engine t;
    let finish () =
      unlock_engine t;
      task_done par node
    in
    match
      if dirty p then (
        try force t node p inst
        with e ->
          (* the caller observed this failure: record the dependency so
             a later recovery of this instance re-invalidates it *)
          masked t (fun () -> record_dependency t node);
          raise e)
      else if inst.ever_ran then
        (* a sibling brought it current while we waited *)
        hit ()
    with
    | () -> finish ()
    | exception e ->
      finish ();
      raise e
  end
  else if inst.ever_ran then hit ();
  record_dependency t node

(* ---- task execution ---------------------------------------------- *)

(* Run one prepared front member on a pool lane. The coordinator already
   performed the pre-body work (pop accounting, poison screen,
   RemovePredEdges); this is [run_instance]'s body half, writing only
   the lane's buffers. On failure the staged task edges are dropped
   (the buffered mirror of the serial edge rollback) and the restore /
   retry charge is deferred to the barrier — except [consistent],
   cleared immediately so a waiting sibling re-forces instead of
   reading the stale cache. *)
let exec_task t par pt () =
  let node = pt.pt_node and p = pt.pt_pay and inst = pt.pt_inst in
  if task_claim par node then begin
    let c = ctx t in
    (match t.max_stack_depth with
    | Some lim when c.stack_depth >= lim ->
      inst.consistent <- false;
      c.b_failed <-
        ( node,
          pt.pt_saved,
          pt.pt_reuse,
          Watchdog
            (Fmt.str "call-stack depth limit %d reached at %s#%d" lim p.name
               (G.id node)) )
        :: c.b_failed
    | _ ->
      c.t_edges <- [];
      let stamp = next_stamp t in
      c.stack <- { fnode = node; stamp } :: c.stack;
      c.stack_depth <- c.stack_depth + 1;
      p.on_stack <- true;
      inst.consistent <- true;
      let saved_mask = c.mask in
      c.mask <- not pt.pt_reuse;
      (match t.txn with
      | Some _ -> c.b_ran <- node :: c.b_ran
      | None -> ());
      emit t (fun () ->
          Telemetry.Exec_begin
            { id = eid t node; name = p.name; first = not inst.ever_ran });
      let restore () =
        c.mask <- saved_mask;
        p.on_stack <- false;
        c.stack_depth <- c.stack_depth - 1;
        c.stack <- List.tl c.stack
      in
      (match
         poke t "exec-begin";
         inst.recompute ()
       with
      | changed ->
        restore ();
        inst.failures <- 0;
        emit t (fun () ->
            Telemetry.Exec_end
              { id = eid t node; name = p.name; changed; ok = true });
        c.b_execs <- c.b_execs + 1;
        (* metrics cells are atomics, so worker lanes update them
           directly rather than buffering for the barrier merge *)
        (match t.metrics with
        | None -> ()
        | Some m ->
          Metrics.inc (if inst.ever_ran then m.m_exec_re else m.m_exec_first);
          if inst.ever_ran && not changed then Metrics.inc m.m_cutoffs);
        if not inst.ever_ran then begin
          c.b_first <- c.b_first + 1;
          inst.ever_ran <- true
        end;
        c.b_edges <- List.rev c.t_edges :: c.b_edges;
        if changed then c.b_changed <- node :: c.b_changed
      | exception e ->
        restore ();
        inst.consistent <- false;
        emit t (fun () ->
            Telemetry.Exec_end
              { id = eid t node; name = p.name; changed = false; ok = false });
        c.b_failed <- (node, pt.pt_saved, pt.pt_reuse, e) :: c.b_failed);
      c.t_edges <- []);
    task_done par node
  end

(* ---- level barrier ----------------------------------------------- *)

(* Apply every lane's buffers, in lane order (deterministic). Ordering
   inside the barrier: journal intents first (phase A — the per-level
   commit point: append-before-apply at level granularity), then
   failure restores and edge installation (no fault sites), then the
   inconsistency marks (idempotent, so a "mark" fault retries the
   sweep under [masked]). A raise anywhere finishes the whole barrier
   masked before surfacing — no lane's intents are ever lost. *)
let merge_barrier t par ~level =
  let lanes = par.lanes in
  let executed = ref 0 and failed = ref 0 in
  let audit_failed = ref None in
  let merged = ref false and marked = ref false in
  let apply () =
    if not !merged then begin
      merged := true;
      Array.iter
        (fun c ->
          (* failures: restore pred sets, charge the retry budget *)
          List.iter
            (fun (node, saved, reuse, e) ->
              incr failed;
              let p = G.payload node in
              match p.kind with
              | Instance inst ->
                masked t (fun () ->
                    if not reuse then begin
                      G.clear_preds t.graph node;
                      let st = next_stamp t in
                      List.iter
                        (fun src ->
                          if not (G.payload src).discarded then
                            G.add_edge ~stamp:st ~src ~dst:node)
                        saved
                    end);
                record_failure t node p inst e;
                (match e with
                | Audit_failure _ -> audit_failed := Some e
                | _ -> ());
                Log.debug (fun m ->
                    m "parallel settle: %s#%d failed (%s)" p.name (G.id node)
                      (Printexc.to_string e))
              | Storage -> ())
            (List.rev c.b_failed);
          (* successful tasks' staged edges *)
          List.iter
            (fun group ->
              List.iter
                (fun (src, dst, stamp, is_write) ->
                  if
                    (not (G.payload src).discarded)
                    && not (G.payload dst).discarded
                  then begin
                    if G.order_lt dst src then t.c_ooo <- t.c_ooo + 1;
                    G.add_edge ~stamp ~src ~dst;
                    if is_write then note_writer src dst;
                    link_partitions t src dst
                  end)
                group)
            (List.rev c.b_edges);
          (* counters, transaction log, telemetry *)
          executed := !executed + c.b_execs;
          t.c_executions <- t.c_executions + c.b_execs;
          t.c_first <- t.c_first + c.b_first;
          t.c_hits <- t.c_hits + c.b_hits;
          (match t.txn with
          | Some tx ->
            tx.ran <- List.rev_append c.b_ran tx.ran;
            tx.undos <- c.b_undos @ tx.undos
          | None -> ());
          (match t.telemetry with
          | Some tm when c.b_events <> [] ->
            (* each lane's stream replays contiguously, bracketed so
               consumers can attribute executions to domains *)
            Telemetry.emit tm (Telemetry.Par_domain_begin { domain = c.lane });
            List.iter
              (fun (at, ev) -> Telemetry.emit_at tm ~at ev)
              (List.rev c.b_events);
            Telemetry.emit tm (Telemetry.Par_domain_end { domain = c.lane })
          | _ -> ());
          c.b_failed <- [];
          c.b_edges <- [];
          c.t_edges <- [];
          c.b_ran <- [];
          c.b_undos <- [];
          c.b_events <- [];
          c.b_execs <- 0;
          c.b_first <- 0;
          c.b_hits <- 0)
        lanes
    end;
    if not !marked then begin
      Array.iter
        (fun c ->
          List.iter
            (fun node -> mark_inconsistent t node)
            (List.rev c.b_writes);
          List.iter
            (fun node -> mark_succs ~cause:node t node)
            (List.rev c.b_changed))
        lanes;
      marked := true;
      Array.iter
        (fun c ->
          c.b_writes <- [];
          c.b_changed <- [])
        lanes
    end
  in
  (match
     Array.iter
       (fun c -> List.iter (fun n -> jwrite t n) (List.rev c.b_writes))
       lanes
   with
  | () -> (
    try apply ()
    with e ->
      masked t apply;
      raise e)
  | exception e ->
    (* a journal fault (or simulated kill): the level's in-memory
       effects must still land before the fault surfaces — recovery
       treats the journal shortfall as a verification miss *)
    masked t apply;
    raise e);
  emit t (fun () ->
      Telemetry.Par_level_end { level; executed = !executed; failed = !failed });
  match !audit_failed with Some e -> raise e | None -> ()

(* ---- one level --------------------------------------------------- *)

(* Pre-pop an eager front member: [run_instance]'s pre-body half
   (RemovePredEdges under the coordinator, where a clear-preds fault
   takes the exact serial failure path). *)
let prep_eager t tasks node p inst =
  let reuse_static = inst.static_deps && inst.ever_ran in
  let saved_preds =
    if reuse_static then []
    else begin
      let acc = ref [] in
      G.iter_pred (fun src -> acc := src :: !acc) node;
      !acc
    end
  in
  match
    if not reuse_static then begin
      poke t "clear-preds";
      if inst.ever_ran then
        emit t (fun () ->
            Telemetry.Preds_cleared { id = eid t node; name = p.name });
      G.clear_preds t.graph node
    end
  with
  | () ->
    tasks :=
      {
        pt_node = node;
        pt_pay = p;
        pt_inst = inst;
        pt_saved = saved_preds;
        pt_reuse = reuse_static;
      }
      :: !tasks
  | exception e ->
    masked t (fun () ->
        if not reuse_static then begin
          G.clear_preds t.graph node;
          let st = next_stamp t in
          List.iter
            (fun src ->
              if not (G.payload src).discarded then
                G.add_edge ~stamp:st ~src ~dst:node)
            saved_preds
        end);
    inst.consistent <- false;
    record_failure t node p inst e;
    (match e with
    | Audit_failure _ -> raise e
    | _ ->
      Log.debug (fun m ->
          m "parallel settle: %s#%d failed pre-body (%s)" p.name (G.id node)
            (Printexc.to_string e)))

(* Un-prepare tasks that will never run because the level aborted
   mid-prep: put the pred snapshot back and re-mark, so no
   invalidation is lost. *)
let unprep t tasks =
  masked t (fun () ->
      List.iter
        (fun pt ->
          (match pt.pt_pay.kind with
          | Instance inst -> inst.consistent <- false
          | Storage -> ());
          if not pt.pt_reuse then begin
            G.clear_preds t.graph pt.pt_node;
            let st = next_stamp t in
            List.iter
              (fun src ->
                if not (G.payload src).discarded then
                  G.add_edge ~stamp:st ~src ~dst:pt.pt_node)
              pt.pt_saved
          end;
          mark_inconsistent t pt.pt_node)
        tasks)

let run_level t par ~level queued =
  let depth = make_depth t queued in
  let dmin = List.fold_left (fun acc n -> min acc (depth n)) max_int queued in
  let front = List.filter (fun n -> depth n = dmin) queued in
  (* priority order: deterministic, and close to the serial drain *)
  let front =
    List.stable_sort
      (fun a b -> if a == b then 0 else if t.heap_leq a b then -1 else 1)
      front
  in
  let tasks = ref [] in
  let process_member node =
    let p = G.payload node in
    if p.queued then begin
      (* poked (and budget-checked) before the pop so a fault or a
         cancellation leaves the member queued *)
      poke t "settle-pop";
      budget_check t;
      if t.settle_fuel = 0 then raise Par_degrade;
      if tele_on t then
        emit t (fun () ->
            Telemetry.Settle_pop { id = eid t node; name = p.name });
      p.queued <- false;
      log_remark t node;
      budget_step t;
      t.c_steps <- t.c_steps + 1;
      (match t.metrics with
      | None -> ()
      | Some m -> Metrics.inc m.m_settle_steps);
      if t.settle_fuel > 0 then t.settle_fuel <- t.settle_fuel - 1;
      match p.kind with
      | Storage -> process_guarded t node p
      | Instance inst -> (
        match inst.strategy with
        | Demand -> process_guarded t node p
        | Eager -> (
          match inst.poison with
          | Some _ ->
            (* a poisoned dependency still notifies its dependents
               (force's [Poisoned] path, which the serial
               process_guarded would swallow) *)
            masked t (fun () ->
                G.iter_succ (mark_inconsistent ~cause:node t) node)
          | None -> prep_eager t tasks node p inst))
    end
  in
  (match List.iter process_member front with
  | () -> ()
  | exception Par_degrade ->
    (* degrading resets every instance to exhaustive recomputation, so
       already-prepared members need no restore *)
    degrade_to_exhaustive t;
    raise Par_degrade
  | exception e ->
    unprep t !tasks;
    raise e);
  let tasks = List.rev !tasks in
  let ntasks = List.length tasks in
  t.c_par_levels <- t.c_par_levels + 1;
  t.c_par_tasks <- t.c_par_tasks + ntasks;
  (match t.metrics with
  | None -> ()
  | Some m ->
    Metrics.inc m.m_par_levels;
    Metrics.add m.m_par_tasks ntasks);
  emit t (fun () ->
      Telemetry.Par_level_begin
        {
          level;
          width = List.length front;
          tasks = ntasks;
          domains = Array.length par.lanes;
        });
  if ntasks > 0 then begin
    Hashtbl.reset par.claims;
    par.waiting <- [];
    (* route the caller's domain to lane 0 while it drains tasks *)
    par.ids.(0) <- (self_id (), par.lanes.(0));
    Fun.protect
      ~finally:(fun () -> par.ids.(0) <- (-1, t.ctx0))
      (fun () ->
        let cells =
          match t.metrics with
          | Some { m_pool = Some (_, c); _ } -> Some c
          | _ -> None
        in
        Pool.run ?cells par.pool
          (List.map (fun pt -> exec_task t par pt) tasks));
    merge_barrier t par ~level
  end
  else
    emit t (fun () ->
        Telemetry.Par_level_end { level; executed = 0; failed = 0 });
  if t.self_audit then audit_step t

(* drop the stale heap entries the flag-based parallel drain left
   behind (safe only at quiescence) *)
let scrub_heaps t =
  List.iter
    (fun (part : partition) ->
      Heap.clear part.queue;
      part.on_dirty_list <- false)
    t.dirty_parts;
  t.dirty_parts <- []

let settle_parallel t ~domains =
  if domains < 1 then
    invalid_arg "Engine.settle_parallel: domains must be >= 1";
  if t.settling then ()
  else if
    (match t.ctx0.stack with _ :: _ -> true | [] -> false)
    || match t.par with Some _ -> true | None -> false
  then
    (* called during an execution: the serial path's skip-on-stack
       handling applies *)
    stabilize_serial t
  else begin
    requeue_quarantined t;
    match t.dirty_parts with
    | [] -> ()
    | _ :: _ ->
      t.settling <- true;
      t.settle_fuel <-
        (match t.max_settle_steps with Some n -> n | None -> -1);
      let t0 =
        match t.metrics with
        | None -> 0.
        | Some m ->
          Metrics.inc m.m_settles_parallel;
          (* per-lane pool cells, sized for this settle's lane count *)
          (match m.m_pool with
          | Some (l, _) when l = domains -> ()
          | _ -> m.m_pool <- Some (domains, Pool.make_cells m.mreg ~lanes:domains));
          Metrics.now ()
      in
      let pool = ensure_pool t ~domains in
      let lanes = Array.init domains fresh_ctx in
      let ids = Array.make (max domains 1) (-1, t.ctx0) in
      List.iteri
        (fun i did -> ids.(i + 1) <- (did, lanes.(i + 1)))
        (Pool.worker_ids pool);
      let par =
        {
          pool;
          lanes;
          ids;
          pm = Mutex.create ();
          powner = -1;
          pdepth = 0;
          tm = Mutex.create ();
          tcv = Condition.create ();
          claims = Hashtbl.create 64;
          waiting = [];
          pokem = Mutex.create ();
        }
      in
      t.par <- Some par;
      t.quick <- false;
      let finally () =
        t.par <- None;
        refresh_quick t;
        t.settling <- false;
        match t.metrics with
        | None -> ()
        | Some m -> Metrics.observe_since m.m_settle_seconds t0
      in
      Fun.protect ~finally @@ fun () ->
        let level = ref 0 in
        let rec rounds () =
          match dirty_nodes t with
          | [] -> scrub_heaps t
          | queued ->
            (match run_level t par ~level:!level queued with
            | () ->
              incr level;
              rounds ()
            | exception Par_degrade -> ())
        in
        rounds ()
  end

let stabilize t =
  let c = ctx t in
  if (match t.par with Some _ -> true | None -> false) && c != t.ctx0 then
    (* from inside a pool lane: the settle is already running *)
    ()
  else
    match t.scheduling with
    | Parallel { domains } -> settle_parallel t ~domains
    | Creation_order | Topological | Fifo -> stabilize_serial t

(* ------------------------------------------------------------------ *)
(* Transactions                                                        *)
(* ------------------------------------------------------------------ *)

(* Rollback: undo the writes newest-first, then re-invalidate. Any
   instance that executed inside the transaction read some of its inputs
   against the batch's intermediate state — invalidate those instances
   and their dependents so the next settle recomputes from the restored
   inputs. Un-marking is lazy w.r.t. the heaps: settlement already skips
   popped entries whose [queued] flag is off. *)
let rollback_txn t tx =
  t.txn <- None;
  refresh_quick t;
  masked t @@ fun () ->
    List.iter
      (fun node ->
        let p = G.payload node in
        if p.queued then p.queued <- false)
      tx.tmarked;
    let undone = List.length tx.undos in
    List.iter
      (fun u ->
        match u with
        | U_remark node -> mark_inconsistent t node
        | U_consistent inst -> inst.consistent <- true
        | U_fun f -> f ())
      tx.undos;
    let remarked = ref 0 in
    List.iter
      (fun node ->
        let p = G.payload node in
        if not p.discarded then begin
          (match p.kind with
          | Instance inst -> inst.consistent <- false
          | Storage -> ());
          mark_inconsistent t node;
          G.iter_succ (mark_inconsistent ~cause:node t) node;
          incr remarked
        end)
      tx.ran;
    t.c_rollbacks <- t.c_rollbacks + 1;
    (match t.metrics with
    | None -> ()
    | Some m -> Metrics.inc m.m_rollbacks);
    emit t (fun () ->
        Telemetry.Txn_rollback { undone; remarked = !remarked })

let transact t f =
  if t.txn <> None then
    invalid_arg "Engine.transact: already inside a transaction";
  if t.ctx0.stack <> [] then
    invalid_arg "Engine.transact: called during an incremental execution";
  let tx = { undos = []; tmarked = []; ran = [] } in
  t.txn <- Some tx;
  t.quick <- false;
  emit t (fun () -> Telemetry.Txn_begin);
  (match jtxn t `Begin with
  | () -> ()
  | exception e ->
    (* nothing ran yet: no writes to undo, just leave the transaction *)
    t.txn <- None;
    refresh_quick t;
    raise e);
  match
    let v = f () in
    (* the batch settle is inside the transaction: if propagation fails,
       the writes roll back with it *)
    stabilize t;
    (* the commit marker is the durability point: journaled only after
       every write and the batch settle succeeded, and before the
       caller learns the batch committed. If appending it fails, the
       batch rolls back below — so the journal never claims a commit
       the in-memory state abandoned, and vice versa. *)
    jtxn t `Commit;
    v
  with
  | v ->
    t.txn <- None;
    refresh_quick t;
    emit t (fun () -> Telemetry.Txn_commit { marks = List.length tx.tmarked });
    v
  | exception e ->
    rollback_txn t tx;
    (* advisory: replay drops uncommitted groups anyway *)
    (try jtxn t `Abort with _ -> ());
    raise e

(* ------------------------------------------------------------------ *)
(* Calls                                                               *)
(* ------------------------------------------------------------------ *)

let on_call t node =
  let p = G.payload node in
  match p.kind with
  | Storage -> invalid_arg "Engine.on_call: storage node"
  | Instance inst -> (
    match t.par with
    | Some par when ctx t != t.ctx0 ->
      (* a pool lane demanded a dependency mid-level *)
      on_call_parallel t par node p inst
    | _ ->
      if p.on_stack then begin
        (* Re-entrant call: a dependency cycle. The caller still observed
           this instance (it will typically turn the exception into an error
           value, as the spreadsheet does), so record the dependency before
           raising — otherwise a cached error value would never be
           invalidated when another cycle participant is edited. *)
        record_dependency t node;
        raise (Cycle p.name)
      end;
      (* Before trusting the cached value, propagate the pending
         inconsistencies of this node's partition — Algorithm 5's
         "IF SetSize(Inconsistent) > 0 THEN Evaluate". Inside the evaluator
         itself we only force: re-entering settlement is both unnecessary
         (the evaluator is already draining this queue) and guarded. A call
         inside a transaction settles too — that is what lets reads observe
         the partial batch; everything that executes is recorded in the
         transaction's [ran] list and re-invalidated on rollback.

         The caller receives the value cached by the instance's own (body)
         execution. Writes performed *during* that execution may leave the
         instance re-queued (e.g. the AVL balance rotations); that dirt is
         deliberately left for the next settlement — re-forcing here would
         hand the mutator the value of a *later* re-execution under the
         already-mutated state (for balance: the demoted node's local
         subtree instead of the new root), which is not what the imperative
         program's call returns. *)
      if not t.settling then (
        match t.scheduling with
        | Parallel { domains } -> settle_parallel t ~domains
        | Creation_order | Topological | Fifo ->
          (* quiescent partitions skip the settle machinery (and its
             pre-pop fault/budget probe) entirely: a cache hit's settle
             share is two loads and a branch *)
          let part = partition_of t node in
          if part.on_dirty_list || not (Heap.is_empty part.queue) then
            settle_partition t part);
      if dirty p then
        (try force t node p inst
         with e ->
           (* the caller observed this failure: record the dependency so a
              later recovery of this instance re-invalidates the caller *)
           masked t (fun () -> record_dependency t node);
           raise e)
      else if inst.ever_ran then begin
        t.c_hits <- t.c_hits + 1;
        (match t.metrics with
        | None -> ()
        | Some m -> Metrics.inc m.m_hits);
        if tele_on t then
          emit t (fun () ->
              Telemetry.Cache_hit { id = eid t node; name = p.name })
      end;
      (* The dependency edge is recorded only now, after any forcing, so the
         consumer is never spuriously invalidated by the fresh value it is
         about to read. *)
      record_dependency t node)

(* Clearing poison also resets [failures] to 0: the operator has
   (presumably) fixed the environment, so the instance gets a full
   fresh retry budget — it must take [max_retries] *new* failures, not
   one, to poison again. The regression test in test/test_faults.ml
   pins this down. *)
let clear_poison t node =
  match (G.payload node).kind with
  | Instance inst ->
    inst.poison <- None;
    inst.failures <- 0;
    inst.consistent <- false;
    masked t (fun () -> mark_inconsistent t node)
  | Storage -> invalid_arg "Engine.clear_poison: storage node"

let removable _t node =
  let p = G.payload node in
  (match p.kind with Storage -> false | Instance _ -> true)
  && (not p.on_stack) && (not p.queued) && (not p.discarded)
  && G.succ_count node = 0

let discard t node =
  let p = G.payload node in
  if not (removable t node) then invalid_arg "Engine.discard: not removable";
  (* poked before any mutation so a fault cancels the eviction cleanly *)
  poke t "evict";
  p.discarded <- true;
  t.c_evictions <- t.c_evictions + 1;
  t.quarantined <- List.filter (fun n -> not (n == node)) t.quarantined;
  emit t (fun () -> Telemetry.Evicted { id = eid t node; name = p.name });
  G.remove_node t.graph node

let unchecked t f =
  let c = ctx t in
  let saved = c.mask in
  c.mask <- false;
  let finally () = c.mask <- saved in
  Fun.protect ~finally f

let is_executing t = (ctx t).stack <> []

let recording t =
  let c = ctx t in
  c.mask && c.stack <> []

let node_name node = (G.payload node).name
let node_id node = G.id node
let succ_count node = G.succ_count node
let pred_count node = G.pred_count node

let stats t =
  {
    executions = t.c_executions;
    first_executions = t.c_first;
    cache_hits = t.c_hits;
    settle_steps = t.c_steps;
    queue_pushes = t.c_pushes;
    unions = t.c_unions;
    out_of_order_edges = t.c_ooo;
    order_fixups = t.c_fixups;
    evictions = t.c_evictions;
    failures = t.c_failures;
    retries = t.c_retries;
    poisonings = t.c_poisonings;
    rollbacks = t.c_rollbacks;
    degradations = t.c_degradations;
    audits = t.c_audits;
    par_levels = t.c_par_levels;
    par_tasks = t.c_par_tasks;
  }

let reset_stats t =
  t.c_executions <- 0;
  t.c_first <- 0;
  t.c_hits <- 0;
  t.c_steps <- 0;
  t.c_pushes <- 0;
  t.c_unions <- 0;
  t.c_ooo <- 0;
  t.c_fixups <- 0;
  t.c_evictions <- 0;
  t.c_failures <- 0;
  t.c_retries <- 0;
  t.c_poisonings <- 0;
  t.c_rollbacks <- 0;
  t.c_degradations <- 0;
  t.c_audits <- 0;
  t.c_par_levels <- 0;
  t.c_par_tasks <- 0

let graph_stats t = G.stats t.graph

let iter_nodes t f =
  List.iter (fun n -> if not (G.payload n).discarded then f n) t.all_nodes

let node_kind node =
  match (G.payload node).kind with
  | Storage -> `Storage
  | Instance _ -> `Instance

let node_dirty node = dirty (G.payload node)

let iter_node_succ f node = G.iter_succ f node
let iter_node_pred f node = G.iter_pred f node

(* Tracked writers of a storage cell, oldest-recorded first — the
   implicit write-then-read edges the parallel level rule serializes
   (and {!Inspect.parallel_profile} charges to the critical path).
   Instances have no writers; discarded writers are skipped. *)
let iter_node_writers f node =
  List.iter
    (fun w -> if not (G.payload w).discarded then f w)
    (List.rev (G.payload node).writers)

(* ------------------------------------------------------------------ *)
(* Export / import of logical engine state (durability)                 *)
(* ------------------------------------------------------------------ *)

(* What can and cannot persist: instance bodies are closures over typed
   caches, so values and [recompute] functions are NOT serializable —
   a restore is structurally a cold rebuild (the domain layer recreates
   vars and funcs; values recompute on demand, which is conservatively
   correct). [export] therefore captures the *logical* state: per-node
   name/kind/dirty/consistency/failure bookkeeping, quarantine
   membership, the discovered edge set (as diagnostic evidence — see
   [import]), and the counters. Node names are the stable identities
   that [import] matches on. *)

let num n = Json.Num (float_of_int n)

let export t =
  (* node ids are written through [eid]: an engine that was itself
     restored re-exports the ids of the snapshot lineage it came from,
     so identities stay stable across restart chains *)
  let nodes =
    List.filter (fun n -> not (G.payload n).discarded) t.all_nodes
    |> List.sort (fun a b ->
           match compare (eid t a) (eid t b) with
           | 0 -> compare (G.id a) (G.id b)
           | c -> c)
  in
  let node_json n =
    let p = G.payload n in
    let base =
      [ ("id", num (eid t n)); ("name", Json.Str p.name);
        ("queued", Json.Bool p.queued) ]
    in
    match p.kind with
    | Storage -> Json.Obj (("kind", Json.Str "storage") :: base)
    | Instance inst ->
      Json.Obj
        (("kind", Json.Str "instance")
        :: base
        @ [
            ("consistent", Json.Bool inst.consistent);
            ("ever_ran", Json.Bool inst.ever_ran);
            ("failures", num inst.failures);
            ( "poison",
              match inst.poison with
              | None -> Json.Null
              | Some e -> Json.Str (Printexc.to_string e) );
            ("quarantined", Json.Bool (List.memq n t.quarantined));
          ])
  in
  let edges =
    List.concat_map
      (fun n ->
        let acc = ref [] in
        G.iter_succ
          (fun dst ->
            if not (G.payload dst).discarded then
              acc := Json.Arr [ num (eid t n); num (eid t dst) ] :: !acc)
          n;
        List.rev !acc)
      nodes
  in
  let s = stats t in
  Json.Obj
    [
      ("schema", Json.Str "alphonse-engine/1");
      ("nodes", Json.Arr (List.map node_json nodes));
      ("edges", Json.Arr edges);
      ( "stats",
        Json.Obj
          [
            ("executions", num s.executions);
            ("first_executions", num s.first_executions);
            ("cache_hits", num s.cache_hits);
            ("settle_steps", num s.settle_steps);
            ("queue_pushes", num s.queue_pushes);
            ("unions", num s.unions);
            ("out_of_order_edges", num s.out_of_order_edges);
            ("order_fixups", num s.order_fixups);
            ("evictions", num s.evictions);
            ("failures", num s.failures);
            ("retries", num s.retries);
            ("poisonings", num s.poisonings);
            ("rollbacks", num s.rollbacks);
            ("degradations", num s.degradations);
            ("audits", num s.audits);
            ("par_levels", num s.par_levels);
            ("par_tasks", num s.par_tasks);
          ] );
    ]

(* Best-effort restore of exported logical state onto a live engine
   whose domain structure has already been rebuilt. Matching is by
   stable node name; anything unmatched (a node not yet re-demanded —
   storage appears on first tracked access, instances on first call)
   is reported as a warning, not an error. Edges are deliberately NOT
   installed: dependencies are re-discovered by re-execution, and
   splicing them in without the cached values they justified would
   fake consistency the caches cannot back. Restored per matched node:
   dirty marks (re-queued), failure counts, poison (as [Failure] of
   the recorded message) and quarantine membership; counters resume
   from the snapshot so stats stay continuous across restarts. *)
let import t j =
  let warnings = ref [] in
  let warn fmt = Printf.ksprintf (fun s -> warnings := s :: !warnings) fmt in
  (match Json.member "schema" j with
  | Some (Json.Str "alphonse-engine/1") -> ()
  | _ -> warn "unrecognized engine snapshot schema");
  (* stable-identity remap: matched live nodes adopt the snapshot's
     node ids for every report surface (telemetry, profiles, DOT,
     re-export) — see [eid] *)
  let remap =
    match t.stable_ids with
    | Some tbl -> tbl
    | None ->
      let tbl = Hashtbl.create 64 in
      t.stable_ids <- Some tbl;
      tbl
  in
  let by_name : (string, nd) Hashtbl.t = Hashtbl.create 64 in
  let ambiguous : (string, unit) Hashtbl.t = Hashtbl.create 8 in
  iter_nodes t (fun n ->
      let name = (G.payload n).name in
      if Hashtbl.mem by_name name then begin
        Hashtbl.remove by_name name;
        Hashtbl.replace ambiguous name ()
      end
      else if not (Hashtbl.mem ambiguous name) then
        Hashtbl.replace by_name name n);
  let matched = ref 0 and missing = ref 0 in
  let str j = Json.to_str j in
  let restore_node nj =
    match Option.bind (Json.member "name" nj) str with
    | None -> warn "snapshot node without a name"
    | Some name -> (
      let flag key =
        match Json.member key nj with Some (Json.Bool b) -> b | _ -> false
      in
      let int_field key =
        match Option.bind (Json.member key nj) Json.to_float with
        | Some f -> int_of_float f
        | None -> 0
      in
      match Hashtbl.find_opt by_name name with
      | None ->
        if Hashtbl.mem ambiguous name then
          warn "ambiguous live name %S: not restored" name
        else begin
          incr missing;
          if !missing <= 5 then warn "no live node named %S" name
        end
      | Some n -> (
        incr matched;
        (match Option.bind (Json.member "id" nj) Json.to_float with
        | Some f -> Hashtbl.replace remap (G.id n) (int_of_float f)
        | None -> ());
        let p = G.payload n in
        match p.kind with
        | Storage -> if flag "queued" then masked t (fun () -> mark_inconsistent t n)
        | Instance inst ->
          inst.failures <- int_field "failures";
          (match Option.bind (Json.member "poison" nj) str with
          | Some msg ->
            (* poisoned stays parked (not re-queued): only clear_poison
               readmits it to settlement, same as before the crash *)
            inst.poison <- Some (Failure ("[restored] " ^ msg));
            inst.consistent <- false
          | None ->
            if flag "quarantined" && not (List.memq n t.quarantined) then
              t.quarantined <- n :: t.quarantined;
            if flag "queued" || not (flag "consistent") then begin
              inst.consistent <- false;
              masked t (fun () -> mark_inconsistent t n)
            end)))
  in
  (match Option.bind (Json.member "nodes" j) Json.to_list with
  | Some nodes -> List.iter restore_node nodes
  | None -> warn "snapshot has no node table");
  if !missing > 5 then
    warn "(%d more snapshot nodes without live counterparts)" (!missing - 5);
  (match Json.member "stats" j with
  | Some stats_j ->
    let get key =
      match Option.bind (Json.member key stats_j) Json.to_float with
      | Some f -> int_of_float f
      | None -> 0
    in
    t.c_executions <- get "executions";
    t.c_first <- get "first_executions";
    t.c_hits <- get "cache_hits";
    t.c_steps <- get "settle_steps";
    t.c_pushes <- get "queue_pushes";
    t.c_unions <- get "unions";
    t.c_ooo <- get "out_of_order_edges";
    t.c_fixups <- get "order_fixups";
    t.c_evictions <- get "evictions";
    t.c_failures <- get "failures";
    t.c_retries <- get "retries";
    t.c_poisonings <- get "poisonings";
    t.c_rollbacks <- get "rollbacks";
    t.c_degradations <- get "degradations";
    t.c_audits <- get "audits";
    t.c_par_levels <- get "par_levels";
    t.c_par_tasks <- get "par_tasks"
  | None -> warn "snapshot has no stats");
  (!matched, List.rev !warnings)
