(** One supervised tenant: an isolated {!Engine.t} + domain instance
    with its own durable state directory
    ([<root>/tenants/<id>]), supervised with restart-on-crash,
    exponential backoff with deterministic jitter, and a circuit
    breaker that parks a flapping tenant without touching its
    neighbours.

    Fault isolation boundaries:
    - {e state}: each tenant journals to its own WAL and snapshots into
      its own directory; recovery after a crash replays only that
      tenant's log.
    - {e failure}: a crash during a batch tears down only this tenant's
      session; the supervisor rebuilds it from disk after a backoff.
      [crashes] consecutive crashes beyond [c_max_restarts] open the
      circuit: the tenant answers "unavailable" (the daemon's 503) for
      [c_cooldown] seconds, then a single half-open probe retries.
    - {e time}: batches run under an {!Engine.Budget}; a deadline trip
      rolls the batch back ({!Engine.transact}) and reports
      [Cancelled] without charging the crash counter.

    The [lock] serializes batches per tenant — one in-flight batch per
    tenant is the concurrency unit the daemon builds its queues on. *)

exception Bad_op of string
(** Raised by a workload's [s_apply] on a malformed operation. The
    batch rolls back and the error is reported as [Rejected] — client
    fault, not a tenant crash. *)

(** What the daemon hosts: a factory of per-tenant instances. The
    daemon layer is domain-agnostic — [bin/alphonsec.ml] wires the
    spreadsheet workload ([Sheet.workload]). *)
type session = {
  s_engine : Engine.t;  (** the tenant's private engine *)
  s_apply : Json.t -> Json.t;
      (** execute one operation against the domain; returns the
          operation's result, raises {!Bad_op} on malformed input *)
  s_persist : Durable.persistable;  (** durability hooks for the domain *)
  s_set_journal : (Json.t -> unit) option -> unit;
      (** route the domain's mutations through the given write-ahead
          callback (installed by the supervisor at attach time) *)
}

type workload = { w_make : unit -> session }

type config = {
  c_root : string;  (** state root; tenant dirs live under [root/tenants] *)
  c_durable : bool;  (** [false] skips WAL/snapshot entirely (benches) *)
  c_wal_policy : Wal.policy;
  c_max_restarts : int;
      (** consecutive crashes tolerated before the circuit opens *)
  c_backoff_base : float;  (** first restart delay, seconds *)
  c_backoff_cap : float;  (** backoff ceiling, seconds *)
  c_cooldown : float;  (** parked duration before a half-open probe *)
  c_seed : int;  (** jitter determinism *)
  c_metrics : Metrics.t option;
      (** registry shared by every tenant: engine cells plus
          [tenant_restarts_total] / [tenant_crashes_total] /
          [tenant_trips_total] *)
}

val default_config : ?durable:bool -> root:string -> unit -> config
(** Commit-fsync WAL, 5 restarts, 50 ms base / 5 s cap backoff, 30 s
    cooldown. *)

val valid_id : string -> bool
(** Tenant ids become directory names: 1–64 chars from
    [[A-Za-z0-9._-]], not starting with a dot. Anything else is
    rejected before it can escape the state root. *)

type t

type status =
  | Serving
  | Backoff of float  (** restart pending; seconds until the attempt *)
  | Parked of float  (** circuit open; seconds until the half-open probe *)
  | Stopped

type error =
  | Cancelled of string
      (** the batch's budget tripped; the transaction rolled back *)
  | Rejected of string  (** malformed operation ({!Bad_op}) *)
  | Unavailable of { reason : string; retry_after : float }
      (** crashed / restarting / circuit open — retry later *)

val create : ?kill_hook:(string -> unit) -> config -> workload -> id:string -> t
(** Creates the tenant and starts (= recovers) its first session from
    [<root>/tenants/<id>]. A failing first start does not raise: the
    tenant begins in [Backoff] and submits report [Unavailable].
    [kill_hook] is forwarded to the durable session's
    {!Durable.set_kill_hook} (crash testing through the daemon).
    @raise Invalid_argument when {!valid_id} rejects [id]. *)

val submit :
  t ->
  ?budget:Engine.Budget.t ->
  now:float ->
  Json.t list ->
  (Json.t list, error) result
(** Run one batch: every op applied in order inside
    {!Engine.transact}, the closing settle included, under [budget]
    when given. Serialized per tenant (callers block on the tenant
    lock — the daemon bounds how many may wait). A successful batch
    resets the consecutive-crash counter; an unexpected exception
    tears the session down and schedules a restart. *)

val status : t -> now:float -> status
val id : t -> string
val dir : t -> string
val engine : t -> Engine.t option
(** The live session's engine ([None] while down) — tests reach
    through this to poke fault hooks. *)

val checkpoint : t -> unit
(** Snapshot + journal rotation for this tenant (no-op while down). *)

val stop : t -> unit
(** Checkpoint (best effort), detach durability, drop the session.
    Terminal: further submits answer [Unavailable "stopped"]. *)

val set_kill_hook : t -> (string -> unit) option -> unit
(** Install a durability kill hook on the live session and on every
    future session the supervisor starts. *)

val crashes : t -> int
(** Consecutive crashes (resets on a successful batch). *)

val restarts : t -> int
(** Lifetime restart attempts. *)

val trips : t -> int
(** Lifetime circuit-breaker trips. *)

val last_error : t -> string option
val last_recovery : t -> Durable.outcome option
