(* Reusable domain pool.  One mutex guards the whole round state; tasks
   run with the mutex released.  Workers sleep on [work_cv] between
   rounds and the caller sleeps on [done_cv] until the round drains, so
   an idle pool burns no cycles.  The round counter (not the task
   array) is the wake-up signal: a worker that saw round [r] sleeps
   until [round <> r], which survives spurious wake-ups and makes the
   array swap race-free (the array is published under the same mutex
   that publishes the round increment). *)

(* Per-round metrics cells. A pool can be shared by several engines
   (see [shared] below), so the cells travel with the round — passed to
   [run] by the caller whose settle this is — rather than living on the
   pool: one engine's registry never absorbs another engine's work. *)
type cells = {
  pc_tasks : Metrics.counter array; (* claimed tasks, by lane *)
  pc_steals : Metrics.counter; (* tasks claimed by a non-caller lane *)
  pc_wait : Metrics.histogram; (* caller's barrier wait per round *)
}

let make_cells reg ~lanes =
  {
    pc_tasks =
      Array.init lanes (fun i ->
          Metrics.counter reg "pool_tasks_total"
            ~labels:[ ("lane", string_of_int i) ]
            ~help:"tasks claimed from the shared queue, by pool lane");
    pc_steals =
      Metrics.counter reg "pool_steals_total"
        ~help:"tasks claimed by a worker lane (not the calling domain)";
    pc_wait =
      Metrics.histogram reg "pool_barrier_wait_seconds"
        ~help:"caller wait at the round barrier after its own lane drained";
  }

type t = {
  n_lanes : int;
  run_m : Mutex.t; (* serializes whole rounds (shared pools) *)
  m : Mutex.t;
  work_cv : Condition.t; (* workers: a new round was posted *)
  done_cv : Condition.t; (* caller: the current round drained *)
  mutable round : int;
  mutable tasks : (unit -> unit) array;
  mutable next : int; (* first unclaimed task index *)
  mutable completed : int;
  mutable stop : bool;
  mutable cells : cells option; (* the active round's cells *)
  mutable workers : unit Domain.t list; (* lane order *)
  mutable wids : int list; (* domain ids, lane order *)
}

(* Claim-and-run loop shared by workers and the caller.  Entered and
   left with [p.m] held. [lane] is 0 for the caller, 1.. for workers. *)
let drain p lane =
  let len = Array.length p.tasks in
  while p.next < len do
    let i = p.next in
    p.next <- i + 1;
    Mutex.unlock p.m;
    (try p.tasks.(i) () with _ -> ());
    Mutex.lock p.m;
    (match p.cells with
    | None -> ()
    | Some c ->
      if lane < Array.length c.pc_tasks then Metrics.inc c.pc_tasks.(lane);
      if lane > 0 then Metrics.inc c.pc_steals);
    p.completed <- p.completed + 1;
    if p.completed = len then Condition.broadcast p.done_cv
  done

let worker_body p lane () =
  let seen = ref 0 in
  Mutex.lock p.m;
  let rec loop () =
    if p.stop then Mutex.unlock p.m
    else if p.round = !seen then begin
      Condition.wait p.work_cv p.m;
      loop ()
    end
    else begin
      seen := p.round;
      drain p lane;
      loop ()
    end
  in
  loop ()

let create ~lanes =
  if lanes < 1 then invalid_arg "Pool.create: lanes must be >= 1";
  let p =
    {
      n_lanes = lanes;
      run_m = Mutex.create ();
      m = Mutex.create ();
      work_cv = Condition.create ();
      done_cv = Condition.create ();
      round = 0;
      tasks = [||];
      next = 0;
      completed = 0;
      stop = false;
      cells = None;
      workers = [];
      wids = [];
    }
  in
  let workers =
    List.init (lanes - 1) (fun i -> Domain.spawn (worker_body p (i + 1)))
  in
  p.workers <- workers;
  p.wids <- List.map (fun d -> (Domain.get_id d :> int)) workers;
  p

let lanes p = p.n_lanes
let worker_ids p = p.wids

let run ?cells p task_list =
  match task_list with
  | [] -> ()
  | _ ->
    (* whole-round serialization: shared pools can be reached by two
       engines (or two settles) at once; rounds must not interleave *)
    Mutex.lock p.run_m;
    let finally () = Mutex.unlock p.run_m in
    Fun.protect ~finally @@ fun () ->
    let tasks = Array.of_list task_list in
    Mutex.lock p.m;
    p.cells <- cells;
    p.tasks <- tasks;
    p.next <- 0;
    p.completed <- 0;
    p.round <- p.round + 1;
    Condition.broadcast p.work_cv;
    drain p 0;
    (* the caller's lane is dry; what remains is barrier wait for the
       worker lanes still running claimed tasks *)
    let t0 =
      match cells with
      | None -> 0.
      | Some _ -> if p.completed < Array.length tasks then Metrics.now () else 0.
    in
    while p.completed < Array.length tasks do
      Condition.wait p.done_cv p.m
    done;
    (match cells with
    | Some c when t0 > 0. -> Metrics.observe_since c.pc_wait t0
    | _ -> ());
    p.cells <- None;
    p.tasks <- [||];
    Mutex.unlock p.m

let shutdown p =
  Mutex.lock p.m;
  p.stop <- true;
  Condition.broadcast p.work_cv;
  Mutex.unlock p.m;
  List.iter Domain.join p.workers;
  p.workers <- []

(* Process-wide pools keyed by lane count. OCaml caps live domains (128
   in 5.1), and a pool's workers stay alive until [shutdown] — so code
   that makes many engines (fault sweeps spawn one per poke site) must
   share pools rather than spawn per engine. The engine's parallel
   settle serializes rounds through [run_m], so two engines sharing a
   pool settle one after the other. *)
let shared_m = Mutex.create ()
let shared_pools : (int, t) Hashtbl.t = Hashtbl.create 4

let shared ~lanes =
  if lanes < 1 then invalid_arg "Pool.shared: lanes must be >= 1";
  Mutex.lock shared_m;
  let p =
    match Hashtbl.find_opt shared_pools lanes with
    | Some p -> p
    | None ->
      let p = create ~lanes in
      Hashtbl.replace shared_pools lanes p;
      p
  in
  Mutex.unlock shared_m;
  p
