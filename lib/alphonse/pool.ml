(* Reusable domain pool.  One mutex guards the whole round state; tasks
   run with the mutex released.  Workers sleep on [work_cv] between
   rounds and the caller sleeps on [done_cv] until the round drains, so
   an idle pool burns no cycles.  The round counter (not the task
   array) is the wake-up signal: a worker that saw round [r] sleeps
   until [round <> r], which survives spurious wake-ups and makes the
   array swap race-free (the array is published under the same mutex
   that publishes the round increment). *)

type t = {
  n_lanes : int;
  run_m : Mutex.t; (* serializes whole rounds (shared pools) *)
  m : Mutex.t;
  work_cv : Condition.t; (* workers: a new round was posted *)
  done_cv : Condition.t; (* caller: the current round drained *)
  mutable round : int;
  mutable tasks : (unit -> unit) array;
  mutable next : int; (* first unclaimed task index *)
  mutable completed : int;
  mutable stop : bool;
  mutable workers : unit Domain.t list; (* lane order *)
  mutable wids : int list; (* domain ids, lane order *)
}

(* Claim-and-run loop shared by workers and the caller.  Entered and
   left with [p.m] held. *)
let drain p =
  let len = Array.length p.tasks in
  while p.next < len do
    let i = p.next in
    p.next <- i + 1;
    Mutex.unlock p.m;
    (try p.tasks.(i) () with _ -> ());
    Mutex.lock p.m;
    p.completed <- p.completed + 1;
    if p.completed = len then Condition.broadcast p.done_cv
  done

let worker_body p () =
  let seen = ref 0 in
  Mutex.lock p.m;
  let rec loop () =
    if p.stop then Mutex.unlock p.m
    else if p.round = !seen then begin
      Condition.wait p.work_cv p.m;
      loop ()
    end
    else begin
      seen := p.round;
      drain p;
      loop ()
    end
  in
  loop ()

let create ~lanes =
  if lanes < 1 then invalid_arg "Pool.create: lanes must be >= 1";
  let p =
    {
      n_lanes = lanes;
      run_m = Mutex.create ();
      m = Mutex.create ();
      work_cv = Condition.create ();
      done_cv = Condition.create ();
      round = 0;
      tasks = [||];
      next = 0;
      completed = 0;
      stop = false;
      workers = [];
      wids = [];
    }
  in
  let workers = List.init (lanes - 1) (fun _ -> Domain.spawn (worker_body p)) in
  p.workers <- workers;
  p.wids <- List.map (fun d -> (Domain.get_id d :> int)) workers;
  p

let lanes p = p.n_lanes
let worker_ids p = p.wids

let run p task_list =
  match task_list with
  | [] -> ()
  | _ ->
    (* whole-round serialization: shared pools can be reached by two
       engines (or two settles) at once; rounds must not interleave *)
    Mutex.lock p.run_m;
    let finally () = Mutex.unlock p.run_m in
    Fun.protect ~finally @@ fun () ->
    let tasks = Array.of_list task_list in
    Mutex.lock p.m;
    p.tasks <- tasks;
    p.next <- 0;
    p.completed <- 0;
    p.round <- p.round + 1;
    Condition.broadcast p.work_cv;
    drain p;
    while p.completed < Array.length tasks do
      Condition.wait p.done_cv p.m
    done;
    p.tasks <- [||];
    Mutex.unlock p.m

let shutdown p =
  Mutex.lock p.m;
  p.stop <- true;
  Condition.broadcast p.work_cv;
  Mutex.unlock p.m;
  List.iter Domain.join p.workers;
  p.workers <- []

(* Process-wide pools keyed by lane count. OCaml caps live domains (128
   in 5.1), and a pool's workers stay alive until [shutdown] — so code
   that makes many engines (fault sweeps spawn one per poke site) must
   share pools rather than spawn per engine. The engine's parallel
   settle serializes rounds through [run_m], so two engines sharing a
   pool settle one after the other. *)
let shared_m = Mutex.create ()
let shared_pools : (int, t) Hashtbl.t = Hashtbl.create 4

let shared ~lanes =
  if lanes < 1 then invalid_arg "Pool.shared: lanes must be >= 1";
  Mutex.lock shared_m;
  let p =
    match Hashtbl.find_opt shared_pools lanes with
    | Some p -> p
    | None ->
      let p = create ~lanes in
      Hashtbl.replace shared_pools lanes p;
      p
  in
  Mutex.unlock shared_m;
  p
