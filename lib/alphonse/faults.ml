(* Deterministic fault injection for the engine (the test half lives in
   test/test_faults.ml). The engine pokes its installed fault hook at
   every decision point — [Engine.fault_sites] — and a hook that raises
   models a crash there: an allocation failure, a cancellation, a bug in
   engine-adjacent code. The injectors below are deterministic (counted
   or seeded with splitmix64), so every failing schedule is replayable
   from a seed. *)

exception Injected of string
exception Killed of string

let sites = Engine.fault_sites

(* ------------------------------------------------------------------ *)
(* Engine-independent kill hooks                                        *)
(* ------------------------------------------------------------------ *)

(* The durability layer ([Wal], [Durable]) hosts its own crash sites —
   mid-frame, pre-fsync, pre-rename — through a plain [string -> unit]
   hook, so the combinators below build hooks without touching an
   engine. A raised [Killed] models the process dying at that byte
   offset: the test harness abandons the in-memory state entirely and
   recovers from disk, like a restarted process would. *)

let kill_nth ?only n =
  if n < 1 then invalid_arg "Faults.kill_nth";
  let seen = ref 0 in
  let fired = ref false in
  let hook site =
    if (not !fired) && (match only with None -> true | Some s -> s = site)
    then begin
      incr seen;
      if !seen = n then begin
        fired := true;
        raise (Killed site)
      end
    end
  in
  (hook, fired)

let counting_hook () =
  let tbl : (string, int ref) Hashtbl.t = Hashtbl.create 8 in
  let hook site =
    match Hashtbl.find_opt tbl site with
    | Some r -> incr r
    | None -> Hashtbl.replace tbl site (ref 1)
  in
  let read () =
    Hashtbl.fold (fun site r acc -> (site, !r) :: acc) tbl []
    |> List.sort compare
  in
  (hook, read)

let clear eng = Engine.set_fault_hook eng None

(* ------------------------------------------------------------------ *)
(* Counting: observe a run's decision points without perturbing it      *)
(* ------------------------------------------------------------------ *)

let count eng f =
  let tbl : (string, int ref) Hashtbl.t = Hashtbl.create 8 in
  let hook site =
    match Hashtbl.find_opt tbl site with
    | Some r -> incr r
    | None -> Hashtbl.replace tbl site (ref 1)
  in
  let saved = Engine.fault_hook eng in
  Engine.set_fault_hook eng (Some hook);
  let finally () = Engine.set_fault_hook eng saved in
  let v = Fun.protect ~finally f in
  let counts =
    Hashtbl.fold (fun site r acc -> (site, !r) :: acc) tbl []
    |> List.sort compare
  in
  (v, counts)

let total counts = List.fold_left (fun acc (_, n) -> acc + n) 0 counts

(* ------------------------------------------------------------------ *)
(* Counted one-shot injection                                           *)
(* ------------------------------------------------------------------ *)

(* [inject_nth eng ?only n] arms a hook raising [Injected site] at the
   [n]-th poke (1-based; pokes of other sites don't count when [only] is
   given), exactly once. Returns a flag telling whether it ever fired —
   a sweep uses it to know when it has walked past the end of a run. *)
(* Injection counters resolve from the engine's registry at arm time —
   once per injector, never per poke. The engine's own poke site stays
   uninstrumented so a fired fault is counted exactly once, here. *)
let injection_counter eng =
  match Engine.metrics eng with
  | None -> None
  | Some reg ->
    Some
      (Metrics.counter reg "fault_injections_total"
         ~help:"faults fired by the seeded/counted injectors")

let inject_nth eng ?only n =
  if n < 1 then invalid_arg "Faults.inject_nth";
  let seen = ref 0 in
  let fired = ref false in
  let cell = injection_counter eng in
  let hook site =
    if (not !fired) && (match only with None -> true | Some s -> s = site)
    then begin
      incr seen;
      if !seen = n then begin
        fired := true;
        (match cell with None -> () | Some c -> Metrics.inc c);
        raise (Injected site)
      end
    end
  in
  Engine.set_fault_hook eng (Some hook);
  fired

(* ------------------------------------------------------------------ *)
(* Seeded injection (splitmix64)                                        *)
(* ------------------------------------------------------------------ *)

let splitmix64 state =
  let open Int64 in
  state := add !state 0x9E3779B97F4A7C15L;
  let z = !state in
  let z = mul (logxor z (shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = mul (logxor z (shift_right_logical z 27)) 0x94D049BB133111EBL in
  logxor z (shift_right_logical z 31)

(* uniform in [0, 1): the top 53 bits of one splitmix64 draw *)
let uniform state =
  Int64.to_float (Int64.shift_right_logical (splitmix64 state) 11)
  *. (1.0 /. 9007199254740992.0)

(* [install_seeded eng ~seed ~rate ()] arms a deterministic
   pseudo-random injector: each poke independently raises with
   probability [rate]. [max_faults] (default unlimited) bounds how many
   faults fire in total — recovery tests use 1 to keep each run a
   single-fault experiment while still sampling the site randomly. *)
let install_seeded eng ~seed ?(rate = 0.01) ?max_faults () =
  if not (rate >= 0. && rate <= 1.) then
    invalid_arg "Faults.install_seeded: rate must be in [0, 1]";
  let state = ref (Int64.of_int seed) in
  let fired = ref 0 in
  let cell = injection_counter eng in
  let hook site =
    let budget_left =
      match max_faults with None -> true | Some m -> !fired < m
    in
    if budget_left && uniform state < rate then begin
      incr fired;
      (match cell with None -> () | Some c -> Metrics.inc c);
      raise (Injected site)
    end
  in
  Engine.set_fault_hook eng (Some hook);
  fired

(* ------------------------------------------------------------------ *)
(* Telemetry-driven site selection                                      *)
(* ------------------------------------------------------------------ *)

(* [pick ~seed counts n]: [n] deterministic injection points [(site,
   k)] — "fail at the k-th poke of this site" — drawn from the observed
   per-site counts of a clean run (from {!count}, or folded out of a
   telemetry stream), weighted by how often each site is actually hit.
   Feed each point back through {!inject_nth} for a replayable
   experiment. *)
let pick ~seed counts n =
  let counts = List.filter (fun (_, c) -> c > 0) counts in
  let tot = total counts in
  if tot = 0 || n <= 0 then []
  else begin
    let state = ref (Int64.of_int seed) in
    List.init n (fun _ ->
        let target = 1 + int_of_float (uniform state *. float_of_int tot) in
        let target = min target tot in
        let rec locate acc = function
          | [] -> assert false
          | (site, c) :: rest ->
            if target <= acc + c then (site, target - acc) else locate (acc + c) rest
        in
        locate 0 counts)
  end
