(** Flight recorder: always-on incident reports.

    The bounded telemetry ring already holds "the last N things the
    engine did"; this module turns it into a flight recorder. {!arm}
    chains a sink onto a {!Telemetry} recorder that watches for
    anomalous events — a quarantine, a poisoning, a watchdog
    degradation, a degraded crash recovery — and, when one fires,
    writes an {e incident report}: a timestamped JSON file carrying the
    trigger, the tail of the event window, a metrics snapshot (when a
    registry is supplied) and the {!Telemetry.why_recomputed}
    provenance chain of the failed node.

    Steady-state cost while armed is one sink call per event; file I/O
    happens only when something has already gone wrong. Reports are
    capped so a crash loop cannot fill the disk. *)

type t

val arm :
  ?metrics:Metrics.t ->
  ?dir:string ->
  ?last:int ->
  ?max_reports:int ->
  ?on_report:(string -> unit) ->
  Telemetry.t ->
  t
(** [arm tm] installs the incident sink, chaining onto (not replacing)
    any sink already set on [tm]. Reports land in [dir] (default
    ["incidents"], created on first incident) as
    [incident-<UTC-stamp>-<seq>.json], schema ["alphonse-incident/1"].
    [last] (default 256) bounds how many trailing events each report
    embeds; [max_reports] (default 16) caps reports per armed recorder.
    [on_report] is called with each written file's path (the CLI prints
    a notice). Reporting failures (e.g. an unwritable [dir]) are
    swallowed — the flight recorder never takes the engine down. *)

val triggers : string list
(** The trigger kinds a report's ["trigger"."kind"] field can carry. *)

val reports : t -> string list
(** Paths written so far, oldest first. *)

val written : t -> int
val dir : t -> string
