(* alphonsed: a long-running multi-tenant host for Alphonse engines.
   Connections speak newline-delimited JSON over the [Serve] listener;
   each request names a tenant and carries a batch of domain ops that
   run atomically ([Engine.transact]) under an [Engine.Budget]. The
   daemon's job is to keep answering under hostile load:

   - admission control: a bounded global in-flight count and a bounded
     per-tenant pending count; both full queues shed with a 503 +
     [retry_after_ms] instead of queueing without bound;
   - a max-concurrent-settles gate (counting semaphore) so a burst of
     heavy batches cannot oversubscribe the machine;
   - per-tenant supervision (see [Tenant]): a crashing tenant restarts
     from its own WAL behind exponential backoff, a flapping one is
     parked by its circuit breaker — 503 for that tenant only;
   - deadlines: a batch that outlives its budget is cancelled at a
     settle-step boundary and rolled back — 408, state unchanged;
   - SIGTERM drain: stop accepting, finish in-flight requests,
     checkpoint every tenant, return.

   Concurrency model: one OS thread per connection (requests on a
   connection are pipelined in order), per-tenant batches serialized by
   the tenant lock, admission counters under one daemon mutex. *)

module Log = (val Logs.src_log (Logs.Src.create "alphonse.daemon"))

type config = {
  d_host : string;
  d_port : int;  (** NDJSON protocol port; 0 picks a free one *)
  d_metrics_port : int option;  (** HTTP health/metrics; 0 picks *)
  d_root : string;
  d_durable : bool;
  d_wal_policy : Wal.policy;
  d_max_tenants : int;
  d_tenant_queue : int;
  d_global_queue : int;
  d_max_settles : int;
  d_default_deadline : float option;  (** seconds; None = no deadline *)
  d_max_restarts : int;
  d_backoff_base : float;
  d_backoff_cap : float;
  d_cooldown : float;
  d_seed : int;
  d_conn_timeout : float;  (** per-connection socket timeout, seconds *)
  d_drain_grace : float;  (** max seconds to wait for in-flight on drain *)
}

let default_config ~root () =
  {
    d_host = "127.0.0.1";
    d_port = 0;
    d_metrics_port = None;
    d_root = root;
    d_durable = true;
    d_wal_policy = Wal.Commit;
    d_max_tenants = 4096;
    d_tenant_queue = 16;
    d_global_queue = 1024;
    d_max_settles = 8;
    d_default_deadline = Some 30.0;
    d_max_restarts = 5;
    d_backoff_base = 0.05;
    d_backoff_cap = 5.0;
    d_cooldown = 30.0;
    d_seed = 0;
    d_conn_timeout = 30.0;
    d_drain_grace = 30.0;
  }

type entry = { e_tenant : Tenant.t; mutable e_pending : int }

type cells = {
  dm_req : (int * Metrics.counter) list;  (** by status code *)
  dm_req_other : Metrics.counter;
  dm_shed_global : Metrics.counter;
  dm_shed_tenant : Metrics.counter;
  dm_cancelled : Metrics.counter;
  dm_batch_seconds : Metrics.histogram;
  dm_tenants : Metrics.gauge;
  dm_inflight : Metrics.gauge;
}

type t = {
  cfg : config;
  w : Tenant.workload;
  reg : Metrics.t;
  listener : Serve.t;
  mutable http : Serve.t option;
  tenants : (string, entry) Hashtbl.t;
  lock : Mutex.t;  (** guards [tenants], the counters, [draining] *)
  idle : Condition.t;  (** signalled when an in-flight request retires *)
  settle_gate : Semaphore.Counting.t;
  mutable inflight : int;
  mutable draining : bool;
  mutable recovered : bool;  (** preload of existing tenant dirs finished *)
  mutable served : int;  (** requests answered (any status) *)
  cells : cells;
}

let tenant_cfg (cfg : config) reg : Tenant.config =
  {
    c_root = cfg.d_root;
    c_durable = cfg.d_durable;
    c_wal_policy = cfg.d_wal_policy;
    c_max_restarts = cfg.d_max_restarts;
    c_backoff_base = cfg.d_backoff_base;
    c_backoff_cap = cfg.d_backoff_cap;
    c_cooldown = cfg.d_cooldown;
    c_seed = cfg.d_seed;
    c_metrics = Some reg;
  }

let locked t f =
  Mutex.lock t.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.lock) f

(* ------------------------------------------------------------------ *)
(* Health surface                                                      *)
(* ------------------------------------------------------------------ *)

let ready t = t.recovered && not t.draining

let tenant_statuses t =
  let now = Unix.gettimeofday () in
  let rows =
    locked t @@ fun () ->
    Hashtbl.fold (fun id e acc -> (id, e.e_tenant) :: acc) t.tenants []
  in
  let rows = List.sort (fun (a, _) (b, _) -> compare a b) rows in
  List.map
    (fun (id, tn) ->
      let status, retry =
        match Tenant.status tn ~now with
        | Tenant.Serving -> ("serving", None)
        | Tenant.Backoff s -> ("backoff", Some s)
        | Tenant.Parked s -> ("parked", Some s)
        | Tenant.Stopped -> ("stopped", None)
      in
      Json.Obj
        ([
           ("tenant", Json.Str id);
           ("status", Json.Str status);
           ("crashes", Json.Num (float_of_int (Tenant.crashes tn)));
           ("restarts", Json.Num (float_of_int (Tenant.restarts tn)));
         ]
        @ (match retry with
          | None -> []
          | Some s -> [ ("retry_after_ms", Json.Num (Float.round (s *. 1000.))) ])
        ))
    rows

let routes t =
  [
    ("/metrics", fun () -> Serve.text (Metrics.to_prometheus t.reg));
    ( "/metrics.json",
      fun () -> Serve.json (Json.to_string (Metrics.to_json t.reg)) );
    ( "/healthz",
      fun () ->
        Serve.text
          (Printf.sprintf "ok\ntenants %d\nserved %d\n"
             (locked t (fun () -> Hashtbl.length t.tenants))
             t.served) );
    ( "/readyz",
      fun () ->
        if ready t then Serve.text "ready\n"
        else if t.draining then Serve.text ~status:503 "draining\n"
        else Serve.text ~status:503 "recovering\n" );
    ( "/tenantz",
      fun () -> Serve.json (Json.to_string (Json.Arr (tenant_statuses t))) );
  ]

(* ------------------------------------------------------------------ *)
(* Construction                                                        *)
(* ------------------------------------------------------------------ *)

let create ?metrics cfg w =
  if cfg.d_max_settles < 1 then
    invalid_arg "Daemon.create: d_max_settles must be >= 1";
  if cfg.d_global_queue < 1 || cfg.d_tenant_queue < 1 then
    invalid_arg "Daemon.create: queue bounds must be >= 1";
  let reg = match metrics with Some r -> r | None -> Metrics.create () in
  let listener =
    Serve.create_raw ~host:cfg.d_host ~timeout:cfg.d_conn_timeout
      ~port:cfg.d_port ()
  in
  Serve.set_metrics listener (Some reg);
  let c name help = Metrics.counter reg name ~help in
  let req code =
    Metrics.counter reg "daemon_requests_total"
      ~labels:[ ("code", string_of_int code) ]
      ~help:"requests answered, by status code"
  in
  let cells =
    {
      dm_req = List.map (fun code -> (code, req code)) [ 200; 400; 408; 503 ];
      dm_req_other =
        Metrics.counter reg "daemon_requests_total"
          ~labels:[ ("code", "other") ]
          ~help:"requests answered, by status code";
      dm_shed_global =
        Metrics.counter reg "daemon_shed_total"
          ~labels:[ ("scope", "global") ]
          ~help:"requests shed by a full queue";
      dm_shed_tenant =
        Metrics.counter reg "daemon_shed_total"
          ~labels:[ ("scope", "tenant") ]
          ~help:"requests shed by a full queue";
      dm_cancelled =
        c "daemon_cancellations_total"
          "batches cancelled by their budget (rolled back)";
      dm_batch_seconds =
        Metrics.histogram reg "daemon_batch_seconds"
          ~help:"request latency, admission to response";
      dm_tenants = Metrics.gauge reg "daemon_tenants" ~help:"live tenants";
      dm_inflight =
        Metrics.gauge reg "daemon_inflight" ~help:"requests in flight";
    }
  in
  let t =
    {
      cfg;
      w;
      reg;
      listener;
      http = None;
      tenants = Hashtbl.create 64;
      lock = Mutex.create ();
      idle = Condition.create ();
      settle_gate = Semaphore.Counting.make cfg.d_max_settles;
      inflight = 0;
      draining = false;
      recovered = false;
      served = 0;
      cells;
    }
  in
  (* the health routes close over [t], so the HTTP side binds second *)
  (match cfg.d_metrics_port with
  | None -> ()
  | Some p ->
    let h = Serve.create ~host:cfg.d_host ~port:p (routes t) in
    Serve.set_metrics h (Some t.reg);
    t.http <- Some h);
  t

let port t = Serve.port t.listener
let metrics_port t = Option.map Serve.port t.http
let metrics t = t.reg

(* ------------------------------------------------------------------ *)
(* Tenants                                                             *)
(* ------------------------------------------------------------------ *)

let find_tenant t id =
  locked t @@ fun () ->
  match Hashtbl.find_opt t.tenants id with
  | Some e -> Some e.e_tenant
  | None -> None

let tenant_ids t =
  locked t @@ fun () ->
  List.sort compare (Hashtbl.fold (fun id _ acc -> id :: acc) t.tenants [])

(* Get-or-create under the daemon lock. Creation recovers the tenant
   from its directory, so a restarted daemon serves a tenant's first
   request from its journaled state even before [preload] reaches it. *)
let get_tenant t id =
  locked t @@ fun () ->
  match Hashtbl.find_opt t.tenants id with
  | Some e -> Ok e
  | None ->
    if Hashtbl.length t.tenants >= t.cfg.d_max_tenants then
      Error
        (`Unavailable ("tenant capacity " ^ string_of_int t.cfg.d_max_tenants))
    else if not (Tenant.valid_id id) then Error `Bad_id
    else begin
      let e =
        { e_tenant = Tenant.create (tenant_cfg t.cfg t.reg) t.w ~id;
          e_pending = 0 }
      in
      Hashtbl.replace t.tenants id e;
      Metrics.set t.cells.dm_tenants (float_of_int (Hashtbl.length t.tenants));
      Ok e
    end

(* Recover every tenant directory found under the state root. Runs
   before the daemon reports ready: a restarted daemon gates traffic
   ([/readyz] 503) until each tenant has been recovered. *)
let preload t =
  let tdir = Filename.concat t.cfg.d_root "tenants" in
  let ids =
    match Sys.readdir tdir with
    | entries ->
      Array.to_list entries
      |> List.filter (fun id ->
             Tenant.valid_id id
             && Sys.is_directory (Filename.concat tdir id))
      |> List.sort compare
    | exception _ -> []
  in
  List.iter
    (fun id ->
      match get_tenant t id with
      | Ok _ -> Log.info (fun m -> m "preloaded tenant %s" id)
      | Error _ -> Log.warn (fun m -> m "preload failed for tenant %s" id))
    ids;
  t.recovered <- true;
  List.length ids

(* ------------------------------------------------------------------ *)
(* Requests                                                            *)
(* ------------------------------------------------------------------ *)

let count_status t code =
  t.served <- t.served + 1;
  match List.assoc_opt code t.cells.dm_req with
  | Some c -> Metrics.inc c
  | None -> Metrics.inc t.cells.dm_req_other

let reply t ?id ?(extra = []) code =
  count_status t code;
  let idf = match id with None -> [] | Some v -> [ ("id", v) ] in
  Json.Obj (idf @ (("status", Json.Num (float_of_int code)) :: extra))

let err t ?id code msg ~retry_after:ra =
  let extra =
    [ ("error", Json.Str msg) ]
    @
    match ra with
    | None -> []
    | Some s ->
      [ ("retry_after_ms", Json.Num (Float.max 1. (Float.round (s *. 1000.)))) ]
  in
  reply t ?id ~extra code

(* Admission: reserve a slot in the global and the per-tenant queue, or
   shed. Returns a release closure that must run exactly once. *)
let admit t entry =
  locked t @@ fun () ->
  if t.inflight >= t.cfg.d_global_queue then begin
    Metrics.inc t.cells.dm_shed_global;
    Error (`Shed_global t.inflight)
  end
  else if entry.e_pending >= t.cfg.d_tenant_queue then begin
    Metrics.inc t.cells.dm_shed_tenant;
    Error (`Shed_tenant entry.e_pending)
  end
  else begin
    t.inflight <- t.inflight + 1;
    entry.e_pending <- entry.e_pending + 1;
    Metrics.set t.cells.dm_inflight (float_of_int t.inflight);
    Ok
      (fun () ->
        locked t @@ fun () ->
        t.inflight <- t.inflight - 1;
        entry.e_pending <- entry.e_pending - 1;
        Metrics.set t.cells.dm_inflight (float_of_int t.inflight);
        if t.inflight = 0 then Condition.broadcast t.idle)
  end

(* Sheds quote a retry hint proportional to the congestion they saw:
   deeper queues get longer hints, bounded to keep retries live. *)
let retry_hint depth = Float.min 2.0 (0.05 *. float_of_int (max 1 depth))

let submit t req =
  let id = Json.member "id" req in
  if t.draining then err t ?id 503 "draining" ~retry_after:(Some 1.0)
  else
    match Json.member "op" req with
    | Some (Json.Str "ping") ->
      reply t ?id ~extra:[ ("pong", Json.Bool true) ] 200
    | Some _ -> err t ?id 400 "unknown daemon op" ~retry_after:None
    | None -> (
      match Option.bind (Json.member "tenant" req) Json.to_str with
      | None -> err t ?id 400 "missing tenant" ~retry_after:None
      | Some tid when not (Tenant.valid_id tid) ->
        err t ?id 400 "invalid tenant id" ~retry_after:None
      | Some tid -> (
        let ops =
          match Option.bind (Json.member "ops" req) Json.to_list with
          | Some l -> l
          | None -> []
        in
        match get_tenant t tid with
        | Error `Bad_id -> err t ?id 400 "invalid tenant id" ~retry_after:None
        | Error (`Unavailable msg) ->
          err t ?id 503 msg ~retry_after:(Some 1.0)
        | Ok entry -> (
          match admit t entry with
          | Error (`Shed_global depth) ->
            err t ?id 503 "overloaded: global queue full"
              ~retry_after:(Some (retry_hint depth))
          | Error (`Shed_tenant depth) ->
            err t ?id 503
              ("overloaded: tenant queue full for " ^ tid)
              ~retry_after:(Some (retry_hint depth))
          | Ok release ->
            Fun.protect ~finally:release @@ fun () ->
            let t0 = Metrics.now () in
            Fun.protect
              ~finally:(fun () ->
                Metrics.observe_since t.cells.dm_batch_seconds t0)
            @@ fun () ->
            let now = Unix.gettimeofday () in
            let deadline =
              match
                Option.bind (Json.member "deadline_ms" req) Json.to_float
              with
              | Some ms -> Some (now +. (ms /. 1000.))
              | None -> (
                match t.cfg.d_default_deadline with
                | Some s -> Some (now +. s)
                | None -> None)
            in
            let max_steps =
              Option.bind (Json.member "max_steps" req) Json.to_float
              |> Option.map int_of_float
            in
            let budget =
              match (deadline, max_steps) with
              | None, None -> None
              | _ -> Some (Engine.Budget.create ?deadline ?max_steps ())
            in
            (* the settle gate bounds concurrent batch execution; time
               spent waiting here still counts against the deadline *)
            Semaphore.Counting.acquire t.settle_gate;
            Fun.protect
              ~finally:(fun () -> Semaphore.Counting.release t.settle_gate)
            @@ fun () ->
            let now = Unix.gettimeofday () in
            match deadline with
            | Some d when now > d ->
              Metrics.inc t.cells.dm_cancelled;
              err t ?id 408 "deadline exceeded in queue" ~retry_after:None
            | _ -> (
              match Tenant.submit entry.e_tenant ?budget ~now ops with
              | Ok results ->
                reply t ?id ~extra:[ ("results", Json.Arr results) ] 200
              | Error (Tenant.Cancelled msg) ->
                Metrics.inc t.cells.dm_cancelled;
                err t ?id 408 msg ~retry_after:None
              | Error (Tenant.Rejected msg) ->
                err t ?id 400 msg ~retry_after:None
              | Error (Tenant.Unavailable { reason; retry_after }) ->
                err t ?id 503 reason ~retry_after:(Some retry_after)))))

(* ------------------------------------------------------------------ *)
(* Connections                                                         *)
(* ------------------------------------------------------------------ *)

let handle_conn t fd =
  let ic = Unix.in_channel_of_descr fd in
  let rec loop () =
    match input_line ic with
    | line ->
      let line = String.trim line in
      if line <> "" then begin
        let resp =
          match Json.of_string_opt line with
          | None -> err t 400 "bad json" ~retry_after:None
          | Some req -> ( try submit t req with _ -> reply t 500)
        in
        Serve.write_all fd (Json.to_string resp ^ "\n")
      end;
      loop ()
    | exception End_of_file -> ()
    | exception _ -> ()
  in
  loop ()

let drain t =
  (* async-signal-safe enough: a flag write plus closing the listener
     (which wakes the blocked accept); the run loop does the waiting *)
  t.draining <- true;
  Serve.close t.listener

(* Wait for in-flight requests to retire, at most [d_drain_grace]
   seconds. A ticker thread pokes the condition so the wait cannot hang
   on a wedged request. *)
let wait_idle t =
  let deadline = Unix.gettimeofday () +. t.cfg.d_drain_grace in
  let ticker =
    Thread.create
      (fun () ->
        while
          Unix.gettimeofday () < deadline
          && locked t (fun () -> t.inflight > 0)
        do
          Thread.delay 0.1;
          locked t (fun () -> Condition.broadcast t.idle)
        done)
      ()
  in
  Mutex.lock t.lock;
  while t.inflight > 0 && Unix.gettimeofday () < deadline do
    Condition.wait t.idle t.lock
  done;
  let leftover = t.inflight in
  Mutex.unlock t.lock;
  Thread.join ticker;
  if leftover > 0 then
    Log.warn (fun m -> m "drain: %d request(s) still in flight" leftover)

let checkpoint_all t =
  let tenants =
    locked t @@ fun () ->
    Hashtbl.fold (fun _ e acc -> e.e_tenant :: acc) t.tenants []
  in
  List.iter
    (fun tn ->
      try Tenant.stop tn
      with e ->
        Log.warn (fun m ->
            m "checkpoint of tenant %s failed: %s" (Tenant.id tn)
              (Printexc.to_string e)))
    tenants

let run t =
  (match t.http with
  | None -> ()
  | Some h ->
    ignore
      (Thread.create (fun () -> try Serve.serve_forever h with _ -> ()) ()
        : Thread.t));
  let n = preload t in
  Log.info (fun m ->
      m "alphonsed: serving on %s:%d (%d tenant(s) recovered)" t.cfg.d_host
        (port t) n);
  let rec loop () =
    match Serve.accept t.listener with
    | None -> ()
    | Some fd ->
      ignore
        (Thread.create
           (fun () ->
             Fun.protect
               ~finally:(fun () -> try Unix.close fd with _ -> ())
               (fun () -> try handle_conn t fd with _ -> ()))
           ()
          : Thread.t);
      loop ()
  in
  loop ();
  t.draining <- true;
  Log.info (fun m -> m "alphonsed: draining (%d in flight)" t.inflight);
  wait_idle t;
  checkpoint_all t;
  (match t.http with Some h -> Serve.close h | None -> ());
  Log.info (fun m -> m "alphonsed: drained, %d request(s) served" t.served)

let start t = Thread.create (fun () -> run t) ()

let install_signal_handlers t =
  let handler _ = drain t in
  (try Sys.set_signal Sys.sigterm (Sys.Signal_handle handler) with _ -> ());
  try Sys.set_signal Sys.sigint (Sys.Signal_handle handler) with _ -> ()

let served t = t.served
let inflight t = locked t @@ fun () -> t.inflight
let draining t = t.draining
