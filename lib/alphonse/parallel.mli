(** Parallel propagation — level-synchronized settling on OCaml 5
    domains.

    The serial evaluator (§4.5) drains the inconsistent set one node at
    a time. This façade exposes the engine's parallel evaluator, which
    drains it {e level by level}: each round takes the queued nodes at
    minimal longest-path depth over the affected subgraph — mutually
    independent by construction, since a dependency edge between two
    queued nodes forces them onto distinct levels, and a writer of a
    storage cell levels strictly below the cell's other readers — and
    executes them concurrently on a reusable domain pool
    ({!Alphonse.Pool}). Workers buffer every engine mutation; a
    per-level merge barrier applies the buffers in lane order, keeping
    propagation deterministic and Theorem 5.1 intact under any domain
    count.

    Two ways to use it:
    - create the engine with [~scheduling:(Engine.Parallel { domains })]
      and every [Engine.stabilize] (and the settle inside each call and
      transaction) runs parallel;
    - keep serial scheduling and invoke {!settle} explicitly for chosen
      settles. *)

val scheduling : domains:int -> Engine.scheduling
(** [scheduling ~domains] is [Engine.Parallel { domains }] after
    validating [domains >= 1]. The caller's domain is one of the lanes:
    [domains = 1] spawns no worker and serializes through the parallel
    machinery; [domains = n] spawns [n - 1] workers. *)

val settle : Engine.t -> domains:int -> unit
(** [settle eng ~domains] settles to quiescence with the parallel
    evaluator regardless of the engine's configured scheduling —
    {!Engine.settle_parallel}. Falls back to the serial evaluator when
    called during an incremental execution. *)

val levels : Engine.t -> Engine.node list list
(** The level fronts the next parallel settle would execute, shallowest
    first ({!Engine.dirty_levels}). Empty when quiescent. The sum of
    widths is the queued-node count; the list length bounds the
    critical path of the pending propagation (the denominator of the
    E15 parallel-speedup estimate — see [Inspect.parallel_profile]). *)

val max_width : Engine.t -> int
(** Widest pending level front: the instantaneous parallelism available
    to the next settle. 0 when quiescent. *)
