(** The interprocedural call graph of a checked Alphonse-L module.

    Method calls are resolved to {e every} implementation dynamic
    dispatch could select: all implementations found in the static
    receiver type's subtree (sound for our single-dispatch language —
    the same resolution rule the §6.1 analysis uses). The module body —
    the mutator — appears as the synthetic caller {!main_name}; global
    initializers run before the body, so their calls are attributed to
    it too.

    Every resolved call site also records whether it is an {e identity}
    call: one passing the caller's own parameters through, in order and
    unchanged. A cycle of identity calls between incremental procedures
    re-enters the same argument table entry and is a guaranteed
    [Engine.Cycle] at run time; the lint rule ALF003 is built on this
    classification. *)

open Lang.Ast
module Tc = Lang.Typecheck

let main_name = "<main>"

let subclasses (env : Tc.env) cls =
  Hashtbl.fold
    (fun name _ acc -> if Tc.is_subclass env name cls then name :: acc else acc)
    env.classes []

(** Every implementation a call [recv.m(…)] with static receiver type
    [cls] can dispatch to. *)
let dispatch_targets env cls mname =
  List.filter_map
    (fun sub -> Tc.lookup_method env sub mname)
    (subclasses env cls)

(** Does some dispatch target of this method carry a pragma? *)
let method_may_be_incremental env cls mname =
  List.exists
    (fun (mi : Tc.method_info) -> mi.mi_pragma <> None)
    (dispatch_targets env cls mname)

(** Implementing procedure ↦ its effective pragma: cached procedures
    plus the implementations bound by maintained/cached methods and
    overrides (pragma inheritance applied). *)
let incremental_procs (env : Tc.env) : (string, pragma) Hashtbl.t =
  let tbl = Hashtbl.create 8 in
  List.iter
    (fun (pd : proc_decl) ->
      match pd.ppragma with
      | Some p -> Hashtbl.replace tbl pd.pname p
      | None -> ())
    env.m.procs;
  Hashtbl.iter
    (fun _ (ci : Tc.class_info) ->
      List.iter
        (fun (_, (mi : Tc.method_info)) ->
          match mi.mi_pragma with
          | Some p -> Hashtbl.replace tbl mi.mi_impl p
          | None -> ())
        ci.ci_methods)
    env.classes;
  tbl

(* Pre-order walk of one expression's subtree. *)
let rec iter_expr f e =
  f e;
  match e.desc with
  | Int _ | Bool _ | Text _ | Nil | Var _ | New _ -> ()
  | Field (b, _) -> iter_expr f b
  | Index (b, i) ->
    iter_expr f b;
    iter_expr f i
  | Call (callee, args) ->
    (match callee with Cmethod (o, _) -> iter_expr f o | Cproc _ -> ());
    List.iter (iter_expr f) args
  | Binop (_, a, b) ->
    iter_expr f a;
    iter_expr f b
  | Unop (_, a) | Unchecked a -> iter_expr f a

type call_site = {
  cs_caller : string;  (** procedure name, or {!main_name} *)
  cs_target : string;  (** resolved implementing procedure *)
  cs_pos : pos;
  cs_identity : bool;
      (** the full argument vector (receiver included for method calls)
          is exactly the caller's parameter list, in order *)
}

(* Is [args] (receiver consed on for method calls) the caller's own
   parameter vector, passed through verbatim? *)
let identity_args (params : (string * ty) list) args =
  List.length params = List.length args
  && List.for_all2
       (fun (pname, _) (a : expr) ->
         match a.desc with Var x -> x = pname && not a.note.is_global | _ -> false)
       params args

let call_sites (env : Tc.env) : call_site list =
  let sites = ref [] in
  let emit ~caller ~params e =
    let record target identity =
      if Hashtbl.mem env.procs target then
        sites :=
          { cs_caller = caller; cs_target = target; cs_pos = e.pos;
            cs_identity = identity }
          :: !sites
    in
    match e.desc with
    | Call (Cproc p, args) -> record p (identity_args params args)
    | Call (Cmethod (o, m), args) -> (
      match o.note.ty with
      | Some (Tobj cls) ->
        let identity = identity_args params (o :: args) in
        List.iter
          (fun (mi : Tc.method_info) -> record mi.mi_impl identity)
          (dispatch_targets env cls m)
      | _ -> ())
    | _ -> ()
  in
  let walk ~caller ~params stmts locals_inits =
    let each e = iter_expr (emit ~caller ~params) e in
    List.iter each locals_inits;
    let rec stmt s =
      match s.sdesc with
      | Assign (d, e) ->
        each d;
        each e
      | Call_stmt e -> each e
      | If (branches, els) ->
        List.iter
          (fun (c, body) ->
            each c;
            List.iter stmt body)
          branches;
        List.iter stmt els
      | While (c, body) ->
        each c;
        List.iter stmt body
      | Repeat (body, c) ->
        List.iter stmt body;
        each c
      | For (_, a, b, body) ->
        each a;
        each b;
        List.iter stmt body
      | Return (Some e) -> each e
      | Return None -> ()
    in
    List.iter stmt stmts
  in
  List.iter
    (fun (pd : proc_decl) ->
      walk ~caller:pd.pname ~params:pd.params pd.body
        (List.filter_map (fun l -> l.linit) pd.locals))
    env.m.procs;
  walk ~caller:main_name ~params:[] env.m.main
    (List.filter_map (fun g -> g.ginit) env.m.globals);
  List.rev !sites

(** Caller ↦ resolved direct callees (each listed once), including
    {!main_name}. *)
let callees (env : Tc.env) : (string, string list) Hashtbl.t =
  let tbl = Hashtbl.create 16 in
  List.iter
    (fun cs ->
      let cur = Option.value ~default:[] (Hashtbl.find_opt tbl cs.cs_caller) in
      if not (List.mem cs.cs_target cur) then
        Hashtbl.replace tbl cs.cs_caller (cs.cs_target :: cur))
    (call_sites env);
  tbl

(** Procedures reachable from the seeds (the seeds included, when they
    name real procedures or {!main_name}) over the resolved call
    graph. *)
let reachable (callees : (string, string list) Hashtbl.t) seeds :
    (string, unit) Hashtbl.t =
  let seen = Hashtbl.create 16 in
  let work = Queue.create () in
  let visit p =
    if not (Hashtbl.mem seen p) then begin
      Hashtbl.replace seen p ();
      Queue.add p work
    end
  in
  List.iter visit seeds;
  while not (Queue.is_empty work) do
    let p = Queue.pop work in
    List.iter visit (Option.value ~default:[] (Hashtbl.find_opt callees p))
  done;
  seen
