(** Interprocedural effect analysis: per-procedure may-read / may-write
    sets over the module's storage — globals, record fields (by name, the
    §6.1 granularity), and array elements (one coarse location). Summary
    sets close the direct sets over the {!Callgraph}-resolved call graph
    with a fixed point. *)

type loc =
  | Global of string
  | Field of string  (** by field name — the §6.1 granularity *)
  | Arrays  (** all array elements, collapsed *)

module Locs : Set.S with type elt = loc

type eff = { reads : Locs.t; writes : Locs.t }

val empty_eff : eff
val union_eff : eff -> eff -> eff

type t

val main_name : string
(** Re-export of {!Callgraph.main_name}: the module body + global
    initializers appear as this synthetic procedure. *)

val compute : Lang.Typecheck.env -> t
(** Direct effects of every procedure (and {!main_name}), then the
    transitive-closure fixed point over the resolved call graph. *)

val direct : t -> string -> eff
(** Storage the procedure's own body may touch (callees excluded). *)

val summary : t -> string -> eff
(** Storage an invocation may touch, transitively through calls. *)

val callees : t -> string -> string list
val procs : t -> string list
(** All analyzed procedure names ({!main_name} included), sorted. *)

val expr_reads :
  locals:(string, unit) Hashtbl.t -> Locs.t -> Lang.Ast.expr -> Locs.t
(** Storage read while evaluating one expression (callee effects not
    included); [locals] are the names bound in the enclosing scope. *)

val expr_effect : t -> locals:(string, unit) Hashtbl.t -> Lang.Ast.expr -> eff
(** Transitive effect of evaluating one expression: its own reads plus
    the summaries of every procedure it may call. *)

val loc_name : loc -> string
val pp_loc : loc Fmt.t
val pp_locs : Locs.t Fmt.t
val pp_eff : eff Fmt.t
