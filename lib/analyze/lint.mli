(** The incremental-correctness lint rules (ALF001–ALF006). See
    {!Diag.rules} for the registry and default severities. *)

val run : Lang.Typecheck.env -> Diag.t list
(** All findings for a checked module, in {!Diag.sort} order. Filtering
    (per-rule enable/disable) and exit-code policy are the caller's job
    via {!Diag.apply} / {!Diag.exit_code}. *)
