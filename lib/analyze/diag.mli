(** Positioned diagnostics for the incremental-correctness linter: the
    rule registry (codes, titles, default severities), finding
    construction and ordering, per-rule enable/disable + [--warn-error]
    configuration, and text/JSON rendering. *)

type severity = Info | Warning | Error

val severity_name : severity -> string
val severity_rank : severity -> int
(** [Info] < [Warning] < [Error]. *)

type t = {
  rule : string;  (** e.g. ["ALF001"] *)
  severity : severity;
  pos : Lang.Ast.pos;
  message : string;
}

type rule = {
  code : string;
  title : string;
  default_severity : severity;
  explain : string;
}

val rules : rule list
(** The registry, in code order (ALF001…). *)

val find_rule : string -> rule option
val default_severity : string -> severity

val make : rule:string -> pos:Lang.Ast.pos -> ('a, Format.formatter, unit, t) format4 -> 'a
(** Build a finding with the rule's default severity. *)

val sort : t list -> t list
(** Position, then rule code, then message. *)

type config = {
  enabled : string -> bool;
  warn_error : bool;
  show_info : bool;
}

val default_config : config
(** All rules on, warnings don't fail, Info hidden. *)

val apply : config -> t list -> t list
(** Drop findings of disabled rules. *)

val counts : t list -> int * int * int
(** (errors, warnings, infos). *)

val exit_code : config -> t list -> int
(** 1 if any error, or any warning under [warn_error]; else 0. Info
    findings never affect the exit code. *)

val pp_finding : module_name:string -> t Fmt.t
val pp_text : config -> module_name:string -> Format.formatter -> t list -> unit
val to_json : module_name:string -> t list -> Alphonse.Json.t
val pp_rules : unit Fmt.t
