(** The incremental-correctness lint rules, built on {!Callgraph} and
    {!Effects}. Each rule flags a program whose incremental pragmas are
    statically suspect — code the engine will run, but whose maintained
    results can go stale, self-invalidate, cycle, or never run at all.

    The rules are deliberately conservative in the other direction from
    the analyses they lean on: effect sets are may-information, so every
    rule is a heuristic warning about a {e possible} hazard, except
    ALF003 whose identity-call cycles are guaranteed [Engine.Cycle]s if
    the cycle executes. All nine built-in samples lint clean. *)

open Lang.Ast
module Tc = Lang.Typecheck

let locs_str set =
  String.concat ", " (List.map Effects.loc_name (Effects.Locs.elements set))

let globals_of set =
  Effects.Locs.filter (function Effects.Global _ -> true | _ -> false) set

(* Visit every [(*UNCHECKED*)] expression of a procedure body together
   with the local names in scope at that point (params, declared locals,
   enclosing FOR indices). *)
let iter_unchecked (pd : proc_decl) f =
  let locals = Hashtbl.create 8 in
  List.iter (fun (n, _) -> Hashtbl.replace locals n ()) pd.params;
  List.iter (fun (l : local_decl) -> Hashtbl.replace locals l.lname ()) pd.locals;
  let each e =
    Callgraph.iter_expr
      (fun e ->
        match e.desc with
        | Unchecked inner -> f ~locals inner e.pos
        | _ -> ())
      e
  in
  List.iter (fun (l : local_decl) -> Option.iter each l.linit) pd.locals;
  let rec stmt s =
    match s.sdesc with
    | Assign (d, e) ->
      each d;
      each e
    | Call_stmt e -> each e
    | If (branches, els) ->
      List.iter
        (fun (c, body) ->
          each c;
          List.iter stmt body)
        branches;
      List.iter stmt els
    | While (c, body) ->
      each c;
      List.iter stmt body
    | Repeat (body, c) ->
      List.iter stmt body;
      each c
    | For (v, a, b, body) ->
      each a;
      each b;
      let shadowed = Hashtbl.mem locals v in
      Hashtbl.replace locals v ();
      List.iter stmt body;
      if not shadowed then Hashtbl.remove locals v
    | Return (Some e) -> each e
    | Return None -> ()
  in
  List.iter stmt pd.body

(* Position that declared [p] incremental: the pragma'd procedure, or
   the earliest METHODS/OVERRIDES entry binding it with a pragma. *)
let incr_anchor (env : Tc.env) p =
  match Hashtbl.find_opt env.procs p with
  | Some pd when pd.ppragma <> None -> pd.ppos
  | other ->
    let best = ref None in
    Hashtbl.iter
      (fun _ (ci : Tc.class_info) ->
        List.iter
          (fun (_, (mi : Tc.method_info)) ->
            if mi.mi_impl = p && mi.mi_pragma <> None then
              match !best with
              | Some b when (b.line, b.col) <= (mi.mi_pos.line, mi.mi_pos.col)
                -> ()
              | _ -> best := Some mi.mi_pos)
          ci.ci_methods)
      env.classes;
    (match (!best, other) with
    | Some pos, _ -> pos
    | None, Some pd -> pd.ppos
    | None, None -> no_pos)

let run (env : Tc.env) : Diag.t list =
  let eff = Effects.compute env in
  let callees = Callgraph.callees env in
  let incr = Callgraph.incremental_procs env in
  let incr_list =
    Hashtbl.fold (fun p _ acc -> p :: acc) incr [] |> List.sort compare
  in
  let union_over f =
    List.fold_left
      (fun acc p -> Effects.Locs.union acc (f (Effects.summary eff p)))
      Effects.Locs.empty incr_list
  in
  (* Everything incremental execution may read (the baseline tracked
     storage) and may write, transitively. *)
  let incr_reads = union_over (fun e -> e.Effects.reads) in
  let incr_writes = union_over (fun e -> e.Effects.writes) in
  (* Everything written anywhere: procedure bodies and the module body. *)
  let all_writes =
    List.fold_left
      (fun acc p -> Effects.Locs.union acc (Effects.direct eff p).Effects.writes)
      Effects.Locs.empty (Effects.procs eff)
  in
  let reach_incr = Callgraph.reachable callees incr_list in
  let reach_main = Callgraph.reachable callees [ Callgraph.main_name ] in
  let ds = ref [] in
  let emit d = ds := d :: !ds in

  (* ALF001 / ALF006 — (*UNCHECKED*) expressions inside code an
     incremental instance may run. The pragma masks dependency recording
     for the instance on the stack; in mutator-only code there is no
     instance, so nothing is pruned and nothing to flag. *)
  List.iter
    (fun (pd : proc_decl) ->
      if Hashtbl.mem reach_incr pd.pname then
        iter_unchecked pd (fun ~locals inner pos ->
            let e = Effects.expr_effect eff ~locals inner in
            let stale = Effects.Locs.inter e.Effects.reads incr_writes in
            if not (Effects.Locs.is_empty stale) then
              emit
                (Diag.make ~rule:"ALF001" ~pos
                   "UNCHECKED prunes dependencies on %s, which incremental \
                    code may write — the enclosing instance will not be \
                    invalidated by those writes"
                   (locs_str stale));
            let hidden = Effects.Locs.inter e.Effects.writes incr_reads in
            if not (Effects.Locs.is_empty hidden) then
              emit
                (Diag.make ~rule:"ALF006" ~pos
                   "UNCHECKED region may write tracked storage (%s) while \
                    dependency recording is masked"
                   (locs_str hidden))))
    env.m.procs;

  (* ALF002 — an incremental procedure whose transitive effects both
     read and write the same global self-invalidates. *)
  List.iter
    (fun p ->
      let s = Effects.summary eff p in
      let both =
        globals_of (Effects.Locs.inter s.Effects.reads s.Effects.writes)
      in
      if not (Effects.Locs.is_empty both) then
        emit
          (Diag.make ~rule:"ALF002" ~pos:(incr_anchor env p)
             "incremental procedure %s may both read and write %s — each \
              execution invalidates its own result"
             p (locs_str both)))
    incr_list;

  (* ALF003 — cycles of identity-argument calls between incremental
     procedures: the cycle re-enters the same argument-table entry, a
     guaranteed Engine.Cycle when it executes. *)
  let id_edges =
    List.filter
      (fun (cs : Callgraph.call_site) ->
        cs.cs_identity && Hashtbl.mem incr cs.cs_caller
        && Hashtbl.mem incr cs.cs_target)
      (Callgraph.call_sites env)
  in
  let id_adj = Hashtbl.create 8 in
  List.iter
    (fun (cs : Callgraph.call_site) ->
      let cur =
        Option.value ~default:[] (Hashtbl.find_opt id_adj cs.cs_caller)
      in
      if not (List.mem cs.cs_target cur) then
        Hashtbl.replace id_adj cs.cs_caller (cs.cs_target :: cur))
    id_edges;
  List.iter
    (fun (cs : Callgraph.call_site) ->
      let from_target = Callgraph.reachable id_adj [ cs.cs_target ] in
      if Hashtbl.mem from_target cs.cs_caller then
        emit
          (Diag.make ~rule:"ALF003" ~pos:cs.cs_pos
             "identity-argument call from %s to %s closes a cycle of \
              incremental calls over the same argument-table entry"
             cs.cs_caller cs.cs_target))
    id_edges;

  (* ALF004 — incremental procedures the module body can never reach:
     their argument tables stay empty forever. *)
  List.iter
    (fun p ->
      if not (Hashtbl.mem reach_main p) then
        emit
          (Diag.make ~rule:"ALF004" ~pos:(incr_anchor env p)
             "incremental procedure %s is unreachable from the module body \
              — its argument table can never be populated"
             p))
    incr_list;

  (* ALF005 — tracked storage nothing ever writes: dead dependencies,
     exactly what the effect-sharpened 6.1 analysis untracks. *)
  Effects.Locs.iter
    (fun l ->
      if not (Effects.Locs.mem l all_writes) then
        match l with
        | Effects.Global g -> (
          match List.find_opt (fun gd -> gd.gname = g) env.m.globals with
          | Some gd ->
            emit
              (Diag.make ~rule:"ALF005" ~pos:gd.gpos
                 "tracked global %s is never written — its dependency edges \
                  can never fire"
                 g)
          | None -> ())
        | Effects.Field f -> (
          let fpos =
            List.find_map
              (fun (td : type_decl) ->
                List.find_map
                  (fun (fd : field_decl) ->
                    if fd.fname = f then Some fd.fpos else None)
                  td.fields)
              env.m.types
          in
          match fpos with
          | Some pos ->
            emit
              (Diag.make ~rule:"ALF005" ~pos
                 "tracked field %s is never written — its dependency edges \
                  can never fire"
                 f)
          | None -> ())
        | Effects.Arrays -> ())
    incr_reads;

  Diag.sort !ds
