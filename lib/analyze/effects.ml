(** Interprocedural effect analysis: per-procedure may-read and
    may-write sets over the module's {e storage} — globals, record
    fields (by name, the §6.1 granularity), and array elements (one
    coarse [Arrays] location, matching the runtime's treatment).

    Local variables, parameters and FOR indices are stack storage; by
    the TOP restriction no incremental instance can retain dependencies
    on them, so they carry no effects. Calls are resolved through
    {!Callgraph} (method calls to every implementation in the static
    receiver's subtree) and the {e summary} sets close the direct sets
    over the call graph with a fixed point — [summary p] is everything
    an invocation of [p] may read or write, transitively.

    These are the static facts behind two consumers: the
    incremental-correctness linter ({!Lint}) and the sharpened §6.1
    instrumentation analysis in [Transform.Analysis], which downgrades
    tracked sites no incremental instance can observe. *)

open Lang.Ast
module Tc = Lang.Typecheck

type loc =
  | Global of string
  | Field of string  (** by field name — the §6.1 granularity *)
  | Arrays  (** all array elements, collapsed *)

let compare_loc (a : loc) (b : loc) = compare a b

module Locs = Set.Make (struct
  type t = loc

  let compare = compare_loc
end)

type eff = { reads : Locs.t; writes : Locs.t }

let empty_eff = { reads = Locs.empty; writes = Locs.empty }

let union_eff a b =
  { reads = Locs.union a.reads b.reads; writes = Locs.union a.writes b.writes }

let eff_equal a b = Locs.equal a.reads b.reads && Locs.equal a.writes b.writes

let main_name = Callgraph.main_name

type t = {
  env : Tc.env;
  direct : (string, eff) Hashtbl.t;
  summary : (string, eff) Hashtbl.t;
  callees : (string, string list) Hashtbl.t;
}

(* ------------------------------------------------------------------ *)
(* Direct effects of one procedure (or the module body)                *)
(* ------------------------------------------------------------------ *)

(* Reads performed while evaluating [e] (no local-variable effects;
   callee effects are NOT included here — the fixpoint adds them). *)
let expr_reads ~locals acc e =
  let reads = ref acc in
  Callgraph.iter_expr
    (fun e ->
      match e.desc with
      | Var x ->
        if e.note.is_global || not (Hashtbl.mem locals x) then
          reads := Locs.add (Global x) !reads
      | Field (_, f) -> reads := Locs.add (Field f) !reads
      | Index _ -> reads := Locs.add Arrays !reads
      | _ -> ())
    e;
  !reads

let direct_of_body (pd : (string * ty) list) local_decls body inits :
    (string, unit) Hashtbl.t -> eff =
 fun locals ->
  List.iter (fun (n, _) -> Hashtbl.replace locals n ()) pd;
  List.iter (fun (l : local_decl) -> Hashtbl.replace locals l.lname ()) local_decls;
  let reads = ref Locs.empty and writes = ref Locs.empty in
  let rd e = reads := expr_reads ~locals !reads e in
  List.iter rd inits;
  let rec stmt s =
    match s.sdesc with
    | Assign (d, e) ->
      (match d.desc with
      | Var x ->
        if d.note.is_global || not (Hashtbl.mem locals x) then
          writes := Locs.add (Global x) !writes
      | Field (b, f) ->
        writes := Locs.add (Field f) !writes;
        rd b
      | Index (b, i) ->
        writes := Locs.add Arrays !writes;
        rd b;
        rd i
      | _ -> ());
      rd e
    | Call_stmt e -> rd e
    | If (branches, els) ->
      List.iter
        (fun (c, body) ->
          rd c;
          List.iter stmt body)
        branches;
      List.iter stmt els
    | While (c, body) ->
      rd c;
      List.iter stmt body
    | Repeat (body, c) ->
      List.iter stmt body;
      rd c
    | For (v, a, b, body) ->
      rd a;
      rd b;
      let shadowed = Hashtbl.mem locals v in
      Hashtbl.replace locals v ();
      List.iter stmt body;
      if not shadowed then Hashtbl.remove locals v
    | Return (Some e) -> rd e
    | Return None -> ()
  in
  List.iter stmt body;
  { reads = !reads; writes = !writes }

let direct_of_proc (pd : proc_decl) =
  direct_of_body pd.params pd.locals pd.body
    (List.filter_map (fun l -> l.linit) pd.locals)
    (Hashtbl.create 8)

let direct_of_main (m : module_) =
  direct_of_body [] [] m.main
    (List.filter_map (fun g -> g.ginit) m.globals)
    (Hashtbl.create 8)

(* ------------------------------------------------------------------ *)
(* The fixed point                                                     *)
(* ------------------------------------------------------------------ *)

let compute (env : Tc.env) : t =
  let direct = Hashtbl.create 16 in
  List.iter
    (fun (pd : proc_decl) -> Hashtbl.replace direct pd.pname (direct_of_proc pd))
    env.m.procs;
  Hashtbl.replace direct main_name (direct_of_main env.m);
  let callees = Callgraph.callees env in
  let summary = Hashtbl.copy direct in
  let changed = ref true in
  while !changed do
    changed := false;
    Hashtbl.iter
      (fun p d ->
        let next =
          List.fold_left
            (fun acc q ->
              match Hashtbl.find_opt summary q with
              | Some s -> union_eff acc s
              | None -> acc)
            d
            (Option.value ~default:[] (Hashtbl.find_opt callees p))
        in
        if not (eff_equal next (Hashtbl.find summary p)) then begin
          Hashtbl.replace summary p next;
          changed := true
        end)
      direct
  done;
  { env; direct; summary; callees }

let direct t p = Option.value ~default:empty_eff (Hashtbl.find_opt t.direct p)

let summary t p =
  Option.value ~default:empty_eff (Hashtbl.find_opt t.summary p)

let callees t p = Option.value ~default:[] (Hashtbl.find_opt t.callees p)

let procs t =
  Hashtbl.fold (fun p _ acc -> p :: acc) t.direct [] |> List.sort compare

(* ------------------------------------------------------------------ *)
(* Expression-level queries (the UNCHECKED rules)                      *)
(* ------------------------------------------------------------------ *)

(** Transitive effect of evaluating one expression in a scope whose
    local names are [locals]: its own reads plus the summaries of every
    procedure it may call (expressions cannot write directly, so any
    writes come from callees). *)
let expr_effect t ~locals e =
  let acc = ref { reads = expr_reads ~locals Locs.empty e; writes = Locs.empty } in
  Callgraph.iter_expr
    (fun e ->
      let add_target p = acc := union_eff !acc (summary t p) in
      match e.desc with
      | Call (Cproc p, _) -> add_target p
      | Call (Cmethod (o, m), _) -> (
        match o.note.ty with
        | Some (Tobj cls) ->
          List.iter
            (fun (mi : Tc.method_info) -> add_target mi.mi_impl)
            (Callgraph.dispatch_targets t.env cls m)
        | _ -> ())
      | _ -> ())
    e;
  !acc

(* ------------------------------------------------------------------ *)
(* Printing                                                            *)
(* ------------------------------------------------------------------ *)

let loc_name = function
  | Global g -> "global:" ^ g
  | Field f -> "field:" ^ f
  | Arrays -> "arrays"

let pp_loc ppf l = Fmt.string ppf (loc_name l)

let pp_locs ppf s =
  if Locs.is_empty s then Fmt.string ppf "-"
  else
    Fmt.(list ~sep:(any " ") pp_loc) ppf (Locs.elements s)

let pp_eff ppf e =
  Fmt.pf ppf "reads {%a} writes {%a}" pp_locs e.reads pp_locs e.writes
