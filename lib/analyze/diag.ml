(** Diagnostics for the incremental-correctness linter: rule codes with
    default severities, [Ast.pos]-anchored findings, text and JSON
    rendering (JSON through [Alphonse.Json]), and the enable/disable +
    [--warn-error] configuration the CLI exposes.

    The §6 optimizations are only as good as the static facts feeding
    them, and the paper's [(*UNCHECKED*)] pragma is explicitly
    programmer-trusted (§6.4) — these diagnostics are the checking layer
    that turns those trusted annotations into verified ones. *)

type severity = Info | Warning | Error

let severity_name = function
  | Info -> "info"
  | Warning -> "warning"
  | Error -> "error"

let severity_rank = function Info -> 0 | Warning -> 1 | Error -> 2

type t = {
  rule : string;  (** e.g. ["ALF001"] *)
  severity : severity;
  pos : Lang.Ast.pos;
  message : string;
}

type rule = {
  code : string;
  title : string;
  default_severity : severity;
  explain : string;  (** one-paragraph description for [--rules] *)
}

let rules =
  [
    {
      code = "ALF001";
      title = "unsound UNCHECKED";
      default_severity = Warning;
      explain =
        "An (*UNCHECKED*) expression may read storage that reachable \
         incremental code may write. The pragma prunes exactly that \
         dependency, so the enclosing instance is never invalidated when \
         the incremental portion itself changes the pruned location — the \
         cached result goes silently stale (paper 6.4).";
    };
    {
      code = "ALF002";
      title = "self-invalidation hazard";
      default_severity = Warning;
      explain =
        "A (*MAINTAINED*)/(*CACHED*) procedure may both read and write the \
         same global. Its execution then invalidates its own result: at \
         best wasted re-execution, at worst Engine.Cycle at run time. \
         (Restricted to globals — a global is one statically-known cell, \
         while field effects are per-object and name-coarse.)";
    };
    {
      code = "ALF003";
      title = "statically cyclic incremental call";
      default_severity = Error;
      explain =
        "Incremental procedures call each other in a cycle passing their \
         argument vectors through unchanged, so the cycle re-enters the \
         same argument-table entry — a guaranteed Engine.Cycle when the \
         call executes. (Recursion that shrinks or changes its arguments, \
         like Fib(n-1), is fine and not flagged.)";
    };
    {
      code = "ALF004";
      title = "unreachable incremental procedure";
      default_severity = Warning;
      explain =
        "A procedure carries a pragma but is unreachable from the module \
         body over the resolved call graph (method calls resolved to every \
         override dynamic dispatch could select). Its argument table can \
         never be populated: dead incremental code.";
    };
    {
      code = "ALF005";
      title = "dead dependency";
      default_severity = Info;
      explain =
        "A tracked global or field is never written anywhere in the \
         program, so its dependency edges can never fire. The \
         effect-sharpened 6.1 analysis removes this instrumentation; the \
         finding points at storage whose tracking was pure overhead.";
    };
    {
      code = "ALF006";
      title = "pruned write";
      default_severity = Warning;
      explain =
        "An (*UNCHECKED*) expression may (transitively) write tracked \
         storage. The pruned region runs with dependency recording masked, \
         so the writing instance records no write dependency for the \
         mutation — marks raised mid-execution from a masked region \
         undermine the engine's bookkeeping and the pragma's read-only \
         spirit.";
    };
  ]

let find_rule code = List.find_opt (fun r -> r.code = code) rules

let default_severity code =
  match find_rule code with Some r -> r.default_severity | None -> Warning

let make ~rule ~pos fmt =
  Fmt.kstr
    (fun message -> { rule; severity = default_severity rule; pos; message })
    fmt

(** Stable presentation order: position, then rule code, then text. *)
let sort ds =
  List.sort
    (fun a b ->
      match compare (a.pos.Lang.Ast.line, a.pos.Lang.Ast.col)
              (b.pos.Lang.Ast.line, b.pos.Lang.Ast.col)
      with
      | 0 -> ( match compare a.rule b.rule with 0 -> compare a.message b.message | c -> c)
      | c -> c)
    ds

(* ------------------------------------------------------------------ *)
(* Configuration                                                       *)
(* ------------------------------------------------------------------ *)

type config = {
  enabled : string -> bool;  (** rule code ↦ participates at all *)
  warn_error : bool;  (** warnings affect the exit code *)
  show_info : bool;  (** include Info findings in text output *)
}

let default_config =
  { enabled = (fun _ -> true); warn_error = false; show_info = false }

let apply cfg ds = List.filter (fun d -> cfg.enabled d.rule) ds

let counts ds =
  List.fold_left
    (fun (e, w, i) d ->
      match d.severity with
      | Error -> (e + 1, w, i)
      | Warning -> (e, w + 1, i)
      | Info -> (e, w, i + 1))
    (0, 0, 0) ds

(** Exit status under [cfg] for the (already [apply]-filtered) findings:
    errors always fail; warnings fail under [--warn-error]; Info never
    affects the exit code. *)
let exit_code cfg ds =
  let errors, warnings, _ = counts ds in
  if errors > 0 || (cfg.warn_error && warnings > 0) then 1 else 0

(* ------------------------------------------------------------------ *)
(* Rendering                                                           *)
(* ------------------------------------------------------------------ *)

let pp_finding ~module_name ppf d =
  Fmt.pf ppf "%s:%a: %s %s: %s" module_name Lang.Ast.pp_pos d.pos
    (severity_name d.severity) d.rule d.message

let pp_text cfg ~module_name ppf ds =
  let shown =
    List.filter (fun d -> cfg.show_info || d.severity <> Info) ds
  in
  List.iter (fun d -> Fmt.pf ppf "%a@." (pp_finding ~module_name) d) shown;
  let errors, warnings, infos = counts ds in
  if errors = 0 && warnings = 0 && (infos = 0 || not cfg.show_info) then
    Fmt.pf ppf "%s: clean%s@." module_name
      (if infos > 0 then Fmt.str " (%d info finding(s) hidden; --info)" infos
       else "")
  else
    Fmt.pf ppf "%s: %d error(s), %d warning(s), %d info@." module_name errors
      warnings infos

let to_json ~module_name ds =
  let module J = Alphonse.Json in
  let errors, warnings, infos = counts ds in
  J.Obj
    [
      ("module", J.Str module_name);
      ( "findings",
        J.Arr
          (List.map
             (fun d ->
               J.Obj
                 [
                   ("rule", J.Str d.rule);
                   ("severity", J.Str (severity_name d.severity));
                   ("line", J.Num (float_of_int d.pos.Lang.Ast.line));
                   ("col", J.Num (float_of_int d.pos.Lang.Ast.col));
                   ("message", J.Str d.message);
                 ])
             ds) );
      ("errors", J.Num (float_of_int errors));
      ("warnings", J.Num (float_of_int warnings));
      ("infos", J.Num (float_of_int infos));
    ]

let pp_rules ppf () =
  List.iter
    (fun r ->
      Fmt.pf ppf "%s  %-9s %s@.    %s@." r.code
        (severity_name r.default_severity)
        r.title r.explain)
    rules
