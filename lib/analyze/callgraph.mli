(** Interprocedural call graph over a checked module: dynamic dispatch
    resolved to every implementation in the static receiver's subtree,
    the module body as the synthetic caller {!main_name}, and per-site
    identity-argument classification (the ALF003 ingredient). *)

val main_name : string
(** The synthetic caller standing for the module body (the mutator) and
    the global initializers. *)

val subclasses : Lang.Typecheck.env -> string -> string list
(** Every class in the subtree rooted at the given class (reflexive). *)

val dispatch_targets :
  Lang.Typecheck.env -> string -> string -> Lang.Typecheck.method_info list
(** Every implementation a call with the given static receiver class and
    method name can dispatch to. *)

val method_may_be_incremental : Lang.Typecheck.env -> string -> string -> bool
(** Does some dispatch target of this method carry a pragma? *)

val incremental_procs :
  Lang.Typecheck.env -> (string, Lang.Ast.pragma) Hashtbl.t
(** Implementing procedure ↦ its effective pragma (cached procedures and
    maintained/cached method implementations, override inheritance
    applied). *)

type call_site = {
  cs_caller : string;  (** procedure name, or {!main_name} *)
  cs_target : string;  (** resolved implementing procedure *)
  cs_pos : Lang.Ast.pos;
  cs_identity : bool;
      (** the full argument vector (receiver included for method calls)
          is exactly the caller's parameter list, in order — the call
          re-enters the same argument-table entry *)
}

val call_sites : Lang.Typecheck.env -> call_site list
(** Every resolved call site of the module, in program order; method
    calls contribute one site per dispatch target. *)

val callees : Lang.Typecheck.env -> (string, string list) Hashtbl.t
(** Caller ↦ resolved direct callees, deduplicated. *)

val reachable :
  (string, string list) Hashtbl.t -> string list -> (string, unit) Hashtbl.t
(** [reachable (callees env) seeds] — procedures reachable from the
    seeds (inclusive) over the resolved call graph. *)

val iter_expr : (Lang.Ast.expr -> unit) -> Lang.Ast.expr -> unit
(** Pre-order walk of one expression's subtree. *)
