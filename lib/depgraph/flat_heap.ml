(* Flat array binary heap.

   Drop-in replacement for Pairing_heap on the engine's hot settle path:
   same signature, but elements live in one growable array, so insert
   and pop_min shuffle array cells instead of allocating heap nodes.
   The trade is meld — O(m log n) bulk insert instead of O(1) pointer
   splice — which the engine only pays on the rare partition unions of
   §6.3 (and not at all with partitioning off, the default).

   The backing array is created lazily on first insert, using that
   element as the fill value; vacated cells above [n] may retain stale
   references until overwritten or [clear]ed, which is harmless for the
   engine (nodes are owned by the graph arena for the engine's
   lifetime). *)

type 'a t = {
  leq : 'a -> 'a -> bool;
  mutable a : 'a array; (* cells [0 .. n-1] live; heap-ordered *)
  mutable n : int;
}

let create ~leq = { leq; a = [||]; n = 0 }
let is_empty h = h.n = 0
let length h = h.n

let ensure h x =
  if h.n = Array.length h.a then begin
    let cap = if h.n = 0 then 16 else 2 * h.n in
    let a = Array.make cap x in
    Array.blit h.a 0 a 0 h.n;
    h.a <- a
  end

let insert h x =
  ensure h x;
  let a = h.a and leq = h.leq in
  (* sift up *)
  let i = ref h.n in
  h.n <- h.n + 1;
  a.(!i) <- x;
  let continue = ref (!i > 0) in
  while !continue do
    let p = (!i - 1) / 2 in
    if leq a.(p) a.(!i) then continue := false
    else begin
      let tmp = a.(p) in
      a.(p) <- a.(!i);
      a.(!i) <- tmp;
      i := p;
      continue := !i > 0
    end
  done

let sift_down h =
  let a = h.a and n = h.n and leq = h.leq in
  let i = ref 0 in
  let continue = ref true in
  while !continue do
    let l = (2 * !i) + 1 in
    if l >= n then continue := false
    else begin
      let r = l + 1 in
      let c = if r < n && not (leq a.(l) a.(r)) then r else l in
      if leq a.(!i) a.(c) then continue := false
      else begin
        let tmp = a.(!i) in
        a.(!i) <- a.(c);
        a.(c) <- tmp;
        i := c
      end
    end
  done

let pop_min h =
  if h.n = 0 then None
  else begin
    let x = h.a.(0) in
    let last = h.n - 1 in
    h.a.(0) <- h.a.(last);
    h.n <- last;
    if last > 0 then sift_down h;
    Some x
  end

let peek_min h = if h.n = 0 then None else Some h.a.(0)

let meld dst src =
  if dst.leq != src.leq then
    invalid_arg "Flat_heap.meld: heaps ordered by different functions";
  for i = 0 to src.n - 1 do
    insert dst src.a.(i)
  done;
  src.n <- 0;
  src.a <- [||]

let clear h =
  h.n <- 0;
  (* drop the array so stale cells don't pin elements *)
  h.a <- [||]

let to_list h = Array.to_list (Array.sub h.a 0 h.n)
