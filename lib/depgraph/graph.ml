(* Arena-allocated, int-indexed dependency graph.

   Nodes live in a slot arena: the graph owns flat growable arrays
   indexed by slot (the live handle, and the slot's generation word),
   and each handle carries its adjacency as flat int arrays. An edge
   u → v is a pair of twinned entries: position i of u's successor
   arrays holds (v's slot, j) and position j of v's predecessor arrays
   holds (u's slot, i). Removal is swap-remove — the last entry moves
   into the vacated position and its twin backpointer is repointed —
   preserving §9.2's O(1)-per-edge removal contract without the edge
   records and option links of a doubly-linked representation: the
   steady-state edge churn of re-execution (RemovePredEdges, then
   re-recording) allocates nothing.

   Slots are recycled through a free list. Each recycling increments
   the slot's generation word (mod [gen_limit]); a handle remembers
   the generation it was allocated under, so [validate] can prove that
   no live handle aliases a recycled slot. Liveness itself is the
   handle's [dead] flag — exact, set once by [remove_node], and immune
   to generation-word wraparound (equality on generations is only a
   cross-check, never the liveness source of truth).

   Duplicate suppression: within a single execution of a consumer,
   repeated accesses to the same source create only one edge,
   deduplicated by an execution stamp on the source node. *)

(* Generation words wrap at 2^16: small enough that the wraparound
   path is testable (test_depgraph recycles one slot past the limit),
   and wide enough that [validate]'s alias cross-check stays
   overwhelmingly effective. *)
let gen_limit = 1 lsl 16

type 'a node = {
  id : int; (* unique for the graph's lifetime, never recycled *)
  slot : int; (* arena index; recycled through the free list *)
  gen : int; (* the slot's generation word at allocation *)
  payload : 'a;
  owner : 'a t;
  mutable order : Order_list.item;
  mutable dead : bool;
  (* adjacency: parallel flat int arrays, entries [0 .. *_n - 1] live.
     succ entry i = (succ_node.(i) : dst slot,
                     succ_twin.(i) : index of the twin entry in dst's
                     pred arrays); symmetrically for pred entries. *)
  mutable succ_node : int array;
  mutable succ_twin : int array;
  mutable succ_n : int;
  mutable pred_node : int array;
  mutable pred_twin : int array;
  mutable pred_n : int;
  (* execution stamp of the consumer that most recently recorded an edge
     from this node; suppresses duplicate edges within one execution *)
  mutable last_stamp : int;
}

and 'a t = {
  order_list : Order_list.t;
  mutable next_id : int;
  (* the arena: slot-indexed flat arrays, grown by doubling *)
  mutable handles : 'a node option array; (* slot -> live handle *)
  mutable gens : int array; (* slot -> current generation word *)
  mutable slots : int; (* high-water mark of slots ever used *)
  mutable free : int list; (* recycled slots *)
  mutable live_nodes : int;
  mutable live_edges : int;
  mutable total_nodes : int;
  mutable total_edges : int;
  mutable removed_edges : int;
}

let create () =
  {
    order_list = Order_list.create ();
    next_id = 0;
    handles = [||];
    gens = [||];
    slots = 0;
    free = [];
    live_nodes = 0;
    live_edges = 0;
    total_nodes = 0;
    total_edges = 0;
    removed_edges = 0;
  }

let check_alive who n =
  if n.dead then invalid_arg (who ^ ": removed dependency graph node")

(* Resolve a slot to its live handle. Adjacency entries never hold a
   freed slot (every incident edge is detached before the slot is
   recycled), so the lookup cannot miss. *)
let[@inline] handle t s =
  match t.handles.(s) with Some n -> n | None -> assert false

let grow_arena t =
  let cap = Array.length t.gens in
  let cap' = if cap = 0 then 64 else 2 * cap in
  let handles = Array.make cap' None in
  Array.blit t.handles 0 handles 0 cap;
  t.handles <- handles;
  let gens = Array.make cap' 0 in
  Array.blit t.gens 0 gens 0 cap;
  t.gens <- gens

let alloc_slot t =
  match t.free with
  | s :: rest ->
    t.free <- rest;
    s
  | [] ->
    let s = t.slots in
    if s = Array.length t.gens then grow_arena t;
    t.slots <- s + 1;
    s

let empty_ints : int array = [||]

let mk_node t order payload =
  let slot = alloc_slot t in
  let id = t.next_id in
  t.next_id <- id + 1;
  t.live_nodes <- t.live_nodes + 1;
  t.total_nodes <- t.total_nodes + 1;
  let n =
    {
      id;
      slot;
      gen = t.gens.(slot);
      payload;
      owner = t;
      order;
      dead = false;
      succ_node = empty_ints;
      succ_twin = empty_ints;
      succ_n = 0;
      pred_node = empty_ints;
      pred_twin = empty_ints;
      pred_n = 0;
      last_stamp = -1;
    }
  in
  t.handles.(slot) <- Some n;
  n

let add_node t ~order_after payload =
  let anchor =
    match order_after with
    | Some n ->
      check_alive "Graph.add_node" n;
      n.order
    | None -> Order_list.last t.order_list
  in
  mk_node t (Order_list.insert_after anchor) payload

let add_node_before t ~order_before payload =
  check_alive "Graph.add_node_before" order_before;
  mk_node t (Order_list.insert_before order_before.order) payload

let payload n = n.payload
let id n = n.id
let slot n = n.slot
let generation n = n.gen

let order_lt u v = Order_list.lt u.order v.order
let order_leq u v = Order_list.leq u.order v.order

let reorder_before u v =
  check_alive "Graph.reorder_before" u;
  check_alive "Graph.reorder_before" v;
  let fresh = Order_list.insert_before v.order in
  Order_list.delete u.order;
  u.order <- fresh

(* ---- adjacency primitives ---------------------------------------- *)

let ensure_succ n =
  if n.succ_n = Array.length n.succ_node then begin
    let cap = if n.succ_n = 0 then 4 else 2 * n.succ_n in
    let nn = Array.make cap 0 and nt = Array.make cap 0 in
    Array.blit n.succ_node 0 nn 0 n.succ_n;
    Array.blit n.succ_twin 0 nt 0 n.succ_n;
    n.succ_node <- nn;
    n.succ_twin <- nt
  end

let ensure_pred n =
  if n.pred_n = Array.length n.pred_node then begin
    let cap = if n.pred_n = 0 then 4 else 2 * n.pred_n in
    let nn = Array.make cap 0 and nt = Array.make cap 0 in
    Array.blit n.pred_node 0 nn 0 n.pred_n;
    Array.blit n.pred_twin 0 nt 0 n.pred_n;
    n.pred_node <- nn;
    n.pred_twin <- nt
  end

(* Swap-remove successor entry [k] of [u]: the last entry moves into
   [k], and its twin backpointer — held in the moved edge's destination
   pred arrays — is repointed at the new position. O(1). Must not be
   used while iterating [u]'s successors. *)
let remove_succ_entry t u k =
  let last = u.succ_n - 1 in
  if k <> last then begin
    let ms = u.succ_node.(last) and mt = u.succ_twin.(last) in
    u.succ_node.(k) <- ms;
    u.succ_twin.(k) <- mt;
    (handle t ms).pred_twin.(mt) <- k
  end;
  u.succ_n <- last

(* Symmetric: swap-remove predecessor entry [k] of [u], repointing the
   moved edge's source succ-twin. *)
let remove_pred_entry t u k =
  let last = u.pred_n - 1 in
  if k <> last then begin
    let ms = u.pred_node.(last) and mt = u.pred_twin.(last) in
    u.pred_node.(k) <- ms;
    u.pred_twin.(k) <- mt;
    (handle t ms).succ_twin.(mt) <- k
  end;
  u.pred_n <- last

let add_edge ~stamp ~src ~dst =
  check_alive "Graph.add_edge" src;
  check_alive "Graph.add_edge" dst;
  if src.last_stamp <> stamp then begin
    src.last_stamp <- stamp;
    let t = src.owner in
    ensure_succ src;
    ensure_pred dst;
    (* the succ entry's twin is the pred position about to be filled,
       and vice versa *)
    let si = src.succ_n and pi = dst.pred_n in
    src.succ_node.(si) <- dst.slot;
    src.succ_twin.(si) <- pi;
    src.succ_n <- si + 1;
    dst.pred_node.(pi) <- src.slot;
    dst.pred_twin.(pi) <- si;
    dst.pred_n <- pi + 1;
    t.live_edges <- t.live_edges + 1;
    t.total_edges <- t.total_edges + 1
  end

(* RemovePredEdges. Each predecessor holds exactly one edge to [n]
   (edges are deduplicated per consumer execution and fully cleared
   between executions), so detaching the source sides one by one
   cannot move an entry this loop has yet to read. *)
let clear_preds t n =
  check_alive "Graph.clear_preds" n;
  let k = n.pred_n in
  if k > 0 then begin
    for i = 0 to k - 1 do
      remove_succ_entry t (handle t n.pred_node.(i)) n.pred_twin.(i)
    done;
    n.pred_n <- 0;
    t.live_edges <- t.live_edges - k;
    t.removed_edges <- t.removed_edges + k
  end

(* Fused snapshot-and-clear for the engine's re-execution prologue: one
   traversal detaches every incoming edge and returns the sources (in
   reverse adjacency order) so a failed execution can reinstate them.
   Equivalent to collecting [iter_pred] then [clear_preds], minus a full
   second pass over the pred arrays. *)
let clear_preds_collect t n =
  check_alive "Graph.clear_preds_collect" n;
  let k = n.pred_n in
  if k = 0 then []
  else begin
    let acc = ref [] in
    for i = 0 to k - 1 do
      let src = handle t n.pred_node.(i) in
      acc := src :: !acc;
      remove_succ_entry t src n.pred_twin.(i)
    done;
    n.pred_n <- 0;
    t.live_edges <- t.live_edges - k;
    t.removed_edges <- t.removed_edges + k;
    !acc
  end

let clear_succs t n =
  let k = n.succ_n in
  if k > 0 then begin
    for i = 0 to k - 1 do
      remove_pred_entry t (handle t n.succ_node.(i)) n.succ_twin.(i)
    done;
    n.succ_n <- 0;
    t.live_edges <- t.live_edges - k;
    t.removed_edges <- t.removed_edges + k
  end

let remove_node t n =
  check_alive "Graph.remove_node" n;
  clear_preds t n;
  clear_succs t n;
  Order_list.delete n.order;
  n.dead <- true;
  (* recycle the slot under a fresh generation word *)
  t.handles.(n.slot) <- None;
  t.gens.(n.slot) <- (t.gens.(n.slot) + 1) mod gen_limit;
  t.free <- n.slot :: t.free;
  t.live_nodes <- t.live_nodes - 1

let iter_succ f n =
  check_alive "Graph.iter_succ" n;
  let t = n.owner in
  for i = 0 to n.succ_n - 1 do
    f (handle t n.succ_node.(i))
  done

let iter_pred f n =
  check_alive "Graph.iter_pred" n;
  let t = n.owner in
  for i = 0 to n.pred_n - 1 do
    f (handle t n.pred_node.(i))
  done

let succ_count n = n.succ_n
let pred_count n = n.pred_n

(* Restore topological order after discovering the edge src → dst with
   order(dst) < order(src) — the Pearce–Kelly algorithm ("A dynamic
   topological sort algorithm for directed acyclic graphs", JEA 2006),
   the kind of machinery the paper's §2 cites for maintaining evaluation
   order "in the presence of graph changes". Provided every prior edge
   respected the order (the engine calls this on each violation, so the
   invariant is maintained from an empty graph), the affected region is
   the forward cone of [dst] below [src]'s priority plus the backward
   cone of [src] above [dst]'s priority; permuting the region's existing
   priority slots — backward cone first — restores the invariant. A
   cycle through the new edge is detected when the forward walk reaches
   [src]; the order is then left untouched (the evaluator is correct
   under any order; order only reduces redundant re-execution). *)
let restore_topological_order t ~src ~dst =
  ignore t;
  if not (order_lt dst src) then `Already_ordered
  else begin
    let exception Cycle_found in
    let fwd_tbl : (int, unit) Hashtbl.t = Hashtbl.create 16 in
    let fwd = ref [] in
    let rec walk_f n =
      if n.id = src.id then raise Cycle_found;
      if not (Hashtbl.mem fwd_tbl n.id) then begin
        Hashtbl.replace fwd_tbl n.id ();
        fwd := n :: !fwd;
        iter_succ
          (fun m -> if m.id = src.id || order_lt m src then walk_f m)
          n
      end
    in
    match walk_f dst with
    | exception Cycle_found -> `Cycle
    | () ->
      let bwd_tbl : (int, unit) Hashtbl.t = Hashtbl.create 16 in
      let bwd = ref [] in
      let rec walk_b n =
        if
          (not (Hashtbl.mem bwd_tbl n.id)) && not (Hashtbl.mem fwd_tbl n.id)
        then begin
          Hashtbl.replace bwd_tbl n.id ();
          bwd := n :: !bwd;
          iter_pred (fun m -> if order_lt dst m then walk_b m) n
        end
      in
      walk_b src;
      let by_order a b = Order_list.compare a.order b.order in
      let region = List.sort by_order (!fwd @ !bwd) in
      let desired = List.sort by_order !bwd @ List.sort by_order !fwd in
      let slots = List.map (fun n -> n.order) region in
      List.iter2 (fun slot n -> n.order <- slot) slots desired;
      `Reordered (List.length region)
  end

type stats = {
  live_nodes : int;
  live_edges : int;
  total_nodes : int;
  total_edges : int;
  removed_edges : int;
  order_relabels : int;
}

let stats (t : _ t) =
  {
    live_nodes = t.live_nodes;
    live_edges = t.live_edges;
    total_nodes = t.total_nodes;
    total_edges = t.total_edges;
    removed_edges = t.removed_edges;
    order_relabels = Order_list.relabel_count t.order_list;
  }

let validate t =
  Order_list.validate t.order_list;
  if t.live_nodes < 0 || t.live_edges < 0 then
    failwith "Graph.validate: negative live counts";
  (* arena coherence: every live handle sits in its own slot under the
     slot's current generation word, with twin-symmetric adjacency *)
  let live = ref 0 and edges = ref 0 in
  for s = 0 to t.slots - 1 do
    match t.handles.(s) with
    | None -> ()
    | Some n ->
      incr live;
      if n.dead then failwith "Graph.validate: dead handle in arena";
      if n.slot <> s then failwith "Graph.validate: handle in a foreign slot";
      if n.gen <> t.gens.(s) then
        failwith "Graph.validate: live handle under a stale generation word";
      for i = 0 to n.succ_n - 1 do
        incr edges;
        let d = handle t n.succ_node.(i) in
        let tp = n.succ_twin.(i) in
        if
          tp >= d.pred_n
          || d.pred_node.(tp) <> n.slot
          || d.pred_twin.(tp) <> i
        then failwith "Graph.validate: broken succ/pred twin symmetry"
      done;
      for i = 0 to n.pred_n - 1 do
        let sr = handle t n.pred_node.(i) in
        let tp = n.pred_twin.(i) in
        if
          tp >= sr.succ_n
          || sr.succ_node.(tp) <> n.slot
          || sr.succ_twin.(tp) <> i
        then failwith "Graph.validate: broken pred/succ twin symmetry"
      done
  done;
  if !live <> t.live_nodes then
    failwith "Graph.validate: live-node count disagrees with the arena";
  if !edges <> t.live_edges then
    failwith "Graph.validate: live-edge count disagrees with the arena"
