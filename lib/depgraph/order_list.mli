(** Order-maintenance list.

    Maintains a total order over a dynamic set of items supporting O(1)
    comparison and amortized O(log n) insertion at an arbitrary position.
    This is the priority substrate for approximately-topological quiescence
    propagation: when an incremental procedure instance is created during the
    execution of another, it is inserted just after its creator, so that the
    evaluator's priority queue drains dependents roughly after the things
    they depend on (cf. Hoover [Hoo87] and Alpern et al. [AHR+90]).

    The implementation is a single-level list-labeling scheme over a 62-bit
    tag space with exponential-window relabeling (Bender et al. style):
    when an insertion finds no free tag, the smallest enclosing power-of-two
    tag range whose density is below a geometrically decreasing threshold is
    evenly relabeled. *)

type t
(** A mutable ordered list. *)

type item
(** An element of the order. Items belong to exactly one list. *)

val create : unit -> t
(** [create ()] returns a fresh order with a single base item, retrievable
    with {!base}. *)

val base : t -> item
(** The first item of the order; it is never deleted. *)

val last : t -> item
(** The current last item of the order. O(1). *)

val insert_after : item -> item
(** [insert_after x] creates a new item immediately after [x] in the order.
    Amortized O(log n). *)

val insert_before : item -> item
(** [insert_before x] creates a new item immediately before [x]. [x] must
    not be the base item.
    @raise Invalid_argument if [x] is the base item. *)

val delete : item -> unit
(** Removes an item from the order. Comparing a deleted item is a
    programming error (checked: raises [Invalid_argument]). Deleting the
    base item raises [Invalid_argument]. *)

val compare : item -> item -> int
(** Total-order comparison. O(1). Items must belong to the same list.
    @raise Invalid_argument if either item was deleted. *)

val lt : item -> item -> bool
(** [lt a b] is [compare a b < 0], minus the liveness check: a bare tag
    comparison, for the settle path's heap sifts. Calling it on a
    deleted item is unspecified (use {!compare} when liveness is not
    guaranteed by construction). *)

val leq : item -> item -> bool
(** [leq a b] is [not (lt b a)]; same contract as {!lt}. *)

val length : t -> int
(** Number of live items (including the base item). O(1). *)

val relabel_count : t -> int
(** Total number of items moved by relabeling since creation; exposed for
    the E5/E6 bookkeeping benches. *)

val validate : t -> unit
(** Checks internal invariants (strictly increasing labels, consistent
    links); for tests.
    @raise Failure if an invariant is broken. *)
