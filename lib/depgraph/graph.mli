(** The dynamic dependency graph of paper §4.1, arena-allocated.

    Nodes represent incremental procedure instances and the abstract storage
    locations they touch; an edge [u → v] records that the most recent
    execution of the instance at [v] read or wrote the value at [u]. Each
    node carries a client payload (the engine's bookkeeping record) and an
    {!Order_list} item giving its approximate topological priority.

    Representation: nodes live in a slot {e arena} — flat growable arrays
    indexed by a small integer slot — and adjacency is flat parallel [int]
    arrays of twinned entries rather than linked edge records. Position [i]
    of [u]'s successor arrays names [v]'s slot together with the index [j]
    of the twin entry in [v]'s predecessor arrays, and vice versa; removal
    is swap-remove with a twin-backpointer fixup, so [clear_preds] — the
    paper's [RemovePredEdges], run before every re-execution — still costs
    O(1) per edge (§9.2: "the O(1) cost of removing each edge can be
    charged to the edge creation") and the steady-state edge churn of
    re-execution allocates nothing.

    Slots are recycled under a {e generation word} (see {!generation});
    handle liveness is an exact per-node flag, so generation wraparound
    cannot resurrect a removed node.

    Duplicate suppression: within a single execution of a consumer, repeated
    accesses to the same source create only one edge, deduplicated by an
    execution stamp on the source node. *)

type 'a t
(** A dependency graph with payloads of type ['a]. *)

type 'a node
(** A node handle. Handles are ordinary heap values compared with physical
    equality ([==]); the arena arrays map slots back to handles, so client
    code never sees raw indices unless it asks ({!slot}). *)

val create : unit -> 'a t

(** {1 Nodes} *)

val add_node : 'a t -> order_after:'a node option -> 'a -> 'a node
(** [add_node t ~order_after:anchor payload] creates a node. Its priority is
    inserted immediately after [anchor]'s, or at the very end of the order
    when [anchor] is [None]. *)

val add_node_before : 'a t -> order_before:'a node -> 'a -> 'a node
(** Like {!add_node} but the new node's priority precedes [order_before]'s —
    used for dependencies discovered during the consumer's execution, which
    must drain before the consumer under quiescence propagation. *)

val remove_node : 'a t -> 'a node -> unit
(** Detaches every incident edge, retires the node's order item, and
    recycles the node's arena slot under a fresh generation word. The node
    must not be used afterwards (checked: raises [Invalid_argument]). *)

val payload : 'a node -> 'a
(** The client payload the node was created with. *)

val id : 'a node -> int
(** A graph-lifetime-unique identifier. Unlike {!slot}, ids are never
    recycled, so they are safe as hash-table keys outliving the node. *)

val slot : 'a node -> int
(** The node's arena index. Slots are recycled by {!remove_node}; a slot
    only names this node while the node is live. Exposed for tests and
    diagnostics — prefer {!id} for any key that outlives the node. *)

val generation : 'a node -> int
(** The generation word of the node's slot at allocation. Each recycling of
    a slot increments the slot's generation modulo {!gen_limit}, letting
    {!validate} prove no live handle aliases a recycled slot. Wraparound is
    benign: liveness is tracked by an exact per-node flag, and the
    generation word is only a cross-check. *)

val gen_limit : int
(** Generation words live in [0 .. gen_limit - 1] (currently [2^16]). *)

val order_lt : 'a node -> 'a node -> bool
(** Priority comparison: [order_lt u v] iff [u] drains before [v]. *)

val order_leq : 'a node -> 'a node -> bool
(** [order_leq u v] is [not (order_lt v u)]; the settle heaps compare
    through this. *)

val restore_topological_order :
  'a t ->
  src:'a node ->
  dst:'a node ->
  [ `Already_ordered | `Reordered of int | `Cycle ]
(** Pearce–Kelly dynamic topological-order restoration for a just-added
    edge [src → dst]: when [dst] currently drains before [src], permute
    the priorities of the affected region so every dependency again
    precedes its dependents. Returns how many nodes were moved, or
    [`Cycle] (order untouched) when the edge closes a cycle. This is the
    "compute this order in the presence of graph changes" machinery the
    paper's §2 cites; the evaluator is correct under any order, so this
    only reduces redundant re-execution. *)

val reorder_before : 'a node -> 'a node -> unit
(** [reorder_before u v] moves [u]'s priority to just before [v]'s. Used
    when a new edge [u → v] is discovered with [u] currently after [v]
    (out-of-order edge), restoring approximate topological order. *)

(** {1 Edges} *)

val add_edge : stamp:int -> src:'a node -> dst:'a node -> unit
(** Records dependency [src → dst]. [stamp] identifies the current
    execution of [dst]; a second call with the same [(src, stamp)] is a
    no-op (duplicate access within one execution). Steady-state cost: two
    array stores per side, no allocation once the adjacency arrays have
    grown to their working size. *)

val clear_preds : 'a t -> 'a node -> unit
(** Removes every incoming edge of the node ([RemovePredEdges]) by
    swap-remove on each source's successor arrays. O(1) per edge, no
    allocation. *)

val clear_preds_collect : 'a t -> 'a node -> 'a node list
(** Like {!clear_preds}, but returns the detached sources. One traversal
    serves both the engine's pre-execution edge snapshot (kept so a
    failed execution can reinstate the previous dependency set) and the
    removal itself. *)

val iter_succ : ('a node -> unit) -> 'a node -> unit
(** Applies a function to every successor (dependent) of the node. The
    callback must not add or remove edges of this node. *)

val iter_pred : ('a node -> unit) -> 'a node -> unit
(** Applies a function to every predecessor (dependency) of the node. The
    callback must not add or remove edges of this node. *)

val succ_count : 'a node -> int
(** Number of outgoing (dependent) edges. *)

val pred_count : 'a node -> int
(** Number of incoming (dependency) edges. *)

(** {1 Statistics (benches E5/E6)} *)

type stats = {
  live_nodes : int;
  live_edges : int;
  total_nodes : int;  (** nodes ever created *)
  total_edges : int;  (** edges ever created, after deduplication *)
  removed_edges : int;
  order_relabels : int;  (** items moved by order-maintenance relabeling *)
}

val stats : 'a t -> stats
(** Lifetime counters for the graph, cheap to read. *)

val validate : 'a t -> unit
(** Internal invariant check for tests: twin symmetry of the flat
    adjacency, arena/handle/generation coherence, counts, order. *)
