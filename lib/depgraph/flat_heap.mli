(** Flat array binary heap — the engine's inconsistent-set queue.

    Same interface as {!Pairing_heap}, but elements live in one growable
    array: {!insert} and {!pop_min} shuffle array cells and allocate
    nothing in steady state (the backing array doubles amortized-O(1)).
    This is the priority queue behind the settle loop's inconsistent set
    (paper §4.5), where per-operation allocation dominated the pairing
    heap's cost profile.

    The trade is {!meld}: O(m log n) bulk insert rather than the pairing
    heap's O(1) splice. The engine only melds when the dynamic
    partitioning of §6.3 unions two partitions — rare, and absent
    entirely in the default unpartitioned mode.

    The heap does not deduplicate; callers that need set semantics (the
    engine does) keep an [in_set] flag on elements and skip stale pops.
    Vacated cells may retain stale references to popped elements until
    overwritten or {!clear}ed. *)

type 'a t
(** A heap of ['a] ordered by the [leq] supplied at creation. *)

val create : leq:('a -> 'a -> bool) -> 'a t
(** [create ~leq] is an empty heap ordered by [leq] (non-strict). *)

val is_empty : 'a t -> bool
(** [is_empty h] iff [h] holds no elements. O(1). *)

val length : 'a t -> int
(** Number of elements currently in the heap (counting duplicates). O(1). *)

val insert : 'a t -> 'a -> unit
(** Adds an element. Amortized O(log n), allocation-free in steady
    state. *)

val pop_min : 'a t -> 'a option
(** Removes and returns a minimal element, or [None] if empty.
    O(log n). *)

val peek_min : 'a t -> 'a option
(** Returns a minimal element without removing it, or [None] if empty.
    O(1). *)

val meld : 'a t -> 'a t -> unit
(** [meld dst src] moves all elements of [src] into [dst], leaving [src]
    empty. Both heaps must have been created with the same [leq]
    (checked by physical equality of the closures). O(m log n). *)

val clear : 'a t -> unit
(** Empties the heap and drops the backing array, releasing any stale
    element references. *)

val to_list : 'a t -> 'a list
(** Elements in unspecified order; for tests. *)
