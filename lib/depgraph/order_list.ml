(* Order-maintenance by list labeling.

   Items carry integer tags in [0, max_tag]; list order coincides with tag
   order. Insertion bisects the gap to the successor tag. When the gap is
   exhausted we relabel: starting from the insertion point we examine
   enclosing tag ranges of size 2^i (aligned on multiples of 2^i) and stop
   at the first whose occupancy is below a density threshold that decreases
   geometrically with i (overflow threshold T = 3/2); the occupants are then
   spread uniformly across the range. This gives amortized O(log n)
   insertion (Bender et al., "Two simplified algorithms for maintaining
   order in a list", ESA 2002). *)

type item = {
  mutable tag : int;
  mutable prev : item option;
  mutable next : item option;
  mutable alive : bool;
  owner : t;
}

and t = {
  mutable first : item option; (* base item; set once at creation *)
  mutable last_item : item option;
  mutable size : int;
  mutable relabels : int;
}

let max_tag = 1 lsl 60

let base t =
  match t.first with
  | Some b -> b
  | None -> assert false

let last t =
  match t.last_item with
  | Some b -> b
  | None -> assert false

let create () =
  let rec t = { first = None; last_item = None; size = 1; relabels = 0 }
  and b = { tag = 0; prev = None; next = None; alive = true; owner = t } in
  t.first <- Some b;
  t.last_item <- Some b;
  t

let check_alive who x =
  if not x.alive then invalid_arg (who ^ ": deleted order item")

let compare a b =
  check_alive "Order_list.compare" a;
  check_alive "Order_list.compare" b;
  if a.tag < b.tag then -1 else if a.tag > b.tag then 1 else 0

(* [lt]/[leq] are the settle path's priority comparisons — every heap
   sift and every out-of-order probe lands here, so they are bare tag
   loads: no liveness check (deleted items are unreachable from the
   graph by construction; [compare] keeps the checked behaviour for
   external callers). *)
let[@inline] lt a b = a.tag < b.tag
let[@inline] leq a b = a.tag <= b.tag

let length t = t.size

let relabel_count t = t.relabels

(* Minimum tag gap left between neighbours after a spread. Relabeling is
   triggered by repeated insertion at one point (the engine inserts every
   node a consumer's execution discovers just before the consumer), and
   each spread buys [log2 min_gap] bisections at that point before the
   gap is exhausted again — a larger value trades rarer relabel events
   for slightly wider ones. *)
let min_gap = 8

let relabel t x =
  (* Find the smallest enclosing range [start, start+2^i) with occupancy
     density below (2/3)^i, then spread its occupants evenly. The base item
     (tag 0) may be moved like any other; order is preserved. Occupants are
     never materialized as a list: each level walks pointers outward from
     [x] to find the range's leftmost occupant and count, and the final
     spread walks [next] from the leftmost — relabeling allocates
     nothing. *)
  let rec find i =
    let width = 1 lsl i in
    if width > max_tag then failwith "Order_list: tag space exhausted";
    let start = x.tag - (x.tag mod width) in
    let stop = start + width in
    let rec back lm = function
      | Some p when p.tag >= start -> back p p.prev
      | _ -> lm
    in
    let leftmost = back x x.prev in
    let rec count acc = function
      | Some n when n.tag < stop -> count (acc + 1) n.next
      | _ -> acc
    in
    let n = count 1 leftmost.next in
    (* density threshold: overflow iff n >= width / T^i with T = 3/2,
       computed in integers as n * 3^i >= width * 2^i. *)
    let rec pow b e = if e = 0 then 1 else b * pow b (e - 1) in
    let threshold_ok =
      (* guard against overflow for large i by capping the exponent used in
         the density test; beyond ~36 levels the test always passes for any
         realistic n. *)
      if i >= 36 then true
      else n * pow 3 i < width * pow 2 i
    in
    (* also require room for gaps of at least [min_gap] after spreading,
       so the caller's bisection finds free tags for a few more inserts *)
    if threshold_ok && (n + 1) * min_gap <= width then (start, width, leftmost, n)
    else find (i + 1)
  in
  let start, width, leftmost, n = find 1 in
  let gap = width / (n + 1) in
  let rec assign k it =
    if k <= n then begin
      it.tag <- start + (k * gap);
      match it.next with Some nx -> assign (k + 1) nx | None -> ()
    end
  in
  assign 1 leftmost;
  t.relabels <- t.relabels + n

let insert_after x =
  check_alive "Order_list.insert_after" x;
  let t = x.owner in
  let gap_to_next () =
    match x.next with Some n -> n.tag - x.tag | None -> max_tag - x.tag
  in
  if gap_to_next () < 2 then relabel t x;
  let gap = gap_to_next () in
  assert (gap >= 2);
  let it =
    { tag = x.tag + (gap / 2); prev = Some x; next = x.next; alive = true;
      owner = t }
  in
  (match x.next with Some n -> n.prev <- Some it | None -> t.last_item <- Some it);
  x.next <- Some it;
  t.size <- t.size + 1;
  it

let insert_before x =
  check_alive "Order_list.insert_before" x;
  match x.prev with
  | None -> invalid_arg "Order_list.insert_before: base item"
  | Some p -> insert_after p

let delete x =
  check_alive "Order_list.delete" x;
  (match x.prev with
  | None -> invalid_arg "Order_list.delete: base item"
  | Some _ -> ());
  (match x.prev with Some p -> p.next <- x.next | None -> ());
  (match x.next with Some n -> n.prev <- x.prev | None -> x.owner.last_item <- x.prev);
  x.alive <- false;
  x.owner.size <- x.owner.size - 1

let validate t =
  let rec go count = function
    | None -> count
    | Some it ->
      if not it.alive then failwith "Order_list.validate: dead item linked";
      (match it.next with
      | Some n ->
        if n.tag <= it.tag then failwith "Order_list.validate: tags not increasing";
        (match n.prev with
        | Some p when p == it -> ()
        | _ -> failwith "Order_list.validate: broken back link")
      | None -> ());
      go (count + 1) it.next
  in
  let n = go 0 t.first in
  if n <> t.size then failwith "Order_list.validate: size mismatch"
