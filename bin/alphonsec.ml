(* alphonsec — the Alphonse-L compiler driver (paper §8).

   Subcommands:
     check      parse and type check a module
     print      parse, check, and unparse (the identity transform)
     transform  emit the Algorithm 2 display: access/modify/call inserted
     analyze    report the §6.1 site analysis, interprocedural effects,
                and §6.3 static partitions
     lint       incremental-correctness diagnostics (ALF001–ALF006)
     run        execute a module (conventional or Alphonse execution)
     compare    run both executions, check Theorem 5.1, report speedup
     profile    run under telemetry: per-instance profile, hot-node DOT,
                provenance queries (--why), Chrome trace export
     graph      dump the dependency graph of a run as DOT
     samples    list or dump the built-in sample programs
     sheet      run a durable spreadsheet edit script (WAL + snapshots)
     recover    recover a durable state directory and report
     metrics    run a module and dump the metrics registry (Prometheus/JSON)
     serve      HTTP exposition: /metrics /metrics.json /healthz /readyz
     daemon     alphonsed: multi-tenant NDJSON daemon (one sheet per tenant)
     call       send NDJSON request lines to a running daemon *)

module P = Lang.Parser
module Tc = Lang.Typecheck
module Interp = Lang.Interp
module Analysis = Transform.Analysis
module Effects = Analyze.Effects
module Diag = Analyze.Diag
module Lint = Analyze.Lint
module Incr = Transform.Incr_interp
module Engine = Alphonse.Engine
module Telemetry = Alphonse.Telemetry
module Inspect = Alphonse.Inspect
module Metrics = Alphonse.Metrics
module Flight = Alphonse.Flight
module Serve = Alphonse.Serve
module Daemon = Alphonse.Daemon
open Cmdliner

let read_source path =
  match path with
  | "-" -> In_channel.input_all In_channel.stdin
  | path -> (
    match Lang.Samples.all |> List.assoc_opt path with
    | Some src -> src (* convenience: sample name instead of a path *)
    | None -> In_channel.with_open_text path In_channel.input_all)

let compile src =
  match P.parse src with
  | Error e -> Error e
  | Ok m -> (
    match Tc.check m with
    | Ok env -> Ok env
    | Error es ->
      Error (Fmt.str "%a" Fmt.(list ~sep:(any "\n") Tc.pp_error) es))

let with_module path f =
  match compile (read_source path) with
  | Error e ->
    Fmt.epr "%s@." e;
    1
  | Ok env -> f env

(* ---------------- common args ---------------- *)

let path_arg =
  let doc =
    "Path to an Alphonse-L module, '-' for stdin, or the name of a \
     built-in sample (see $(b,alphonsec samples))."
  in
  Arg.(required & pos 0 (some string) None & info [] ~docv:"MODULE" ~doc)

let strategy_arg =
  let doc = "Default evaluation strategy: 'demand' or 'eager'." in
  let strategy =
    Arg.enum [ ("demand", Engine.Demand); ("eager", Engine.Eager) ]
  in
  Arg.(value & opt strategy Engine.Demand & info [ "strategy" ] ~doc)

let partitioning_arg =
  let doc = "Enable dynamic dependency-graph partitioning (paper 6.3)." in
  Arg.(value & flag & info [ "partitioning" ] ~doc)

let domains_arg =
  let doc =
    "Settle with the level-synchronized parallel evaluator on $(docv) \
     concurrent lanes (OCaml 5 domains; the calling domain is one of \
     them, so 1 exercises the parallel machinery serially). Omit for \
     serial settling. Theorem 5.1 holds under every domain count."
  in
  Arg.(
    value & opt (some int) None & info [ "domains" ] ~docv:"N" ~doc)

let fuel_arg =
  let doc = "Abort after this many interpreter steps." in
  Arg.(value & opt int 200_000_000 & info [ "fuel" ] ~doc)

let log_arg =
  let doc =
    "Stream the engine's decisions (marks, re-executions, settle steps)      to stderr while running — the alphonse.engine Logs source at Debug."
  in
  Arg.(value & flag & info [ "log" ] ~doc)

let setup_log enabled =
  if enabled then begin
    Logs.set_reporter (Logs_fmt.reporter ());
    Logs.Src.set_level Engine.log_src (Some Logs.Debug)
  end

let trace_arg =
  let doc =
    "Record structured telemetry and write it to $(docv) as Chrome \
     trace-event JSON (open in Perfetto or chrome://tracing)."
  in
  Arg.(
    value
    & opt (some string) None
    & info [ "trace" ] ~docv:"FILE" ~doc)

let profile_arg =
  let doc =
    "Print a per-instance profile (re-executions, self time, settle \
     latency) to stderr after the run."
  in
  Arg.(value & flag & info [ "profile" ] ~doc)

(* Telemetry recorder shared by --trace/--profile/the profile command:
   generously sized so even long sessions keep their whole event stream. *)
let make_telemetry () = Telemetry.create ~capacity:(1 lsl 20) ()

let recorder_for ~trace ~profile =
  if trace <> None || profile then Some (make_telemetry ()) else None

let write_trace file tm =
  match
    Out_channel.with_open_text file (fun oc ->
        Out_channel.output_string oc (Telemetry.to_chrome_trace tm))
  with
  | () ->
    Fmt.epr "[trace: %d event(s) -> %s%s]@." (Telemetry.total_emitted tm) file
      (if Telemetry.dropped tm > 0 then
         Fmt.str ", %d dropped by the ring" (Telemetry.dropped tm)
       else "")
  | exception Sys_error msg ->
    Fmt.epr "cannot write trace: %s@." msg;
    exit 1

let emit_trace trace tm =
  match (trace, tm) with
  | Some file, Some tm -> write_trace file tm
  | _ -> ()

let emit_profile ~ppf profile tm =
  match tm with
  | Some tm when profile ->
    Fmt.pf ppf "== per-instance profile (hottest first) ==@.%a@."
      (Inspect.pp_profile_quantiles ~top:25)
      (Telemetry.profile tm)
  | _ -> ()

(* The flight recorder is always on: even without --trace/--profile the
   engine keeps a small bounded telemetry window, and an anomaly — a
   quarantine, a poisoning, a watchdog degradation, a degraded crash
   recovery — dumps it as a timestamped incident report. *)
let incidents_arg =
  let doc =
    "Directory for flight-recorder incident reports (created on the \
     first incident; a report carries the trigger, the trailing \
     telemetry window, a metrics snapshot and the failing node's \
     provenance chain)."
  in
  Arg.(value & opt string "incidents" & info [ "incidents" ] ~docv:"DIR" ~doc)

let arm_flight ?metrics ~incidents tm =
  ignore
    (Flight.arm ?metrics ~dir:incidents
       ~on_report:(fun path -> Fmt.epr "[incident report: %s]@." path)
       tm)

(* ---------------- subcommands ---------------- *)

let check_cmd =
  let run path =
    with_module path (fun env ->
        Fmt.pr "module %s: %d type(s), %d procedure(s), %d global(s) — OK@."
          env.Tc.m.Lang.Ast.modname
          (List.length env.Tc.m.Lang.Ast.types)
          (List.length env.Tc.m.Lang.Ast.procs)
          (List.length env.Tc.m.Lang.Ast.globals);
        0)
  in
  Cmd.v
    (Cmd.info "check" ~doc:"Parse and type check a module")
    Term.(const run $ path_arg)

let print_cmd =
  let run path =
    with_module path (fun env ->
        Fmt.pr "%a@." (Lang.Pretty.pp_module ~marks:false) env.Tc.m;
        0)
  in
  Cmd.v
    (Cmd.info "print" ~doc:"Unparse a module (pretty-printer round trip)")
    Term.(const run $ path_arg)

let transform_cmd =
  let run path =
    with_module path (fun env ->
        let _ = Analysis.analyze env in
        Fmt.pr "%a@." (Lang.Pretty.pp_module ~marks:true) env.Tc.m;
        0)
  in
  let doc =
    "Emit the transformed program with explicit access/modify/call \
     operations (the paper's Algorithm 2 display form)"
  in
  Cmd.v (Cmd.info "transform" ~doc) Term.(const run $ path_arg)

let analyze_cmd =
  let run path no_sharpen effects =
    with_module path (fun env ->
        let r = Analysis.analyze ~sharpen:(not no_sharpen) env in
        let sorted tbl =
          Hashtbl.fold (fun k _ acc -> k :: acc) tbl [] |> List.sort compare
        in
        Fmt.pr "== incremental procedures ==@.";
        List.iter
          (fun p ->
            Fmt.pr "  %s %a@." p Lang.Pretty.pp_pragma
              (Hashtbl.find r.Analysis.incremental_procs p))
          (sorted r.Analysis.incremental_procs);
        Fmt.pr "== reachable from incremental code ==@.";
        List.iter (Fmt.pr "  %s@.") (sorted r.Analysis.reachable_procs);
        Fmt.pr "== tracked globals ==@.";
        List.iter (Fmt.pr "  %s@.") (sorted r.Analysis.tracked_globals);
        Fmt.pr "== tracked fields ==@.";
        List.iter (Fmt.pr "  %s@.") (sorted r.Analysis.tracked_fields);
        if effects then begin
          let eff = Effects.compute env in
          Fmt.pr "== interprocedural effects (transitive) ==@.";
          List.iter
            (fun p -> Fmt.pr "  %-14s %a@." p Effects.pp_eff (Effects.summary eff p))
            (Effects.procs eff)
        end;
        Fmt.pr "== instrumentation sites (6.1) ==@.%a@." Analysis.pp_stats
          r.Analysis.stats;
        Fmt.pr "== static partitions (6.3) ==@.";
        List.iter
          (fun (name, comp) -> Fmt.pr "  %-24s component %d@." name comp)
          (Analysis.connectivity env r);
        0)
  in
  let no_sharpen =
    Arg.(
      value & flag
      & info [ "no-sharpen" ]
          ~doc:
            "Disable the interprocedural-effect sharpening of the 6.1 \
             analysis: report the pure reachability result (every location \
             reachable incremental code may access is tracked, even if no \
             instance could ever observe a change to it).")
  in
  let effects =
    Arg.(
      value & flag
      & info [ "effects" ]
          ~doc:
            "Also print each procedure's transitive may-read/may-write \
             summary over globals, fields, and the array pool.")
  in
  let doc =
    "Report the static analysis: instrumented sites, effects, partitions"
  in
  Cmd.v (Cmd.info "analyze" ~doc)
    Term.(const run $ path_arg $ no_sharpen $ effects)

let lint_cmd =
  let run path json warn_error enable disable show_info list_rules =
    if list_rules then begin
      Fmt.pr "%a@?" Diag.pp_rules ();
      0
    end
    else
      match path with
      | None ->
        Fmt.epr "lint: a MODULE argument is required (or --rules)@.";
        2
      | Some path ->
        with_module path (fun env ->
            let enabled code =
              (match enable with [] -> true | es -> List.mem code es)
              && not (List.mem code disable)
            in
            let cfg = { Diag.enabled; warn_error; show_info } in
            let ds = Diag.apply cfg (Lint.run env) in
            let module_name = env.Tc.m.Lang.Ast.modname in
            if json then
              Fmt.pr "%s@."
                (Alphonse.Json.to_string (Diag.to_json ~module_name ds))
            else Fmt.pr "%a@?" (Diag.pp_text cfg ~module_name) ds;
            Diag.exit_code cfg ds)
  in
  let path_opt =
    let doc =
      "Path to an Alphonse-L module, '-' for stdin, or a built-in sample \
       name."
    in
    Arg.(value & pos 0 (some string) None & info [] ~docv:"MODULE" ~doc)
  in
  let json =
    Arg.(
      value & flag
      & info [ "json" ]
          ~doc:"Emit the findings as a JSON object instead of text.")
  in
  let warn_error =
    Arg.(
      value & flag
      & info [ "warn-error" ]
          ~doc:"Exit nonzero on warnings, not only on errors.")
  in
  let enable =
    Arg.(
      value & opt_all string []
      & info [ "enable" ] ~docv:"CODE"
          ~doc:
            "Run only the listed rule(s) (repeatable). Default: all rules.")
  in
  let disable =
    Arg.(
      value & opt_all string []
      & info [ "disable" ] ~docv:"CODE"
          ~doc:"Disable the listed rule(s) (repeatable).")
  in
  let show_info =
    Arg.(
      value & flag
      & info [ "info" ]
          ~doc:
            "Show info-severity findings (hidden by default; they never \
             affect the exit code).")
  in
  let list_rules =
    Arg.(
      value & flag
      & info [ "rules" ] ~doc:"List the rule registry and exit.")
  in
  let doc =
    "Incremental-correctness diagnostics: unsound UNCHECKED pragmas, \
     self-invalidating or statically cyclic incremental procedures, dead \
     incremental code, and dead tracked dependencies (rules \
     ALF001-ALF006)."
  in
  Cmd.v (Cmd.info "lint" ~doc)
    Term.(
      const run $ path_opt $ json $ warn_error $ enable $ disable $ show_info
      $ list_rules)

let run_cmd =
  let run path conventional strategy partitioning domains fuel log trace
      profile fault_seed audit incidents =
    setup_log log;
    with_module path (fun env ->
        if conventional then begin
          let out = Interp.run ~fuel env in
          print_string out.Interp.output;
          match out.Interp.error with
          | None ->
            Fmt.epr "[conventional: %d steps]@." out.Interp.steps;
            0
          | Some e ->
            Fmt.epr "runtime error: %s@." e;
            1
        end
        else begin
          let tm =
            (* a small always-on ring when no recorder was asked for: the
               flight recorder needs a window to dump *)
            match recorder_for ~trace ~profile with
            | Some tm -> tm
            | None -> Telemetry.create ~capacity:4096 ()
          in
          (* an always-on registry too, so an incident report carries the
             counters at the moment of the trigger *)
          let reg = Metrics.create () in
          arm_flight ~metrics:reg ~incidents tm;
          let tm = Some tm in
          let out =
            Incr.run ~fuel ~default_strategy:strategy ~partitioning
              ?telemetry:tm ~metrics:reg ?fault_seed ~audit ?domains env
          in
          print_string out.Incr.output;
          emit_trace trace tm;
          emit_profile ~ppf:Fmt.stderr profile tm;
          match out.Incr.error with
          | None ->
            Fmt.epr "[alphonse: %d steps]@.%a@." out.Incr.steps
              Alphonse.Inspect.pp_stats out.Incr.engine_stats;
            0
          | Some e ->
            Fmt.epr "runtime error: %s@." e;
            1
        end)
  in
  let conventional =
    Arg.(
      value & flag
      & info [ "conventional" ]
          ~doc:"Use the conventional (exhaustive) execution model.")
  in
  let fault_seed =
    Arg.(
      value
      & opt (some int) None
      & info [ "fault-seed" ] ~docv:"SEED"
          ~doc:
            "Fault-injection mode: install a seeded injector that makes \
             engine decision points occasionally raise, exercising the \
             recovery machinery (quarantine, retry, edge rollback). The \
             run's output must still match a clean run.")
  in
  let audit =
    Arg.(
      value & flag
      & info [ "audit" ]
          ~doc:
            "Run the invariant auditor after every settle step; an \
             incoherence aborts the run with a violation report.")
  in
  Cmd.v
    (Cmd.info "run" ~doc:"Execute a module")
    Term.(
      const run $ path_arg $ conventional $ strategy_arg $ partitioning_arg
      $ domains_arg $ fuel_arg $ log_arg $ trace_arg $ profile_arg
      $ fault_seed $ audit $ incidents_arg)

let compare_cmd =
  let run path strategy partitioning domains fuel trace profile =
    with_module path (fun env ->
        let conv = Interp.run ~fuel env in
        let tm = recorder_for ~trace ~profile in
        let inc =
          Incr.run ~fuel ~default_strategy:strategy ~partitioning
            ?telemetry:tm ?domains env
        in
        emit_trace trace tm;
        emit_profile ~ppf:Fmt.stderr profile tm;
        (match (conv.Interp.error, inc.Incr.error) with
        | None, None -> ()
        | ce, ie ->
          Fmt.epr "conventional error: %a@.alphonse error: %a@."
            Fmt.(option string)
            ce
            Fmt.(option string)
            ie);
        let same = conv.Interp.output = inc.Incr.output in
        Fmt.pr "Theorem 5.1 (same output): %s@."
          (if same then "HOLDS" else "VIOLATED");
        Fmt.pr "conventional steps: %d@." conv.Interp.steps;
        Fmt.pr "alphonse steps:     %d (%.2fx)@." inc.Incr.steps
          (float_of_int conv.Interp.steps /. float_of_int (max 1 inc.Incr.steps));
        Fmt.pr "%a@." Alphonse.Inspect.pp_stats inc.Incr.engine_stats;
        Fmt.pr "%a@." Alphonse.Inspect.pp_graph_stats inc.Incr.graph_stats;
        if same then 0 else 2)
  in
  let doc = "Run both executions and check Theorem 5.1" in
  Cmd.v (Cmd.info "compare" ~doc)
    Term.(
      const run $ path_arg $ strategy_arg $ partitioning_arg $ domains_arg
      $ fuel_arg $ trace_arg $ profile_arg)

let profile_cmd =
  let run path strategy partitioning domains top dot why trace =
    let top = match top with Some 0 -> None | t -> t in
    with_module path (fun env ->
        let tm = make_telemetry () in
        let analysis = Analysis.analyze env in
        let st =
          Incr.init_state ~default_strategy:strategy ~partitioning
            ~telemetry:tm ?domains env analysis
        in
        let error =
          match
            Incr.exec_stmts st (Hashtbl.create 8) env.Tc.m.Lang.Ast.main
          with
          | () -> false
          | exception Incr.Runtime_error (msg, p) ->
            Fmt.epr "runtime error at %a: %s@." Lang.Ast.pp_pos p msg;
            true
        in
        let eng = Incr.state_engine st in
        (match trace with Some f -> write_trace f tm | None -> ());
        let status =
          match why with
          | Some name -> (
            match Inspect.why_recomputed eng name with
            | Some w ->
              Fmt.pr "== provenance: last execution of %s ==@.%a@?" name
                Telemetry.pp_why w;
              0
            | None ->
              Fmt.epr
                "no recorded execution of %S (is it an instance name? try \
                 --dot to see them)@."
                name;
              1)
          | None ->
            if dot then
              print_string
                (Inspect.to_dot
                   ~heat:(Inspect.heat_of_profile (Telemetry.profile tm))
                   eng)
            else begin
              Fmt.pr "== per-instance profile: hottest first ==@.";
              Fmt.pr "%a@."
                (Inspect.pp_profile_quantiles ?top)
                (Telemetry.profile tm);
              (* per-domain occupancy, when parallel settles ran *)
              let occ = Telemetry.par_occupancy tm in
              if occ.Telemetry.par_levels > 0 then begin
                Fmt.pr "== parallel occupancy ==@.";
                Fmt.pr "%a@." Telemetry.pp_par_occupancy occ
              end
            end;
            0
        in
        if error && status = 0 then 1 else status)
  in
  let top_arg =
    Arg.(
      value
      & opt (some int) (Some 25)
      & info [ "top" ] ~docv:"N"
          ~doc:"Show only the $(docv) hottest instances (0 for all).")
  in
  let dot_arg =
    Arg.(
      value & flag
      & info [ "dot" ]
          ~doc:
            "Emit the dependency graph as Graphviz DOT with the hot-node \
             overlay (fill intensity = share of the hottest instance's \
             self time) instead of the table.")
  in
  let why_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "why" ] ~docv:"NAME"
          ~doc:
            "Provenance query: explain the last re-execution of the \
             instance named $(docv) — the causal chain from the mutated \
             storage cell through the inconsistency marks it propagated.")
  in
  let doc =
    "Run a module under Alphonse execution with telemetry enabled and \
     report where the time went: a per-instance profile (re-executions, \
     self time, settle-latency histogram), a hot-node DOT overlay \
     ($(b,--dot)), a provenance query ($(b,--why)), or a Chrome trace \
     ($(b,--trace))."
  in
  Cmd.v (Cmd.info "profile" ~doc)
    Term.(
      const run $ path_arg $ strategy_arg $ partitioning_arg $ domains_arg
      $ top_arg $ dot_arg $ why_arg $ trace_arg)

let graph_cmd =
  let run path show_storage =
    with_module path (fun env ->
        let analysis = Analysis.analyze env in
        let st = Incr.init_state env analysis in
        (match Incr.exec_stmts st (Hashtbl.create 8) env.Tc.m.Lang.Ast.main with
        | () -> ()
        | exception Incr.Runtime_error (msg, p) ->
          Fmt.epr "runtime error at %a: %s@." Lang.Ast.pp_pos p msg);
        print_string (Alphonse.Inspect.to_dot ~show_storage (Incr.state_engine st));
        0)
  in
  let show_storage =
    Arg.(
      value & opt bool true
      & info [ "storage" ]
          ~doc:"Include storage nodes (false: instances only).")
  in
  let doc =
    "Run a module under Alphonse execution and dump its dependency graph      in Graphviz DOT format (the debugging view of paper section 10)"
  in
  Cmd.v (Cmd.info "graph" ~doc) Term.(const run $ path_arg $ show_storage)

let samples_cmd =
  let run name =
    match name with
    | None ->
      List.iter (fun (n, _) -> Fmt.pr "%s@." n) Lang.Samples.all;
      0
    | Some n -> (
      match List.assoc_opt n Lang.Samples.all with
      | Some src ->
        print_string src;
        0
      | None ->
        Fmt.epr "unknown sample %s@." n;
        1)
  in
  let name_arg =
    Arg.(
      value & pos 0 (some string) None & info [] ~docv:"NAME"
        ~doc:"Sample to dump; omit to list all.")
  in
  Cmd.v
    (Cmd.info "samples" ~doc:"List or dump the built-in sample programs")
    Term.(const run $ name_arg)

(* ---------------- durable spreadsheet session ---------------- *)

module Durable = Alphonse.Durable
module Wal = Alphonse.Wal
module Sheet = Spreadsheet.Sheet

let state_arg =
  let doc =
    "Durable state directory: journal every edit there and (unless \
     $(b,--no-restore)) recover from it first."
  in
  Arg.(value & opt (some string) None & info [ "state" ] ~docv:"DIR" ~doc)

let wal_arg =
  let doc = "Journal fsync policy: 'always', 'commit' or 'never'." in
  let policy =
    Arg.enum
      [ ("always", Wal.Always); ("commit", Wal.Commit); ("never", Wal.Never) ]
  in
  Arg.(value & opt policy Wal.Commit & info [ "wal" ] ~docv:"POLICY" ~doc)

(* one-token / rest-of-line split for the tiny script language *)
let split1 s =
  let s = String.trim s in
  match String.index_opt s ' ' with
  | None -> (s, "")
  | Some i ->
    ( String.sub s 0 i,
      String.trim (String.sub s (i + 1) (String.length s - i - 1)) )

let sheet_cmd =
  let run script state policy checkpoint_end kill_at no_restore domains
      incidents =
    let text =
      match script with
      | "-" -> In_channel.input_all In_channel.stdin
      | p -> In_channel.with_open_text p In_channel.input_all
    in
    let scheduling =
      Option.map (fun d -> Alphonse.Parallel.scheduling ~domains:d) domains
    in
    let sheet = Sheet.create ?scheduling () in
    let eng = Sheet.engine sheet in
    (* observability is wired before recovery so a degraded recovery is
       itself an incident, and recovery timings land in the registry *)
    let reg = Metrics.create () in
    let tm = Telemetry.create ~capacity:4096 () in
    Engine.set_metrics eng (Some reg);
    Engine.set_telemetry eng (Some tm);
    Telemetry.set_metrics tm (Some reg);
    arm_flight ~metrics:reg ~incidents tm;
    let p = Sheet.persist sheet in
    let session =
      match state with
      | None -> None
      | Some dir ->
        if not no_restore then begin
          let o = Durable.recover ~dir eng p in
          Fmt.epr "[%a]@." Durable.pp_outcome o
        end;
        let s = Durable.attach ~policy ~dir eng p in
        Sheet.set_journal sheet (Some (Durable.journal_op s));
        (match kill_at with
        | Some n ->
          let hook, _ = Alphonse.Faults.kill_nth n in
          Durable.set_kill_hook s (Some hook)
        | None -> ());
        Some s
    in
    let do_checkpoint () =
      match session with
      | Some s ->
        Fmt.epr "[checkpoint: %s]@." (Filename.basename (Durable.checkpoint s))
      | None -> Fmt.epr "[checkpoint ignored: no --state]@."
    in
    let exec lineno line =
      let line = String.trim line in
      if line = "" || line.[0] = '#' then ()
      else
        let cmd, rest = split1 line in
        match cmd with
        | "set" ->
          let cell, raw = split1 rest in
          Sheet.set sheet cell raw
        | "get" -> Fmt.pr "%s = %a@." rest Sheet.pp_value (Sheet.value_at sheet rest)
        | "render" -> print_string (Sheet.render sheet)
        | "checkpoint" -> do_checkpoint ()
        | c -> Fmt.failwith "line %d: unknown command %s" (lineno + 1) c
    in
    let code =
      try
        List.iteri exec (String.split_on_char '\n' text);
        if checkpoint_end then do_checkpoint ();
        0
      with
      | Alphonse.Faults.Killed site ->
        Fmt.epr "[killed at %s]@." site;
        3
      | Failure msg ->
        Fmt.epr "%s@." msg;
        1
    in
    Option.iter Durable.detach session;
    code
  in
  let script_arg =
    let doc =
      "Edit script: one command per line — $(b,set A1 =A2+1), $(b,get A1), \
       $(b,render), $(b,checkpoint); '#' comments. '-' for stdin."
    in
    Arg.(required & pos 0 (some string) None & info [] ~docv:"SCRIPT" ~doc)
  in
  let checkpoint_arg =
    let doc = "Write a snapshot checkpoint after the script completes." in
    Arg.(value & flag & info [ "checkpoint" ] ~doc)
  in
  let kill_arg =
    let doc =
      "Crash simulation: die (exit 3) at the $(docv)-th durability kill \
       site the session reaches. Recover with $(b,alphonsec recover)."
    in
    Arg.(value & opt (some int) None & info [ "kill-at" ] ~docv:"N" ~doc)
  in
  let no_restore_arg =
    let doc = "Do not recover from --state before running." in
    Arg.(value & flag & info [ "no-restore" ] ~doc)
  in
  let doc = "Run a durable spreadsheet edit script (journal + snapshots)" in
  Cmd.v
    (Cmd.info "sheet" ~doc)
    Term.(
      const run $ script_arg $ state_arg $ wal_arg $ checkpoint_arg $ kill_arg
      $ no_restore_arg $ domains_arg $ incidents_arg)

(* ---------------- observability ---------------- *)

let metrics_cmd =
  let run path strategy partitioning domains fuel fault_seed audit json =
    with_module path (fun env ->
        let reg = Metrics.create () in
        let out =
          Incr.run ~fuel ~default_strategy:strategy ~partitioning ~metrics:reg
            ?fault_seed ~audit ?domains env
        in
        (* stdout carries the exposition; the program's own output is
           dropped here — use [run] for it *)
        (match out.Incr.error with
        | None -> ()
        | Some e -> Fmt.epr "runtime error: %s@." e);
        if json then
          Fmt.pr "%s@." (Alphonse.Json.to_string (Metrics.to_json reg))
        else print_string (Metrics.to_prometheus reg);
        match out.Incr.error with None -> 0 | Some _ -> 1)
  in
  let json =
    Arg.(
      value & flag
      & info [ "json" ]
          ~doc:
            "Emit the registry as JSON (histograms carry count/sum and \
             estimated p50/p90/p99) instead of Prometheus text.")
  in
  let fault_seed =
    Arg.(
      value
      & opt (some int) None
      & info [ "fault-seed" ] ~docv:"SEED"
          ~doc:
            "Install a seeded fault injector for the run, so the failure \
             counters (quarantines, retries, injections) are exercised.")
  in
  let audit =
    Arg.(
      value & flag
      & info [ "audit" ] ~doc:"Run the invariant auditor per settle step.")
  in
  let doc =
    "Execute a module with the metrics registry attached and dump the \
     registry — Prometheus text format by default, JSON with $(b,--json). \
     The same registry a long-running $(b,alphonsec serve) exposes over \
     HTTP, rendered once after one run."
  in
  Cmd.v (Cmd.info "metrics" ~doc)
    Term.(
      const run $ path_arg $ strategy_arg $ partitioning_arg $ domains_arg
      $ fuel_arg $ fault_seed $ audit $ json)

let serve_cmd =
  let run port state max_requests incidents =
    let reg = Metrics.create () in
    let tm = Telemetry.create ~capacity:4096 () in
    let sheet = Sheet.create () in
    let eng = Sheet.engine sheet in
    Engine.set_metrics eng (Some reg);
    Engine.set_telemetry eng (Some tm);
    Telemetry.set_metrics tm (Some reg);
    arm_flight ~metrics:reg ~incidents tm;
    let p = Sheet.persist sheet in
    let degraded_recovery = ref false in
    let session =
      match state with
      | None -> None
      | Some dir ->
        let o = Durable.recover ~dir eng p in
        Fmt.epr "[%a]@." Durable.pp_outcome o;
        degraded_recovery := o.Durable.o_degraded;
        let s = Durable.attach ~dir eng p in
        Sheet.set_journal sheet (Some (Durable.journal_op s));
        Some s
    in
    (* ready = the state this process serves is trustworthy: the last
       recovery (if any) kept incrementality, and no instance is
       poisoned. healthz only says the process answers requests. *)
    let ready () =
      (not !degraded_recovery) && (Engine.stats eng).Engine.poisonings = 0
    in
    let srv =
      Serve.create ~port
        [
          ("/metrics", fun () -> Serve.text (Metrics.to_prometheus reg));
          ( "/metrics.json",
            fun () ->
              Serve.json (Alphonse.Json.to_string (Metrics.to_json reg)) );
          ("/healthz", fun () -> Serve.text "ok\n");
          ( "/readyz",
            fun () ->
              if ready () then Serve.text "ready\n"
              else Serve.text ~status:503 "degraded\n" );
        ]
    in
    Fmt.epr "[serving http://127.0.0.1:%d/metrics /metrics.json /healthz \
             /readyz]@."
      (Serve.port srv);
    (match max_requests with
    | Some n -> Serve.serve ~max_requests:n srv
    | None -> Serve.serve_forever srv);
    Serve.close srv;
    Option.iter Durable.detach session;
    0
  in
  let port_arg =
    let doc =
      "Port for the HTTP exposition endpoint (0 picks a free one; the \
       bound port is printed to stderr)."
    in
    Arg.(value & opt int 9464 & info [ "metrics-port" ] ~docv:"PORT" ~doc)
  in
  let max_requests_arg =
    let doc =
      "Answer exactly $(docv) requests, then exit (default: serve \
       forever). Lets scripts and CI probe the endpoint without managing \
       a daemon."
    in
    Arg.(
      value & opt (some int) None & info [ "max-requests" ] ~docv:"N" ~doc)
  in
  let doc =
    "Serve the observability surface over HTTP/1.0: Prometheus text on \
     /metrics, JSON on /metrics.json, liveness on /healthz, readiness on \
     /readyz (503 after a degraded recovery or with poisoned instances). \
     With $(b,--state), recovers the durable spreadsheet directory first \
     — its recovery counters and timings are scrapable immediately."
  in
  Cmd.v (Cmd.info "serve" ~doc)
    Term.(
      const run $ port_arg $ state_arg $ max_requests_arg $ incidents_arg)

let recover_cmd =
  let run dir render dot =
    let sheet = Sheet.create () in
    let o = Durable.recover ~dir (Sheet.engine sheet) (Sheet.persist sheet) in
    Fmt.pr "%a@." Durable.pp_outcome o;
    if render then print_string (Sheet.render sheet);
    (* node ids in the DOT are stable ids, i.e. the ids of the snapshot
       this engine was just restored from — diffable against a render of
       the engine that exported it *)
    if dot then print_string (Inspect.to_dot (Sheet.engine sheet));
    0
  in
  let dir_arg =
    let doc = "Durable state directory to recover from." in
    Arg.(
      required & opt (some string) None & info [ "state" ] ~docv:"DIR" ~doc)
  in
  let render_arg =
    let doc = "Render the recovered sheet after recovery." in
    Arg.(value & flag & info [ "render" ] ~doc)
  in
  let dot_arg =
    let doc =
      "Print the recovered dependency graph in Graphviz DOT syntax. Node \
       identities are snapshot-stable: they match the ids the exporting \
       engine reported, not the restored engine's internal indices."
    in
    Arg.(value & flag & info [ "dot" ] ~doc)
  in
  let doc = "Recover a durable spreadsheet state directory and report" in
  Cmd.v (Cmd.info "recover" ~doc)
    Term.(const run $ dir_arg $ render_arg $ dot_arg)


(* ---------------- the daemon ---------------- *)

let daemon_cmd =
  let run port metrics_port state ephemeral wal max_tenants tenant_queue
      global_queue max_settles deadline_ms =
    let reg = Metrics.create () in
    let base = Daemon.default_config ~root:state () in
    let cfg =
      {
        base with
        Daemon.d_port = port;
        d_metrics_port = metrics_port;
        d_durable = not ephemeral;
        d_wal_policy = wal;
        d_max_tenants = max_tenants;
        d_tenant_queue = tenant_queue;
        d_global_queue = global_queue;
        d_max_settles = max_settles;
        d_default_deadline =
          (if deadline_ms <= 0. then None else Some (deadline_ms /. 1000.));
      }
    in
    let d = Daemon.create ~metrics:reg cfg (Sheet.workload ()) in
    Daemon.install_signal_handlers d;
    Fmt.epr "[alphonsed: ndjson on 127.0.0.1:%d, state %s%s]@." (Daemon.port d)
      state
      (match Daemon.metrics_port d with
      | Some p -> Fmt.str ", http on 127.0.0.1:%d" p
      | None -> "");
    Daemon.run d;
    Fmt.epr "[alphonsed: drained]@.";
    0
  in
  let port_arg =
    let doc = "NDJSON protocol port (0 picks a free one; printed to stderr)." in
    Arg.(value & opt int 7465 & info [ "port" ] ~docv:"PORT" ~doc)
  in
  let metrics_port_arg =
    let doc =
      "Also serve /metrics /metrics.json /healthz /readyz /tenantz over \
       HTTP on $(docv) (0 picks a free one). Off by default."
    in
    Arg.(
      value
      & opt (some int) None
      & info [ "metrics-port" ] ~docv:"PORT" ~doc)
  in
  let state_arg =
    let doc =
      "State root; each tenant journals and snapshots under \
       $(docv)/tenants/<id>. Existing tenant directories are recovered \
       before the daemon reports ready."
    in
    Arg.(
      value & opt string "alphonsed-state" & info [ "state" ] ~docv:"DIR" ~doc)
  in
  let ephemeral_arg =
    let doc = "Disable WAL and snapshots entirely (benchmarks, scratch use)." in
    Arg.(value & flag & info [ "ephemeral" ] ~doc)
  in
  let max_tenants_arg =
    let doc = "Maximum number of hosted tenants; beyond it new tenants get 503." in
    Arg.(value & opt int 4096 & info [ "max-tenants" ] ~docv:"N" ~doc)
  in
  let tenant_queue_arg =
    let doc =
      "Per-tenant admission bound: at most $(docv) requests pending \
       (including the one running) per tenant before shedding with 503."
    in
    Arg.(value & opt int 16 & info [ "tenant-queue" ] ~docv:"N" ~doc)
  in
  let global_queue_arg =
    let doc =
      "Global admission bound: at most $(docv) requests in flight across \
       all tenants before shedding with 503."
    in
    Arg.(value & opt int 1024 & info [ "global-queue" ] ~docv:"N" ~doc)
  in
  let max_settles_arg =
    let doc = "At most $(docv) batches settle concurrently; the rest wait." in
    Arg.(value & opt int 8 & info [ "max-settles" ] ~docv:"N" ~doc)
  in
  let deadline_arg =
    let doc =
      "Default per-request deadline in milliseconds for requests that \
       carry none (0 disables). A tripped deadline cancels the settle at \
       a step boundary, rolls the batch back, and answers 408."
    in
    Arg.(value & opt float 30000. & info [ "deadline-ms" ] ~docv:"MS" ~doc)
  in
  let doc =
    "Run alphonsed: a supervised multi-tenant daemon hosting one durable \
     spreadsheet engine per tenant behind a newline-delimited JSON \
     protocol. Batches run atomically under deadlines; overload sheds \
     with 503 + retry_after_ms; a crashing tenant is restarted from its \
     own WAL with backoff (circuit breaker when flapping) without \
     touching its neighbours. SIGTERM drains: stop accepting, finish \
     in-flight batches, checkpoint every tenant, exit 0."
  in
  Cmd.v (Cmd.info "daemon" ~doc)
    Term.(
      const run $ port_arg $ metrics_port_arg $ state_arg $ ephemeral_arg
      $ wal_arg $ max_tenants_arg $ tenant_queue_arg $ global_queue_arg
      $ max_settles_arg $ deadline_arg)

let call_cmd =
  let run port file =
    let ic_req = match file with None -> stdin | Some f -> open_in f in
    let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
    match Unix.connect fd (Unix.ADDR_INET (Unix.inet_addr_loopback, port)) with
    | exception Unix.Unix_error (e, _, _) ->
      Fmt.epr "connect 127.0.0.1:%d: %s@." port (Unix.error_message e);
      2
    | () ->
      let sock_ic = Unix.in_channel_of_descr fd in
      let worst = ref 0 in
      let rec loop () =
        match input_line ic_req with
        | exception End_of_file -> ()
        | line when String.trim line = "" -> loop ()
        | line ->
          Serve.write_all fd (line ^ "\n");
          (match input_line sock_ic with
          | resp ->
            print_endline resp;
            (match
               Option.bind
                 (Option.bind (Alphonse.Json.of_string_opt resp)
                    (Alphonse.Json.member "status"))
                 Alphonse.Json.to_float
             with
            | Some st when int_of_float st >= 400 -> worst := 1
            | _ -> ());
            loop ()
          | exception End_of_file ->
            Fmt.epr "connection closed by the daemon@.";
            worst := 2)
      in
      loop ();
      (try Unix.close fd with Unix.Unix_error _ -> ());
      !worst
  in
  let port_arg =
    let doc = "Port of the running daemon." in
    Arg.(value & opt int 7465 & info [ "port" ] ~docv:"PORT" ~doc)
  in
  let file_arg =
    let doc = "Read request lines from $(docv) instead of stdin." in
    Arg.(
      value & opt (some string) None & info [ "file" ] ~docv:"FILE" ~doc)
  in
  let doc =
    "Send newline-delimited JSON request lines (stdin or $(b,--file)) to a \
     running $(b,alphonsec daemon) and print one response line per \
     request. Exits 1 if any response status is 400 or above, 2 on \
     connection errors."
  in
  Cmd.v (Cmd.info "call" ~doc) Term.(const run $ port_arg $ file_arg)

let () =
  let doc = "the Alphonse incremental-computation transformation system" in
  let info = Cmd.info "alphonsec" ~version:"1.0.0" ~doc in
  exit
    (Cmd.eval'
       (Cmd.group info
          [
            check_cmd; print_cmd; transform_cmd; analyze_cmd; lint_cmd;
            run_cmd; compare_cmd; profile_cmd; graph_cmd; samples_cmd;
            sheet_cmd; recover_cmd; metrics_cmd; serve_cmd; daemon_cmd;
            call_cmd;
          ]))
