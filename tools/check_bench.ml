(* Validate a BENCH_results.json produced by bench/main.exe: parses with
   the in-repo JSON module, checks the schema tag and that every
   experiment carries a name and well-shaped tables. Used by CI as the
   smoke check after the bench run. *)

let fail fmt = Printf.ksprintf (fun s -> prerr_endline s; exit 1) fmt

let file =
  if Array.length Sys.argv > 1 then Sys.argv.(1) else "BENCH_results.json"

let get what = function
  | Some v -> v
  | None -> fail "%s: missing or mistyped %s" file what

let () =
  if not (Sys.file_exists file) then
    fail
      "%s: no such file (did the bench run produce output? run bench/main.exe \
       first, or pass the path to its results file)"
      file;
  let s =
    match
      let ic = open_in_bin file in
      Fun.protect
        ~finally:(fun () -> close_in_noerr ic)
        (fun () -> really_input_string ic (in_channel_length ic))
    with
    | s -> s
    | exception Sys_error msg -> fail "%s: cannot read: %s" file msg
    | exception End_of_file ->
      fail
        "%s: truncated while reading (the file shrank mid-read — was the \
         bench still writing it?)"
        file
  in
  if String.trim s = "" then
    fail
      "%s: empty file (the bench was interrupted before writing results; \
       re-run bench/main.exe)"
      file;
  let j =
    match Alphonse.Json.of_string_opt s with
    | Some j -> j
    | None ->
      fail
        "%s: not valid JSON (%d byte(s); a partial write usually means the \
         bench was interrupted — re-run it)"
        file (String.length s)
  in
  let open Alphonse.Json in
  let schema = get "schema" (Option.bind (member "schema" j) to_str) in
  if schema <> "alphonse-bench/1" then
    fail "%s: unexpected schema tag %S" file schema;
  let exps = get "experiments" (Option.bind (member "experiments" j) to_list) in
  if exps = [] then fail "%s: no experiments recorded" file;
  List.iter
    (fun e ->
      let name = get "experiment name" (Option.bind (member "name" e) to_str) in
      if name = "" then fail "%s: experiment with empty name" file;
      ignore
        (get "wall_clock_s" (Option.bind (member "wall_clock_s" e) to_float));
      let tables = get "tables" (Option.bind (member "tables" e) to_list) in
      List.iter
        (fun t ->
          ignore (get "table title" (Option.bind (member "title" t) to_str));
          let headers =
            get "table headers" (Option.bind (member "headers" t) to_list)
          in
          let rows = get "table rows" (Option.bind (member "rows" t) to_list) in
          List.iter
            (fun row ->
              let cells = get "row cells" (to_list row) in
              if List.length cells <> List.length headers then
                fail "%s: ragged table in %S" file name)
            rows)
        tables)
    exps;
  (* the suite must not silently shrink: these experiments are load-
     bearing (E16/E17 the robustness results, E18 the durability
     overheads) and a refactor that drops one from the output would
     otherwise pass every shape check above *)
  let names =
    List.filter_map (fun e -> Option.bind (member "name" e) to_str) exps
  in
  let required = [ "E16"; "E17"; "E18" ] in
  let missing =
    List.filter
      (fun r ->
        not
          (List.exists
             (fun n -> String.length n >= 3 && String.sub n 0 3 = r)
             names))
      required
  in
  if missing <> [] then
    fail "%s: required experiment(s) missing: %s" file
      (String.concat ", " missing);
  Printf.printf "%s OK: %d experiment(s)\n" file (List.length exps)
