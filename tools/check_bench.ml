(* Validate a BENCH_results.json produced by bench/main.exe: parses with
   the in-repo JSON module, checks the schema tag and that every
   experiment carries a name and well-shaped tables. Used by CI as the
   smoke check after the bench run. *)

let fail fmt = Printf.ksprintf (fun s -> prerr_endline s; exit 1) fmt

let file =
  if Array.length Sys.argv > 1 then Sys.argv.(1) else "BENCH_results.json"

let get what = function
  | Some v -> v
  | None -> fail "%s: missing or mistyped %s" file what

let () =
  if not (Sys.file_exists file) then
    fail
      "%s: no such file (did the bench run produce output? run bench/main.exe \
       first, or pass the path to its results file)"
      file;
  let s =
    match
      let ic = open_in_bin file in
      Fun.protect
        ~finally:(fun () -> close_in_noerr ic)
        (fun () -> really_input_string ic (in_channel_length ic))
    with
    | s -> s
    | exception Sys_error msg -> fail "%s: cannot read: %s" file msg
    | exception End_of_file ->
      fail
        "%s: truncated while reading (the file shrank mid-read — was the \
         bench still writing it?)"
        file
  in
  if String.trim s = "" then
    fail
      "%s: empty file (the bench was interrupted before writing results; \
       re-run bench/main.exe)"
      file;
  let j =
    match Alphonse.Json.of_string_opt s with
    | Some j -> j
    | None ->
      fail
        "%s: not valid JSON (%d byte(s); a partial write usually means the \
         bench was interrupted — re-run it)"
        file (String.length s)
  in
  let open Alphonse.Json in
  let schema = get "schema" (Option.bind (member "schema" j) to_str) in
  if schema <> "alphonse-bench/1" then
    fail "%s: unexpected schema tag %S" file schema;
  let exps = get "experiments" (Option.bind (member "experiments" j) to_list) in
  if exps = [] then fail "%s: no experiments recorded" file;
  List.iter
    (fun e ->
      let name = get "experiment name" (Option.bind (member "name" e) to_str) in
      if name = "" then fail "%s: experiment with empty name" file;
      ignore
        (get "wall_clock_s" (Option.bind (member "wall_clock_s" e) to_float));
      let tables = get "tables" (Option.bind (member "tables" e) to_list) in
      List.iter
        (fun t ->
          ignore (get "table title" (Option.bind (member "title" t) to_str));
          let headers =
            get "table headers" (Option.bind (member "headers" t) to_list)
          in
          let rows = get "table rows" (Option.bind (member "rows" t) to_list) in
          List.iter
            (fun row ->
              let cells = get "row cells" (to_list row) in
              if List.length cells <> List.length headers then
                fail "%s: ragged table in %S" file name)
            rows)
        tables)
    exps;
  (* the suite must not silently shrink: these experiments are load-
     bearing (E16/E17 the robustness results, E18 the durability
     overheads) and a refactor that drops one from the output would
     otherwise pass every shape check above *)
  let names =
    List.filter_map (fun e -> Option.bind (member "name" e) to_str) exps
  in
  let required = [ "E4"; "E6"; "E16"; "E17"; "E18"; "E19"; "E20"; "E21" ] in
  let missing =
    List.filter
      (fun r ->
        let m = String.length r in
        not
          (List.exists
             (fun n -> String.length n >= m && String.sub n 0 m = r)
             names))
      required
  in
  if missing <> [] then
    fail "%s: required experiment(s) missing: %s" file
      (String.concat ", " missing);
  (* E4 and E6 gate the engine's constant factors — the arena-allocated
     node/edge representation is accountable here. Both gates are
     RATIOS between rows of the same run, so machine speed cancels:
     E4's alphonse/hand-coded factor was ~570x on the pointer-graph
     representation and is ~100x on the arena (gate at 250x, halfway in
     log space); E6's tracked/plain factor was ~35x and is now under
     10x (gate at 20x). A regression past either gate means an
     allocation or indirection crept back onto the hot settle path. *)
  let time_of s =
    let s = String.trim s in
    let num suffix scale =
      let n = String.length s and m = String.length suffix in
      if n > m && String.sub s (n - m) m = suffix then
        Option.map
          (fun v -> v *. scale)
          (float_of_string_opt (String.sub s 0 (n - m)))
      else None
    in
    match (num "ms" 1e-3, num "us" 1e-6, num "s" 1.0) with
    | Some v, _, _ | _, Some v, _ | _, _, Some v -> Some v
    | None, None, None -> None
  in
  let metric_value exp_name row_label =
    let e =
      get
        (exp_name ^ " experiment")
        (List.find_opt
           (fun e -> Option.bind (member "name" e) to_str = Some exp_name)
           exps)
    in
    let tables =
      get (exp_name ^ " tables") (Option.bind (member "tables" e) to_list)
    in
    let found =
      List.find_map
        (fun t ->
          List.find_map
            (fun row ->
              match
                Option.map (List.filter_map to_str) (to_list row)
              with
              | Some (first :: rest) when first = row_label ->
                (* the value is the first remaining cell that parses as
                   a time (E6 rows carry a trailing "vs plain" cell) *)
                List.find_map time_of rest
              | _ -> None)
            (Option.value ~default:[]
               (Option.bind (member "rows" t) to_list)))
        tables
    in
    match found with
    | Some v -> v
    | None ->
      fail "%s: %s has no time-valued row %S" file exp_name row_label
  in
  let e4_alphonse = metric_value "E4" "alphonse time (insert+rebalance each)"
  and e4_hand = metric_value "E4" "hand-coded baseline time" in
  if e4_hand <= 0.0 then fail "%s: E4 hand-coded baseline time is zero" file;
  let e4_factor = e4_alphonse /. e4_hand in
  if e4_factor > 250.0 then
    fail
      "%s: E4 alphonse/hand-coded factor %.0fx exceeds the 250x gate (the \
       arena representation held this near 100x)"
      file e4_factor;
  let e6_plain = metric_value "E6" "plain ref loop (1M ops)"
  and e6_tracked = metric_value "E6" "tracked Var loop (mutator)" in
  if e6_plain <= 0.0 then fail "%s: E6 plain ref loop time is zero" file;
  let e6_factor = e6_tracked /. e6_plain in
  if e6_factor > 20.0 then
    fail
      "%s: E6 tracked/plain factor %.1fx exceeds the 20x gate (the arena \
       representation held this under 10x)"
      file e6_factor;
  (* E19 carries the paper-level parallel-settle claim, so its shape
     check is not enough: every (program x domain-count) cell must
     report Theorem 5.1 as HOLDS, and at least one workload must show a
     >= 2x wall-clock speedup over serial settle at 4 domains. *)
  let e19 =
    get "E19 experiment"
      (List.find_opt
         (fun e -> Option.bind (member "name" e) to_str = Some "E19")
         exps)
  in
  let tables = get "E19 tables" (Option.bind (member "tables" e19) to_list) in
  let speedup_of s =
    (* "3.68x" -> 3.68 *)
    let s = String.trim s in
    let s =
      if String.length s > 0 && s.[String.length s - 1] = 'x' then
        String.sub s 0 (String.length s - 1)
      else s
    in
    float_of_string_opt s
  in
  let four_domain_ok = ref false in
  let checked_cells = ref 0 in
  List.iter
    (fun t ->
      let headers =
        List.filter_map to_str
          (get "E19 headers" (Option.bind (member "headers" t) to_list))
      in
      let idx name =
        let rec go i = function
          | [] -> fail "%s: E19 table lacks a %S column" file name
          | h :: _ when h = name -> i
          | _ :: rest -> go (i + 1) rest
        in
        go 0 headers
      in
      let di = idx "domains" and si = idx "speedup" and ti = idx "thm" in
      let rows = get "E19 rows" (Option.bind (member "rows" t) to_list) in
      List.iter
        (fun row ->
          let cells = List.filter_map to_str (get "E19 row" (to_list row)) in
          let cell i = List.nth cells i in
          if cell di <> "serial" then begin
            incr checked_cells;
            if cell ti <> "HOLDS" then
              fail "%s: E19 reports Theorem 5.1 %S at domains=%s" file
                (cell ti) (cell di);
            if cell di = "4" then
              match speedup_of (cell si) with
              | Some f when f >= 2.0 -> four_domain_ok := true
              | Some _ -> ()
              | None ->
                fail "%s: E19 speedup cell %S is not a number" file (cell si)
          end)
        rows)
    tables;
  if !checked_cells = 0 then
    fail "%s: E19 present but has no (workload x domains) rows" file;
  if not !four_domain_ok then
    fail
      "%s: E19 shows no workload with >= 2x speedup over serial settle at 4 \
       domains"
      file;
  (* E20 carries the observability bargain: attaching a metrics registry
     and then disabling it must cost nothing — the disabled path is a
     single never-taken branch per instrumentation site. Gate every
     config=disabled row at <= 1.05x overhead versus the never-attached
     baseline, and make sure both configs actually appear (a bench edit
     that drops the enabled rows would hide a regression in the
     instrumented path's plausibility). *)
  let e20 =
    get "E20 experiment"
      (List.find_opt
         (fun e -> Option.bind (member "name" e) to_str = Some "E20")
         exps)
  in
  let tables = get "E20 tables" (Option.bind (member "tables" e20) to_list) in
  let disabled_rows = ref 0 and enabled_rows = ref 0 in
  List.iter
    (fun t ->
      let headers =
        List.filter_map to_str
          (get "E20 headers" (Option.bind (member "headers" t) to_list))
      in
      let idx name =
        let rec go i = function
          | [] -> fail "%s: E20 table lacks a %S column" file name
          | h :: _ when h = name -> i
          | _ :: rest -> go (i + 1) rest
        in
        go 0 headers
      in
      let ci = idx "config" and oi = idx "overhead" and mi = idx "mode" in
      let rows = get "E20 rows" (Option.bind (member "rows" t) to_list) in
      List.iter
        (fun row ->
          let cells = List.filter_map to_str (get "E20 row" (to_list row)) in
          let cell i = List.nth cells i in
          match cell ci with
          | "disabled" -> (
            incr disabled_rows;
            match speedup_of (cell oi) with
            | Some f when f <= 1.05 -> ()
            | Some f ->
              fail
                "%s: E20 disabled-metrics overhead %.2fx exceeds the 1.05x \
                 budget (%s, %s)"
                file f (cell mi) (cell ci)
            | None ->
              fail "%s: E20 overhead cell %S is not a number" file (cell oi))
          | "enabled" -> incr enabled_rows
          | _ -> ())
        rows)
    tables;
  if !disabled_rows = 0 then
    fail "%s: E20 present but has no config=disabled rows" file;
  if !enabled_rows = 0 then
    fail "%s: E20 present but has no config=enabled rows" file;
  (* E21 carries the daemon's overload contract: at the nominal load a
     thousand tenants are served without shedding, and at 2x offered
     load the daemon degrades by shedding (fast 503s) while still
     accepting work — a 2x row with shed = 0 means the bench stopped
     creating overload, and ok = 0 means the daemon stalled instead of
     degrading. *)
  let e21 =
    get "E21 experiment"
      (List.find_opt
         (fun e -> Option.bind (member "name" e) to_str = Some "E21")
         exps)
  in
  let tables = get "E21 tables" (Option.bind (member "tables" e21) to_list) in
  let saw_1x = ref false and saw_2x = ref false in
  List.iter
    (fun t ->
      let headers =
        List.filter_map to_str
          (get "E21 headers" (Option.bind (member "headers" t) to_list))
      in
      let idx name =
        let rec go i = function
          | [] -> fail "%s: E21 table lacks a %S column" file name
          | h :: _ when h = name -> i
          | _ :: rest -> go (i + 1) rest
        in
        go 0 headers
      in
      let li = idx "load"
      and ni = idx "tenants"
      and oi = idx "ok"
      and si = idx "shed" in
      let rows = get "E21 rows" (Option.bind (member "rows" t) to_list) in
      List.iter
        (fun row ->
          let cells = List.filter_map to_str (get "E21 row" (to_list row)) in
          let cell i = List.nth cells i in
          let int_cell i =
            match int_of_string_opt (cell i) with
            | Some n -> n
            | None -> fail "%s: E21 cell %S is not an integer" file (cell i)
          in
          if int_cell ni < 1000 then
            fail "%s: E21 ran %s tenant(s); the claim needs >= 1000" file
              (cell ni);
          match cell li with
          | "1x" ->
            saw_1x := true;
            if int_cell si <> 0 then
              fail "%s: E21 sheds %s request(s) at nominal load" file (cell si)
          | "2x" ->
            saw_2x := true;
            if int_cell si = 0 then
              fail
                "%s: E21 shed nothing at 2x overload (the bench is not \
                 overloading the daemon)"
                file;
            if int_cell oi = 0 then
              fail "%s: E21 accepted nothing at 2x overload (stall, not \
                    shedding)"
                file
          | _ -> ())
        rows)
    tables;
  if not !saw_1x then fail "%s: E21 has no load=1x row" file;
  if not !saw_2x then fail "%s: E21 has no load=2x row" file;
  Printf.printf "%s OK: %d experiment(s)\n" file (List.length exps)
