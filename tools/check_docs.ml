(* Documentation integrity checker, run from `dune runtest` (test/docs.t)
   and CI. Over README.md and docs/*.md it verifies that

   - every relative markdown link resolves to a real file or directory;
   - every inline-code reference that looks like an OCaml module path
     (`Engine.transact`, `Alphonse.Parallel.settle`, `Trees.Itree`)
     resolves against lib/: the module file must exist and each
     trailing ident must occur in its interface or implementation;
   - with --help-text FILE, every `--flag` the docs mention appears in
     the given help corpus (the cram test feeds it `alphonsec *
     --help=plain` output), so documented flags cannot drift from the
     CLI;
   - with --bench FILE, every quoted figure annotated with a
     `<!-- bench:EXP:row=LABEL:col=HEADER -->` marker is cross-checked
     against that cell of the bench results JSON: the number
     immediately preceding the marker must lie within a [0.5x, 2.0x]
     ratio band of the measured value (wall clocks are noisy; an
     order-of-magnitude drift is a stale doc, a few percent is a
     shared CI machine). A marker whose experiment, row, or column no
     longer exists is an error. When FILE does not exist the bench
     checks are silently skipped — results are regenerated per run,
     not committed, and a docs-only change must not require a bench
     run.

   Unknown leading modules (stdlib, opam libraries) are skipped, not
   failed: the point is to catch references into *this* repo that rot
   when code moves. Exit status 1 and a per-finding line on stderr when
   anything is broken; a single "docs OK" on stdout otherwise. *)

let root = ref "."
let help_text : string option ref = ref None
let bench_file : string option ref = ref None
let verbose = ref false

let () =
  let rec parse = function
    | [] -> ()
    | "--root" :: d :: rest -> root := d; parse rest
    | "--help-text" :: f :: rest -> help_text := Some f; parse rest
    | "--bench" :: f :: rest -> bench_file := Some f; parse rest
    | "--verbose" :: rest -> verbose := true; parse rest
    | a :: _ ->
      Printf.eprintf "check_docs: unknown argument %s\n" a;
      exit 2
  in
  parse (List.tl (Array.to_list Sys.argv))

let errors = ref 0

let err fmt =
  Printf.ksprintf
    (fun s ->
      incr errors;
      prerr_endline s)
    fmt

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let ( / ) = Filename.concat

(* ------------------------------------------------------------------ *)
(* The doc set                                                         *)
(* ------------------------------------------------------------------ *)

let doc_files =
  let docs_dir = !root / "docs" in
  let in_docs =
    if Sys.file_exists docs_dir && Sys.is_directory docs_dir then
      Sys.readdir docs_dir |> Array.to_list
      |> List.filter (fun f -> Filename.check_suffix f ".md")
      |> List.sort compare
      |> List.map (fun f -> "docs" / f)
    else []
  in
  let candidates = "README.md" :: in_docs in
  List.filter (fun f -> Sys.file_exists (!root / f)) candidates

let () =
  if doc_files = [] then (
    Printf.eprintf "check_docs: no README.md or docs/*.md under %s\n" !root;
    exit 2)

(* ------------------------------------------------------------------ *)
(* Module index over lib/                                              *)
(* ------------------------------------------------------------------ *)

(* namespace (capitalized lib directory, e.g. Alphonse, Trees) ->
   directory path *)
let namespaces : (string, string) Hashtbl.t = Hashtbl.create 16

(* module name (capitalized basename, e.g. Engine) -> source files *)
let modules : (string, string list) Hashtbl.t = Hashtbl.create 64

let () =
  let lib = !root / "lib" in
  if Sys.file_exists lib && Sys.is_directory lib then
    Array.iter
      (fun d ->
        let dir = lib / d in
        if Sys.is_directory dir then begin
          Hashtbl.replace namespaces (String.capitalize_ascii d) dir;
          Array.iter
            (fun f ->
              if
                Filename.check_suffix f ".ml" || Filename.check_suffix f ".mli"
              then begin
                let m =
                  String.capitalize_ascii (Filename.remove_extension f)
                in
                let prev =
                  Option.value ~default:[] (Hashtbl.find_opt modules m)
                in
                Hashtbl.replace modules m ((dir / f) :: prev)
              end)
            (Sys.readdir dir)
        end)
      (Sys.readdir lib)

let content_cache : (string, string) Hashtbl.t = Hashtbl.create 64

let contents_of path =
  match Hashtbl.find_opt content_cache path with
  | Some s -> s
  | None ->
    let s = try read_file path with Sys_error _ -> "" in
    Hashtbl.replace content_cache path s;
    s

let contains hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
  nn = 0 || go 0

(* every source file registered for module [m] (e.g. both engine.mli
   and engine.ml), concatenated *)
let module_text m =
  match Hashtbl.find_opt modules m with
  | None -> None
  | Some files -> Some (String.concat "\n" (List.map contents_of files))

let dir_text dir =
  Sys.readdir dir |> Array.to_list
  |> List.filter (fun f ->
         Filename.check_suffix f ".ml" || Filename.check_suffix f ".mli")
  |> List.map (fun f -> contents_of (dir / f))
  |> String.concat "\n"

(* ------------------------------------------------------------------ *)
(* Markdown scanning                                                   *)
(* ------------------------------------------------------------------ *)

let is_ident_char c =
  (c >= 'a' && c <= 'z')
  || (c >= 'A' && c <= 'Z')
  || (c >= '0' && c <= '9')
  || c = '_'

(* a code span is a module path when it splits on '.' into >= 2
   identifier components, the first capitalized *)
let module_path_of span =
  let comps = String.split_on_char '.' span in
  let ident s =
    s <> "" && String.for_all is_ident_char s
  in
  match comps with
  | first :: _ :: _
    when List.for_all ident comps
         && first.[0] >= 'A'
         && first.[0] <= 'Z' ->
    Some comps
  | _ -> None

let lines_of s = String.split_on_char '\n' s

(* inline code spans of one line: the odd-numbered fields of a split on
   backticks (ignoring the empty spans a `` fence edge produces) *)
let spans_of_line line =
  let fields = String.split_on_char '`' line in
  let rec go i = function
    | [] -> []
    | f :: rest -> if i land 1 = 1 && f <> "" then f :: go (i + 1) rest
                   else go (i + 1) rest
  in
  go 0 fields

(* [text](target) links of one line *)
let links_of_line line =
  let n = String.length line in
  let out = ref [] in
  let i = ref 0 in
  while !i < n do
    if line.[!i] = '[' then begin
      match String.index_from_opt line !i ']' with
      | Some j when j + 1 < n && line.[j + 1] = '(' -> (
        match String.index_from_opt line (j + 1) ')' with
        | Some k ->
          out := String.sub line (j + 2) (k - j - 2) :: !out;
          i := k + 1
        | None -> i := n)
      | _ -> incr i
    end
    else incr i
  done;
  List.rev !out

(* --flag tokens anywhere in the text (including fenced blocks: usage
   examples live there). "---" table rules don't match: the char after
   "--" must be a letter. *)
let flags_of_text s =
  let n = String.length s in
  let out = ref [] in
  let i = ref 0 in
  while !i + 2 < n do
    if
      s.[!i] = '-'
      && s.[!i + 1] = '-'
      && s.[!i + 2] >= 'a'
      && s.[!i + 2] <= 'z'
      && (!i = 0 || s.[!i - 1] <> '-')
    then begin
      let j = ref (!i + 2) in
      while
        !j < n
        && ((s.[!j] >= 'a' && s.[!j] <= 'z')
           || (s.[!j] >= '0' && s.[!j] <= '9')
           || s.[!j] = '-')
      do
        incr j
      done;
      out := String.sub s !i (!j - !i) :: !out;
      i := !j
    end
    else incr i
  done;
  List.sort_uniq compare !out

(* ------------------------------------------------------------------ *)
(* Bench figure markers                                                *)
(* ------------------------------------------------------------------ *)

let find_sub s sub from =
  let n = String.length s and m = String.length sub in
  let rec go i =
    if i + m > n then None
    else if String.sub s i m = sub then Some i
    else go (i + 1)
  in
  if m = 0 then None else go from

(* a figure is a number with an optional unit suffix; commas and a '~'
   prefix are presentation ("573,120", "~22x") *)
type dim = Seconds | Factor | Percent | Count

let parse_figure s =
  let s = String.trim s in
  let s =
    if s <> "" && s.[0] = '~' then String.sub s 1 (String.length s - 1) else s
  in
  let n = String.length s in
  let buf = Buffer.create 16 in
  let i = ref 0 in
  let seen_digit = ref false in
  while
    !i < n
    &&
    match s.[!i] with
    | '0' .. '9' ->
      seen_digit := true;
      true
    | '.' | ',' -> true
    | _ -> false
  do
    if s.[!i] <> ',' then Buffer.add_char buf s.[!i];
    incr i
  done;
  if not !seen_digit then None
  else
    match float_of_string_opt (Buffer.contents buf) with
    | None -> None
    | Some v ->
      (* unit: the letter/percent run right after the number *)
      let j = ref !i in
      while
        !j < n
        &&
        match s.[!j] with
        | 'a' .. 'z' | '%' -> true
        | '\xc2' -> true (* first byte of UTF-8 µ *)
        | '\xb5' -> true
        | _ -> false
      do
        incr j
      done;
      let unit = String.sub s !i (!j - !i) in
      (match unit with
      | "" -> Some (v, Count)
      | "x" -> Some (v, Factor)
      | "%" -> Some (v, Percent)
      | "s" -> Some (v, Seconds)
      | "ms" -> Some (v *. 1e-3, Seconds)
      | "us" | "\xc2\xb5s" -> Some (v *. 1e-6, Seconds)
      | "ns" -> Some (v *. 1e-9, Seconds)
      | _ -> None)

let dim_name = function
  | Seconds -> "a time"
  | Factor -> "a speedup factor"
  | Percent -> "a percentage"
  | Count -> "a count"

(* the figure the marker certifies: the last number on the line before
   the marker comment *)
let figure_before line upto =
  let stop = ref (min upto (String.length line)) in
  while !stop > 0 && line.[!stop - 1] = ' ' do
    decr stop
  done;
  let start = ref !stop in
  let token_char c =
    match c with
    | '0' .. '9' | '.' | ',' | '~' | 'a' .. 'z' | '%' | '\xc2' | '\xb5' ->
      true
    | _ -> false
  in
  while !start > 0 && token_char line.[!start - 1] do
    decr start
  done;
  if !start >= !stop then None
  else parse_figure (String.sub line !start (!stop - !start))

(* (docfile, line, exp, row label, column header) *)
let bench_markers : (string * string * string * string * string) list ref =
  ref []

let collect_markers docfile line =
  let rec go from =
    match find_sub line "<!-- bench:" from with
    | None -> ()
    | Some i -> (
      match find_sub line " -->" (i + 11) with
      | None -> err "%s: unterminated bench marker" docfile
      | Some close ->
        let body = String.sub line (i + 11) (close - i - 11) in
        (match (find_sub body ":row=" 0, find_sub body ":col=" 0) with
        | Some r, Some c when r < c ->
          let exp = String.sub body 0 r in
          let row = String.sub body (r + 5) (c - r - 5) in
          let col = String.sub body (c + 5) (String.length body - c - 5) in
          bench_markers :=
            (docfile, String.sub line 0 i, exp, row, col) :: !bench_markers
        | _ ->
          err "%s: malformed bench marker `%s` (want EXP:row=LABEL:col=HEADER)"
            docfile body);
        go (close + 4))
  in
  go 0

let checked_figures = ref 0

let check_bench_markers () =
  let markers = List.rev !bench_markers in
  match !bench_file with
  | None -> ()
  | Some file when not (Sys.file_exists file) ->
    (* bench results are regenerated per run, never committed: a
       docs-only change must not demand a bench run first *)
    ()
  | Some file -> (
    let open Alphonse.Json in
    match of_string_opt (read_file file) with
    | None -> err "%s: not valid JSON" file
    | Some j ->
      let exps =
        Option.value ~default:[]
          (Option.bind (member "experiments" j) to_list)
      in
      let cell_of exp row col =
        match
          List.find_opt (fun e -> Option.bind (member "name" e) to_str = Some exp) exps
        with
        | None -> Error (Printf.sprintf "no experiment %S in %s" exp file)
        | Some e ->
          let tables =
            Option.value ~default:[] (Option.bind (member "tables" e) to_list)
          in
          let found =
            List.find_map
              (fun t ->
                let headers =
                  List.filter_map to_str
                    (Option.value ~default:[]
                       (Option.bind (member "headers" t) to_list))
                in
                let col_idx =
                  List.find_index (fun h -> h = col) headers
                in
                match col_idx with
                | None -> None
                | Some ci ->
                  List.find_map
                    (fun r ->
                      match Option.map (List.filter_map to_str) (to_list r) with
                      | Some (first :: _ as cells) when first = row ->
                        List.nth_opt cells ci
                      | _ -> None)
                    (Option.value ~default:[]
                       (Option.bind (member "rows" t) to_list)))
              tables
          in
          (match found with
          | Some cell -> Ok cell
          | None ->
            Error
              (Printf.sprintf "experiment %s has no row %S with column %S" exp
                 row col))
      in
      List.iter
        (fun (docfile, prefix, exp, row, col) ->
          match cell_of exp row col with
          | Error msg -> err "%s: bench marker: %s" docfile msg
          | Ok cell -> (
            incr checked_figures;
            match (parse_figure cell, figure_before prefix max_int) with
            | None, _ ->
              err "%s: bench cell %s/%S/%S is not a number: %S" docfile exp
                row col cell
            | _, None ->
              err "%s: no figure precedes the bench marker for %s/%S/%S"
                docfile exp row col
            | Some (bv, bd), Some (dv, dd) ->
              if bd <> dd then
                err
                  "%s: bench figure for %s/%S/%S is %s but the doc quotes %s"
                  docfile exp row col (dim_name bd) (dim_name dd)
              else
                let ratio = if bv = 0.0 then infinity else dv /. bv in
                if ratio < 0.5 || ratio > 2.0 then
                  err
                    "%s: stale bench figure for %s/%S/%S: doc quotes a value \
                     %.4gx the measured %s"
                    docfile exp row col ratio cell))
        markers)

(* ------------------------------------------------------------------ *)
(* Checks                                                              *)
(* ------------------------------------------------------------------ *)

let checked_links = ref 0
let checked_refs = ref 0

let check_link docfile target =
  let target = String.trim target in
  let external_ l =
    List.exists
      (fun p ->
        String.length target >= String.length p
        && String.sub target 0 (String.length p) = p)
      l
  in
  if target = "" || target.[0] = '#' then ()
  else if external_ [ "http://"; "https://"; "mailto:" ] then ()
  else begin
    let path =
      match String.index_opt target '#' with
      | Some i -> String.sub target 0 i
      | None -> target
    in
    incr checked_links;
    let resolved = !root / Filename.dirname docfile / path in
    if not (Sys.file_exists resolved) then
      err "%s: broken link: %s" docfile target
  end

(* Resolve Module.ident / Namespace.Module.ident against lib/. Unknown
   heads are stdlib or third-party: skipped. *)
let check_code_ref docfile comps =
  let span = String.concat "." comps in
  let idents_in text idents =
    match List.find_opt (fun id -> not (contains text id)) idents with
    | Some missing ->
      err "%s: code reference `%s`: `%s` not found in the sources of its \
           module"
        docfile span missing
    | None -> ()
  in
  match comps with
  | ns :: rest when Hashtbl.mem namespaces ns -> (
    let dir = Hashtbl.find namespaces ns in
    incr checked_refs;
    match rest with
    | [] -> ()
    | m :: idents -> (
      let base = String.uncapitalize_ascii m in
      let file_for ext = dir / (base ^ ext) in
      if Sys.file_exists (file_for ".mli") || Sys.file_exists (file_for ".ml")
      then
        let text =
          String.concat "\n"
            (List.filter_map
               (fun ext ->
                 let f = file_for ext in
                 if Sys.file_exists f then Some (contents_of f) else None)
               [ ".mli"; ".ml" ])
        in
        idents_in text idents
      else if contains (dir_text dir) ("module " ^ m) then ()
      else
        err "%s: code reference `%s`: no module %s in %s" docfile span m dir))
  | m :: idents when Hashtbl.mem modules m -> (
    incr checked_refs;
    match module_text m with
    | Some text -> idents_in text idents
    | None -> ())
  | _ -> (* stdlib / external *) ()

let doc_flags = ref []

let check_doc docfile =
  let text = contents_of (!root / docfile) in
  doc_flags := flags_of_text text @ !doc_flags;
  let fenced = ref false in
  List.iter
    (fun line ->
      collect_markers docfile line;
      let trimmed = String.trim line in
      if String.length trimmed >= 3 && String.sub trimmed 0 3 = "```" then
        fenced := not !fenced
      else if not !fenced then begin
        List.iter (check_link docfile) (links_of_line line);
        List.iter
          (fun span ->
            match module_path_of span with
            | Some comps -> check_code_ref docfile comps
            | None -> ())
          (spans_of_line line)
      end)
    (lines_of text)

let () = List.iter check_doc doc_files

(* every flag the docs mention must appear in the CLI help corpus *)
let () =
  match !help_text with
  | None -> ()
  | Some file ->
    if not (Sys.file_exists file) then (
      Printf.eprintf "check_docs: no such help corpus: %s\n" file;
      exit 2);
    let help = read_file file in
    List.iter
      (fun flag ->
        if not (contains help flag) then
          err "documented flag %s does not appear in `alphonsec --help` output"
            flag)
      (List.sort_uniq compare !doc_flags)

let () = check_bench_markers ()

let () =
  if !errors > 0 then exit 1;
  if !verbose then
    Printf.printf
      "docs OK: %d file(s), %d link(s), %d code ref(s), %d flag(s), %d bench \
       figure(s)\n"
      (List.length doc_files) !checked_links !checked_refs
      (List.length (List.sort_uniq compare !doc_flags))
      !checked_figures
  else print_endline "docs OK"
