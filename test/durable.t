The durable spreadsheet session: write-ahead journal, checkpoints, and
crash recovery through the CLI.

  $ alphonsec() { ../bin/alphonsec.exe "$@"; }

A session without --state is purely in-memory:

  $ cat > edits.txt <<'EOF'
  > set A1 6
  > set A2 =A1*7
  > get A2
  > EOF
  $ alphonsec sheet edits.txt
  A2 = 42

With --state, every edit is journaled before it applies; a later run
recovers the state and continues:

  $ alphonsec sheet edits.txt --state st 2>/dev/null
  A2 = 42
  $ cat > more.txt <<'EOF'
  > set A1 10
  > get A2
  > render
  > EOF
  $ alphonsec sheet more.txt --state st
  [recovery: snapshot=none replayed=2 discarded=0 txns-discarded=0 verified=yes degraded=no]
  A2 = 70
    | A 
  1 | 10
  2 | 70

recover reports the outcome and can render the restored sheet:

  $ alphonsec recover --state st --render
  recovery: snapshot=none replayed=3 discarded=0 txns-discarded=0 verified=yes degraded=no
    | A 
  1 | 10
  2 | 70

A checkpoint cuts the journal into a checksummed snapshot; recovery then
restores from it instead of replaying history:

  $ alphonsec sheet /dev/null --state st --checkpoint
  [recovery: snapshot=none replayed=3 discarded=0 txns-discarded=0 verified=yes degraded=no]
  [checkpoint: snap-00000003.json]
  $ alphonsec recover --state st
  recovery: snapshot=snap-00000003.json replayed=0 discarded=0 txns-discarded=0 verified=yes degraded=no

A simulated crash (--kill-at dies at the N-th durability kill site)
exits with code 3 and leaves a recoverable directory — the journal's
torn tail is dropped, never misread:

  $ cat > crash.txt <<'EOF'
  > set A1 1
  > set A2 =A1+1
  > set A1 5
  > EOF
  $ alphonsec sheet crash.txt --state crashed --no-restore
  $ alphonsec sheet crash.txt --state killed --no-restore --kill-at 4
  [killed at wal-append]
  [3]
  $ alphonsec recover --state killed
  recovery: snapshot=none replayed=1 discarded=0 txns-discarded=0 verified=yes degraded=no

Re-running the same (idempotent) script after recovery converges to the
clean run's state:

  $ alphonsec sheet crash.txt --state killed 2>/dev/null
  $ alphonsec recover --state killed --render 2>/dev/null
  recovery: snapshot=none replayed=4 discarded=0 txns-discarded=0 verified=yes degraded=no
    | A
  1 | 5
  2 | 6
  $ alphonsec recover --state crashed --render 2>/dev/null | tail -n +2
    | A
  1 | 5
  2 | 6

checkpoint is also a script command, and the checkpoint survives a
later crash:

  $ cat > ckpt.txt <<'EOF'
  > set B1 3
  > checkpoint
  > set B2 =B1*B1
  > EOF
  $ alphonsec sheet ckpt.txt --state ck --no-restore 2>&1
  [checkpoint: snap-00000001.json]
  $ alphonsec recover --state ck --render
  recovery: snapshot=snap-00000001.json replayed=1 discarded=0 txns-discarded=0 verified=yes degraded=no
    | A | B
  1 |   | 3
  2 |   | 9
