(* Tests for the Alphonse core: Var/Func/Engine semantics — caching,
   quiescence propagation, maintained side effects, unchecked, strategies,
   partitioning, cache replacement, and a randomized equivalence property
   (Theorem 5.1 for the embedded DSL). *)

module Engine = Alphonse.Engine
module Var = Alphonse.Var
module Func = Alphonse.Func
module Policy = Alphonse.Policy

let checki = Alcotest.(check int)
let checkb = Alcotest.(check bool)

let executions eng = (Engine.stats eng).Engine.executions

(* ------------------------------------------------------------------ *)
(* Basic caching                                                       *)
(* ------------------------------------------------------------------ *)

let test_memo_fib () =
  let eng = Engine.create () in
  let fib =
    Func.create eng ~name:"fib" (fun fib n ->
        if n < 2 then n else Func.call fib (n - 1) + Func.call fib (n - 2))
  in
  checki "fib 20" 6765 (Func.call fib 20);
  (* linear executions thanks to the argument table *)
  checki "executions" 21 (executions eng);
  checki "fib 20 again" 6765 (Func.call fib 20);
  checki "no re-execution" 21 (executions eng);
  checki "table size" 21 (Func.size fib)

let test_var_recompute_on_change () =
  let eng = Engine.create () in
  let a = Var.create eng ~name:"a" 10 in
  let f = Func.create eng ~name:"f" (fun _ () -> Var.get a * 2) in
  checki "initial" 20 (Func.call f ());
  checki "one execution" 1 (executions eng);
  Var.set a 21;
  checki "after change" 42 (Func.call f ());
  checki "re-executed once" 2 (executions eng);
  (* writing an equal value propagates nothing *)
  Var.set a 21;
  checki "equal write" 42 (Func.call f ());
  checki "no spurious execution" 2 (executions eng)

let test_custom_var_equality () =
  let eng = Engine.create () in
  let a = Var.create eng ~equal:(fun x y -> abs (x - y) <= 1) 100 in
  let f = Func.create eng (fun _ () -> Var.get a) in
  checki "initial" 100 (Func.call f ());
  Var.set a 101;
  (* within tolerance: treated as unchanged *)
  checki "tolerated write cached" 100 (Func.call f ());
  checki "executions" 1 (executions eng);
  Var.set a 200;
  checki "big write recomputes" 200 (Func.call f ())

let test_untracked_var_fast_path () =
  let eng = Engine.create () in
  let a = Var.create eng 1 in
  (* never read inside an incremental procedure: stays untracked *)
  Var.set a 2;
  Var.set a 3;
  checkb "untracked" false (Var.is_tracked a);
  checki "plain reads work" 3 (Var.get a);
  let g = Engine.graph_stats eng in
  checki "no graph nodes" 0 g.Depgraph.Graph.live_nodes

(* ------------------------------------------------------------------ *)
(* Quiescence cutoff: eager vs demand                                  *)
(* ------------------------------------------------------------------ *)

(* a → b → c where b = a/2 absorbs small changes of a. *)
let chain strategy =
  let eng = Engine.create ~default_strategy:strategy () in
  let a = Var.create eng ~name:"a" 4 in
  let b = Func.create eng ~name:"b" (fun _ () -> Var.get a / 2) in
  let c = Func.create eng ~name:"c" (fun _ () -> Func.call b () * 10) in
  (eng, a, c)

let test_eager_cutoff () =
  let eng, a, c = chain Engine.Eager in
  checki "initial" 20 (Func.call c ());
  checki "two first executions" 2 (executions eng);
  Var.set a 5 (* 5/2 = 2: b's value is unchanged *);
  checki "cached at c" 20 (Func.call c ());
  (* quiescence: only b re-executed; propagation stopped there *)
  checki "only b re-ran" 3 (executions eng);
  Var.set a 8;
  checki "change reaches c" 40 (Func.call c ());
  checki "both re-ran" 5 (executions eng)

let test_demand_no_cutoff () =
  let eng, a, c = chain Engine.Demand in
  checki "initial" 20 (Func.call c ());
  Var.set a 5;
  checki "still correct" 20 (Func.call c ());
  (* demand propagation dirties transitively: both b and c re-execute *)
  checki "both re-ran" 4 (executions eng)

(* The arena representation's no-change fast paths must not allocate:
   an equal-value write to a settled tracked cell (the equality cutoff —
   no mark, no journal entry, no undo record) and a tracked read in the
   quick regime are both plain loads/stores. Per-iteration allocation is
   measured differentially — the delta for 10x the iterations must equal
   the delta for 1x, which cancels the constant cost of the
   [Gc.minor_words] probes themselves. *)
let test_cutoff_zero_alloc () =
  let eng = Engine.create () in
  let a = Var.create eng ~name:"a" 42 in
  let f = Func.create eng ~name:"f" (fun _ () -> Var.get a * 2) in
  checki "tracked and settled" 84 (Func.call f ());
  let measure iters =
    let w0 = Gc.minor_words () in
    for _ = 1 to iters do
      Var.set a 42;
      (* equal value: cutoff *)
      ignore (Var.get a)
    done;
    Gc.minor_words () -. w0
  in
  ignore (measure 10) (* warm-up: fault any lazy setup *);
  let d1 = measure 1_000 and d10 = measure 10_000 in
  Alcotest.(check (float 0.0)) "no per-iteration allocation" d1 d10;
  checki "still cached" 84 (Func.call f ());
  checki "no re-execution" 1 (executions eng)

let test_eager_stabilize_precomputes () =
  let eng = Engine.create ~default_strategy:Engine.Eager () in
  let runs = ref 0 in
  let a = Var.create eng 1 in
  let f =
    Func.create eng (fun _ () ->
        incr runs;
        Var.get a + 1)
  in
  checki "initial" 2 (Func.call f ());
  Var.set a 10;
  checki "not yet" 1 !runs;
  Engine.stabilize eng;
  (* eager evaluation used the available cycles *)
  checki "recomputed in background" 2 !runs;
  checki "call is a pure cache hit" 11 (Func.call f ());
  checki "no extra run" 2 !runs

let test_demand_stabilize_defers () =
  let eng = Engine.create ~default_strategy:Engine.Demand () in
  let runs = ref 0 in
  let a = Var.create eng 1 in
  let f =
    Func.create eng (fun _ () ->
        incr runs;
        Var.get a + 1)
  in
  ignore (Func.call f ());
  Var.set a 10;
  Engine.stabilize eng;
  checki "demand defers work" 1 !runs;
  checki "call recomputes" 11 (Func.call f ());
  checki "now re-ran" 2 !runs

(* ------------------------------------------------------------------ *)
(* Maintained procedures with side effects                             *)
(* ------------------------------------------------------------------ *)

let test_maintained_write_restored () =
  let eng = Engine.create () in
  let src = Var.create eng ~name:"src" 2 in
  let out = Var.create eng ~name:"out" 0 in
  (* maintained property: out = src * 2 *)
  let m =
    Func.create eng ~name:"maintain-out" (fun _ () ->
        Var.set out (Var.get src * 2))
  in
  Func.call m ();
  checki "established" 4 (Var.get out);
  (* the mutator clobbers storage written by the maintained procedure;
     §4.3: "a subsequent execution of p must have the effect of setting it
     back" *)
  Var.set out 999;
  Func.call m ();
  checki "restored" 4 (Var.get out);
  Var.set src 5;
  Func.call m ();
  checki "tracks source" 10 (Var.get out)

let test_write_then_read_chain () =
  let eng = Engine.create () in
  let src = Var.create eng 1 in
  let mid = Var.create eng 0 in
  let m = Func.create eng (fun _ () -> Var.set mid (Var.get src + 1)) in
  let f =
    Func.create eng (fun _ () ->
        Func.call m ();
        Var.get mid * 10)
  in
  checki "composed" 20 (Func.call f ());
  Var.set src 7;
  checki "change flows through the written cell" 80 (Func.call f ())

(* ------------------------------------------------------------------ *)
(* Cycles                                                              *)
(* ------------------------------------------------------------------ *)

let test_cycle_detection () =
  let eng = Engine.create () in
  let f = Func.create eng ~name:"loop" (fun self () -> Func.call self ()) in
  (match Func.call f () with
  | _ -> Alcotest.fail "expected Cycle"
  | exception Engine.Cycle name -> Alcotest.(check string) "name" "loop" name);
  (* recursion on *distinct* arguments is fine *)
  let g =
    Func.create eng ~name:"down" (fun self n ->
        if n = 0 then 0 else Func.call self (n - 1))
  in
  checki "legitimate recursion" 0 (Func.call g 5)

let test_mutual_cycle_detection () =
  let eng = Engine.create () in
  let fwd = ref (fun () -> 0) in
  let f = Func.create eng ~name:"f" (fun _ () -> !fwd ()) in
  let g = Func.create eng ~name:"g" (fun _ () -> Func.call f ()) in
  (fwd := fun () -> Func.call g ());
  checkb "mutual cycle raises" true
    (match Func.call f () with
    | _ -> false
    | exception Engine.Cycle _ -> true)

(* Regression: a Cycle used to leave the failed activations' frames on
   the engine call stack, so the next unrelated call saw a phantom
   in-progress execution. The engine must stay fully usable after a
   detected cycle. *)
let test_engine_usable_after_cycle () =
  let eng = Engine.create () in
  let broken = ref true in
  let f = ref (fun _ -> 0) in
  let a = Var.create eng ~name:"a" 5 in
  let g =
    Func.create eng ~name:"g" (fun _ n ->
        if !broken then !f n else Var.get a + n)
  in
  (f := fun n -> Func.call g n);
  checkb "cycle detected" true
    (match Func.call g 1 with _ -> false | exception Engine.Cycle _ -> true);
  (* the stack unwound completely and every invariant still holds *)
  Alcotest.(check (list string)) "audit clean" [] (Engine.audit_errors eng);
  (* structural failure: no retry budget consumed, nothing poisoned *)
  let gnode =
    match Func.node g 1 with Some n -> n | None -> Alcotest.fail "no node"
  in
  checki "no failure charged" 0 (Engine.failure_count eng gnode);
  checkb "not poisoned" false (Engine.poisoned eng gnode);
  (* unrelated work on the same engine proceeds normally *)
  let h = Func.create eng ~name:"h" (fun _ () -> Var.get a * 2) in
  checki "fresh instance runs" 10 (Func.call h ());
  Var.set a 6;
  checki "invalidation still flows" 12 (Func.call h ());
  (* and once the user fixes the cycle, the same instance recovers *)
  broken := false;
  checki "fixed instance converges" 7 (Func.call g 1);
  Alcotest.(check (list string))
    "audit clean after recovery" [] (Engine.audit_errors eng)

let test_exception_retry () =
  let eng = Engine.create () in
  let boom = ref true in
  let a = Var.create eng 3 in
  let f =
    Func.create eng (fun _ () ->
        if !boom then failwith "boom";
        Var.get a)
  in
  checkb "raises" true
    (match Func.call f () with _ -> false | exception Failure _ -> true);
  boom := false;
  checki "retry succeeds" 3 (Func.call f ());
  Var.set a 4;
  checki "still live" 4 (Func.call f ())

(* ------------------------------------------------------------------ *)
(* Unchecked (§6.4)                                                    *)
(* ------------------------------------------------------------------ *)

let test_unchecked_prunes_dependencies () =
  let eng = Engine.create () in
  let path = Array.init 8 (fun i -> Var.create eng ~name:(Fmt.str "p%d" i) i) in
  let target = Var.create eng ~name:"target" 100 in
  let lookup =
    Func.create eng ~name:"lookup" (fun _ () ->
        (* the "search path" does not affect the result; the programmer
           asserts it with unchecked *)
        let _walk =
          Engine.unchecked eng (fun () ->
              Array.fold_left (fun acc v -> acc + Var.get v) 0 path)
        in
        Var.get target)
  in
  checki "initial" 100 (Func.call lookup ());
  Var.set path.(3) 999;
  checki "path change absorbed" 100 (Func.call lookup ());
  checki "no re-execution" 1 (executions eng);
  Var.set target 7;
  checki "real dependency still live" 7 (Func.call lookup ());
  checki "re-executed for target" 2 (executions eng)

let test_checked_control_group () =
  let eng = Engine.create () in
  let path = Array.init 8 (fun i -> Var.create eng i) in
  let target = Var.create eng 100 in
  let lookup =
    Func.create eng (fun _ () ->
        let _walk = Array.fold_left (fun acc v -> acc + Var.get v) 0 path in
        Var.get target)
  in
  checki "initial" 100 (Func.call lookup ());
  Var.set path.(3) 999;
  checki "still correct" 100 (Func.call lookup ());
  checki "but re-executed" 2 (executions eng)

(* ------------------------------------------------------------------ *)
(* Cache replacement (§3.3 pragma arguments)                           *)
(* ------------------------------------------------------------------ *)

let test_lru_eviction () =
  let eng = Engine.create () in
  let runs = ref 0 in
  let f =
    Func.create eng ~policy:(Policy.Lru 3) (fun _ n ->
        incr runs;
        n * n)
  in
  List.iter (fun n -> ignore (Func.call f n)) [ 1; 2; 3; 4; 5 ];
  checki "capacity respected" 3 (Func.size f);
  checki "five first runs" 5 !runs;
  (* 1 was evicted: calling it recomputes *)
  checki "evicted recomputes" 1 (Func.call f 1);
  checki "recomputation happened" 6 !runs;
  (* 5 was just used; still cached *)
  ignore (Func.call f 5);
  checki "recent entry cached" 6 !runs;
  checki "evictions counted" 3 (Engine.stats eng).Engine.evictions

let test_lru_recency_order () =
  let eng = Engine.create () in
  let runs = ref 0 in
  let f =
    Func.create eng ~policy:(Policy.Lru 2) (fun _ n ->
        incr runs;
        n)
  in
  ignore (Func.call f 1);
  ignore (Func.call f 2);
  ignore (Func.call f 1) (* touch 1: now 2 is least recent *);
  ignore (Func.call f 3) (* evicts 2 *);
  checki "before" 3 !runs;
  ignore (Func.call f 1);
  checki "1 still cached" 3 !runs;
  ignore (Func.call f 2);
  checki "2 was evicted" 4 !runs

let test_eviction_soundness () =
  let eng = Engine.create () in
  let inner = Func.create eng ~policy:(Policy.Lru 1) (fun _ n -> n + 1) in
  let outer = Func.create eng (fun _ n -> Func.call inner n * 10) in
  List.iter (fun n -> ignore (Func.call outer n)) [ 1; 2; 3 ];
  (* every inner entry has a live dependent: none may be evicted *)
  checki "inner table kept sound" 3 (Func.size inner);
  checki "no evictions" 0 (Engine.stats eng).Engine.evictions

let test_fifo_eviction () =
  let eng = Engine.create () in
  let runs = ref 0 in
  let f =
    Func.create eng ~policy:(Policy.Fifo 2) (fun _ n ->
        incr runs;
        n)
  in
  ignore (Func.call f 1);
  ignore (Func.call f 2);
  ignore (Func.call f 1) (* FIFO: does not refresh 1 *);
  ignore (Func.call f 3) (* evicts 1, the oldest insertion *);
  ignore (Func.call f 1);
  checki "1 was evicted despite recency" 4 !runs

(* ------------------------------------------------------------------ *)
(* Partitioning (§6.3)                                                 *)
(* ------------------------------------------------------------------ *)

let independent_pair ~partitioning =
  let eng = Engine.create ~partitioning () in
  let a1 = Var.create eng ~name:"a1" 1 in
  let a2 = Var.create eng ~name:"a2" 1 in
  let f1 = Func.create eng ~name:"f1" (fun _ () -> Var.get a1 * 10) in
  let f2 = Func.create eng ~name:"f2" (fun _ () -> Var.get a2 * 100) in
  ignore (Func.call f1 ());
  ignore (Func.call f2 ());
  Engine.reset_stats eng;
  (eng, a1, f2)

let test_partitioning_isolates () =
  let eng, a1, f2 = independent_pair ~partitioning:true in
  Var.set a1 5;
  checki "f2 unaffected" 100 (Func.call f2 ());
  let s = Engine.stats eng in
  checki "no settle work in f2's partition" 0 s.Engine.settle_steps

let test_no_partitioning_forces_global_settle () =
  let eng, a1, f2 = independent_pair ~partitioning:false in
  Var.set a1 5;
  checki "f2 unaffected" 100 (Func.call f2 ());
  let s = Engine.stats eng in
  checkb "global settle did work" true (s.Engine.settle_steps > 0)

let test_partitioned_correctness () =
  (* partitioning must not change results *)
  let eng = Engine.create ~partitioning:true () in
  let a = Var.create eng 1 and b = Var.create eng 2 in
  let f = Func.create eng (fun _ () -> Var.get a + Var.get b) in
  let g = Func.create eng (fun _ () -> Func.call f () * Var.get b) in
  checki "initial" 6 (Func.call g ());
  Var.set b 10;
  checki "after change" 110 (Func.call g ());
  Var.set a 0;
  checki "other var" 100 (Func.call g ())

(* ------------------------------------------------------------------ *)
(* Static subgraphs (§6.2)                                             *)
(* ------------------------------------------------------------------ *)

let test_static_deps_correct () =
  let eng = Engine.create () in
  let a = Var.create eng 1 and b = Var.create eng 2 in
  (* R(p) = {a, b} on every execution: a valid static-subgraph instance *)
  let f =
    Func.create eng ~static_deps:true (fun _ () -> Var.get a + Var.get b)
  in
  checki "initial" 3 (Func.call f ());
  let edges_after_first = (Engine.graph_stats eng).Depgraph.Graph.total_edges in
  for i = 1 to 20 do
    Var.set a (100 + i);
    (* b still holds its previous value: 2*(i-1), or the initial 2 *)
    let b_now = if i = 1 then 2 else 2 * (i - 1) in
    checki "still correct" (100 + i + b_now) (Func.call f ());
    Var.set b (2 * i);
    checki "both deps live" (100 + i + (2 * i)) (Func.call f ())
  done;
  let g = Engine.graph_stats eng in
  checki "edges recorded once, reused verbatim" edges_after_first
    g.Depgraph.Graph.total_edges;
  checki "no edge removal churn" 0 g.Depgraph.Graph.removed_edges

let test_dynamic_deps_churn_baseline () =
  (* the same workload without the static assertion re-records edges on
     every execution — the churn §6.2 eliminates *)
  let eng = Engine.create () in
  let a = Var.create eng 1 and b = Var.create eng 2 in
  let f = Func.create eng (fun _ () -> Var.get a + Var.get b) in
  ignore (Func.call f ());
  for i = 1 to 20 do
    Var.set a (100 + i);
    ignore (Func.call f ())
  done;
  let g = Engine.graph_stats eng in
  checkb "dynamic tracking removes and re-adds edges" true
    (g.Depgraph.Graph.removed_edges >= 40)

let test_static_deps_hazard () =
  (* the documented unsoundness: an instance whose R(p) is NOT static
     loses the dependency it did not read on its first execution *)
  let eng = Engine.create () in
  let switch = Var.create eng true in
  let x = Var.create eng 10 and y = Var.create eng 20 in
  let f =
    Func.create eng ~static_deps:true (fun _ () ->
        if Var.get switch then Var.get x else Var.get y)
  in
  checki "first run reads switch and x" 10 (Func.call f ());
  Var.set switch false;
  checki "re-execution picks up y" 20 (Func.call f ());
  (* y was never recorded as a dependency (the static edges are those of
     the FIRST run: switch and x), so this change is invisible — exactly
     the unsoundness the API documentation warns about *)
  Var.set y 999;
  checki "stale: y's change is untracked" 20 (Func.call f ())

(* ------------------------------------------------------------------ *)
(* Preemptable evaluation (§4.5)                                       *)
(* ------------------------------------------------------------------ *)

let test_settle_bounded_slices () =
  let eng = Engine.create ~default_strategy:Engine.Eager () in
  let runs = ref 0 in
  let cells = Array.init 20 (fun i -> Var.create eng i) in
  let funcs =
    Array.map
      (fun c ->
        Func.create eng (fun _ () ->
            incr runs;
            Var.get c * 2))
      cells
  in
  Array.iter (fun f -> ignore (Func.call f ())) funcs;
  checki "initial runs" 20 !runs;
  Array.iteri (fun i c -> Var.set c (100 + i)) cells;
  (* each dirty cell costs two settle steps (storage + instance), so a
     budget of 10 advances roughly five re-executions *)
  checkb "not yet quiescent" false (Engine.settle_bounded eng ~max_steps:10);
  checkb "partial progress" true (!runs > 20 && !runs < 40);
  let guard = ref 0 in
  while (not (Engine.settle_bounded eng ~max_steps:7)) && !guard < 50 do
    incr guard
  done;
  checki "all recomputed across slices" 40 !runs;
  checkb "now quiescent" true (Engine.settle_bounded eng ~max_steps:1);
  (* every value is current without any further execution *)
  Array.iteri
    (fun i f -> checki "current" ((100 + i) * 2) (Func.call f ()))
    funcs;
  checki "queries were pure hits" 40 !runs

let test_settle_bounded_noop_when_clean () =
  let eng = Engine.create () in
  checkb "clean engine is quiescent" true
    (Engine.settle_bounded eng ~max_steps:5)

(* ------------------------------------------------------------------ *)
(* Feature interactions                                                *)
(* ------------------------------------------------------------------ *)

let test_eviction_with_partitioning () =
  (* cache replacement must stay sound when partitions are live *)
  let eng = Engine.create ~partitioning:true () in
  let cells = Array.init 8 (fun i -> Var.create eng i) in
  let f =
    Func.create eng ~policy:(Policy.Lru 3) (fun _ i -> Var.get cells.(i) * 10)
  in
  for i = 0 to 7 do
    checki "initial" (i * 10) (Func.call f i)
  done;
  checki "bounded" 3 (Func.size f);
  (* a change to a cell whose instance was evicted: recomputes freshly *)
  Var.set cells.(0) 100;
  checki "evicted then changed" 1000 (Func.call f 0);
  (* a change to a cell whose instance survives: invalidates it *)
  Var.set cells.(7) 70;
  checki "survivor invalidated" 700 (Func.call f 7)

let test_unchecked_nested () =
  let eng = Engine.create () in
  let a = Var.create eng 1 and b = Var.create eng 2 and c = Var.create eng 3 in
  let f =
    Func.create eng (fun _ () ->
        let x = Var.get a in
        let y =
          Engine.unchecked eng (fun () ->
              (* nested unchecked stays unchecked; the inner call's own
                 execution tracks normally *)
              Var.get b + Engine.unchecked eng (fun () -> Var.get c))
        in
        x + y)
  in
  checki "initial" 6 (Func.call f ());
  Var.set b 20;
  Var.set c 30;
  checki "unchecked reads are frozen" 6 (Func.call f ());
  Var.set a 10;
  (* the tracked dependency re-executes and picks up everything *)
  checki "re-execution refreshes all" 60 (Func.call f ())

let test_unchecked_call_edge_suppressed () =
  let eng = Engine.create () in
  let a = Var.create eng 1 in
  let inner = Func.create eng ~name:"inner" (fun _ () -> Var.get a) in
  let outer =
    Func.create eng ~name:"outer" (fun _ () ->
        Engine.unchecked eng (fun () -> Func.call inner ()) * 10)
  in
  checki "initial" 10 (Func.call outer ());
  Var.set a 5;
  (* inner itself recomputes when called, but outer recorded no edge *)
  checki "inner fresh" 5 (Func.call inner ());
  checki "outer frozen" 10 (Func.call outer ())

let test_settle_bounded_with_partitions () =
  let eng =
    Engine.create ~partitioning:true ~default_strategy:Engine.Eager ()
  in
  let runs = ref 0 in
  let pairs =
    Array.init 6 (fun i ->
        let v = Var.create eng i in
        let f =
          Func.create eng (fun _ () ->
              incr runs;
              Var.get v + 1)
        in
        ignore (Func.call f ());
        (v, f))
  in
  checki "initial" 6 !runs;
  Array.iter (fun (v, _) -> Var.set v 100) pairs;
  (* drain all six independent partitions in slices *)
  let guard = ref 0 in
  while (not (Engine.settle_bounded eng ~max_steps:3)) && !guard < 50 do
    incr guard
  done;
  checki "all partitions drained" 12 !runs;
  Array.iteri
    (fun _ (_, f) -> checki "current" 101 (Func.call f ()))
    pairs;
  checki "queries were hits" 12 !runs

(* ------------------------------------------------------------------ *)
(* Evaluation-order scheduling (§4.5)                                  *)
(* ------------------------------------------------------------------ *)

(* A diamond with deliberately inverted creation order: [f] is created
   (and prioritized) before the chain it later comes to depend on, so
   creation-order scheduling processes [f] before the chain and must
   re-execute it; Pearce–Kelly fixups restore topological order and [f]
   runs exactly once per change. *)
let diamond scheduling =
  let eng =
    Engine.create ~default_strategy:Engine.Eager ~scheduling ()
  in
  let base = Var.create eng ~name:"base" 1 in
  let mode = Var.create eng ~name:"mode" false in
  let chain_top = ref None in
  let f_runs = ref 0 in
  let f =
    Func.create eng ~name:"f" (fun _ () ->
        incr f_runs;
        let tail =
          if Var.get mode then
            match !chain_top with Some c -> Func.call c () | None -> 0
          else 0
        in
        Var.get base + tail)
  in
  ignore (Func.call f ()) (* f's node exists, earliest priority *);
  (* now build and run a chain whose nodes get later priorities *)
  let rec build i prev =
    if i = 0 then prev
    else
      build (i - 1)
        (Func.create eng ~name:(Fmt.str "b%d" i) (fun _ () ->
             Func.call prev () + 1))
  in
  let b0 = Func.create eng ~name:"b0" (fun _ () -> Var.get base * 10) in
  let top = build 6 b0 in
  ignore (Func.call top ());
  chain_top := Some top;
  Var.set mode true;
  ignore (Func.call f ()) (* now f depends on the whole chain *);
  Engine.reset_stats eng;
  f_runs := 0;
  (eng, base, f, f_runs)

let test_scheduling_topological_avoids_waste () =
  let _eng_c, base_c, f_c, runs_c = diamond Engine.Creation_order in
  Var.set base_c 5;
  checki "correct under creation order" (5 + ((5 * 10) + 6)) (Func.call f_c ());
  let _eng_t, base_t, f_t, runs_t = diamond Engine.Topological in
  Var.set base_t 5;
  checki "correct under topological" (5 + ((5 * 10) + 6)) (Func.call f_t ());
  (* creation order pops f before the chain, then again after: 2 runs;
     the fixup drains the chain first: 1 run *)
  checki "creation order re-executes f twice" 2 !runs_c;
  checki "topological re-executes f once" 1 !runs_t

let test_scheduling_fifo_correct () =
  (* FIFO is the no-priorities baseline: still correct, possibly wasteful *)
  let _eng, base, f, runs = diamond Engine.Fifo in
  Var.set base 9;
  checki "correct under fifo" (9 + ((9 * 10) + 6)) (Func.call f ());
  checkb "ran at least once" true (!runs >= 1)

(* Graph-level property: under random edge insertions with Pearce–Kelly
   restoration, every accepted edge satisfies the order invariant, and
   cycles are exactly the edges a reachability oracle rejects. *)
let prop_pk_invariant =
  QCheck.Test.make ~name:"Pearce–Kelly keeps a topological order"
    QCheck.(list (pair (int_bound 19) (int_bound 19)))
    (fun pairs ->
      let module G = Depgraph.Graph in
      let g = G.create () in
      let nodes = Array.init 20 (fun i -> G.add_node g ~order_after:None i) in
      let reach = Array.make_matrix 20 20 false in
      let edges = ref [] in
      let stamp = ref 0 in
      let ok = ref true in
      List.iter
        (fun (a, b) ->
          if a <> b then begin
            let src = nodes.(a) and dst = nodes.(b) in
            let closes_cycle = reach.(b).(a) in
            match G.restore_topological_order g ~src ~dst with
            | `Cycle -> if not closes_cycle then ok := false
            | `Already_ordered | `Reordered _ ->
              if closes_cycle then ok := false
              else begin
                incr stamp;
                G.add_edge ~stamp:!stamp ~src ~dst;
                edges := (a, b) :: !edges;
                (* update the reachability oracle *)
                for i = 0 to 19 do
                  for j = 0 to 19 do
                    if (i = a || reach.(i).(a)) && (j = b || reach.(b).(j))
                    then reach.(i).(j) <- true
                  done
                done;
                reach.(a).(b) <- true
              end
          end)
        pairs;
      (* the invariant: every accepted edge drains source first *)
      List.iter
        (fun (a, b) ->
          if not (G.order_lt nodes.(a) nodes.(b)) then ok := false)
        !edges;
      !ok)

(* ------------------------------------------------------------------ *)
(* Randomized equivalence with a from-scratch oracle (Theorem 5.1)     *)
(* ------------------------------------------------------------------ *)

type op = Set of int * int | Query of int * int

let op_gen n =
  QCheck.Gen.(
    frequency
      [
        (1, map2 (fun i v -> Set (i, v)) (int_bound (n - 1)) (int_bound 50));
        ( 2,
          map2
            (fun i j -> Query (min i j, max i j))
            (int_bound (n - 1))
            (int_bound (n - 1)) );
      ])

let ops_arbitrary n =
  QCheck.make
    ~print:(fun ops ->
      String.concat ";"
        (List.map
           (function
             | Set (i, v) -> Fmt.str "set %d %d" i v
             | Query (i, j) -> Fmt.str "sum %d %d" i j)
           ops))
    QCheck.Gen.(list_size (int_bound 60) (op_gen n))

(* Incremental range-sum over n leaves, divide and conquer, compared
   against direct summation of a mirror array after every operation. *)
let equivalence_property ~strategy ~partitioning n ops =
  let eng = Engine.create ~default_strategy:strategy ~partitioning () in
  let vars = Array.init n (fun i -> Var.create eng i) in
  let mirror = Array.init n (fun i -> i) in
  let sum =
    Func.create eng ~name:"sum" (fun sum (lo, hi) ->
        if lo = hi then Var.get vars.(lo)
        else
          let mid = (lo + hi) / 2 in
          Func.call sum (lo, mid) + Func.call sum (mid + 1, hi))
  in
  List.for_all
    (fun op ->
      match op with
      | Set (i, v) ->
        Var.set vars.(i) v;
        mirror.(i) <- v;
        true
      | Query (lo, hi) ->
        let expected = ref 0 in
        for k = lo to hi do
          expected := !expected + mirror.(k)
        done;
        Func.call sum (lo, hi) = !expected)
    ops

let prop_equiv ~strategy ~partitioning name =
  QCheck.Test.make ~name (ops_arbitrary 16)
    (equivalence_property ~strategy ~partitioning 16)

(* Random DAG topologies: func i reads a random subset of funcs j < i and
   of the tracked cells; after every mutation, every func must equal a
   from-scratch recomputation over a mirror array. Exercises sharing
   (multi-parent nodes), deep chains, mixed per-instance strategies, and
   partitioning. *)
let prop_random_dag =
  let gen =
    QCheck.Gen.(
      triple int
        (list_size (int_bound 30) (pair (int_bound 7) small_int))
        bool)
  in
  QCheck.Test.make ~name:"random DAG = from-scratch oracle" ~count:60
    (QCheck.make
       ~print:(fun (seed, ups, part) ->
         Fmt.str "seed=%d part=%b updates=%d" seed part (List.length ups))
       gen)
    (fun (seed, updates, partitioning) ->
      let rand = Random.State.make [| seed |] in
      let eng = Engine.create ~partitioning () in
      let nvars = 8 and nfuncs = 24 in
      let vars = Array.init nvars (fun i -> Var.create eng i) in
      let mirror = Array.init nvars (fun i -> i) in
      let pick n k =
        List.init k (fun _ -> Random.State.int rand n)
        |> List.sort_uniq compare
      in
      let spec =
        Array.init nfuncs (fun i ->
            let var_deps = pick nvars (1 + Random.State.int rand 3) in
            let fn_deps =
              if i = 0 then [] else pick i (Random.State.int rand 3)
            in
            let strategy =
              if Random.State.bool rand then Engine.Demand else Engine.Eager
            in
            (var_deps, fn_deps, strategy))
      in
      let funcs : (unit, int) Func.t option array = Array.make nfuncs None in
      for i = 0 to nfuncs - 1 do
        let var_deps, fn_deps, strategy = spec.(i) in
        funcs.(i) <-
          Some
            (Func.create eng ~strategy ~name:(Fmt.str "dag%d" i)
               (fun _ () ->
                 List.fold_left
                   (fun acc v -> acc + Var.get vars.(v))
                   0 var_deps
                 + List.fold_left
                     (fun acc j ->
                       acc + (2 * Func.call (Option.get funcs.(j)) ()))
                     0 fn_deps))
      done;
      (* from-scratch oracle over the mirror *)
      let rec oracle i =
        let var_deps, fn_deps, _ = spec.(i) in
        List.fold_left (fun acc v -> acc + mirror.(v)) 0 var_deps
        + List.fold_left (fun acc j -> acc + (2 * oracle j)) 0 fn_deps
      in
      let all_agree () =
        let ok = ref true in
        for i = 0 to nfuncs - 1 do
          if Func.call (Option.get funcs.(i)) () <> oracle i then ok := false
        done;
        !ok
      in
      all_agree ()
      && List.for_all
           (fun (v, value) ->
             Var.set vars.(v) value;
             mirror.(v) <- value;
             all_agree ())
           updates)

let qsuite tests = List.map (QCheck_alcotest.to_alcotest ~long:false) tests

(* ------------------------------------------------------------------ *)
(* Inspection                                                          *)
(* ------------------------------------------------------------------ *)

let test_parallel_profile () =
  let eng = Engine.create () in
  let a = Var.create eng 1 and b = Var.create eng 2 in
  (* two independent instances over a and b, then a combiner: two levels,
     width two at the bottom *)
  let fa = Func.create eng ~name:"fa" (fun _ () -> Var.get a * 2) in
  let fb = Func.create eng ~name:"fb" (fun _ () -> Var.get b * 3) in
  let top =
    Func.create eng ~name:"top" (fun _ () -> Func.call fa () + Func.call fb ())
  in
  checki "value" 8 (Func.call top ());
  let p = Alphonse.Inspect.parallel_profile eng in
  checki "instances" 3 p.Alphonse.Inspect.total_instances;
  checki "critical path" 2 p.Alphonse.Inspect.critical_path;
  checki "max width" 2 p.Alphonse.Inspect.max_width;
  checkb "widths" true (p.Alphonse.Inspect.level_widths = [ 2; 1 ]);
  checkb "speedup bound" true
    (Float.abs (p.Alphonse.Inspect.speedup_bound -. 1.5) < 1e-9)

let test_parallel_profile_chain () =
  let eng = Engine.create () in
  let a = Var.create eng 1 in
  let base = Func.create eng (fun _ () -> Var.get a) in
  let rec chain i prev =
    if i = 0 then prev
    else chain (i - 1) (Func.create eng (fun _ () -> Func.call prev () + 1))
  in
  let top = chain 9 base in
  ignore (Func.call top ());
  let p = Alphonse.Inspect.parallel_profile eng in
  (* a pure chain has no parallelism *)
  checki "critical path = instances" p.Alphonse.Inspect.total_instances
    p.Alphonse.Inspect.critical_path;
  checki "max width" 1 p.Alphonse.Inspect.max_width

let contains sub s =
  let n = String.length sub and m = String.length s in
  let rec go i = i + n <= m && (String.sub s i n = sub || go (i + 1)) in
  go 0

let test_dot_output () =
  let eng = Engine.create () in
  let a = Var.create eng ~name:"a" 1 in
  let f = Func.create eng ~name:"f" (fun _ () -> Var.get a) in
  ignore (Func.call f ());
  let dot = Alphonse.Inspect.to_dot eng in
  checkb "digraph" true (String.length dot > 0);
  checkb "mentions f" true (contains "f#" dot);
  checkb "mentions a" true (contains "a#" dot);
  checkb "has an edge" true (contains "->" dot)

let test_dot_escape () =
  (* quotes, backslashes and newlines must not break DOT syntax *)
  let eng = Engine.create () in
  let a = Var.create eng ~name:"evil\"name\\with\nnewline" 1 in
  let f = Func.create eng ~name:"f" (fun _ () -> Var.get a) in
  ignore (Func.call f ());
  let dot = Alphonse.Inspect.to_dot eng in
  checkb "escaped quote" true (contains "evil\\\"name" dot);
  checkb "escaped backslash" true (contains "\\\\with" dot);
  checkb "no raw newline in label" false (contains "with\nnewline" dot);
  checkb "newline escaped" true (contains "\\nnewline" dot)

(* ------------------------------------------------------------------ *)
(* Telemetry                                                           *)
(* ------------------------------------------------------------------ *)

module Telemetry = Alphonse.Telemetry
module Json = Alphonse.Json

(* A small session whose event sequence is fully predictable: f reads a,
   first call executes, a write marks, second call re-executes. *)
let telemetry_session () =
  let eng = Engine.create () in
  let tm = Telemetry.create () in
  Engine.set_telemetry eng (Some tm);
  let a = Var.create eng ~name:"a" 1 in
  let f = Func.create eng ~name:"f" (fun _ () -> Var.get a * 10) in
  checki "initial" 10 (Func.call f ());
  Var.set a 2;
  checki "updated" 20 (Func.call f ());
  checki "cached" 20 (Func.call f ());
  (eng, tm, a, f)

let test_telemetry_event_order () =
  let _eng, tm, _a, _f = telemetry_session () in
  let kinds =
    List.filter_map
      (fun (r : Telemetry.record) ->
        match r.Telemetry.ev with
        | Telemetry.Instance_created { name; _ } -> Some ("new-i " ^ name)
        | Telemetry.Storage_created { name; _ } -> Some ("new-s " ^ name)
        | Telemetry.Exec_begin { name; _ } -> Some ("begin " ^ name)
        | Telemetry.Exec_end { name; changed; ok = true; _ } ->
          Some (Fmt.str "end %s %b" name changed)
        | Telemetry.Marked { name; _ } -> Some ("mark " ^ name)
        | Telemetry.Edge_added _ -> Some "edge"
        | Telemetry.Cache_hit { name; _ } -> Some ("hit " ^ name)
        | Telemetry.Settle_pop { name; _ } -> Some ("pop " ^ name)
        | _ -> None)
      (Telemetry.events tm)
  in
  Alcotest.(check (list string))
    "event sequence"
    [
      "new-i f" (* first call materializes the instance *);
      "begin f";
      "new-s a" (* a's node appears on its first tracked read *);
      "edge" (* a -> f *);
      "end f true";
      "mark a" (* the external write *);
      "pop a" (* settle before trusting the cache *);
      "mark f";
      "pop f";
      "begin f" (* demand re-execution on the second call *);
      "edge";
      "end f true";
      "hit f" (* third call answered from cache *);
    ]
    kinds;
  (* sequence numbers are dense and ordered *)
  let seqs = List.map (fun r -> r.Telemetry.seq) (Telemetry.events tm) in
  Alcotest.(check (list int))
    "dense seqs"
    (List.init (List.length seqs) (fun i -> i))
    seqs

let test_telemetry_ring_cap () =
  let tm = Telemetry.create ~capacity:8 () in
  for i = 0 to 19 do
    Telemetry.emit tm (Telemetry.Marked { id = i; name = "n"; cause = None })
  done;
  checki "total emitted" 20 (Telemetry.total_emitted tm);
  checki "dropped" 12 (Telemetry.dropped tm);
  let evs = Telemetry.events tm in
  checki "ring holds capacity" 8 (List.length evs);
  (* the survivors are exactly the last 8, oldest first *)
  Alcotest.(check (list int))
    "last events kept"
    [ 12; 13; 14; 15; 16; 17; 18; 19 ]
    (List.map
       (fun (r : Telemetry.record) ->
         match r.Telemetry.ev with
         | Telemetry.Marked { id; _ } -> id
         | _ -> -1)
       evs)

let test_telemetry_sink () =
  let eng = Engine.create () in
  let tm = Telemetry.create ~capacity:4 () in
  Engine.set_telemetry eng (Some tm);
  let streamed = ref 0 in
  Telemetry.set_sink tm (Some (fun _ -> incr streamed));
  let a = Var.create eng 1 in
  let f = Func.create eng (fun _ () -> Var.get a) in
  ignore (Func.call f ());
  Var.set a 2;
  ignore (Func.call f ());
  (* the sink saw every event even though the tiny ring dropped some *)
  checki "sink saw all" (Telemetry.total_emitted tm) !streamed;
  checkb "ring overflowed" true (Telemetry.dropped tm > 0)

let test_telemetry_disabled_no_drift () =
  (* identical workloads with and without a recorder must produce
     identical engine stats: instrumentation is observation only *)
  let workload eng =
    let a = Var.create eng 1 in
    let fs =
      Array.init 8 (fun i -> Func.create eng (fun _ () -> Var.get a + i))
    in
    Array.iter (fun f -> ignore (Func.call f ())) fs;
    for v = 2 to 5 do
      Var.set a v;
      Array.iter (fun f -> ignore (Func.call f ())) fs
    done;
    Engine.stats eng
  in
  let bare = workload (Engine.create ()) in
  let eng = Engine.create () in
  Engine.set_telemetry eng (Some (Telemetry.create ()));
  let instrumented = workload eng in
  checkb "stats identical" true (bare = instrumented)

(* Round-trip the Chrome trace of a small spreadsheet-like session
   through the JSON parser and sanity-check its structure. *)
let test_chrome_trace_roundtrip () =
  let eng = Engine.create () in
  let tm = Telemetry.create () in
  Engine.set_telemetry eng (Some tm);
  let cells = Array.init 4 (fun i -> Var.create eng ~name:(Fmt.str "A%d" (i + 1)) i) in
  let sum =
    Func.create eng ~name:"SUM" (fun _ () ->
        Array.fold_left (fun acc c -> acc + Var.get c) 0 cells)
  in
  checki "sum" 6 (Func.call sum ());
  Var.set cells.(2) 10;
  checki "sum after edit" 14 (Func.call sum ());
  let trace = Telemetry.to_chrome_trace tm in
  let json = Json.of_string trace (* raises on malformed output *) in
  let events =
    match Json.(member "traceEvents" json) with
    | Some (Json.Arr evs) -> evs
    | _ -> Alcotest.fail "no traceEvents array"
  in
  checkb "has events" true (List.length events > 0);
  (* every event has name/ph/ts/pid/tid; B and E are balanced *)
  let balance = ref 0 in
  List.iter
    (fun ev ->
      checkb "has name" true (Json.member "name" ev <> None);
      checkb "has ts" true
        (match Json.member "ts" ev with
        | Some (Json.Num _) -> true
        | _ -> false);
      match Json.member "ph" ev with
      | Some (Json.Str "B") -> incr balance
      | Some (Json.Str "E") -> decr balance
      | Some (Json.Str _) -> ()
      | _ -> Alcotest.fail "event without ph")
    events;
  checki "B/E balanced" 0 !balance;
  (* the executed instance appears as a duration event *)
  checkb "SUM exec present" true
    (List.exists
       (fun ev ->
         Json.member "name" ev = Some (Json.Str "SUM")
         && Json.member "ph" ev = Some (Json.Str "B"))
       events)

(* A raising instance must still close its duration slice: every
   Exec_begin gets a matching Exec_end (ok = false), so Chrome traces
   stay balanced and nested spans don't swallow their parents. *)
let test_chrome_trace_balanced_on_raise () =
  let eng = Engine.create () in
  let tm = Telemetry.create () in
  Engine.set_telemetry eng (Some tm);
  let boom = ref true in
  let a = Var.create eng ~name:"a" 1 in
  let inner =
    Func.create eng ~name:"inner" (fun _ () ->
        let v = Var.get a in
        if !boom then failwith "boom";
        v)
  in
  let outer =
    Func.create eng ~name:"outer" (fun _ () -> Func.call inner () + 1)
  in
  checkb "outer raises" true
    (match Func.call outer () with _ -> false | exception Failure _ -> true);
  boom := false;
  checki "retry converges" 2 (Func.call outer ());
  (* raw event stream: begin/end counts agree, and a failed end exists *)
  let begins = ref 0 and ends = ref 0 and failed_ends = ref 0 in
  List.iter
    (fun (r : Telemetry.record) ->
      match r.Telemetry.ev with
      | Telemetry.Exec_begin _ -> incr begins
      | Telemetry.Exec_end { ok; _ } ->
        incr ends;
        if not ok then incr failed_ends
      | _ -> ())
    (Telemetry.events tm);
  checki "begin = end" !begins !ends;
  (* both outer and inner were unwound with ok=false *)
  checki "failed ends" 2 !failed_ends;
  (* and the exported Chrome trace nests correctly *)
  let json = Json.of_string (Telemetry.to_chrome_trace tm) in
  let events =
    match Json.(member "traceEvents" json) with
    | Some (Json.Arr evs) -> evs
    | _ -> Alcotest.fail "no traceEvents array"
  in
  let balance = ref 0 in
  List.iter
    (fun ev ->
      match Json.member "ph" ev with
      | Some (Json.Str "B") -> incr balance
      | Some (Json.Str "E") ->
        decr balance;
        checkb "never negative" true (!balance >= 0)
      | _ -> ())
    events;
  checki "B/E balanced after raise" 0 !balance

let test_why_recomputed_names_cell () =
  let eng = Engine.create () in
  let tm = Telemetry.create () in
  Engine.set_telemetry eng (Some tm);
  let a = Var.create eng ~name:"cellA" 1 in
  let b = Var.create eng ~name:"cellB" 2 in
  let fa = Func.create eng ~name:"fa" (fun _ () -> Var.get a * 10) in
  let top =
    Func.create eng ~name:"top" (fun _ () -> Func.call fa () + Var.get b)
  in
  checki "initial" 12 (Func.call top ());
  (* mutate only cellA; top's re-execution must be blamed on cellA *)
  Var.set a 5;
  checki "after edit" 52 (Func.call top ());
  let why =
    match Alphonse.Inspect.why_recomputed eng "top" with
    | Some w -> w
    | None -> Alcotest.fail "no provenance for top"
  in
  let rendered = Fmt.str "%a" Telemetry.pp_why why in
  checkb "names the mutated cell" true (contains "cellA" rendered);
  checkb "does not blame cellB" false (contains "cellB" rendered);
  checkb "ends at top" true (contains "re-executed top" rendered);
  (* the chain starts at the external write *)
  (match why with
  | { Telemetry.step_role = `Written; step_name; _ } :: _ ->
    Alcotest.(check string) "root is the write" "cellA" step_name
  | _ -> Alcotest.fail "chain does not start at a write");
  (* an instance that never executed in the window yields None *)
  checkb "unknown instance" true
    (Alphonse.Inspect.why_recomputed eng "nonesuch" = None)

let test_telemetry_profile () =
  let eng = Engine.create () in
  let tm = Telemetry.create () in
  Engine.set_telemetry eng (Some tm);
  let a = Var.create eng ~name:"a" 1 in
  let inner = Func.create eng ~name:"inner" (fun _ () -> Var.get a * 2) in
  let outer =
    Func.create eng ~name:"outer" (fun _ () -> Func.call inner () + 1)
  in
  checki "initial" 3 (Func.call outer ());
  Var.set a 10;
  checki "after edit" 21 (Func.call outer ());
  let profiles = Telemetry.profile tm in
  let find name =
    match
      List.find_opt
        (fun (p : Telemetry.instance_profile) -> p.Telemetry.name = name)
        profiles
    with
    | Some p -> p
    | None -> Alcotest.fail ("no profile for " ^ name)
  in
  let pi = find "inner" and po = find "outer" in
  checki "inner executions" 2 pi.Telemetry.executions;
  checki "inner re-executions" 1 pi.Telemetry.re_executions;
  checki "outer executions" 2 po.Telemetry.executions;
  checkb "inner self time sane" true (pi.Telemetry.self_time >= 0.);
  (* outer's total includes inner's nested run, so total >= self *)
  checkb "outer total >= self" true
    (po.Telemetry.total_time >= po.Telemetry.self_time);
  (* each re-execution consumed one pending mark *)
  checkb "latency recorded" true
    (Array.fold_left ( + ) 0 pi.Telemetry.latency >= 1)

let test_json_roundtrip () =
  let j =
    Json.Obj
      [
        ("s", Json.Str "a\"b\\c\nd");
        ("n", Json.Num 3.25);
        ("i", Json.Num 42.);
        ("b", Json.Bool true);
        ("z", Json.Null);
        ("a", Json.Arr [ Json.Num 1.; Json.Str "x"; Json.Obj [] ]);
      ]
  in
  checkb "round trip" true (Json.of_string (Json.to_string j) = j);
  checkb "rejects garbage" true (Json.of_string_opt "{\"a\": }" = None);
  checkb "rejects trailing" true (Json.of_string_opt "1 2" = None)

let () =
  Alcotest.run "alphonse"
    [
      ( "caching",
        [
          Alcotest.test_case "memoized fib" `Quick test_memo_fib;
          Alcotest.test_case "recompute on change" `Quick
            test_var_recompute_on_change;
          Alcotest.test_case "custom var equality" `Quick
            test_custom_var_equality;
          Alcotest.test_case "untracked fast path" `Quick
            test_untracked_var_fast_path;
        ] );
      ( "strategies",
        [
          Alcotest.test_case "eager quiescence cutoff" `Quick test_eager_cutoff;
          Alcotest.test_case "demand dirties transitively" `Quick
            test_demand_no_cutoff;
          Alcotest.test_case "cutoff fast path allocates nothing" `Quick
            test_cutoff_zero_alloc;
          Alcotest.test_case "eager stabilize precomputes" `Quick
            test_eager_stabilize_precomputes;
          Alcotest.test_case "demand stabilize defers" `Quick
            test_demand_stabilize_defers;
        ] );
      ( "maintained",
        [
          Alcotest.test_case "clobbered write restored" `Quick
            test_maintained_write_restored;
          Alcotest.test_case "write then read chain" `Quick
            test_write_then_read_chain;
        ] );
      ( "errors",
        [
          Alcotest.test_case "cycle detection" `Quick test_cycle_detection;
          Alcotest.test_case "mutual cycle" `Quick test_mutual_cycle_detection;
          Alcotest.test_case "engine usable after cycle" `Quick
            test_engine_usable_after_cycle;
          Alcotest.test_case "exception retry" `Quick test_exception_retry;
        ] );
      ( "unchecked",
        [
          Alcotest.test_case "prunes dependencies" `Quick
            test_unchecked_prunes_dependencies;
          Alcotest.test_case "checked control group" `Quick
            test_checked_control_group;
        ] );
      ( "replacement",
        [
          Alcotest.test_case "lru eviction" `Quick test_lru_eviction;
          Alcotest.test_case "lru recency" `Quick test_lru_recency_order;
          Alcotest.test_case "eviction soundness" `Quick
            test_eviction_soundness;
          Alcotest.test_case "fifo eviction" `Quick test_fifo_eviction;
        ] );
      ( "interactions",
        [
          Alcotest.test_case "eviction with partitioning" `Quick
            test_eviction_with_partitioning;
          Alcotest.test_case "nested unchecked" `Quick test_unchecked_nested;
          Alcotest.test_case "unchecked call edge" `Quick
            test_unchecked_call_edge_suppressed;
          Alcotest.test_case "bounded settle with partitions" `Quick
            test_settle_bounded_with_partitions;
        ] );
      ( "scheduling",
        Alcotest.test_case "topological avoids waste" `Quick
          test_scheduling_topological_avoids_waste
        :: Alcotest.test_case "fifo correct" `Quick test_scheduling_fifo_correct
        :: qsuite [ prop_pk_invariant ] );
      ( "static-subgraphs",
        [
          Alcotest.test_case "correct when R(p) static" `Quick
            test_static_deps_correct;
          Alcotest.test_case "dynamic churn baseline" `Quick
            test_dynamic_deps_churn_baseline;
          Alcotest.test_case "documented hazard" `Quick test_static_deps_hazard;
        ] );
      ( "preemption",
        [
          Alcotest.test_case "bounded settle slices" `Quick
            test_settle_bounded_slices;
          Alcotest.test_case "noop when clean" `Quick
            test_settle_bounded_noop_when_clean;
        ] );
      ( "partitioning",
        [
          Alcotest.test_case "isolates independent work" `Quick
            test_partitioning_isolates;
          Alcotest.test_case "global settle without it" `Quick
            test_no_partitioning_forces_global_settle;
          Alcotest.test_case "correctness preserved" `Quick
            test_partitioned_correctness;
        ] );
      ( "equivalence",
        qsuite
          [
            prop_equiv ~strategy:Engine.Demand ~partitioning:false
              "demand = oracle";
            prop_equiv ~strategy:Engine.Eager ~partitioning:false
              "eager = oracle";
            prop_equiv ~strategy:Engine.Demand ~partitioning:true
              "demand+partitions = oracle";
            prop_equiv ~strategy:Engine.Eager ~partitioning:true
              "eager+partitions = oracle";
            prop_random_dag;
          ] );
      ( "inspect",
        [
          Alcotest.test_case "dot output" `Quick test_dot_output;
          Alcotest.test_case "dot escaping" `Quick test_dot_escape;
          Alcotest.test_case "parallel profile" `Quick test_parallel_profile;
          Alcotest.test_case "parallel profile chain" `Quick
            test_parallel_profile_chain;
        ] );
      ( "telemetry",
        [
          Alcotest.test_case "event order" `Quick test_telemetry_event_order;
          Alcotest.test_case "ring buffer caps" `Quick test_telemetry_ring_cap;
          Alcotest.test_case "streaming sink" `Quick test_telemetry_sink;
          Alcotest.test_case "disabled: no drift" `Quick
            test_telemetry_disabled_no_drift;
          Alcotest.test_case "chrome trace round-trips" `Quick
            test_chrome_trace_roundtrip;
          Alcotest.test_case "trace balanced when an instance raises" `Quick
            test_chrome_trace_balanced_on_raise;
          Alcotest.test_case "why_recomputed names the cell" `Quick
            test_why_recomputed_names_cell;
          Alcotest.test_case "per-instance profile" `Quick
            test_telemetry_profile;
          Alcotest.test_case "json round-trip" `Quick test_json_roundtrip;
        ] );
    ]
